package nvmalloc_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"nvmalloc"
	"nvmalloc/internal/benefactor"
	"nvmalloc/internal/manager"
	"nvmalloc/internal/rpc"
)

// liveCluster spins up a replicated manager + n in-memory benefactors on
// loopback — the daemons cmd/nvmstore runs, in-process.
type liveCluster struct {
	mgr  *rpc.ManagerServer
	bens []*rpc.BenefactorServer
}

func startCluster(t testing.TB, n int, chunk int64, replication int) *liveCluster {
	t.Helper()
	mgr, err := rpc.NewManagerServerWith("127.0.0.1:0", chunk, manager.RoundRobin, rpc.ManagerConfig{
		Replication: replication,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	cl := &liveCluster{mgr: mgr}
	for i := 0; i < n; i++ {
		bs, err := rpc.NewBenefactorServer("127.0.0.1:0", mgr.Addr(), i, i, 256*chunk, chunk,
			benefactor.NewMem(), 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		cl.bens = append(cl.bens, bs)
		t.Cleanup(func() { bs.Close() })
	}
	return cl
}

// mgrOf digs the manager client out of a facade Client (tests only).
func mgrOf(t *testing.T, c *nvmalloc.Client) *rpc.ManagerClient {
	t.Helper()
	sc, ok := c.ChunkCache().Store().(*rpc.StoreClient)
	if !ok {
		t.Fatalf("client is not backed by the TCP store (%T)", c.ChunkCache().Store())
	}
	return sc.Store().Manager()
}

// TestConnectCheckpointRestoreE2E drives the full library cycle —
// ssdmalloc, writes, ssdcheckpoint with chunk linking, copy-on-write
// mutation, benefactor loss, restore, ssdfree — through the facade against
// live TCP daemons with replication 2, so the restore survives the death
// of one benefactor.
func TestConnectCheckpointRestoreE2E(t *testing.T) {
	const chunk = 4096
	cl := startCluster(t, 3, chunk, 2)

	c, err := nvmalloc.Connect(cl.mgr.Addr(), nvmalloc.ConnectConfig{
		CacheBytes:     16 * chunk,
		PageSize:       512,
		PageCacheBytes: 4 * chunk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// ssdmalloc + fill.
	const size = 6 * chunk
	r, err := c.Malloc(nil, size, nvmalloc.WithName("e2e.state"))
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("generation-0###!"), size/16)
	if err := r.WriteAt(nil, 0, payload); err != nil {
		t.Fatal(err)
	}
	if err := r.Sync(nil); err != nil {
		t.Fatal(err)
	}

	// ssdcheckpoint: the variable's chunks are linked, not copied.
	wrote := c.ChunkCache().Stats().SSDWriteBytes
	dram := []byte("dram snapshot: iteration 17")
	info, err := c.Checkpoint(nil, "e2e.ckpt", dram, r)
	if err != nil {
		t.Fatal(err)
	}
	if info.LinkedChunks != size/chunk {
		t.Fatalf("linked %d chunks, want %d", info.LinkedChunks, size/chunk)
	}
	moved := c.ChunkCache().Stats().SSDWriteBytes - wrote
	if moved >= size {
		t.Fatalf("checkpoint moved %d B — the linked chunks were copied, not linked", moved)
	}

	// Mutate after the checkpoint; writeback must remap copy-on-write.
	if err := r.WriteAt(nil, 0, bytes.Repeat([]byte("generation-1###!"), chunk/16)); err != nil {
		t.Fatal(err)
	}
	if err := r.Sync(nil); err != nil {
		t.Fatal(err)
	}

	// One benefactor dies. Replication 2 means every chunk still has a
	// live copy; reads must fail over transparently.
	cl.bens[0].Close()
	if err := mgrOf(t, c).MarkDead(0); err != nil {
		t.Fatal(err)
	}

	// Restart path: DRAM prefix + derived region, all from the snapshot.
	dramBack := make([]byte, len(dram))
	if err := c.ReadCheckpointDRAM(nil, "e2e.ckpt", dramBack); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dramBack, dram) {
		t.Fatalf("DRAM restore mismatch: %q", dramBack)
	}
	restored, err := c.RestoreRegion(nil, "e2e.ckpt", info.Regions[0], "e2e.state.restored")
	if err != nil {
		t.Fatal(err)
	}
	back := make([]byte, size)
	if err := restored.ReadAt(nil, 0, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, payload) {
		t.Fatal("restored region does not match the checkpointed generation-0 state")
	}
	cur := make([]byte, 16)
	if err := r.ReadAt(nil, 0, cur); err != nil {
		t.Fatal(err)
	}
	if string(cur) != "generation-1###!" {
		t.Fatalf("live variable lost its post-checkpoint mutation: %q", cur)
	}

	// ssdfree.
	if err := restored.Free(nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Free(nil); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteCheckpoint(nil, "e2e.ckpt"); err != nil {
		t.Fatal(err)
	}
}

// TestConnectConcurrentRanks hammers one connection from several
// goroutines — the shared FUSE-layer cache and the TCP data path must be
// race-free (this test earns its keep under -race).
func TestConnectConcurrentRanks(t *testing.T) {
	const chunk = 4096
	cl := startCluster(t, 3, chunk, 1)

	c, err := nvmalloc.Connect(cl.mgr.Addr(), nvmalloc.ConnectConfig{
		CacheBytes: 8 * chunk, // small: forces eviction traffic
		PageSize:   512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("rank%d.var", w)
			r, err := c.Malloc(nil, 4*chunk, nvmalloc.WithName(name))
			if err != nil {
				errs <- err
				return
			}
			pat := bytes.Repeat([]byte{byte('a' + w)}, 4*chunk)
			for iter := 0; iter < 5; iter++ {
				if err := r.WriteAt(nil, 0, pat); err != nil {
					errs <- err
					return
				}
				got := make([]byte, 4*chunk)
				if err := r.ReadAt(nil, 0, got); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, pat) {
					errs <- fmt.Errorf("rank %d read back wrong data", w)
					return
				}
			}
			if err := r.Sync(nil); err != nil {
				errs <- err
				return
			}
			errs <- r.Free(nil)
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
