// Out-of-core matrix multiplication: the paper's flagship use case. With
// B placed in DRAM only 2 of the 8 cores per node can be used; placing B
// on the aggregate NVM store through a shared mapping lets all 128 cores
// run a problem whose working set exceeds node memory — and finishes
// faster despite the slower medium.
package main

import (
	"fmt"
	"log"

	"nvmalloc"
	"nvmalloc/internal/experiments"
	"nvmalloc/internal/workloads"
)

func run(cfg nvmalloc.Config, place workloads.Placement, n int) {
	eng := nvmalloc.NewEngine()
	prof := nvmalloc.Bench()
	prof.ComputeScale = 1.0 / 32 // preserve the compute:I/O ratio at N=768 (see DESIGN.md)
	prof.FUSECacheSize = 2 << 20
	m, err := nvmalloc.NewMachine(eng, prof, cfg, nvmalloc.RoundRobin)
	if err != nil {
		log.Fatal(err)
	}
	res, err := workloads.RunMM(m, workloads.MMParams{
		N: n, PlaceB: place, SharedB: place == workloads.OnNVM, Tile: 32,
	})
	if err != nil {
		fmt.Printf("%-16s B in %-5v: %v\n", cfg, place, err)
		return
	}
	fmt.Printf("%-16s B on %-5v: total %8.3fs  (A/B input %.3fs, bcast %.3fs, compute %.3fs, output %.3fs)\n",
		cfg, place, res.Total.Seconds(),
		res.Stages.InputSplitA.Seconds()+res.Stages.InputB.Seconds(),
		res.Stages.BroadcastB.Seconds(), res.Stages.Computing.Seconds(), res.Stages.CollectC.Seconds())
}

func main() {
	n := experiments.Quick().MatrixN
	fmt.Printf("C = A x B, N=%d (a 2GB-class problem at paper scale)\n\n", n)

	// The DRAM-only machine can host only 2 processes per node.
	run(nvmalloc.Config{Mode: nvmalloc.DRAMOnly, ProcsPerNode: 2, ComputeNodes: 16}, workloads.InDRAM, n)

	// Trying to use all 8 cores per node with B in DRAM fails: out of
	// memory.
	run(nvmalloc.Config{Mode: nvmalloc.DRAMOnly, ProcsPerNode: 8, ComputeNodes: 16}, workloads.InDRAM, n)

	// NVMalloc: B lives on the aggregate SSD store via one shared mapping;
	// all 128 cores compute.
	run(nvmalloc.Config{Mode: nvmalloc.LocalSSD, ProcsPerNode: 8, ComputeNodes: 16, Benefactors: 16}, workloads.OnNVM, n)

	// Even with the SSDs on remote nodes the penalty is marginal.
	run(nvmalloc.Config{Mode: nvmalloc.RemoteSSD, ProcsPerNode: 8, ComputeNodes: 8, Benefactors: 8}, workloads.OnNVM, n)
}
