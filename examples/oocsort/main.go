// Out-of-core parallel sort: a dataset 1.5x larger than the machine's
// aggregate DRAM. Without NVMalloc the application must be rewritten to
// sort in two passes with interim runs staged on the shared PFS; with
// NVMalloc half of each rank's partition simply lives on the SSD store
// and one pass suffices (paper Table VI).
package main

import (
	"fmt"
	"log"

	"nvmalloc"
	"nvmalloc/internal/workloads"
)

func main() {
	const totalBytes = 16 << 20 // 2M int64 elements
	prof := nvmalloc.Bench()
	// Shrink node memory so the dataset exceeds aggregate DRAM by the
	// paper's ~1.56x.
	prof.SystemReserve = 4 << 20
	prof.DRAMPerNode = prof.SystemReserve + totalBytes/16*10/16

	type setup struct {
		cfg     nvmalloc.Config
		share   float64
		twoPass bool
	}
	for _, s := range []setup{
		{nvmalloc.Config{Mode: nvmalloc.DRAMOnly, ProcsPerNode: 8, ComputeNodes: 16}, 1.0, true},
		{nvmalloc.Config{Mode: nvmalloc.LocalSSD, ProcsPerNode: 8, ComputeNodes: 16, Benefactors: 16}, 0.5, false},
		{nvmalloc.Config{Mode: nvmalloc.RemoteSSD, ProcsPerNode: 8, ComputeNodes: 8, Benefactors: 8}, 0.25, false},
	} {
		eng := nvmalloc.NewEngine()
		m, err := nvmalloc.NewMachine(eng, prof, s.cfg, nvmalloc.RoundRobin)
		if err != nil {
			log.Fatal(err)
		}
		res, err := workloads.RunSort(m, workloads.SortParams{
			TotalBytes: totalBytes,
			DRAMShare:  s.share,
			TwoPass:    s.twoPass,
			Verify:     true,
			Seed:       2012,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %d pass(es): %7.3fs, %5.1f MiB through the PFS, verified=%v\n",
			res.Config, res.Passes, res.Elapsed.Seconds(), float64(res.PFSBytes)/(1<<20), res.Verified)
	}
}
