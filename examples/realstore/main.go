// Real TCP store demo: spins up a manager and three benefactors on
// loopback (the same daemons cmd/nvmstore runs across machines), stores a
// striped file through the parallel pooled data path, reruns a sparse
// update through the client chunk cache to show dirty-page-only writeback
// (paper Table VII), takes a zero-copy linked checkpoint, and shows the
// copy-on-write isolation — all with real sockets and real chunk files.
// A final act runs a replicated store, kills a benefactor mid-life, reads
// through replica failover, and repairs back to full replica count.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"nvmalloc/internal/manager"
	"nvmalloc/internal/obs"
	"nvmalloc/internal/rpc"
)

func main() {
	const chunk = 64 << 10

	mgr, err := rpc.NewManagerServer("127.0.0.1:0", chunk, manager.RoundRobin)
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()
	fmt.Println("manager listening on", mgr.Addr())

	tmp, err := os.MkdirTemp("", "nvmalloc-realstore")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	for i := 0; i < 3; i++ {
		backend, err := rpc.NewFileBackend(filepath.Join(tmp, fmt.Sprintf("ben%d", i)))
		if err != nil {
			log.Fatal(err)
		}
		bs, err := rpc.NewBenefactorServer("127.0.0.1:0", mgr.Addr(), i, i, 256*chunk, chunk, backend, time.Second)
		if err != nil {
			log.Fatal(err)
		}
		defer bs.Close()
		fmt.Printf("benefactor %d serving %s on %s\n", i, filepath.Join(tmp, fmt.Sprintf("ben%d", i)), bs.Addr())
	}

	// The client fans chunk transfers out over a small connection pool per
	// benefactor, so the three SSDs above are kept busy simultaneously.
	st, err := rpc.OpenWith(mgr.Addr(), rpc.Options{PoolSize: 4, Parallelism: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// Store a striped variable.
	payload := bytes.Repeat([]byte("out-of-core "), 40000) // ~480 KB
	if err := st.Put("nvmvar", payload); err != nil {
		log.Fatal(err)
	}
	fi, _ := st.Stat("nvmvar")
	ds := st.Stats()
	fmt.Printf("\nnvmvar: %d bytes striped into %d chunks across 3 benefactors\n", fi.Size, len(fi.Chunks))
	fmt.Printf("data path: %d chunk puts, %d B to SSDs, %d transfers in flight at peak\n",
		ds.ChunkPuts, ds.SSDWriteBytes, ds.InFlightPeak)

	// Sparse update through the client chunk cache: dirty 4 KB pages are
	// tracked per chunk and only they travel on flush — the paper's write
	// optimization (Table VII). A second, uncached client would ship whole
	// chunks for the same update.
	cst, err := rpc.OpenWith(mgr.Addr(), rpc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cache, err := rpc.NewCachedStore(cst, rpc.CacheConfig{
		CacheBytes:      64 << 20,
		PageSize:        4096,
		ReadAheadChunks: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()
	for c := 0; c < len(fi.Chunks); c++ {
		if err := cache.WriteAt("nvmvar", int64(c)*chunk, []byte("sparse-touch")); err != nil {
			log.Fatal(err)
		}
	}
	if err := cache.Flush("nvmvar"); err != nil {
		log.Fatal(err)
	}
	cs, dcs := cache.Stats(), cst.Stats()
	fmt.Printf("\ncached sparse update: hits=%d misses=%d readAhead=%dB\n", cs.Hits, cs.Misses, cs.PrefetchBytes)
	fmt.Printf("dirty-page writeback shipped %d B to SSDs for %d B of whole chunks touched (%.1f%%)\n",
		dcs.SSDWriteBytes, int64(len(fi.Chunks))*chunk,
		100*float64(dcs.SSDWriteBytes)/float64(int64(len(fi.Chunks))*chunk))

	// Zero-copy checkpoint: link the variable's chunks.
	if err := st.Create("ckpt", 0); err != nil {
		log.Fatal(err)
	}
	if _, err := st.Manager().Link("ckpt", []string{"nvmvar"}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncheckpoint links the variable's chunks — nothing copied")

	// Copy-on-write: remap chunk 0 before modifying it.
	if _, err := st.Manager().Remap("nvmvar", 0); err != nil {
		log.Fatal(err)
	}
	if _, err := st.Stat("nvmvar"); err != nil { // refresh the chunk map
		log.Fatal(err)
	}
	if err := st.WriteAt("nvmvar", 0, []byte("MUTATED!")); err != nil {
		log.Fatal(err)
	}
	ck, err := st.Get("ckpt")
	if err != nil {
		log.Fatal(err)
	}
	nv, _ := st.Get("nvmvar")
	fmt.Printf("after write: variable starts %q, checkpoint still starts %q\n", nv[:8], ck[:8])

	time.Sleep(1200 * time.Millisecond) // let a heartbeat report write volumes
	bens, _ := st.Manager().Status()
	for _, b := range bens {
		fmt.Printf("benefactor %d: %d/%d bytes used, %d bytes written\n", b.ID, b.Used, b.Capacity, b.WriteVolume)
	}

	failoverDemo(tmp)
	observabilityDemo(tmp)
}

// failoverDemo runs the fault-tolerance path end to end on a replicated
// store: a benefactor dies, reads fail over to the surviving copies, and a
// repair pass re-replicates onto the survivors.
func failoverDemo(tmp string) {
	const chunk = 64 << 10
	fmt.Println("\n--- failover & repair (replication=2) ---")

	mgr, err := rpc.NewManagerServerWith("127.0.0.1:0", chunk, manager.RoundRobin, rpc.ManagerConfig{
		Replication:      2,
		HeartbeatTimeout: time.Second,
		SweepInterval:    250 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()

	var bens []*rpc.BenefactorServer
	for i := 0; i < 3; i++ {
		backend, err := rpc.NewFileBackend(filepath.Join(tmp, fmt.Sprintf("rep%d", i)))
		if err != nil {
			log.Fatal(err)
		}
		bs, err := rpc.NewBenefactorServer("127.0.0.1:0", mgr.Addr(), i, i, 256*chunk, chunk, backend, 200*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		defer bs.Close()
		bens = append(bens, bs)
	}

	st, err := rpc.OpenWith(mgr.Addr(), rpc.Options{
		CallTimeout: 2 * time.Second,
		Retry:       rpc.RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	payload := bytes.Repeat([]byte("replicated! "), 40000) // ~480 KB
	if err := st.Put("nvmvar", payload); err != nil {
		log.Fatal(err)
	}
	fmt.Println("stored nvmvar with every chunk on 2 of 3 benefactors")

	// Benefactor 0 crashes: its listener and live connections die.
	bens[0].Close()
	if err := st.Manager().MarkDead(0); err != nil {
		log.Fatal(err)
	}
	got, err := st.Get("nvmvar")
	if err != nil {
		log.Fatal(err)
	}
	s := st.Stats()
	fmt.Printf("read after crash: %d bytes intact, %d chunk reads failed over, %d retries\n",
		len(got), s.Failovers, s.Retries)

	under, _ := st.Manager().UnderReplicated()
	fmt.Printf("under-replicated chunks: %d\n", under)
	res, err := st.Manager().Repair()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repair: %d copies restored, %d failed, backlog %d, lost %d\n",
		res.Repaired, res.Failed, res.UnderReplicated, len(res.Lost))
	if !bytes.Equal(got, payload) {
		log.Fatal("payload corrupted")
	}
	fmt.Println("store back at full replica count on the survivors")
}

// observabilityDemo runs daemons with their HTTP debug endpoints enabled
// and plays operator: scrape /metrics from every node, then follow one
// write's trace ID from the client through the manager to a benefactor —
// exactly what `nvmctl top` and `nvmctl trace` do against a live cluster.
func observabilityDemo(tmp string) {
	const chunk = 64 << 10
	fmt.Println("\n--- observability: metrics scrape & trace ---")

	mgr, err := rpc.NewManagerServerWith("127.0.0.1:0", chunk, manager.RoundRobin, rpc.ManagerConfig{
		DebugAddr: "127.0.0.1:0",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()

	var debugAddrs []string
	for i := 0; i < 2; i++ {
		backend, err := rpc.NewFileBackend(filepath.Join(tmp, fmt.Sprintf("obs%d", i)))
		if err != nil {
			log.Fatal(err)
		}
		bs, err := rpc.NewBenefactorServerWith("127.0.0.1:0", mgr.Addr(), i, i, 256*chunk, chunk,
			backend, 200*time.Millisecond, rpc.BenefactorConfig{DebugAddr: "127.0.0.1:0"})
		if err != nil {
			log.Fatal(err)
		}
		defer bs.Close()
		debugAddrs = append(debugAddrs, bs.DebugAddr())
	}

	st, err := rpc.OpenWith(mgr.Addr(), rpc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	if err := st.Put("traced-var", bytes.Repeat([]byte("observe "), 32768)); err != nil { // 256 KB
		log.Fatal(err)
	}

	// Scrape every node the way `nvmctl top` does.
	for _, addr := range append([]string{mgr.DebugAddr()}, debugAddrs...) {
		snap, err := obs.FetchMetrics(addr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s @ %s:", snap.Node, addr)
		for _, name := range snap.MetricNames() {
			if h, ok := snap.Histograms[name]; ok && h.Count > 0 {
				fmt.Printf(" %s{n=%d p99=%v}", name, h.Count, time.Duration(h.P99Nanos).Round(time.Microsecond))
			}
		}
		fmt.Println()
	}

	// Follow the Put's trace ID across the cluster like `nvmctl trace`.
	var tid string
	for _, ev := range st.Obs().Ring.Events() {
		if ev.Kind == "put" {
			tid = ev.Trace
		}
	}
	fmt.Printf("trace %s:\n", tid)
	for _, addr := range append([]string{mgr.DebugAddr()}, debugAddrs...) {
		events, err := obs.FetchTrace(addr, tid, 0)
		if err != nil {
			log.Fatal(err)
		}
		for _, ev := range events {
			fmt.Printf("  %s %-10s %-8s %s\n", ev.Time().Format("15:04:05.000"), ev.Comp, ev.Kind, ev.Detail)
		}
	}
}
