// Real TCP store demo: spins up a manager and three benefactors on
// loopback (the same daemons cmd/nvmstore runs across machines), stores a
// striped file, takes a zero-copy linked checkpoint, and shows the
// copy-on-write isolation — all with real sockets and real chunk files.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"nvmalloc/internal/manager"
	"nvmalloc/internal/rpc"
)

func main() {
	const chunk = 64 << 10

	mgr, err := rpc.NewManagerServer("127.0.0.1:0", chunk, manager.RoundRobin)
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()
	fmt.Println("manager listening on", mgr.Addr())

	tmp, err := os.MkdirTemp("", "nvmalloc-realstore")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	for i := 0; i < 3; i++ {
		backend, err := rpc.NewFileBackend(filepath.Join(tmp, fmt.Sprintf("ben%d", i)))
		if err != nil {
			log.Fatal(err)
		}
		bs, err := rpc.NewBenefactorServer("127.0.0.1:0", mgr.Addr(), i, i, 256*chunk, chunk, backend, time.Second)
		if err != nil {
			log.Fatal(err)
		}
		defer bs.Close()
		fmt.Printf("benefactor %d serving %s on %s\n", i, filepath.Join(tmp, fmt.Sprintf("ben%d", i)), bs.Addr())
	}

	st, err := rpc.Open(mgr.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// Store a striped variable.
	payload := bytes.Repeat([]byte("out-of-core "), 40000) // ~480 KB
	if err := st.Put("nvmvar", payload); err != nil {
		log.Fatal(err)
	}
	fi, _ := st.Stat("nvmvar")
	fmt.Printf("\nnvmvar: %d bytes striped into %d chunks across 3 benefactors\n", fi.Size, len(fi.Chunks))

	// Zero-copy checkpoint: link the variable's chunks.
	if err := st.Create("ckpt", 0); err != nil {
		log.Fatal(err)
	}
	if _, err := st.Manager().Link("ckpt", []string{"nvmvar"}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpoint links the variable's chunks — nothing copied")

	// Copy-on-write: remap chunk 0 before modifying it.
	if _, err := st.Manager().Remap("nvmvar", 0); err != nil {
		log.Fatal(err)
	}
	if _, err := st.Stat("nvmvar"); err != nil { // refresh the chunk map
		log.Fatal(err)
	}
	if err := st.WriteAt("nvmvar", 0, []byte("MUTATED!")); err != nil {
		log.Fatal(err)
	}
	ck, err := st.Get("ckpt")
	if err != nil {
		log.Fatal(err)
	}
	nv, _ := st.Get("nvmvar")
	fmt.Printf("after write: variable starts %q, checkpoint still starts %q\n", nv[:8], ck[:8])

	bens, _ := st.Manager().Status()
	for _, b := range bens {
		fmt.Printf("benefactor %d: %d/%d bytes used\n", b.ID, b.Used, b.Capacity)
	}
}
