// Quickstart: allocate a variable from the aggregate NVM store, use it
// like memory, checkpoint it together with DRAM state, and restore it —
// the ssdmalloc / ssdcheckpoint workflow on the simulated HAL testbed.
package main

import (
	"fmt"
	"log"

	"nvmalloc"
)

func main() {
	// A 16-node cluster with node-local SSDs contributed by all 16 nodes.
	eng := nvmalloc.NewEngine()
	cfg := nvmalloc.Config{
		Mode:         nvmalloc.LocalSSD,
		ProcsPerNode: 8,
		ComputeNodes: 16,
		Benefactors:  16,
	}
	m, err := nvmalloc.NewMachine(eng, nvmalloc.Bench(), cfg, nvmalloc.RoundRobin)
	if err != nil {
		log.Fatal(err)
	}
	client := m.NewClient(0) // rank 0's NVMalloc handle

	eng.Go("app", func(p *nvmalloc.Proc) {
		// ssdmalloc: a 1 MiB variable backed by the distributed SSD store.
		nv, err := client.Malloc(p, 1<<20, nvmalloc.WithName("results"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("allocated %q: %d bytes across the aggregate NVM store\n", nv.Name(), nv.Size())

		// Use it like memory through a typed view.
		v := nvmalloc.Float64s(nv)
		for i := int64(0); i < 1000; i++ {
			if err := v.Store(p, i, float64(i)*float64(i)); err != nil {
				log.Fatal(err)
			}
		}
		x, _ := v.Load(p, 31)
		fmt.Printf("results[31] = %.0f (byte-addressable reads through the page/chunk caches)\n", x)

		// ssdcheckpoint: one logical restart file holding the DRAM state
		// and the NVM variable — the variable's chunks are linked, not
		// copied.
		info, err := client.Checkpoint(p, "restart.t0", []byte("application DRAM state"), nv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpoint %q: %d chunks for DRAM state, %d chunks linked zero-copy\n",
			info.Name, info.DRAMChunks, info.LinkedChunks)

		// Post-checkpoint writes go copy-on-write; the snapshot is safe.
		v.Store(p, 31, -1)
		nv.Sync(p)

		// Restart path: recover the variable without copying data.
		restored, err := client.RestoreRegion(p, "restart.t0", info.Regions[0], "results.restored")
		if err != nil {
			log.Fatal(err)
		}
		y, _ := nvmalloc.Float64s(restored).Load(p, 31)
		fmt.Printf("restored[31] = %.0f (the checkpoint kept the pre-crash value)\n", y)

		// ssdfree.
		if err := nv.Free(p); err != nil {
			log.Fatal(err)
		}
	})
	eng.Run()
	fmt.Printf("simulated time elapsed: %v\n", eng.Now())
}
