// Checkpoint/restart workflow: a simulation that checkpoints every
// timestep, drains checkpoints to the PFS in the background, fails, and
// restarts from the last snapshot — plus the persistent-variable handoff
// to a second "analysis job" (paper §III-C and §III-E).
package main

import (
	"fmt"
	"log"

	"nvmalloc"
)

func main() {
	eng := nvmalloc.NewEngine()
	cfg := nvmalloc.Config{Mode: nvmalloc.LocalSSD, ProcsPerNode: 4, ComputeNodes: 4, Benefactors: 4}
	m, err := nvmalloc.NewMachine(eng, nvmalloc.Bench(), cfg, nvmalloc.RoundRobin)
	if err != nil {
		log.Fatal(err)
	}
	sim := m.NewClient(0)

	var lastInfo nvmalloc.CheckpointInfo
	eng.Go("simulation", func(p *nvmalloc.Proc) {
		field, err := sim.Malloc(p, 1<<20, nvmalloc.WithName("field"))
		if err != nil {
			log.Fatal(err)
		}
		v := nvmalloc.Float64s(field)
		dram := make([]byte, 64<<10)

		for t := 0; t < 3; t++ {
			// "Compute": advance part of the field.
			for i := int64(0); i < 512; i++ {
				if err := v.Store(p, int64(t)*512+i, float64(t)+0.25); err != nil {
					log.Fatal(err)
				}
			}
			dram[0] = byte(t)

			name := fmt.Sprintf("ckpt.t%d", t)
			info, err := sim.Checkpoint(p, name, dram, field)
			if err != nil {
				log.Fatal(err)
			}
			lastInfo = info
			fmt.Printf("t=%d: checkpointed (%d linked chunks, no data copied)\n", t, info.LinkedChunks)

			// Drain the snapshot to the PFS without blocking compute.
			if _, err := m.DrainToPFS(sim, name, "scratch/"+name); err != nil {
				log.Fatal(err)
			}
		}
		// Make the field available to a later job, then "crash".
		if err := field.Detach(p); err != nil {
			log.Fatal(err)
		}
		fmt.Println("simulation finished; field persists on the NVM store")
	})
	eng.Run()

	// A second job (in-situ analysis) restarts from the snapshot and also
	// attaches the live variable directly.
	analysis := m.NewClient(5)
	eng.Go("analysis", func(p *nvmalloc.Proc) {
		restored, err := analysis.RestoreRegion(p, lastInfo.Name, lastInfo.Regions[0], "field.fromCkpt")
		if err != nil {
			log.Fatal(err)
		}
		x, _ := nvmalloc.Float64s(restored).Load(p, 2*512)
		fmt.Printf("analysis: field[1024] from checkpoint = %.2f\n", x)

		live, err := analysis.Attach(p, "field")
		if err != nil {
			log.Fatal(err)
		}
		y, _ := nvmalloc.Float64s(live).Load(p, 2*512)
		fmt.Printf("analysis: field[1024] from the live persistent variable = %.2f\n", y)
	})
	eng.Run()
	fmt.Printf("simulated time: %v\n", eng.Now())
}
