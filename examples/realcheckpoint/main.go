// Real-store checkpoint demo: the full NVMalloc library API — ssdmalloc,
// ssdcheckpoint, restore, ssdfree — running over live TCP daemons instead
// of the simulated cluster. A manager and three benefactors start on
// loopback (the same daemons cmd/nvmstore runs across machines), then the
// facade's Connect builds a Client whose page cache and FUSE-layer chunk
// cache front the real sockets.
//
// The demo shows the paper's §III-E checkpoint mechanics with real data:
// the checkpoint *links* the variable's chunks (no copy — only the DRAM
// dump travels), the post-checkpoint mutation goes copy-on-write so the
// snapshot stays intact, and the restore derives a new variable from the
// checkpoint's chunks, again without copying.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"nvmalloc"
	"nvmalloc/internal/manager"
	"nvmalloc/internal/rpc"
)

func main() {
	const chunk = 64 << 10

	mgr, err := rpc.NewManagerServer("127.0.0.1:0", chunk, manager.RoundRobin)
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()
	fmt.Println("manager listening on", mgr.Addr())

	tmp, err := os.MkdirTemp("", "nvmalloc-realckpt")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	for i := 0; i < 3; i++ {
		backend, err := rpc.NewFileBackend(filepath.Join(tmp, fmt.Sprintf("ben%d", i)))
		if err != nil {
			log.Fatal(err)
		}
		bs, err := rpc.NewBenefactorServer("127.0.0.1:0", mgr.Addr(), i, i, 256*chunk, chunk, backend, time.Second)
		if err != nil {
			log.Fatal(err)
		}
		defer bs.Close()
		fmt.Printf("benefactor %d serving on %s\n", i, bs.Addr())
	}

	// One call connects the whole library: Malloc / views / Checkpoint /
	// Restore / Free now run against the daemons above. The nil passed to
	// every library call below is the execution context — the simulation
	// passes its virtual-time Proc there; real deployments have nothing to
	// charge time to.
	c, err := nvmalloc.Connect(mgr.Addr(), nvmalloc.ConnectConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// ssdmalloc: a named, persistent 480 KB variable striped across the
	// three benefactors.
	const size = 480 << 10
	r, err := c.Malloc(nil, size, nvmalloc.WithName("demo.state"))
	if err != nil {
		log.Fatal(err)
	}
	payload := bytes.Repeat([]byte("iteration-0!"), size/12)
	if err := r.WriteAt(nil, 0, payload); err != nil {
		log.Fatal(err)
	}
	if err := r.Sync(nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nssdmalloc: %q = %d bytes (%d chunks)\n", r.Name(), r.Size(), (size+chunk-1)/chunk)

	// ssdcheckpoint: DRAM state streams into fresh chunks; the variable's
	// chunks are linked by reference — zero copies.
	dram := []byte("solver state: t=41, residual=1e-9")
	wrote := ssdWriteBytes(c)
	info, err := c.Checkpoint(nil, "ckpt-1", dram, r)
	if err != nil {
		log.Fatal(err)
	}
	delta := ssdWriteBytes(c) - wrote
	fmt.Printf("ssdcheckpoint %q: %d DRAM bytes in %d chunks + %d linked chunks\n",
		info.Name, info.DRAMBytes, info.DRAMChunks, info.LinkedChunks)
	fmt.Printf("  bytes to SSDs during checkpoint: %d (the DRAM dump only — linked chunks moved nothing)\n", delta)

	// Mutate after the checkpoint: the touched chunk remaps copy-on-write
	// on writeback, so the snapshot is isolated.
	if err := r.WriteAt(nil, 0, []byte("iteration-1!")); err != nil {
		log.Fatal(err)
	}
	if err := r.Sync(nil); err != nil {
		log.Fatal(err)
	}

	// Restore: derive a fresh variable from the checkpoint's chunk range —
	// again by reference — and read the DRAM prefix back.
	dramBack := make([]byte, len(dram))
	if err := c.ReadCheckpointDRAM(nil, "ckpt-1", dramBack); err != nil {
		log.Fatal(err)
	}
	restored, err := c.RestoreRegion(nil, "ckpt-1", info.Regions[0], "demo.state.restored")
	if err != nil {
		log.Fatal(err)
	}
	head := make([]byte, 12)
	if err := restored.ReadAt(nil, 0, head); err != nil {
		log.Fatal(err)
	}
	cur := make([]byte, 12)
	if err := r.ReadAt(nil, 0, cur); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrestart: DRAM=%q\n", dramBack)
	fmt.Printf("live variable starts %q; restored snapshot starts %q (COW kept them apart)\n", cur, head)
	if !bytes.Equal(head, payload[:12]) {
		log.Fatal("restored data does not match the checkpointed state")
	}

	// ssdfree everything.
	for _, rr := range []*nvmalloc.Region{r, restored} {
		if err := rr.Free(nil); err != nil {
			log.Fatal(err)
		}
	}
	if err := c.DeleteCheckpoint(nil, "ckpt-1"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nssdfree: variables and checkpoint released")
}

// ssdWriteBytes reads the client's cumulative bytes-to-SSD counter.
func ssdWriteBytes(c *nvmalloc.Client) int64 {
	return c.ChunkCache().Stats().SSDWriteBytes
}
