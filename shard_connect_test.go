package nvmalloc_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"nvmalloc"
	"nvmalloc/internal/benefactor"
	"nvmalloc/internal/manager"
	"nvmalloc/internal/rpc"
	"nvmalloc/internal/shardmap"
)

// shardedCluster is a 2-shard metadata plane over shared benefactors — the
// deployment `nvmstore manager -shard i/2` builds, in-process.
type shardedCluster struct {
	mgrs []*rpc.ManagerServer
	bens []*rpc.BenefactorServer
}

func (cl *shardedCluster) addrs() []string {
	out := make([]string, len(cl.mgrs))
	for i, ms := range cl.mgrs {
		out[i] = ms.Addr()
	}
	return out
}

func startShardedCluster(t testing.TB, shards, bens int, chunk int64) *shardedCluster {
	t.Helper()
	cl := &shardedCluster{}
	for i := 0; i < shards; i++ {
		ms, err := rpc.NewManagerServerWith("127.0.0.1:0", chunk, manager.RoundRobin, rpc.ManagerConfig{
			ShardIndex: i,
			ShardCount: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		cl.mgrs = append(cl.mgrs, ms)
		t.Cleanup(func() { ms.Close() })
	}
	for _, ms := range cl.mgrs {
		if err := ms.SetPeers(cl.addrs()); err != nil {
			t.Fatal(err)
		}
	}
	all := strings.Join(cl.addrs(), ",")
	for i := 0; i < bens; i++ {
		bs, err := rpc.NewBenefactorServer("127.0.0.1:0", all, i, i, int64(shards)*256*chunk, chunk,
			benefactor.NewMem(), 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		cl.bens = append(cl.bens, bs)
		t.Cleanup(func() { bs.Close() })
	}
	return cl
}

// shardName returns a name the n-shard map routes to the given shard.
func shardName(t testing.TB, prefix string, shard, n int) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		if shardmap.ShardFor(name, n) == shard {
			return name
		}
	}
	t.Fatalf("no %q-prefixed name routes to shard %d/%d", prefix, shard, n)
	return ""
}

// TestShardedConnectCheckpointRestoreE2E drives the full library cycle —
// Malloc, writes, Checkpoint with cross-shard chunk linking, Restore, Free
// — through the facade against a 2-shard metadata plane, with the
// checkpointed variables living on BOTH shards, then kills one manager
// shard and proves the surviving shard's keyspace stays live.
func TestShardedConnectCheckpointRestoreE2E(t *testing.T) {
	const chunk = 4096
	cl := startShardedCluster(t, 2, 3, chunk)

	c, err := nvmalloc.Connect(strings.Join(cl.addrs(), ","), nvmalloc.ConnectConfig{
		CacheBytes:     16 * chunk,
		PageSize:       512,
		PageCacheBytes: 4 * chunk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// One variable per shard; the checkpoint links both.
	const size = 4 * chunk
	v0name := shardName(t, "sh.state-a", 0, 2)
	v1name := shardName(t, "sh.state-b", 1, 2)
	v0, err := c.Malloc(nil, size, nvmalloc.WithName(v0name))
	if err != nil {
		t.Fatal(err)
	}
	v1, err := c.Malloc(nil, size, nvmalloc.WithName(v1name))
	if err != nil {
		t.Fatal(err)
	}
	p0 := bytes.Repeat([]byte("shard-zero-gen0!"), size/16)
	p1 := bytes.Repeat([]byte("shard-one!-gen0!"), size/16)
	if err := v0.WriteAt(nil, 0, p0); err != nil {
		t.Fatal(err)
	}
	if err := v1.WriteAt(nil, 0, p1); err != nil {
		t.Fatal(err)
	}
	if err := v0.Sync(nil); err != nil {
		t.Fatal(err)
	}
	if err := v1.Sync(nil); err != nil {
		t.Fatal(err)
	}

	// Checkpoint both variables into one file: its shard links chunks owned
	// by the other shard through the retain/link protocol, without copying.
	wrote := c.ChunkCache().Stats().SSDWriteBytes
	dram := []byte("dram snapshot across shards")
	info, err := c.Checkpoint(nil, "sh.ckpt", dram, v0, v1)
	if err != nil {
		t.Fatal(err)
	}
	if info.LinkedChunks != 2*size/chunk {
		t.Fatalf("linked %d chunks, want %d", info.LinkedChunks, 2*size/chunk)
	}
	if moved := c.ChunkCache().Stats().SSDWriteBytes - wrote; moved >= size {
		t.Fatalf("checkpoint moved %d B — cross-shard links were copied, not linked", moved)
	}

	// Post-checkpoint mutation goes copy-on-write even across shards.
	if err := v0.WriteAt(nil, 0, bytes.Repeat([]byte("shard-zero-gen1!"), chunk/16)); err != nil {
		t.Fatal(err)
	}
	if err := v0.Sync(nil); err != nil {
		t.Fatal(err)
	}

	// Restore both regions from the checkpoint (cross-shard derive).
	dramBack := make([]byte, len(dram))
	if err := c.ReadCheckpointDRAM(nil, "sh.ckpt", dramBack); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dramBack, dram) {
		t.Fatalf("DRAM restore mismatch: %q", dramBack)
	}
	for i, want := range [][]byte{p0, p1} {
		restored, err := c.RestoreRegion(nil, "sh.ckpt", info.Regions[i],
			shardName(t, fmt.Sprintf("sh.rest%d-", i), i, 2))
		if err != nil {
			t.Fatalf("restore region %d: %v", i, err)
		}
		back := make([]byte, size)
		if err := restored.ReadAt(nil, 0, back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, want) {
			t.Fatalf("restored region %d does not match generation-0 state", i)
		}
		if err := restored.Free(nil); err != nil {
			t.Fatal(err)
		}
	}

	// ssdfree + checkpoint delete drains the cross-shard references.
	if err := v0.Free(nil); err != nil {
		t.Fatal(err)
	}
	if err := v1.Free(nil); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteCheckpoint(nil, "sh.ckpt"); err != nil {
		t.Fatal(err)
	}

	// Kill shard 1: shard 0's keyspace stays fully writable and readable.
	cl.mgrs[1].Close()
	surv, err := c.Malloc(nil, chunk, nvmalloc.WithName(shardName(t, "sh.surv", 0, 2)))
	if err != nil {
		t.Fatalf("malloc on surviving shard after shard death: %v", err)
	}
	pat := bytes.Repeat([]byte{0x5A}, chunk)
	if err := surv.WriteAt(nil, 0, pat); err != nil {
		t.Fatal(err)
	}
	if err := surv.Sync(nil); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, chunk)
	if err := surv.ReadAt(nil, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pat) {
		t.Fatal("surviving shard read mismatch")
	}
	if err := surv.Free(nil); err != nil {
		t.Fatal(err)
	}
	// The dead shard's keyspace errors instead of hanging or lying.
	if _, err := c.Malloc(nil, chunk, nvmalloc.WithName(shardName(t, "sh.dead", 1, 2))); err == nil {
		t.Fatal("malloc on dead shard should fail")
	}
}
