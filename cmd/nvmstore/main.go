// nvmstore runs the aggregate NVM store's daemons over TCP.
//
// Usage:
//
//	nvmstore manager  -listen :7070 [-chunk 262144] [-policy rr|least|wear]
//	          [-replication 1] [-hbtimeout 5s] [-sweep 0]
//	          [-shard 0/2 -peers host:7070,host:7072]
//	          [-debug-addr :7071] [-log info]
//	          [-sample 1s] [-history 300] [-alert-for 30s] [-p99-budget 250ms] [-no-rules]
//	          [-incident-dir /var/lib/nvm/incidents] [-incident-max 8] [-incident-cpu 5s]
//	nvmstore benefactor -manager host:7070[,host:7072] -id 0 [-listen :0] [-dir /ssd/nvm]
//	          [-capacity 1073741824] [-chunk 262144] [-node 0] [-beat 2s]
//	          [-debug-addr :0] [-log info]
//	          [-sample 1s] [-history 300] [-alert-for 30s] [-p99-budget 250ms] [-no-rules]
//	          [-incident-dir /var/lib/nvm/incidents] [-incident-max 8] [-incident-cpu 5s]
//
// A benefactor contributes -capacity bytes of the file system at -dir
// (mount the node-local SSD there) to the store managed by -manager.
//
// A sharded metadata plane runs one manager per shard: start shard i of n
// with -shard i/n and -peers listing every shard's client-facing address in
// shard order (-peers[i] must be this manager). Benefactors then register
// with every shard (-manager takes the same comma-separated list) and
// clients connect with the list — or any one address; the rest is
// discovered from the piggybacked shard map.
//
// With -debug-addr either daemon serves its observability state over HTTP:
// /metrics (JSON metrics snapshot), /metrics.prom (Prometheus text
// exposition), /healthz (503 while an alert rule fires), /vitals (windowed
// rates/percentiles + alert state), /trace (recent events, ?trace=ID
// filters), /spans (hierarchical spans, ?trace=ID filters, ?slow=1 reads
// the slow-op flight recorder), and /debug/pprof. nvmctl's
// metrics/top/trace/slow/watch commands scrape these endpoints; -slow tunes
// which root spans the flight recorder retains.
//
// Both daemons self-monitor: every -sample interval the metrics registry is
// snapshotted into a bounded in-process time series (-history samples) and
// the default alert rules are evaluated against it (-alert-for sustain,
// -p99-budget latency budget; -no-rules disables evaluation, -sample 0
// disables the monitor entirely).
//
// With -incident-dir, any alert rule's pending→firing edge snapshots an
// incident bundle into that directory (goroutine dump, heap + CPU profiles,
// span ring, slow-op flight recorder, recent time-series samples, firing
// rules, shard identity), keeping at most -incident-max bundles. nvmctl's
// capture/incidents/bundle commands drive the same recorder over HTTP.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"nvmalloc/internal/manager"
	"nvmalloc/internal/obs"
	"nvmalloc/internal/rpc"
	"nvmalloc/internal/shardmap"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "manager":
		runManager(os.Args[2:])
	case "benefactor":
		runBenefactor(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: nvmstore manager|benefactor [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nvmstore:", err)
	os.Exit(1)
}

func waitForInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
}

// parseShard resolves the -shard i/n and -peers flags into the manager's
// shard identity. Empty -shard is the unsharded deployment.
func parseShard(shard, peers string) (idx, cnt int, peerList []string, err error) {
	if shard == "" {
		if peers != "" {
			return 0, 0, nil, fmt.Errorf("-peers requires -shard i/n")
		}
		return 0, 0, nil, nil
	}
	if _, err := fmt.Sscanf(shard, "%d/%d", &idx, &cnt); err != nil {
		return 0, 0, nil, fmt.Errorf("-shard %q: want i/n (e.g. 0/2)", shard)
	}
	if cnt < 1 || idx < 0 || idx >= cnt {
		return 0, 0, nil, fmt.Errorf("-shard %q: index out of range", shard)
	}
	peerList = shardmap.SplitAddrs(peers)
	if cnt > 1 && len(peerList) != cnt {
		return 0, 0, nil, fmt.Errorf("-peers lists %d addresses for %d shards", len(peerList), cnt)
	}
	return idx, cnt, peerList, nil
}

// monitorFlags registers the self-monitoring flags shared by both daemons
// and returns a closure resolving them into a MonitorConfig once parsed.
func monitorFlags(fs *flag.FlagSet) func(d obs.RuleDefaults) obs.MonitorConfig {
	sample := fs.Duration("sample", time.Second, "self-monitoring sample interval (0 disables the time series and alert rules)")
	history := fs.Int("history", obs.DefaultSeriesSamples, "time-series samples retained")
	alertFor := fs.Duration("alert-for", 30*time.Second, "how long an alert condition must hold before it fires")
	p99Budget := fs.Duration("p99-budget", 250*time.Millisecond, "op-latency p99 above this fires the latency alert")
	noRules := fs.Bool("no-rules", false, "sample the time series but evaluate no alert rules")
	return func(d obs.RuleDefaults) obs.MonitorConfig {
		cfg := obs.MonitorConfig{SampleInterval: *sample, History: *history}
		if !*noRules {
			d.Sustain = *alertFor
			d.P99Budget = *p99Budget
			cfg.Rules = obs.DefaultRules(d)
		}
		return cfg
	}
}

// incidentFlags registers the incident-recorder flags shared by both
// daemons and returns a closure resolving them into an IncidentConfig
// once parsed (zero config when -incident-dir is unset).
func incidentFlags(fs *flag.FlagSet) func() obs.IncidentConfig {
	dir := fs.String("incident-dir", "", "write alert-triggered incident bundles into this directory (empty disables)")
	maxB := fs.Int("incident-max", 0, "incident bundles retained on disk before the oldest is pruned (0 = 8)")
	cpu := fs.Duration("incident-cpu", 0, "CPU-profile duration inside each bundle (0 = 5s, negative skips)")
	return func() obs.IncidentConfig {
		return obs.IncidentConfig{Dir: *dir, MaxBundles: *maxB, CPUProfile: *cpu}
	}
}

// newObs builds a daemon's observability bundle: metrics registry, event
// ring, and a key=value logger on stderr at the requested level.
func newObs(node, level string) *obs.Obs {
	lvl, err := obs.ParseLevel(level)
	if err != nil {
		fatal(err)
	}
	o := obs.New(node)
	o.Log.SetSink(os.Stderr)
	o.Log.SetLevel(lvl)
	return o
}

func runManager(args []string) {
	fs := flag.NewFlagSet("manager", flag.ExitOnError)
	listen := fs.String("listen", ":7070", "listen address")
	chunk := fs.Int64("chunk", 256<<10, "chunk size in bytes")
	policy := fs.String("policy", "rr", "placement policy: rr|least|wear")
	replication := fs.Int("replication", 1, "copies kept of each chunk (on distinct benefactors)")
	hbTimeout := fs.Duration("hbtimeout", 0, "heartbeat staleness before a benefactor is declared dead (0 = 5s default)")
	sweep := fs.Duration("sweep", 0, "death-sweep clock tick (0 = half of hbtimeout, negative disables)")
	shard := fs.String("shard", "", "shard position i/n on a sharded metadata plane (e.g. 0/2; empty = unsharded)")
	peers := fs.String("peers", "", "comma-separated manager addresses of every shard, in shard order (required with -shard)")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /healthz, /trace, /spans, /debug/pprof on this address (empty disables)")
	logLevel := fs.String("log", "info", "log level: debug|info|warn|error|off")
	slow := fs.Duration("slow", obs.DefaultSlowThreshold, "root spans at least this long are copied to the slow-op flight recorder (0 disables)")
	monitor := monitorFlags(fs)
	incidents := incidentFlags(fs)
	fs.Parse(args)

	shardIdx, shardCnt, peerList, err := parseShard(*shard, *peers)
	if err != nil {
		fatal(err)
	}
	pol := manager.RoundRobin
	switch *policy {
	case "rr":
	case "least":
		pol = manager.LeastLoaded
	case "wear":
		pol = manager.WearAware
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}
	o := newObs("manager", *logLevel)
	o.SetSlowThreshold(*slow)
	srv, err := rpc.NewManagerServerWith(*listen, *chunk, pol, rpc.ManagerConfig{
		Replication:      *replication,
		HeartbeatTimeout: *hbTimeout,
		SweepInterval:    *sweep,
		DebugAddr:        *debugAddr,
		Obs:              o,
		Monitor:          monitor(obs.RuleDefaults{HeartbeatTimeout: *hbTimeout}),
		ShardIndex:       shardIdx,
		ShardCount:       shardCnt,
		Peers:            peerList,
		Incidents:        incidents(),
	})
	if err != nil {
		fatal(err)
	}
	if shardCnt > 1 {
		fmt.Printf("nvmstore manager shard %d/%d listening on %s (chunk=%d, policy=%s, replication=%d)\n",
			shardIdx, shardCnt, srv.Addr(), *chunk, *policy, *replication)
	} else {
		fmt.Printf("nvmstore manager listening on %s (chunk=%d, policy=%s, replication=%d)\n",
			srv.Addr(), *chunk, *policy, *replication)
	}
	if srv.DebugAddr() != "" {
		fmt.Printf("nvmstore manager debug endpoint on %s\n", srv.DebugAddr())
	}
	o.Log.Info("manager started", "addr", srv.Addr(), "debug", srv.DebugAddr(),
		"chunk", *chunk, "policy", *policy, "replication", *replication,
		"shard", shardIdx, "shards", shardCnt)
	waitForInterrupt()
	o.Log.Info("manager shutting down")
	srv.Close()
}

func runBenefactor(args []string) {
	fs := flag.NewFlagSet("benefactor", flag.ExitOnError)
	listen := fs.String("listen", ":0", "listen address")
	mgr := fs.String("manager", "localhost:7070", "manager address(es); on a sharded plane list every shard, comma-separated")
	id := fs.Int("id", 0, "benefactor id (unique across the store)")
	node := fs.Int("node", 0, "hosting node id")
	dir := fs.String("dir", "./nvm-chunks", "chunk directory (node-local SSD mount)")
	capacity := fs.Int64("capacity", 1<<30, "contributed bytes")
	chunk := fs.Int64("chunk", 256<<10, "chunk size (must match the manager)")
	beat := fs.Duration("beat", 2*time.Second, "heartbeat interval")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /healthz, /trace, /spans, /debug/pprof on this address (empty disables)")
	logLevel := fs.String("log", "info", "log level: debug|info|warn|error|off")
	slow := fs.Duration("slow", obs.DefaultSlowThreshold, "root spans at least this long are copied to the slow-op flight recorder (0 disables)")
	monitor := monitorFlags(fs)
	incidents := incidentFlags(fs)
	fs.Parse(args)

	backend, err := rpc.NewFileBackend(*dir)
	if err != nil {
		fatal(err)
	}
	o := newObs(fmt.Sprintf("benefactor-%d", *id), *logLevel)
	o.SetSlowThreshold(*slow)
	srv, err := rpc.NewBenefactorServerWith(*listen, *mgr, *id, *node, *capacity, *chunk, backend, *beat, rpc.BenefactorConfig{
		DebugAddr: *debugAddr,
		Obs:       o,
		Monitor:   monitor(obs.RuleDefaults{}),
		Incidents: incidents(),
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("nvmstore benefactor %d serving %s on %s (capacity=%d)\n", *id, *dir, srv.Addr(), *capacity)
	if srv.DebugAddr() != "" {
		fmt.Printf("nvmstore benefactor %d debug endpoint on %s\n", *id, srv.DebugAddr())
	}
	o.Log.Info("benefactor started", "id", *id, "addr", srv.Addr(), "debug", srv.DebugAddr(),
		"dir", *dir, "capacity", *capacity)
	waitForInterrupt()
	o.Log.Info("benefactor shutting down", "id", *id)
	srv.Close()
}
