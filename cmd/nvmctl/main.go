// nvmctl is the command-line client for a TCP aggregate NVM store.
//
// Usage:
//
//	nvmctl -manager host:7070 status
//	nvmctl -manager host:7070 put   <name> <local-file>
//	nvmctl -manager host:7070 get   <name> <local-file>
//	nvmctl -manager host:7070 stat  <name>
//	nvmctl -manager host:7070 rm    <name>
//	nvmctl -manager host:7070 link  <dst> <part> [part...]
//	nvmctl -manager host:7070 repair
//	nvmctl -manager host:7070 kill  <benefactor-id>
//
// Data-path flags:
//
//	-pool N      connections per benefactor (default 4)
//	-parallel N  chunk transfers in flight per command (default 8)
//	-cache BYTES client chunk cache; 0 disables (default 64 MB for get/put)
//	-stats       print data-path and cache counters after the command
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"nvmalloc/internal/rpc"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nvmctl:", err)
	os.Exit(1)
}

func main() {
	mgr := flag.String("manager", "localhost:7070", "manager address")
	pool := flag.Int("pool", rpc.DefaultPoolSize, "connections per benefactor")
	parallel := flag.Int("parallel", rpc.DefaultParallelism, "chunk transfers in flight")
	cacheBytes := flag.Int64("cache", 64<<20, "client chunk cache bytes (0 disables)")
	showStats := flag.Bool("stats", false, "print data-path counters after the command")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: nvmctl [-manager addr] [-pool n] [-parallel n] [-cache bytes] [-stats] status|put|get|stat|rm|link|repair|kill ...")
		os.Exit(2)
	}
	st, err := rpc.OpenWith(*mgr, rpc.Options{PoolSize: *pool, Parallelism: *parallel})
	if err != nil {
		fatal(err)
	}
	defer st.Close()

	// The data commands run behind the client chunk cache when enabled, so
	// a partial overwrite ships only dirty pages (paper Table VII).
	var cache *rpc.CachedStore
	if *cacheBytes > 0 {
		cache, err = rpc.NewCachedStore(st, rpc.CacheConfig{CacheBytes: *cacheBytes, ReadAheadChunks: 2})
		if err != nil {
			fatal(err)
		}
	}

	put := func(name string, data []byte) error {
		if cache != nil {
			if err := cache.Put(name, data); err != nil {
				return err
			}
			return cache.Flush(name)
		}
		return st.Put(name, data)
	}
	get := func(name string) ([]byte, error) {
		if cache != nil {
			return cache.Get(name)
		}
		return st.Get(name)
	}

	switch args[0] {
	case "status":
		bens, err := st.Manager().Status()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("chunk size: %d bytes\n", st.ChunkSize())
		for _, b := range bens {
			state := "alive"
			if !b.Alive {
				state = "DEAD"
			}
			fmt.Printf("benefactor %d @ %s node=%d used=%d/%d written=%d %s\n",
				b.ID, b.Addr, b.Node, b.Used, b.Capacity, b.WriteVolume, state)
		}
		if under, err := st.Manager().UnderReplicated(); err == nil && under > 0 {
			fmt.Printf("WARNING: %d under-replicated chunks (run `nvmctl repair`)\n", under)
		}
	case "put":
		if len(args) != 3 {
			fatal(fmt.Errorf("put <name> <local-file>"))
		}
		data, err := os.ReadFile(args[2])
		if err != nil {
			fatal(err)
		}
		if err := put(args[1], data); err != nil {
			fatal(err)
		}
		fmt.Printf("stored %q (%d bytes)\n", args[1], len(data))
	case "get":
		if len(args) != 3 {
			fatal(fmt.Errorf("get <name> <local-file>"))
		}
		data, err := get(args[1])
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(args[2], data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("fetched %q (%d bytes)\n", args[1], len(data))
	case "stat":
		if len(args) != 2 {
			fatal(fmt.Errorf("stat <name>"))
		}
		fi, err := st.Stat(args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d bytes, %d chunks\n", fi.Name, fi.Size, len(fi.Chunks))
		for i, ref := range fi.Chunks {
			fmt.Printf("  chunk %d -> %v", i, ref)
			if i < len(fi.Replicas) && len(fi.Replicas[i]) > 1 {
				fmt.Printf(" replicas=%v", fi.Replicas[i][1:])
			}
			fmt.Println()
		}
	case "rm":
		if len(args) != 2 {
			fatal(fmt.Errorf("rm <name>"))
		}
		if err := st.Delete(args[1]); err != nil {
			fatal(err)
		}
	case "link":
		if len(args) < 3 {
			fatal(fmt.Errorf("link <dst> <part> [part...]"))
		}
		fi, err := st.Manager().Link(args[1], args[2:])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s now spans %d chunks (%d bytes)\n", fi.Name, len(fi.Chunks), fi.Size)
	case "repair":
		res, err := st.Manager().Repair()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("repaired %d replica copies, %d failed, backlog %d\n", res.Repaired, res.Failed, res.UnderReplicated)
		for _, id := range res.Lost {
			fmt.Printf("LOST: chunk %d has no surviving copy\n", id)
		}
		if len(res.Lost) > 0 || res.Failed > 0 {
			os.Exit(1)
		}
	case "kill":
		if len(args) != 2 {
			fatal(fmt.Errorf("kill <benefactor-id>"))
		}
		id, err := strconv.Atoi(args[1])
		if err != nil {
			fatal(fmt.Errorf("kill: bad benefactor id %q", args[1]))
		}
		if err := st.Manager().MarkDead(id); err != nil {
			fatal(err)
		}
		fmt.Printf("benefactor %d marked dead; reads fail over, writes degrade until repair\n", id)
	default:
		fatal(fmt.Errorf("unknown command %q", args[0]))
	}

	if *showStats {
		s := st.Stats()
		fmt.Printf("data path: gets=%d puts=%d pagePuts=%d ssdRead=%dB ssdWrite=%dB inflightPeak=%d metaRetries=%d\n",
			s.ChunkGets, s.ChunkPuts, s.PagePuts, s.SSDReadBytes, s.SSDWriteBytes, s.InFlightPeak, s.MetaRetries)
		fmt.Printf("fault path: retries=%d failovers=%d degradedWrites=%d\n",
			s.Retries, s.Failovers, s.DegradedWrites)
		if cache != nil {
			c := cache.Stats()
			fmt.Printf("cache: hits=%d misses=%d evictions=%d dirtyEvictions=%d flushes=%d readAhead=%dB\n",
				c.Hits, c.Misses, c.Evictions, c.DirtyEvictions, c.Flushes, c.PrefetchBytes)
		}
	}
}
