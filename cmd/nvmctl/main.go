// nvmctl is the command-line client for a TCP aggregate NVM store.
//
// Usage:
//
//	nvmctl -manager host:7070 status
//	nvmctl -manager host:7070 put   <name> <local-file>
//	nvmctl -manager host:7070 get   <name> <local-file>
//	nvmctl -manager host:7070 stat  <name>
//	nvmctl -manager host:7070 rm    <name>
//	nvmctl -manager host:7070 link  <dst> <part> [part...]
package main

import (
	"flag"
	"fmt"
	"os"

	"nvmalloc/internal/rpc"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nvmctl:", err)
	os.Exit(1)
}

func main() {
	mgr := flag.String("manager", "localhost:7070", "manager address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: nvmctl [-manager addr] status|put|get|stat|rm|link ...")
		os.Exit(2)
	}
	st, err := rpc.Open(*mgr)
	if err != nil {
		fatal(err)
	}
	defer st.Close()

	switch args[0] {
	case "status":
		bens, err := st.Manager().Status()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("chunk size: %d bytes\n", st.ChunkSize())
		for _, b := range bens {
			state := "alive"
			if !b.Alive {
				state = "DEAD"
			}
			fmt.Printf("benefactor %d @ %s node=%d used=%d/%d written=%d %s\n",
				b.ID, b.Addr, b.Node, b.Used, b.Capacity, b.WriteVolume, state)
		}
	case "put":
		if len(args) != 3 {
			fatal(fmt.Errorf("put <name> <local-file>"))
		}
		data, err := os.ReadFile(args[2])
		if err != nil {
			fatal(err)
		}
		if err := st.Put(args[1], data); err != nil {
			fatal(err)
		}
		fmt.Printf("stored %q (%d bytes)\n", args[1], len(data))
	case "get":
		if len(args) != 3 {
			fatal(fmt.Errorf("get <name> <local-file>"))
		}
		data, err := st.Get(args[1])
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(args[2], data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("fetched %q (%d bytes)\n", args[1], len(data))
	case "stat":
		if len(args) != 2 {
			fatal(fmt.Errorf("stat <name>"))
		}
		fi, err := st.Stat(args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d bytes, %d chunks\n", fi.Name, fi.Size, len(fi.Chunks))
		for i, ref := range fi.Chunks {
			fmt.Printf("  chunk %d -> %v\n", i, ref)
		}
	case "rm":
		if len(args) != 2 {
			fatal(fmt.Errorf("rm <name>"))
		}
		if err := st.Delete(args[1]); err != nil {
			fatal(err)
		}
	case "link":
		if len(args) < 3 {
			fatal(fmt.Errorf("link <dst> <part> [part...]"))
		}
		fi, err := st.Manager().Link(args[1], args[2:])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s now spans %d chunks (%d bytes)\n", fi.Name, len(fi.Chunks), fi.Size)
	default:
		fatal(fmt.Errorf("unknown command %q", args[0]))
	}
}
