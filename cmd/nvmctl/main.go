// nvmctl is the command-line client for a TCP aggregate NVM store.
//
// On a sharded metadata plane -manager takes every shard's address,
// comma-separated (or any one of them — the rest is discovered from the
// piggybacked shard map). status/repair/kill and the observability
// commands aggregate across all shards; put/get/stat/rm/link route by the
// consistent-hash shard map.
//
// Usage:
//
//	nvmctl -manager host:7070 status
//	nvmctl -manager host:7070 put   <name> <local-file>
//	nvmctl -manager host:7070 get   <name> <local-file>
//	nvmctl -manager host:7070 stat  <name>
//	nvmctl -manager host:7070 rm    <name>
//	nvmctl -manager host:7070 link  <dst> <part> [part...]
//	nvmctl -manager host:7070 repair
//	nvmctl -manager host:7070 kill  <benefactor-id>
//	nvmctl -manager host:7070 ckpt-demo   full malloc/checkpoint/COW/restore/free cycle
//
// Observability commands (daemons must run with -debug-addr):
//
//	nvmctl -manager host:7070 metrics [host:debugport]  scrape one node's /metrics
//	nvmctl -manager host:7070 top                       cluster-wide latency/rate summary
//	nvmctl -manager host:7070 top -by-var               time/bytes attributed per NVM variable
//	nvmctl -manager host:7070 trace [trace-id]          span waterfall + events across all nodes
//	nvmctl -manager host:7070 slow                      slow-op flight recorder, cluster-wide
//	nvmctl -manager host:7070 watch [-once] [-interval 2s] [-window 30s]
//	                                                    live health view: windowed rates,
//	                                                    cluster percentiles, alerts
//
// Incident commands (daemons must also run with -incident-dir):
//
//	nvmctl -manager host:7070 incidents                 list incident bundles cluster-wide
//	nvmctl -manager host:7070 capture [-reason why] [-force]
//	                                                    snapshot a bundle on every daemon now
//	nvmctl -manager host:7070 bundle <id> [-o out.tar.gz] [-tolerance 2m]
//	                                                    fetch every daemon's bundle from the
//	                                                    same incident window, merged into one
//	                                                    archive (<node>/... entries)
//
// put and get print a `trace <id>` line; feed the id to `nvmctl trace` to
// see the op's hierarchical waterfall (client -> cache -> wire -> manager/
// benefactor -> SSD) with the critical path marked.
//
// Data-path flags:
//
//	-pool N      connections per benefactor (default 4)
//	-parallel N  chunk transfers in flight per command (default 8)
//	-cache BYTES client chunk cache; 0 disables (default 64 MB for get/put)
//	-cache-dir D persistent file-backed second cache tier (warm restarts)
//	-stats       print data-path and cache counters after the command
//	-n N         events/spans per node for trace and slow (default 50)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"nvmalloc"
	"nvmalloc/internal/obs"
	"nvmalloc/internal/proto"
	"nvmalloc/internal/rpc"
	"nvmalloc/internal/store"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nvmctl:", err)
	os.Exit(1)
}

func main() {
	mgr := flag.String("manager", "localhost:7070", "manager address(es); on a sharded plane list every shard, comma-separated")
	pool := flag.Int("pool", rpc.DefaultPoolSize, "connections per benefactor")
	parallel := flag.Int("parallel", rpc.DefaultParallelism, "chunk transfers in flight")
	cacheBytes := flag.Int64("cache", 64<<20, "client chunk cache bytes (0 disables)")
	cacheDir := flag.String("cache-dir", "", "persistent file-backed cache tier directory (empty disables)")
	showStats := flag.Bool("stats", false, "print data-path counters after the command")
	traceN := flag.Int("n", 50, "events per node for the trace command")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: nvmctl [-manager addr] [-pool n] [-parallel n] [-cache bytes] [-cache-dir dir] [-stats] status|put|get|stat|rm|link|repair|kill|ckpt-demo|metrics|top|trace|slow|watch|capture|incidents|bundle ...")
		os.Exit(2)
	}
	st, err := rpc.OpenWith(*mgr, rpc.Options{PoolSize: *pool, Parallelism: *parallel})
	if err != nil {
		fatal(err)
	}

	// The data commands run behind the client chunk cache when enabled, so
	// a partial overwrite ships only dirty pages (paper Table VII).
	var cache *rpc.CachedStore
	if *cacheBytes > 0 {
		cache, err = rpc.NewCachedStore(st, rpc.CacheConfig{CacheBytes: *cacheBytes, ReadAheadChunks: 2, CacheDir: *cacheDir})
		if err != nil {
			st.Close()
			fatal(err)
		}
	}
	// CachedStore.Close flushes, commits the file tier (-cache-dir), and
	// closes st; with the cache disabled, close the store directly.
	defer func() {
		if cache != nil {
			cache.Close()
		} else {
			st.Close()
		}
	}()

	// Data commands run under one command-rooted span covering the whole
	// path — for put with the cache enabled that is Create + WriteAt + Flush,
	// so the payload's actual trip to the benefactors lands in the same
	// trace. The trace ID is printed so the waterfall is one
	// `nvmctl trace <id>` away.
	traced := func(name, op string, fn func(ctx store.Ctx, sp *obs.ActiveSpan) error) error {
		sp := st.Obs().StartSpan("", "", op)
		sp.SetVar(name)
		ctx := store.WithSpan(nil, store.SpanInfo{Trace: sp.Trace(), Parent: sp.ID(), Var: name})
		err := fn(ctx, sp)
		sp.SetErr(err)
		sp.End()
		if err == nil && sp.Trace() != "" {
			fmt.Printf("trace %s\n", sp.Trace())
		}
		return err
	}
	put := func(name string, data []byte) error {
		return traced(name, "client.put", func(ctx store.Ctx, sp *obs.ActiveSpan) error {
			sp.AddBytes(int64(len(data)))
			if cache != nil {
				if err := cache.PutCtx(ctx, name, data); err != nil {
					return err
				}
				return cache.FlushCtx(ctx, name)
			}
			return st.PutCtx(ctx, name, data)
		})
	}
	get := func(name string) ([]byte, error) {
		var data []byte
		err := traced(name, "client.get", func(ctx store.Ctx, sp *obs.ActiveSpan) error {
			var err error
			if cache != nil {
				data, err = cache.GetCtx(ctx, name)
			} else {
				data, err = st.GetCtx(ctx, name)
			}
			sp.AddBytes(int64(len(data)))
			return err
		})
		return data, err
	}

	switch args[0] {
	case "status":
		runStatus(st)
	case "put":
		if len(args) != 3 {
			fatal(fmt.Errorf("put <name> <local-file>"))
		}
		data, err := os.ReadFile(args[2])
		if err != nil {
			fatal(err)
		}
		if err := put(args[1], data); err != nil {
			fatal(err)
		}
		fmt.Printf("stored %q (%d bytes)\n", args[1], len(data))
	case "get":
		if len(args) != 3 {
			fatal(fmt.Errorf("get <name> <local-file>"))
		}
		data, err := get(args[1])
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(args[2], data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("fetched %q (%d bytes)\n", args[1], len(data))
	case "stat":
		if len(args) != 2 {
			fatal(fmt.Errorf("stat <name>"))
		}
		fi, err := st.Stat(args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d bytes, %d chunks\n", fi.Name, fi.Size, len(fi.Chunks))
		for i, ref := range fi.Chunks {
			fmt.Printf("  chunk %d -> %v", i, ref)
			if i < len(fi.Replicas) && len(fi.Replicas[i]) > 1 {
				fmt.Printf(" replicas=%v", fi.Replicas[i][1:])
			}
			fmt.Println()
		}
	case "rm":
		if len(args) != 2 {
			fatal(fmt.Errorf("rm <name>"))
		}
		if err := st.Delete(args[1]); err != nil {
			fatal(err)
		}
	case "link":
		if len(args) < 3 {
			fatal(fmt.Errorf("link <dst> <part> [part...]"))
		}
		// The Store's own link routes by the shard map and orchestrates the
		// cross-shard retain/link protocol when parts live on other shards.
		fi, err := st.Link(args[1], args[2:])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s now spans %d chunks (%d bytes)\n", fi.Name, len(fi.Chunks), fi.Size)
	case "repair":
		// Every shard repairs its own chunk table; results aggregate.
		var res rpc.RepairResult
		for i := range st.ShardAddrs() {
			mc, err := st.ShardManager(i)
			if err != nil {
				fatal(fmt.Errorf("shard %d: %w", i, err))
			}
			r, err := mc.Repair()
			if err != nil {
				fatal(fmt.Errorf("shard %d: %w", i, err))
			}
			res.Repaired += r.Repaired
			res.Failed += r.Failed
			res.UnderReplicated += r.UnderReplicated
			res.Lost = append(res.Lost, r.Lost...)
		}
		fmt.Printf("repaired %d replica copies, %d failed, backlog %d\n", res.Repaired, res.Failed, res.UnderReplicated)
		for _, id := range res.Lost {
			fmt.Printf("LOST: chunk %d has no surviving copy\n", id)
		}
		if len(res.Lost) > 0 || res.Failed > 0 {
			os.Exit(1)
		}
	case "kill":
		if len(args) != 2 {
			fatal(fmt.Errorf("kill <benefactor-id>"))
		}
		id, err := strconv.Atoi(args[1])
		if err != nil {
			fatal(fmt.Errorf("kill: bad benefactor id %q", args[1]))
		}
		// A benefactor is registered with every shard; fence it everywhere.
		for i := range st.ShardAddrs() {
			mc, err := st.ShardManager(i)
			if err != nil {
				fatal(fmt.Errorf("shard %d: %w", i, err))
			}
			if err := mc.MarkDead(id); err != nil {
				fatal(fmt.Errorf("shard %d: %w", i, err))
			}
		}
		fmt.Printf("benefactor %d marked dead; reads fail over, writes degrade until repair\n", id)
	case "ckpt-demo":
		runCkptDemo(*mgr)
	case "metrics":
		addr := ""
		if len(args) == 2 {
			addr = args[1]
		}
		runMetrics(st, addr)
	case "top":
		if len(args) >= 2 && (args[1] == "-by-var" || args[1] == "--by-var") {
			runTopByVar(st)
		} else {
			runTop(st)
		}
	case "trace":
		id := ""
		if len(args) == 2 {
			id = args[1]
		}
		runTrace(st, id, *traceN)
	case "slow":
		runSlow(st, *traceN)
	case "watch":
		runWatch(st, args[1:])
	case "capture":
		runCapture(st, args[1:])
	case "incidents":
		runIncidents(st)
	case "bundle":
		runBundle(st, args[1:])
	default:
		fatal(fmt.Errorf("unknown command %q", args[0]))
	}

	if *showStats {
		s := st.Stats()
		fmt.Printf("data path: gets=%d puts=%d pagePuts=%d ssdRead=%dB ssdWrite=%dB inflightPeak=%d metaRetries=%d\n",
			s.ChunkGets, s.ChunkPuts, s.PagePuts, s.SSDReadBytes, s.SSDWriteBytes, s.InFlightPeak, s.MetaRetries)
		fmt.Printf("fault path: retries=%d failovers=%d degradedWrites=%d\n",
			s.Retries, s.Failovers, s.DegradedWrites)
		if cache != nil {
			c := cache.Stats()
			fmt.Printf("cache: hits=%d misses=%d evictions=%d dirtyEvictions=%d flushes=%d readAhead=%dB\n",
				c.Hits, c.Misses, c.Evictions, c.DirtyEvictions, c.Flushes, c.PrefetchBytes)
			if f, ok := cache.FileTierStats(); ok {
				fmt.Printf("file tier: hits=%d misses=%d spills=%d evictions=%d commits=%d rebuilds=%d corrupt=%d live=%dB/%d\n",
					f.Hits, f.Misses, f.Puts, f.Evictions, f.Commits, f.Rebuilds, f.CorruptPayloads, f.LiveBytes, f.LiveEntries)
			}
		}
	}
}

// runCkptDemo exercises the full library API — ssdmalloc, ssdcheckpoint
// with chunk linking, copy-on-write mutation, restore, ssdfree — against
// the live store, through the same facade Connect an application uses.
func runCkptDemo(mgrAddr string) {
	c, err := nvmalloc.Connect(mgrAddr, nvmalloc.ConnectConfig{})
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	chunk := c.ChunkCache().Config().ChunkSize
	size := 4 * chunk
	r, err := c.Malloc(nil, size, nvmalloc.WithName("ckpt-demo.state"))
	if err != nil {
		fatal(err)
	}
	payload := bytes.Repeat([]byte("iteration-0!"), int(size)/12+1)[:size]
	if err := r.WriteAt(nil, 0, payload); err != nil {
		fatal(err)
	}
	if err := r.Sync(nil); err != nil {
		fatal(err)
	}
	fmt.Printf("ssdmalloc %q: %d bytes\n", r.Name(), r.Size())

	before := c.ChunkCache().Stats().SSDWriteBytes
	dram := []byte("rank 0 solver state")
	info, err := c.Checkpoint(nil, "ckpt-demo.ckpt", dram, r)
	if err != nil {
		fatal(err)
	}
	moved := c.ChunkCache().Stats().SSDWriteBytes - before
	fmt.Printf("ssdcheckpoint %q: %d linked chunks, %d B moved (DRAM dump only)\n",
		info.Name, info.LinkedChunks, moved)

	if err := r.WriteAt(nil, 0, []byte("iteration-1!")); err != nil {
		fatal(err)
	}
	if err := r.Sync(nil); err != nil {
		fatal(err)
	}
	restored, err := c.RestoreRegion(nil, info.Name, info.Regions[0], "ckpt-demo.restored")
	if err != nil {
		fatal(err)
	}
	head := make([]byte, 12)
	if err := restored.ReadAt(nil, 0, head); err != nil {
		fatal(err)
	}
	fmt.Printf("mutated live variable; restored snapshot still starts %q (COW)\n", head)
	if !bytes.Equal(head, payload[:12]) {
		fatal(fmt.Errorf("ckpt-demo: restored data diverged from snapshot"))
	}

	for _, rr := range []*nvmalloc.Region{r, restored} {
		if err := rr.Free(nil); err != nil {
			fatal(err)
		}
	}
	if err := c.DeleteCheckpoint(nil, info.Name); err != nil {
		fatal(err)
	}
	fmt.Println("ssdfree: demo state released")
}

// node is one scrapeable cluster member.
type node struct {
	name string
	addr string // debug endpoint host:port, "" when the daemon has none
}

// fixHost rebinds a debug address announced with an unspecified host
// (":7071", "[::]:7071", "0.0.0.0:7071") onto the host the daemon is
// actually reachable at (taken from its RPC address).
func fixHost(debugAddr, rpcAddr string) string {
	if debugAddr == "" {
		return ""
	}
	dh, dp, err := net.SplitHostPort(debugAddr)
	if err != nil {
		return debugAddr
	}
	if dh == "" || dh == "::" || dh == "0.0.0.0" {
		if rh, _, err := net.SplitHostPort(rpcAddr); err == nil && rh != "" {
			return net.JoinHostPort(rh, dp)
		}
	}
	return debugAddr
}

// shardInfo is one metadata shard's reachability and status snapshot.
type shardInfo struct {
	addr  string
	debug string // debug endpoint, "" when the daemon has none
	epoch int64  // membership epoch the shard reported (0 pre-shard)
	under int    // under-replicated backlog on this shard
	err   error  // non-nil when the shard could not be reached
}

// mgrName labels shard i's manager node ("manager" when unsharded).
func mgrName(i, n int) string {
	if n <= 1 {
		return "manager"
	}
	return fmt.Sprintf("manager-%d", i)
}

// discover lists the cluster's debug endpoints — every manager shard, then
// every registered benefactor (merged across shards) — plus each shard's
// status snapshot. It succeeds as long as at least one shard answers, so
// the observability commands keep working with a shard down.
func discover(st *rpc.Store) ([]node, []shardInfo, []proto.BenefactorInfo, error) {
	addrs := st.ShardAddrs()
	shards := make([]shardInfo, len(addrs))
	nodes := make([]node, 0, len(addrs))
	reachable := 0
	for i, addr := range addrs {
		si := shardInfo{addr: addr}
		mc, err := st.ShardManager(i)
		if err == nil {
			var resp proto.ManagerResp
			if resp, err = mc.StatusDetail(); err == nil {
				si.debug = fixHost(resp.DebugAddr, addr)
				si.epoch = resp.ShardEpoch
				si.under = resp.UnderReplicated
				reachable++
			}
		}
		si.err = err
		shards[i] = si
		nodes = append(nodes, node{name: mgrName(i, len(addrs)), addr: si.debug})
	}
	if reachable == 0 {
		return nil, shards, nil, fmt.Errorf("no manager shard reachable")
	}
	bens, err := st.Status()
	if err != nil {
		return nil, shards, nil, err
	}
	for _, b := range bens {
		nodes = append(nodes, node{
			name: fmt.Sprintf("benefactor-%d", b.ID),
			addr: fixHost(b.DebugAddr, b.Addr),
		})
	}
	return nodes, shards, bens, nil
}

const noDebug = "n/a (daemon has no -debug-addr)"

func runStatus(st *rpc.Store) {
	nodes, shards, bens, err := discover(st)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("chunk size: %d bytes, %d metadata shard(s)\n", st.ChunkSize(), len(shards))
	for i, si := range shards {
		if si.err != nil {
			fmt.Printf("%s @ %s: UNREACHABLE (%v)\n", mgrName(i, len(shards)), si.addr, si.err)
		} else if len(shards) > 1 {
			fmt.Printf("%s @ %s epoch=%d under_replicated=%d\n",
				mgrName(i, len(shards)), si.addr, si.epoch, si.under)
		}
	}
	for i, b := range bens {
		state := "alive"
		if !b.Alive {
			state = "DEAD"
		}
		// Used and Capacity are the device totals, summed back from each
		// shard's capacity split by the merged Status.
		fmt.Printf("benefactor %d @ %s node=%d used=%d/%d written=%d %s beat_age=%s\n",
			b.ID, b.Addr, b.Node, b.Used, b.Capacity, b.WriteVolume, state,
			time.Duration(b.BeatAgeNanos).Round(time.Millisecond))
		// Server-side device traffic from the benefactor's own registry —
		// the authoritative view, unlike client-side counters.
		if addr := nodes[len(shards)+i].addr; addr != "" {
			if snap, err := obs.FetchMetrics(addr); err == nil {
				fmt.Printf("  ssd: read=%dB written=%dB (server-side)\n",
					snap.Counters["ssd.read_bytes"], snap.Counters["ssd.write_bytes"])
			} else {
				fmt.Printf("  ssd: scrape failed: %v\n", err)
			}
		} else {
			fmt.Printf("  ssd: %s\n", noDebug)
		}
	}
	under := 0
	for _, si := range shards {
		under += si.under
	}
	if under > 0 {
		fmt.Printf("WARNING: %d under-replicated chunks (run `nvmctl repair`)\n", under)
	}
	for i, si := range shards {
		name := mgrName(i, len(shards))
		if si.debug != "" {
			if snap, err := obs.FetchMetrics(si.debug); err == nil {
				fmt.Printf("%s: repaired=%d repair_failures=%d benefactor_deaths=%d\n",
					name,
					snap.Counters["manager.chunks_repaired"],
					snap.Counters["manager.repair_failures"],
					snap.Counters["manager.benefactor_deaths"])
			}
		} else if si.err == nil {
			fmt.Printf("%s: repair counters %s\n", name, noDebug)
		}
	}
}

func runMetrics(st *rpc.Store, addr string) {
	if addr == "" {
		_, shards, _, err := discover(st)
		if err != nil {
			fatal(err)
		}
		for _, si := range shards {
			if si.debug != "" {
				addr = si.debug
				break
			}
		}
		if addr == "" {
			fatal(fmt.Errorf("metrics: manager %s", noDebug))
		}
	}
	snap, err := obs.FetchMetrics(addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("node %s up %.1fs\n", snap.Node, snap.UptimeSeconds)
	printSnapshot(snap)
}

func printSnapshot(snap obs.Snapshot) {
	for _, name := range snap.MetricNames() {
		if v, ok := snap.Counters[name]; ok {
			fmt.Printf("  %-40s %d\n", name, v)
		}
		if v, ok := snap.Gauges[name]; ok {
			fmt.Printf("  %-40s %d (gauge)\n", name, v)
		}
		if h, ok := snap.Histograms[name]; ok && h.Count > 0 {
			fmt.Printf("  %-40s n=%d mean=%v p50=%v p95=%v p99=%v\n",
				name, h.Count, h.Mean().Round(time.Microsecond),
				time.Duration(h.P50Nanos).Round(time.Microsecond),
				time.Duration(h.P95Nanos).Round(time.Microsecond),
				time.Duration(h.P99Nanos).Round(time.Microsecond))
		}
	}
}

// runTop aggregates every node's registry into one cluster view: counters
// sum, histograms merge bucket-wise (so the percentiles are cluster-wide,
// not an average of per-node percentiles).
func runTop(st *rpc.Store) {
	nodes, _, _, err := discover(st)
	if err != nil {
		fatal(err)
	}
	counters := make(map[string]int64)
	hists := make(map[string]obs.HistogramSnapshot)
	var maxUptime float64
	scraped := 0
	for _, n := range nodes {
		if n.addr == "" {
			fmt.Printf("%-16s %s\n", n.name, noDebug)
			continue
		}
		snap, err := obs.FetchMetrics(n.addr)
		if err != nil {
			fmt.Printf("%-16s scrape failed: %v\n", n.name, err)
			continue
		}
		scraped++
		fmt.Printf("%-16s up %.1fs @ %s\n", n.name, snap.UptimeSeconds, n.addr)
		if snap.UptimeSeconds > maxUptime {
			maxUptime = snap.UptimeSeconds
		}
		for name, v := range snap.Counters {
			counters[name] += v
		}
		for name, h := range snap.Histograms {
			if cur, ok := hists[name]; ok {
				hists[name] = cur.Merge(h)
			} else {
				hists[name] = h
			}
		}
	}
	if scraped == 0 {
		fatal(fmt.Errorf("top: no node exposes a debug endpoint"))
	}

	fmt.Printf("\n%-40s %10s %10s %10s %10s %10s\n", "operation", "count", "p50", "p95", "p99", "rate/s")
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := hists[name]
		if h.Count == 0 {
			continue
		}
		rate := float64(0)
		if maxUptime > 0 {
			rate = float64(h.Count) / maxUptime
		}
		fmt.Printf("%-40s %10d %10v %10v %10v %10.1f\n",
			name, h.Count,
			time.Duration(h.P50Nanos).Round(time.Microsecond),
			time.Duration(h.P95Nanos).Round(time.Microsecond),
			time.Duration(h.P99Nanos).Round(time.Microsecond),
			rate)
	}

	fmt.Println()
	cnames := make([]string, 0, len(counters))
	for name := range counters {
		cnames = append(cnames, name)
	}
	sort.Strings(cnames)
	for _, name := range cnames {
		fmt.Printf("%-40s %10d\n", name, counters[name])
	}
}

// runTrace assembles one trace's span tree from every node's span ring and
// renders it as a waterfall with the critical path marked, followed by the
// trace's raw events. Without an id it dumps recent events only (spans of
// many unrelated traces do not merge into a meaningful waterfall).
func runTrace(st *rpc.Store, id string, n int) {
	nodes, _, _, err := discover(st)
	if err != nil {
		fatal(err)
	}
	if id != "" {
		spans := collectSpans(nodes, id, false, 0)
		if len(spans) > 0 {
			renderWaterfall(spans)
			fmt.Println()
		}
	}
	type tagged struct {
		node string
		ev   obs.Event
	}
	var all []tagged
	for _, nd := range nodes {
		if nd.addr == "" {
			continue
		}
		events, err := obs.FetchTrace(nd.addr, id, n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmctl: %s: %v\n", nd.name, err)
			continue
		}
		for _, ev := range events {
			all = append(all, tagged{nd.name, ev})
		}
	}
	// Stable sort with a full tie-break: events from different nodes often
	// share a timestamp at coarse clock resolution, and re-running the
	// command must not shuffle them.
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].ev.UnixNanos != all[j].ev.UnixNanos {
			return all[i].ev.UnixNanos < all[j].ev.UnixNanos
		}
		if all[i].node != all[j].node {
			return all[i].node < all[j].node
		}
		return all[i].ev.Detail < all[j].ev.Detail
	})
	for _, t := range all {
		trace := t.ev.Trace
		if trace == "" {
			trace = "-"
		}
		fmt.Printf("%s %-16s %-12s %-14s %s %s\n",
			t.ev.Time().Format("15:04:05.000000"), t.node, t.ev.Comp, t.ev.Kind, trace, t.ev.Detail)
	}
	if len(all) == 0 {
		fmt.Println("no events (daemons running without -debug-addr, or ring empty)")
	}
}

// collectSpans scrapes every node's span ring (or its slow-op flight
// recorder) and deduplicates by span ID — a span can surface on two nodes
// when a client exported it to the manager.
func collectSpans(nodes []node, trace string, slow bool, n int) []obs.Span {
	seen := make(map[string]bool)
	var out []obs.Span
	for _, nd := range nodes {
		if nd.addr == "" {
			continue
		}
		spans, err := obs.FetchSpans(nd.addr, trace, slow, n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmctl: %s: %v\n", nd.name, err)
			continue
		}
		for _, sp := range spans {
			if sp.ID == "" || seen[sp.ID] {
				continue
			}
			seen[sp.ID] = true
			out = append(out, sp)
		}
	}
	return out
}

// layerOf maps a span's "layer.op" name to the waterfall's breakdown rows.
func layerOf(name string) string {
	switch prefix, _, _ := strings.Cut(name, "."); prefix {
	case "client":
		return "client"
	case "cache":
		return "client cache"
	case "filecache":
		return "file cache"
	case "pool":
		return "pool wait"
	case "rpc":
		return "wire"
	case "manager":
		return "manager"
	case "benefactor":
		return "benefactor"
	case "ssd":
		return "ssd backend"
	default:
		return prefix
	}
}

// renderWaterfall prints one trace's span tree: an ASCII waterfall per root
// (bars positioned on the root's timeline, `*` marking the critical path)
// and a per-layer breakdown of exclusive time — each layer's self time with
// its children's time subtracted, so the layers sum to where the trace
// actually went.
func renderWaterfall(spans []obs.Span) {
	byID := make(map[string]obs.Span, len(spans))
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	kids := make(map[string][]obs.Span)
	var roots []obs.Span
	for _, sp := range spans {
		if sp.Parent != "" {
			if _, ok := byID[sp.Parent]; ok {
				kids[sp.Parent] = append(kids[sp.Parent], sp)
				continue
			}
			// Orphan: its parent fell out of a ring. Promote to root so the
			// data still shows.
		}
		roots = append(roots, sp)
	}
	for id := range kids {
		ks := kids[id]
		sort.SliceStable(ks, func(i, j int) bool {
			if ks[i].StartNanos != ks[j].StartNanos {
				return ks[i].StartNanos < ks[j].StartNanos
			}
			return ks[i].ID < ks[j].ID
		})
	}
	sort.SliceStable(roots, func(i, j int) bool { return roots[i].StartNanos < roots[j].StartNanos })

	for _, root := range roots {
		crit := make(map[string]bool)
		markCritical(root, kids, crit)

		// The render window spans the whole tree: child clocks on other
		// nodes may run ahead of the root's (skew), and bars must not
		// escape the frame.
		lo, hi := root.StartNanos, root.End()
		var walk func(obs.Span)
		walk = func(sp obs.Span) {
			if sp.StartNanos < lo {
				lo = sp.StartNanos
			}
			if sp.End() > hi {
				hi = sp.End()
			}
			for _, k := range kids[sp.ID] {
				walk(k)
			}
		}
		walk(root)

		fmt.Printf("trace %s  root %s  %s  %s\n",
			root.Trace, root.Name, fmtVar(root.Var), fmtDur(root.DurNanos))
		printSpan(root, kids, crit, lo, hi, 0)

		excl := make(map[string]int64)
		var total int64
		var sum func(obs.Span)
		sum = func(sp obs.Span) {
			self := sp.DurNanos
			for _, k := range kids[sp.ID] {
				self -= k.DurNanos
				sum(k)
			}
			if self < 0 {
				self = 0 // parallel children overlap; no negative self time
			}
			excl[layerOf(sp.Name)] += self
			total += self
		}
		sum(root)
		fmt.Println("  layer breakdown (exclusive time):")
		order := []string{"client", "client cache", "file cache", "pool wait", "wire", "manager", "benefactor", "ssd backend"}
		printed := make(map[string]bool)
		printLayer := func(l string) {
			ns, ok := excl[l]
			if !ok || printed[l] {
				return
			}
			printed[l] = true
			pct := float64(0)
			if total > 0 {
				pct = 100 * float64(ns) / float64(total)
			}
			fmt.Printf("    %-14s %10s  %5.1f%%\n", l, fmtDur(ns), pct)
		}
		for _, l := range order {
			printLayer(l)
		}
		lnames := make([]string, 0, len(excl))
		for l := range excl {
			lnames = append(lnames, l)
		}
		sort.Strings(lnames)
		for _, l := range lnames {
			printLayer(l)
		}
		fmt.Println()
	}
	fmt.Println("  (* = critical path)")
}

// markCritical walks the span tree marking the critical path: the chain of
// children that ends last dominates its parent's duration; earlier children
// join the path only when they end before the later critical child begins
// (they were the bottleneck until then).
func markCritical(sp obs.Span, kids map[string][]obs.Span, crit map[string]bool) {
	crit[sp.ID] = true
	ks := append([]obs.Span(nil), kids[sp.ID]...)
	sort.SliceStable(ks, func(i, j int) bool { return ks[i].End() > ks[j].End() })
	first := true
	var frontier int64
	for _, k := range ks {
		if !first && k.End() > frontier {
			continue // overlapped by a later critical child: off the path
		}
		first = false
		markCritical(k, kids, crit)
		frontier = k.StartNanos
	}
}

const barWidth = 40

// printSpan renders one span row and recurses into its children.
func printSpan(sp obs.Span, kids map[string][]obs.Span, crit map[string]bool, lo, hi int64, depth int) {
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	from := int(int64(barWidth) * (sp.StartNanos - lo) / span)
	to := int(int64(barWidth) * (sp.End() - lo) / span)
	if to <= from {
		to = from + 1
	}
	if to > barWidth {
		to = barWidth
	}
	bar := strings.Repeat(" ", from) + strings.Repeat("=", to-from) + strings.Repeat(" ", barWidth-to)
	mark := " "
	if crit[sp.ID] {
		mark = "*"
	}
	detail := ""
	if sp.Bytes > 0 {
		detail = fmt.Sprintf(" %dB", sp.Bytes)
	}
	if sp.Err != "" {
		detail += " ERR=" + sp.Err
	}
	fmt.Printf("  %s%-*s %-14s %9s [%s]%s\n",
		mark, 28, strings.Repeat("  ", depth)+sp.Name, sp.Node, fmtDur(sp.DurNanos), bar, detail)
	for _, k := range kids[sp.ID] {
		printSpan(k, kids, crit, lo, hi, depth+1)
	}
}

func fmtDur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func fmtVar(v string) string {
	if v == "" {
		return "var=-"
	}
	return fmt.Sprintf("var=%q", v)
}

// runSlow lists the cluster's slow-op flight recorders: root spans that
// exceeded the daemons' -slow threshold, retained even after the main span
// ring wrapped. Slowest first.
func runSlow(st *rpc.Store, n int) {
	nodes, _, _, err := discover(st)
	if err != nil {
		fatal(err)
	}
	spans := collectSpans(nodes, "", true, n)
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].DurNanos != spans[j].DurNanos {
			return spans[i].DurNanos > spans[j].DurNanos
		}
		return spans[i].ID < spans[j].ID
	})
	if len(spans) == 0 {
		fmt.Println("no slow ops recorded (below threshold, or daemons running without -debug-addr)")
		return
	}
	fmt.Printf("%-10s %-18s %-16s %-24s %-10s %s\n", "dur", "op", "node", "var", "bytes", "trace")
	for _, sp := range spans {
		errNote := ""
		if sp.Err != "" {
			errNote = "  ERR=" + sp.Err
		}
		fmt.Printf("%-10s %-18s %-16s %-24s %-10d %s%s\n",
			fmtDur(sp.DurNanos), sp.Name, sp.Node, sp.Var, sp.Bytes, sp.Trace, errNote)
	}
}

// runTopByVar attributes trace time to NVM variables: every root span
// retained in the cluster's rings, aggregated by the variable it worked on.
func runTopByVar(st *rpc.Store) {
	nodes, _, _, err := discover(st)
	if err != nil {
		fatal(err)
	}
	spans := collectSpans(nodes, "", false, 0)
	type agg struct {
		ops   int64
		nanos int64
		bytes int64
		errs  int64
	}
	byVar := make(map[string]*agg)
	for _, sp := range spans {
		if !sp.Root() {
			continue // child spans double-count their root's time
		}
		v := sp.Var
		if v == "" {
			v = "(unattributed)"
		}
		a := byVar[v]
		if a == nil {
			a = &agg{}
			byVar[v] = a
		}
		a.ops++
		a.nanos += sp.DurNanos
		a.bytes += sp.Bytes
		if sp.Err != "" {
			a.errs++
		}
	}
	if len(byVar) == 0 {
		fmt.Println("no root spans recorded (run some traffic first, or daemons lack -debug-addr)")
		return
	}
	vars := make([]string, 0, len(byVar))
	for v := range byVar {
		vars = append(vars, v)
	}
	sort.SliceStable(vars, func(i, j int) bool {
		if byVar[vars[i]].nanos != byVar[vars[j]].nanos {
			return byVar[vars[i]].nanos > byVar[vars[j]].nanos
		}
		return vars[i] < vars[j]
	})
	fmt.Printf("%-28s %8s %12s %14s %6s\n", "variable", "ops", "time", "bytes", "errs")
	for _, v := range vars {
		a := byVar[v]
		fmt.Printf("%-28s %8d %12s %14d %6d\n", v, a.ops, fmtDur(a.nanos), a.bytes, a.errs)
	}
}
