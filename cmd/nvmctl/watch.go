package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"
	"time"

	"nvmalloc/internal/obs"
	"nvmalloc/internal/proto"
	"nvmalloc/internal/rpc"
)

// runWatch is the live cluster health view: every -interval it scrapes each
// daemon's /vitals endpoint (server-side windowed rates, percentiles, and
// alert state — one scrape per node, no client-side delta bookkeeping),
// merges the windowed histograms bucket-wise into cluster percentiles, and
// renders rates, cache-tier hit ratios, per-benefactor health, and the
// alerts currently pending or firing. -once prints a single frame and
// exits; the exit status is 0 even with alerts firing (watch observes, CI
// asserts on its output or on /healthz directly).
func runWatch(st *rpc.Store, args []string) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	once := fs.Bool("once", false, "print one frame and exit")
	interval := fs.Duration("interval", 2*time.Second, "refresh cadence")
	window := fs.Duration("window", 30*time.Second, "rate/percentile lookback sent to /vitals")
	fs.Parse(args)

	for {
		frame := renderFrame(st, *window)
		if *once {
			fmt.Print(frame)
			return
		}
		// Clear and home between frames so the view updates in place.
		fmt.Print("\x1b[2J\x1b[H" + frame)
		time.Sleep(*interval)
	}
}

// nodeVitals pairs one scraped daemon with its vitals (or scrape error).
type nodeVitals struct {
	node
	v   obs.Vitals
	err error
}

// renderFrame discovers the live cluster and renders one dashboard frame.
func renderFrame(st *rpc.Store, window time.Duration) string {
	nodes, shards, bens, err := discover(st)
	if err != nil {
		return fmt.Sprintf("watch: discover: %v\n", err)
	}
	return renderFrameData(nodes, shards, bens, st.ShardEpochs(), window)
}

// renderFrameData renders a dashboard frame from an explicit cluster
// view — the seam the rendering unit test drives with fake /vitals
// servers, no live cluster required.
func renderFrameData(nodes []node, shards []shardInfo, bens []proto.BenefactorInfo, cachedEpochs []int64, window time.Duration) string {
	var b strings.Builder
	all := make([]nodeVitals, 0, len(nodes))
	healthy := true
	scraped := 0
	for _, n := range nodes {
		nv := nodeVitals{node: n}
		if n.addr == "" {
			nv.err = fmt.Errorf("%s", noDebug)
		} else {
			nv.v, nv.err = obs.FetchVitals(n.addr, window)
		}
		if nv.err == nil {
			scraped++
			if !nv.v.Healthy {
				healthy = false
			}
		}
		all = append(all, nv)
	}

	state := "HEALTHY"
	if !healthy {
		state = "UNHEALTHY"
	}
	fmt.Fprintf(&b, "nvmalloc cluster  %s  nodes %d/%d scraped  window %s  %s\n\n",
		state, scraped, len(nodes), window, time.Now().Format("15:04:05"))
	if scraped == 0 {
		b.WriteString("no node exposes a debug endpoint (-debug-addr)\n")
		return b.String()
	}

	// Cluster-merged view: counter rates sum, windowed histograms merge
	// bucket-wise so the percentiles are cluster-wide.
	rates := make(map[string]float64)
	hists := make(map[string]obs.HistogramSnapshot)
	var maxWin float64
	for _, nv := range all {
		if nv.err != nil {
			continue
		}
		for name, r := range nv.v.Rates {
			rates[name] += r
		}
		for name, h := range nv.v.Hists {
			if cur, ok := hists[name]; ok {
				hists[name] = cur.Merge(h)
			} else {
				hists[name] = h
			}
		}
		if nv.v.WindowSeconds > maxWin {
			maxWin = nv.v.WindowSeconds
		}
	}

	fmt.Fprintf(&b, "%-40s %9s %10s %10s\n", "operation", "rate/s", "p50", "p99")
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		hi, hj := hists[names[i]], hists[names[j]]
		if hi.Count != hj.Count {
			return hi.Count > hj.Count
		}
		return names[i] < names[j]
	})
	shown := 0
	for _, name := range names {
		h := hists[name]
		if h.Count == 0 {
			continue
		}
		rate := float64(0)
		if maxWin > 0 {
			rate = float64(h.Count) / maxWin
		}
		fmt.Fprintf(&b, "%-40s %9.1f %10v %10v\n", name, rate,
			time.Duration(h.P50Nanos).Round(time.Microsecond),
			time.Duration(h.P99Nanos).Round(time.Microsecond))
		shown++
	}
	if shown == 0 {
		b.WriteString("(no operations in window)\n")
	}

	// Cache tiers, when any scraped registry carries them (client-embedded
	// daemons; plain manager/benefactor daemons have neither tier).
	tierLines := make([]string, 0, 2)
	for _, tier := range []struct{ label, prefix string }{
		{"memory tier (fusecache)", "fusecache"},
		{"file tier (filecache)", "filecache"},
	} {
		hits, misses := rates[tier.prefix+".hits"], rates[tier.prefix+".misses"]
		if hits+misses <= 0 {
			continue
		}
		tierLines = append(tierLines, fmt.Sprintf("  %-28s %5.1f%% hit  (%.1f hit/s, %.1f miss/s)",
			tier.label, 100*hits/(hits+misses), hits, misses))
	}
	if len(tierLines) > 0 {
		b.WriteString("\ncache tiers:\n")
		for _, l := range tierLines {
			b.WriteString(l + "\n")
		}
	}

	// Per-benefactor health: registration info (liveness, occupancy, beat
	// age) joined with each daemon's own vitals (device rates, alert state).
	b.WriteString("\nbenefactors:\n")
	fmt.Fprintf(&b, "  %-4s %-16s %6s %8s %10s %10s %10s %s\n",
		"id", "node", "state", "beat", "used%", "rd/s", "wr/s", "health")
	vitalsFor := func(name string) (obs.Vitals, error) {
		for _, nv := range all {
			if nv.name == name {
				return nv.v, nv.err
			}
		}
		return obs.Vitals{}, fmt.Errorf("not scraped")
	}
	sort.Slice(bens, func(i, j int) bool { return bens[i].ID < bens[j].ID })
	for _, ben := range bens {
		state := "alive"
		if !ben.Alive {
			state = "DEAD"
		}
		usedPct := float64(0)
		if ben.Capacity > 0 {
			usedPct = 100 * float64(ben.Used) / float64(ben.Capacity)
		}
		rd, wr, health := "-", "-", "-"
		if v, err := vitalsFor(fmt.Sprintf("benefactor-%d", ben.ID)); err == nil {
			rd = fmtBytesRate(v.Rates["benefactor.read_bytes"])
			wr = fmtBytesRate(v.Rates["benefactor.write_bytes"])
			health = "ok"
			if !v.Healthy {
				health = "ALERT"
			}
		} else if !ben.Alive {
			health = "unreachable"
		}
		fmt.Fprintf(&b, "  %-4d %-16d %6s %8s %9.1f%% %10s %10s %s\n",
			ben.ID, ben.Node, state,
			time.Duration(ben.BeatAgeNanos).Round(time.Millisecond),
			usedPct, rd, wr, health)
	}

	// Per-shard manager lines: occupancy and replication backlog from each
	// shard's own gauges (each shard accounts its slice of the capacity
	// split), plus the membership epoch. A shard whose epoch differs from
	// the client's cached map is flagged — the next routed op there will
	// pay one stale-map retry to resync.
	b.WriteString("\nmanagers:\n")
	for i, si := range shards {
		name := mgrName(i, len(shards))
		if si.err != nil {
			fmt.Fprintf(&b, "  %-12s @ %s UNREACHABLE (%v)\n", name, si.addr, si.err)
			continue
		}
		skew := ""
		if i < len(cachedEpochs) && si.epoch != cachedEpochs[i] {
			skew = fmt.Sprintf("  EPOCH SKEW (client map at %d)", cachedEpochs[i])
		}
		if v, err := vitalsFor(name); err == nil {
			fmt.Fprintf(&b, "  %-12s live=%d under_replicated=%d used=%s/%s epoch=%d%s\n",
				name,
				v.Gauges["manager.live_benefactors"],
				v.Gauges["manager.under_replicated"],
				fmtBytes(v.Gauges["manager.used_bytes"]),
				fmtBytes(v.Gauges["manager.capacity_bytes"]),
				si.epoch, skew)
		} else {
			fmt.Fprintf(&b, "  %-12s under_replicated=%d epoch=%d%s\n",
				name, si.under, si.epoch, skew)
		}
	}

	// Alerts across the whole cluster, firing first.
	var alerts []struct {
		node string
		a    obs.Alert
	}
	for _, nv := range all {
		if nv.err != nil {
			continue
		}
		for _, a := range nv.v.Alerts {
			alerts = append(alerts, struct {
				node string
				a    obs.Alert
			}{nv.name, a})
		}
	}
	sort.SliceStable(alerts, func(i, j int) bool {
		if alerts[i].a.State != alerts[j].a.State {
			return alerts[i].a.State == "firing"
		}
		if alerts[i].node != alerts[j].node {
			return alerts[i].node < alerts[j].node
		}
		return alerts[i].a.Rule < alerts[j].a.Rule
	})
	b.WriteString("\nalerts:\n")
	if len(alerts) == 0 {
		b.WriteString("  none\n")
	}
	for _, na := range alerts {
		a := na.a
		since := time.Duration(0)
		if a.SinceUnixNanos > 0 {
			since = time.Since(time.Unix(0, a.SinceUnixNanos)).Round(time.Second)
		}
		fmt.Fprintf(&b, "  %-7s %-16s %-28s %.3g %s %.3g  for %s\n",
			strings.ToUpper(a.State), na.node, a.Rule, a.Value, a.Op, a.Threshold, since)
	}

	// Scrape failures last, so a wedged daemon is visible rather than
	// silently absent from the merged view.
	for _, nv := range all {
		if nv.err != nil {
			fmt.Fprintf(&b, "\n%s: scrape failed: %v\n", nv.name, nv.err)
		}
	}
	return b.String()
}

// fmtBytesRate renders a bytes-per-second rate with a binary unit.
func fmtBytesRate(v float64) string {
	if v <= 0 {
		return "0"
	}
	return fmtBytes(int64(v)) + "/s"
}

// fmtBytes renders a byte count with a binary unit, one decimal.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
