package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nvmalloc/internal/obs"
	"nvmalloc/internal/proto"
)

// fakeVitals serves v at /vitals the way a daemon's debug server would,
// returning the host:port the watch scraper dials.
func fakeVitals(t *testing.T, v obs.Vitals) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/vitals", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(v)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

// TestWatchRenderFrame drives the dashboard renderer against fake
// /vitals servers: a healthy benefactor, a manager with a firing alert,
// and an unreachable second shard. This is the -once frame CI and
// operators read, so the load-bearing strings are pinned here.
func TestWatchRenderFrame(t *testing.T) {
	now := time.Now().UnixNano()
	mgrAddr := fakeVitals(t, obs.Vitals{
		Node:          "manager-0",
		UnixNanos:     now,
		WindowSeconds: 30,
		Samples:       120,
		Rates:         map[string]float64{"manager.chunks_allocated": 4},
		Gauges: map[string]int64{
			"manager.live_benefactors": 1,
			"manager.under_replicated": 3,
			"manager.used_bytes":       1 << 20,
			"manager.capacity_bytes":   1 << 30,
		},
		Hists: map[string]obs.HistogramSnapshot{
			"manager.op.create.latency": {Count: 120, P50Nanos: 1e6, P99Nanos: 9e6},
		},
		Alerts: []obs.Alert{{
			Rule:                 "under-replicated",
			State:                "firing",
			Value:                3,
			Op:                   ">",
			Threshold:            0,
			SinceUnixNanos:       now - int64(10*time.Second),
			FiringSinceUnixNanos: now - int64(5*time.Second),
		}},
		Healthy: false,
	})
	benAddr := fakeVitals(t, obs.Vitals{
		Node:          "benefactor-0",
		UnixNanos:     now,
		WindowSeconds: 30,
		Samples:       120,
		Rates: map[string]float64{
			"benefactor.read_bytes":  2048,
			"benefactor.write_bytes": 4096,
		},
		Hists: map[string]obs.HistogramSnapshot{
			"benefactor.op.get.latency": {Count: 60, P50Nanos: 2e5, P99Nanos: 4e6},
		},
		Healthy: true,
	})

	nodes := []node{
		{name: "manager-0", addr: mgrAddr},
		{name: "benefactor-0", addr: benAddr},
	}
	shards := []shardInfo{
		{addr: "127.0.0.1:7070", debug: mgrAddr, epoch: 5, under: 3},
		{addr: "127.0.0.1:7071", err: errors.New("dial tcp: connection refused")},
	}
	bens := []proto.BenefactorInfo{{
		ID: 0, Node: 0, Alive: true,
		Capacity: 1 << 30, Used: 1 << 28,
		BeatAgeNanos: int64(40 * time.Millisecond),
	}}

	frame := renderFrameData(nodes, shards, bens, []int64{4, 0}, 30*time.Second)

	for _, want := range []string{
		// A firing alert anywhere degrades the cluster header.
		"nvmalloc cluster  UNHEALTHY",
		"nodes 2/2 scraped",
		// The merged op table carries both daemons' histograms.
		"manager.op.create.latency",
		"benefactor.op.get.latency",
		// The healthy benefactor row.
		"alive",
		// Manager lines: shard 0's gauges (with the skew flag — its epoch 5
		// is ahead of the client's cached 4), shard 1 unreachable.
		"manager-0    live=1 under_replicated=3",
		"epoch=5  EPOCH SKEW (client map at 4)",
		"manager-1    @ 127.0.0.1:7071 UNREACHABLE",
		// The alert table names the firing rule on its node.
		"FIRING  manager-0        under-replicated",
	} {
		if !strings.Contains(frame, want) {
			t.Fatalf("frame missing %q:\n%s", want, frame)
		}
	}
	if strings.Contains(frame, "scrape failed") {
		t.Fatalf("healthy scrapes reported as failed:\n%s", frame)
	}
}

// TestWatchRenderFrameNoEndpoints pins the degenerate frame: a cluster
// where no daemon exposes a debug endpoint still renders, with a hint
// instead of empty tables.
func TestWatchRenderFrameNoEndpoints(t *testing.T) {
	nodes := []node{{name: "manager", addr: ""}}
	frame := renderFrameData(nodes, nil, nil, nil, 30*time.Second)
	if !strings.Contains(frame, "nodes 0/1 scraped") ||
		!strings.Contains(frame, "no node exposes a debug endpoint") {
		t.Fatalf("degenerate frame:\n%s", frame)
	}
}
