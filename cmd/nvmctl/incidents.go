package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"nvmalloc/internal/obs"
	"nvmalloc/internal/rpc"
)

// incidentNodes lists the scrapeable cluster members that can hold
// incident bundles (every daemon with a debug endpoint).
func incidentNodes(st *rpc.Store) []node {
	nodes, _, _, err := discover(st)
	if err != nil {
		fatal(err)
	}
	out := nodes[:0]
	for _, n := range nodes {
		if n.addr != "" {
			out = append(out, n)
		}
	}
	return out
}

// runCapture asks every daemon to snapshot an incident bundle now.
func runCapture(st *rpc.Store, args []string) {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	reason := fs.String("reason", "manual", "reason recorded in the bundles")
	force := fs.Bool("force", false, "capture even inside a daemon's cooldown window")
	fs.Parse(args)

	for _, n := range incidentNodes(st) {
		meta, captured, err := obs.CaptureIncident(n.addr, *reason, *force)
		switch {
		case err != nil:
			fmt.Printf("%-16s capture failed: %v\n", n.name, err)
		case captured:
			fmt.Printf("%-16s captured %s\n", n.name, meta.ID)
		default:
			fmt.Printf("%-16s within cooldown, existing bundle %s\n", n.name, meta.ID)
		}
	}
}

// runIncidents lists every daemon's on-disk incident bundles.
func runIncidents(st *rpc.Store) {
	rows := 0
	for _, n := range incidentNodes(st) {
		list, err := obs.FetchIncidents(n.addr)
		if err != nil {
			fmt.Printf("%-16s %v\n", n.name, err)
			continue
		}
		for _, m := range list {
			age := time.Since(time.Unix(0, m.UnixNanos)).Round(time.Second)
			shard := ""
			if m.Identity.NShards > 0 {
				shard = fmt.Sprintf("shard %d/%d epoch %d", m.Identity.Shard, m.Identity.NShards, m.Identity.Epoch)
			}
			fmt.Printf("%-16s %-42s %-24s age %-8s %s\n", n.name, m.ID, m.Reason, age, shard)
			rows++
		}
	}
	if rows == 0 {
		fmt.Println("no incident bundles (daemons need -incident-dir, and an alert must have fired or `nvmctl capture` been run)")
	}
}

// runBundle fetches the named bundle plus every other daemon's bundle
// from the same incident window and merges them into one tar.gz: each
// daemon's files land under a <node>/ prefix.
func runBundle(st *rpc.Store, args []string) {
	fs := flag.NewFlagSet("bundle", flag.ExitOnError)
	out := fs.String("o", "incident.tar.gz", "output archive path")
	tolerance := fs.Duration("tolerance", 2*time.Minute, "bundles captured within this of the named one are part of the same incident")
	// stdlib flag stops at the first positional, so `bundle <id> -o out`
	// would swallow -o as an operand; lift a leading id out before parsing
	// to accept flags on either side of it.
	id := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		id, args = args[0], args[1:]
	}
	fs.Parse(args)
	if id == "" {
		if fs.NArg() != 1 {
			fatal(fmt.Errorf("bundle <incident-id> [-o out.tar.gz] [-tolerance 2m]"))
		}
		id = fs.Arg(0)
	} else if fs.NArg() != 0 {
		fatal(fmt.Errorf("bundle <incident-id> [-o out.tar.gz] [-tolerance 2m]"))
	}

	// Pass 1: find the anchor bundle's capture time and each node's list.
	type nodeList struct {
		n    node
		list []obs.IncidentMeta
	}
	var lists []nodeList
	var t0 int64
	found := false
	for _, n := range incidentNodes(st) {
		list, err := obs.FetchIncidents(n.addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvmctl: %s: %v (skipping)\n", n.name, err)
			continue
		}
		for _, m := range list {
			if m.ID == id {
				t0 = m.UnixNanos
				found = true
			}
		}
		lists = append(lists, nodeList{n, list})
	}
	if !found {
		fatal(fmt.Errorf("bundle %q not found on any reachable daemon (try `nvmctl incidents`)", id))
	}

	// Pass 2: per node, pick the bundle closest to the anchor within the
	// tolerance (bundle IDs differ per node; time correlates them).
	var parts []obs.BundlePart
	var names []string
	for _, nl := range lists {
		best := ""
		bestDelta := int64(1 << 62)
		for _, m := range nl.list {
			delta := m.UnixNanos - t0
			if delta < 0 {
				delta = -delta
			}
			if delta <= int64(*tolerance) && delta < bestDelta {
				best, bestDelta = m.ID, delta
			}
		}
		if best == "" {
			continue
		}
		var buf bytes.Buffer
		if err := obs.FetchIncidentBundle(nl.n.addr, best, &buf); err != nil {
			fmt.Fprintf(os.Stderr, "nvmctl: %s: %v (skipping)\n", nl.n.name, err)
			continue
		}
		parts = append(parts, obs.BundlePart{Node: nl.n.name, R: &buf})
		names = append(names, fmt.Sprintf("%s (%s)", nl.n.name, best))
	}
	if len(parts) == 0 {
		fatal(fmt.Errorf("no bundles fetched for incident %q", id))
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := obs.MergeBundles(f, parts); err != nil {
		f.Close()
		os.Remove(*out)
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	sort.Strings(names)
	fmt.Printf("wrote %s: %d daemon bundle(s)\n", *out, len(parts))
	fmt.Printf("  %s\n", strings.Join(names, "\n  "))
}
