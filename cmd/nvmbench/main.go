// nvmbench regenerates the paper's evaluation artifacts on the simulated
// testbed and prints them as text tables.
//
// Usage:
//
//	nvmbench [-quick] [-json file] [artifact ...]
//
// Artifacts: fig2 table3 fig3 fig4 fig5 table4 table5 fig6 table6 table7
// ckpt wire warmstart ablations devices all (default: all).
//
// -json additionally writes every regenerated table — id, title, columns,
// rows (bandwidth MB/s, timings, cache hit rates as reported per artifact),
// notes, and per-artifact wall time — as structured JSON, for CI artifact
// upload and regression diffing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"nvmalloc/internal/experiments"
	"nvmalloc/internal/obs"
)

// reportJSON mirrors experiments.Report for the -json output.
type reportJSON struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// benchResult is one artifact's entry in the -json output.
type benchResult struct {
	Name    string       `json:"name"`
	WallNs  int64        `json:"wall_ns"`
	Reports []reportJSON `json:"reports"`
}

// benchHost identifies the machine a -json document was produced on, so
// archived runs from different CI runners or laptops are comparable.
type benchHost struct {
	Hostname  string `json:"hostname"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
}

// benchJSON is the top-level -json document.
type benchJSON struct {
	GeneratedUnixNanos int64  `json:"generated_unix_nanos"`
	GeneratedUTC       string `json:"generated_utc"`
	// GitRevision is the vcs revision the binary was built from ("-dirty"
	// when the worktree had local changes; "unknown" for non-vcs builds
	// such as `go run` from an exported tarball) — the same build identity
	// every daemon exports as the nvm_build_info metric, so archived runs
	// join against Prometheus scrapes on the revision label.
	GitRevision string        `json:"git_revision"`
	Host        benchHost     `json:"host"`
	Quick       bool          `json:"quick"`
	Benchmarks  []benchResult `json:"benchmarks"`
}

func main() {
	quick := flag.Bool("quick", false, "run the shrunken Quick geometry instead of the default scaled evaluation")
	jsonPath := flag.String("json", "", "also write the results as structured JSON to this file")
	flag.Parse()

	o := experiments.Default()
	if *quick {
		o = experiments.Quick()
	}

	var cur *benchResult // artifact currently running (nil without -json)
	type runner func() error
	show := func(rep *experiments.Report, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(rep.String())
		if cur != nil {
			cur.Reports = append(cur.Reports, reportJSON{
				ID: rep.ID, Title: rep.Title, Columns: rep.Columns, Rows: rep.Rows, Notes: rep.Notes,
			})
		}
		return nil
	}
	runners := map[string]runner{
		"devices": func() error { return show(experiments.Devices(), nil) },
		"fig2": func() error {
			_, rep, err := experiments.Fig2(o)
			return show(rep, err)
		},
		"table3": func() error {
			_, rep, err := experiments.Table3(o)
			return show(rep, err)
		},
		"fig3": func() error {
			_, rep, err := experiments.Fig3(o)
			return show(rep, err)
		},
		"fig4": func() error {
			_, rep, err := experiments.Fig4(o)
			return show(rep, err)
		},
		"fig5": func() error {
			_, rep, err := experiments.Fig5(o)
			return show(rep, err)
		},
		"table4": func() error {
			_, rep, err := experiments.Table4(o)
			return show(rep, err)
		},
		"table5": func() error {
			_, rep, err := experiments.Table5(o)
			return show(rep, err)
		},
		"fig6": func() error {
			_, rep, err := experiments.Fig6(o)
			return show(rep, err)
		},
		"table6": func() error {
			_, rep, err := experiments.Table6(o)
			return show(rep, err)
		},
		"table7": func() error {
			_, rep, err := experiments.Table7(o)
			return show(rep, err)
		},
		"ckpt": func() error {
			_, rep, err := experiments.Checkpoint(o)
			return show(rep, err)
		},
		"wire": func() error {
			_, rep, err := experiments.WireFraming(o)
			return show(rep, err)
		},
		"warmstart": func() error {
			_, rep, err := experiments.WarmStart(o)
			return show(rep, err)
		},
		"ablations": func() error {
			for _, fn := range []func(experiments.Opts) (*experiments.Report, error){
				experiments.AblationReadahead,
				experiments.AblationChunkSize,
				experiments.AblationCacheSize,
				experiments.AblationPlacement,
			} {
				if err := show(fn(o)); err != nil {
					return err
				}
			}
			return nil
		},
	}
	order := []string{"devices", "fig2", "table3", "fig3", "fig4", "fig5", "table4", "table5", "fig6", "table6", "table7", "ckpt", "wire", "warmstart", "ablations"}

	args := flag.Args()
	if len(args) == 0 || (len(args) == 1 && args[0] == "all") {
		args = order
	}
	var doc benchJSON
	doc.Quick = *quick
	for _, name := range args {
		fn, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "nvmbench: unknown artifact %q (want one of %v)\n", name, order)
			os.Exit(2)
		}
		if *jsonPath != "" {
			doc.Benchmarks = append(doc.Benchmarks, benchResult{Name: name})
			cur = &doc.Benchmarks[len(doc.Benchmarks)-1]
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "nvmbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		if cur != nil {
			cur.WallNs = wall.Nanoseconds()
		}
		fmt.Printf("(%s regenerated in %.1fs wall time)\n\n", name, wall.Seconds())
	}
	if *jsonPath != "" {
		now := time.Now()
		doc.GeneratedUnixNanos = now.UnixNano()
		doc.GeneratedUTC = now.UTC().Format(time.RFC3339)
		doc.GitRevision = obs.BuildRevision()
		host, _ := os.Hostname()
		doc.Host = benchHost{
			Hostname:  host,
			OS:        runtime.GOOS,
			Arch:      runtime.GOARCH,
			CPUs:      runtime.NumCPU(),
			GoVersion: runtime.Version(),
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(fmt.Errorf("nvmbench: encoding -json: %w", err))
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fatal(fmt.Errorf("nvmbench: writing %s: %w", *jsonPath, err))
		}
		fmt.Printf("(results written to %s)\n", *jsonPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
