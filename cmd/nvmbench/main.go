// nvmbench regenerates the paper's evaluation artifacts on the simulated
// testbed and prints them as text tables.
//
// Usage:
//
//	nvmbench [-quick] [artifact ...]
//
// Artifacts: fig2 table3 fig3 fig4 fig5 table4 table5 fig6 table6 table7
// ckpt ablations devices all (default: all).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nvmalloc/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run the shrunken Quick geometry instead of the default scaled evaluation")
	flag.Parse()

	o := experiments.Default()
	if *quick {
		o = experiments.Quick()
	}

	type runner func() error
	show := func(rep *experiments.Report, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(rep.String())
		return nil
	}
	runners := map[string]runner{
		"devices": func() error { return show(experiments.Devices(), nil) },
		"fig2": func() error {
			_, rep, err := experiments.Fig2(o)
			return show(rep, err)
		},
		"table3": func() error {
			_, rep, err := experiments.Table3(o)
			return show(rep, err)
		},
		"fig3": func() error {
			_, rep, err := experiments.Fig3(o)
			return show(rep, err)
		},
		"fig4": func() error {
			_, rep, err := experiments.Fig4(o)
			return show(rep, err)
		},
		"fig5": func() error {
			_, rep, err := experiments.Fig5(o)
			return show(rep, err)
		},
		"table4": func() error {
			_, rep, err := experiments.Table4(o)
			return show(rep, err)
		},
		"table5": func() error {
			_, rep, err := experiments.Table5(o)
			return show(rep, err)
		},
		"fig6": func() error {
			_, rep, err := experiments.Fig6(o)
			return show(rep, err)
		},
		"table6": func() error {
			_, rep, err := experiments.Table6(o)
			return show(rep, err)
		},
		"table7": func() error {
			_, rep, err := experiments.Table7(o)
			return show(rep, err)
		},
		"ckpt": func() error {
			_, rep, err := experiments.Checkpoint(o)
			return show(rep, err)
		},
		"ablations": func() error {
			for _, fn := range []func(experiments.Opts) (*experiments.Report, error){
				experiments.AblationReadahead,
				experiments.AblationChunkSize,
				experiments.AblationCacheSize,
				experiments.AblationPlacement,
			} {
				if err := show(fn(o)); err != nil {
					return err
				}
			}
			return nil
		},
	}
	order := []string{"devices", "fig2", "table3", "fig3", "fig4", "fig5", "table4", "table5", "fig6", "table6", "table7", "ckpt", "ablations"}

	args := flag.Args()
	if len(args) == 0 || (len(args) == 1 && args[0] == "all") {
		args = order
	}
	for _, name := range args {
		fn, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "nvmbench: unknown artifact %q (want one of %v)\n", name, order)
			os.Exit(2)
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "nvmbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s regenerated in %.1fs wall time)\n\n", name, time.Since(start).Seconds())
	}
}
