package nvmalloc

import (
	"fmt"

	"nvmalloc/internal/core"
	"nvmalloc/internal/filecache"
	"nvmalloc/internal/fusecache"
	"nvmalloc/internal/rpc"
	"nvmalloc/internal/store"
)

// ConnectConfig tunes a live-store client built by Connect. The zero value
// is a sensible single-process deployment: the paper's 64 MB FUSE cache
// over 4 KB pages, read-ahead of 2 chunks, an 8 MB page cache, rank 0.
type ConnectConfig struct {
	// Rank is the application rank this client claims (names default
	// variable files; informational otherwise).
	Rank int
	// CacheBytes sizes the FUSE-layer chunk cache. 0 means 64 MB (the
	// paper's FUSE cache); rounded down to whole chunks, minimum one.
	CacheBytes int64
	// PageSize is the dirty-tracking granularity. 0 means 4096. Must
	// divide the store's chunk size.
	PageSize int64
	// PageCacheBytes sizes the rank-private page cache. 0 means 8 MB.
	PageCacheBytes int64
	// ReadAheadChunks is how many chunks to prefetch after a sequential
	// miss. 0 means 2 (Table III); negative disables read-ahead.
	ReadAheadChunks int
	// WriteFullChunks disables the dirty-page writeback optimization
	// (Table VII baseline).
	WriteFullChunks bool
	// PoolSize is the connection-pool depth per benefactor (0 = rpc
	// default).
	PoolSize int
	// Parallelism bounds in-flight chunk transfers per operation (0 = rpc
	// default).
	Parallelism int
	// CacheDir, when non-empty, enables the persistent file-backed second
	// cache tier (internal/filecache): clean chunks evicted from the RAM
	// cache spill to NVC1 shard files under this directory and are served
	// from there across restarts ("warm restarts", README). One directory
	// per client process.
	CacheDir string
	// FileCacheBytes caps the file tier's payload bytes (0 = filecache
	// default, 1 GiB). Ignored without CacheDir.
	FileCacheBytes int64
}

// Connect opens a Client against a live TCP store deployment (cmd/nvmstore
// daemons): the manager at managerAddr hands out chunk placements and the
// client moves data directly to and from benefactors. On a sharded
// metadata plane, managerAddr is a comma-separated list of manager
// addresses in shard order ("host:port,host:port"); giving any one shard
// also works — the client discovers the rest from the piggybacked shard
// map. The returned Client is the same library code the simulation runs —
// Malloc, views, Checkpoint with real chunk linking and copy-on-write
// remap, Restore, Free — with a nil execution context in place of a
// simulation Proc:
//
//	c, err := nvmalloc.Connect("localhost:7070", nvmalloc.ConnectConfig{})
//	r, err := c.Malloc(nil, 1<<20, nvmalloc.WithName("state"))
//	...
//	info, err := c.Checkpoint(nil, "ckpt-1", dram, r)
//
// Close flushes every dirty page back to the benefactors and tears down
// the connections.
func Connect(managerAddr string, cfg ConnectConfig) (*Client, error) {
	st, err := rpc.OpenWith(managerAddr, rpc.Options{
		PoolSize:    cfg.PoolSize,
		Parallelism: cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.CacheBytes < st.ChunkSize() {
		cfg.CacheBytes = st.ChunkSize()
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	if cfg.PageCacheBytes == 0 {
		cfg.PageCacheBytes = 8 << 20
	}
	switch {
	case cfg.ReadAheadChunks == 0:
		cfg.ReadAheadChunks = 2
	case cfg.ReadAheadChunks < 0:
		cfg.ReadAheadChunks = 0
	}
	if st.ChunkSize()%cfg.PageSize != 0 {
		st.Close()
		return nil, fmt.Errorf("nvmalloc: page size %d does not divide chunk size %d", cfg.PageSize, st.ChunkSize())
	}
	env := store.NewGoEnv()
	var cl store.Client = rpc.NewStoreClient(st, 0)
	var tier *filecache.Tier
	if cfg.CacheDir != "" {
		tier, err = filecache.NewTier(cl, filecache.Config{
			Dir:      cfg.CacheDir,
			MaxBytes: cfg.FileCacheBytes,
			Obs:      st.Obs(),
		})
		if err != nil {
			st.Close()
			return nil, err
		}
		cl = tier
	}
	cc := fusecache.NewChunkCache(env, cl, fusecache.Config{
		ChunkSize:       st.ChunkSize(),
		PageSize:        cfg.PageSize,
		CacheBytes:      cfg.CacheBytes,
		ReadAheadChunks: cfg.ReadAheadChunks,
		WriteFullChunks: cfg.WriteFullChunks,
		Obs:             st.Obs(),
	})
	c := core.NewClient(cfg.Rank, nil, cc, cfg.PageCacheBytes)
	c.OnClose(func() error {
		ferr := cc.FlushAll(nil)
		env.Quiesce()
		var terr error
		if tier != nil {
			terr = tier.Close()
		}
		cerr := st.Close()
		if ferr != nil {
			return ferr
		}
		if terr != nil {
			return terr
		}
		return cerr
	})
	return c, nil
}
