// Benchmarks that regenerate every table and figure of the paper's
// evaluation section at Quick scale, reporting the headline metric of each
// artifact. Full-scale reports come from `go run ./cmd/nvmbench` (whose
// output is recorded in EXPERIMENTS.md).
package nvmalloc

import (
	"testing"

	"nvmalloc/internal/experiments"
)

// reportErr fails the benchmark on experiment error.
func reportErr(b *testing.B, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig2StreamTriad regenerates Fig. 2: STREAM TRIAD bandwidth per
// array placement, normalized to DRAM.
func BenchmarkFig2StreamTriad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig2(experiments.Quick())
		reportErr(b, err)
		var worstLocal, worstRemote float64 = 1e18, 1e18
		for _, r := range rows {
			if r.Location == "Local-SSD" && r.MBps < worstLocal {
				worstLocal = r.MBps
			}
			if r.Location == "Remote-SSD" && r.MBps < worstRemote {
				worstRemote = r.MBps
			}
		}
		b.ReportMetric(rows[0].MBps/worstLocal, "local-gap-x")
		b.ReportMetric(rows[0].MBps/worstRemote, "remote-gap-x")
	}
}

// BenchmarkTable3StreamCache regenerates Table III: STREAM with vs without
// the NVMalloc cache layer.
func BenchmarkTable3StreamCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table3(experiments.Quick())
		reportErr(b, err)
		b.ReportMetric(rows[3].WithMBps, "triad-with-MB/s")
		b.ReportMetric(rows[3].WithoutMBps, "triad-without-MB/s")
	}
}

// BenchmarkFig3MatMul regenerates Fig. 3: the five-stage MM runtime across
// the eight run configurations.
func BenchmarkFig3MatMul(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig3(experiments.Quick())
		reportErr(b, err)
		dram := rows[0].Total.Seconds()
		l816 := rows[2].Total.Seconds()
		b.ReportMetric((l816-dram)/dram*100, "L-SSD(8:16:16)-vs-DRAM-%")
	}
}

// BenchmarkFig4SharedVsIndividual regenerates Fig. 4.
func BenchmarkFig4SharedVsIndividual(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig4(experiments.Quick())
		reportErr(b, err)
		var s, ind float64
		for _, r := range rows {
			if r.Config == "L-SSD(8:16:16)" {
				if r.Mode == "S" {
					s = r.Total.Seconds()
				} else if r.Mode == "I" {
					ind = r.Total.Seconds()
				}
			}
		}
		b.ReportMetric((ind-s)/s*100, "individual-overhead-%")
	}
}

// BenchmarkFig5AccessPattern regenerates Fig. 5: row- vs column-major
// compute time.
func BenchmarkFig5AccessPattern(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig5(experiments.Quick())
		reportErr(b, err)
		for _, r := range rows {
			if r.Config == "L-SSD(8:16:16)" {
				b.ReportMetric(r.ColMajor.Seconds()/r.RowMajor.Seconds(), "col/row-x")
			}
		}
	}
}

// BenchmarkTable4TrafficVolumes regenerates Table IV: app/FUSE/SSD bytes.
func BenchmarkTable4TrafficVolumes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table4(experiments.Quick())
		reportErr(b, err)
		b.ReportMetric(float64(rows[1].SSDBytes)/float64(rows[0].SSDBytes), "col/row-SSD-x")
	}
}

// BenchmarkTable5TileSize regenerates Table V: compute time vs tile size.
func BenchmarkTable5TileSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table5(experiments.Quick())
		reportErr(b, err)
		first, last := rows[0], rows[len(rows)-1]
		b.ReportMetric(first.ColMajor.Seconds()/last.ColMajor.Seconds(), "col-tile-speedup-x")
	}
}

// BenchmarkFig6LargeProblem regenerates Fig. 6: the 8 GB-class problem.
func BenchmarkFig6LargeProblem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig6(experiments.Quick())
		reportErr(b, err)
		b.ReportMetric(rows[0].Total.Seconds(), "L-SSD(8:16:16)-s")
	}
}

// BenchmarkTable6Quicksort regenerates Table VI: the out-of-core sort.
func BenchmarkTable6Quicksort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table6(experiments.Quick())
		reportErr(b, err)
		b.ReportMetric(rows[1].Speedup, "L-SSD-speedup-x")
		b.ReportMetric(rows[2].Speedup, "R-SSD-speedup-x")
	}
}

// BenchmarkTable7WriteOptimization regenerates Table VII.
func BenchmarkTable7WriteOptimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table7(experiments.Quick())
		reportErr(b, err)
		b.ReportMetric(float64(rows[1].SSDBytes)/float64(rows[0].SSDBytes), "ssd-volume-saving-x")
	}
}

// BenchmarkCheckpoint regenerates the §IV-B-5 checkpoint study.
func BenchmarkCheckpoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Checkpoint(experiments.Quick())
		reportErr(b, err)
		var linked, naive int64
		for _, r := range rows {
			if r.Mode == "linked+COW" {
				linked += r.Step.SSDWriteBytes
			} else {
				naive += r.Step.SSDWriteBytes
			}
		}
		b.ReportMetric(float64(naive)/float64(linked), "naive/linked-write-x")
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationReadahead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.AblationReadahead(experiments.Quick())
		reportErr(b, err)
	}
}

func BenchmarkAblationChunkSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.AblationChunkSize(experiments.Quick())
		reportErr(b, err)
	}
}

func BenchmarkAblationCacheSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.AblationCacheSize(experiments.Quick())
		reportErr(b, err)
	}
}

func BenchmarkAblationPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.AblationPlacement(experiments.Quick())
		reportErr(b, err)
	}
}
