module nvmalloc

go 1.22
