// Package nvmalloc is the public facade of the NVMalloc reproduction: a
// library that exposes an aggregate SSD store — built from compute-node-
// local NVM contributed by benefactor processes and coordinated by a
// manager — as an explicitly managed secondary memory partition.
//
// Applications allocate byte-addressable regions from the store with
// Client.Malloc (the paper's ssdmalloc), release them with Region.Free
// (ssdfree), and snapshot DRAM state together with NVM variables into one
// logical restart file with Client.Checkpoint (ssdcheckpoint). Accesses
// flow through a per-process page cache and a per-node FUSE-style chunk
// cache that bridge byte addressability to the store's 256 KB chunks,
// shipping only dirty 4 KB pages on writeback.
//
// Two deployments are provided:
//
//   - The simulated cluster (NewMachine): a deterministic virtual-time
//     model of the paper's 128-core HAL testbed in which real data moves
//     through the real library code while devices and network links decide
//     how long everything takes. Every table and figure of the paper's
//     evaluation is regenerated on it (package internal/experiments,
//     cmd/nvmbench).
//
//   - A real distributed store over TCP (cmd/nvmstore manager and
//     benefactor daemons, cmd/nvmctl client), sharing the same manager,
//     benefactor, and protocol code.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results against the paper.
package nvmalloc

import (
	"nvmalloc/internal/cluster"
	"nvmalloc/internal/core"
	"nvmalloc/internal/manager"
	"nvmalloc/internal/sim"
	"nvmalloc/internal/simtime"
	"nvmalloc/internal/sysprof"
)

// Re-exported core types. The identity of these types matches the
// internal packages, so values flow freely between facade and internals.
type (
	// Machine is a fully wired simulated system: cluster, aggregate NVM
	// store, PFS, and per-node caches.
	Machine = sim.Machine
	// Client is the per-rank NVMalloc handle (ssdmalloc / ssdfree /
	// ssdcheckpoint live here).
	Client = core.Client
	// Region is an NVM-resident memory region (the paper's nvmvar).
	Region = core.Region
	// Buffer is the placement-agnostic byte-addressable allocation
	// interface implemented by both Region and DRAMBuffer.
	Buffer = core.Buffer
	// DRAMBuffer is a plain node-local main-memory allocation.
	DRAMBuffer = core.DRAMBuffer
	// CheckpointInfo describes a completed ssdcheckpoint.
	CheckpointInfo = core.CheckpointInfo
	// RegionLayout locates a variable inside a checkpoint file.
	RegionLayout = core.RegionLayout
	// AllocOption customizes Malloc.
	AllocOption = core.AllocOption
	// AppStats counts application-level buffer traffic.
	AppStats = core.AppStats

	// Engine is the deterministic virtual-time engine simulations run on.
	Engine = simtime.Engine
	// Proc is a simulation process; all time-consuming calls take one.
	Proc = simtime.Proc

	// Config is a run configuration in the paper's x:y:z notation
	// (processes per node : compute nodes : benefactors).
	Config = cluster.Config
	// Profile carries every hardware/system constant of a run.
	Profile = sysprof.Profile
	// PlacementPolicy selects how the manager places new chunks.
	PlacementPolicy = manager.PlacementPolicy
)

// Run-configuration modes.
const (
	// DRAMOnly places everything in DRAM (the paper's baseline).
	DRAMOnly = cluster.DRAMOnly
	// LocalSSD co-locates benefactors with compute nodes ("L-SSD").
	LocalSSD = cluster.LocalSSD
	// RemoteSSD uses a disjoint benefactor partition ("R-SSD").
	RemoteSSD = cluster.RemoteSSD
)

// Chunk placement policies.
const (
	// RoundRobin stripes chunks across benefactors (the paper's default).
	RoundRobin = manager.RoundRobin
	// LeastLoaded prefers the emptiest benefactor.
	LeastLoaded = manager.LeastLoaded
	// WearAware prefers the least-written benefactor (lifetime goal of
	// §III-A).
	WearAware = manager.WearAware
)

// NewEngine returns a fresh deterministic virtual-time engine.
func NewEngine() *Engine { return simtime.NewEngine() }

// HAL returns the paper's full-scale testbed profile (Table II): 16 nodes
// × 8 cores, 8 GB DRAM/node, Intel X25-E SSDs, bonded dual GigE, 256 KB
// chunks, 64 MB FUSE cache.
func HAL() Profile { return sysprof.HAL() }

// Bench returns the 1/256-scaled profile used by this repository's tests
// and benchmarks (capacities scaled, device physics preserved; see
// DESIGN.md §2).
func Bench() Profile { return sysprof.Bench() }

// NewMachine wires a simulated system for the given run configuration.
func NewMachine(e *Engine, prof Profile, cfg Config, policy PlacementPolicy) (*Machine, error) {
	return sim.NewMachine(e, prof, cfg, policy)
}

// NewDRAM allocates a plain node-local DRAM buffer, failing when the node
// is out of physical memory — the condition that motivates NVMalloc.
func NewDRAM(m *Machine, rank int, name string, size int64) (*DRAMBuffer, error) {
	return core.NewDRAM(m.Node(rank), name, size)
}

// WithName names a variable's backing file, making it shareable and
// persistent across jobs.
func WithName(name string) AllocOption { return core.WithName(name) }

// Shared requests one cluster-wide backing file shared by every rank that
// allocates the same name (the paper's shared-mapping mode, Fig. 4).
func Shared() AllocOption { return core.Shared() }

// Float64s wraps a buffer as a dense float64 array view.
func Float64s(b Buffer) *core.Float64View { return core.Float64s(b) }

// Int64s wraps a buffer as a dense int64 array view.
func Int64s(b Buffer) *core.Int64View { return core.Int64s(b) }

// Concat presents two buffers as one contiguous allocation (hybrid
// DRAM+NVM datasets, Table VI).
func Concat(name string, a, b Buffer) Buffer { return core.Concat(name, a, b) }
