GO ?= go

.PHONY: check fmt vet build test race bench obs-bench

# Tier-1 gate: formatting, vet, build, and the full suite under the race
# detector (the TCP data path is exercised by genuinely concurrent tests).
check: fmt vet build race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The deterministic simulation suites are CPU-heavy; under the race
# detector they need more than the default 10m per-package timeout.
race:
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -bench=RPCStore -benchmem ./internal/rpc

# Instrumentation cost: default metrics/events vs obs.Disabled(). The two
# modes must stay within noise of each other (<5%).
obs-bench:
	$(GO) test -run xxx -bench=RPCObsOverhead -benchtime 2s -count 3 ./internal/rpc
