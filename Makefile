GO ?= go

.PHONY: check fmt vet importgate build test race bench obs-bench alloc-bench fuzz-smoke

# Tier-1 gate: formatting, vet, import boundaries, build, and the full
# suite under the race detector (the TCP data path is exercised by
# genuinely concurrent tests).
check: fmt vet importgate build race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Transport-neutrality gate: the shared library layers (store, fusecache,
# core, proto) and the whole real TCP path (rpc, manager, benefactor, obs,
# cmd/*, examples/*) must never grow a dependency on the simulation
# engine. Only the allow-listed simulation packages — and the facade,
# which re-exports the engine for simulation users — may import
# internal/simtime in non-test sources; _test.go files are exempt.
importgate:
	@bad=$$(grep -rl '"nvmalloc/internal/simtime"' --include='*.go' . \
		| grep -v '_test\.go$$' \
		| sed 's|^\./||' \
		| grep -v -E '^(nvmalloc\.go|internal/(simtime|sim|simstore|cluster|device|netsim|mpi|pfs|workloads|experiments)/)'); \
	if [ -n "$$bad" ]; then \
		echo "internal/simtime imported outside the simulation allowlist:"; \
		echo "$$bad"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The deterministic simulation suites are CPU-heavy; under the race
# detector they need more than the default 10m per-package timeout.
race:
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -bench=RPCStore -benchmem ./internal/rpc

# Instrumentation cost: default metrics/events vs obs.Disabled(). The two
# modes must stay within noise of each other (<5%).
obs-bench:
	$(GO) test -run xxx -bench=RPCObsOverhead -benchtime 2s -count 3 ./internal/rpc

# Allocation gate for the NVM1 binary data path: the frame codec and arena
# must run allocation-free, and the cached TCP chunk read path must stay at
# least 2x leaner than the legacy gob envelope. Run without -race — the race
# runtime's instrumentation would drown the budgets.
alloc-bench:
	$(GO) test -count 1 -run 'TestFrameCodecZeroAlloc|TestArenaZeroAlloc' ./internal/proto
	$(GO) test -count 1 -run TestAllocBudgetCachedChunkGet ./internal/rpc

# Short coverage-guided smoke over the NVM1 frame decoder and the NVC1
# shard-snapshot decoder: any accepted input must be internally consistent
# (round-trip / in-bounds index), any rejected input must fail clean.
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzDecodeFrame -fuzztime 15s ./internal/proto
	$(GO) test -run xxx -fuzz FuzzDecodeNVC1Index -fuzztime 15s ./internal/filecache
