package nvmalloc

import (
	"bytes"
	"testing"
)

// TestPublicAPIEndToEnd exercises the facade exactly the way the README's
// quickstart does: build a machine, allocate from NVM and DRAM, move data,
// checkpoint, restore.
func TestPublicAPIEndToEnd(t *testing.T) {
	eng := NewEngine()
	cfg := Config{Mode: LocalSSD, ProcsPerNode: 8, ComputeNodes: 16, Benefactors: 16}
	m, err := NewMachine(eng, Bench(), cfg, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	client := m.NewClient(0)

	eng.Go("app", func(p *Proc) {
		nv, err := client.Malloc(p, 4*m.Prof.ChunkSize, WithName("state"))
		if err != nil {
			t.Error(err)
			return
		}
		v := Float64s(nv)
		for i := int64(0); i < 100; i++ {
			if err := v.Store(p, i, float64(i)*0.5); err != nil {
				t.Error(err)
				return
			}
		}
		dram, err := NewDRAM(m, 0, "scratch", 4096)
		if err != nil {
			t.Error(err)
			return
		}
		if err := dram.WriteAt(p, 0, []byte("dram state")); err != nil {
			t.Error(err)
			return
		}
		info, err := client.Checkpoint(p, "ck", []byte("dram state"), nv)
		if err != nil {
			t.Error(err)
			return
		}
		restored, err := client.RestoreRegion(p, "ck", info.Regions[0], "state.restored")
		if err != nil {
			t.Error(err)
			return
		}
		x, err := Float64s(restored).Load(p, 42)
		if err != nil || x != 21 {
			t.Errorf("restored[42] = %v err %v", x, err)
		}
		got := make([]byte, 10)
		if err := client.ReadCheckpointDRAM(p, "ck", got); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, []byte("dram state")) {
			t.Errorf("dram state = %q", got)
		}
	})
	eng.Run()
	if eng.Now() == 0 {
		t.Fatal("no virtual time consumed")
	}
}

// TestConcatBuffer verifies the hybrid DRAM+NVM composition exposed to
// users.
func TestConcatBuffer(t *testing.T) {
	eng := NewEngine()
	m, err := NewMachine(eng, Bench(), Config{Mode: LocalSSD, ProcsPerNode: 1, ComputeNodes: 1, Benefactors: 1}, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	c := m.NewClient(0)
	eng.Go("app", func(p *Proc) {
		d, err := NewDRAM(m, 0, "d", 1024)
		if err != nil {
			t.Error(err)
			return
		}
		nv, err := c.Malloc(p, m.Prof.ChunkSize)
		if err != nil {
			t.Error(err)
			return
		}
		hybrid := Concat("hybrid", d, nv)
		if hybrid.Size() != 1024+m.Prof.ChunkSize {
			t.Error("size wrong")
		}
		span := []byte("crosses the boundary")
		if err := hybrid.WriteAt(p, 1024-8, span); err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, len(span))
		hybrid.ReadAt(p, 1024-8, got)
		if !bytes.Equal(got, span) {
			t.Error("boundary-crossing write lost")
		}
	})
	eng.Run()
}
