package fusecache

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"nvmalloc/internal/cluster"
	"nvmalloc/internal/manager"
	"nvmalloc/internal/simstore"
	"nvmalloc/internal/simtime"
	"nvmalloc/internal/sysprof"
)

// rig bundles a small simulated store + cache for tests.
type rig struct {
	eng   *simtime.Engine
	cl    *cluster.Cluster
	store *simstore.Store
	cc    *ChunkCache
}

func newRig(cacheChunks int) *rig {
	return newRigConc(cacheChunks, 0)
}

// newRigConc additionally pins the FUSE daemon concurrency gate.
func newRigConc(cacheChunks, fuseConc int) *rig {
	e := simtime.NewEngine()
	prof := sysprof.Bench()
	cl := cluster.New(e, prof)
	st := simstore.New(cl, 0, []int{0, 1, 2, 3}, 64*sysprof.MiB, manager.RoundRobin)
	cfg := Config{
		ChunkSize:       prof.ChunkSize,
		PageSize:        prof.PageSize,
		CacheBytes:      int64(cacheChunks) * prof.ChunkSize,
		ReadAheadChunks: 1,
		FuseConcurrency: fuseConc,
	}
	cc := NewChunkCache(simstore.Env(e), st.Client(0), cfg)
	return &rig{eng: e, cl: cl, store: st, cc: cc}
}

// run executes fn as a proc and drives the engine to completion.
func (r *rig) run(t *testing.T, fn func(p *simtime.Proc)) {
	t.Helper()
	r.eng.Go("test", fn)
	r.eng.Run()
}

func TestChunkCacheReadYourWrites(t *testing.T) {
	r := newRig(8)
	cs := r.cc.cfg.ChunkSize
	r.run(t, func(p *simtime.Proc) {
		fi, err := r.cc.store.Create(p, "v", 4*cs)
		if err != nil {
			t.Error(err)
			return
		}
		r.cc.RegisterMeta(p, fi)
		data := bytes.Repeat([]byte{0xC3}, 100)
		if err := r.cc.WriteRange(p, "v", cs-50, data); err != nil { // crosses a chunk boundary
			t.Error(err)
			return
		}
		got := make([]byte, 100)
		if err := r.cc.ReadRange(p, "v", cs-50, got); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("read-your-writes failed across chunk boundary")
		}
	})
}

func TestDirtyPageOnlyEviction(t *testing.T) {
	r := newRig(2) // tiny cache: 2 chunks
	cs, ps := r.cc.cfg.ChunkSize, r.cc.cfg.PageSize
	r.run(t, func(p *simtime.Proc) {
		fi, _ := r.cc.store.Create(p, "v", 8*cs)
		r.cc.RegisterMeta(p, fi)
		// Dirty exactly one page of chunk 0.
		if err := r.cc.WriteRange(p, "v", 0, make([]byte, ps)); err != nil {
			t.Error(err)
			return
		}
		before := r.cc.Stats().SSDWriteBytes
		// Touch chunks 2,3,4 to evict chunk 0 (and the read-ahead chunks).
		buf := make([]byte, 1)
		for idx := 2; idx <= 4; idx++ {
			if err := r.cc.ReadRange(p, "v", int64(idx)*cs, buf); err != nil {
				t.Error(err)
				return
			}
		}
		wrote := r.cc.Stats().SSDWriteBytes - before
		if wrote != ps {
			t.Errorf("eviction shipped %d bytes, want exactly one page (%d)", wrote, ps)
		}
	})
	if r.cc.Stats().DirtyEvictions == 0 {
		t.Fatal("expected a dirty eviction")
	}
}

func TestWholeChunkWriteUsesPutChunk(t *testing.T) {
	r := newRig(2)
	cs := r.cc.cfg.ChunkSize
	r.run(t, func(p *simtime.Proc) {
		fi, _ := r.cc.store.Create(p, "v", 4*cs)
		r.cc.RegisterMeta(p, fi)
		if err := r.cc.WriteRange(p, "v", 0, make([]byte, cs)); err != nil {
			t.Error(err)
			return
		}
		if err := r.cc.Flush(p, "v"); err != nil {
			t.Error(err)
			return
		}
		if got := r.cc.Stats().SSDWriteBytes; got != cs {
			t.Errorf("flush wrote %d bytes, want %d", got, cs)
		}
	})
	// The benefactor should have seen one whole-chunk put, not 64 page puts.
	st := r.store.Benefactor(0).Stats()
	if st.Puts != 1 || st.PagePuts != 0 {
		t.Fatalf("benefactor saw %d puts / %d page-puts, want 1 / 0", st.Puts, st.PagePuts)
	}
}

func TestReadAheadPrefetchesSequential(t *testing.T) {
	r := newRig(8)
	cs := r.cc.cfg.ChunkSize
	r.run(t, func(p *simtime.Proc) {
		fi, _ := r.cc.store.Create(p, "v", 6*cs)
		r.cc.RegisterMeta(p, fi)
		buf := make([]byte, 64)
		for idx := 0; idx < 6; idx++ {
			if err := r.cc.ReadRange(p, "v", int64(idx)*cs, buf); err != nil {
				t.Error(err)
				return
			}
			p.Sleep(5_000_000) // compute between accesses lets prefetch land
		}
	})
	s := r.cc.Stats()
	if s.PrefetchBytes == 0 {
		t.Fatal("sequential reads should trigger read-ahead")
	}
	if s.Misses+s.Waits >= 6 && s.Hits == 0 {
		t.Fatalf("prefetch produced no hits: %+v", s)
	}
}

func TestLRUCapacityRespected(t *testing.T) {
	r := newRig(4)
	cs := r.cc.cfg.ChunkSize
	r.run(t, func(p *simtime.Proc) {
		fi, _ := r.cc.store.Create(p, "v", 16*cs)
		r.cc.RegisterMeta(p, fi)
		buf := make([]byte, 1)
		for idx := 0; idx < 16; idx++ {
			if err := r.cc.ReadRange(p, "v", int64(idx)*cs, buf); err != nil {
				t.Error(err)
				return
			}
		}
		if got := r.cc.Resident(p, "v"); got > 4 {
			t.Errorf("resident chunks %d exceed capacity 4", got)
		}
	})
	if r.cc.Stats().Evictions == 0 {
		t.Fatal("expected evictions")
	}
}

func TestFlushPersistsAndDropDiscards(t *testing.T) {
	r := newRig(8)
	cs := r.cc.cfg.ChunkSize
	r.run(t, func(p *simtime.Proc) {
		fi, _ := r.cc.store.Create(p, "v", 2*cs)
		r.cc.RegisterMeta(p, fi)
		want := bytes.Repeat([]byte{9}, int(cs/2))
		r.cc.WriteRange(p, "v", cs/4, want)
		if err := r.cc.Flush(p, "v"); err != nil {
			t.Error(err)
			return
		}
		r.cc.Drop(p, "v")
		got := make([]byte, len(want))
		if err := r.cc.ReadRange(p, "v", cs/4, got); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, want) {
			t.Error("flushed data lost after drop")
		}
	})
}

func TestCOWRemapOnWriteback(t *testing.T) {
	r := newRig(8)
	cs := r.cc.cfg.ChunkSize
	r.run(t, func(p *simtime.Proc) {
		c := r.cc.store
		fi, _ := c.Create(p, "v", 2*cs)
		r.cc.RegisterMeta(p, fi)
		orig := bytes.Repeat([]byte{1}, int(cs))
		r.cc.WriteRange(p, "v", 0, orig)
		r.cc.WriteRange(p, "v", cs, orig)
		r.cc.Flush(p, "v")
		// Checkpoint: link v's chunks into ckpt, then arm COW.
		c.Create(p, "ckpt", 0)
		c.Link(p, "ckpt", []string{"v"})
		r.cc.ArmCOW(p, "v")
		// Modify chunk 0 and flush: must remap, leaving the checkpoint's
		// chunk untouched.
		r.cc.WriteRange(p, "v", 0, bytes.Repeat([]byte{2}, 64))
		if err := r.cc.Flush(p, "v"); err != nil {
			t.Error(err)
			return
		}
		if r.cc.Stats().Remaps != 1 {
			t.Errorf("remaps = %d, want 1", r.cc.Stats().Remaps)
		}
		// Checkpoint still sees the original bytes.
		ck, _ := c.Lookup(p, "ckpt")
		data, err := c.GetChunk(p, ck.Chunks[0:1])
		if err != nil {
			t.Error(err)
			return
		}
		if data[0] != 1 {
			t.Error("checkpoint chunk was modified in place")
		}
		// The variable sees the new bytes.
		r.cc.Drop(p, "v")
		got := make([]byte, 64)
		r.cc.ReadRange(p, "v", 0, got)
		if got[0] != 2 {
			t.Error("variable lost its post-checkpoint write")
		}
		// Unmodified chunk 1 is still shared (no extra space burned).
		v, _ := c.Lookup(p, "v")
		ck2, _ := c.Lookup(p, "ckpt")
		if v.Chunks[1] != ck2.Chunks[1] {
			t.Error("unmodified chunk should remain shared")
		}
		if v.Chunks[0] == ck2.Chunks[0] {
			t.Error("modified chunk must have been remapped")
		}
	})
}

func TestPageCacheAbsorbsRepeatedAccesses(t *testing.T) {
	r := newRig(8)
	cs := r.cc.cfg.ChunkSize
	pc := NewPageCache(r.cc, 64*r.cc.cfg.PageSize)
	r.run(t, func(p *simtime.Proc) {
		fi, _ := r.cc.store.Create(p, "v", 2*cs)
		r.cc.RegisterMeta(p, fi)
		buf := make([]byte, 8)
		for i := 0; i < 100; i++ {
			if err := pc.Read(p, "v", 16, buf); err != nil {
				t.Error(err)
				return
			}
		}
	})
	s := pc.Stats()
	if s.Faults != 1 {
		t.Fatalf("faults = %d, want 1 (page cache must absorb re-reads)", s.Faults)
	}
	if s.Hits != 99 {
		t.Fatalf("hits = %d, want 99", s.Hits)
	}
}

func TestPageCacheWritebackOnSync(t *testing.T) {
	r := newRig(8)
	cs, ps := r.cc.cfg.ChunkSize, r.cc.cfg.PageSize
	pc := NewPageCache(r.cc, 64*ps)
	r.run(t, func(p *simtime.Proc) {
		fi, _ := r.cc.store.Create(p, "v", 2*cs)
		r.cc.RegisterMeta(p, fi)
		want := bytes.Repeat([]byte{0xEE}, int(3*ps))
		pc.Write(p, "v", ps/2, want)
		if err := pc.Sync(p, "v", true); err != nil {
			t.Error(err)
			return
		}
		// Read through a completely fresh path.
		r.cc.Drop(p, "v")
		pc.Drop("v")
		got := make([]byte, len(want))
		if err := pc.Read(p, "v", ps/2, got); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, want) {
			t.Error("synced data lost")
		}
	})
}

func TestSharedChunkCacheAcrossRanks(t *testing.T) {
	// Two rank procs on the same node share one ChunkCache; concurrent
	// misses on the same chunk must fetch it once.
	r := newRig(8)
	cs := r.cc.cfg.ChunkSize
	var created bool
	ready := simtime.NewFuture[struct{}](r.eng, "created")
	for rank := 0; rank < 2; rank++ {
		r.eng.Go("rank", func(p *simtime.Proc) {
			if !created {
				created = true
				fi, _ := r.cc.store.Create(p, "B", 4*cs)
				r.cc.RegisterMeta(p, fi)
				ready.Set(struct{}{})
			} else {
				ready.Wait(p)
			}
			buf := make([]byte, 128)
			for idx := 0; idx < 4; idx++ {
				if err := r.cc.ReadRange(p, "B", int64(idx)*cs, buf); err != nil {
					t.Error(err)
					return
				}
			}
		})
	}
	r.eng.Run()
	s := r.cc.Stats()
	if s.SSDReadBytes > 5*cs { // 4 chunks + at most 1 read-ahead overshoot
		t.Fatalf("shared cache fetched %d bytes, want <= %d (single fetch per chunk)", s.SSDReadBytes, 5*cs)
	}
	if s.Waits == 0 && s.Hits == 0 {
		t.Fatalf("second rank should hit or wait, stats %+v", s)
	}
}

// Property: an arbitrary sequence of page-cache reads and writes behaves
// exactly like a flat byte array, including after a sync + drop cycle.
func TestCacheMatchesFlatArrayProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newRig(3) // deliberately tiny: force constant eviction
		cs := r.cc.cfg.ChunkSize
		size := 6 * cs
		ref := make([]byte, size)
		ok := true
		r.eng.Go("t", func(p *simtime.Proc) {
			pc := NewPageCache(r.cc, 16*r.cc.cfg.PageSize)
			fi, err := r.cc.store.Create(p, "v", size)
			if err != nil {
				ok = false
				return
			}
			r.cc.RegisterMeta(p, fi)
			for op := 0; op < 120 && ok; op++ {
				off := rng.Int63n(size - 1)
				n := rng.Int63n(min64(2049, size-off)) + 1
				if rng.Intn(2) == 0 {
					data := make([]byte, n)
					rng.Read(data)
					if err := pc.Write(p, "v", off, data); err != nil {
						ok = false
						return
					}
					copy(ref[off:], data)
				} else {
					got := make([]byte, n)
					if err := pc.Read(p, "v", off, got); err != nil {
						ok = false
						return
					}
					if !bytes.Equal(got, ref[off:off+n]) {
						ok = false
						return
					}
				}
			}
			// Sync everything out, drop all caches, and verify the store
			// holds the reference image.
			if err := pc.Sync(p, "v", true); err != nil {
				ok = false
				return
			}
			pc.Drop("v")
			r.cc.Drop(p, "v")
			got := make([]byte, size)
			if err := r.cc.ReadRange(p, "v", 0, got); err != nil {
				ok = false
				return
			}
			if !bytes.Equal(got, ref) {
				ok = false
			}
		})
		r.eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
