// Package fusecache implements the client-side caching that bridges the
// granularity gap between byte-addressable memory accesses and the 256 KB
// chunks of the distributed block store (paper §III-D):
//
//   - ChunkCache is the per-node FUSE-layer cache: an LRU of whole chunks
//     with per-page dirty bitmaps. On eviction only dirty pages travel to
//     the benefactor (the paper's write optimization, Table VII), and
//     sequential misses trigger asynchronous read-ahead (the reason
//     NVMalloc *beats* direct SSD access on STREAM, Table III).
//   - PageCache (pagecache.go) is the per-process page-granularity layer
//     standing in for the kernel page cache above FUSE.
//
// The cache also carries the copy-on-write protocol for checkpointed
// variables: files "armed" for COW get their shared chunks remapped by the
// manager before the first post-checkpoint writeback (paper §III-E).
//
// The cache is transport neutral: it talks to the store through
// store.Client and to its execution substrate (locking, task spawning,
// blocking) through store.Env, so the same code serves the deterministic
// simulation (simstore.Env + simstore.Client) and the real TCP deployment
// (store.GoEnv + the rpc adapter). Internal methods assume the env lock is
// held and release it around every blocking operation — store RPCs, future
// waits, gate acquisition — exactly the discipline a wall-clock mutex
// needs; under the simulation the lock is a no-op and the discipline is
// free.
package fusecache

import (
	"container/list"
	"errors"
	"fmt"
	"sort"

	"nvmalloc/internal/obs"
	"nvmalloc/internal/proto"
	"nvmalloc/internal/store"
)

// Config holds the cache geometry.
type Config struct {
	ChunkSize int64
	PageSize  int64
	// CacheBytes is the FUSE cache capacity (paper: 64 MB).
	CacheBytes int64
	// ReadAheadChunks is how many chunks to prefetch after a sequential
	// miss (0 disables read-ahead).
	ReadAheadChunks int
	// WriteFullChunks disables the dirty-page write optimization: whole
	// chunks travel on every writeback, however few pages are dirty. This
	// is the "without optimization" baseline of Table VII.
	WriteFullChunks bool
	// FuseConcurrency is how many store requests the node's FUSE daemon
	// keeps in flight (the 2012 implementation served requests with very
	// limited concurrency; 0 defaults to 2 — one demand fetch plus one
	// read-ahead).
	FuseConcurrency int
	// Obs receives the cache's counters (fusecache.* on its registry).
	// Nil gets a fresh private obs.New("fusecache").
	Obs *obs.Obs
}

// Chunks returns the cache capacity in chunks (at least 1).
func (c Config) Chunks() int {
	n := int(c.CacheBytes / c.ChunkSize)
	if n < 1 {
		n = 1
	}
	return n
}

// Stats are the cumulative traffic counters of one ChunkCache. The three
// levels of Table IV map to: application bytes (counted by core.Region),
// FUSE bytes (FuseRead/FuseWrite here), and SSD bytes (SSDRead/SSDWrite
// here).
type Stats struct {
	FuseReadBytes  int64 // bytes served to the page layer
	FuseWriteBytes int64 // bytes accepted from the page layer
	SSDReadBytes   int64 // chunk payloads fetched from benefactors
	SSDWriteBytes  int64 // payload bytes shipped to benefactors
	PrefetchBytes  int64 // subset of SSDReadBytes fetched by read-ahead
	Hits           int64
	Misses         int64
	Waits          int64 // accesses that waited on an in-flight fetch/flush
	Evictions      int64
	DirtyEvictions int64
	Spills         int64 // clean evicted chunks handed to the file tier
	Remaps         int64 // copy-on-write remappings performed
	Flushes        int64
}

// counters are the cache's registry handles. They are atomic, so Stats()
// and ResetStats() are safe to call from outside the simulation engine
// while procs are running (the old plain-struct counters raced there).
type counters struct {
	fuseRead, fuseWrite         *obs.Counter
	ssdRead, ssdWrite, prefetch *obs.Counter
	hits, misses, waits         *obs.Counter
	evictions, dirtyEvictions   *obs.Counter
	spills                      *obs.Counter
	remaps, flushes             *obs.Counter
}

func newCounters(o *obs.Obs) counters {
	r := o.Reg
	return counters{
		fuseRead:       r.Counter("fusecache.fuse_read_bytes"),
		fuseWrite:      r.Counter("fusecache.fuse_write_bytes"),
		ssdRead:        r.Counter("fusecache.ssd_read_bytes"),
		ssdWrite:       r.Counter("fusecache.ssd_write_bytes"),
		prefetch:       r.Counter("fusecache.prefetch_bytes"),
		hits:           r.Counter("fusecache.hits"),
		misses:         r.Counter("fusecache.misses"),
		waits:          r.Counter("fusecache.waits"),
		evictions:      r.Counter("fusecache.evictions"),
		dirtyEvictions: r.Counter("fusecache.dirty_evictions"),
		spills:         r.Counter("fusecache.spills"),
		remaps:         r.Counter("fusecache.remaps"),
		flushes:        r.Counter("fusecache.flushes"),
	}
}

type chunkKey struct {
	file string
	idx  int
}

// entry is one cached chunk.
type entry struct {
	key    chunkKey
	data   []byte
	dirty  []bool // per page
	nDirty int
	lru    *list.Element
	// fut is non-nil while the entry is loading or flushing; accessors
	// must wait on it and retry.
	fut      store.Future
	prefetch bool // entry was created by read-ahead (for stats)
}

// ChunkCache is the per-node FUSE-layer chunk cache.
type ChunkCache struct {
	env   store.Env
	store store.Client
	cfg   Config
	// lender is non-nil when the store hands out caller-owned chunk buffers
	// (store.BufferLender with PrivateChunks, i.e. the TCP adapter's pooled
	// arena leases): fetch then adopts GetChunk results as entry data with
	// no copy, and eviction returns the buffers to the store's pool. A nil
	// lender keeps the copy-on-fetch path (simstore aliases its backing
	// memory).
	lender store.BufferLender
	// spiller is non-nil when the store stacks a local spill tier
	// (store.ChunkSpiller, i.e. filecache.Tier): clean evictions hand
	// their payload down so a later miss is served node-locally.
	spiller store.ChunkSpiller

	// All fields below are guarded by env's lock (a no-op under the
	// cooperative simulation, a mutex under the TCP deployment).
	entries map[chunkKey]*entry
	lru     *list.List // front = most recent

	// meta caches file chunk maps fetched from the manager.
	meta map[string]*proto.FileInfo
	// cow marks files whose chunks may be shared with a checkpoint and
	// need remapping before writeback.
	cow map[string]bool
	// lastMiss tracks the last demand-missed chunk index per file for
	// sequential-pattern detection.
	lastMiss map[string]int
	// virgin marks chunks of freshly created files that have never been
	// written: posix_fallocate reserved them, so they are known-zero and a
	// miss can be satisfied without fetching (no read-modify-write for
	// initial population).
	virgin map[chunkKey]bool
	// gate bounds concurrent store requests from this node's FUSE daemon.
	gate store.Gate

	s counters
}

// NewChunkCache builds the per-node cache on the given execution substrate
// and store backend.
func NewChunkCache(env store.Env, st store.Client, cfg Config) *ChunkCache {
	if cfg.ChunkSize != st.ChunkSize() {
		panic(fmt.Sprintf("fusecache: cache chunk size %d != store chunk size %d", cfg.ChunkSize, st.ChunkSize()))
	}
	if cfg.ChunkSize%cfg.PageSize != 0 {
		panic("fusecache: chunk size not a multiple of page size")
	}
	conc := cfg.FuseConcurrency
	if conc <= 0 {
		conc = 2
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New("fusecache")
	}
	return &ChunkCache{
		s:        newCounters(cfg.Obs),
		env:      env,
		store:    st,
		lender:   lenderOf(st),
		spiller:  spillerOf(st),
		cfg:      cfg,
		entries:  make(map[chunkKey]*entry),
		lru:      list.New(),
		meta:     make(map[string]*proto.FileInfo),
		cow:      make(map[string]bool),
		lastMiss: make(map[string]int),
		virgin:   make(map[chunkKey]bool),
		gate:     env.NewGate("fuse-daemon", conc),
	}
}

// lenderOf returns st's buffer-lending interface when its GetChunk results
// are caller-owned (nil otherwise — the cache then copies on fetch).
func lenderOf(st store.Client) store.BufferLender {
	if bl, ok := st.(store.BufferLender); ok && bl.PrivateChunks() {
		return bl
	}
	return nil
}

// spillerOf returns st's spill hook when it stacks a local file tier.
func spillerOf(st store.Client) store.ChunkSpiller {
	if sp, ok := st.(store.ChunkSpiller); ok {
		return sp
	}
	return nil
}

// releaseEntry hands an entry's chunk buffer back to the lending store's
// pool (no-op without a lender). The entry must already be off the cache
// maps, or about to be.
func (cc *ChunkCache) releaseEntry(e *entry) {
	if cc.lender != nil && e.data != nil {
		cc.lender.ReleaseChunk(e.data)
		e.data = nil
	}
}

// MarkFresh records that a file was just created by this node, so all its
// chunks are known-zero until first written (write allocation skips the
// read-modify-write fetch).
func (cc *ChunkCache) MarkFresh(ctx store.Ctx, fi proto.FileInfo) {
	cc.env.Lock(ctx)
	defer cc.env.Unlock(ctx)
	cc.meta[fi.Name] = &fi
	for i := range fi.Chunks {
		cc.virgin[chunkKey{fi.Name, i}] = true
	}
}

// Stats returns a snapshot of the counters. Safe to call concurrently with
// a running simulation (the counters are atomic).
func (cc *ChunkCache) Stats() Stats {
	return Stats{
		FuseReadBytes:  cc.s.fuseRead.Load(),
		FuseWriteBytes: cc.s.fuseWrite.Load(),
		SSDReadBytes:   cc.s.ssdRead.Load(),
		SSDWriteBytes:  cc.s.ssdWrite.Load(),
		PrefetchBytes:  cc.s.prefetch.Load(),
		Hits:           cc.s.hits.Load(),
		Misses:         cc.s.misses.Load(),
		Waits:          cc.s.waits.Load(),
		Evictions:      cc.s.evictions.Load(),
		DirtyEvictions: cc.s.dirtyEvictions.Load(),
		Spills:         cc.s.spills.Load(),
		Remaps:         cc.s.remaps.Load(),
		Flushes:        cc.s.flushes.Load(),
	}
}

// ResetStats zeroes the counters (between experiment phases).
func (cc *ChunkCache) ResetStats() {
	for _, c := range []*obs.Counter{
		cc.s.fuseRead, cc.s.fuseWrite, cc.s.ssdRead, cc.s.ssdWrite,
		cc.s.prefetch, cc.s.hits, cc.s.misses, cc.s.waits,
		cc.s.evictions, cc.s.dirtyEvictions, cc.s.spills,
		cc.s.remaps, cc.s.flushes,
	} {
		c.Set(0)
	}
}

// Store returns the underlying store client.
func (cc *ChunkCache) Store() store.Client { return cc.store }

// Config returns the cache geometry.
func (cc *ChunkCache) Config() Config { return cc.cfg }

// Obs returns the cache's observability handle, so the layers above
// (core.Client, the checkpoint engine) mint their root spans on the same
// rings the cache records into.
func (cc *ChunkCache) Obs() *obs.Obs { return cc.cfg.Obs }

// NowNanos reads the execution substrate's clock: wall time on a GoEnv,
// virtual simulated time under simstore. Span timestamps taken through it
// stay consistent with the cache's own.
func (cc *ChunkCache) NowNanos(ctx store.Ctx) int64 { return cc.env.NowNanos(ctx) }

// span starts a cache-layer child span under ctx's trace and returns it
// along with the context to hand to the store, so deeper layers (wire,
// benefactor) nest under the cache span. An untraced ctx returns (nil, ctx)
// — the nil *ActiveSpan is safe to use and records nothing. Lock held.
func (cc *ChunkCache) span(ctx store.Ctx, name, file string) (*obs.ActiveSpan, store.Ctx) {
	sc := store.SpanOf(ctx)
	if !sc.Traced() {
		return nil, ctx
	}
	sp := cc.cfg.Obs.StartSpanAt(sc.Trace, sc.Parent, name, cc.env.NowNanos(ctx))
	sp.SetVar(file)
	return sp, store.WithSpan(ctx, store.SpanInfo{Trace: sp.Trace(), Parent: sp.ID(), Var: file})
}

// fileMeta returns the (possibly cached) chunk map of a file. Lock held;
// released around the manager RPC.
func (cc *ChunkCache) fileMeta(ctx store.Ctx, file string) (*proto.FileInfo, error) {
	if fi, ok := cc.meta[file]; ok {
		return fi, nil
	}
	cc.env.Unlock(ctx)
	fi, err := cc.store.Lookup(ctx, file)
	cc.env.Lock(ctx)
	if err != nil {
		return nil, err
	}
	// Another accessor may have populated (or re-seeded) the map while we
	// were on the wire; its copy is at least as fresh.
	if cached, ok := cc.meta[file]; ok {
		return cached, nil
	}
	cc.meta[file] = &fi
	return &fi, nil
}

// RegisterMeta seeds the metadata cache (used right after Create so the
// creator needs no extra lookup).
func (cc *ChunkCache) RegisterMeta(ctx store.Ctx, fi proto.FileInfo) {
	cc.env.Lock(ctx)
	cc.meta[fi.Name] = &fi
	cc.env.Unlock(ctx)
}

// InvalidateMeta drops the cached chunk map of a file.
func (cc *ChunkCache) InvalidateMeta(ctx store.Ctx, file string) {
	cc.env.Lock(ctx)
	delete(cc.meta, file)
	cc.env.Unlock(ctx)
}

// ArmCOW marks a file's chunks as potentially checkpoint-shared: the next
// writeback of each chunk will consult the manager for a copy-on-write
// remap.
func (cc *ChunkCache) ArmCOW(ctx store.Ctx, file string) {
	cc.env.Lock(ctx)
	cc.cow[file] = true
	cc.env.Unlock(ctx)
}

// DisarmCOW clears the COW mark (after Free).
func (cc *ChunkCache) DisarmCOW(ctx store.Ctx, file string) {
	cc.env.Lock(ctx)
	delete(cc.cow, file)
	cc.env.Unlock(ctx)
}

// pagesPerChunk returns the dirty-bitmap width.
func (cc *ChunkCache) pagesPerChunk() int { return int(cc.cfg.ChunkSize / cc.cfg.PageSize) }

// acquire returns the cache entry for (file, idx), fetching on miss. The
// returned entry is resident (fut == nil) and freshly touched in the LRU.
// Lock held.
func (cc *ChunkCache) acquire(ctx store.Ctx, file string, idx int) (*entry, error) {
	key := chunkKey{file, idx}
	for {
		if e, ok := cc.entries[key]; ok {
			if e.fut != nil {
				cc.s.waits.Inc()
				fut := e.fut
				cc.env.Unlock(ctx)
				fut.Wait(ctx)
				cc.env.Lock(ctx)
				continue // state changed; re-check
			}
			cc.s.hits.Inc()
			cc.lru.MoveToFront(e.lru)
			return e, nil
		}
		// Demand miss. fileMeta may block on a manager RPC, so the entry
		// may appear (or start loading) underneath us; fetch re-checks and
		// reports a race by returning a nil entry.
		fi, err := cc.fileMeta(ctx, file)
		if err != nil {
			return nil, err
		}
		if idx < 0 || idx >= len(fi.Chunks) {
			return nil, fmt.Errorf("%w: chunk %d of %q (%d chunks)", proto.ErrChunkOutOfRange, idx, file, len(fi.Chunks))
		}
		if cc.virgin[key] {
			// Known-zero chunk of a freshly created file: materialize it
			// in cache without any store traffic.
			if err := cc.ensureRoom(ctx); err != nil {
				return nil, err
			}
			if _, ok := cc.entries[key]; ok {
				continue // raced during eviction
			}
			delete(cc.virgin, key)
			e := &entry{
				key:   key,
				data:  make([]byte, cc.cfg.ChunkSize),
				dirty: make([]bool, cc.pagesPerChunk()),
			}
			cc.entries[key] = e
			e.lru = cc.lru.PushFront(e)
			return e, nil
		}
		sequential := cc.lastMiss[file] == idx-1
		e, err := cc.fetch(ctx, key, refsCopy(*fi, idx), false)
		if err != nil {
			return nil, err
		}
		if e == nil {
			continue // lost a race; re-check the map
		}
		cc.s.misses.Inc()
		cc.lastMiss[file] = idx
		// Asynchronous read-ahead on sequential misses: overlapping the
		// next chunks' fetch with the application's consumption of this
		// one is what lets NVMalloc outperform direct SSD access
		// (Table III).
		if sequential && cc.cfg.ReadAheadChunks > 0 {
			for ahead := 1; ahead <= cc.cfg.ReadAheadChunks; ahead++ {
				na := idx + ahead
				if na >= len(fi.Chunks) {
					break
				}
				nk := chunkKey{file, na}
				if _, ok := cc.entries[nk]; ok {
					continue
				}
				refs := refsCopy(*fi, na)
				cc.env.Go(ctx, fmt.Sprintf("prefetch %s/%d", file, na), func(pp store.Ctx) {
					// Best effort: ignore errors (the demand path will
					// retry and report them).
					cc.env.Lock(pp)
					_, _ = cc.fetch(pp, nk, refs, true)
					cc.env.Unlock(pp)
				})
			}
		}
		return e, nil
	}
}

// refsCopy returns a private copy of chunk idx's replica set so it can be
// handed to the store outside the lock.
func refsCopy(fi proto.FileInfo, idx int) []proto.ChunkRef {
	return append([]proto.ChunkRef(nil), store.ReplicaRefs(fi, idx)...)
}

// fetch reserves a slot and loads one chunk from the store. It is used by
// both the demand path and the prefetcher. A nil, nil return means another
// accessor started or finished loading the chunk first. Lock held.
func (cc *ChunkCache) fetch(ctx store.Ctx, key chunkKey, refs []proto.ChunkRef, prefetch bool) (*entry, error) {
	if _, ok := cc.entries[key]; ok {
		return nil, nil
	}
	if err := cc.ensureRoom(ctx); err != nil {
		return nil, err
	}
	if _, ok := cc.entries[key]; ok {
		// ensureRoom blocked on a flush; re-check.
		return nil, nil
	}
	e := &entry{
		key:      key,
		dirty:    make([]bool, cc.pagesPerChunk()),
		fut:      cc.env.NewFuture("load " + key.file),
		prefetch: prefetch,
	}
	cc.entries[key] = e
	e.lru = cc.lru.PushFront(e)
	sp, fctx := cc.span(ctx, "cache.get_chunk", key.file)
	cc.env.Unlock(ctx)
	cc.gate.Acquire(fctx)
	data, err := cc.store.GetChunk(fctx, refs)
	cc.gate.Release(fctx)
	cc.env.Lock(ctx)
	sp.AddBytes(int64(len(data)))
	sp.SetErr(err)
	sp.EndAt(cc.env.NowNanos(ctx))
	if err != nil {
		// Failed load: remove the reservation and release waiters.
		delete(cc.entries, key)
		cc.lru.Remove(e.lru)
		e.fut.Set()
		return nil, err
	}
	if cc.lender != nil && int64(len(data)) == cc.cfg.ChunkSize {
		// The store lends caller-owned buffers: adopt the payload as the
		// entry's data outright (no copy) and return it at eviction.
		e.data = data
	} else {
		// Own a private copy: benefactor backends may alias their storage.
		e.data = make([]byte, len(data))
		copy(e.data, data)
		if cc.lender != nil {
			cc.lender.ReleaseChunk(data)
		}
	}
	cc.s.ssdRead.Add(int64(len(data)))
	if prefetch {
		cc.s.prefetch.Add(int64(len(data)))
	}
	fut := e.fut
	e.fut = nil
	fut.Set()
	return e, nil
}

// ensureRoom evicts LRU entries until a new chunk fits. Lock held.
func (cc *ChunkCache) ensureRoom(ctx store.Ctx) error {
	for len(cc.entries) >= cc.cfg.Chunks() {
		victim := cc.pickVictim()
		if victim == nil {
			// Everything resident is in flight; wait for the oldest
			// transition and retry.
			if w := cc.oldestBusy(); w != nil {
				cc.s.waits.Inc()
				cc.env.Unlock(ctx)
				w.Wait(ctx)
				cc.env.Lock(ctx)
				continue
			}
			return fmt.Errorf("fusecache: cache wedged with %d entries", len(cc.entries))
		}
		if err := cc.evict(ctx, victim); err != nil {
			return err
		}
	}
	return nil
}

// pickVictim returns the least-recently-used resident entry.
func (cc *ChunkCache) pickVictim() *entry {
	for el := cc.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		if e.fut == nil {
			return e
		}
	}
	return nil
}

// oldestBusy returns the future of some in-flight entry, if any.
func (cc *ChunkCache) oldestBusy() store.Future {
	for el := cc.lru.Back(); el != nil; el = el.Prev() {
		if e := el.Value.(*entry); e.fut != nil {
			return e.fut
		}
	}
	return nil
}

// evict writes back a victim's dirty pages and drops it. Lock held.
func (cc *ChunkCache) evict(ctx store.Ctx, e *entry) error {
	cc.s.evictions.Inc()
	if e.nDirty > 0 {
		cc.s.dirtyEvictions.Inc()
		e.fut = cc.env.NewFuture("flush " + e.key.file)
		err := cc.writeback(ctx, e)
		fut := e.fut
		e.fut = nil
		fut.Set()
		if err != nil {
			return err
		}
	}
	// The victim is clean now; hand its payload to the spill tier (a
	// synchronous copy) before the buffer goes back to the lender pool —
	// the tier copies, it never adopts, so ownership is undisturbed.
	if cc.spiller != nil && e.data != nil {
		if fi, ok := cc.meta[e.key.file]; ok && e.key.idx < len(fi.Chunks) {
			cc.s.spills.Inc()
			cc.spiller.SpillChunk(ctx, refsCopy(*fi, e.key.idx), e.data)
		}
	}
	delete(cc.entries, e.key)
	cc.lru.Remove(e.lru)
	cc.releaseEntry(e)
	return nil
}

// writeback ships an entry's dirty pages to its benefactor, performing the
// copy-on-write remap first when the file is armed. On return the entry is
// clean. Lock held; the caller must have set e.fut so no other accessor
// touches the entry while the lock is released around store calls.
func (cc *ChunkCache) writeback(ctx store.Ctx, e *entry) error {
	fi, err := cc.fileMeta(ctx, e.key.file)
	if err != nil {
		return err
	}
	if e.key.idx >= len(fi.Chunks) {
		return fmt.Errorf("%w: writeback of %q chunk %d", proto.ErrChunkOutOfRange, e.key.file, e.key.idx)
	}
	refs := refsCopy(*fi, e.key.idx)
	if cc.cow[e.key.file] {
		cc.env.Unlock(ctx)
		fresh, err := cc.store.Remap(ctx, e.key.file, e.key.idx)
		cc.env.Lock(ctx)
		if err != nil {
			return err
		}
		if len(fresh) > 0 && fresh[0] != refs[0] {
			cc.s.remaps.Inc()
			fi.Chunks[e.key.idx] = fresh[0]
			if e.key.idx < len(fi.Replicas) {
				fi.Replicas[e.key.idx] = fresh
			}
			refs = fresh
		}
	}
	err = cc.ship(ctx, e, refs)
	if errors.Is(err, proto.ErrNoSuchChunk) {
		// Stale chunk map: another client remapped, rewrote, or deleted
		// the file while our copy of its metadata aged. Refresh and retry
		// once against the fresh map.
		delete(cc.meta, e.key.file)
		fi, lerr := cc.fileMeta(ctx, e.key.file)
		switch {
		case errors.Is(lerr, proto.ErrNoSuchFile):
			err = nil // file is gone; its dirty data dies with it
		case lerr != nil:
			err = lerr
		case e.key.idx >= len(fi.Chunks):
			err = nil // file shrank; nothing left to persist
		default:
			err = cc.ship(ctx, e, refsCopy(*fi, e.key.idx))
		}
	}
	if err != nil {
		return err
	}
	for i := range e.dirty {
		e.dirty[i] = false
	}
	e.nDirty = 0
	return nil
}

// ship performs the actual writeback transfer: the whole chunk when every
// page is dirty (or the Table VII optimization is disabled), otherwise
// only the dirty pages. Lock held; released around the transfer.
func (cc *ChunkCache) ship(ctx store.Ctx, e *entry, refs []proto.ChunkRef) error {
	if e.nDirty == len(e.dirty) || cc.cfg.WriteFullChunks {
		sp, sctx := cc.span(ctx, "cache.put_chunk", e.key.file)
		cc.env.Unlock(ctx)
		cc.gate.Acquire(sctx)
		err := cc.store.PutChunk(sctx, refs, e.data)
		cc.gate.Release(sctx)
		cc.env.Lock(ctx)
		sp.AddBytes(int64(len(e.data)))
		sp.SetErr(err)
		sp.EndAt(cc.env.NowNanos(ctx))
		if err != nil {
			return err
		}
		cc.s.ssdWrite.Add(int64(len(e.data)))
		return nil
	}
	var offs []int64
	var pages [][]byte
	ps := cc.cfg.PageSize
	for i, d := range e.dirty {
		if !d {
			continue
		}
		off := int64(i) * ps
		offs = append(offs, off)
		pages = append(pages, e.data[off:off+ps])
	}
	sp, sctx := cc.span(ctx, "cache.put_pages", e.key.file)
	cc.env.Unlock(ctx)
	cc.gate.Acquire(sctx)
	err := cc.store.PutPages(sctx, refs, offs, pages)
	cc.gate.Release(sctx)
	cc.env.Lock(ctx)
	sp.AddBytes(int64(len(pages)) * ps)
	sp.SetErr(err)
	sp.EndAt(cc.env.NowNanos(ctx))
	if err != nil {
		return err
	}
	cc.s.ssdWrite.Add(int64(len(pages)) * ps)
	return nil
}

// locate splits a byte offset into (chunk index, offset within chunk).
func (cc *ChunkCache) locate(off int64) (int, int64) {
	return int(off / cc.cfg.ChunkSize), off % cc.cfg.ChunkSize
}

// ReadRange copies [off, off+len(buf)) of file into buf through the cache.
// The page layer calls this with single pages; larger spans are also
// supported for bulk I/O (checkpoint streaming).
func (cc *ChunkCache) ReadRange(ctx store.Ctx, file string, off int64, buf []byte) error {
	cc.s.fuseRead.Add(int64(len(buf)))
	cc.env.Lock(ctx)
	defer cc.env.Unlock(ctx)
	for len(buf) > 0 {
		idx, coff := cc.locate(off)
		e, err := cc.acquire(ctx, file, idx)
		if err != nil {
			return err
		}
		n := copy(buf, e.data[coff:])
		buf = buf[n:]
		off += int64(n)
	}
	return nil
}

// WriteRange writes data into file at off through the cache, marking the
// touched pages dirty. Writes are page-aligned when they come from the
// page layer; arbitrary alignment is handled for bulk I/O.
func (cc *ChunkCache) WriteRange(ctx store.Ctx, file string, off int64, data []byte) error {
	cc.s.fuseWrite.Add(int64(len(data)))
	ps := cc.cfg.PageSize
	cc.env.Lock(ctx)
	defer cc.env.Unlock(ctx)
	for len(data) > 0 {
		idx, coff := cc.locate(off)
		e, err := cc.acquire(ctx, file, idx)
		if err != nil {
			return err
		}
		n := copy(e.data[coff:], data)
		firstPage := int(coff / ps)
		lastPage := int((coff + int64(n) - 1) / ps)
		for pg := firstPage; pg <= lastPage; pg++ {
			if !e.dirty[pg] {
				e.dirty[pg] = true
				e.nDirty++
			}
		}
		data = data[n:]
		off += int64(n)
	}
	return nil
}

// Flush writes back every dirty chunk of file, leaving the data cached.
// Called before checkpoints and on Sync. Writebacks are issued from
// parallel flusher tasks (the FUSE daemon's request concurrency gate still
// bounds how many are actually in flight).
func (cc *ChunkCache) Flush(ctx store.Ctx, file string) error {
	cc.s.flushes.Inc()
	cc.env.Lock(ctx)
	defer cc.env.Unlock(ctx)
	// Deterministic order: ascending chunk index.
	fi, ok := cc.meta[file]
	if !ok {
		var err error
		fi, err = cc.fileMeta(ctx, file)
		if err != nil {
			return err
		}
	}
	var flushErr error
	// The substrate hands flusher tasks a fresh ctx (no span info), so
	// capture the caller's trace here and re-wrap inside the closure: the
	// writeback spans then nest under the caller's flush, not float as
	// orphan roots.
	sc := store.SpanOf(ctx)
	g := cc.env.NewGroup()
	for idx := range fi.Chunks {
		e, ok := cc.entries[chunkKey{file, idx}]
		if !ok {
			continue
		}
		for e.fut != nil {
			cc.s.waits.Inc()
			fut := e.fut
			cc.env.Unlock(ctx)
			fut.Wait(ctx)
			cc.env.Lock(ctx)
			var still bool
			if e, still = cc.entries[chunkKey{file, idx}]; !still {
				break
			}
		}
		if e == nil || e.nDirty == 0 {
			continue
		}
		e.fut = cc.env.NewFuture("flush " + file)
		ent := e
		g.Go(ctx, "flush "+file, func(fctx store.Ctx) {
			if sc.Traced() {
				fctx = store.WithSpan(fctx, sc)
			}
			cc.env.Lock(fctx)
			err := cc.writeback(fctx, ent)
			fut := ent.fut
			ent.fut = nil
			fut.Set()
			if err != nil && flushErr == nil {
				flushErr = err
			}
			cc.env.Unlock(fctx)
		})
	}
	cc.env.Unlock(ctx)
	g.Wait(ctx)
	cc.env.Lock(ctx)
	return flushErr
}

// FlushAll writes back every dirty chunk of every cached file (connection
// teardown, global sync).
func (cc *ChunkCache) FlushAll(ctx store.Ctx) error {
	cc.env.Lock(ctx)
	files := make(map[string]bool)
	for k, e := range cc.entries {
		if e.nDirty > 0 {
			files[k.file] = true
		}
	}
	// Deterministic order helps the simulation; sort the file names.
	names := make([]string, 0, len(files))
	for f := range files {
		names = append(names, f)
	}
	cc.env.Unlock(ctx)
	sort.Strings(names)
	var firstErr error
	for _, f := range names {
		if err := cc.Flush(ctx, f); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Drop discards every cached chunk of file (dirty pages are discarded —
// used by Free, whose semantics destroy the backing file anyway). In-flight
// loads or flushes of the file are waited out first so a straggling fetch
// cannot resurrect data under a name that may be recreated.
func (cc *ChunkCache) Drop(ctx store.Ctx, file string) {
	cc.env.Lock(ctx)
	defer cc.env.Unlock(ctx)
	for {
		var busy store.Future
		for k, e := range cc.entries {
			if k.file == file && e.fut != nil {
				busy = e.fut
				break
			}
		}
		if busy == nil {
			break
		}
		cc.env.Unlock(ctx)
		busy.Wait(ctx)
		cc.env.Lock(ctx)
	}
	var victims []*entry
	for k, e := range cc.entries {
		if k.file == file {
			victims = append(victims, e)
		}
	}
	for _, e := range victims {
		delete(cc.entries, e.key)
		cc.lru.Remove(e.lru)
		cc.releaseEntry(e)
	}
	delete(cc.meta, file)
	delete(cc.cow, file)
	delete(cc.lastMiss, file)
	for k := range cc.virgin {
		if k.file == file {
			delete(cc.virgin, k)
		}
	}
}

// Resident returns how many chunks of file are currently cached.
func (cc *ChunkCache) Resident(ctx store.Ctx, file string) int {
	cc.env.Lock(ctx)
	defer cc.env.Unlock(ctx)
	n := 0
	for k := range cc.entries {
		if k.file == file {
			n++
		}
	}
	return n
}
