// Package fusecache implements the client-side caching that bridges the
// granularity gap between byte-addressable memory accesses and the 256 KB
// chunks of the distributed block store (paper §III-D):
//
//   - ChunkCache is the per-node FUSE-layer cache: an LRU of whole chunks
//     with per-page dirty bitmaps. On eviction only dirty pages travel to
//     the benefactor (the paper's write optimization, Table VII), and
//     sequential misses trigger asynchronous read-ahead (the reason
//     NVMalloc *beats* direct SSD access on STREAM, Table III).
//   - PageCache (pagecache.go) is the per-process page-granularity layer
//     standing in for the kernel page cache above FUSE.
//
// The cache also carries the copy-on-write protocol for checkpointed
// variables: files "armed" for COW get their shared chunks remapped by the
// manager before the first post-checkpoint writeback (paper §III-E).
package fusecache

import (
	"container/list"
	"fmt"

	"nvmalloc/internal/obs"
	"nvmalloc/internal/proto"
	"nvmalloc/internal/simtime"
)

// StoreClient is the aggregate-store interface the cache consumes,
// implemented by internal/simstore.Client. (The real TCP deployment in
// internal/rpc has its own wall-clock counterpart of this cache,
// rpc.CachedStore, with the same LRU + per-page dirty bitmap +
// dirty-page-only writeback design.)
type StoreClient interface {
	Node() int
	ChunkSize() int64
	Create(p *simtime.Proc, name string, size int64) (proto.FileInfo, error)
	Lookup(p *simtime.Proc, name string) (proto.FileInfo, error)
	Exists(p *simtime.Proc, name string) bool
	Delete(p *simtime.Proc, name string) error
	Link(p *simtime.Proc, dst string, parts []string) (proto.FileInfo, error)
	Derive(p *simtime.Proc, name, src string, fromChunk, nChunks int, size int64) (proto.FileInfo, error)
	Remap(p *simtime.Proc, name string, chunkIdx int) (proto.ChunkRef, error)
	GetChunk(p *simtime.Proc, ref proto.ChunkRef) ([]byte, error)
	PutChunk(p *simtime.Proc, ref proto.ChunkRef, data []byte) error
	PutPages(p *simtime.Proc, ref proto.ChunkRef, pageOffs []int64, pages [][]byte) error
	Status(p *simtime.Proc) []proto.BenefactorInfo
}

// Config holds the cache geometry.
type Config struct {
	ChunkSize int64
	PageSize  int64
	// CacheBytes is the FUSE cache capacity (paper: 64 MB).
	CacheBytes int64
	// ReadAheadChunks is how many chunks to prefetch after a sequential
	// miss (0 disables read-ahead).
	ReadAheadChunks int
	// WriteFullChunks disables the dirty-page write optimization: whole
	// chunks travel on every writeback, however few pages are dirty. This
	// is the "without optimization" baseline of Table VII.
	WriteFullChunks bool
	// FuseConcurrency is how many store requests the node's FUSE daemon
	// keeps in flight (the 2012 implementation served requests with very
	// limited concurrency; 0 defaults to 2 — one demand fetch plus one
	// read-ahead).
	FuseConcurrency int
	// Obs receives the cache's counters (fusecache.* on its registry).
	// Nil gets a fresh private obs.New("fusecache").
	Obs *obs.Obs
}

// Chunks returns the cache capacity in chunks (at least 1).
func (c Config) Chunks() int {
	n := int(c.CacheBytes / c.ChunkSize)
	if n < 1 {
		n = 1
	}
	return n
}

// Stats are the cumulative traffic counters of one ChunkCache. The three
// levels of Table IV map to: application bytes (counted by core.Region),
// FUSE bytes (FuseRead/FuseWrite here), and SSD bytes (SSDRead/SSDWrite
// here).
type Stats struct {
	FuseReadBytes  int64 // bytes served to the page layer
	FuseWriteBytes int64 // bytes accepted from the page layer
	SSDReadBytes   int64 // chunk payloads fetched from benefactors
	SSDWriteBytes  int64 // payload bytes shipped to benefactors
	PrefetchBytes  int64 // subset of SSDReadBytes fetched by read-ahead
	Hits           int64
	Misses         int64
	Waits          int64 // accesses that waited on an in-flight fetch/flush
	Evictions      int64
	DirtyEvictions int64
	Remaps         int64 // copy-on-write remappings performed
	Flushes        int64
}

// counters are the cache's registry handles. They are atomic, so Stats()
// and ResetStats() are safe to call from outside the simulation engine
// while procs are running (the old plain-struct counters raced there).
type counters struct {
	fuseRead, fuseWrite         *obs.Counter
	ssdRead, ssdWrite, prefetch *obs.Counter
	hits, misses, waits         *obs.Counter
	evictions, dirtyEvictions   *obs.Counter
	remaps, flushes             *obs.Counter
}

func newCounters(o *obs.Obs) counters {
	r := o.Reg
	return counters{
		fuseRead:       r.Counter("fusecache.fuse_read_bytes"),
		fuseWrite:      r.Counter("fusecache.fuse_write_bytes"),
		ssdRead:        r.Counter("fusecache.ssd_read_bytes"),
		ssdWrite:       r.Counter("fusecache.ssd_write_bytes"),
		prefetch:       r.Counter("fusecache.prefetch_bytes"),
		hits:           r.Counter("fusecache.hits"),
		misses:         r.Counter("fusecache.misses"),
		waits:          r.Counter("fusecache.waits"),
		evictions:      r.Counter("fusecache.evictions"),
		dirtyEvictions: r.Counter("fusecache.dirty_evictions"),
		remaps:         r.Counter("fusecache.remaps"),
		flushes:        r.Counter("fusecache.flushes"),
	}
}

type chunkKey struct {
	file string
	idx  int
}

// entry is one cached chunk.
type entry struct {
	key    chunkKey
	data   []byte
	dirty  []bool // per page
	nDirty int
	lru    *list.Element
	// fut is non-nil while the entry is loading or flushing; accessors
	// must wait on it and retry.
	fut      *simtime.Future[struct{}]
	prefetch bool // entry was created by read-ahead (for stats)
}

// ChunkCache is the per-node FUSE-layer chunk cache.
type ChunkCache struct {
	eng   *simtime.Engine
	store StoreClient
	cfg   Config

	entries map[chunkKey]*entry
	lru     *list.List // front = most recent

	// meta caches file chunk maps fetched from the manager.
	meta map[string]*proto.FileInfo
	// cow marks files whose chunks may be shared with a checkpoint and
	// need remapping before writeback.
	cow map[string]bool
	// lastMiss tracks the last demand-missed chunk index per file for
	// sequential-pattern detection.
	lastMiss map[string]int
	// virgin marks chunks of freshly created files that have never been
	// written: posix_fallocate reserved them, so they are known-zero and a
	// miss can be satisfied without fetching (no read-modify-write for
	// initial population).
	virgin map[chunkKey]bool
	// gate bounds concurrent store requests from this node's FUSE daemon.
	gate *simtime.Resource

	s counters
}

// NewChunkCache builds the per-node cache.
func NewChunkCache(e *simtime.Engine, store StoreClient, cfg Config) *ChunkCache {
	if cfg.ChunkSize != store.ChunkSize() {
		panic(fmt.Sprintf("fusecache: cache chunk size %d != store chunk size %d", cfg.ChunkSize, store.ChunkSize()))
	}
	if cfg.ChunkSize%cfg.PageSize != 0 {
		panic("fusecache: chunk size not a multiple of page size")
	}
	conc := cfg.FuseConcurrency
	if conc <= 0 {
		conc = 2
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New("fusecache")
	}
	return &ChunkCache{
		s:        newCounters(cfg.Obs),
		eng:      e,
		store:    store,
		cfg:      cfg,
		entries:  make(map[chunkKey]*entry),
		lru:      list.New(),
		meta:     make(map[string]*proto.FileInfo),
		cow:      make(map[string]bool),
		lastMiss: make(map[string]int),
		virgin:   make(map[chunkKey]bool),
		gate:     simtime.NewResource(e, "fuse-daemon", conc),
	}
}

// MarkFresh records that a file was just created by this node, so all its
// chunks are known-zero until first written (write allocation skips the
// read-modify-write fetch).
func (cc *ChunkCache) MarkFresh(fi proto.FileInfo) {
	cc.RegisterMeta(fi)
	for i := range fi.Chunks {
		cc.virgin[chunkKey{fi.Name, i}] = true
	}
}

// Stats returns a snapshot of the counters. Safe to call concurrently with
// a running simulation (the counters are atomic).
func (cc *ChunkCache) Stats() Stats {
	return Stats{
		FuseReadBytes:  cc.s.fuseRead.Load(),
		FuseWriteBytes: cc.s.fuseWrite.Load(),
		SSDReadBytes:   cc.s.ssdRead.Load(),
		SSDWriteBytes:  cc.s.ssdWrite.Load(),
		PrefetchBytes:  cc.s.prefetch.Load(),
		Hits:           cc.s.hits.Load(),
		Misses:         cc.s.misses.Load(),
		Waits:          cc.s.waits.Load(),
		Evictions:      cc.s.evictions.Load(),
		DirtyEvictions: cc.s.dirtyEvictions.Load(),
		Remaps:         cc.s.remaps.Load(),
		Flushes:        cc.s.flushes.Load(),
	}
}

// ResetStats zeroes the counters (between experiment phases).
func (cc *ChunkCache) ResetStats() {
	for _, c := range []*obs.Counter{
		cc.s.fuseRead, cc.s.fuseWrite, cc.s.ssdRead, cc.s.ssdWrite,
		cc.s.prefetch, cc.s.hits, cc.s.misses, cc.s.waits,
		cc.s.evictions, cc.s.dirtyEvictions, cc.s.remaps, cc.s.flushes,
	} {
		c.Set(0)
	}
}

// Store returns the underlying store client.
func (cc *ChunkCache) Store() StoreClient { return cc.store }

// Config returns the cache geometry.
func (cc *ChunkCache) Config() Config { return cc.cfg }

// fileMeta returns the (possibly cached) chunk map of a file.
func (cc *ChunkCache) fileMeta(p *simtime.Proc, file string) (*proto.FileInfo, error) {
	if fi, ok := cc.meta[file]; ok {
		return fi, nil
	}
	fi, err := cc.store.Lookup(p, file)
	if err != nil {
		return nil, err
	}
	cc.meta[file] = &fi
	return &fi, nil
}

// RegisterMeta seeds the metadata cache (used right after Create so the
// creator needs no extra lookup).
func (cc *ChunkCache) RegisterMeta(fi proto.FileInfo) { cc.meta[fi.Name] = &fi }

// InvalidateMeta drops the cached chunk map of a file.
func (cc *ChunkCache) InvalidateMeta(file string) { delete(cc.meta, file) }

// ArmCOW marks a file's chunks as potentially checkpoint-shared: the next
// writeback of each chunk will consult the manager for a copy-on-write
// remap.
func (cc *ChunkCache) ArmCOW(file string) { cc.cow[file] = true }

// DisarmCOW clears the COW mark (after Free).
func (cc *ChunkCache) DisarmCOW(file string) { delete(cc.cow, file) }

// pagesPerChunk returns the dirty-bitmap width.
func (cc *ChunkCache) pagesPerChunk() int { return int(cc.cfg.ChunkSize / cc.cfg.PageSize) }

// acquire returns the cache entry for (file, idx), fetching on miss. The
// returned entry is resident (fut == nil) and freshly touched in the LRU.
func (cc *ChunkCache) acquire(p *simtime.Proc, file string, idx int) (*entry, error) {
	key := chunkKey{file, idx}
	for {
		if e, ok := cc.entries[key]; ok {
			if e.fut != nil {
				cc.s.waits.Inc()
				e.fut.Wait(p)
				continue // state changed; re-check
			}
			cc.s.hits.Inc()
			cc.lru.MoveToFront(e.lru)
			return e, nil
		}
		// Demand miss. fileMeta may block on a manager RPC, so the entry
		// may appear (or start loading) underneath us; fetch re-checks and
		// reports a race by returning a nil entry.
		fi, err := cc.fileMeta(p, file)
		if err != nil {
			return nil, err
		}
		if idx < 0 || idx >= len(fi.Chunks) {
			return nil, fmt.Errorf("%w: chunk %d of %q (%d chunks)", proto.ErrChunkOutOfRange, idx, file, len(fi.Chunks))
		}
		if cc.virgin[key] {
			// Known-zero chunk of a freshly created file: materialize it
			// in cache without any store traffic.
			if err := cc.ensureRoom(p); err != nil {
				return nil, err
			}
			if _, ok := cc.entries[key]; ok {
				continue // raced during eviction
			}
			delete(cc.virgin, key)
			e := &entry{
				key:   key,
				data:  make([]byte, cc.cfg.ChunkSize),
				dirty: make([]bool, cc.pagesPerChunk()),
			}
			cc.entries[key] = e
			e.lru = cc.lru.PushFront(e)
			return e, nil
		}
		sequential := cc.lastMiss[file] == idx-1
		e, err := cc.fetch(p, key, fi.Chunks[idx], false)
		if err != nil {
			return nil, err
		}
		if e == nil {
			continue // lost a race; re-check the map
		}
		cc.s.misses.Inc()
		cc.lastMiss[file] = idx
		// Asynchronous read-ahead on sequential misses: overlapping the
		// next chunks' fetch with the application's consumption of this
		// one is what lets NVMalloc outperform direct SSD access
		// (Table III).
		if sequential && cc.cfg.ReadAheadChunks > 0 {
			for ahead := 1; ahead <= cc.cfg.ReadAheadChunks; ahead++ {
				na := idx + ahead
				if na >= len(fi.Chunks) {
					break
				}
				nk := chunkKey{file, na}
				if _, ok := cc.entries[nk]; ok {
					continue
				}
				ref := fi.Chunks[na]
				cc.eng.Go(fmt.Sprintf("prefetch %s/%d", file, na), func(pp *simtime.Proc) {
					// Best effort: ignore errors (the demand path will
					// retry and report them).
					_, _ = cc.fetch(pp, nk, ref, true)
				})
			}
		}
		return e, nil
	}
}

// fetch reserves a slot and loads one chunk from the store. It is used by
// both the demand path and the prefetcher. A nil, nil return means another
// proc started or finished loading the chunk first.
func (cc *ChunkCache) fetch(p *simtime.Proc, key chunkKey, ref proto.ChunkRef, prefetch bool) (*entry, error) {
	if _, ok := cc.entries[key]; ok {
		return nil, nil
	}
	if err := cc.ensureRoom(p); err != nil {
		return nil, err
	}
	if _, ok := cc.entries[key]; ok {
		// ensureRoom blocked on a flush; re-check.
		return nil, nil
	}
	e := &entry{
		key:      key,
		dirty:    make([]bool, cc.pagesPerChunk()),
		fut:      simtime.NewFuture[struct{}](cc.eng, "load "+key.file),
		prefetch: prefetch,
	}
	cc.entries[key] = e
	e.lru = cc.lru.PushFront(e)
	cc.gate.Acquire(p)
	data, err := cc.store.GetChunk(p, ref)
	cc.gate.Release(p)
	if err != nil {
		// Failed load: remove the reservation and release waiters.
		delete(cc.entries, key)
		cc.lru.Remove(e.lru)
		e.fut.Set(struct{}{})
		return nil, err
	}
	// Own a private copy: benefactor backends may alias their storage.
	e.data = make([]byte, len(data))
	copy(e.data, data)
	cc.s.ssdRead.Add(int64(len(data)))
	if prefetch {
		cc.s.prefetch.Add(int64(len(data)))
	}
	fut := e.fut
	e.fut = nil
	fut.Set(struct{}{})
	return e, nil
}

// ensureRoom evicts LRU entries until a new chunk fits.
func (cc *ChunkCache) ensureRoom(p *simtime.Proc) error {
	for len(cc.entries) >= cc.cfg.Chunks() {
		victim := cc.pickVictim()
		if victim == nil {
			// Everything resident is in flight; wait for the oldest
			// transition and retry.
			if w := cc.oldestBusy(); w != nil {
				cc.s.waits.Inc()
				w.Wait(p)
				continue
			}
			return fmt.Errorf("fusecache: cache wedged with %d entries", len(cc.entries))
		}
		if err := cc.evict(p, victim); err != nil {
			return err
		}
	}
	return nil
}

// pickVictim returns the least-recently-used resident entry.
func (cc *ChunkCache) pickVictim() *entry {
	for el := cc.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		if e.fut == nil {
			return e
		}
	}
	return nil
}

// oldestBusy returns the future of some in-flight entry, if any.
func (cc *ChunkCache) oldestBusy() *simtime.Future[struct{}] {
	for el := cc.lru.Back(); el != nil; el = el.Prev() {
		if e := el.Value.(*entry); e.fut != nil {
			return e.fut
		}
	}
	return nil
}

// evict writes back a victim's dirty pages and drops it.
func (cc *ChunkCache) evict(p *simtime.Proc, e *entry) error {
	cc.s.evictions.Inc()
	if e.nDirty > 0 {
		cc.s.dirtyEvictions.Inc()
		e.fut = simtime.NewFuture[struct{}](cc.eng, "flush "+e.key.file)
		err := cc.writeback(p, e)
		fut := e.fut
		e.fut = nil
		fut.Set(struct{}{})
		if err != nil {
			return err
		}
	}
	delete(cc.entries, e.key)
	cc.lru.Remove(e.lru)
	return nil
}

// writeback ships an entry's dirty pages to its benefactor, performing the
// copy-on-write remap first when the file is armed. On return the entry is
// clean.
func (cc *ChunkCache) writeback(p *simtime.Proc, e *entry) error {
	fi, err := cc.fileMeta(p, e.key.file)
	if err != nil {
		return err
	}
	if e.key.idx >= len(fi.Chunks) {
		return fmt.Errorf("%w: writeback of %q chunk %d", proto.ErrChunkOutOfRange, e.key.file, e.key.idx)
	}
	ref := fi.Chunks[e.key.idx]
	if cc.cow[e.key.file] {
		fresh, err := cc.store.Remap(p, e.key.file, e.key.idx)
		if err != nil {
			return err
		}
		if fresh != ref {
			cc.s.remaps.Inc()
			fi.Chunks[e.key.idx] = fresh
			ref = fresh
		}
	}
	allDirty := e.nDirty == len(e.dirty) || cc.cfg.WriteFullChunks
	if allDirty {
		cc.gate.Acquire(p)
		err := cc.store.PutChunk(p, ref, e.data)
		cc.gate.Release(p)
		if err != nil {
			return err
		}
		cc.s.ssdWrite.Add(int64(len(e.data)))
	} else {
		var offs []int64
		var pages [][]byte
		ps := cc.cfg.PageSize
		for i, d := range e.dirty {
			if !d {
				continue
			}
			off := int64(i) * ps
			offs = append(offs, off)
			pages = append(pages, e.data[off:off+ps])
			cc.s.ssdWrite.Add(ps)
		}
		cc.gate.Acquire(p)
		err := cc.store.PutPages(p, ref, offs, pages)
		cc.gate.Release(p)
		if err != nil {
			return err
		}
	}
	for i := range e.dirty {
		e.dirty[i] = false
	}
	e.nDirty = 0
	return nil
}

// locate splits a byte offset into (chunk index, offset within chunk).
func (cc *ChunkCache) locate(off int64) (int, int64) {
	return int(off / cc.cfg.ChunkSize), off % cc.cfg.ChunkSize
}

// ReadRange copies [off, off+len(buf)) of file into buf through the cache.
// The page layer calls this with single pages; larger spans are also
// supported for bulk I/O (checkpoint streaming).
func (cc *ChunkCache) ReadRange(p *simtime.Proc, file string, off int64, buf []byte) error {
	cc.s.fuseRead.Add(int64(len(buf)))
	for len(buf) > 0 {
		idx, coff := cc.locate(off)
		e, err := cc.acquire(p, file, idx)
		if err != nil {
			return err
		}
		n := copy(buf, e.data[coff:])
		buf = buf[n:]
		off += int64(n)
	}
	return nil
}

// WriteRange writes data into file at off through the cache, marking the
// touched pages dirty. Writes are page-aligned when they come from the
// page layer; arbitrary alignment is handled for bulk I/O.
func (cc *ChunkCache) WriteRange(p *simtime.Proc, file string, off int64, data []byte) error {
	cc.s.fuseWrite.Add(int64(len(data)))
	ps := cc.cfg.PageSize
	for len(data) > 0 {
		idx, coff := cc.locate(off)
		e, err := cc.acquire(p, file, idx)
		if err != nil {
			return err
		}
		n := copy(e.data[coff:], data)
		firstPage := int(coff / ps)
		lastPage := int((coff + int64(n) - 1) / ps)
		for pg := firstPage; pg <= lastPage; pg++ {
			if !e.dirty[pg] {
				e.dirty[pg] = true
				e.nDirty++
			}
		}
		data = data[n:]
		off += int64(n)
	}
	return nil
}

// Flush writes back every dirty chunk of file, leaving the data cached.
// Called before checkpoints and on Sync. Writebacks are issued from
// parallel flusher procs (the FUSE daemon's request concurrency gate still
// bounds how many are actually in flight).
func (cc *ChunkCache) Flush(p *simtime.Proc, file string) error {
	cc.s.flushes.Inc()
	// Deterministic order: ascending chunk index.
	fi, ok := cc.meta[file]
	if !ok {
		var err error
		fi, err = cc.fileMeta(p, file)
		if err != nil {
			return err
		}
	}
	var flushErr error
	wg := &simtime.WaitGroup{}
	for idx := range fi.Chunks {
		e, ok := cc.entries[chunkKey{file, idx}]
		if !ok {
			continue
		}
		for e.fut != nil {
			cc.s.waits.Inc()
			e.fut.Wait(p)
			var still bool
			if e, still = cc.entries[chunkKey{file, idx}]; !still {
				break
			}
		}
		if e == nil || e.nDirty == 0 {
			continue
		}
		e.fut = simtime.NewFuture[struct{}](cc.eng, "flush "+file)
		wg.Add(1)
		ent := e
		fp := cc.eng.Go("flush "+file, func(fp *simtime.Proc) {
			err := cc.writeback(fp, ent)
			fut := ent.fut
			ent.fut = nil
			fut.Set(struct{}{})
			if err != nil && flushErr == nil {
				flushErr = err
			}
		})
		fp.OnDone(func() { wg.Done(fp) })
	}
	wg.Wait(p)
	return flushErr
}

// Drop discards every cached chunk of file (dirty pages are discarded —
// used by Free, whose semantics destroy the backing file anyway).
func (cc *ChunkCache) Drop(file string) {
	var victims []*entry
	for k, e := range cc.entries {
		if k.file == file {
			victims = append(victims, e)
		}
	}
	for _, e := range victims {
		delete(cc.entries, e.key)
		cc.lru.Remove(e.lru)
	}
	delete(cc.meta, file)
	delete(cc.cow, file)
	delete(cc.lastMiss, file)
	for k := range cc.virgin {
		if k.file == file {
			delete(cc.virgin, k)
		}
	}
}

// Resident returns how many chunks of file are currently cached.
func (cc *ChunkCache) Resident(file string) int {
	n := 0
	for k := range cc.entries {
		if k.file == file {
			n++
		}
	}
	return n
}
