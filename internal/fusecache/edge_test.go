package fusecache

import (
	"bytes"
	"testing"

	"nvmalloc/internal/simtime"
)

// TestVirginChunksSkipFetch verifies write allocation: writes to a fresh
// file's chunks must not generate store reads.
func TestVirginChunksSkipFetch(t *testing.T) {
	r := newRig(8)
	cs := r.cc.cfg.ChunkSize
	r.run(t, func(p *simtime.Proc) {
		fi, _ := r.cc.store.Create(p, "fresh", 4*cs)
		r.cc.MarkFresh(p, fi)
		if err := r.cc.WriteRange(p, "fresh", 100, []byte("hello")); err != nil {
			t.Error(err)
			return
		}
		if got := r.cc.Stats().SSDReadBytes; got != 0 {
			t.Errorf("write to virgin chunk fetched %d bytes", got)
		}
		// Reads of the virgin chunk see the write plus zeroes.
		buf := make([]byte, 8)
		r.cc.ReadRange(p, "fresh", 98, buf)
		if !bytes.Equal(buf, []byte{0, 0, 'h', 'e', 'l', 'l', 'o', 0}) {
			t.Errorf("virgin chunk content %q", buf)
		}
	})
}

// TestVirginDoesNotSurviveDrop: after a Drop, a re-read must fetch from
// the store (the mark is gone), and unmaterialized chunks read as zeroes.
func TestVirginDoesNotSurviveDrop(t *testing.T) {
	r := newRig(8)
	cs := r.cc.cfg.ChunkSize
	r.run(t, func(p *simtime.Proc) {
		fi, _ := r.cc.store.Create(p, "fresh", 2*cs)
		r.cc.MarkFresh(p, fi)
		r.cc.WriteRange(p, "fresh", 0, []byte{9})
		r.cc.Flush(p, "fresh")
		r.cc.Drop(p, "fresh")
		buf := make([]byte, 2)
		if err := r.cc.ReadRange(p, "fresh", 0, buf); err != nil {
			t.Error(err)
			return
		}
		if buf[0] != 9 || buf[1] != 0 {
			t.Errorf("content after drop %v", buf)
		}
		if r.cc.Stats().SSDReadBytes == 0 {
			t.Error("post-drop read must hit the store")
		}
	})
}

// TestReadAheadDisabled verifies ReadAheadChunks=0 issues no prefetches.
func TestReadAheadDisabled(t *testing.T) {
	r := newRig(8)
	r.cc.cfg.ReadAheadChunks = 0
	cs := r.cc.cfg.ChunkSize
	r.run(t, func(p *simtime.Proc) {
		fi, _ := r.cc.store.Create(p, "v", 6*cs)
		r.cc.RegisterMeta(p, fi)
		buf := make([]byte, 32)
		for i := 0; i < 6; i++ {
			r.cc.ReadRange(p, "v", int64(i)*cs, buf)
		}
	})
	if s := r.cc.Stats(); s.PrefetchBytes != 0 {
		t.Fatalf("prefetched %d bytes with read-ahead off", s.PrefetchBytes)
	}
}

// TestFuseGateBoundsConcurrency: with a gate of 1, two concurrent demand
// misses serialize at the store; the second waits.
func TestFuseGateBoundsConcurrency(t *testing.T) {
	run := func(conc int) simtime.Time {
		r := newRigConc(8, conc)
		r.cc.cfg.ReadAheadChunks = 0
		cs := r.cc.cfg.ChunkSize
		var setup bool
		ready := simtime.NewFuture[struct{}](r.eng, "setup")
		for i := 0; i < 4; i++ {
			i := i
			r.eng.Go("reader", func(p *simtime.Proc) {
				if !setup {
					setup = true
					fi, _ := r.cc.store.Create(p, "v", 8*cs)
					r.cc.RegisterMeta(p, fi)
					ready.Set(struct{}{})
				} else {
					ready.Wait(p)
				}
				buf := make([]byte, 16)
				r.cc.ReadRange(p, "v", int64(i*2)*cs, buf) // distinct chunks
			})
		}
		r.eng.Run()
		return r.eng.Now()
	}
	if serial, parallel := run(1), run(4); serial <= parallel {
		t.Fatalf("gate=1 (%v) should be slower than gate=4 (%v)", serial, parallel)
	}
}

// TestStatsConsistency: hits+misses accounts for every chunk-cache access
// outcome and byte counters stay non-negative and coherent.
func TestStatsConsistency(t *testing.T) {
	r := newRig(4)
	cs := r.cc.cfg.ChunkSize
	r.run(t, func(p *simtime.Proc) {
		fi, _ := r.cc.store.Create(p, "v", 8*cs)
		r.cc.RegisterMeta(p, fi)
		buf := make([]byte, 64)
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < 8; i++ {
				r.cc.ReadRange(p, "v", int64(i)*cs, buf)
			}
		}
	})
	s := r.cc.Stats()
	if s.Hits+s.Misses+s.Waits < 24 {
		t.Fatalf("accesses unaccounted: %+v", s)
	}
	if s.SSDReadBytes < 8*cs {
		t.Fatalf("cold pass must fetch all chunks: %+v", s)
	}
	if s.FuseReadBytes != 3*8*64 {
		t.Fatalf("fuse bytes %d, want %d", s.FuseReadBytes, 3*8*64)
	}
}
