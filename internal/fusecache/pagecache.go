package fusecache

import (
	"container/list"
	"fmt"

	"nvmalloc/internal/store"
)

// PageCache is the per-process page-granularity layer standing in for the
// kernel page cache above the FUSE mount: memory-mapped accesses hit here
// first; read misses become page-sized requests to the node's ChunkCache,
// and writes are pushed through to the FUSE layer a whole page at a time —
// the paper's model ("the OS page cache sends out write requests to the
// FUSE layer on a page granularity; after this, we mark the page as dirty
// within the FUSE cache", §III-D). Write-through also keeps ranks sharing
// a node-level mapping coherent. Its byte counters are the "requests to
// FUSE" column of Table IV and the "data written to FUSE" row of
// Table VII.
//
// A PageCache belongs to a single rank and, like the per-process kernel
// page cache it models, is not safe for concurrent use; cross-rank (and
// cross-goroutine) safety lives one layer down, in the shared ChunkCache,
// which serializes through its env lock.
type PageCache struct {
	cc  *ChunkCache
	cap int // capacity in pages

	entries map[pageKey]*page
	lru     *list.List

	s PageStats
}

type pageKey struct {
	file string
	idx  int64 // page index within the file
}

type page struct {
	key   pageKey
	data  []byte
	dirty bool
	lru   *list.Element
}

// PageStats counts the traffic of one PageCache.
type PageStats struct {
	Hits       int64
	Faults     int64 // page misses served by the FUSE layer
	Writebacks int64 // dirty pages pushed down on eviction/sync
	// FaultBytes/WritebackBytes are the byte volumes of the above — the
	// page-granular requests that reach the FUSE layer.
	FaultBytes     int64
	WritebackBytes int64
}

// NewPageCache builds a page cache of capBytes in front of cc.
func NewPageCache(cc *ChunkCache, capBytes int64) *PageCache {
	n := int(capBytes / cc.cfg.PageSize)
	if n < 1 {
		n = 1
	}
	return &PageCache{
		cc:      cc,
		cap:     n,
		entries: make(map[pageKey]*page),
		lru:     list.New(),
	}
}

// Stats returns a snapshot of the counters.
func (pc *PageCache) Stats() PageStats { return pc.s }

// ResetStats zeroes the counters.
func (pc *PageCache) ResetStats() { pc.s = PageStats{} }

// Chunk returns the underlying per-node chunk cache.
func (pc *PageCache) Chunk() *ChunkCache { return pc.cc }

// pageSize returns the page granularity.
func (pc *PageCache) pageSize() int64 { return pc.cc.cfg.PageSize }

// fault loads one page from the FUSE layer. fill controls whether the
// page's current content is fetched — a write that covers the whole page
// can skip the read (the kernel does the same for full-page overwrites).
func (pc *PageCache) fault(ctx store.Ctx, key pageKey, fill bool) (*page, error) {
	if err := pc.ensureRoom(ctx); err != nil {
		return nil, err
	}
	pg := &page{key: key, data: make([]byte, pc.pageSize())}
	if fill {
		pc.s.Faults++
		pc.s.FaultBytes += pc.pageSize()
		if err := pc.cc.ReadRange(ctx, key.file, key.idx*pc.pageSize(), pg.data); err != nil {
			return nil, err
		}
	}
	// Re-check after the blocking read: another proc of the same rank
	// cannot exist, but the fault path is also used by Sync-triggered
	// refills; keep the map authoritative.
	if cur, ok := pc.entries[key]; ok {
		return cur, nil
	}
	pc.entries[key] = pg
	pg.lru = pc.lru.PushFront(pg)
	return pg, nil
}

// ensureRoom evicts LRU pages until one more fits. Pages are never dirty
// (writes are pushed through immediately), so eviction is a plain drop.
func (pc *PageCache) ensureRoom(ctx store.Ctx) error {
	for len(pc.entries) >= pc.cap {
		el := pc.lru.Back()
		if el == nil {
			return fmt.Errorf("fusecache: page cache wedged")
		}
		pg := el.Value.(*page)
		if pg.dirty {
			if err := pc.writeback(ctx, pg); err != nil {
				return err
			}
		}
		delete(pc.entries, pg.key)
		pc.lru.Remove(el)
	}
	return nil
}

// writeback pushes one whole page to the FUSE layer.
func (pc *PageCache) writeback(ctx store.Ctx, pg *page) error {
	pc.s.Writebacks++
	pc.s.WritebackBytes += pc.pageSize()
	if err := pc.cc.WriteRange(ctx, pg.key.file, pg.key.idx*pc.pageSize(), pg.data); err != nil {
		return err
	}
	pg.dirty = false
	return nil
}

// Read copies [off, off+len(buf)) of file into buf through the page cache.
func (pc *PageCache) Read(ctx store.Ctx, file string, off int64, buf []byte) error {
	ps := pc.pageSize()
	for len(buf) > 0 {
		key := pageKey{file, off / ps}
		poff := off % ps
		pg, ok := pc.entries[key]
		if ok {
			pc.s.Hits++
			pc.lru.MoveToFront(pg.lru)
		} else {
			var err error
			pg, err = pc.fault(ctx, key, true)
			if err != nil {
				return err
			}
		}
		n := copy(buf, pg.data[poff:])
		buf = buf[n:]
		off += int64(n)
	}
	return nil
}

// Write stores data into file at off: the page copy is updated and the
// whole page is pushed through to the FUSE layer immediately
// (write-through, matching the paper's §III-D write path).
func (pc *PageCache) Write(ctx store.Ctx, file string, off int64, data []byte) error {
	ps := pc.pageSize()
	for len(data) > 0 {
		key := pageKey{file, off / ps}
		poff := off % ps
		n := int(ps - poff)
		if n > len(data) {
			n = len(data)
		}
		pg, ok := pc.entries[key]
		if ok {
			pc.s.Hits++
			pc.lru.MoveToFront(pg.lru)
		} else {
			// Full-page overwrites skip the read-fill.
			fill := !(poff == 0 && int64(n) == ps)
			var err error
			pg, err = pc.fault(ctx, key, fill)
			if err != nil {
				return err
			}
		}
		copy(pg.data[poff:], data[:n])
		if err := pc.writeback(ctx, pg); err != nil {
			return err
		}
		data = data[n:]
		off += int64(n)
	}
	return nil
}

// Sync pushes the file's dirty state out: with write-through pages the
// page layer is already clean, so Sync asks the FUSE layer to flush the
// file's dirty chunks to the store (msync + fsync semantics). The through
// flag is kept for callers that only want the page-layer guarantee.
func (pc *PageCache) Sync(ctx store.Ctx, file string, through bool) error {
	for el := pc.lru.Front(); el != nil; el = el.Next() {
		pg := el.Value.(*page)
		if pg.key.file == file && pg.dirty {
			if err := pc.writeback(ctx, pg); err != nil {
				return err
			}
		}
	}
	if through {
		return pc.cc.Flush(ctx, file)
	}
	return nil
}

// Drop discards all pages of file (dirty pages are discarded; callers Sync
// first if they need them).
func (pc *PageCache) Drop(file string) {
	var victims []*page
	for k, pg := range pc.entries {
		if k.file == file {
			victims = append(victims, pg)
		}
	}
	for _, pg := range victims {
		delete(pc.entries, pg.key)
		pc.lru.Remove(pg.lru)
	}
}

// Resident returns how many pages of file are cached.
func (pc *PageCache) Resident(file string) int {
	n := 0
	for k := range pc.entries {
		if k.file == file {
			n++
		}
	}
	return n
}
