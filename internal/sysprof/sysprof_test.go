package sysprof

import (
	"testing"
	"testing/quick"
	"time"
)

func TestHALValidates(t *testing.T) {
	p := HAL()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Nodes*p.CoresPerNode != 128 {
		t.Fatalf("HAL is a 128-core cluster, got %d", p.Nodes*p.CoresPerNode)
	}
	if p.PagesPerChunk() != 64 {
		t.Fatalf("paper: 256KB chunk = 64 4KB pages, got %d", p.PagesPerChunk())
	}
}

func TestBenchValidates(t *testing.T) {
	p := Bench()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.PagesPerChunk() != 64 {
		t.Fatalf("bench profile should keep 64 pages/chunk, got %d", p.PagesPerChunk())
	}
}

func TestScaledPreservesRatios(t *testing.T) {
	p := HAL().Scaled(1.0 / 64)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.DRAMPerNode; got != 128*MiB {
		t.Fatalf("scaled DRAM = %d, want 128 MiB", got)
	}
	if p.SSD != HAL().SSD {
		t.Fatal("scaling must not alter device physics")
	}
}

func TestScaleSizePowerOfTwo(t *testing.T) {
	f := func(n uint32, fnum uint8) bool {
		size := int64(n)%(64*GiB) + 512
		frac := (float64(fnum%100) + 1) / 100
		v := scaleSize(size, frac)
		return v >= 512 && v&(v-1) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComputeTime(t *testing.T) {
	p := HAL()
	// 1.08e9 flops at 2.4 GHz x 0.45 flops/cycle = 1 s.
	if got := p.ComputeTime(1.08e9); got != time.Second {
		t.Fatalf("ComputeTime = %v, want 1s", got)
	}
	p.ComputeScale = 0.5
	if got := p.ComputeTime(1.08e9); got != 2*time.Second {
		t.Fatalf("scaled ComputeTime = %v, want 2s", got)
	}
}

func TestDeviceGapMatchesPaper(t *testing.T) {
	// Table I: DRAM is at least a factor of 40 faster than the tested SSDs
	// (the STREAM discussion cites this gap).
	if DDR3.ReadBW/IntelX25E.ReadBW < 40 {
		t.Fatalf("DRAM/SSD read bandwidth gap %v < 40", DDR3.ReadBW/IntelX25E.ReadBW)
	}
	// Fusion-io is at least 8.53x slower than DRAM (paper §I).
	if DDR3.ReadBW/FusionIODuo.ReadBW < 8.5 {
		t.Fatalf("DRAM/FusionIO gap %v < 8.5", DDR3.ReadBW/FusionIODuo.ReadBW)
	}
}

func TestValidateRejectsBroken(t *testing.T) {
	p := HAL()
	p.ChunkSize = 3 * KiB // not a multiple of the 4 KiB page size
	p.PageSize = 4 * KiB
	if err := p.Validate(); err == nil {
		t.Fatal("expected misaligned chunk to fail validation")
	}
	p = HAL()
	p.SystemReserve = p.DRAMPerNode + 1
	if err := p.Validate(); err == nil {
		t.Fatal("expected oversized reserve to fail validation")
	}
}
