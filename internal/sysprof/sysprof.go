// Package sysprof centralizes every hardware and system constant used by
// the reproduction: the device characteristics of Table I, the HAL-cluster
// testbed of Table II, and the NVMalloc design constants (256 KB chunks,
// 4 KB pages, 64 MB FUSE cache). A Profile can be linearly scaled so that
// benchmarks move megabytes instead of the paper's gigabytes while
// preserving every ratio that shapes the results.
package sysprof

import (
	"fmt"
	"time"
)

// Byte-size units.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
)

// DeviceProfile describes a storage or memory device (Table I).
type DeviceProfile struct {
	Name         string
	Kind         string // "SLC SSD", "MLC SSD", "SDRAM", "HDD"
	Interface    string
	ReadBW       float64       // bytes/second sustained
	WriteBW      float64       // bytes/second sustained
	ReadLatency  time.Duration // per-operation setup latency
	WriteLatency time.Duration
	CapacityGB   int64
	CostUSD      float64
	// EraseCycles is the rated program/erase cycle budget per cell; used by
	// the wear accountant (0 means not wear-limited, e.g. DRAM).
	EraseCycles int64
}

// Capacity returns the device capacity in bytes.
func (d DeviceProfile) Capacity() int64 { return d.CapacityGB * GiB }

// Table I device profiles. Bandwidths and latencies are the paper's figures
// (October 2011 market parts); DRAM latency uses the 10–14 ns midpoint.
var (
	// IntelX25E is the node-local SSD of the HAL testbed.
	IntelX25E = DeviceProfile{
		Name: "Intel X25-E", Kind: "SLC SSD", Interface: "SATA",
		ReadBW: 250e6, WriteBW: 170e6,
		ReadLatency: 75 * time.Microsecond, WriteLatency: 85 * time.Microsecond,
		CapacityGB: 32, CostUSD: 589, EraseCycles: 100_000,
	}
	// FusionIODuo is the high-end PCIe flash card of Table I.
	FusionIODuo = DeviceProfile{
		Name: "Fusion IO ioDrive Duo", Kind: "MLC SSD", Interface: "PCIe",
		ReadBW: 1.5e9, WriteBW: 1.0e9,
		ReadLatency: 30 * time.Microsecond, WriteLatency: 30 * time.Microsecond,
		CapacityGB: 640, CostUSD: 15378, EraseCycles: 10_000,
	}
	// OCZRevoDrive is the mid-range PCIe flash card of Table I.
	OCZRevoDrive = DeviceProfile{
		Name: "OCZ RevoDrive", Kind: "MLC SSD", Interface: "PCIe",
		ReadBW: 540e6, WriteBW: 480e6,
		ReadLatency: 50 * time.Microsecond, WriteLatency: 60 * time.Microsecond,
		CapacityGB: 240, CostUSD: 531, EraseCycles: 10_000,
	}
	// DDR3 is the DRAM row of Table I.
	DDR3 = DeviceProfile{
		Name: "Memory (DDR3-1600)", Kind: "SDRAM", Interface: "DIMM",
		ReadBW: 12.8e9, WriteBW: 12.8e9,
		ReadLatency: 12 * time.Nanosecond, WriteLatency: 12 * time.Nanosecond,
		CapacityGB: 16, CostUSD: 150,
	}
	// ScratchDisk models one spindle of the shared parallel file system the
	// paper's center-wide scratch provides (not in Table I; a nominal
	// enterprise SATA disk).
	ScratchDisk = DeviceProfile{
		Name: "PFS disk", Kind: "HDD", Interface: "SAS",
		ReadBW: 90e6, WriteBW: 90e6,
		ReadLatency: 8 * time.Millisecond, WriteLatency: 8 * time.Millisecond,
		CapacityGB: 1000, CostUSD: 250,
	}
)

// Devices lists the Table I profiles in paper order (for `nvmbench devices`).
func Devices() []DeviceProfile {
	return []DeviceProfile{IntelX25E, FusionIODuo, OCZRevoDrive, DDR3}
}

// NetworkProfile describes the cluster interconnect.
type NetworkProfile struct {
	Name string
	// LinkBW is the per-node NIC aggregate bandwidth in bytes/second (full
	// duplex: applies independently to send and receive sides).
	LinkBW float64
	// Lanes is how many independent links the NIC bonds. A single flow
	// rides one lane (LinkBW/Lanes) — link bonding does not accelerate
	// individual TCP streams, which is why remote-SSD STREAM falls well
	// behind local-SSD in Fig. 2.
	Lanes int
	// MsgLatency is the one-way small-message latency.
	MsgLatency time.Duration
	// LocalCopyBW is the bandwidth charged for intra-node transfers
	// (memory copies between ranks on one node).
	LocalCopyBW float64
}

// BondedDualGigE is the HAL testbed interconnect (Table II): two bonded
// gigabit links, ~234 MB/s of usable payload bandwidth (117 MB/s per
// flow), TCP-over-GigE latency.
var BondedDualGigE = NetworkProfile{
	Name:        "Bonded Dual Gigabit Ethernet",
	LinkBW:      234e6,
	Lanes:       2,
	MsgLatency:  60 * time.Microsecond,
	LocalCopyBW: 4e9,
}

// Profile aggregates every constant of a reproduction run. The zero value
// is not usable; start from HAL() or HAL().Scaled(f).
type Profile struct {
	Name string

	// Cluster shape (Table II).
	Nodes        int
	CoresPerNode int
	// ClockHz and FlopsPerCycle give the per-core compute rate used to
	// charge virtual time for arithmetic. The evaluation kernels are plain
	// scalar loops (no vectorization, no register blocking) whose B-row
	// strides miss L2 at n=16384, sustaining well under one flop per cycle
	// on 2011-era Opterons; 0.45 flops/cycle reproduces the compute-stage
	// dominance visible in Fig. 3.
	ClockHz       float64
	FlopsPerCycle float64
	// ComputeScale multiplies the effective core rate. When a workload's
	// problem dimension is scaled by s (so data volume scales by s² for
	// matrix kernels but flop count by s³), setting ComputeScale = s keeps
	// the paper's compute-time : data-movement-time ratio intact — the
	// ratio every crossover in the evaluation depends on. 1.0 = unscaled.
	ComputeScale float64
	// DRAMPerNode is the physical memory per node; SystemReserve is DRAM
	// withheld for the OS/page-cache (the paper mlock()s all but 1.25 GB).
	DRAMPerNode   int64
	SystemReserve int64

	SSD  DeviceProfile
	DRAM DeviceProfile
	Net  NetworkProfile

	// NVMalloc design constants.
	ChunkSize     int64 // store striping unit (paper: 256 KB)
	PageSize      int64 // dirty-tracking unit (paper: 4 KB)
	FUSECacheSize int64 // per-node chunk cache (paper: 64 MB)
	// PageCacheSize is the per-process page-cache capacity standing in for
	// the kernel page cache in front of FUSE.
	PageCacheSize int64
	// ReadAheadChunks is how many chunks the FUSE cache prefetches beyond a
	// sequentially-missed chunk (0 disables read-ahead).
	ReadAheadChunks int
	// WriteFullChunks disables the dirty-page write optimization
	// (Table VII's baseline): whole chunks travel on every writeback.
	WriteFullChunks bool
	// FuseConcurrency is the per-node FUSE daemon's store-request
	// parallelism (0 defaults to 2).
	FuseConcurrency int
	// Replication is the store's chunk copy count (0 or 1 = no redundancy,
	// the paper's baseline; ≥2 enables the fault-tolerance extension:
	// replicated writes, failover reads, and Repair).
	Replication int

	// PFS models the shared scratch file system: aggregate bandwidth across
	// all clients plus a per-open latency.
	PFSAggregateBW float64
	PFSOpenLatency time.Duration

	// RPCOverhead is the fixed CPU+software cost charged per store RPC on
	// top of network/device time (FUSE user-kernel crossings, protocol
	// handling).
	RPCOverhead time.Duration

	// Scale is the linear factor applied relative to the paper's testbed
	// (1.0 = paper scale). It is recorded so reports can state the scaling.
	Scale float64
}

// HAL returns the full-scale testbed profile of Table II: 16 nodes, 8 cores
// per node at 2.4 GHz, 8 GB DRAM per node, Intel X25-E SSDs, bonded dual
// GigE, and the paper's NVMalloc constants.
func HAL() Profile {
	return Profile{
		Name:          "HAL",
		Nodes:         16,
		CoresPerNode:  8,
		ClockHz:       2.4e9,
		FlopsPerCycle: 0.45,
		ComputeScale:  1.0,
		DRAMPerNode:   8 * GiB,
		SystemReserve: 1.25 * 1024 * MiB,
		SSD:           IntelX25E,
		DRAM:          DDR3,
		Net:           BondedDualGigE,

		ChunkSize:       256 * KiB,
		PageSize:        4 * KiB,
		FUSECacheSize:   64 * MiB,
		PageCacheSize:   16 * MiB,
		ReadAheadChunks: 4,

		// HAL is a 16-node lab cluster; its shared scratch is a modest
		// parallel file system, far below the aggregate SSD bandwidth —
		// the gap the sort experiment (Table VI) turns on.
		PFSAggregateBW: 300e6,
		PFSOpenLatency: 2 * time.Millisecond,

		RPCOverhead: 15 * time.Microsecond,

		Scale: 1.0,
	}
}

// Scaled returns a copy of p with every capacity shrunk by factor f
// (0 < f ≤ 1) while preserving the capacity ratios that drive the paper's
// results: matrix:DRAM, cache:chunk, chunk:page. Device bandwidths,
// latencies, and compute rates are left untouched — time is what we measure,
// so the time-axis must keep the paper's physics.
func (p Profile) Scaled(f float64) Profile {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("sysprof: scale factor %v out of range (0,1]", f))
	}
	s := p
	s.Name = fmt.Sprintf("%s/scale=%g", p.Name, f)
	s.DRAMPerNode = scaleSize(p.DRAMPerNode, f)
	s.SystemReserve = scaleSize(p.SystemReserve, f)
	s.ChunkSize = scaleSize(p.ChunkSize, f)
	s.PageSize = scaleSize(p.PageSize, f)
	s.FUSECacheSize = scaleSize(p.FUSECacheSize, f)
	s.PageCacheSize = scaleSize(p.PageCacheSize, f)
	s.Scale = p.Scale * f
	return s
}

// scaleSize scales n by f, rounding to the nearest power of two and
// flooring at 512 bytes so page/chunk arithmetic stays aligned.
func scaleSize(n int64, f float64) int64 {
	v := float64(n) * f
	p := int64(512)
	for float64(p*2) <= v {
		p *= 2
	}
	// Round to nearer of p and 2p.
	if v-float64(p) > float64(2*p)-v {
		p *= 2
	}
	if p < 512 {
		p = 512
	}
	return p
}

// Bench returns the scaled profile used by this repository's test and
// benchmark harness: 1/256 of the paper's capacities (2 GB matrices become
// 8 MB; the 64 MB FUSE cache becomes 1 MB), with chunk=32 KiB and
// page=512 B (1/8 of the paper's units, keeping 64 pages/chunk).
//
// Because chunks shrink 8x while device/network bandwidths stay physical,
// every fixed per-operation latency is also divided by 8 — otherwise
// latency would grow from ~7% of a chunk transfer (paper) to ~50%
// (distorting every experiment that moves chunks). Capacities scale,
// bandwidths are physical, latencies scale with the transfer unit. See
// DESIGN.md §2.
func Bench() Profile {
	p := HAL()
	p.Name = "HAL/bench"
	p.DRAMPerNode = 32 * MiB  // 8 GB / 256
	p.SystemReserve = 5 * MiB // 1.25 GB / 256
	p.ChunkSize = 32 * KiB
	p.PageSize = 512
	p.FUSECacheSize = 1 * MiB // holds 32 chunks (paper: 256)
	p.PageCacheSize = 256 * KiB
	p.ReadAheadChunks = 4

	const unit = 8 // chunk-size ratio: 256 KiB / 32 KiB
	p.SSD.ReadLatency /= unit
	p.SSD.WriteLatency /= unit
	p.Net.MsgLatency /= unit
	p.RPCOverhead /= unit
	p.PFSOpenLatency /= unit

	p.Scale = 1.0 / 256
	return p
}

// CoreFlops returns the effective per-core compute rate in flops/second.
func (p Profile) CoreFlops() float64 {
	s := p.ComputeScale
	if s == 0 {
		s = 1
	}
	return p.ClockHz * p.FlopsPerCycle * s
}

// ComputeTime returns the virtual time to execute flops floating-point
// operations on one core.
func (p Profile) ComputeTime(flops float64) time.Duration {
	return time.Duration(flops / p.CoreFlops() * float64(time.Second))
}

// PagesPerChunk returns ChunkSize / PageSize.
func (p Profile) PagesPerChunk() int { return int(p.ChunkSize / p.PageSize) }

// AvailableDRAM returns the DRAM usable by application processes per node.
func (p Profile) AvailableDRAM() int64 { return p.DRAMPerNode - p.SystemReserve }

// Validate checks internal consistency of the profile.
func (p Profile) Validate() error {
	switch {
	case p.Nodes <= 0 || p.CoresPerNode <= 0:
		return fmt.Errorf("sysprof: nonpositive cluster shape %dx%d", p.Nodes, p.CoresPerNode)
	case p.ChunkSize <= 0 || p.PageSize <= 0:
		return fmt.Errorf("sysprof: nonpositive chunk/page size")
	case p.ChunkSize%p.PageSize != 0:
		return fmt.Errorf("sysprof: chunk size %d not a multiple of page size %d", p.ChunkSize, p.PageSize)
	case p.FUSECacheSize < p.ChunkSize:
		return fmt.Errorf("sysprof: FUSE cache %d smaller than one chunk %d", p.FUSECacheSize, p.ChunkSize)
	case p.AvailableDRAM() <= 0:
		return fmt.Errorf("sysprof: system reserve exceeds node DRAM")
	}
	return nil
}
