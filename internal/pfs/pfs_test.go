package pfs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"nvmalloc/internal/simtime"
)

func newPFS(e *simtime.Engine) *PFS {
	return New(e, 300e6, 2*time.Millisecond)
}

func TestCreateWriteRead(t *testing.T) {
	e := simtime.NewEngine()
	f := newPFS(e)
	want := []byte("hello parallel file system")
	e.Go("c", func(p *simtime.Proc) {
		f.Create(p, "a/b")
		if err := f.WriteAt(p, "a/b", 0, want); err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, len(want))
		if err := f.ReadAt(p, "a/b", 0, got); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, want) {
			t.Error("round trip mismatch")
		}
	})
	e.Run()
	if e.Now() < simtime.Time(2*time.Millisecond) {
		t.Fatal("open latency not charged")
	}
	if s := f.Stats(); s.Opens != 1 || s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestSparseGrowthAndBounds(t *testing.T) {
	e := simtime.NewEngine()
	f := newPFS(e)
	e.Go("c", func(p *simtime.Proc) {
		f.Create(p, "x")
		if err := f.WriteAt(p, "x", 1000, []byte{1, 2, 3}); err != nil {
			t.Error(err)
			return
		}
		if sz, _ := f.Size("x"); sz != 1003 {
			t.Errorf("size %d, want 1003", sz)
		}
		// The gap reads as zeroes.
		got := make([]byte, 4)
		f.ReadAt(p, "x", 500, got)
		if got[0] != 0 {
			t.Error("hole not zero")
		}
		// Reads past EOF fail.
		if err := f.ReadAt(p, "x", 1000, make([]byte, 10)); err == nil {
			t.Error("read past EOF accepted")
		}
	})
	e.Run()
}

func TestMissingFileErrors(t *testing.T) {
	e := simtime.NewEngine()
	f := newPFS(e)
	e.Go("c", func(p *simtime.Proc) {
		if err := f.WriteAt(p, "ghost", 0, []byte{1}); err == nil {
			t.Error("write to missing file accepted")
		}
		if err := f.ReadAt(p, "ghost", 0, make([]byte, 1)); err == nil {
			t.Error("read of missing file accepted")
		}
	})
	e.Run()
	if _, err := f.Size("ghost"); err == nil {
		t.Fatal("size of missing file accepted")
	}
}

func TestSharedPipeContention(t *testing.T) {
	// Two concurrent 150 MB reads through a 300 MB/s pipe cannot finish in
	// 0.5 s each; the aggregate is the bottleneck.
	e := simtime.NewEngine()
	f := New(e, 300e6, 0)
	e.Go("setup", func(p *simtime.Proc) {
		f.Preload("big", make([]byte, 150_000_000))
		wg := e.GoEach("r", 2, func(rp *simtime.Proc, i int) {
			buf := make([]byte, 150_000_000)
			f.ReadAt(rp, "big", 0, buf)
		})
		wg.Wait(p)
	})
	e.Run()
	if e.Now() < simtime.Time(time.Second) {
		t.Fatalf("makespan %v, want >= 1s (300MB through a 300MB/s pipe)", e.Now())
	}
}

func TestSingleStreamCap(t *testing.T) {
	// One client alone is limited to half the aggregate bandwidth.
	e := simtime.NewEngine()
	f := New(e, 300e6, 0)
	e.Go("r", func(p *simtime.Proc) {
		f.Preload("big", make([]byte, 150_000_000))
		buf := make([]byte, 150_000_000)
		f.ReadAt(p, "big", 0, buf)
	})
	e.Run()
	if e.Now() < simtime.Time(time.Second) {
		t.Fatalf("single stream took %v, want >= 1s at the 150MB/s cap", e.Now())
	}
}

func TestPreloadAndSnapshotChargeNothing(t *testing.T) {
	e := simtime.NewEngine()
	f := newPFS(e)
	f.Preload("in", []byte("input data"))
	got, err := f.Snapshot("in")
	if err != nil || string(got) != "input data" {
		t.Fatalf("snapshot %q err %v", got, err)
	}
	if e.Now() != 0 {
		t.Fatal("setup helpers must not consume virtual time")
	}
	// Snapshot returns a copy.
	got[0] = 'X'
	again, _ := f.Snapshot("in")
	if again[0] != 'i' {
		t.Fatal("snapshot aliases the file")
	}
}

// Property: the PFS behaves as a flat growable byte array under random
// writes.
func TestPFSMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := simtime.NewEngine()
		fs := newPFS(e)
		ref := make([]byte, 0)
		ok := true
		e.Go("w", func(p *simtime.Proc) {
			fs.Create(p, "f")
			for i := 0; i < 40; i++ {
				off := rng.Int63n(4096)
				data := make([]byte, rng.Intn(512)+1)
				rng.Read(data)
				if err := fs.WriteAt(p, "f", off, data); err != nil {
					ok = false
					return
				}
				if need := off + int64(len(data)); int64(len(ref)) < need {
					nr := make([]byte, need)
					copy(nr, ref)
					ref = nr
				}
				copy(ref[off:], data)
			}
			got := make([]byte, len(ref))
			if err := fs.ReadAt(p, "f", 0, got); err != nil {
				ok = false
				return
			}
			ok = bytes.Equal(got, ref)
		})
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
