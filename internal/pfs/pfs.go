// Package pfs models the HPC center's shared parallel file system — the
// Lustre-style scratch that holds the matrix multiplication input/output
// files and the staging data of the DRAM-only two-pass sort (Table VI). It
// is deliberately simple: an aggregate-bandwidth FIFO pipe shared by every
// client, plus a per-open latency. That is exactly the property the paper
// leans on — the PFS is a shared, contended, disk-backed resource that
// NVMalloc lets applications avoid.
package pfs

import (
	"time"

	"nvmalloc/internal/proto"
	"nvmalloc/internal/simtime"
)

// Stats counts PFS traffic.
type Stats struct {
	Opens        int64
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
}

// PFS is the shared file system.
type PFS struct {
	eng      *simtime.Engine
	pipe     *simtime.Resource // aggregate bandwidth, shared by all clients
	bw       float64
	clientBW float64 // per-client streaming cap (single-stream limit)
	openLat  time.Duration
	files    map[string][]byte
	s        Stats
}

// New creates a PFS with the given aggregate bandwidth (bytes/s) and
// per-open latency. A single client stream is additionally capped at half
// the aggregate bandwidth — one process cannot saturate a parallel file
// system, which is why the paper's single-stream merge pass hurts so much
// (Table VI).
func New(e *simtime.Engine, aggregateBW float64, openLatency time.Duration) *PFS {
	return &PFS{
		eng:      e,
		pipe:     simtime.NewResource(e, "pfs", 1),
		bw:       aggregateBW,
		clientBW: aggregateBW / 2,
		openLat:  openLatency,
		files:    make(map[string][]byte),
	}
}

func (f *PFS) xfer(p *simtime.Proc, n int64) {
	shared := time.Duration(float64(n) / f.bw * float64(time.Second))
	f.pipe.Use(p, shared)
	// The single-stream cap charges the *caller* the residual time without
	// holding the shared pipe, so other clients proceed in parallel.
	single := time.Duration(float64(n) / f.clientBW * float64(time.Second))
	if single > shared {
		p.Sleep(single - shared)
	}
}

// Preload installs a file's content without charging any virtual time —
// experiment setup for inputs that exist before the measured job starts.
func (f *PFS) Preload(name string, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	f.files[name] = cp
}

// Create makes an empty file (truncating any existing one) and charges the
// open latency.
func (f *PFS) Create(p *simtime.Proc, name string) {
	p.Sleep(f.openLat)
	f.s.Opens++
	f.files[name] = nil
}

// Exists reports whether name exists.
func (f *PFS) Exists(name string) bool { _, ok := f.files[name]; return ok }

// Size returns the file's length.
func (f *PFS) Size(name string) (int64, error) {
	d, ok := f.files[name]
	if !ok {
		return 0, proto.ErrNoSuchFile
	}
	return int64(len(d)), nil
}

// WriteAt writes data at off, growing the file as needed, charging p the
// shared-pipe time.
func (f *PFS) WriteAt(p *simtime.Proc, name string, off int64, data []byte) error {
	d, ok := f.files[name]
	if !ok {
		return proto.ErrNoSuchFile
	}
	end := off + int64(len(data))
	if int64(len(d)) < end {
		nd := make([]byte, end)
		copy(nd, d)
		d = nd
	}
	copy(d[off:], data)
	f.files[name] = d
	f.xfer(p, int64(len(data)))
	f.s.Writes++
	f.s.BytesWritten += int64(len(data))
	return nil
}

// ReadAt fills buf from off, charging p the shared-pipe time.
func (f *PFS) ReadAt(p *simtime.Proc, name string, off int64, buf []byte) error {
	d, ok := f.files[name]
	if !ok {
		return proto.ErrNoSuchFile
	}
	if off+int64(len(buf)) > int64(len(d)) {
		return proto.ErrChunkOutOfRange
	}
	copy(buf, d[off:])
	f.xfer(p, int64(len(buf)))
	f.s.Reads++
	f.s.BytesRead += int64(len(buf))
	return nil
}

// Snapshot returns a copy of a file's content without charging time
// (experiment verification).
func (f *PFS) Snapshot(name string) ([]byte, error) {
	d, ok := f.files[name]
	if !ok {
		return nil, proto.ErrNoSuchFile
	}
	return append([]byte(nil), d...), nil
}

// Delete removes a file.
func (f *PFS) Delete(name string) { delete(f.files, name) }

// Stats returns a snapshot of the counters.
func (f *PFS) Stats() Stats { return f.s }

// ResetStats zeroes the counters.
func (f *PFS) ResetStats() { f.s = Stats{} }
