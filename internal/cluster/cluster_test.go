package cluster

import (
	"strings"
	"testing"
	"testing/quick"

	"nvmalloc/internal/simtime"
	"nvmalloc/internal/sysprof"
)

func TestNewBuildsHAL(t *testing.T) {
	e := simtime.NewEngine()
	c := New(e, sysprof.HAL())
	if len(c.Nodes) != 16 {
		t.Fatalf("nodes = %d, want 16", len(c.Nodes))
	}
	if c.Nodes[3].SSD == nil || c.Nodes[3].DRAM == nil {
		t.Fatal("node devices missing")
	}
}

func TestDRAMAccounting(t *testing.T) {
	e := simtime.NewEngine()
	c := New(e, sysprof.Bench())
	n := c.Nodes[0]
	avail := n.Prof.AvailableDRAM()
	if err := n.AllocDRAM(avail); err != nil {
		t.Fatalf("alloc of available DRAM failed: %v", err)
	}
	if err := n.AllocDRAM(1); err == nil {
		t.Fatal("overcommit should fail")
	}
	n.FreeDRAM(avail)
	if n.DRAMUsed() != 0 {
		t.Fatalf("used = %d after free", n.DRAMUsed())
	}
}

func TestConfigStringsMatchPaperNotation(t *testing.T) {
	cases := map[string]Config{
		"DRAM(2:16:0)":   {DRAMOnly, 2, 16, 0},
		"L-SSD(8:16:16)": {LocalSSD, 8, 16, 16},
		"R-SSD(8:8:1)":   {RemoteSSD, 8, 8, 1},
	}
	for want, cfg := range cases {
		if got := cfg.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
		if err := cfg.Validate(16); err != nil {
			t.Errorf("%s should validate on HAL: %v", want, err)
		}
	}
}

func TestConfigValidateRejects(t *testing.T) {
	bad := []Config{
		{DRAMOnly, 8, 16, 4},   // benefactors in DRAM mode
		{LocalSSD, 8, 8, 16},   // more benefactors than compute nodes
		{RemoteSSD, 8, 16, 16}, // 32 nodes on a 16-node machine
		{LocalSSD, 0, 8, 8},    // zero procs
	}
	for _, cfg := range bad {
		if err := cfg.Validate(16); err == nil {
			t.Errorf("config %s should be rejected", cfg)
		}
	}
}

func TestBenefactorPlacement(t *testing.T) {
	l := Config{LocalSSD, 8, 16, 16}
	if ids := l.BenefactorNodeIDs(); ids[0] != 0 || ids[15] != 15 {
		t.Fatalf("local benefactors = %v", ids)
	}
	r := Config{RemoteSSD, 8, 8, 4}
	ids := r.BenefactorNodeIDs()
	for _, id := range ids {
		if id < 8 || id >= 12 {
			t.Fatalf("remote benefactors = %v must be disjoint from compute nodes 0..7", ids)
		}
	}
}

func TestRankPlacement(t *testing.T) {
	cfg := Config{LocalSSD, 8, 16, 16}
	if cfg.Ranks() != 128 {
		t.Fatalf("ranks = %d, want 128", cfg.Ranks())
	}
	if cfg.RankNode(0) != 0 || cfg.RankNode(7) != 0 || cfg.RankNode(8) != 1 || cfg.RankNode(127) != 15 {
		t.Fatal("block rank placement broken")
	}
	if rk := cfg.NodeRanks(1); len(rk) != 8 || rk[0] != 8 {
		t.Fatalf("node 1 ranks = %v", rk)
	}
}

// Property: every rank maps to a valid compute node and node/rank mappings
// are mutually consistent.
func TestRankNodeConsistencyProperty(t *testing.T) {
	f := func(px, nx uint8) bool {
		cfg := Config{LocalSSD, int(px%8) + 1, int(nx%16) + 1, 1}
		for r := 0; r < cfg.Ranks(); r++ {
			node := cfg.RankNode(r)
			if node < 0 || node >= cfg.ComputeNodes {
				return false
			}
			found := false
			for _, rr := range cfg.NodeRanks(node) {
				if rr == r {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestModeStrings(t *testing.T) {
	for _, m := range []Mode{DRAMOnly, LocalSSD, RemoteSSD} {
		if strings.Contains(m.String(), "?") {
			t.Fatalf("mode %d has no name", m)
		}
	}
}
