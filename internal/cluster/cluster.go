// Package cluster assembles the simulated machine: nodes with cores, DRAM,
// an optional node-local SSD and a NIC, connected by a netsim.Network. It
// also encodes the paper's x:y:z run configurations
// (processes-per-node : compute-nodes : SSD-benefactors) used throughout
// the evaluation section.
package cluster

import (
	"fmt"

	"nvmalloc/internal/device"
	"nvmalloc/internal/netsim"
	"nvmalloc/internal/simtime"
	"nvmalloc/internal/store"
	"nvmalloc/internal/sysprof"
)

// Node is one compute node of the simulated machine.
type Node struct {
	ID   int
	Prof sysprof.Profile
	// Cores gates compute so a node can run at most CoresPerNode
	// operations concurrently.
	Cores *simtime.Resource
	// DRAM serializes memory traffic at the node's memory bandwidth.
	DRAM *device.Device
	// SSD is the node-local NVM device, nil on nodes without one.
	SSD *device.Device

	dramUsed int64
}

// AllocDRAM reserves n bytes of application DRAM on the node, failing when
// the request exceeds the node's available memory (total minus the system
// reserve). This is what forces the paper's DRAM-only matrix multiplication
// down to 2 processes per node.
func (n *Node) AllocDRAM(nBytes int64) error {
	if nBytes < 0 {
		panic("cluster: negative DRAM allocation")
	}
	if n.dramUsed+nBytes > n.Prof.AvailableDRAM() {
		return fmt.Errorf("cluster: node %d out of memory: %d used + %d requested > %d available",
			n.ID, n.dramUsed, nBytes, n.Prof.AvailableDRAM())
	}
	n.dramUsed += nBytes
	return nil
}

// FreeDRAM releases n bytes previously reserved with AllocDRAM.
func (n *Node) FreeDRAM(nBytes int64) {
	n.dramUsed -= nBytes
	if n.dramUsed < 0 {
		panic("cluster: DRAM double free")
	}
}

// DRAMUsed returns the currently reserved application DRAM.
func (n *Node) DRAMUsed() int64 { return n.dramUsed }

// Compute charges p the virtual time of flops floating-point operations on
// one of the node's cores.
func (n *Node) Compute(p *simtime.Proc, flops float64) {
	n.Cores.Use(p, n.Prof.ComputeTime(flops))
}

// ProcOf recovers the simulated proc from a transport-neutral store.Ctx
// value. Library code above the store interface (core, fusecache) is
// forbidden from importing simtime, so code that still needs to charge
// virtual time — DRAM traffic, sim-store RPCs — funnels through this
// helper. A non-sim ctx (nil on the TCP path) yields nil; real
// deployments never reach the simulated devices, so a nil proc is never
// charged.
func ProcOf(ctx any) *simtime.Proc {
	// The ctx may arrive wrapped with tracing span info by the layers
	// above the store boundary; unwrap to the adapter-level value first.
	p, _ := store.BaseCtx(ctx).(*simtime.Proc)
	return p
}

// MemRead charges p an n-byte DRAM read (streaming, bandwidth-bound).
func (n *Node) MemRead(p *simtime.Proc, nBytes int64) { n.DRAM.Read(p, nBytes) }

// MemWrite charges p an n-byte DRAM write.
func (n *Node) MemWrite(p *simtime.Proc, nBytes int64) { n.DRAM.Write(p, nBytes) }

// Cluster is the simulated machine.
type Cluster struct {
	Eng   *simtime.Engine
	Prof  sysprof.Profile
	Net   *netsim.Network
	Nodes []*Node
}

// New builds a cluster with prof.Nodes nodes, each carrying a node-local
// SSD (whether a node's SSD is *used* is decided by the run configuration's
// benefactor placement).
func New(e *simtime.Engine, prof sysprof.Profile) *Cluster {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	c := &Cluster{Eng: e, Prof: prof, Net: netsim.New(e, prof.Net, prof.Nodes)}
	for i := 0; i < prof.Nodes; i++ {
		n := &Node{
			ID:    i,
			Prof:  prof,
			Cores: simtime.NewResource(e, fmt.Sprintf("node%d.cores", i), prof.CoresPerNode),
			DRAM:  device.New(e, fmt.Sprintf("node%d.dram", i), prof.DRAM, 1),
			SSD:   device.New(e, fmt.Sprintf("node%d.ssd", i), prof.SSD, 1),
		}
		c.Nodes = append(c.Nodes, n)
	}
	return c
}

// Mode describes where NVM variables live in a run configuration.
type Mode int

const (
	// DRAMOnly places everything in DRAM (the paper's baseline).
	DRAMOnly Mode = iota
	// LocalSSD co-locates benefactors with compute nodes ("L-SSD").
	LocalSSD
	// RemoteSSD places benefactors on nodes disjoint from the compute
	// nodes ("R-SSD").
	RemoteSSD
)

func (m Mode) String() string {
	switch m {
	case DRAMOnly:
		return "DRAM"
	case LocalSSD:
		return "L-SSD"
	case RemoteSSD:
		return "R-SSD"
	}
	return "?"
}

// Config is one x:y:z run configuration of the evaluation:
// x processes per compute node, y compute nodes, z SSD benefactors.
type Config struct {
	Mode         Mode
	ProcsPerNode int
	ComputeNodes int
	Benefactors  int
}

// String renders the configuration in the paper's notation, e.g.
// "L-SSD(8:16:16)".
func (c Config) String() string {
	return fmt.Sprintf("%s(%d:%d:%d)", c.Mode, c.ProcsPerNode, c.ComputeNodes, c.Benefactors)
}

// Ranks returns the total process count.
func (c Config) Ranks() int { return c.ProcsPerNode * c.ComputeNodes }

// NodesNeeded returns how many physical nodes the configuration occupies.
func (c Config) NodesNeeded() int {
	if c.Mode == RemoteSSD {
		return c.ComputeNodes + c.Benefactors
	}
	return c.ComputeNodes
}

// Validate checks the configuration against a machine of total nodes.
func (c Config) Validate(total int) error {
	switch {
	case c.ProcsPerNode <= 0 || c.ComputeNodes <= 0:
		return fmt.Errorf("cluster: bad config %s", c)
	case c.Mode == DRAMOnly && c.Benefactors != 0:
		return fmt.Errorf("cluster: DRAM-only config %s must have 0 benefactors", c)
	case c.Mode != DRAMOnly && c.Benefactors <= 0:
		return fmt.Errorf("cluster: SSD config %s needs benefactors", c)
	case c.Mode == LocalSSD && c.Benefactors > c.ComputeNodes:
		return fmt.Errorf("cluster: local config %s has more benefactors than compute nodes", c)
	case c.NodesNeeded() > total:
		return fmt.Errorf("cluster: config %s needs %d nodes, machine has %d", c, c.NodesNeeded(), total)
	}
	return nil
}

// ComputeNodeIDs returns the node IDs running application ranks.
func (c Config) ComputeNodeIDs() []int {
	ids := make([]int, c.ComputeNodes)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// BenefactorNodeIDs returns the node IDs contributing SSDs. Local
// configurations use the first z compute nodes; remote ones use the z nodes
// immediately after the compute partition.
func (c Config) BenefactorNodeIDs() []int {
	ids := make([]int, c.Benefactors)
	for i := range ids {
		if c.Mode == RemoteSSD {
			ids[i] = c.ComputeNodes + i
		} else {
			ids[i] = i
		}
	}
	return ids
}

// RankNode returns the node ID hosting the given rank (block placement:
// ranks fill node 0 first, matching mpirun's default by-node blocks).
func (c Config) RankNode(rank int) int {
	if rank < 0 || rank >= c.Ranks() {
		panic(fmt.Sprintf("cluster: rank %d out of range for %s", rank, c))
	}
	return rank / c.ProcsPerNode
}

// NodeRanks returns the ranks hosted on the given compute node.
func (c Config) NodeRanks(node int) []int {
	var ranks []int
	for r := node * c.ProcsPerNode; r < (node+1)*c.ProcsPerNode && r < c.Ranks(); r++ {
		ranks = append(ranks, r)
	}
	return ranks
}
