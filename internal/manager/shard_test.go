package manager

import (
	"errors"
	"testing"
	"time"

	"nvmalloc/internal/proto"
)

// newShard builds one shard of an n-shard plane with the usual test
// benefactors registered (every benefactor registers with every shard).
func newShard(index, count, bens int) *Manager {
	m := New(cs, RoundRobin)
	m.SetShard(index, count)
	for i := 0; i < bens; i++ {
		m.Register(proto.BenefactorInfo{ID: i, Node: i, Capacity: 64 * cs}, "", 0)
	}
	return m
}

// TestChunkIDStriding: shard i of n mints IDs congruent to i+1 mod n, so
// ownership of any chunk is computable from the ID and two shards can
// never collide. The unsharded plane keeps the historical 1,2,3,...
func TestChunkIDStriding(t *testing.T) {
	m0 := newShard(0, 2, 2)
	m1 := newShard(1, 2, 2)
	f0, err := m0.Create("a", 3*cs)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := m1.Create("b", 3*cs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range f0.Chunks {
		want := proto.ChunkID(1 + 2*i)
		if r.ID != want {
			t.Fatalf("shard 0 chunk %d has ID %d, want %d", i, r.ID, want)
		}
		if !m0.Owns(r.ID) || m1.Owns(r.ID) {
			t.Fatalf("ownership of ID %d misattributed", r.ID)
		}
	}
	for i, r := range f1.Chunks {
		want := proto.ChunkID(2 + 2*i)
		if r.ID != want {
			t.Fatalf("shard 1 chunk %d has ID %d, want %d", i, r.ID, want)
		}
		if !m1.Owns(r.ID) || m0.Owns(r.ID) {
			t.Fatalf("ownership of ID %d misattributed", r.ID)
		}
	}
	// Unsharded: legacy sequence.
	mu := newMgr(RoundRobin, 1)
	fu, _ := mu.Create("c", 2*cs)
	if fu.Chunks[0].ID != 1 || fu.Chunks[1].ID != 2 {
		t.Fatalf("unsharded IDs = %v, want 1,2", fu.Chunks)
	}
}

// TestEpochBumps: the membership epoch starts at 1 and bumps on every
// registration, sweep death, mark-dead, and fenced rejoin — and on nothing
// else (heartbeats and file ops leave it alone).
func TestEpochBumps(t *testing.T) {
	m := New(cs, RoundRobin)
	if m.Epoch() != 1 {
		t.Fatalf("fresh epoch = %d, want 1", m.Epoch())
	}
	m.Register(proto.BenefactorInfo{ID: 0, Capacity: 64 * cs}, "", 0)
	if m.Epoch() != 2 {
		t.Fatalf("epoch after register = %d, want 2", m.Epoch())
	}
	m.Heartbeat(0, 0, time.Second)
	if _, err := m.Create("f", cs); err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 2 {
		t.Fatalf("heartbeat/create moved the epoch to %d", m.Epoch())
	}
	m.MarkDead(0)
	if m.Epoch() != 3 {
		t.Fatalf("epoch after markdead = %d, want 3", m.Epoch())
	}
	m.MarkDead(0) // already dead: no membership change
	if m.Epoch() != 3 {
		t.Fatalf("double markdead bumped epoch to %d", m.Epoch())
	}
	if wasDead := m.Register(proto.BenefactorInfo{ID: 0, Capacity: 64 * cs}, "", 2*time.Second); !wasDead {
		t.Fatal("rejoin should report wasDead")
	}
	if m.Epoch() != 4 {
		t.Fatalf("epoch after rejoin = %d, want 4", m.Epoch())
	}
}

// TestRegisterPreservesAccounting: re-registration must not zero the
// manager-side Used counter — the benefactor does not know what the
// manager reserved on it, and claims survive a bounce.
func TestRegisterPreservesAccounting(t *testing.T) {
	m := newMgr(RoundRobin, 1)
	if _, err := m.Create("f", 4*cs); err != nil {
		t.Fatal(err)
	}
	used := m.Status()[0].Used
	if used != 4*cs {
		t.Fatalf("used = %d, want %d", used, 4*cs)
	}
	m.Register(proto.BenefactorInfo{ID: 0, Capacity: 64 * cs}, "", time.Second)
	if got := m.Status()[0].Used; got != used {
		t.Fatalf("re-register reset used to %d, want %d", got, used)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFenceRejoin is the §9 regression: a dead benefactor's copies that
// have live survivors are dropped on rejoin (the survivors may have taken
// writes it missed), its primaries are handed to a live replica with every
// file entry rewritten, and sole copies are spared.
func TestFenceRejoin(t *testing.T) {
	m := New(cs, RoundRobin)
	m.Replication = 2
	for i := 0; i < 3; i++ {
		m.Register(proto.BenefactorInfo{ID: i, Node: i, Capacity: 64 * cs}, "", 0)
	}
	fi, err := m.Create("f", 2*cs)
	if err != nil {
		t.Fatal(err)
	}
	victim := fi.Chunks[0].Benefactor

	// One unreplicated chunk on the victim before it dies: its sole copy
	// must survive the fence (replication=1 safety).
	m.Replication = 1
	var sole proto.ChunkRef
	for {
		solo, err := m.Create("solo", cs)
		if err != nil {
			t.Fatal(err)
		}
		if solo.Chunks[0].Benefactor == victim {
			sole = solo.Chunks[0]
			break
		}
		if _, err := m.Delete("solo"); err != nil {
			t.Fatal(err)
		}
	}
	m.Replication = 2
	m.MarkDead(victim)

	epoch := m.Epoch()
	dropped := m.FenceRejoin(victim)
	for _, r := range dropped {
		if r.Benefactor != victim {
			t.Fatalf("fence dropped a copy on benefactor %d", r.Benefactor)
		}
		if r.ID == sole.ID {
			t.Fatalf("fence dropped the sole copy of chunk %d", r.ID)
		}
	}
	if len(dropped) == 0 {
		t.Fatal("fence dropped nothing despite live survivors")
	}
	if m.Epoch() == epoch {
		t.Fatal("fence must bump the epoch")
	}
	// No file entry may point at the victim for a fenced chunk, and the
	// metadata must stay consistent.
	fi2, err := m.Lookup("f")
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range fi2.Chunks {
		if r.Benefactor == victim {
			t.Fatalf("file chunk %d still routed to fenced benefactor %d", i, victim)
		}
		for _, rep := range fi2.Replicas[i] {
			if rep.Benefactor == victim {
				t.Fatalf("replica set of chunk %d still lists fenced benefactor", i)
			}
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Idempotent: a second fence finds nothing.
	if again := m.FenceRejoin(victim); len(again) != 0 {
		t.Fatalf("second fence dropped %v", again)
	}
}

// TestCrossShardLinkDeriveRemapDelete walks the full client-orchestrated
// protocol against two real Manager instances: export from the source
// shard, retain at the owner, link into the destination, copy-on-write a
// foreign chunk, and release everything back to zero.
func TestCrossShardLinkDeriveRemapDelete(t *testing.T) {
	src := newShard(0, 2, 2) // owns "v" and its chunks
	dst := newShard(1, 2, 2) // will hold the checkpoint

	v, err := src.Create("v", 2*cs)
	if err != nil {
		t.Fatal(err)
	}
	// Destination-side checkpoint derives v's chunks (cross-shard Derive =
	// LinkRefs with create).
	exp, err := src.ExportRange("v", 0, len(v.Chunks))
	if err != nil {
		t.Fatal(err)
	}
	if exp.Size != 2*cs {
		t.Fatalf("export size = %d, want %d", exp.Size, 2*cs)
	}
	var ids []proto.ChunkID
	for _, r := range exp.Chunks {
		ids = append(ids, r.ID)
	}
	if err := src.RetainRefs(ids); err != nil {
		t.Fatal(err)
	}
	ck, err := dst.LinkRefs("ckpt", exp.Chunks, exp.Replicas, exp.Size, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Chunks) != 2 || ck.Size != 2*cs {
		t.Fatalf("ckpt = %+v", ck)
	}
	// Lookup on dst must ship failover replica sets for the foreign chunks.
	for i := range ck.Chunks {
		if len(ck.Replicas[i]) == 0 {
			t.Fatalf("ckpt chunk %d has no replica set", i)
		}
	}
	for _, id := range ids {
		if src.Refcount(id) != 2 || src.RemoteHolds(id) != 1 {
			t.Fatalf("chunk %d: refs=%d remote=%d, want 2/1", id, src.Refcount(id), src.RemoteHolds(id))
		}
		if dst.ForeignRefs(id) != 1 {
			t.Fatalf("dst foreign refs for %d = %d, want 1", id, dst.ForeignRefs(id))
		}
	}
	if err := src.CheckInvariants(); err != nil {
		t.Fatalf("src: %v", err)
	}
	if err := dst.CheckInvariants(); err != nil {
		t.Fatalf("dst: %v", err)
	}

	// A same-shard Link of the checkpoint acquires a second hold on the
	// foreign chunks, reported for the client to retain at the owner.
	if _, err := dst.Create("merge", 0); err != nil {
		t.Fatal(err)
	}
	_, held, err := dst.LinkFull("merge", []string{"ckpt"})
	if err != nil {
		t.Fatal(err)
	}
	if len(held) != 2 {
		t.Fatalf("link reported %d foreign holds, want 2", len(held))
	}
	var heldIDs []proto.ChunkID
	for _, r := range held {
		heldIDs = append(heldIDs, r.ID)
	}
	if err := src.RetainRefs(heldIDs); err != nil {
		t.Fatal(err)
	}

	// Copy-on-write of a foreign chunk: always shared, copies onto a
	// locally-owned chunk, and the foreign reference comes back to free.
	old, fresh, shared, foreignFreed, err := dst.RemapFull("merge", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !shared || len(foreignFreed) != 1 || foreignFreed[0] != old {
		t.Fatalf("remap: shared=%v foreignFreed=%v old=%v", shared, foreignFreed, old)
	}
	if !dst.Owns(fresh.ID) {
		t.Fatalf("remap allocated foreign-owned ID %d", fresh.ID)
	}
	if freed := src.ReleaseRefs([]proto.ChunkID{old.ID}); len(freed) != 0 {
		t.Fatalf("release freed %v while file refs remain", freed)
	}
	if src.Refcount(old.ID) != 2 {
		t.Fatalf("chunk %d refs = %d after one release, want 2", old.ID, src.Refcount(old.ID))
	}

	// Tear down: deleting the dst files returns the foreign refs; releasing
	// them at the source, then deleting the source file, frees everything.
	for _, name := range []string{"merge", "ckpt"} {
		_, ff, err := dst.DeleteFull(name)
		if err != nil {
			t.Fatal(err)
		}
		var rel []proto.ChunkID
		for _, r := range ff {
			rel = append(rel, r.ID)
		}
		src.ReleaseRefs(rel)
	}
	if _, err := src.Delete("v"); err != nil {
		t.Fatal(err)
	}
	if src.TotalChunks() != 0 {
		t.Fatalf("src still holds %d chunks", src.TotalChunks())
	}
	if dst.TotalChunks() != 0 { // remap's fresh chunk died with "merge"
		t.Fatalf("dst still holds %d chunks", dst.TotalChunks())
	}
	if err := src.CheckInvariants(); err != nil {
		t.Fatalf("src: %v", err)
	}
	if err := dst.CheckInvariants(); err != nil {
		t.Fatalf("dst: %v", err)
	}
}

// TestRetainRefsAtomic: retain validates every chunk before bumping any,
// so an aborted cross-shard link never leaves partial holds.
func TestRetainRefsAtomic(t *testing.T) {
	m := newShard(0, 2, 1)
	fi, err := m.Create("v", cs)
	if err != nil {
		t.Fatal(err)
	}
	id := fi.Chunks[0].ID
	err = m.RetainRefs([]proto.ChunkID{id, 9999})
	if !errors.Is(err, proto.ErrNoSuchChunk) {
		t.Fatalf("retain of unknown chunk = %v, want ErrNoSuchChunk", err)
	}
	if m.Refcount(id) != 1 || m.RemoteHolds(id) != 0 {
		t.Fatalf("failed retain leaked holds: refs=%d remote=%d", m.Refcount(id), m.RemoteHolds(id))
	}
	// Release tolerates replays and unknown IDs without corrupting state.
	if freed := m.ReleaseRefs([]proto.ChunkID{id, 9999}); len(freed) != 0 {
		t.Fatalf("bogus release freed %v", freed)
	}
	if m.Refcount(id) != 1 {
		t.Fatalf("bogus release changed refs to %d", m.Refcount(id))
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
