// Package manager implements the metadata service of the aggregate NVM
// store: benefactor registration and liveness monitoring, space
// allocation, striping of logical files into fixed-size chunks, the
// chunk→benefactor map, and refcounted chunk sharing, which is what lets
// ssdcheckpoint() link a variable's chunks into a checkpoint file without
// copying them and what makes post-checkpoint writes copy-on-write
// (paper §III-E).
//
// The Manager is pure, transport-agnostic logic: the simulated transport
// (internal/simstore) and the TCP transport (internal/rpc) both wrap it.
package manager

import (
	"fmt"
	"sort"
	"time"

	"nvmalloc/internal/proto"
)

// PlacementPolicy selects benefactors for new chunks.
type PlacementPolicy int

const (
	// RoundRobin stripes chunks across benefactors in registration order —
	// the paper's striping scheme.
	RoundRobin PlacementPolicy = iota
	// LeastLoaded places each chunk on the benefactor with the most free
	// space.
	LeastLoaded
	// WearAware places each chunk on the benefactor with the lowest
	// cumulative write volume, spreading device wear (paper design goal
	// §III-A "optimizing NVM performance and lifetime").
	WearAware
)

func (p PlacementPolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case WearAware:
		return "wear-aware"
	}
	return "?"
}

// benefactor is the manager's record of one space contributor.
type benefactor struct {
	info     proto.BenefactorInfo
	lastBeat time.Duration // virtual or wall time, supplied by the caller
	addr     string        // TCP transport only
}

// file is a logical striped file.
type file struct {
	name   string
	size   int64
	chunks []proto.ChunkRef
	// expiresAt is the variable's lifetime deadline (§III-C: persistent
	// variables can carry a lifetime so workflow data is reclaimed
	// automatically); zero means no expiry.
	expiresAt time.Duration
}

// chunkMeta tracks a physical chunk.
type chunkMeta struct {
	ref  proto.ChunkRef
	refs int // number of files referencing the chunk
	// replicas are additional copies on other benefactors (fault-
	// tolerance extension; the primary is ref).
	replicas []proto.ChunkRef
}

// Manager is the aggregate store's metadata service.
type Manager struct {
	chunkSize int64
	policy    PlacementPolicy
	// HeartbeatTimeout is how stale a benefactor's heartbeat may be before
	// Sweep declares it dead.
	HeartbeatTimeout time.Duration
	// Replication is how many copies of each chunk the store keeps (1 =
	// no redundancy, the paper's baseline). Extra copies land on distinct
	// benefactors; reads fail over and Repair restores redundancy after a
	// benefactor death. This implements the fault-tolerance direction the
	// paper leaves open.
	Replication int

	nextChunk proto.ChunkID
	files     map[string]*file
	bens      map[int]*benefactor
	benOrder  []int // registration order, for deterministic round-robin
	rr        int
	chunks    map[proto.ChunkID]*chunkMeta
}

// New returns a manager striping files into chunkSize chunks.
func New(chunkSize int64, policy PlacementPolicy) *Manager {
	if chunkSize <= 0 {
		panic("manager: nonpositive chunk size")
	}
	return &Manager{
		chunkSize:        chunkSize,
		policy:           policy,
		HeartbeatTimeout: 5 * time.Second,
		Replication:      1,
		files:            make(map[string]*file),
		bens:             make(map[int]*benefactor),
		chunks:           make(map[proto.ChunkID]*chunkMeta),
	}
}

// ChunkSize returns the striping unit.
func (m *Manager) ChunkSize() int64 { return m.chunkSize }

// Register adds (or re-registers) a benefactor.
func (m *Manager) Register(info proto.BenefactorInfo, addr string, now time.Duration) {
	if _, ok := m.bens[info.ID]; !ok {
		m.benOrder = append(m.benOrder, info.ID)
	}
	info.Alive = true
	info.Addr = addr
	m.bens[info.ID] = &benefactor{info: info, lastBeat: now, addr: addr}
}

// Addr returns the registered transport address of a benefactor (TCP mode).
func (m *Manager) Addr(benID int) (string, bool) {
	b, ok := m.bens[benID]
	if !ok {
		return "", false
	}
	return b.addr, true
}

// Heartbeat refreshes a benefactor's liveness and wear counter.
func (m *Manager) Heartbeat(benID int, writeVolume int64, now time.Duration) error {
	b, ok := m.bens[benID]
	if !ok {
		return proto.ErrBenefactorDead
	}
	b.lastBeat = now
	b.info.Alive = true
	b.info.WriteVolume = writeVolume
	return nil
}

// Sweep marks benefactors with stale heartbeats dead and returns their IDs.
func (m *Manager) Sweep(now time.Duration) []int {
	var died []int
	for _, id := range m.benOrder {
		b := m.bens[id]
		if b.info.Alive && now-b.lastBeat > m.HeartbeatTimeout {
			b.info.Alive = false
			died = append(died, id)
		}
	}
	return died
}

// MarkDead forcibly declares a benefactor dead (failure injection).
func (m *Manager) MarkDead(benID int) {
	if b, ok := m.bens[benID]; ok {
		b.info.Alive = false
	}
}

// Alive reports whether a benefactor is currently considered alive.
func (m *Manager) Alive(benID int) bool {
	b, ok := m.bens[benID]
	return ok && b.info.Alive
}

// BeatAge returns how stale a benefactor's last heartbeat is at now
// (observability: operators watch ages approach the timeout before a
// death sweep fires).
func (m *Manager) BeatAge(benID int, now time.Duration) (time.Duration, bool) {
	b, ok := m.bens[benID]
	if !ok {
		return 0, false
	}
	age := now - b.lastBeat
	if age < 0 {
		age = 0
	}
	return age, true
}

// Status returns the benefactor table sorted by ID.
func (m *Manager) Status() []proto.BenefactorInfo {
	out := make([]proto.BenefactorInfo, 0, len(m.bens))
	for _, id := range m.benOrder {
		out = append(out, m.bens[id].info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// pick selects a benefactor for a new chunk according to the policy,
// skipping benefactors in the exclude set (replica spreading).
func (m *Manager) pick(exclude map[int]bool) (*benefactor, error) {
	if len(m.benOrder) == 0 {
		return nil, proto.ErrNoBenefactors
	}
	candidate := func(b *benefactor) bool {
		return b.info.Alive && !exclude[b.info.ID] && b.info.Used+m.chunkSize <= b.info.Capacity
	}
	switch m.policy {
	case RoundRobin:
		for i := 0; i < len(m.benOrder); i++ {
			b := m.bens[m.benOrder[m.rr%len(m.benOrder)]]
			m.rr++
			if candidate(b) {
				return b, nil
			}
		}
	case LeastLoaded:
		var best *benefactor
		for _, id := range m.benOrder {
			b := m.bens[id]
			if !candidate(b) {
				continue
			}
			if best == nil || b.info.Capacity-b.info.Used > best.info.Capacity-best.info.Used {
				best = b
			}
		}
		if best != nil {
			return best, nil
		}
	case WearAware:
		var best *benefactor
		for _, id := range m.benOrder {
			b := m.bens[id]
			if !candidate(b) {
				continue
			}
			if best == nil || b.info.WriteVolume < best.info.WriteVolume {
				best = b
			}
		}
		if best != nil {
			return best, nil
		}
	}
	return nil, proto.ErrNoSpace
}

// allocChunk reserves one new chunk (plus replicas on distinct
// benefactors when Replication > 1) and returns the primary ref.
func (m *Manager) allocChunk() (proto.ChunkRef, error) {
	b, err := m.pick(nil)
	if err != nil {
		return proto.ChunkRef{}, err
	}
	m.nextChunk++
	ref := proto.ChunkRef{Benefactor: b.info.ID, ID: m.nextChunk}
	b.info.Used += m.chunkSize
	cm := &chunkMeta{ref: ref, refs: 1}
	m.chunks[ref.ID] = cm
	m.replicate(cm)
	return ref, nil
}

// replicate tops a chunk up to the configured copy count, best effort
// (fewer live benefactors than copies is a degradation, not an error).
func (m *Manager) replicate(cm *chunkMeta) {
	for len(cm.replicas)+1 < m.Replication {
		exclude := map[int]bool{cm.ref.Benefactor: true}
		for _, r := range cm.replicas {
			exclude[r.Benefactor] = true
		}
		b, err := m.pick(exclude)
		if err != nil {
			return
		}
		b.info.Used += m.chunkSize
		cm.replicas = append(cm.replicas, proto.ChunkRef{Benefactor: b.info.ID, ID: cm.ref.ID})
	}
}

// releaseChunk decrements a chunk's refcount; when it reaches zero all its
// copies' space is released and their refs are returned so the caller can
// tell the benefactors to delete the payloads.
func (m *Manager) releaseChunk(id proto.ChunkID) ([]proto.ChunkRef, bool) {
	cm, ok := m.chunks[id]
	if !ok {
		panic(fmt.Sprintf("manager: releasing unknown chunk %d", id))
	}
	cm.refs--
	if cm.refs > 0 {
		return nil, false
	}
	delete(m.chunks, id)
	freed := append([]proto.ChunkRef{cm.ref}, cm.replicas...)
	for _, ref := range freed {
		if b, ok := m.bens[ref.Benefactor]; ok {
			b.info.Used -= m.chunkSize
		}
	}
	return freed, true
}

// Replicas returns every copy of a chunk (primary first).
func (m *Manager) Replicas(id proto.ChunkID) []proto.ChunkRef {
	cm, ok := m.chunks[id]
	if !ok {
		return nil
	}
	return append([]proto.ChunkRef{cm.ref}, cm.replicas...)
}

// LiveRef resolves a chunk to a copy on a live benefactor (failover
// reads).
func (m *Manager) LiveRef(id proto.ChunkID) (proto.ChunkRef, error) {
	cm, ok := m.chunks[id]
	if !ok {
		return proto.ChunkRef{}, proto.ErrNoSuchChunk
	}
	for _, ref := range append([]proto.ChunkRef{cm.ref}, cm.replicas...) {
		if m.Alive(ref.Benefactor) {
			return ref, nil
		}
	}
	return proto.ChunkRef{}, proto.ErrBenefactorDead
}

// UnderReplicated returns (sorted) the chunks whose live copy count is
// below the configured replication factor — the repair backlog after
// benefactor deaths.
func (m *Manager) UnderReplicated() []proto.ChunkID {
	var out []proto.ChunkID
	for id, cm := range m.chunks {
		live := 0
		for _, ref := range append([]proto.ChunkRef{cm.ref}, cm.replicas...) {
			if m.Alive(ref.Benefactor) {
				live++
			}
		}
		if live < m.Replication {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UnderReplicatedCount returns the size of the repair backlog without
// materializing the sorted ID list — the monitoring refresh path calls it
// on every sweep tick, so it must not allocate per chunk.
func (m *Manager) UnderReplicatedCount() int {
	n := 0
	for _, cm := range m.chunks {
		live := 0
		if m.Alive(cm.ref.Benefactor) {
			live++
		}
		for _, ref := range cm.replicas {
			if m.Alive(ref.Benefactor) {
				live++
			}
		}
		if live < m.Replication {
			n++
		}
	}
	return n
}

// CapacitySummary totals the live benefactors' occupancy — the cluster's
// remaining headroom, exported as manager gauges for the monitoring
// layer.
func (m *Manager) CapacitySummary() (used, capacity int64) {
	for _, b := range m.bens {
		if !b.info.Alive {
			continue
		}
		used += b.info.Used
		capacity += b.info.Capacity
	}
	return used, capacity
}

// RepairOp instructs the caller to copy a chunk payload from Src to Dst to
// restore redundancy.
type RepairOp struct {
	Src, Dst proto.ChunkRef
}

// Repair restores the configured replica count after benefactor deaths:
// for every chunk short of live copies it allocates replacements on live
// benefactors and returns the copy operations to execute. Chunks with no
// live copy are returned in lost.
func (m *Manager) Repair() (ops []RepairOp, lost []proto.ChunkID) {
	ids := make([]proto.ChunkID, 0, len(m.chunks))
	for id := range m.chunks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		cm := m.chunks[id]
		all := append([]proto.ChunkRef{cm.ref}, cm.replicas...)
		var live []proto.ChunkRef
		exclude := make(map[int]bool)
		for _, ref := range all {
			exclude[ref.Benefactor] = true
			if m.Alive(ref.Benefactor) {
				live = append(live, ref)
			}
		}
		if len(live) == 0 {
			lost = append(lost, id)
			continue
		}
		for len(live) < m.Replication {
			b, err := m.pick(exclude)
			if err != nil {
				break
			}
			b.info.Used += m.chunkSize
			dst := proto.ChunkRef{Benefactor: b.info.ID, ID: id}
			cm.replicas = append(cm.replicas, dst)
			exclude[b.info.ID] = true
			live = append(live, dst)
			ops = append(ops, RepairOp{Src: live[0], Dst: dst})
		}
	}
	return ops, lost
}

// DropReplica removes one (non-primary) copy of a chunk from the metadata
// and releases its space reservation. The transport layer uses it to roll
// back a Repair destination whose payload copy failed, so readers never
// fail over onto a copy that was promised but not populated.
func (m *Manager) DropReplica(id proto.ChunkID, ref proto.ChunkRef) {
	cm, ok := m.chunks[id]
	if !ok {
		return
	}
	for i, r := range cm.replicas {
		if r == ref {
			cm.replicas = append(cm.replicas[:i], cm.replicas[i+1:]...)
			if b, ok := m.bens[ref.Benefactor]; ok {
				b.info.Used -= m.chunkSize
			}
			return
		}
	}
}

// Create reserves a file of the given size: space is allocated (the
// posix_fallocate analog of paper §III-C) but no data moves until clients
// write chunks.
func (m *Manager) Create(name string, size int64) (proto.FileInfo, error) {
	if _, ok := m.files[name]; ok {
		return proto.FileInfo{}, proto.ErrFileExists
	}
	if size < 0 {
		return proto.FileInfo{}, fmt.Errorf("manager: negative size for %q", name)
	}
	n := int((size + m.chunkSize - 1) / m.chunkSize)
	f := &file{name: name, size: size}
	for i := 0; i < n; i++ {
		ref, err := m.allocChunk()
		if err != nil {
			// Roll back the partial allocation.
			for _, r := range f.chunks {
				m.releaseChunk(r.ID)
			}
			return proto.FileInfo{}, err
		}
		f.chunks = append(f.chunks, ref)
	}
	m.files[name] = f
	return m.info(f), nil
}

func (m *Manager) info(f *file) proto.FileInfo {
	fi := proto.FileInfo{Name: f.name, Size: f.size, Chunks: append([]proto.ChunkRef(nil), f.chunks...)}
	// Ship the full copy set of every chunk so clients can fail reads over
	// to a replica and write all copies without another manager round trip.
	fi.Replicas = make([][]proto.ChunkRef, len(f.chunks))
	for i, r := range f.chunks {
		fi.Replicas[i] = m.Replicas(r.ID)
	}
	return fi
}

// Lookup returns the file's chunk map.
func (m *Manager) Lookup(name string) (proto.FileInfo, error) {
	f, ok := m.files[name]
	if !ok {
		return proto.FileInfo{}, proto.ErrNoSuchFile
	}
	return m.info(f), nil
}

// Exists reports whether a file exists.
func (m *Manager) Exists(name string) bool { _, ok := m.files[name]; return ok }

// Delete removes a file and returns the chunks whose payloads should be
// physically deleted (refcount reached zero). Chunks still referenced by
// other files — e.g. a checkpoint that linked them — survive.
func (m *Manager) Delete(name string) ([]proto.ChunkRef, error) {
	f, ok := m.files[name]
	if !ok {
		return nil, proto.ErrNoSuchFile
	}
	var freed []proto.ChunkRef
	for _, r := range f.chunks {
		if refs, gone := m.releaseChunk(r.ID); gone {
			freed = append(freed, refs...)
		}
	}
	delete(m.files, name)
	return freed, nil
}

// SetTTL gives a file a lifetime deadline; ExpireSweep reclaims it once
// the deadline passes. A zero deadline clears the lifetime.
func (m *Manager) SetTTL(name string, expiresAt time.Duration) error {
	f, ok := m.files[name]
	if !ok {
		return proto.ErrNoSuchFile
	}
	f.expiresAt = expiresAt
	return nil
}

// ExpireSweep deletes every file whose lifetime has passed, returning the
// expired names and the physically freed chunks.
func (m *Manager) ExpireSweep(now time.Duration) (expired []string, freed []proto.ChunkRef) {
	var names []string
	for n, f := range m.files {
		if f.expiresAt != 0 && now > f.expiresAt {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		fr, err := m.Delete(n)
		if err == nil {
			expired = append(expired, n)
			freed = append(freed, fr...)
		}
	}
	return expired, freed
}

// Link appends the chunks of each part file to dst, incrementing their
// refcounts — the zero-copy merge that ssdcheckpoint() uses to include
// NVM-resident variables in a checkpoint file (paper §III-E).
func (m *Manager) Link(dst string, parts []string) (proto.FileInfo, error) {
	d, ok := m.files[dst]
	if !ok {
		return proto.FileInfo{}, proto.ErrNoSuchFile
	}
	for _, pn := range parts {
		p, ok := m.files[pn]
		if !ok {
			return proto.FileInfo{}, fmt.Errorf("%w: link part %q", proto.ErrNoSuchFile, pn)
		}
		for _, r := range p.chunks {
			m.chunks[r.ID].refs++
			d.chunks = append(d.chunks, r)
		}
		d.size += p.size
	}
	return m.info(d), nil
}

// Derive creates a new file whose chunks are a sub-range of src's chunks
// (shared, refcounted). Restoring an NVM variable from a checkpoint uses
// this: the restored variable references the checkpoint's chunks without
// copying them, and goes copy-on-write from there.
func (m *Manager) Derive(name, src string, fromChunk, nChunks int, size int64) (proto.FileInfo, error) {
	if _, ok := m.files[name]; ok {
		return proto.FileInfo{}, proto.ErrFileExists
	}
	s, ok := m.files[src]
	if !ok {
		return proto.FileInfo{}, proto.ErrNoSuchFile
	}
	if fromChunk < 0 || nChunks < 0 || fromChunk+nChunks > len(s.chunks) {
		return proto.FileInfo{}, proto.ErrChunkOutOfRange
	}
	f := &file{name: name, size: size}
	for _, r := range s.chunks[fromChunk : fromChunk+nChunks] {
		m.chunks[r.ID].refs++
		f.chunks = append(f.chunks, r)
	}
	m.files[name] = f
	return m.info(f), nil
}

// Remap implements copy-on-write: called before modifying chunk chunkIdx of
// a file whose chunk is shared (refcount > 1), it allocates a fresh chunk
// on the same benefactor (so the payload can be copied server-side),
// installs it in the file, and returns both refs. If the chunk is
// unshared, Remap reports shared=false and the caller writes in place.
func (m *Manager) Remap(name string, chunkIdx int) (old, fresh proto.ChunkRef, shared bool, err error) {
	f, ok := m.files[name]
	if !ok {
		return old, fresh, false, proto.ErrNoSuchFile
	}
	if chunkIdx < 0 || chunkIdx >= len(f.chunks) {
		return old, fresh, false, proto.ErrChunkOutOfRange
	}
	old = f.chunks[chunkIdx]
	cm := m.chunks[old.ID]
	if cm.refs == 1 {
		return old, old, false, nil
	}
	// Allocate on the same benefactor for a server-side copy; fall back to
	// policy placement if it is full or dead.
	b := m.bens[old.Benefactor]
	if b != nil && b.info.Alive && b.info.Used+m.chunkSize <= b.info.Capacity {
		m.nextChunk++
		fresh = proto.ChunkRef{Benefactor: b.info.ID, ID: m.nextChunk}
		b.info.Used += m.chunkSize
		cm := &chunkMeta{ref: fresh, refs: 1}
		m.chunks[fresh.ID] = cm
		m.replicate(cm)
	} else {
		fresh, err = m.allocChunk()
		if err != nil {
			return old, fresh, false, err
		}
	}
	cm.refs--
	f.chunks[chunkIdx] = fresh
	return old, fresh, true, nil
}

// Refcount returns a chunk's current reference count (0 if unknown).
func (m *Manager) Refcount(id proto.ChunkID) int {
	if cm, ok := m.chunks[id]; ok {
		return cm.refs
	}
	return 0
}

// Files returns all file names, sorted.
func (m *Manager) Files() []string {
	out := make([]string, 0, len(m.files))
	for n := range m.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TotalChunks returns the number of live physical chunks.
func (m *Manager) TotalChunks() int { return len(m.chunks) }

// CheckInvariants verifies internal consistency: every file chunk exists
// with a positive refcount, refcounts equal the number of referencing file
// entries, and per-benefactor usage equals chunkSize times its chunk count.
// Tests call it after random operation sequences.
func (m *Manager) CheckInvariants() error {
	refs := make(map[proto.ChunkID]int)
	for _, f := range m.files {
		for _, r := range f.chunks {
			cm, ok := m.chunks[r.ID]
			if !ok {
				return fmt.Errorf("file %q references missing chunk %d", f.name, r.ID)
			}
			if cm.ref != r {
				return fmt.Errorf("chunk %d ref mismatch: file says %v, meta says %v", r.ID, r, cm.ref)
			}
			refs[r.ID]++
		}
	}
	for id, cm := range m.chunks {
		if refs[id] != cm.refs {
			return fmt.Errorf("chunk %d refcount %d but %d file references", id, cm.refs, refs[id])
		}
		if cm.refs <= 0 {
			return fmt.Errorf("chunk %d has nonpositive refcount", id)
		}
	}
	used := make(map[int]int64)
	for _, cm := range m.chunks {
		used[cm.ref.Benefactor] += m.chunkSize
		seen := map[int]bool{cm.ref.Benefactor: true}
		for _, rep := range cm.replicas {
			if rep.ID != cm.ref.ID {
				return fmt.Errorf("chunk %d replica carries ID %d", cm.ref.ID, rep.ID)
			}
			if seen[rep.Benefactor] {
				return fmt.Errorf("chunk %d has two copies on benefactor %d", cm.ref.ID, rep.Benefactor)
			}
			seen[rep.Benefactor] = true
			used[rep.Benefactor] += m.chunkSize
		}
	}
	for _, id := range m.benOrder {
		b := m.bens[id]
		if b.info.Used != used[id] {
			return fmt.Errorf("benefactor %d used=%d but chunks account for %d", id, b.info.Used, used[id])
		}
	}
	return nil
}
