// Package manager implements the metadata service of the aggregate NVM
// store: benefactor registration and liveness monitoring, space
// allocation, striping of logical files into fixed-size chunks, the
// chunk→benefactor map, and refcounted chunk sharing, which is what lets
// ssdcheckpoint() link a variable's chunks into a checkpoint file without
// copying them and what makes post-checkpoint writes copy-on-write
// (paper §III-E).
//
// The Manager is pure, transport-agnostic logic: the simulated transport
// (internal/simstore) and the TCP transport (internal/rpc) both wrap it.
package manager

import (
	"fmt"
	"sort"
	"time"

	"nvmalloc/internal/proto"
)

// PlacementPolicy selects benefactors for new chunks.
type PlacementPolicy int

const (
	// RoundRobin stripes chunks across benefactors in registration order —
	// the paper's striping scheme.
	RoundRobin PlacementPolicy = iota
	// LeastLoaded places each chunk on the benefactor with the most free
	// space.
	LeastLoaded
	// WearAware places each chunk on the benefactor with the lowest
	// cumulative write volume, spreading device wear (paper design goal
	// §III-A "optimizing NVM performance and lifetime").
	WearAware
)

func (p PlacementPolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case WearAware:
		return "wear-aware"
	}
	return "?"
}

// benefactor is the manager's record of one space contributor.
type benefactor struct {
	info     proto.BenefactorInfo
	lastBeat time.Duration // virtual or wall time, supplied by the caller
	addr     string        // TCP transport only
}

// file is a logical striped file.
type file struct {
	name   string
	size   int64
	chunks []proto.ChunkRef
	// expiresAt is the variable's lifetime deadline (§III-C: persistent
	// variables can carry a lifetime so workflow data is reclaimed
	// automatically); zero means no expiry.
	expiresAt time.Duration
}

// chunkMeta tracks a physical chunk.
type chunkMeta struct {
	ref  proto.ChunkRef
	refs int // local file references + remote holds (refs >= remote)
	// remote is how many of refs are holds taken by other shards' files
	// (OpRetainRefs). The chunk survives local deletion until every remote
	// hold is released.
	remote int
	// replicas are additional copies on other benefactors (fault-
	// tolerance extension; the primary is ref).
	replicas []proto.ChunkRef
}

// foreignMeta tracks a chunk owned by another shard but referenced by
// files on this shard (cross-shard Link/Derive). The owning shard holds
// the authoritative refcount; refs here counts local file references, each
// matched by one remote hold the client retained at the owner.
type foreignMeta struct {
	refs int
	// replicas is the chunk's copy set at link time, primary first, so
	// lookups on this shard still ship failover refs for foreign chunks.
	replicas []proto.ChunkRef
}

// Manager is the aggregate store's metadata service.
type Manager struct {
	chunkSize int64
	policy    PlacementPolicy
	// HeartbeatTimeout is how stale a benefactor's heartbeat may be before
	// Sweep declares it dead.
	HeartbeatTimeout time.Duration
	// Replication is how many copies of each chunk the store keeps (1 =
	// no redundancy, the paper's baseline). Extra copies land on distinct
	// benefactors; reads fail over and Repair restores redundancy after a
	// benefactor death. This implements the fault-tolerance direction the
	// paper leaves open.
	Replication int

	// Shard identity (§16): this manager owns the variable names that
	// shardmap.ShardFor routes to shardIndex, and mints chunk IDs congruent
	// to shardIndex+1 modulo shardCount so ownership of any chunk is
	// computable from its ID alone. shardCount <= 1 is the unsharded plane.
	shardIndex int
	shardCount int
	// epoch is the shard's membership epoch: it starts at 1 and bumps on
	// every benefactor registration, death, or fenced rejoin. Requests
	// stamped with an older epoch are fenced by the transport layer.
	epoch int64

	nextChunk proto.ChunkID
	files     map[string]*file
	bens      map[int]*benefactor
	benOrder  []int // registration order, for deterministic round-robin
	rr        int
	chunks    map[proto.ChunkID]*chunkMeta
	foreign   map[proto.ChunkID]*foreignMeta
}

// New returns a manager striping files into chunkSize chunks.
func New(chunkSize int64, policy PlacementPolicy) *Manager {
	if chunkSize <= 0 {
		panic("manager: nonpositive chunk size")
	}
	return &Manager{
		chunkSize:        chunkSize,
		policy:           policy,
		HeartbeatTimeout: 5 * time.Second,
		Replication:      1,
		epoch:            1,
		files:            make(map[string]*file),
		bens:             make(map[int]*benefactor),
		chunks:           make(map[proto.ChunkID]*chunkMeta),
		foreign:          make(map[proto.ChunkID]*foreignMeta),
	}
}

// ChunkSize returns the striping unit.
func (m *Manager) ChunkSize() int64 { return m.chunkSize }

// SetShard assigns this manager its position in an n-shard metadata plane.
// It must be called before any chunk is allocated: chunk IDs are strided by
// shard so ownership stays computable from the ID.
func (m *Manager) SetShard(index, count int) {
	if count > 1 && (index < 0 || index >= count) {
		panic(fmt.Sprintf("manager: shard %d/%d out of range", index, count))
	}
	if m.nextChunk != 0 || len(m.chunks) > 0 {
		panic("manager: SetShard after chunk allocation")
	}
	m.shardIndex, m.shardCount = index, count
}

// Shard returns this manager's shard index and the shard count (0, 1 when
// unsharded).
func (m *Manager) Shard() (index, count int) { return m.shardIndex, m.shardCount }

// Epoch returns the shard's membership epoch. It starts at 1 and only
// increases, so a zero epoch (legacy clients) is never fenced.
func (m *Manager) Epoch() int64 { return m.epoch }

// Owner returns the shard index that minted (and therefore owns) a chunk
// ID. Shard i allocates IDs congruent to i+1 modulo the shard count.
func (m *Manager) Owner(id proto.ChunkID) int {
	if m.shardCount <= 1 {
		return 0
	}
	return int((id - 1) % proto.ChunkID(m.shardCount))
}

// Owns reports whether this shard owns a chunk ID.
func (m *Manager) Owns(id proto.ChunkID) bool {
	return m.shardCount <= 1 || m.Owner(id) == m.shardIndex
}

// allocID mints the next chunk ID this shard owns: shard i of n produces
// i+1, i+1+n, i+1+2n, ... (the unsharded plane keeps the historical
// 1, 2, 3, ...), so IDs never collide across shards.
func (m *Manager) allocID() proto.ChunkID {
	if m.nextChunk == 0 {
		m.nextChunk = proto.ChunkID(m.shardIndex) + 1
		return m.nextChunk
	}
	stride := proto.ChunkID(1)
	if m.shardCount > 1 {
		stride = proto.ChunkID(m.shardCount)
	}
	m.nextChunk += stride
	return m.nextChunk
}

// Register adds (or re-registers) a benefactor and bumps the membership
// epoch. It reports whether the benefactor was previously known and dead —
// the rejoin case the transport layer must fence (FenceRejoin) before the
// rejoiner serves reads. Re-registration preserves the manager-side
// accounting (Used, and WriteVolume unless the caller reports a fresher
// value): the benefactor does not know what the manager reserved on it.
func (m *Manager) Register(info proto.BenefactorInfo, addr string, now time.Duration) (wasDead bool) {
	if old, ok := m.bens[info.ID]; ok {
		wasDead = !old.info.Alive
		info.Used = old.info.Used
		if info.WriteVolume == 0 {
			info.WriteVolume = old.info.WriteVolume
		}
	} else {
		m.benOrder = append(m.benOrder, info.ID)
	}
	info.Alive = true
	info.Addr = addr
	m.bens[info.ID] = &benefactor{info: info, lastBeat: now, addr: addr}
	m.epoch++
	return wasDead
}

// Addr returns the registered transport address of a benefactor (TCP mode).
func (m *Manager) Addr(benID int) (string, bool) {
	b, ok := m.bens[benID]
	if !ok {
		return "", false
	}
	return b.addr, true
}

// Heartbeat refreshes a benefactor's liveness and wear counter. A
// benefactor the manager has declared dead cannot heartbeat itself back to
// life: its pre-partition replica claims must first be fenced through
// re-registration (§9/§16), so the beat is rejected with
// ErrBenefactorDead and the benefactor re-registers.
func (m *Manager) Heartbeat(benID int, writeVolume int64, now time.Duration) error {
	b, ok := m.bens[benID]
	if !ok || !b.info.Alive {
		return proto.ErrBenefactorDead
	}
	b.lastBeat = now
	b.info.WriteVolume = writeVolume
	return nil
}

// Sweep marks benefactors with stale heartbeats dead and returns their IDs.
// Any death is a membership change, so it bumps the epoch.
func (m *Manager) Sweep(now time.Duration) []int {
	var died []int
	for _, id := range m.benOrder {
		b := m.bens[id]
		if b.info.Alive && now-b.lastBeat > m.HeartbeatTimeout {
			b.info.Alive = false
			died = append(died, id)
		}
	}
	if len(died) > 0 {
		m.epoch++
	}
	return died
}

// MarkDead forcibly declares a benefactor dead (failure injection).
func (m *Manager) MarkDead(benID int) {
	if b, ok := m.bens[benID]; ok && b.info.Alive {
		b.info.Alive = false
		m.epoch++
	}
}

// FenceRejoin invalidates a rejoining benefactor's pre-partition replica
// claims (closing the DESIGN.md §9 hole): every chunk copy it holds that
// has at least one other LIVE copy is dropped from the metadata — the
// survivors may have taken writes the rejoiner missed, so its stale copy
// must never satisfy a read again. Copies that are the chunk's only one
// are kept (replication=1 stores would otherwise lose data that was merely
// partitioned, not diverged). When a dropped copy was the primary, a live
// survivor is promoted and every file entry referencing the old primary is
// rewritten. Returns the dropped refs, sorted, so the transport layer can
// order the rejoiner to delete those payloads before it serves reads.
func (m *Manager) FenceRejoin(benID int) []proto.ChunkRef {
	var dropped []proto.ChunkRef
	rewrite := make(map[proto.ChunkRef]proto.ChunkRef)
	for id, cm := range m.chunks {
		holds := cm.ref.Benefactor == benID
		var liveOthers []proto.ChunkRef
		if !holds && m.Alive(cm.ref.Benefactor) {
			liveOthers = append(liveOthers, cm.ref)
		}
		for _, r := range cm.replicas {
			if r.Benefactor == benID {
				holds = true
			} else if m.Alive(r.Benefactor) {
				liveOthers = append(liveOthers, r)
			}
		}
		if !holds || len(liveOthers) == 0 {
			continue
		}
		if cm.ref.Benefactor == benID {
			// Promote the first live survivor to primary.
			next := liveOthers[0]
			reps := cm.replicas[:0]
			for _, r := range cm.replicas {
				if r != next && r.Benefactor != benID {
					reps = append(reps, r)
				}
			}
			rewrite[cm.ref] = next
			cm.ref = next
			cm.replicas = reps
		} else {
			reps := cm.replicas[:0]
			for _, r := range cm.replicas {
				if r.Benefactor != benID {
					reps = append(reps, r)
				}
			}
			cm.replicas = reps
		}
		if b, ok := m.bens[benID]; ok {
			b.info.Used -= m.chunkSize
		}
		dropped = append(dropped, proto.ChunkRef{Benefactor: benID, ID: id})
	}
	if len(rewrite) > 0 {
		for _, f := range m.files {
			for i, r := range f.chunks {
				if next, ok := rewrite[r]; ok {
					f.chunks[i] = next
				}
			}
		}
	}
	if len(dropped) > 0 {
		m.epoch++
		sort.Slice(dropped, func(i, j int) bool { return dropped[i].ID < dropped[j].ID })
	}
	return dropped
}

// Alive reports whether a benefactor is currently considered alive.
func (m *Manager) Alive(benID int) bool {
	b, ok := m.bens[benID]
	return ok && b.info.Alive
}

// BeatAge returns how stale a benefactor's last heartbeat is at now
// (observability: operators watch ages approach the timeout before a
// death sweep fires).
func (m *Manager) BeatAge(benID int, now time.Duration) (time.Duration, bool) {
	b, ok := m.bens[benID]
	if !ok {
		return 0, false
	}
	age := now - b.lastBeat
	if age < 0 {
		age = 0
	}
	return age, true
}

// Status returns the benefactor table sorted by ID.
func (m *Manager) Status() []proto.BenefactorInfo {
	out := make([]proto.BenefactorInfo, 0, len(m.bens))
	for _, id := range m.benOrder {
		out = append(out, m.bens[id].info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// pick selects a benefactor for a new chunk according to the policy,
// skipping benefactors in the exclude set (replica spreading).
func (m *Manager) pick(exclude map[int]bool) (*benefactor, error) {
	if len(m.benOrder) == 0 {
		return nil, proto.ErrNoBenefactors
	}
	candidate := func(b *benefactor) bool {
		return b.info.Alive && !exclude[b.info.ID] && b.info.Used+m.chunkSize <= b.info.Capacity
	}
	switch m.policy {
	case RoundRobin:
		for i := 0; i < len(m.benOrder); i++ {
			b := m.bens[m.benOrder[m.rr%len(m.benOrder)]]
			m.rr++
			if candidate(b) {
				return b, nil
			}
		}
	case LeastLoaded:
		var best *benefactor
		for _, id := range m.benOrder {
			b := m.bens[id]
			if !candidate(b) {
				continue
			}
			if best == nil || b.info.Capacity-b.info.Used > best.info.Capacity-best.info.Used {
				best = b
			}
		}
		if best != nil {
			return best, nil
		}
	case WearAware:
		var best *benefactor
		for _, id := range m.benOrder {
			b := m.bens[id]
			if !candidate(b) {
				continue
			}
			if best == nil || b.info.WriteVolume < best.info.WriteVolume {
				best = b
			}
		}
		if best != nil {
			return best, nil
		}
	}
	return nil, proto.ErrNoSpace
}

// allocChunk reserves one new chunk (plus replicas on distinct
// benefactors when Replication > 1) and returns the primary ref.
func (m *Manager) allocChunk() (proto.ChunkRef, error) {
	b, err := m.pick(nil)
	if err != nil {
		return proto.ChunkRef{}, err
	}
	ref := proto.ChunkRef{Benefactor: b.info.ID, ID: m.allocID()}
	b.info.Used += m.chunkSize
	cm := &chunkMeta{ref: ref, refs: 1}
	m.chunks[ref.ID] = cm
	m.replicate(cm)
	return ref, nil
}

// allocChunkAt allocates a chunk preferring a specific benefactor (so a
// copy-on-write payload can be copied server-side), falling back to policy
// placement when it is full or dead.
func (m *Manager) allocChunkAt(prefer int) (proto.ChunkRef, error) {
	if b := m.bens[prefer]; b != nil && b.info.Alive && b.info.Used+m.chunkSize <= b.info.Capacity {
		ref := proto.ChunkRef{Benefactor: b.info.ID, ID: m.allocID()}
		b.info.Used += m.chunkSize
		cm := &chunkMeta{ref: ref, refs: 1}
		m.chunks[ref.ID] = cm
		m.replicate(cm)
		return ref, nil
	}
	return m.allocChunk()
}

// replicate tops a chunk up to the configured copy count, best effort
// (fewer live benefactors than copies is a degradation, not an error).
func (m *Manager) replicate(cm *chunkMeta) {
	for len(cm.replicas)+1 < m.Replication {
		exclude := map[int]bool{cm.ref.Benefactor: true}
		for _, r := range cm.replicas {
			exclude[r.Benefactor] = true
		}
		b, err := m.pick(exclude)
		if err != nil {
			return
		}
		b.info.Used += m.chunkSize
		cm.replicas = append(cm.replicas, proto.ChunkRef{Benefactor: b.info.ID, ID: cm.ref.ID})
	}
}

// releaseChunk decrements a chunk's refcount; when it reaches zero all its
// copies' space is released and their refs are returned so the caller can
// tell the benefactors to delete the payloads.
func (m *Manager) releaseChunk(id proto.ChunkID) ([]proto.ChunkRef, bool) {
	cm, ok := m.chunks[id]
	if !ok {
		panic(fmt.Sprintf("manager: releasing unknown chunk %d", id))
	}
	cm.refs--
	if cm.refs > 0 {
		return nil, false
	}
	delete(m.chunks, id)
	freed := append([]proto.ChunkRef{cm.ref}, cm.replicas...)
	for _, ref := range freed {
		if b, ok := m.bens[ref.Benefactor]; ok {
			b.info.Used -= m.chunkSize
		}
	}
	return freed, true
}

// Replicas returns every copy of a chunk (primary first). For a chunk
// owned by another shard it returns the copy set recorded at link time, so
// lookups still ship failover refs for foreign chunks.
func (m *Manager) Replicas(id proto.ChunkID) []proto.ChunkRef {
	if cm, ok := m.chunks[id]; ok {
		return append([]proto.ChunkRef{cm.ref}, cm.replicas...)
	}
	if fm, ok := m.foreign[id]; ok {
		return append([]proto.ChunkRef(nil), fm.replicas...)
	}
	return nil
}

// LiveRef resolves a chunk to a copy on a live benefactor (failover
// reads). Foreign chunks resolve through their link-time copy set — the
// benefactors register with every shard, so liveness is known here too.
func (m *Manager) LiveRef(id proto.ChunkID) (proto.ChunkRef, error) {
	refs := m.Replicas(id)
	if refs == nil {
		return proto.ChunkRef{}, proto.ErrNoSuchChunk
	}
	for _, ref := range refs {
		if m.Alive(ref.Benefactor) {
			return ref, nil
		}
	}
	return proto.ChunkRef{}, proto.ErrBenefactorDead
}

// UnderReplicated returns (sorted) the chunks whose live copy count is
// below the configured replication factor — the repair backlog after
// benefactor deaths.
func (m *Manager) UnderReplicated() []proto.ChunkID {
	var out []proto.ChunkID
	for id, cm := range m.chunks {
		live := 0
		for _, ref := range append([]proto.ChunkRef{cm.ref}, cm.replicas...) {
			if m.Alive(ref.Benefactor) {
				live++
			}
		}
		if live < m.Replication {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UnderReplicatedCount returns the size of the repair backlog without
// materializing the sorted ID list — the monitoring refresh path calls it
// on every sweep tick, so it must not allocate per chunk.
func (m *Manager) UnderReplicatedCount() int {
	n := 0
	for _, cm := range m.chunks {
		live := 0
		if m.Alive(cm.ref.Benefactor) {
			live++
		}
		for _, ref := range cm.replicas {
			if m.Alive(ref.Benefactor) {
				live++
			}
		}
		if live < m.Replication {
			n++
		}
	}
	return n
}

// CapacitySummary totals the live benefactors' occupancy — the cluster's
// remaining headroom, exported as manager gauges for the monitoring
// layer.
func (m *Manager) CapacitySummary() (used, capacity int64) {
	for _, b := range m.bens {
		if !b.info.Alive {
			continue
		}
		used += b.info.Used
		capacity += b.info.Capacity
	}
	return used, capacity
}

// RepairOp instructs the caller to copy a chunk payload from Src to Dst to
// restore redundancy.
type RepairOp struct {
	Src, Dst proto.ChunkRef
}

// Repair restores the configured replica count after benefactor deaths:
// for every chunk short of live copies it allocates replacements on live
// benefactors and returns the copy operations to execute. Chunks with no
// live copy are returned in lost.
func (m *Manager) Repair() (ops []RepairOp, lost []proto.ChunkID) {
	ids := make([]proto.ChunkID, 0, len(m.chunks))
	for id := range m.chunks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		cm := m.chunks[id]
		all := append([]proto.ChunkRef{cm.ref}, cm.replicas...)
		var live []proto.ChunkRef
		exclude := make(map[int]bool)
		for _, ref := range all {
			exclude[ref.Benefactor] = true
			if m.Alive(ref.Benefactor) {
				live = append(live, ref)
			}
		}
		if len(live) == 0 {
			lost = append(lost, id)
			continue
		}
		for len(live) < m.Replication {
			b, err := m.pick(exclude)
			if err != nil {
				break
			}
			b.info.Used += m.chunkSize
			dst := proto.ChunkRef{Benefactor: b.info.ID, ID: id}
			cm.replicas = append(cm.replicas, dst)
			exclude[b.info.ID] = true
			live = append(live, dst)
			ops = append(ops, RepairOp{Src: live[0], Dst: dst})
		}
	}
	return ops, lost
}

// DropReplica removes one (non-primary) copy of a chunk from the metadata
// and releases its space reservation. The transport layer uses it to roll
// back a Repair destination whose payload copy failed, so readers never
// fail over onto a copy that was promised but not populated.
func (m *Manager) DropReplica(id proto.ChunkID, ref proto.ChunkRef) {
	cm, ok := m.chunks[id]
	if !ok {
		return
	}
	for i, r := range cm.replicas {
		if r == ref {
			cm.replicas = append(cm.replicas[:i], cm.replicas[i+1:]...)
			if b, ok := m.bens[ref.Benefactor]; ok {
				b.info.Used -= m.chunkSize
			}
			return
		}
	}
}

// Create reserves a file of the given size: space is allocated (the
// posix_fallocate analog of paper §III-C) but no data moves until clients
// write chunks.
func (m *Manager) Create(name string, size int64) (proto.FileInfo, error) {
	if _, ok := m.files[name]; ok {
		return proto.FileInfo{}, proto.ErrFileExists
	}
	if size < 0 {
		return proto.FileInfo{}, fmt.Errorf("manager: negative size for %q", name)
	}
	n := int((size + m.chunkSize - 1) / m.chunkSize)
	f := &file{name: name, size: size}
	for i := 0; i < n; i++ {
		ref, err := m.allocChunk()
		if err != nil {
			// Roll back the partial allocation.
			for _, r := range f.chunks {
				m.releaseChunk(r.ID)
			}
			return proto.FileInfo{}, err
		}
		f.chunks = append(f.chunks, ref)
	}
	m.files[name] = f
	return m.info(f), nil
}

func (m *Manager) info(f *file) proto.FileInfo {
	fi := proto.FileInfo{Name: f.name, Size: f.size, Chunks: append([]proto.ChunkRef(nil), f.chunks...)}
	// Ship the full copy set of every chunk so clients can fail reads over
	// to a replica and write all copies without another manager round trip.
	fi.Replicas = make([][]proto.ChunkRef, len(f.chunks))
	for i, r := range f.chunks {
		fi.Replicas[i] = m.Replicas(r.ID)
	}
	return fi
}

// Lookup returns the file's chunk map.
func (m *Manager) Lookup(name string) (proto.FileInfo, error) {
	f, ok := m.files[name]
	if !ok {
		return proto.FileInfo{}, proto.ErrNoSuchFile
	}
	return m.info(f), nil
}

// Exists reports whether a file exists.
func (m *Manager) Exists(name string) bool { _, ok := m.files[name]; return ok }

// Delete removes a file and returns the chunks whose payloads should be
// physically deleted (refcount reached zero). Chunks still referenced by
// other files — e.g. a checkpoint that linked them — survive.
func (m *Manager) Delete(name string) ([]proto.ChunkRef, error) {
	freed, _, err := m.DeleteFull(name)
	return freed, err
}

// DeleteFull is Delete plus the cross-shard accounting: foreignFreed lists
// references to chunks owned by OTHER shards that this file held; the
// caller must release them at the owning shards (OpReleaseRefs).
func (m *Manager) DeleteFull(name string) (freed, foreignFreed []proto.ChunkRef, err error) {
	f, ok := m.files[name]
	if !ok {
		return nil, nil, proto.ErrNoSuchFile
	}
	for _, r := range f.chunks {
		if !m.Owns(r.ID) {
			m.dropForeign(r)
			foreignFreed = append(foreignFreed, r)
			continue
		}
		if refs, gone := m.releaseChunk(r.ID); gone {
			freed = append(freed, refs...)
		}
	}
	delete(m.files, name)
	return freed, foreignFreed, nil
}

// dropForeign releases one local file reference to a foreign chunk.
func (m *Manager) dropForeign(r proto.ChunkRef) {
	if fm, ok := m.foreign[r.ID]; ok {
		fm.refs--
		if fm.refs <= 0 {
			delete(m.foreign, r.ID)
		}
	}
}

// addRef adds one local file reference to a chunk: owned chunks bump their
// refcount; foreign chunks bump the foreign-hold count, and the ref is
// returned so the caller can retain a matching hold at the owning shard.
func (m *Manager) addRef(r proto.ChunkRef) (foreign bool) {
	if m.Owns(r.ID) {
		m.chunks[r.ID].refs++
		return false
	}
	fm := m.foreign[r.ID]
	if fm == nil {
		fm = &foreignMeta{replicas: []proto.ChunkRef{r}}
		m.foreign[r.ID] = fm
	}
	fm.refs++
	return true
}

// SetTTL gives a file a lifetime deadline; ExpireSweep reclaims it once
// the deadline passes. A zero deadline clears the lifetime.
func (m *Manager) SetTTL(name string, expiresAt time.Duration) error {
	f, ok := m.files[name]
	if !ok {
		return proto.ErrNoSuchFile
	}
	f.expiresAt = expiresAt
	return nil
}

// ExpireSweep deletes every file whose lifetime has passed, returning the
// expired names and the physically freed chunks.
func (m *Manager) ExpireSweep(now time.Duration) (expired []string, freed []proto.ChunkRef) {
	expired, freed, _ = m.ExpireSweepFull(now)
	return expired, freed
}

// ExpireSweepFull is ExpireSweep plus the foreign references the expired
// files held (to be released at their owning shards).
func (m *Manager) ExpireSweepFull(now time.Duration) (expired []string, freed, foreignFreed []proto.ChunkRef) {
	var names []string
	for n, f := range m.files {
		if f.expiresAt != 0 && now > f.expiresAt {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		fr, ff, err := m.DeleteFull(n)
		if err == nil {
			expired = append(expired, n)
			freed = append(freed, fr...)
			foreignFreed = append(foreignFreed, ff...)
		}
	}
	return expired, freed, foreignFreed
}

// Link appends the chunks of each part file to dst, incrementing their
// refcounts — the zero-copy merge that ssdcheckpoint() uses to include
// NVM-resident variables in a checkpoint file (paper §III-E).
func (m *Manager) Link(dst string, parts []string) (proto.FileInfo, error) {
	fi, _, err := m.LinkFull(dst, parts)
	return fi, err
}

// LinkFull is Link plus the cross-shard accounting: foreignHeld lists the
// references to other shards' chunks this link acquired; the caller must
// retain them at the owning shards (OpRetainRefs).
func (m *Manager) LinkFull(dst string, parts []string) (proto.FileInfo, []proto.ChunkRef, error) {
	d, ok := m.files[dst]
	if !ok {
		return proto.FileInfo{}, nil, proto.ErrNoSuchFile
	}
	// Validate every part before mutating anything.
	for _, pn := range parts {
		if _, ok := m.files[pn]; !ok {
			return proto.FileInfo{}, nil, fmt.Errorf("%w: link part %q", proto.ErrNoSuchFile, pn)
		}
	}
	var held []proto.ChunkRef
	for _, pn := range parts {
		p := m.files[pn]
		for _, r := range p.chunks {
			if m.addRef(r) {
				held = append(held, r)
			}
			d.chunks = append(d.chunks, r)
		}
		d.size += p.size
	}
	return m.info(d), held, nil
}

// Derive creates a new file whose chunks are a sub-range of src's chunks
// (shared, refcounted). Restoring an NVM variable from a checkpoint uses
// this: the restored variable references the checkpoint's chunks without
// copying them, and goes copy-on-write from there.
func (m *Manager) Derive(name, src string, fromChunk, nChunks int, size int64) (proto.FileInfo, error) {
	fi, _, err := m.DeriveFull(name, src, fromChunk, nChunks, size)
	return fi, err
}

// DeriveFull is Derive plus the cross-shard accounting (see LinkFull).
func (m *Manager) DeriveFull(name, src string, fromChunk, nChunks int, size int64) (proto.FileInfo, []proto.ChunkRef, error) {
	if _, ok := m.files[name]; ok {
		return proto.FileInfo{}, nil, proto.ErrFileExists
	}
	s, ok := m.files[src]
	if !ok {
		return proto.FileInfo{}, nil, proto.ErrNoSuchFile
	}
	if fromChunk < 0 || nChunks < 0 || fromChunk+nChunks > len(s.chunks) {
		return proto.FileInfo{}, nil, proto.ErrChunkOutOfRange
	}
	f := &file{name: name, size: size}
	var held []proto.ChunkRef
	for _, r := range s.chunks[fromChunk : fromChunk+nChunks] {
		if m.addRef(r) {
			held = append(held, r)
		}
		f.chunks = append(f.chunks, r)
	}
	m.files[name] = f
	return m.info(f), held, nil
}

// Remap implements copy-on-write: called before modifying chunk chunkIdx of
// a file whose chunk is shared (refcount > 1), it allocates a fresh chunk
// on the same benefactor (so the payload can be copied server-side),
// installs it in the file, and returns both refs. If the chunk is
// unshared, Remap reports shared=false and the caller writes in place.
func (m *Manager) Remap(name string, chunkIdx int) (old, fresh proto.ChunkRef, shared bool, err error) {
	old, fresh, shared, _, err = m.RemapFull(name, chunkIdx)
	return old, fresh, shared, err
}

// RemapFull is Remap plus the cross-shard accounting: a foreign chunk is
// always treated as shared (its owner's refcount is not visible here, and
// cross-shard references exist precisely because the chunk is shared), so
// the write always copies onto a fresh locally-owned chunk; the released
// foreign reference comes back in foreignFreed for the caller to drop at
// the owning shard.
func (m *Manager) RemapFull(name string, chunkIdx int) (old, fresh proto.ChunkRef, shared bool, foreignFreed []proto.ChunkRef, err error) {
	f, ok := m.files[name]
	if !ok {
		return old, fresh, false, nil, proto.ErrNoSuchFile
	}
	if chunkIdx < 0 || chunkIdx >= len(f.chunks) {
		return old, fresh, false, nil, proto.ErrChunkOutOfRange
	}
	old = f.chunks[chunkIdx]
	if !m.Owns(old.ID) {
		// Allocate on the same benefactor for a server-side copy; fall
		// back to policy placement if it is full or dead.
		fresh, err = m.allocChunkAt(old.Benefactor)
		if err != nil {
			return old, fresh, false, nil, err
		}
		m.dropForeign(old)
		f.chunks[chunkIdx] = fresh
		return old, fresh, true, []proto.ChunkRef{old}, nil
	}
	cm := m.chunks[old.ID]
	if cm.refs == 1 {
		return old, old, false, nil, nil
	}
	fresh, err = m.allocChunkAt(old.Benefactor)
	if err != nil {
		return old, fresh, false, nil, err
	}
	cm.refs--
	f.chunks[chunkIdx] = fresh
	return old, fresh, true, nil, nil
}

// ExportRange returns the refs, replica sets, and byte size of a chunk
// sub-range of a file — the read-only first leg of a cross-shard link: the
// client exports from the shard owning the source file, retains the refs
// at their owning shards (OpRetainRefs), then links them into the
// destination shard (OpLinkRefs). Export takes no locks beyond the call
// itself and holds nothing: if a racing delete frees a chunk before the
// client retains it, RetainRefs fails with ErrNoSuchChunk and the client
// aborts cleanly.
func (m *Manager) ExportRange(name string, fromChunk, nChunks int) (proto.FileInfo, error) {
	f, ok := m.files[name]
	if !ok {
		return proto.FileInfo{}, proto.ErrNoSuchFile
	}
	if fromChunk < 0 || nChunks < 0 || fromChunk+nChunks > len(f.chunks) {
		return proto.FileInfo{}, proto.ErrChunkOutOfRange
	}
	sub := f.chunks[fromChunk : fromChunk+nChunks]
	fi := proto.FileInfo{Name: f.name, Chunks: append([]proto.ChunkRef(nil), sub...)}
	fi.Replicas = make([][]proto.ChunkRef, len(sub))
	for i, r := range sub {
		fi.Replicas[i] = m.Replicas(r.ID)
	}
	// Size is the byte span the range covers; the trailing chunk may be
	// partial (a whole-file export reports the file size).
	start := int64(fromChunk) * m.chunkSize
	end := int64(fromChunk+nChunks) * m.chunkSize
	if end > f.size {
		end = f.size
	}
	if start > end {
		start = end
	}
	fi.Size = end - start
	return fi, nil
}

// RetainRefs adds one remote hold per listed chunk on behalf of another
// shard's file. Validation is all-or-nothing: if any chunk is unknown (or
// not owned by this shard) nothing is bumped, so a client abort never
// leaves partial holds.
func (m *Manager) RetainRefs(ids []proto.ChunkID) error {
	for _, id := range ids {
		if !m.Owns(id) {
			return fmt.Errorf("%w: retain of chunk %d not owned by shard %d", proto.ErrNoSuchChunk, id, m.shardIndex)
		}
		if _, ok := m.chunks[id]; !ok {
			return fmt.Errorf("%w: retain chunk %d", proto.ErrNoSuchChunk, id)
		}
	}
	for _, id := range ids {
		cm := m.chunks[id]
		cm.refs++
		cm.remote++
	}
	return nil
}

// ReleaseRefs drops one remote hold per listed chunk, physically freeing
// chunks whose refcount reaches zero (the refs are returned so the caller
// can delete the payloads). Unknown chunks and chunks with no outstanding
// remote holds are skipped — release is the cleanup leg of a client-
// orchestrated protocol and must tolerate replays without corrupting
// local accounting.
func (m *Manager) ReleaseRefs(ids []proto.ChunkID) (freed []proto.ChunkRef) {
	for _, id := range ids {
		cm, ok := m.chunks[id]
		if !ok || cm.remote <= 0 {
			continue
		}
		cm.remote--
		if refs, gone := m.releaseChunk(id); gone {
			freed = append(freed, refs...)
		}
	}
	return freed
}

// LinkRefs appends an explicit ref list — produced by ExportRange on
// another shard — to a file on this shard, creating the file first when
// create is set (cross-shard Derive). Refs this shard owns simply gain a
// local reference; foreign refs are recorded in the foreign table with
// their replica sets (the client retains matching holds at the owners).
// size is added to the file's length (or becomes it, when creating).
func (m *Manager) LinkRefs(name string, refs []proto.ChunkRef, replicas [][]proto.ChunkRef, size int64, create bool) (proto.FileInfo, error) {
	f, ok := m.files[name]
	if create && ok {
		return proto.FileInfo{}, proto.ErrFileExists
	}
	if !create && !ok {
		return proto.FileInfo{}, proto.ErrNoSuchFile
	}
	// Validate owned refs before mutating anything.
	for _, r := range refs {
		if m.Owns(r.ID) {
			if _, ok := m.chunks[r.ID]; !ok {
				return proto.FileInfo{}, fmt.Errorf("%w: link ref %v", proto.ErrNoSuchChunk, r)
			}
		}
	}
	if create {
		f = &file{name: name}
		m.files[name] = f
	}
	for i, r := range refs {
		if m.Owns(r.ID) {
			cm := m.chunks[r.ID]
			cm.refs++
			f.chunks = append(f.chunks, cm.ref)
			continue
		}
		fm := m.foreign[r.ID]
		if fm == nil {
			reps := []proto.ChunkRef{r}
			if i < len(replicas) && len(replicas[i]) > 0 {
				reps = append([]proto.ChunkRef(nil), replicas[i]...)
			}
			fm = &foreignMeta{replicas: reps}
			m.foreign[r.ID] = fm
		}
		fm.refs++
		f.chunks = append(f.chunks, r)
	}
	f.size += size
	return m.info(f), nil
}

// Refcount returns a chunk's current reference count (0 if unknown).
func (m *Manager) Refcount(id proto.ChunkID) int {
	if cm, ok := m.chunks[id]; ok {
		return cm.refs
	}
	return 0
}

// RemoteHolds returns how many of a chunk's references are holds taken by
// other shards (0 if unknown).
func (m *Manager) RemoteHolds(id proto.ChunkID) int {
	if cm, ok := m.chunks[id]; ok {
		return cm.remote
	}
	return 0
}

// ForeignRefs returns how many local file references this shard holds on a
// chunk owned by another shard (0 if none).
func (m *Manager) ForeignRefs(id proto.ChunkID) int {
	if fm, ok := m.foreign[id]; ok {
		return fm.refs
	}
	return 0
}

// Files returns all file names, sorted.
func (m *Manager) Files() []string {
	out := make([]string, 0, len(m.files))
	for n := range m.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TotalChunks returns the number of live physical chunks.
func (m *Manager) TotalChunks() int { return len(m.chunks) }

// CheckInvariants verifies internal consistency: every file chunk exists
// with a positive refcount, refcounts equal the number of referencing file
// entries plus remote holds, foreign-table counts equal the file
// references to other shards' chunks, chunk-ID ownership matches the
// shard's stride, and per-benefactor usage equals chunkSize times its
// (owned) chunk count. Tests call it after random operation sequences.
func (m *Manager) CheckInvariants() error {
	refs := make(map[proto.ChunkID]int)
	foreignRefs := make(map[proto.ChunkID]int)
	for _, f := range m.files {
		for _, r := range f.chunks {
			if !m.Owns(r.ID) {
				if _, ok := m.foreign[r.ID]; !ok {
					return fmt.Errorf("file %q references foreign chunk %d with no foreign-table entry", f.name, r.ID)
				}
				foreignRefs[r.ID]++
				continue
			}
			cm, ok := m.chunks[r.ID]
			if !ok {
				return fmt.Errorf("file %q references missing chunk %d", f.name, r.ID)
			}
			if cm.ref != r {
				return fmt.Errorf("chunk %d ref mismatch: file says %v, meta says %v", r.ID, r, cm.ref)
			}
			refs[r.ID]++
		}
	}
	for id, cm := range m.chunks {
		if !m.Owns(id) {
			return fmt.Errorf("chunk %d in local table but owned by shard %d (this is shard %d)", id, m.Owner(id), m.shardIndex)
		}
		if cm.remote < 0 {
			return fmt.Errorf("chunk %d has negative remote holds %d", id, cm.remote)
		}
		if refs[id]+cm.remote != cm.refs {
			return fmt.Errorf("chunk %d refcount %d but %d file references + %d remote holds", id, cm.refs, refs[id], cm.remote)
		}
		if cm.refs <= 0 {
			return fmt.Errorf("chunk %d has nonpositive refcount", id)
		}
	}
	for id, fm := range m.foreign {
		if m.Owns(id) {
			return fmt.Errorf("foreign-table entry %d is owned by this shard", id)
		}
		if fm.refs <= 0 {
			return fmt.Errorf("foreign chunk %d has nonpositive hold count", id)
		}
		if foreignRefs[id] != fm.refs {
			return fmt.Errorf("foreign chunk %d hold count %d but %d file references", id, fm.refs, foreignRefs[id])
		}
	}
	used := make(map[int]int64)
	for _, cm := range m.chunks {
		used[cm.ref.Benefactor] += m.chunkSize
		seen := map[int]bool{cm.ref.Benefactor: true}
		for _, rep := range cm.replicas {
			if rep.ID != cm.ref.ID {
				return fmt.Errorf("chunk %d replica carries ID %d", cm.ref.ID, rep.ID)
			}
			if seen[rep.Benefactor] {
				return fmt.Errorf("chunk %d has two copies on benefactor %d", cm.ref.ID, rep.Benefactor)
			}
			seen[rep.Benefactor] = true
			used[rep.Benefactor] += m.chunkSize
		}
	}
	for _, id := range m.benOrder {
		b := m.bens[id]
		if b.info.Used != used[id] {
			return fmt.Errorf("benefactor %d used=%d but chunks account for %d", id, b.info.Used, used[id])
		}
	}
	return nil
}
