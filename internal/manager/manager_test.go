package manager

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"nvmalloc/internal/proto"
)

const cs = 1024

func newMgr(policy PlacementPolicy, bens int) *Manager {
	m := New(cs, policy)
	for i := 0; i < bens; i++ {
		m.Register(proto.BenefactorInfo{ID: i, Node: i, Capacity: 64 * cs}, "", 0)
	}
	return m
}

func TestCreateStripesRoundRobin(t *testing.T) {
	m := newMgr(RoundRobin, 4)
	fi, err := m.Create("f", 8*cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(fi.Chunks) != 8 {
		t.Fatalf("chunks = %d, want 8", len(fi.Chunks))
	}
	for i, r := range fi.Chunks {
		if r.Benefactor != i%4 {
			t.Fatalf("chunk %d on benefactor %d, want %d (round robin)", i, r.Benefactor, i%4)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCreatePartialLastChunk(t *testing.T) {
	m := newMgr(RoundRobin, 2)
	fi, err := m.Create("f", 3*cs/2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fi.Chunks) != 2 {
		t.Fatalf("chunks = %d, want 2 (size rounds up)", len(fi.Chunks))
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	m := newMgr(RoundRobin, 2)
	if _, err := m.Create("f", cs); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("f", cs); err != proto.ErrFileExists {
		t.Fatalf("want ErrFileExists, got %v", err)
	}
}

func TestCreateRollsBackOnNoSpace(t *testing.T) {
	m := newMgr(RoundRobin, 1)
	if _, err := m.Create("big", 100*cs); err != proto.ErrNoSpace {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	if m.TotalChunks() != 0 {
		t.Fatalf("partial allocation leaked %d chunks", m.TotalChunks())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteFreesChunks(t *testing.T) {
	m := newMgr(RoundRobin, 2)
	fi, _ := m.Create("f", 4*cs)
	freed, err := m.Delete("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(freed) != len(fi.Chunks) {
		t.Fatalf("freed %d chunks, want %d", len(freed), len(fi.Chunks))
	}
	if m.TotalChunks() != 0 {
		t.Fatal("chunks leaked")
	}
	st := m.Status()
	if st[0].Used != 0 || st[1].Used != 0 {
		t.Fatalf("space not released: %+v", st)
	}
}

func TestLinkSharesChunksWithoutCopy(t *testing.T) {
	m := newMgr(RoundRobin, 2)
	v, _ := m.Create("var", 4*cs)
	m.Create("ckpt", 2*cs) // DRAM-state chunks
	before := m.TotalChunks()
	ck, err := m.Link("ckpt", []string{"var"})
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalChunks() != before {
		t.Fatal("link must not allocate new chunks")
	}
	if len(ck.Chunks) != 6 || ck.Size != 6*cs {
		t.Fatalf("linked file has %d chunks size %d", len(ck.Chunks), ck.Size)
	}
	for _, r := range v.Chunks {
		if m.Refcount(r.ID) != 2 {
			t.Fatalf("chunk %v refcount %d, want 2", r, m.Refcount(r.ID))
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Deleting the variable must keep the shared chunks alive for the
	// checkpoint.
	freed, _ := m.Delete("var")
	if len(freed) != 0 {
		t.Fatalf("deleting linked var freed %d chunks, want 0", len(freed))
	}
	freed, _ = m.Delete("ckpt")
	if len(freed) != 6 {
		t.Fatalf("deleting checkpoint freed %d chunks, want 6", len(freed))
	}
}

func TestRemapCopyOnWrite(t *testing.T) {
	m := newMgr(RoundRobin, 2)
	v, _ := m.Create("var", 3*cs)
	m.Create("ckpt", 0)
	m.Link("ckpt", []string{"var"})

	old, fresh, shared, err := m.Remap("var", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !shared {
		t.Fatal("chunk 1 is shared with the checkpoint; Remap must report shared")
	}
	if old.ID == fresh.ID {
		t.Fatal("remap must allocate a new chunk")
	}
	if fresh.Benefactor != old.Benefactor {
		t.Fatal("remap should stay on the same benefactor for a server-side copy")
	}
	if old != v.Chunks[1] {
		t.Fatalf("old ref %v, want %v", old, v.Chunks[1])
	}
	// The variable now points at the fresh chunk; the checkpoint keeps the
	// old one.
	nv, _ := m.Lookup("var")
	if nv.Chunks[1] != fresh {
		t.Fatal("file table not updated")
	}
	ck, _ := m.Lookup("ckpt")
	if ck.Chunks[1] != old {
		t.Fatal("checkpoint lost its chunk")
	}
	if m.Refcount(old.ID) != 1 || m.Refcount(fresh.ID) != 1 {
		t.Fatal("refcounts after remap wrong")
	}
	// A second write to the same chunk needs no remap.
	_, _, shared, err = m.Remap("var", 1)
	if err != nil || shared {
		t.Fatalf("second remap: shared=%v err=%v, want unshared", shared, err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementPolicies(t *testing.T) {
	// Least-loaded should fill an emptier benefactor first.
	m := New(cs, LeastLoaded)
	m.Register(proto.BenefactorInfo{ID: 0, Capacity: 64 * cs}, "", 0)
	m.Register(proto.BenefactorInfo{ID: 1, Capacity: 8 * cs}, "", 0)
	fi, _ := m.Create("f", 4*cs)
	for _, r := range fi.Chunks {
		if r.Benefactor != 0 {
			t.Fatalf("least-loaded placed a chunk on the small benefactor: %v", fi.Chunks)
		}
	}
	// Wear-aware should avoid the benefactor with high write volume.
	m2 := New(cs, WearAware)
	m2.Register(proto.BenefactorInfo{ID: 0, Capacity: 64 * cs, WriteVolume: 1 << 40}, "", 0)
	m2.Register(proto.BenefactorInfo{ID: 1, Capacity: 64 * cs, WriteVolume: 0}, "", 0)
	fi2, _ := m2.Create("f", 2*cs)
	for _, r := range fi2.Chunks {
		if r.Benefactor != 1 {
			t.Fatalf("wear-aware placed chunk on worn benefactor: %v", fi2.Chunks)
		}
	}
}

func TestHeartbeatAndSweep(t *testing.T) {
	m := newMgr(RoundRobin, 2)
	m.HeartbeatTimeout = 3 * time.Second
	m.Heartbeat(0, 123, 1*time.Second)
	m.Heartbeat(1, 0, 1*time.Second)
	if died := m.Sweep(2 * time.Second); len(died) != 0 {
		t.Fatalf("premature deaths: %v", died)
	}
	m.Heartbeat(0, 456, 5*time.Second)
	died := m.Sweep(6 * time.Second)
	if len(died) != 1 || died[0] != 1 {
		t.Fatalf("sweep = %v, want [1]", died)
	}
	if m.Alive(1) {
		t.Fatal("benefactor 1 should be dead")
	}
	// Dead benefactors receive no new chunks.
	fi, err := m.Create("f", 4*cs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fi.Chunks {
		if r.Benefactor == 1 {
			t.Fatal("placed chunk on dead benefactor")
		}
	}
	// A heartbeat does NOT revive it: a dead benefactor may hold stale
	// pre-partition copies, so it must come back through Register (which
	// fences its claims, §9/§16), not a silent beat.
	if err := m.Heartbeat(1, 0, 7*time.Second); err == nil {
		t.Fatal("heartbeat on a dead benefactor should be rejected")
	}
	if m.Alive(1) {
		t.Fatal("heartbeat must not revive a dead benefactor")
	}
	// Re-registration is the only road back.
	if wasDead := m.Register(proto.BenefactorInfo{ID: 1, Capacity: 64 * cs}, "", 8*time.Second); !wasDead {
		t.Fatal("re-register of a dead benefactor should report wasDead")
	}
	if !m.Alive(1) {
		t.Fatal("register should revive")
	}
}

func TestStatusSorted(t *testing.T) {
	m := newMgr(RoundRobin, 3)
	st := m.Status()
	for i, b := range st {
		if b.ID != i {
			t.Fatalf("status not sorted: %+v", st)
		}
	}
}

// Property: under random create/delete/link/remap sequences the manager's
// invariants hold and usage accounting is exact.
func TestManagerInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := newMgr(RoundRobin, 3)
		names := []string{}
		for op := 0; op < 150; op++ {
			switch rng.Intn(4) {
			case 0:
				n := fmt.Sprintf("f%d", op)
				if _, err := m.Create(n, int64(rng.Intn(8)+1)*cs); err == nil {
					names = append(names, n)
				}
			case 1:
				if len(names) > 0 {
					i := rng.Intn(len(names))
					m.Delete(names[i])
					names = append(names[:i], names[i+1:]...)
				}
			case 2:
				if len(names) >= 2 {
					m.Link(names[rng.Intn(len(names))], []string{names[rng.Intn(len(names))]})
				}
			case 3:
				if len(names) > 0 {
					m.Remap(names[rng.Intn(len(names))], rng.Intn(8))
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
