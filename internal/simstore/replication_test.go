package simstore

import (
	"bytes"
	"testing"

	"nvmalloc/internal/cluster"
	"nvmalloc/internal/manager"
	"nvmalloc/internal/proto"
	"nvmalloc/internal/simtime"
	"nvmalloc/internal/sysprof"
)

func replicatedStore(e *simtime.Engine, copies int) *Store {
	cl := cluster.New(e, sysprof.Bench())
	s := New(cl, 0, []int{0, 1, 2, 3}, 16*sysprof.MiB, manager.RoundRobin)
	s.Mgr.Replication = copies
	return s
}

func TestReplicatedWritesLandOnAllCopies(t *testing.T) {
	e := simtime.NewEngine()
	s := replicatedStore(e, 2)
	cs := s.Mgr.ChunkSize()
	e.Go("c", func(p *simtime.Proc) {
		c := s.Client(0)
		fi, err := c.Create(p, "v", cs)
		if err != nil {
			t.Error(err)
			return
		}
		copies := s.Mgr.Replicas(fi.Chunks[0].ID)
		if len(copies) != 2 {
			t.Errorf("copies = %v, want 2", copies)
			return
		}
		if copies[0].Benefactor == copies[1].Benefactor {
			t.Error("replicas must sit on distinct benefactors")
		}
		data := bytes.Repeat([]byte{0x66}, int(cs))
		if err := c.PutChunk(p, fi.Chunks[0:1], data); err != nil {
			t.Error(err)
			return
		}
		// Both benefactors hold the payload.
		for _, ref := range copies {
			got, err := s.Benefactor(ref.Benefactor).GetChunk(ref.ID)
			if err != nil || got[0] != 0x66 {
				t.Errorf("copy on b%d missing: %v", ref.Benefactor, err)
			}
		}
	})
	e.Run()
	if err := s.Mgr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFailoverReadAfterPrimaryDeath(t *testing.T) {
	e := simtime.NewEngine()
	s := replicatedStore(e, 2)
	cs := s.Mgr.ChunkSize()
	e.Go("c", func(p *simtime.Proc) {
		c := s.Client(0)
		fi, _ := c.Create(p, "v", cs)
		payload := bytes.Repeat([]byte{0x31}, int(cs))
		if err := c.PutChunk(p, fi.Chunks[0:1], payload); err != nil {
			t.Error(err)
			return
		}
		s.Kill(fi.Chunks[0].Benefactor) // kill the primary
		got, err := c.GetChunk(p, fi.Chunks[0:1])
		if err != nil {
			t.Errorf("failover read failed: %v", err)
			return
		}
		if got[0] != 0x31 {
			t.Error("failover read returned wrong data")
		}
	})
	e.Run()
}

func TestRepairRestoresRedundancy(t *testing.T) {
	e := simtime.NewEngine()
	s := replicatedStore(e, 2)
	cs := s.Mgr.ChunkSize()
	e.Go("c", func(p *simtime.Proc) {
		c := s.Client(0)
		fi, _ := c.Create(p, "v", 4*cs)
		for _, ref := range fi.Chunks {
			if err := c.PutChunk(p, []proto.ChunkRef{ref}, bytes.Repeat([]byte{9}, int(cs))); err != nil {
				t.Error(err)
				return
			}
		}
		victim := fi.Chunks[0].Benefactor
		s.Kill(victim)
		repaired, lost, err := s.Repair(p)
		if err != nil {
			t.Error(err)
			return
		}
		if lost != 0 {
			t.Errorf("%d chunks lost despite replication", lost)
		}
		if repaired == 0 {
			t.Error("nothing repaired")
		}
		// Every chunk again has two live copies.
		for _, ref := range fi.Chunks {
			liveCount := 0
			for _, cp := range s.Mgr.Replicas(ref.ID) {
				if s.Mgr.Alive(cp.Benefactor) {
					liveCount++
					got, err := s.Benefactor(cp.Benefactor).GetChunk(cp.ID)
					if err != nil || got[0] != 9 {
						t.Errorf("repaired copy on b%d bad: %v", cp.Benefactor, err)
					}
				}
			}
			if liveCount < 2 {
				t.Errorf("chunk %v has %d live copies after repair", ref, liveCount)
			}
		}
	})
	e.Run()
}

func TestUnreplicatedChunkIsLostOnDeath(t *testing.T) {
	e := simtime.NewEngine()
	s := replicatedStore(e, 1) // paper baseline: no redundancy
	cs := s.Mgr.ChunkSize()
	e.Go("c", func(p *simtime.Proc) {
		c := s.Client(0)
		fi, _ := c.Create(p, "v", cs)
		c.PutChunk(p, fi.Chunks[0:1], make([]byte, cs))
		s.Kill(fi.Chunks[0].Benefactor)
		_, lost, err := s.Repair(p)
		if err != nil {
			t.Error(err)
			return
		}
		if lost != 1 {
			t.Errorf("lost = %d, want 1 (no replicas to recover from)", lost)
		}
	})
	e.Run()
}

func TestReplicationCostsWriteTime(t *testing.T) {
	run := func(copies int) simtime.Time {
		e := simtime.NewEngine()
		s := replicatedStore(e, copies)
		cs := s.Mgr.ChunkSize()
		e.Go("c", func(p *simtime.Proc) {
			c := s.Client(0)
			fi, _ := c.Create(p, "v", 8*cs)
			for _, ref := range fi.Chunks {
				c.PutChunk(p, []proto.ChunkRef{ref}, make([]byte, cs))
			}
		})
		e.Run()
		return e.Now()
	}
	if one, two := run(1), run(2); two <= one {
		t.Fatalf("replicated writes (%v) must cost more than single copies (%v)", two, one)
	}
}

func TestDeleteFreesReplicasToo(t *testing.T) {
	e := simtime.NewEngine()
	s := replicatedStore(e, 2)
	cs := s.Mgr.ChunkSize()
	e.Go("c", func(p *simtime.Proc) {
		c := s.Client(0)
		fi, _ := c.Create(p, "v", 4*cs)
		for _, ref := range fi.Chunks {
			c.PutChunk(p, []proto.ChunkRef{ref}, make([]byte, cs))
		}
		if err := c.Delete(p, "v"); err != nil {
			t.Error(err)
		}
	})
	e.Run()
	for _, id := range s.Benefactors() {
		if u := s.Benefactor(id).Used(); u != 0 {
			t.Fatalf("benefactor %d still holds %d bytes after delete", id, u)
		}
	}
	if _, err := s.Mgr.LiveRef(proto.ChunkID(1)); err != proto.ErrNoSuchChunk {
		t.Fatalf("chunk metadata survived delete: %v", err)
	}
}
