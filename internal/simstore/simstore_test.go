package simstore

import (
	"bytes"
	"testing"

	"nvmalloc/internal/cluster"
	"nvmalloc/internal/manager"
	"nvmalloc/internal/proto"
	"nvmalloc/internal/simtime"
	"nvmalloc/internal/sysprof"
)

func testStore(e *simtime.Engine) *Store {
	cl := cluster.New(e, sysprof.Bench())
	return New(cl, 0, []int{0, 1, 2, 3}, 16*sysprof.MiB, manager.RoundRobin)
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	e := simtime.NewEngine()
	s := testStore(e)
	cs := s.Mgr.ChunkSize()
	var got []byte
	e.Go("client", func(p *simtime.Proc) {
		c := s.Client(2)
		fi, err := c.Create(p, "v", 3*cs)
		if err != nil {
			t.Error(err)
			return
		}
		data := bytes.Repeat([]byte{0x42}, int(cs))
		if err := c.PutChunk(p, fi.Chunks[1:2], data); err != nil {
			t.Error(err)
			return
		}
		got, err = c.GetChunk(p, fi.Chunks[1:2])
		if err != nil {
			t.Error(err)
		}
	})
	e.Run()
	if len(got) == 0 || got[0] != 0x42 {
		t.Fatal("round trip failed")
	}
	if e.Now() == 0 {
		t.Fatal("store operations must consume virtual time")
	}
}

func TestRemoteCostsMoreThanLocal(t *testing.T) {
	timeFor := func(clientNode int) simtime.Time {
		e := simtime.NewEngine()
		s := testStore(e)
		cs := s.Mgr.ChunkSize()
		e.Go("client", func(p *simtime.Proc) {
			c := s.Client(clientNode)
			fi, _ := c.Create(p, "v", cs)
			data := make([]byte, cs)
			c.PutChunk(p, fi.Chunks[0:1], data)
			for i := 0; i < 10; i++ {
				c.GetChunk(p, fi.Chunks[0:1])
			}
		})
		e.Run()
		return e.Now()
	}
	local := timeFor(0)   // chunk 0 round-robins to benefactor 0 on node 0
	remote := timeFor(15) // node 15 hosts no benefactor
	if remote <= local {
		t.Fatalf("remote %v should cost more than local %v", remote, local)
	}
}

func TestPutPagesCheaperThanPutChunk(t *testing.T) {
	run := func(pages bool) simtime.Time {
		e := simtime.NewEngine()
		s := testStore(e)
		cs := s.Mgr.ChunkSize()
		e.Go("client", func(p *simtime.Proc) {
			c := s.Client(1)
			fi, _ := c.Create(p, "v", cs)
			c.PutChunk(p, fi.Chunks[0:1], make([]byte, cs))
			for i := 0; i < 20; i++ {
				if pages {
					c.PutPages(p, fi.Chunks[0:1], []int64{0}, [][]byte{make([]byte, 512)})
				} else {
					c.PutChunk(p, fi.Chunks[0:1], make([]byte, cs))
				}
			}
		})
		e.Run()
		return e.Now()
	}
	if pp, pc := run(true), run(false); pp >= pc {
		t.Fatalf("dirty-page put %v should beat whole-chunk put %v", pp, pc)
	}
}

func TestKilledBenefactorFails(t *testing.T) {
	e := simtime.NewEngine()
	s := testStore(e)
	cs := s.Mgr.ChunkSize()
	var getErr error
	e.Go("client", func(p *simtime.Proc) {
		c := s.Client(0)
		fi, _ := c.Create(p, "v", cs)
		s.Kill(fi.Chunks[0].Benefactor)
		_, getErr = c.GetChunk(p, fi.Chunks[0:1])
	})
	e.Run()
	if getErr != proto.ErrBenefactorDead {
		t.Fatalf("err = %v, want ErrBenefactorDead", getErr)
	}
}

func TestDeletePhysicallyRemovesUnsharedChunks(t *testing.T) {
	e := simtime.NewEngine()
	s := testStore(e)
	cs := s.Mgr.ChunkSize()
	e.Go("client", func(p *simtime.Proc) {
		c := s.Client(0)
		fi, _ := c.Create(p, "v", 4*cs)
		for _, ref := range fi.Chunks {
			c.PutChunk(p, []proto.ChunkRef{ref}, make([]byte, cs))
		}
		if err := c.Delete(p, "v"); err != nil {
			t.Error(err)
		}
	})
	e.Run()
	for _, id := range s.Benefactors() {
		if u := s.Benefactor(id).Used(); u != 0 {
			t.Fatalf("benefactor %d still holds %d bytes", id, u)
		}
	}
}

func TestRemapServerSideCopy(t *testing.T) {
	e := simtime.NewEngine()
	s := testStore(e)
	cs := s.Mgr.ChunkSize()
	var data []byte
	e.Go("client", func(p *simtime.Proc) {
		c := s.Client(0)
		fi, _ := c.Create(p, "v", cs)
		payload := bytes.Repeat([]byte{7}, int(cs))
		c.PutChunk(p, fi.Chunks[0:1], payload)
		c.Create(p, "ckpt", 0)
		c.Link(p, "ckpt", []string{"v"})
		netBefore := s.Cl.Net.Stats().Bytes
		fresh, err := c.Remap(p, "v", 0)
		if err != nil {
			t.Error(err)
			return
		}
		if moved := s.Cl.Net.Stats().Bytes - netBefore; moved > 1024 {
			t.Errorf("server-side copy moved %d bytes over the network", moved)
		}
		data, err = c.GetChunk(p, fresh)
		if err != nil {
			t.Error(err)
		}
	})
	e.Run()
	if len(data) == 0 || data[0] != 7 {
		t.Fatal("remapped chunk lost its payload")
	}
}
