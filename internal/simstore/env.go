package simstore

import (
	"nvmalloc/internal/cluster"
	"nvmalloc/internal/simtime"
	"nvmalloc/internal/store"
)

// Env adapts the deterministic virtual-time engine to the store.Env
// execution substrate consumed by internal/fusecache. The cooperative
// engine runs exactly one proc at a time, so Lock/Unlock are no-ops;
// futures, gates, and groups map directly onto the simtime primitives,
// which park and resume procs on the virtual clock.
func Env(eng *simtime.Engine) store.Env { return simEnv{eng: eng} }

type simEnv struct {
	eng *simtime.Engine
}

func (e simEnv) Lock(store.Ctx)   {}
func (e simEnv) Unlock(store.Ctx) {}

func (e simEnv) Go(_ store.Ctx, name string, fn func(store.Ctx)) {
	e.eng.Go(name, func(p *simtime.Proc) { fn(p) })
}

func (e simEnv) NewFuture(name string) store.Future {
	return simFuture{fut: simtime.NewFuture[struct{}](e.eng, name)}
}

func (e simEnv) NewGate(name string, width int) store.Gate {
	return simGate{res: simtime.NewResource(e.eng, name, width)}
}

func (e simEnv) NewGroup() store.Group {
	return &simGroup{eng: e.eng, wg: &simtime.WaitGroup{}}
}

// NowNanos reads the virtual clock, so spans recorded on the simulated
// path carry simulated (deterministic) timestamps and durations.
func (e simEnv) NowNanos(store.Ctx) int64 { return int64(e.eng.Now()) }

type simFuture struct {
	fut *simtime.Future[struct{}]
}

func (f simFuture) Set()               { f.fut.Set(struct{}{}) }
func (f simFuture) Wait(ctx store.Ctx) { f.fut.Wait(cluster.ProcOf(ctx)) }

type simGate struct {
	res *simtime.Resource
}

func (g simGate) Acquire(ctx store.Ctx) { g.res.Acquire(cluster.ProcOf(ctx)) }
func (g simGate) Release(ctx store.Ctx) { g.res.Release(cluster.ProcOf(ctx)) }

type simGroup struct {
	eng *simtime.Engine
	wg  *simtime.WaitGroup
}

func (g *simGroup) Go(_ store.Ctx, name string, fn func(store.Ctx)) {
	g.wg.Add(1)
	pr := g.eng.Go(name, func(p *simtime.Proc) { fn(p) })
	pr.OnDone(func() { g.wg.Done(pr) })
}

func (g *simGroup) Wait(ctx store.Ctx) { g.wg.Wait(cluster.ProcOf(ctx)) }
