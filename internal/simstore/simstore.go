// Package simstore runs the aggregate NVM store (manager + benefactors)
// inside the simulated cluster: every store operation is charged its
// network round trip on the cluster interconnect, its device time on the
// benefactor's SSD, and a fixed software (RPC/FUSE crossing) overhead.
// The metadata and chunk logic is the transport-agnostic code in
// internal/manager and internal/benefactor — the same code the real TCP
// transport uses.
//
// Client implements store.Client, the transport-neutral interface the
// library layers (core, fusecache) are written against; the *simtime.Proc
// of the calling simulated process travels through the opaque store.Ctx.
package simstore

import (
	"fmt"
	"time"

	"nvmalloc/internal/benefactor"
	"nvmalloc/internal/cluster"
	"nvmalloc/internal/manager"
	"nvmalloc/internal/proto"
	"nvmalloc/internal/simtime"
	"nvmalloc/internal/store"
)

// Wire-size constants for RPC cost accounting.
const (
	reqHeaderBytes  = 64 // request envelope
	respHeaderBytes = 64 // response envelope
	chunkRefBytes   = 16 // per-chunk entry in a lookup response
	pageHdrBytes    = 8  // per-page entry in a put-pages request
)

// ben is one running benefactor inside the simulation.
type ben struct {
	st    *benefactor.Store
	node  int
	alive bool
}

// Store is a running aggregate NVM store.
type Store struct {
	Cl          *cluster.Cluster
	Mgr         *manager.Manager
	ManagerNode int
	bens        map[int]*ben
	benOrder    []int
}

// New assembles a store on cl with one benefactor per entry of benNodes
// (benefactor i lives on cluster node benNodes[i] and contributes capacity
// bytes of its node-local SSD). The manager runs on managerNode.
func New(cl *cluster.Cluster, managerNode int, benNodes []int, capacity int64, policy manager.PlacementPolicy) *Store {
	s := &Store{
		Cl:          cl,
		Mgr:         manager.New(cl.Prof.ChunkSize, policy),
		ManagerNode: managerNode,
		bens:        make(map[int]*ben),
	}
	for i, node := range benNodes {
		bst := benefactor.New(i, node, capacity, cl.Prof.ChunkSize, benefactor.NewMem())
		s.bens[i] = &ben{st: bst, node: node, alive: true}
		s.benOrder = append(s.benOrder, i)
		s.Mgr.Register(bst.Info(), "", 0)
	}
	return s
}

// Benefactor returns benefactor i's store (for stats and tests).
func (s *Store) Benefactor(i int) *benefactor.Store { return s.bens[i].st }

// Benefactors returns the benefactor IDs in registration order.
func (s *Store) Benefactors() []int { return append([]int(nil), s.benOrder...) }

// Kill simulates the death of a benefactor process: subsequent chunk
// operations against it fail and the manager is informed (as its liveness
// sweep eventually would).
func (s *Store) Kill(benID int) {
	if b, ok := s.bens[benID]; ok {
		b.alive = false
		s.Mgr.MarkDead(benID)
	}
}

// Revive brings a killed benefactor back (its chunks intact).
func (s *Store) Revive(benID int) {
	if b, ok := s.bens[benID]; ok {
		b.alive = true
		s.Mgr.Register(b.st.Info(), "", time.Duration(s.Cl.Eng.Now()))
	}
}

// Repair restores the configured replica count after failures, executing
// the manager's copy plan (read from a live copy, write to the
// replacement) and charging all device and network time. It returns how
// many chunks were re-replicated and how many are unrecoverable.
func (s *Store) Repair(p *simtime.Proc) (repaired int, lost int, err error) {
	ops, lostIDs := s.Mgr.Repair()
	c := s.Client(s.ManagerNode)
	for _, op := range ops {
		data, gerr := c.GetChunk(p, []proto.ChunkRef{op.Src})
		if gerr != nil {
			return repaired, len(lostIDs), gerr
		}
		dst, derr := c.liveBen(op.Dst)
		if derr != nil {
			return repaired, len(lostIDs), derr
		}
		s.overhead(p)
		s.Cl.Net.Transfer(p, s.ManagerNode, dst.node, reqHeaderBytes+int64(len(data)))
		s.Cl.Nodes[dst.node].SSD.Write(p, int64(len(data)))
		if perr := dst.st.PutChunk(op.Dst.ID, data); perr != nil {
			return repaired, len(lostIDs), perr
		}
		repaired++
	}
	return repaired, len(lostIDs), nil
}

// overhead charges the fixed software cost of one RPC.
func (s *Store) overhead(p *simtime.Proc) { p.Sleep(s.Cl.Prof.RPCOverhead) }

// mgrRPC charges a metadata round trip from clientNode to the manager.
func (s *Store) mgrRPC(p *simtime.Proc, clientNode int, reqExtra, respExtra int64) {
	s.overhead(p)
	s.Cl.Net.Request(p, clientNode, s.ManagerNode, reqHeaderBytes+reqExtra, respHeaderBytes+respExtra, nil)
}

// Client returns a node-bound handle used by the cache layer on that node.
func (s *Store) Client(node int) *Client { return &Client{s: s, node: node} }

// Client is a per-compute-node handle to the store. It implements the
// transport-neutral store.Client interface consumed by internal/fusecache
// and internal/core.
type Client struct {
	s    *Store
	node int
}

var _ store.Client = (*Client)(nil)

// Node returns the cluster node this client is bound to.
func (c *Client) Node() int { return c.node }

// ChunkSize returns the store's striping unit.
func (c *Client) ChunkSize() int64 { return c.s.Mgr.ChunkSize() }

// Create reserves a file of the given size (posix_fallocate analog).
func (c *Client) Create(ctx store.Ctx, name string, size int64) (proto.FileInfo, error) {
	p := cluster.ProcOf(ctx)
	fi, err := c.s.Mgr.Create(name, size)
	c.s.mgrRPC(p, c.node, int64(len(name)), int64(len(fi.Chunks))*chunkRefBytes)
	return fi, err
}

// Lookup fetches a file's chunk map from the manager.
func (c *Client) Lookup(ctx store.Ctx, name string) (proto.FileInfo, error) {
	p := cluster.ProcOf(ctx)
	fi, err := c.s.Mgr.Lookup(name)
	c.s.mgrRPC(p, c.node, int64(len(name)), int64(len(fi.Chunks))*chunkRefBytes)
	return fi, err
}

// Exists asks the manager whether a file exists. (Not part of
// store.Client; sim-side convenience.)
func (c *Client) Exists(ctx store.Ctx, name string) bool {
	p := cluster.ProcOf(ctx)
	ok := c.s.Mgr.Exists(name)
	c.s.mgrRPC(p, c.node, int64(len(name)), 8)
	return ok
}

// Delete removes a file; chunks whose refcount reaches zero are physically
// deleted on their benefactors.
func (c *Client) Delete(ctx store.Ctx, name string) error {
	p := cluster.ProcOf(ctx)
	freed, err := c.s.Mgr.Delete(name)
	c.s.mgrRPC(p, c.node, int64(len(name)), 8)
	if err != nil {
		return err
	}
	// The manager issues deletions to benefactors; charge one small RPC per
	// affected benefactor (batched per benefactor, as a real manager would).
	byBen := make(map[int][]proto.ChunkID)
	for _, ref := range freed {
		byBen[ref.Benefactor] = append(byBen[ref.Benefactor], ref.ID)
	}
	for _, id := range c.s.benOrder {
		ids, ok := byBen[id]
		if !ok {
			continue
		}
		b := c.s.bens[id]
		if !b.alive {
			continue // dead benefactor: its space is already lost
		}
		c.s.overhead(p)
		c.s.Cl.Net.Request(p, c.s.ManagerNode, b.node, reqHeaderBytes+int64(len(ids))*8, respHeaderBytes, nil)
		for _, cid := range ids {
			if err := b.st.DeleteChunk(cid); err != nil {
				return err
			}
		}
	}
	return nil
}

// Link appends the chunks of the part files to dst (zero-copy checkpoint
// merge).
func (c *Client) Link(ctx store.Ctx, dst string, parts []string) (proto.FileInfo, error) {
	p := cluster.ProcOf(ctx)
	var extra int64
	for _, pn := range parts {
		extra += int64(len(pn))
	}
	fi, err := c.s.Mgr.Link(dst, parts)
	c.s.mgrRPC(p, c.node, int64(len(dst))+extra, int64(len(fi.Chunks))*chunkRefBytes)
	return fi, err
}

// SetTTL gives the file a lifetime of ttl from the caller's current
// virtual time.
func (c *Client) SetTTL(ctx store.Ctx, name string, ttl time.Duration) error {
	p := cluster.ProcOf(ctx)
	err := c.s.Mgr.SetTTL(name, time.Duration(p.Now())+ttl)
	c.s.mgrRPC(p, c.node, int64(len(name))+8, 8)
	return err
}

// ExpireSweep reclaims expired variables (and their benefactor space).
func (s *Store) ExpireSweep(p *simtime.Proc) ([]string, error) {
	expired, freed := s.Mgr.ExpireSweep(time.Duration(s.Cl.Eng.Now()))
	byBen := make(map[int][]proto.ChunkID)
	for _, ref := range freed {
		byBen[ref.Benefactor] = append(byBen[ref.Benefactor], ref.ID)
	}
	for _, id := range s.benOrder {
		ids, ok := byBen[id]
		if !ok {
			continue
		}
		b := s.bens[id]
		if !b.alive {
			continue
		}
		s.overhead(p)
		s.Cl.Net.Request(p, s.ManagerNode, b.node, reqHeaderBytes+int64(len(ids))*8, respHeaderBytes, nil)
		for _, cid := range ids {
			if err := b.st.DeleteChunk(cid); err != nil {
				return expired, err
			}
		}
	}
	return expired, nil
}

// Derive creates a file sharing a chunk sub-range of src (checkpoint
// restore without data movement).
func (c *Client) Derive(ctx store.Ctx, name, src string, fromChunk, nChunks int, size int64) (proto.FileInfo, error) {
	p := cluster.ProcOf(ctx)
	fi, err := c.s.Mgr.Derive(name, src, fromChunk, nChunks, size)
	c.s.mgrRPC(p, c.node, int64(len(name)+len(src))+24, int64(len(fi.Chunks))*chunkRefBytes)
	return fi, err
}

// Remap performs the copy-on-write remapping of one chunk, including the
// payload copy to the fresh chunk and all of its replicas when the chunk
// was shared. It returns the fresh chunk's full copy set, primary first.
func (c *Client) Remap(ctx store.Ctx, name string, chunkIdx int) ([]proto.ChunkRef, error) {
	p := cluster.ProcOf(ctx)
	old, fresh, shared, err := c.s.Mgr.Remap(name, chunkIdx)
	refs := c.copies(fresh)
	c.s.mgrRPC(p, c.node, int64(len(name))+8, int64(1+len(refs))*chunkRefBytes)
	if err != nil {
		return nil, err
	}
	if shared {
		var data []byte // old chunk's payload, fetched lazily for cross-benefactor copies
		for _, dst := range refs {
			if dst.Benefactor == old.Benefactor {
				// Server-side copy: manager instructs the benefactor directly.
				b := c.s.bens[dst.Benefactor]
				if !b.alive {
					return nil, proto.ErrBenefactorDead
				}
				c.s.overhead(p)
				c.s.Cl.Net.Request(p, c.s.ManagerNode, b.node, reqHeaderBytes, respHeaderBytes, func(sp *simtime.Proc) {
					cs := c.s.Mgr.ChunkSize()
					c.s.Cl.Nodes[b.node].SSD.Read(sp, cs)
					c.s.Cl.Nodes[b.node].SSD.Write(sp, cs)
				})
				if err := b.st.CopyChunk(dst.ID, old.ID); err != nil {
					return nil, err
				}
				continue
			}
			// Cross-benefactor copy: pull once, push to this destination.
			if data == nil {
				if data, err = c.GetChunk(ctx, []proto.ChunkRef{old}); err != nil {
					return nil, err
				}
			}
			b, berr := c.liveBen(dst)
			if berr != nil {
				return nil, berr
			}
			c.s.overhead(p)
			c.s.Cl.Net.Transfer(p, c.node, b.node, reqHeaderBytes+int64(len(data)))
			c.s.Cl.Nodes[b.node].SSD.Write(p, int64(len(data)))
			c.s.Cl.Net.Transfer(p, b.node, c.node, respHeaderBytes)
			if err := b.st.PutChunk(dst.ID, data); err != nil {
				return nil, err
			}
		}
	}
	return refs, nil
}

// Status fetches the benefactor table.
func (c *Client) Status(ctx store.Ctx) ([]proto.BenefactorInfo, error) {
	p := cluster.ProcOf(ctx)
	st := c.s.Mgr.Status()
	c.s.mgrRPC(p, c.node, 0, int64(len(st))*48)
	return st, nil
}

// liveBen resolves a chunk ref to a live benefactor.
func (c *Client) liveBen(ref proto.ChunkRef) (*ben, error) {
	b, ok := c.s.bens[ref.Benefactor]
	if !ok {
		return nil, fmt.Errorf("%w: benefactor %d", proto.ErrBenefactorDead, ref.Benefactor)
	}
	if !b.alive {
		return nil, proto.ErrBenefactorDead
	}
	return b, nil
}

// GetChunk fetches one chunk payload directly from its benefactor: small
// request out, device read on the benefactor's SSD, chunk-size response
// back (paper §III-D: "the FUSE client makes a direct connection to the
// appropriate benefactor"). refs[0] is the primary; when it is dead and
// the store keeps replicas, the read fails over via the manager.
//
// Buffer ownership: the returned slice ALIASES simulated device memory —
// this client deliberately does not implement store.BufferLender, so
// callers (the FUSE chunk cache) copy before caching and never release.
// Only the TCP path's arena-leased buffers are caller-owned (DESIGN.md
// §13).
func (c *Client) GetChunk(ctx store.Ctx, refs []proto.ChunkRef) ([]byte, error) {
	p := cluster.ProcOf(ctx)
	ref := refs[0]
	b, err := c.liveBen(ref)
	if err == proto.ErrBenefactorDead {
		// Failover: ask the manager for a live copy.
		live, lerr := c.s.Mgr.LiveRef(ref.ID)
		c.s.mgrRPC(p, c.node, 8, chunkRefBytes)
		if lerr != nil {
			return nil, err
		}
		if b, err = c.liveBen(live); err != nil {
			return nil, err
		}
		ref = live
	} else if err != nil {
		return nil, err
	}
	cs := c.s.Mgr.ChunkSize()
	c.s.overhead(p)
	c.s.Cl.Net.Transfer(p, c.node, b.node, reqHeaderBytes)
	c.s.Cl.Nodes[b.node].SSD.Read(p, cs)
	c.s.Cl.Net.Transfer(p, b.node, c.node, respHeaderBytes+cs)
	return b.st.GetChunk(ref.ID)
}

// copies lists the locations a write must reach: the given ref plus any
// replicas the manager tracks.
func (c *Client) copies(ref proto.ChunkRef) []proto.ChunkRef {
	reps := c.s.Mgr.Replicas(ref.ID)
	if len(reps) == 0 {
		return []proto.ChunkRef{ref}
	}
	return reps
}

// PutChunk stores a full chunk payload on its benefactor and every
// replica.
func (c *Client) PutChunk(ctx store.Ctx, refs []proto.ChunkRef, data []byte) error {
	p := cluster.ProcOf(ctx)
	var firstErr error
	stored := 0
	for _, dst := range c.copies(refs[0]) {
		b, err := c.liveBen(dst)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		c.s.overhead(p)
		c.s.Cl.Net.Transfer(p, c.node, b.node, reqHeaderBytes+int64(len(data)))
		c.s.Cl.Nodes[b.node].SSD.Write(p, int64(len(data)))
		c.s.Cl.Net.Transfer(p, b.node, c.node, respHeaderBytes)
		if err := b.st.PutChunk(dst.ID, data); err != nil {
			return err
		}
		stored++
	}
	if stored == 0 {
		return firstErr
	}
	return nil
}

// PutPages ships only the dirty pages of a chunk to its benefactor (and
// every replica) — the write optimization of Table VII. The benefactor
// applies them with a single vectored device write.
func (c *Client) PutPages(ctx store.Ctx, refs []proto.ChunkRef, pageOffs []int64, pages [][]byte) error {
	p := cluster.ProcOf(ctx)
	var payload int64
	sizes := make([]int64, len(pages))
	for i, pg := range pages {
		payload += int64(len(pg)) + pageHdrBytes
		sizes[i] = int64(len(pg))
	}
	var firstErr error
	stored := 0
	for _, dst := range c.copies(refs[0]) {
		b, err := c.liveBen(dst)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		c.s.overhead(p)
		c.s.Cl.Net.Transfer(p, c.node, b.node, reqHeaderBytes+payload)
		c.s.Cl.Nodes[b.node].SSD.WriteVec(p, sizes)
		c.s.Cl.Net.Transfer(p, b.node, c.node, respHeaderBytes)
		if err := b.st.PutPages(dst.ID, pageOffs, pages); err != nil {
			return err
		}
		stored++
	}
	if stored == 0 {
		return firstErr
	}
	return nil
}
