// Package store defines the transport-neutral chunk-store interface the
// NVMalloc library (internal/core) and its caches (internal/fusecache)
// are written against. Two adapters implement it:
//
//   - internal/simstore binds it to the deterministic simulated cluster
//     (every call charges virtual network/device time), and
//   - internal/rpc binds it to the real TCP manager/benefactor daemons.
//
// The same library code — ssdmalloc, ssdfree, ssdcheckpoint, the FUSE
// chunk cache with COW remapping — therefore runs unchanged over both
// backends; only the adapter decides whether "time passes" on a virtual
// clock or a wall clock.
//
// No simtime types appear in any signature. The simulation threads its
// *simtime.Proc through the opaque Ctx value; the TCP adapter ignores Ctx
// entirely.
package store

import (
	"time"

	"nvmalloc/internal/proto"
)

// Ctx is the opaque per-call execution context. The simulated adapter
// receives the calling *simtime.Proc here; the TCP adapter takes nil.
// It is an alias (not a defined type) so sim call sites pass their Proc
// with no conversion.
type Ctx = any

// Client is the aggregate-store interface consumed by the cache and
// library layers. Chunk data ops take the full replica set of a chunk
// (primary first, as returned by ReplicaRefs); metadata ops address files
// by name.
type Client interface {
	// Node identifies the compute node this client is bound to (for
	// placement-aware stores; the TCP adapter reports a nominal node).
	Node() int
	// ChunkSize returns the store's striping unit.
	ChunkSize() int64

	// Create reserves a file of the given size (posix_fallocate analog).
	Create(ctx Ctx, name string, size int64) (proto.FileInfo, error)
	// Lookup fetches a file's chunk map from the manager.
	Lookup(ctx Ctx, name string) (proto.FileInfo, error)
	// Delete removes a file; chunks whose refcount reaches zero are
	// physically released on their benefactors.
	Delete(ctx Ctx, name string) error
	// Link appends the chunks of the part files to dst — the zero-copy
	// checkpoint merge of paper §III-E.
	Link(ctx Ctx, dst string, parts []string) (proto.FileInfo, error)
	// Derive creates a file sharing a chunk sub-range of src (checkpoint
	// restore without data movement).
	Derive(ctx Ctx, name, src string, fromChunk, nChunks int, size int64) (proto.FileInfo, error)
	// Remap performs the copy-on-write remapping of one chunk, returning
	// the fresh chunk's full replica set (primary first). When the chunk
	// was not shared the original refs come back unchanged.
	Remap(ctx Ctx, name string, chunkIdx int) ([]proto.ChunkRef, error)
	// SetTTL gives the file a lifetime of ttl from now; the store's expiry
	// sweep reclaims it afterwards (§III-C persistent-variable lifetimes).
	SetTTL(ctx Ctx, name string, ttl time.Duration) error

	// GetChunk fetches one chunk payload, failing over across refs.
	GetChunk(ctx Ctx, refs []proto.ChunkRef) ([]byte, error)
	// PutChunk stores a full chunk payload on every (live) replica.
	PutChunk(ctx Ctx, refs []proto.ChunkRef, data []byte) error
	// PutPages ships only the dirty pages of a chunk — the Table VII
	// write optimization — applied server-side by the benefactor.
	PutPages(ctx Ctx, refs []proto.ChunkRef, pageOffs []int64, pages [][]byte) error

	// Status fetches the benefactor table.
	Status(ctx Ctx) ([]proto.BenefactorInfo, error)
}

// BufferLender is an optional Client extension implemented by transports
// whose GetChunk results are private, pooled buffers (the TCP adapter's
// NVM1 data path leases them from a chunk-sized arena — DESIGN.md §13).
// Callers holding such a client may adopt GetChunk buffers outright —
// retain them, mutate them — and hand them back through ReleaseChunk once
// finished, closing the pool's lease/return loop.
//
// A client that does NOT implement BufferLender (or reports
// PrivateChunks() == false, like simstore, whose GetChunk aliases the
// simulated device memory) keeps the conservative contract: GetChunk
// results must be treated as shared and read-only, and callers copy.
type BufferLender interface {
	// PrivateChunks reports whether GetChunk returns caller-owned buffers.
	PrivateChunks() bool
	// ReleaseChunk returns a GetChunk buffer to the transport's pool. The
	// buffer must not be used afterwards. Buffers of foreign geometry are
	// ignored (left to the garbage collector), so releasing is always safe.
	ReleaseChunk(buf []byte)
}

// ChunkSpiller is an optional Client extension implemented by tiered
// clients backed by a node-local spill cache (internal/filecache.Tier).
// The chunk cache above hands clean evicted payloads here instead of
// discarding them, so a later miss on the same chunk is served from the
// local file tier rather than a benefactor over the wire.
//
// SpillChunk copies data before returning: the caller keeps ownership of
// the buffer and still releases lender-leased buffers through the normal
// BufferLender path afterwards. Spilling is advisory — the tier may drop
// the payload (capacity, shutdown) without telling anyone.
type ChunkSpiller interface {
	SpillChunk(ctx Ctx, refs []proto.ChunkRef, data []byte)
}

// ReplicaRefs returns every copy of chunk idx of a file, primary first.
// Metadata from an unreplicated manager carries no replica table; the
// primary ref alone is the degenerate copy set.
func ReplicaRefs(fi proto.FileInfo, idx int) []proto.ChunkRef {
	if idx < len(fi.Replicas) && len(fi.Replicas[idx]) > 0 {
		return fi.Replicas[idx]
	}
	return fi.Chunks[idx : idx+1]
}

// Env abstracts the execution substrate the cache layer runs on: mutual
// exclusion, task spawning, and blocking synchronization. The simulated
// implementation (internal/simstore) maps these onto the cooperative
// virtual-time engine, where exactly one proc runs at a time and Lock is
// a no-op; the real implementation (GoEnv) maps them onto goroutines and
// a sync.Mutex.
//
// Lock discipline: Future.Wait, Gate.Acquire, and Group.Wait block and
// MUST be called without the env lock held.
type Env interface {
	// Lock/Unlock guard the cache's shared state.
	Lock(ctx Ctx)
	Unlock(ctx Ctx)
	// Go runs fn as an asynchronous task (read-ahead, parallel flushers).
	Go(ctx Ctx, name string, fn func(Ctx))
	// NewFuture returns a one-shot completion signal.
	NewFuture(name string) Future
	// NewGate returns a counting gate admitting width concurrent holders.
	NewGate(name string, width int) Gate
	// NewGroup returns a completion group for a batch of tasks.
	NewGroup() Group
	// NowNanos reads the substrate's clock: wall time on the real Env,
	// virtual time on the simulated one. Span timing must come from here
	// so simulated traces carry simulated durations.
	NowNanos(ctx Ctx) int64
}

// Future is a one-shot completion signal: Set releases all current and
// future waiters.
type Future interface {
	Set()
	Wait(ctx Ctx)
}

// Gate bounds concurrency (the FUSE daemon's request gate).
type Gate interface {
	Acquire(ctx Ctx)
	Release(ctx Ctx)
}

// Group tracks a batch of spawned tasks to completion.
type Group interface {
	Go(ctx Ctx, name string, fn func(Ctx))
	Wait(ctx Ctx)
}
