package store

import (
	"sync"
	"time"
)

// GoEnv is the real-world Env: a sync.Mutex for state, goroutines for
// tasks, channels for futures and gates. It is what the TCP deployment
// runs the shared fusecache on.
type GoEnv struct {
	mu    sync.Mutex
	tasks sync.WaitGroup
}

// NewGoEnv returns a goroutine-backed Env.
func NewGoEnv() *GoEnv { return &GoEnv{} }

func (e *GoEnv) Lock(Ctx)   { e.mu.Lock() }
func (e *GoEnv) Unlock(Ctx) { e.mu.Unlock() }

// Go spawns fn on a goroutine tracked by Quiesce.
func (e *GoEnv) Go(_ Ctx, _ string, fn func(Ctx)) {
	e.tasks.Add(1)
	go func() {
		defer e.tasks.Done()
		fn(nil)
	}()
}

// Quiesce blocks until every task spawned via Go has finished. Called on
// teardown so in-flight read-ahead does not outlive the store connection.
func (e *GoEnv) Quiesce() { e.tasks.Wait() }

func (e *GoEnv) NewFuture(string) Future { return &chanFuture{ch: make(chan struct{})} }

func (e *GoEnv) NewGate(_ string, width int) Gate {
	if width < 1 {
		width = 1
	}
	return chanGate(make(chan struct{}, width))
}

func (e *GoEnv) NewGroup() Group { return &wgGroup{} }

func (e *GoEnv) NowNanos(Ctx) int64 { return time.Now().UnixNano() }

type chanFuture struct {
	once sync.Once
	ch   chan struct{}
}

func (f *chanFuture) Set()     { f.once.Do(func() { close(f.ch) }) }
func (f *chanFuture) Wait(Ctx) { <-f.ch }

type chanGate chan struct{}

func (g chanGate) Acquire(Ctx) { g <- struct{}{} }
func (g chanGate) Release(Ctx) { <-g }

type wgGroup struct {
	wg sync.WaitGroup
}

func (g *wgGroup) Go(_ Ctx, _ string, fn func(Ctx)) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		fn(nil)
	}()
}

func (g *wgGroup) Wait(Ctx) { g.wg.Wait() }
