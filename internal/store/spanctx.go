package store

// SpanInfo is the tracing context that rides the opaque Ctx across the
// store boundary: the trace the current operation belongs to, the span the
// next layer should parent its own span under, and the NVM variable (file)
// the operation is attributed to. The zero value means "untraced".
type SpanInfo struct {
	Trace  string
	Parent string
	Var    string
}

// Traced reports whether the context carries an active span to parent new
// spans under. A Trace alone is just an event-correlation ID (the seed-cheap
// ring-event plumbing mints one per convenience op); span trees exist only
// where a parent span does.
func (s SpanInfo) Traced() bool { return s.Trace != "" && s.Parent != "" }

// spanCtx wraps an adapter's base ctx (a *simtime.Proc on the simulated
// path, nil on the TCP path) with span info. It is deliberately tiny: the
// adapters unwrap it via BaseCtx, the instrumentation reads it via SpanOf.
type spanCtx struct {
	base Ctx
	info SpanInfo
}

// WithSpan attaches span info to ctx. Wrapping an already-wrapped ctx
// replaces the span info but keeps the original base ctx.
func WithSpan(ctx Ctx, info SpanInfo) Ctx {
	return spanCtx{base: BaseCtx(ctx), info: info}
}

// SpanOf extracts the span info from ctx; the zero SpanInfo when none is
// attached.
func SpanOf(ctx Ctx) SpanInfo {
	if sc, ok := ctx.(spanCtx); ok {
		return sc.info
	}
	return SpanInfo{}
}

// BaseCtx strips any span wrapper, returning the adapter-level ctx (the
// *simtime.Proc on the simulated path, nil on the TCP path).
func BaseCtx(ctx Ctx) Ctx {
	for {
		sc, ok := ctx.(spanCtx)
		if !ok {
			return ctx
		}
		ctx = sc.base
	}
}
