package shardmap

import (
	"fmt"
	"testing"
)

// TestShardForStable pins that routing is a pure function of (name, n):
// the same name always lands on the same shard, and adding names never
// moves existing ones.
func TestShardForStable(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		for i := 0; i < 100; i++ {
			name := fmt.Sprintf("nvmvar.r%d.%d", i%7, i)
			a := ShardFor(name, n)
			b := ShardFor(name, n)
			if a != b {
				t.Fatalf("ShardFor(%q, %d) unstable: %d then %d", name, n, a, b)
			}
			if a < 0 || a >= n {
				t.Fatalf("ShardFor(%q, %d) = %d out of range", name, n, a)
			}
		}
	}
}

// TestShardForUnsharded: n <= 1 is the degenerate single-manager plane.
func TestShardForUnsharded(t *testing.T) {
	for _, n := range []int{-1, 0, 1} {
		if got := ShardFor("anything", n); got != 0 {
			t.Fatalf("ShardFor(n=%d) = %d, want 0", n, got)
		}
	}
}

// TestShardForDistribution: rendezvous hashing must spread a realistic
// variable-name population roughly evenly — no shard may be starved or
// hot by more than 2x of fair share across 10k names.
func TestShardForDistribution(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7} {
		counts := make([]int, n)
		const names = 10000
		for i := 0; i < names; i++ {
			counts[ShardFor(fmt.Sprintf("nvmvar.r%d.var-%d", i%64, i), n)]++
		}
		fair := names / n
		for s, c := range counts {
			if c < fair/2 || c > fair*2 {
				t.Fatalf("n=%d: shard %d got %d of %d names (fair share %d): %v",
					n, s, c, names, fair, counts)
			}
		}
	}
}

// TestShardForGrowthMovesBoundedKeys: the rendezvous property — growing
// from n to n+1 shards relocates only names won by the new shard (~1/(n+1)
// of them); every other name keeps its shard. This is what makes a future
// reshard incremental instead of a full remap.
func TestShardForGrowthMovesBoundedKeys(t *testing.T) {
	const names = 5000
	for _, n := range []int{2, 4} {
		moved := 0
		for i := 0; i < names; i++ {
			name := fmt.Sprintf("var-%d", i)
			was, is := ShardFor(name, n), ShardFor(name, n+1)
			if was != is {
				moved++
				if is != n {
					t.Fatalf("name %q moved %d -> %d when shard %d joined (only the new shard may win)", name, was, is, n)
				}
			}
		}
		// Expect ~names/(n+1) moved; allow a 2x band.
		expect := names / (n + 1)
		if moved > 2*expect {
			t.Fatalf("n=%d->%d moved %d names, want <= %d", n, n+1, moved, 2*expect)
		}
	}
}

func TestSplitAddrs(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"127.0.0.1:7070", []string{"127.0.0.1:7070"}},
		{"a:1,b:2", []string{"a:1", "b:2"}},
		{" a:1 , b:2 ,", []string{"a:1", "b:2"}},
		{"", nil},
	}
	for _, c := range cases {
		got := SplitAddrs(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("SplitAddrs(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("SplitAddrs(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestMapClone(t *testing.T) {
	m := Map{Epoch: 3, Index: 1, N: 2, Peers: []string{"a", "b"}}
	c := m.Clone()
	c.Peers[0] = "mutated"
	if m.Peers[0] != "a" {
		t.Fatal("Clone shares the Peers slice")
	}
	if m.Unsharded() || !(Map{N: 1}).Unsharded() {
		t.Fatal("Unsharded misreports")
	}
}
