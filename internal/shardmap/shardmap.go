// Package shardmap partitions the metadata plane: variable names are
// routed to manager shards by rendezvous (highest-random-weight) hashing,
// and clients cache an epoch-stamped map of the shard set so a stale view
// is detected by the shard itself (proto.ErrStaleShardMap) rather than
// silently serving another shard's keyspace.
//
// The hash is deterministic across processes and Go versions (FNV-1a over
// the name and the shard index), so every client, manager, and tool
// computes the same name→shard assignment from the shard count alone —
// there is no routing table to distribute, only the count and the peer
// addresses. Ties break toward the lowest shard index, which makes the
// assignment total and stable.
package shardmap

import "strings"

// Map is a client's view of the metadata plane: how many shards exist,
// which one this map came from, its membership epoch, and where the
// shards listen. A single-manager deployment is the degenerate Map{N: 1}.
type Map struct {
	// Epoch is the issuing shard's membership epoch. Every benefactor
	// registration, death, or fenced rejoin bumps it; a request stamped
	// with an older epoch is rejected with proto.ErrStaleShardMap and the
	// fresh map piggybacked on the response.
	Epoch int64
	// Index is the issuing shard's position in [0, N).
	Index int
	// N is the shard count. 0 or 1 means an unsharded metadata plane.
	N int
	// Peers holds the manager addresses indexed by shard. May be empty on
	// an unsharded deployment.
	Peers []string
}

// Unsharded reports whether the map describes a single-manager plane.
func (m Map) Unsharded() bool { return m.N <= 1 }

// Clone returns a deep copy (the Peers slice is shared state otherwise).
func (m Map) Clone() Map {
	m.Peers = append([]string(nil), m.Peers...)
	return m
}

// fnv1a64 is FNV-1a over s, seeded so the shard index perturbs the whole
// hash (plain concatenation would let "a"+shard collide with "a"+shard').
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnv1a64(s string, seed uint64) uint64 {
	h := uint64(fnvOffset) ^ seed
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// weight is the rendezvous weight of (name, shard): each shard hashes the
// name with its own seed and the highest weight wins.
func weight(name string, shard int) uint64 {
	// Seed the shard index through one FNV round so adjacent indices
	// produce uncorrelated weights.
	seed := (uint64(shard) + 1) * fnvPrime
	return fnv1a64(name, seed)
}

// ShardFor returns the shard owning a variable name under an n-shard
// plane, by rendezvous hashing with a deterministic lowest-index
// tiebreak. n <= 1 always yields shard 0, the unsharded degenerate case.
func ShardFor(name string, n int) int {
	if n <= 1 {
		return 0
	}
	best, bestW := 0, weight(name, 0)
	for i := 1; i < n; i++ {
		if w := weight(name, i); w > bestW { // strict: ties keep the lowest index
			best, bestW = i, w
		}
	}
	return best
}

// SplitAddrs parses a comma-separated manager address list (the form
// nvmalloc.Connect, nvmctl -manager, and nvmstore benefactor -manager all
// accept), dropping empty elements and surrounding space.
func SplitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
