package workloads

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"nvmalloc/internal/cluster"
	"nvmalloc/internal/simtime"
	"nvmalloc/internal/sysprof"
)

func newDirectRig() (*simtime.Engine, *DirectSSD) {
	e := simtime.NewEngine()
	cl := cluster.New(e, sysprof.Bench())
	d := NewDirectSSD(cl.Nodes[0], "d", 256<<10, 512, 64<<10)
	return e, d
}

func TestDirectSSDRoundTrip(t *testing.T) {
	e, d := newDirectRig()
	e.Go("t", func(p *simtime.Proc) {
		want := bytes.Repeat([]byte{0xAD}, 3000)
		if err := d.WriteAt(p, 777, want); err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, len(want))
		if err := d.ReadAt(p, 777, got); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, want) {
			t.Error("round trip mismatch")
		}
	})
	e.Run()
	if e.Now() == 0 {
		t.Fatal("no device time charged")
	}
}

func TestDirectSSDBoundsChecked(t *testing.T) {
	e, d := newDirectRig()
	e.Go("t", func(p *simtime.Proc) {
		if err := d.ReadAt(p, d.Size()-4, make([]byte, 8)); err == nil {
			t.Error("out-of-range read accepted")
		}
		if err := d.WriteAt(p, -1, []byte{1}); err == nil {
			t.Error("negative-offset write accepted")
		}
	})
	e.Run()
}

func TestDirectSSDSequentialBeatsRandom(t *testing.T) {
	timeFor := func(random bool) simtime.Time {
		e, d := newDirectRig()
		e.Go("t", func(p *simtime.Proc) {
			buf := make([]byte, 512)
			rng := rand.New(rand.NewSource(9))
			n := d.Size() / 512
			for i := int64(0); i < n; i++ {
				off := i * 512
				if random {
					off = rng.Int63n(n) * 512
				}
				if err := d.ReadAt(p, off, buf); err != nil {
					t.Error(err)
					return
				}
			}
		})
		e.Run()
		return e.Now()
	}
	seq, rnd := timeFor(false), timeFor(true)
	if seq >= rnd {
		t.Fatalf("sequential %v should beat random %v (kernel read-ahead)", seq, rnd)
	}
}

func TestDirectSSDSyncFlushesBatches(t *testing.T) {
	e, d := newDirectRig()
	e.Go("t", func(p *simtime.Proc) {
		before := d.node.SSD.Stats().Writes
		// Fewer pages than the write batch: nothing flushed yet.
		d.WriteAt(p, 0, make([]byte, 512*4))
		if d.node.SSD.Stats().Writes != before {
			t.Error("writes flushed before the batch filled")
		}
		d.Sync(p)
		if d.node.SSD.Stats().Writes == before {
			t.Error("sync did not flush")
		}
	})
	e.Run()
}

// Property: DirectSSD behaves as a flat byte array under random ops.
func TestDirectSSDMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, d := newDirectRig()
		ref := make([]byte, d.Size())
		ok := true
		e.Go("t", func(p *simtime.Proc) {
			for op := 0; op < 80; op++ {
				off := rng.Int63n(d.Size() - 1)
				n := rng.Int63n(min64(2000, d.Size()-off)) + 1
				if rng.Intn(2) == 0 {
					data := make([]byte, n)
					rng.Read(data)
					if d.WriteAt(p, off, data) != nil {
						ok = false
						return
					}
					copy(ref[off:], data)
				} else {
					got := make([]byte, n)
					if d.ReadAt(p, off, got) != nil {
						ok = false
						return
					}
					if !bytes.Equal(got, ref[off:off+n]) {
						ok = false
						return
					}
				}
			}
		})
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
