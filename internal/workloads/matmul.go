package workloads

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"nvmalloc/internal/core"
	"nvmalloc/internal/mpi"
	"nvmalloc/internal/sim"
	"nvmalloc/internal/simtime"
)

// MMParams configures one matrix-multiplication run (C = A × B, n×n
// float64 matrices, BLOCK row distribution of A and C, B fully replicated
// — the paper's §IV-B2 kernel).
type MMParams struct {
	N int // matrix dimension
	// PlaceB chooses B's home: DRAM (baseline) or the NVM store.
	PlaceB Placement
	// SharedB maps B to one backing file per node (the paper's "-S" mode)
	// instead of one file per process ("-I").
	SharedB bool
	// ColumnMajorB accesses B column-by-column during compute (Fig. 5).
	ColumnMajorB bool
	// Tile is the loop-tiling size in elements (Table V). 0 picks N/8.
	Tile int
	// BcastBlockBytes is the broadcast pipelining granularity.
	BcastBlockBytes int64
	// RealCompute performs the actual floating-point arithmetic (tests at
	// small N); otherwise arithmetic time is charged without executing
	// n³ multiplies.
	RealCompute bool
	// Verify checks C against a reference product (requires RealCompute).
	Verify bool
}

// MMStages breaks the runtime into the paper's five stages (Fig. 3).
type MMStages struct {
	InputSplitA time.Duration
	InputB      time.Duration
	BroadcastB  time.Duration
	Computing   time.Duration
	CollectC    time.Duration
}

// Total sums the stages.
func (s MMStages) Total() time.Duration {
	return s.InputSplitA + s.InputB + s.BroadcastB + s.Computing + s.CollectC
}

// MMResult reports one run.
type MMResult struct {
	Params   MMParams
	Config   string
	Stages   MMStages
	Total    time.Duration
	Verified bool
	// Traffic during the compute stage at the three levels of Table IV.
	AppBytesToB   int64
	FuseReadBytes int64
	SSDReadBytes  int64
}

// matBytes generates a deterministic n×n matrix as little-endian float64
// bytes with small integer entries (exact arithmetic for verification).
func matBytes(n int, seed uint64) []byte {
	out := make([]byte, n*n*8)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := float64(int64((seed+uint64(i)*2654435761+uint64(j)*40503)%7) - 3)
			binary.LittleEndian.PutUint64(out[(i*n+j)*8:], math.Float64bits(v))
		}
	}
	return out
}

// RunMM executes the five-stage MPI matrix multiplication on machine m.
func RunMM(m *sim.Machine, prm MMParams) (MMResult, error) {
	cfg := m.Cfg
	ranks := cfg.Ranks()
	if prm.N%ranks != 0 {
		return MMResult{}, fmt.Errorf("workloads: N=%d not divisible by %d ranks", prm.N, ranks)
	}
	if prm.Tile == 0 {
		prm.Tile = prm.N / 8
	}
	if prm.N%prm.Tile != 0 {
		return MMResult{}, fmt.Errorf("workloads: N=%d not divisible by tile %d", prm.N, prm.Tile)
	}
	if prm.BcastBlockBytes == 0 {
		// Fine-grained blocks keep the broadcast tree pipelined: the
		// pipeline fill cost is depth×block, so blocks must be small
		// relative to the matrix.
		prm.BcastBlockBytes = 2 * m.Prof.ChunkSize
	}
	if prm.Verify && !prm.RealCompute {
		return MMResult{}, fmt.Errorf("workloads: Verify requires RealCompute")
	}

	n := prm.N
	rowsPer := n / ranks

	// Feasibility: will the per-node DRAM demand fit? This is the check
	// that forces the paper's DRAM-only runs down to 2 processes per node
	// (and rules DRAM-only out entirely for the 8 GB problem of Fig. 6).
	perRank := int64(2 * rowsPer * n * 8) // A and C slices
	if prm.PlaceB == InDRAM {
		perRank += int64(n * n * 8) // a full private copy of B
	}
	demand := int64(cfg.ProcsPerNode) * perRank
	if demand > m.Prof.AvailableDRAM() {
		return MMResult{}, fmt.Errorf("workloads: %s infeasible: %d B/node needed, %d available (out of memory)",
			cfg, demand, m.Prof.AvailableDRAM())
	}

	comm := mpi.New(m.Eng, m.Cluster.Net, cfg)

	// Inputs pre-exist on the PFS (setup, untimed). For the column-major
	// access study the B file is laid out transposed — the paper's
	// "effectively altering the data placement strategy" — so the same
	// tiled kernel produces strided instead of sequential store accesses.
	aBytes := matBytes(n, 1)
	bBytes := matBytes(n, 2)
	m.PFS.Preload("mm/A.in", aBytes)
	if prm.ColumnMajorB {
		m.PFS.Preload("mm/B.in", transpose(n, bBytes))
	} else {
		m.PFS.Preload("mm/B.in", bBytes)
	}

	res := MMResult{Params: prm, Config: cfg.String(), Verified: prm.Verify}
	var runErr error
	stageMarks := make([]simtime.Time, 0, 6)
	mark := func(p *simtime.Proc, rank int) {
		comm.Barrier(p, rank)
		if rank == 0 {
			stageMarks = append(stageMarks, p.Now())
		}
	}
	var fuseBefore, ssdBefore int64
	appToB := make([]int64, ranks)

	mpi.RunRanks(m.Eng, cfg, func(p *simtime.Proc, rank int) {
		c := m.NewClient(rank)
		node := c.Node()
		fail := func(err error) {
			if runErr == nil {
				runErr = fmt.Errorf("rank %d: %w", rank, err)
			}
		}
		mark(p, rank) // t0

		// ---- Stage (i): master streams A from the PFS, one rank's row
		// block at a time, and sends it out (no full-matrix staging, so
		// problems larger than any node's memory work — Fig. 6).
		aSlice, err := core.NewDRAM(node, fmt.Sprintf("A.r%d", rank), int64(rowsPer*n*8))
		if err != nil {
			fail(err)
			return
		}
		sliceBytes := int64(rowsPer * n * 8)
		if rank == 0 {
			buf := make([]byte, sliceBytes)
			for r := 0; r < ranks; r++ {
				if err := m.PFS.ReadAt(p, "mm/A.in", int64(r)*sliceBytes, buf); err != nil {
					fail(err)
					return
				}
				if r == 0 {
					if err := aSlice.WriteAt(p, 0, buf); err != nil {
						fail(err)
						return
					}
				} else {
					comm.Send(p, 0, r, 1, buf)
				}
			}
		} else {
			mine := comm.Recv(p, 0, rank, 1)
			if err := aSlice.WriteAt(p, 0, mine); err != nil {
				fail(err)
				return
			}
		}
		mark(p, rank) // end stage i

		// ---- Stage (ii): master reads B from the PFS into its B home.
		// With the shared mapping that home IS the one cluster-wide file;
		// otherwise it is the master's private copy that stages the
		// broadcast. The installation write runs behind the PFS read
		// (FUSE write-behind).
		sharedNVM := prm.SharedB && prm.PlaceB == OnNVM
		B, err := allocB(p, c, prm, rank, int64(n*n*8))
		if err != nil {
			fail(err)
			return
		}
		blk := prm.BcastBlockBytes
		total := int64(n * n * 8)
		if rank == 0 {
			w := newWriteBehind(m, rank, B, 2)
			buf := make([]byte, blk)
			for off := int64(0); off < total; off += blk {
				sz := min64(blk, total-off)
				if err := m.PFS.ReadAt(p, "mm/B.in", off, buf[:sz]); err != nil {
					fail(err)
					return
				}
				w.enqueue(off, buf[:sz])
			}
			if err := w.wait(p); err != nil {
				fail(err)
				return
			}
		}
		mark(p, rank) // end stage ii

		// ---- Stage (iii): make B visible to every rank. With the shared
		// mapping nothing travels over MPI: the master flushes the global
		// file and every rank reads through its node's FUSE mount — the
		// network/I-O saving of Fig. 4. Otherwise B is MPI-broadcast
		// block-wise, with store writes running behind the pipeline.
		if sharedNVM {
			if rank == 0 {
				if err := B.Sync(p); err != nil {
					fail(err)
					return
				}
			}
		} else {
			writes := rank != 0
			var w *writeBehind
			if writes {
				w = newWriteBehind(m, rank, B, 2)
			}
			rbuf := make([]byte, blk)
			for off := int64(0); off < total; off += blk {
				sz := min64(blk, total-off)
				var in []byte
				if rank == 0 {
					in = rbuf[:sz]
					if err := B.ReadAt(p, off, in); err != nil {
						fail(err)
						return
					}
				}
				out := comm.Bcast(p, rank, 0, in)
				if writes {
					w.enqueue(off, out)
				}
			}
			if writes {
				if err := w.wait(p); err != nil {
					fail(err)
					return
				}
			}
			if prm.PlaceB == OnNVM {
				if err := B.Sync(p); err != nil {
					fail(err)
					return
				}
			}
		}
		if rank == 0 {
			fuseBefore, ssdBefore = cacheReads(m)
		}
		mark(p, rank) // end stage iii

		// ---- Stage (iv): tiled local multiply.
		cSlice, err := core.NewDRAM(node, fmt.Sprintf("C.r%d", rank), int64(rowsPer*n*8))
		if err != nil {
			fail(err)
			return
		}
		if err := computeTile(p, c, prm, rank, rowsPer, aSlice, B, cSlice); err != nil {
			fail(err)
			return
		}
		appToB[rank] = B.AppStats().ReadBytes
		mark(p, rank) // end stage iv

		// ---- Stage (v): gather C at the master and write it out.
		mine := make([]byte, rowsPer*n*8)
		if err := cSlice.ReadAt(p, 0, mine); err != nil {
			fail(err)
			return
		}
		parts := comm.Gatherv(p, rank, 0, mine)
		if rank == 0 {
			m.PFS.Create(p, "mm/C.out")
			for r, part := range parts {
				if err := m.PFS.WriteAt(p, "mm/C.out", int64(r*rowsPer*n*8), part); err != nil {
					fail(err)
					return
				}
			}
		}
		mark(p, rank) // end stage v

		// Teardown (untimed beyond this point).
		aSlice.Free(p)
		cSlice.Free(p)
		freeB(p, B, prm, rank)
	})
	m.Eng.Run()
	if runErr != nil {
		return res, runErr
	}

	if len(stageMarks) != 6 {
		return res, fmt.Errorf("workloads: expected 6 stage marks, got %d", len(stageMarks))
	}
	res.Stages = MMStages{
		InputSplitA: stageMarks[1].Sub(stageMarks[0]),
		InputB:      stageMarks[2].Sub(stageMarks[1]),
		BroadcastB:  stageMarks[3].Sub(stageMarks[2]),
		Computing:   stageMarks[4].Sub(stageMarks[3]),
		CollectC:    stageMarks[5].Sub(stageMarks[4]),
	}
	res.Total = res.Stages.Total()
	fuseAfter, ssdAfter := cacheReads(m)
	res.FuseReadBytes = fuseAfter - fuseBefore
	res.SSDReadBytes = ssdAfter - ssdBefore
	for _, b := range appToB {
		res.AppBytesToB += b
	}

	if prm.Verify {
		got, err := m.PFS.Snapshot("mm/C.out")
		if err != nil {
			return res, err
		}
		if err := verifyMM(n, aBytes, bBytes, got); err != nil {
			res.Verified = false
			return res, err
		}
	}
	return res, nil
}

// writeBehind installs buffer blocks from a background proc so the
// caller's pipeline (PFS read, broadcast) overlaps the store writes — the
// FUSE daemon's write-behind behaviour.
type writeBehind struct {
	ch      *simtime.Chan[wbBlock]
	done    *simtime.WaitGroup
	workers int
	err     error
}

type wbBlock struct {
	off  int64
	data []byte // nil = shutdown
}

func newWriteBehind(m *sim.Machine, rank int, b core.Buffer, workers int) *writeBehind {
	if workers < 1 {
		workers = 1
	}
	w := &writeBehind{
		ch:   simtime.NewChan[wbBlock](m.Eng, fmt.Sprintf("wb r%d", rank)),
		done: &simtime.WaitGroup{},
	}
	w.workers = workers
	for i := 0; i < workers; i++ {
		w.done.Add(1)
		pr := m.Eng.Go(fmt.Sprintf("write-behind r%d.%d", rank, i), func(wp *simtime.Proc) {
			for {
				blk := w.ch.Recv(wp)
				if blk.data == nil {
					return
				}
				if w.err == nil {
					if err := b.WriteAt(wp, blk.off, blk.data); err != nil {
						w.err = err
					}
				}
			}
		})
		pr.OnDone(func() { w.done.Done(pr) })
	}
	return w
}

func (w *writeBehind) enqueue(off int64, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	w.ch.Send(wbBlock{off: off, data: cp})
}

func (w *writeBehind) wait(p *simtime.Proc) error {
	for i := 0; i < w.workers; i++ {
		w.ch.Send(wbBlock{})
	}
	w.done.Wait(p)
	return w.err
}

// cacheReads snapshots the FUSE-level and SSD-level read counters.
func cacheReads(m *sim.Machine) (fuse, ssd int64) {
	s := m.CacheStats()
	return s.FuseReadBytes, s.SSDReadBytes
}

// allocB places B per the parameters: a private DRAM copy, a private NVM
// region, or the single cluster-wide shared file.
func allocB(p *simtime.Proc, c *core.Client, prm MMParams, rank int, size int64) (core.Buffer, error) {
	switch prm.PlaceB {
	case InDRAM:
		return core.NewDRAM(c.Node(), fmt.Sprintf("B.r%d", rank), size)
	case OnNVM:
		if prm.SharedB {
			return c.Malloc(p, size, core.WithName("mm.B"), core.Shared())
		}
		return c.Malloc(p, size, core.WithName(fmt.Sprintf("mm.B.r%d", rank)))
	}
	return nil, fmt.Errorf("workloads: B cannot be placed on %v", prm.PlaceB)
}

func freeB(p *simtime.Proc, B core.Buffer, prm MMParams, rank int) {
	if prm.SharedB && prm.PlaceB == OnNVM && rank != 0 {
		return // rank 0 frees the shared global file
	}
	B.Free(p)
}

// computeTile runs the tiled multiply for one rank: C_slice = A_slice × B.
// B is accessed through its Buffer (page/chunk caches when NVM-resident)
// in row-major or column-major order; A and C stream through DRAM.
func computeTile(p *simtime.Proc, c *core.Client, prm MMParams, rank, rows int, A *core.DRAMBuffer, B core.Buffer, C *core.DRAMBuffer) error {
	n, T := prm.N, prm.Tile
	bv := core.Float64s(B)
	node := c.Node()
	tile := make([]float64, T*T)

	var aRow, cRow []float64
	if prm.RealCompute {
		aRow = make([]float64, T)
		cRow = make([]float64, T)
	}
	av, cvw := core.Float64s(A), core.Float64s(C)

	var colSeg []float64
	if prm.ColumnMajorB {
		colSeg = make([]float64, T)
	}
	// kk-outer, jj-inner: with a row-major B file, the jj sweep consumes
	// the chunks holding rows kk..kk+T exactly once, so B crosses the
	// store once per multiply. With a column-major (transposed) file the
	// same sweep strides across the whole file every kk iteration — the
	// locality collapse of Fig. 5.
	for kk := 0; kk < n; kk += T {
		for jj := 0; jj < n; jj += T {
			// Load the B tile (logical B[kk..kk+T][jj..jj+T]) through the
			// cache hierarchy.
			if !prm.ColumnMajorB {
				for k := 0; k < T; k++ {
					if err := bv.LoadVec(p, int64((kk+k)*n+jj), tile[k*T:(k+1)*T]); err != nil {
						return err
					}
				}
			} else {
				// Transposed file: logical element (k, j) lives at file
				// position j*n + k.
				for j := 0; j < T; j++ {
					if err := bv.LoadVec(p, int64((jj+j)*n+kk), colSeg); err != nil {
						return err
					}
					for k := 0; k < T; k++ {
						tile[k*T+j] = colSeg[k]
					}
				}
			}
			// Stream the A and C tiles from DRAM and do the arithmetic.
			// (In RealCompute mode the per-row LoadVec/StoreVec calls
			// below charge the DRAM traffic themselves.)
			if !prm.RealCompute {
				node.MemRead(p, int64(rows*T*8))  // A tile
				node.MemRead(p, int64(rows*T*8))  // C tile in
				node.MemWrite(p, int64(rows*T*8)) // C tile out
			}
			if prm.RealCompute {
				for i := 0; i < rows; i++ {
					if err := av.LoadVec(p, int64(i*n+kk), aRow[:T]); err != nil {
						return err
					}
					if err := cvw.LoadVec(p, int64(i*n+jj), cRow[:T]); err != nil {
						return err
					}
					for k := 0; k < T; k++ {
						a := aRow[k]
						if a == 0 {
							continue
						}
						brow := tile[k*T : (k+1)*T]
						for j := 0; j < T; j++ {
							cRow[j] += a * brow[j]
						}
					}
					if err := cvw.StoreVec(p, int64(i*n+jj), cRow[:T]); err != nil {
						return err
					}
				}
			}
			node.Compute(p, 2*float64(rows)*float64(T)*float64(T))
		}
	}
	return nil
}

// transpose returns the transpose of an n×n float64 matrix in byte form.
func transpose(n int, in []byte) []byte {
	out := make([]byte, len(in))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			copy(out[(j*n+i)*8:(j*n+i)*8+8], in[(i*n+j)*8:(i*n+j)*8+8])
		}
	}
	return out
}

// verifyMM checks C == A×B exactly (small integer entries).
func verifyMM(n int, aB, bB, cB []byte) error {
	dec := func(b []byte, i int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	// Spot-check a deterministic sample of entries (full n³ reference is
	// wasteful even at test sizes).
	step := n/16 + 1
	for i := 0; i < n; i += step {
		for j := 0; j < n; j += step {
			var want float64
			for k := 0; k < n; k++ {
				want += dec(aB, i*n+k) * dec(bB, k*n+j)
			}
			if got := dec(cB, i*n+j); got != want {
				return fmt.Errorf("workloads: C[%d][%d] = %v, want %v", i, j, got, want)
			}
		}
	}
	return nil
}
