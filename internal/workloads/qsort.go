package workloads

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"nvmalloc/internal/core"
	"nvmalloc/internal/mpi"
	"nvmalloc/internal/sim"
	"nvmalloc/internal/simtime"
)

// SortParams configures one parallel-quicksort run (Table VI).
type SortParams struct {
	// TotalBytes is the dataset size (int64 elements).
	TotalBytes int64
	// DRAMShare is the fraction of each rank's partition held in DRAM; the
	// remainder lives on the NVM store via ssdmalloc. The paper's
	// L-SSD(8:16:16) loads 100 of 200 GB in DRAM (0.5); R-SSD(8:8:8)
	// loads 50 of 200 GB (0.25).
	DRAMShare float64
	// TwoPass runs the DRAM-only out-of-core baseline: the dataset is
	// split in two halves, each sorted in its own pass with interim runs
	// staged on the PFS, then merged through the PFS (the program change
	// the paper had to make for DRAM(8:16:0)).
	TwoPass bool
	// ScratchBytes is the in-DRAM sorting granule of the out-of-core local
	// quicksort.
	ScratchBytes int64
	// BlockBytes is the exchange streaming granule.
	BlockBytes int64
	Verify     bool
	Seed       uint64
}

// SortPhases breaks one sample-sort pass down.
type SortPhases struct {
	LoadInput time.Duration
	LocalSort time.Duration
	Splitters time.Duration
	Exchange  time.Duration // streaming exchange + P-way merge + output write
}

// SortResult reports one run.
type SortResult struct {
	Params   SortParams
	Config   string
	Elapsed  time.Duration
	Passes   int
	Verified bool
	PFSBytes int64
	// Phases reports the last pass's breakdown; MergeTime is the two-pass
	// baseline's PFS merge.
	Phases    SortPhases
	MergeTime time.Duration
}

// RunSort executes the parallel quicksort on machine m.
func RunSort(m *sim.Machine, prm SortParams) (SortResult, error) {
	if prm.ScratchBytes == 0 {
		// A generous in-DRAM sorting granule keeps the out-of-core
		// quicksort's recursion shallow: most partitions hit the base case
		// after one pass, so the NVM-resident half streams through the
		// store only ~2x.
		prm.ScratchBytes = 512 << 10
	}
	if prm.BlockBytes == 0 {
		prm.BlockBytes = 64 << 10
	}
	cfg := m.Cfg
	res := SortResult{Params: prm, Config: cfg.String(), Passes: 1}
	if prm.TwoPass {
		res.Passes = 2
	}
	elems := prm.TotalBytes / 8
	if elems%int64(cfg.Ranks()) != 0 {
		return res, fmt.Errorf("workloads: %d elements not divisible by %d ranks", elems, cfg.Ranks())
	}

	// Feasibility: a single-pass DRAM-only sort must fit the aggregate
	// memory; this is what forces the two-pass baseline.
	if !prm.TwoPass {
		dramPerNode := int64(float64(prm.TotalBytes)*prm.DRAMShare) / int64(cfg.ComputeNodes)
		if dramPerNode > m.Prof.AvailableDRAM() {
			return res, fmt.Errorf("workloads: %s infeasible: %d B of DRAM-resident data per node, %d available",
				cfg, dramPerNode, m.Prof.AvailableDRAM())
		}
	}

	// The unsorted input pre-exists on the PFS.
	input := genInt64s(elems, prm.Seed)
	m.PFS.Preload("sort/input", input)

	start := m.Eng.Now()
	pfsBefore := m.PFS.Stats()
	var err error
	if prm.TwoPass {
		err = runSortTwoPass(m, prm, &res)
	} else {
		err = runSortPass(m, prm, "sort/input", 0, elems, "sort/output", &res.Phases)
	}
	if err != nil {
		return res, err
	}
	res.Elapsed = m.Eng.Now().Sub(start)
	pfsAfter := m.PFS.Stats()
	res.PFSBytes = (pfsAfter.BytesRead - pfsBefore.BytesRead) + (pfsAfter.BytesWritten - pfsBefore.BytesWritten)

	if prm.Verify {
		out, err := m.PFS.Snapshot("sort/output")
		if err != nil {
			return res, err
		}
		if err := verifySorted(input, out); err != nil {
			return res, err
		}
		res.Verified = true
	}
	return res, nil
}

// runSortTwoPass is the DRAM(8:16:0) baseline: sort each half into a PFS
// run, then merge the runs through a single PFS stream.
func runSortTwoPass(m *sim.Machine, prm SortParams, res *SortResult) error {
	elems := prm.TotalBytes / 8
	half := elems / 2
	if err := runSortPass(m, prm, "sort/input", 0, half, "sort/run1", &res.Phases); err != nil {
		return err
	}
	if err := runSortPass(m, prm, "sort/input", half, elems-half, "sort/run2", &res.Phases); err != nil {
		return err
	}
	// Merge pass: the master streams both runs from the PFS and writes the
	// merged output back — the single-client staging that makes this mode
	// pay (Table VI).
	var mergeErr error
	mergeStart := m.Eng.Now()
	m.Eng.Go("merge", func(p *simtime.Proc) {
		mergeErr = mergeRuns(m, p, "sort/run1", "sort/run2", "sort/output", prm.BlockBytes)
	})
	m.Eng.Run()
	res.MergeTime = m.Eng.Now().Sub(mergeStart)
	return mergeErr
}

// runSortPass sample-sorts elems elements starting at inputOff of input
// into output: local out-of-core quicksort, splitter selection, and a
// streaming exchange with P-way merges at the receivers.
func runSortPass(m *sim.Machine, prm SortParams, input string, inputOff, elems int64, output string, phases *SortPhases) error {
	cfg := m.Cfg
	P := cfg.Ranks()
	per := elems / int64(P)
	comm := mpi.New(m.Eng, m.Cluster.Net, cfg)
	var runErr error

	// Cross-rank coordination state (the engine serializes procs, so plain
	// shared slices are safe).
	counts := make([][]int64, P) // counts[src][dst]
	offsets := make([]int64, P)  // output offset per destination bucket
	var marks []simtime.Time
	mark := func(p *simtime.Proc, rank int) {
		comm.Barrier(p, rank)
		if rank == 0 {
			marks = append(marks, p.Now())
		}
	}

	mpi.RunRanks(m.Eng, cfg, func(p *simtime.Proc, rank int) {
		c := m.NewClient(rank)
		fail := func(e error) {
			if runErr == nil {
				runErr = fmt.Errorf("rank %d: %w", rank, e)
			}
		}
		mark(p, rank) // t0
		part, err := allocPartition(p, c, prm, rank, per*8)
		if err != nil {
			fail(err)
			return
		}
		// Load my slice of the input.
		if err := pfsToBuffer(m, p, input, (inputOff+int64(rank)*per)*8, part, prm.BlockBytes); err != nil {
			fail(err)
			return
		}
		mark(p, rank) // input loaded
		// Local out-of-core quicksort.
		if err := quicksortBuffer(p, c, part, 0, per, prm.ScratchBytes); err != nil {
			fail(err)
			return
		}
		mark(p, rank) // locally sorted
		// Splitters: every rank contributes P-1 local quantiles; the
		// master merges them and broadcasts the global splitters.
		v := core.Int64s(part)
		locals := make([]int64, 0, P-1)
		for q := 1; q < P; q++ {
			x, err := v.Load(p, per*int64(q)/int64(P))
			if err != nil {
				fail(err)
				return
			}
			locals = append(locals, x)
		}
		all := comm.Gatherv(p, rank, 0, int64sToBytes(locals))
		var splitters []int64
		if rank == 0 {
			var pool []int64
			for _, b := range all {
				pool = append(pool, bytesToInt64s(b)...)
			}
			sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
			splitters = make([]int64, P-1)
			for q := 1; q < P; q++ {
				splitters[q-1] = pool[len(pool)*q/P]
			}
			comm.Bcast(p, rank, 0, int64sToBytes(splitters))
		} else {
			splitters = bytesToInt64s(comm.Bcast(p, rank, 0, nil))
		}
		// Per-destination ranges in my sorted partition (binary search).
		bounds := make([]int64, P+1)
		bounds[P] = per
		for d := 1; d < P; d++ {
			b, err := lowerBound(p, v, per, splitters[d-1])
			if err != nil {
				fail(err)
				return
			}
			bounds[d] = b
		}
		myCounts := make([]int64, P)
		for d := 0; d < P; d++ {
			myCounts[d] = bounds[d+1] - bounds[d]
		}
		counts[rank] = myCounts
		mark(p, rank) // splitters agreed
		// Master computes bucket output offsets.
		if rank == 0 {
			var off int64
			for d := 0; d < P; d++ {
				offsets[d] = off
				for s := 0; s < P; s++ {
					off += counts[s][d]
				}
			}
			m.PFS.Create(p, output)
		}
		comm.Barrier(p, rank)

		// Exchange: a sender subproc streams my ranges to every
		// destination while this proc merges the P incoming streams and
		// writes my bucket to the PFS.
		sendDone := &simtime.WaitGroup{}
		sendDone.Add(1)
		sender := m.Eng.Go(fmt.Sprintf("sort-send r%d", rank), func(sp *simtime.Proc) {
			blockElems := prm.BlockBytes / 8
			buf := make([]int64, blockElems)
			for d := 0; d < P; d++ {
				for i := bounds[d]; i < bounds[d+1]; i += blockElems {
					n := min64(blockElems, bounds[d+1]-i)
					if err := v.LoadVec(sp, i, buf[:n]); err != nil {
						fail(err)
						return
					}
					comm.Send(sp, rank, d, 1000, int64sToBytes(buf[:n]))
				}
			}
		})
		sender.OnDone(func() { sendDone.Done(sender) })

		if err := mergeIncoming(m, p, comm, rank, counts, offsets[rank], output, prm.BlockBytes); err != nil {
			fail(err)
			return
		}
		sendDone.Wait(p)
		mark(p, rank) // exchange + output done
		part.Free(p)
	})
	m.Eng.Run()
	if runErr == nil && len(marks) == 5 && phases != nil {
		phases.LoadInput = marks[1].Sub(marks[0])
		phases.LocalSort = marks[2].Sub(marks[1])
		phases.Splitters = marks[3].Sub(marks[2])
		phases.Exchange = marks[4].Sub(marks[3])
	}
	return runErr
}

// allocPartition builds one rank's partition buffer: a DRAM share and an
// NVM share concatenated.
func allocPartition(p *simtime.Proc, c *core.Client, prm SortParams, rank int, size int64) (core.Buffer, error) {
	dram := int64(float64(size) * prm.DRAMShare)
	dram -= dram % 8
	if dram >= size || prm.DRAMShare >= 1 {
		return core.NewDRAM(c.Node(), fmt.Sprintf("sort.r%d", rank), size)
	}
	d, err := core.NewDRAM(c.Node(), fmt.Sprintf("sort.dram.r%d", rank), dram)
	if err != nil {
		return nil, err
	}
	nv, err := c.Malloc(p, size-dram, core.WithName(fmt.Sprintf("sort.nvm.r%d", rank)))
	if err != nil {
		return nil, err
	}
	return core.Concat(fmt.Sprintf("sort.r%d", rank), d, nv), nil
}

// pfsToBuffer streams a PFS range into a buffer.
func pfsToBuffer(m *sim.Machine, p *simtime.Proc, name string, off int64, dst core.Buffer, blockBytes int64) error {
	buf := make([]byte, blockBytes)
	for o := int64(0); o < dst.Size(); o += blockBytes {
		n := min64(blockBytes, dst.Size()-o)
		if err := m.PFS.ReadAt(p, name, off+o, buf[:n]); err != nil {
			return err
		}
		if err := dst.WriteAt(p, o, buf[:n]); err != nil {
			return err
		}
	}
	return nil
}

// mergeIncoming P-way-merges the incoming sorted streams for this rank's
// bucket and writes the result to the PFS at the bucket's offset.
func mergeIncoming(m *sim.Machine, p *simtime.Proc, comm *mpi.Comm, rank int, counts [][]int64, outOff int64, output string, blockBytes int64) error {
	P := comm.Ranks()
	blockElems := blockBytes / 8
	srcs := make([]*mergeSrc, 0, P)
	for s := 0; s < P; s++ {
		if counts[s][rank] == 0 {
			continue
		}
		srcs = append(srcs, &mergeSrc{src: s, remaining: counts[s][rank]})
	}
	h := &mergeHeap{}
	for _, ms := range srcs {
		if err := ms.refill(p, comm, rank); err != nil {
			return err
		}
		heap.Push(h, ms)
	}
	out := make([]int64, 0, blockElems)
	written := outOff * 8
	flush := func() error {
		if len(out) == 0 {
			return nil
		}
		if err := m.PFS.WriteAt(p, output, written, int64sToBytes(out)); err != nil {
			return err
		}
		written += int64(len(out) * 8)
		out = out[:0]
		return nil
	}
	node := m.Node(rank)
	for h.Len() > 0 {
		ms := (*h)[0]
		out = append(out, ms.head())
		if err := ms.advance(p, comm, rank); err != nil {
			return err
		}
		if ms.done() {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
		if int64(len(out)) == blockElems {
			node.Compute(p, 2*float64(len(out))*math.Log2(float64(len(srcs)+1)))
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// mergeSrc is one incoming stream of the P-way merge.
type mergeSrc struct {
	src       int
	remaining int64
	block     []int64
	pos       int
}

func (ms *mergeSrc) refill(p *simtime.Proc, comm *mpi.Comm, rank int) error {
	ms.block = bytesToInt64s(comm.Recv(p, ms.src, rank, 1000))
	ms.pos = 0
	if len(ms.block) == 0 {
		return fmt.Errorf("workloads: empty exchange block from rank %d", ms.src)
	}
	return nil
}

func (ms *mergeSrc) head() int64 { return ms.block[ms.pos] }
func (ms *mergeSrc) done() bool  { return ms.remaining == 0 }

func (ms *mergeSrc) advance(p *simtime.Proc, comm *mpi.Comm, rank int) error {
	ms.pos++
	ms.remaining--
	if ms.remaining > 0 && ms.pos == len(ms.block) {
		return ms.refill(p, comm, rank)
	}
	return nil
}

type mergeHeap []*mergeSrc

func (h mergeHeap) Len() int           { return len(h) }
func (h mergeHeap) Less(i, j int) bool { return h[i].head() < h[j].head() }
func (h mergeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)        { *h = append(*h, x.(*mergeSrc)) }
func (h *mergeHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// mergeRuns streams two sorted PFS runs into a merged output through a
// single client (the master).
func mergeRuns(m *sim.Machine, p *simtime.Proc, run1, run2, output string, blockBytes int64) error {
	m.PFS.Create(p, output)
	s1, err := m.PFS.Size(run1)
	if err != nil {
		return err
	}
	s2, err := m.PFS.Size(run2)
	if err != nil {
		return err
	}
	r1 := &runReader{m: m, p: p, name: run1, size: s1, block: blockBytes}
	r2 := &runReader{m: m, p: p, name: run2, size: s2, block: blockBytes}
	if err := r1.refill(); err != nil {
		return err
	}
	if err := r2.refill(); err != nil {
		return err
	}
	out := make([]int64, 0, blockBytes/8)
	var written int64
	node := m.Node(0)
	flush := func() error {
		if len(out) == 0 {
			return nil
		}
		node.Compute(p, 2*float64(len(out)))
		if err := m.PFS.WriteAt(p, output, written, int64sToBytes(out)); err != nil {
			return err
		}
		written += int64(len(out) * 8)
		out = out[:0]
		return nil
	}
	for !r1.done() || !r2.done() {
		var v int64
		switch {
		case r1.done():
			v = r2.take()
		case r2.done():
			v = r1.take()
		case r1.head() <= r2.head():
			v = r1.take()
		default:
			v = r2.take()
		}
		out = append(out, v)
		if int64(len(out)) == blockBytes/8 {
			if err := flush(); err != nil {
				return err
			}
		}
		if err := r1.err; err != nil {
			return err
		}
		if err := r2.err; err != nil {
			return err
		}
	}
	return flush()
}

// runReader streams one sorted run from the PFS.
type runReader struct {
	m     *sim.Machine
	p     *simtime.Proc
	name  string
	size  int64
	block int64
	off   int64
	buf   []int64
	pos   int
	err   error
}

func (r *runReader) refill() error {
	n := min64(r.block, r.size-r.off)
	if n <= 0 {
		r.buf = nil
		r.pos = 0
		return nil
	}
	raw := make([]byte, n)
	if err := r.m.PFS.ReadAt(r.p, r.name, r.off, raw); err != nil {
		return err
	}
	r.off += n
	r.buf = bytesToInt64s(raw)
	r.pos = 0
	return nil
}

func (r *runReader) done() bool  { return r.pos >= len(r.buf) }
func (r *runReader) head() int64 { return r.buf[r.pos] }

func (r *runReader) take() int64 {
	v := r.buf[r.pos]
	r.pos++
	if r.pos >= len(r.buf) && r.off < r.size {
		if err := r.refill(); err != nil {
			r.err = err
		}
	}
	return v
}

// quicksortBuffer sorts elements [lo, lo+n) of an arbitrary Buffer with an
// out-of-core quicksort: segments that fit the DRAM scratch are loaded,
// sorted in memory, and stored back; larger segments are partitioned
// in place with two block cursors (sequential access — the pattern that
// keeps the NVM cache effective).
func quicksortBuffer(p *simtime.Proc, c *core.Client, b core.Buffer, lo, n, scratchBytes int64) error {
	v := core.Int64s(b)
	scratchElems := scratchBytes / 8
	node := c.Node()
	var rec func(lo, hi int64) error // [lo, hi)
	rec = func(lo, hi int64) error {
		n := hi - lo
		if n <= 1 {
			return nil
		}
		if n <= scratchElems {
			s := make([]int64, n)
			if err := v.LoadVec(p, lo, s); err != nil {
				return err
			}
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			node.Compute(p, 2*float64(n)*math.Log2(float64(n)+1))
			return v.StoreVec(p, lo, s)
		}
		// Median-of-three pivot (a value present in the segment, which the
		// Hoare loops below rely on).
		a, err := v.Load(p, lo)
		if err != nil {
			return err
		}
		bmid, err := v.Load(p, lo+n/2)
		if err != nil {
			return err
		}
		cend, err := v.Load(p, hi-1)
		if err != nil {
			return err
		}
		pivot := median3(a, bmid, cend)
		// Hoare partition over a two-slot block cache: the scans are
		// sequential (forward from lo, backward from hi), which is exactly
		// the SSD-friendly pattern the paper credits for quicksort working
		// out-of-core. One shared cache keeps the converging cursors
		// coherent when they meet inside the same block.
		bc := newBlkCache(v, scratchElems/4)
		i, j := lo-1, hi
		for {
			for {
				i++
				x, err := bc.load(p, i)
				if err != nil {
					return err
				}
				if x >= pivot {
					break
				}
			}
			for {
				j--
				x, err := bc.load(p, j)
				if err != nil {
					return err
				}
				if x <= pivot {
					break
				}
			}
			if i >= j {
				break
			}
			xi, err := bc.load(p, i)
			if err != nil {
				return err
			}
			xj, err := bc.load(p, j)
			if err != nil {
				return err
			}
			if err := bc.store(p, i, xj); err != nil {
				return err
			}
			if err := bc.store(p, j, xi); err != nil {
				return err
			}
		}
		if err := bc.flushAll(p); err != nil {
			return err
		}
		node.Compute(p, 2*float64(n))
		if err := rec(lo, j+1); err != nil {
			return err
		}
		return rec(j+1, hi)
	}
	return rec(lo, lo+n)
}

// blkCache is a two-slot write-back block cache over an Int64View: one
// slot tracks the forward partition cursor, the other the backward one,
// and when the cursors converge into a single block they share a slot, so
// no update is ever lost.
type blkCache struct {
	v     *core.Int64View
	size  int64
	slots [2]*blkSlot
	clock int
}

type blkSlot struct {
	base  int64
	buf   []int64
	dirty bool
	used  int
}

func newBlkCache(v *core.Int64View, size int64) *blkCache {
	if size < 64 {
		size = 64
	}
	return &blkCache{v: v, size: size}
}

func (bc *blkCache) slot(p *simtime.Proc, i int64) (*blkSlot, error) {
	base := i - i%bc.size
	bc.clock++
	var victim *blkSlot
	for _, s := range bc.slots {
		if s != nil && s.base == base {
			s.used = bc.clock
			return s, nil
		}
	}
	for idx, s := range bc.slots {
		if s == nil {
			victim = &blkSlot{}
			bc.slots[idx] = victim
			break
		}
		if victim == nil || s.used < victim.used {
			victim = s
		}
	}
	if victim.buf != nil && victim.dirty {
		if err := bc.v.StoreVec(p, victim.base, victim.buf); err != nil {
			return nil, err
		}
	}
	end := base + bc.size
	if end > bc.v.Len() {
		end = bc.v.Len()
	}
	victim.buf = make([]int64, end-base)
	if err := bc.v.LoadVec(p, base, victim.buf); err != nil {
		return nil, err
	}
	victim.base = base
	victim.dirty = false
	victim.used = bc.clock
	return victim, nil
}

func (bc *blkCache) load(p *simtime.Proc, i int64) (int64, error) {
	s, err := bc.slot(p, i)
	if err != nil {
		return 0, err
	}
	return s.buf[i-s.base], nil
}

func (bc *blkCache) store(p *simtime.Proc, i int64, x int64) error {
	s, err := bc.slot(p, i)
	if err != nil {
		return err
	}
	s.buf[i-s.base] = x
	s.dirty = true
	return nil
}

func (bc *blkCache) flushAll(p *simtime.Proc) error {
	for _, s := range bc.slots {
		if s != nil && s.dirty {
			if err := bc.v.StoreVec(p, s.base, s.buf); err != nil {
				return err
			}
			s.dirty = false
		}
	}
	return nil
}

func median3(a, b, c int64) int64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// lowerBound returns the first index in the sorted view whose value is >=
// x.
func lowerBound(p *simtime.Proc, v *core.Int64View, n int64, x int64) (int64, error) {
	lo, hi := int64(0), n
	for lo < hi {
		mid := (lo + hi) / 2
		val, err := v.Load(p, mid)
		if err != nil {
			return 0, err
		}
		if val < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// genInt64s produces a deterministic pseudo-random dataset.
func genInt64s(n int64, seed uint64) []byte {
	out := make([]byte, n*8)
	x := seed*2862933555777941757 + 3037000493
	for i := int64(0); i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		binary.LittleEndian.PutUint64(out[i*8:], x)
	}
	return out
}

// verifySorted checks that out is a sorted permutation of in (count, sum
// and xor fingerprints plus full order check).
func verifySorted(in, out []byte) error {
	if len(in) != len(out) {
		return fmt.Errorf("workloads: sort output %d bytes, want %d", len(out), len(in))
	}
	var sumIn, sumOut, xorIn, xorOut uint64
	var prev int64 = math.MinInt64
	for i := 0; i+8 <= len(in); i += 8 {
		a := binary.LittleEndian.Uint64(in[i:])
		b := binary.LittleEndian.Uint64(out[i:])
		sumIn += a
		sumOut += b
		xorIn ^= a
		xorOut ^= b
		if v := int64(b); v < prev {
			return fmt.Errorf("workloads: output not sorted at element %d", i/8)
		} else {
			prev = v
		}
	}
	if sumIn != sumOut || xorIn != xorOut {
		return fmt.Errorf("workloads: output is not a permutation of the input")
	}
	return nil
}

func int64sToBytes(s []int64) []byte {
	out := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

func bytesToInt64s(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}
