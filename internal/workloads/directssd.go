package workloads

import (
	"container/list"
	"fmt"

	"nvmalloc/internal/cluster"
	"nvmalloc/internal/core"
	"nvmalloc/internal/simtime"
	"nvmalloc/internal/store"
)

// DirectSSD models the paper's "without NVMalloc" baseline (Table III): a
// file on the node-local SSD accessed through plain mmap over the local
// file system. The kernel page cache faults 4 KB pages synchronously with
// a modest sequential read-ahead window, and dirty pages are written back
// in small batches — no 256 KB chunking, no FUSE-level cache, no
// asynchronous prefetch. The data lives in memory (it is a simulation);
// only the device timing differs from NVMalloc's path.
type DirectSSD struct {
	node     *cluster.Node
	name     string
	data     []byte
	pageSize int64

	pages    map[int64]*dpage
	lru      *list.List
	capPages int
	lastMiss int64
	// readAheadPages is the kernel's sequential read-ahead window.
	readAheadPages int
	// writeBatch is how many dirty pages accumulate before a writeback.
	writeBatch int
	dirty      []int64

	s core.AppStats
}

type dpage struct {
	idx int64
	lru *list.Element
}

// NewDirectSSD creates a direct-mmap file of size bytes on the node's
// local SSD. cacheBudget is the page-cache memory granted to the mapping —
// for a fair comparison, callers give it the same budget NVMalloc's page
// cache + FUSE cache consume.
func NewDirectSSD(node *cluster.Node, name string, size, pageSize, cacheBudget int64) *DirectSSD {
	capPages := int(cacheBudget / pageSize)
	if capPages < 8 {
		capPages = 8
	}
	return &DirectSSD{
		node:           node,
		name:           name,
		data:           make([]byte, size),
		pageSize:       pageSize,
		pages:          make(map[int64]*dpage),
		lru:            list.New(),
		capPages:       capPages,
		lastMiss:       -1 << 30,
		readAheadPages: 16, // ~ the kernel's default 128KB window, scaled
		writeBatch:     32,
	}
}

// Name implements core.Buffer.
func (d *DirectSSD) Name() string { return d.name }

// Size implements core.Buffer.
func (d *DirectSSD) Size() int64 { return int64(len(d.data)) }

// touch faults the page holding byte offset off if absent, charging SSD
// time, and returns after the page is resident.
func (d *DirectSSD) touch(p *simtime.Proc, idx int64, forWrite bool) {
	if pg, ok := d.pages[idx]; ok {
		d.lru.MoveToFront(pg.lru)
		return
	}
	// Fault: synchronous read of the page, plus the kernel's sequential
	// read-ahead window when the access pattern looks sequential (the
	// next fault after a read-ahead batch lands at the end of the window,
	// so anything within one window of the last miss counts).
	n := int64(1)
	if idx > d.lastMiss && idx <= d.lastMiss+int64(d.readAheadPages) {
		n = int64(d.readAheadPages)
	}
	d.lastMiss = idx
	last := (int64(len(d.data)) + d.pageSize - 1) / d.pageSize
	if idx+n > last {
		n = last - idx
		if n < 1 {
			n = 1
		}
	}
	d.node.SSD.Read(p, n*d.pageSize)
	for k := int64(0); k < n; k++ {
		if _, ok := d.pages[idx+k]; ok {
			continue
		}
		d.evictIfFull(p)
		pg := &dpage{idx: idx + k}
		pg.lru = d.lru.PushFront(pg)
		d.pages[idx+k] = pg
	}
}

func (d *DirectSSD) evictIfFull(p *simtime.Proc) {
	for len(d.pages) >= d.capPages {
		el := d.lru.Back()
		pg := el.Value.(*dpage)
		delete(d.pages, pg.idx)
		d.lru.Remove(el)
	}
}

// flushDirty writes accumulated dirty pages as one vectored request.
func (d *DirectSSD) flushDirty(p *simtime.Proc) {
	if len(d.dirty) == 0 {
		return
	}
	sizes := make([]int64, len(d.dirty))
	for i := range sizes {
		sizes[i] = d.pageSize
	}
	d.node.SSD.WriteVec(p, sizes)
	d.dirty = d.dirty[:0]
}

// ReadAt implements core.Buffer.
func (d *DirectSSD) ReadAt(ctx store.Ctx, off int64, buf []byte) error {
	p := cluster.ProcOf(ctx)
	if off < 0 || off+int64(len(buf)) > int64(len(d.data)) {
		return fmt.Errorf("workloads: direct-ssd read [%d,%d) out of range", off, off+int64(len(buf)))
	}
	for first, lastb := off/d.pageSize, (off+int64(len(buf))-1)/d.pageSize; first <= lastb; first++ {
		d.touch(p, first, false)
	}
	copy(buf, d.data[off:])
	d.s.Reads++
	d.s.ReadBytes += int64(len(buf))
	return nil
}

// WriteAt implements core.Buffer.
func (d *DirectSSD) WriteAt(ctx store.Ctx, off int64, data []byte) error {
	p := cluster.ProcOf(ctx)
	if off < 0 || off+int64(len(data)) > int64(len(d.data)) {
		return fmt.Errorf("workloads: direct-ssd write [%d,%d) out of range", off, off+int64(len(data)))
	}
	for first, lastb := off/d.pageSize, (off+int64(len(data))-1)/d.pageSize; first <= lastb; first++ {
		d.touch(p, first, true)
		d.dirty = append(d.dirty, first)
		if len(d.dirty) >= d.writeBatch {
			d.flushDirty(p)
		}
	}
	copy(d.data[off:], data)
	d.s.Writes++
	d.s.WriteBytes += int64(len(data))
	return nil
}

// Sync implements core.Buffer.
func (d *DirectSSD) Sync(ctx store.Ctx) error {
	p := cluster.ProcOf(ctx)
	d.flushDirty(p)
	return nil
}

// Free implements core.Buffer.
func (d *DirectSSD) Free(ctx store.Ctx) error {
	d.data = nil
	d.pages = nil
	return nil
}

// AppStats implements core.Buffer.
func (d *DirectSSD) AppStats() core.AppStats { return d.s }
