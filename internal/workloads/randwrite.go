package workloads

import (
	"time"

	"nvmalloc/internal/core"
	"nvmalloc/internal/sim"
	"nvmalloc/internal/simtime"
)

// RandWriteParams configures the Table VII synthetic: many small writes to
// random addresses within an NVM-resident region, the adversarial case for
// chunk-granularity storage.
type RandWriteParams struct {
	RegionBytes int64
	Writes      int
	WriteSize   int // bytes per write (paper: byte-by-byte)
	Seed        uint64
	Verify      bool
}

// RandWriteResult reports one run; the FUSE/SSD volumes are the two rows
// of Table VII.
type RandWriteResult struct {
	Params         RandWriteParams
	Elapsed        time.Duration
	FuseWriteBytes int64 // data written to FUSE (page-granular)
	SSDWriteBytes  int64 // data written to the SSD store
	Verified       bool
}

// RunRandWrite executes the synthetic on machine m (whose profile decides
// whether the dirty-page optimization is on: Profile.WriteFullChunks).
func RunRandWrite(m *sim.Machine, prm RandWriteParams) (RandWriteResult, error) {
	if prm.WriteSize == 0 {
		prm.WriteSize = 1
	}
	res := RandWriteResult{Params: prm}
	var runErr error
	m.Eng.Go("randwrite", func(p *simtime.Proc) {
		c := m.NewClient(0)
		r, err := c.Malloc(p, prm.RegionBytes, core.WithName("randwrite"))
		if err != nil {
			runErr = err
			return
		}
		// Populate the region so every chunk exists (setup, then counters
		// reset so only the measured writes are reported).
		blk := make([]byte, 64<<10)
		for off := int64(0); off < prm.RegionBytes; off += int64(len(blk)) {
			n := min64(int64(len(blk)), prm.RegionBytes-off)
			if err := r.WriteAt(p, off, blk[:n]); err != nil {
				runErr = err
				return
			}
		}
		if err := r.Sync(p); err != nil {
			runErr = err
			return
		}
		m.ResetCacheStats()
		start := p.Now()

		x := prm.Seed | 1
		data := make([]byte, prm.WriteSize)
		lastVals := make(map[int64]byte)
		for i := 0; i < prm.Writes; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			off := int64(x % uint64(prm.RegionBytes-int64(prm.WriteSize)))
			data[0] = byte(x >> 8)
			if err := r.WriteAt(p, off, data); err != nil {
				runErr = err
				return
			}
			if prm.Verify && i >= prm.Writes-16 {
				lastVals[off] = data[0]
			}
		}
		if err := r.Sync(p); err != nil {
			runErr = err
			return
		}
		res.Elapsed = p.Now().Sub(start).Round(0)
		if prm.Verify {
			// Re-read the final writes through a cold cache (earlier ones
			// may have been overwritten by later random writes).
			c.ChunkCache().Drop(p, "randwrite")
			ok := true
			got := make([]byte, 1)
			for off, val := range lastVals {
				if err := r.ReadAt(p, off, got); err != nil {
					runErr = err
					return
				}
				if got[0] != val {
					ok = false
				}
			}
			res.Verified = ok
		}
	})
	m.Eng.Run()
	s := m.CacheStats()
	res.FuseWriteBytes = s.FuseWriteBytes
	res.SSDWriteBytes = s.SSDWriteBytes
	return res, runErr
}
