package workloads

import (
	"fmt"
	"time"

	"nvmalloc/internal/core"
	"nvmalloc/internal/sim"
	"nvmalloc/internal/simtime"
)

// CkptParams configures the checkpointing study (§IV-B-5): an application
// that holds DRAM state plus an NVM variable, computes, dirties a fraction
// of the variable, and checkpoints every timestep.
type CkptParams struct {
	DRAMBytes int64
	NVMBytes  int64
	Timesteps int
	// DirtyFraction is the fraction of the NVM variable's chunks modified
	// between consecutive checkpoints.
	DirtyFraction float64
	// NaiveCopy disables chunk linking: each checkpoint copies the NVM
	// variable's content into the checkpoint file (the baseline that
	// §III-E's design avoids).
	NaiveCopy bool
	// DrainToPFS additionally streams each checkpoint to the PFS in the
	// background (the staging pattern).
	DrainToPFS bool
	Verify     bool
}

// CkptStep reports one checkpoint timestep.
type CkptStep struct {
	Step          int
	Elapsed       time.Duration
	SSDWriteBytes int64 // store writes caused by this checkpoint
	NewChunks     int   // chunks allocated by this checkpoint
}

// CkptResult reports the full run.
type CkptResult struct {
	Params   CkptParams
	Steps    []CkptStep
	Total    time.Duration
	Verified bool
}

// RunCheckpoint executes the checkpoint scenario on machine m.
func RunCheckpoint(m *sim.Machine, prm CkptParams) (CkptResult, error) {
	res := CkptResult{Params: prm}
	var runErr error
	m.Eng.Go("ckpt", func(p *simtime.Proc) {
		c := m.NewClient(0)
		nv, err := c.Malloc(p, prm.NVMBytes, core.WithName("ckpt.var"))
		if err != nil {
			runErr = err
			return
		}
		dram := make([]byte, prm.DRAMBytes)
		for i := range dram {
			dram[i] = byte(i)
		}
		// Initialize the variable.
		blk := make([]byte, 64<<10)
		for off := int64(0); off < prm.NVMBytes; off += int64(len(blk)) {
			n := min64(int64(len(blk)), prm.NVMBytes-off)
			for i := int64(0); i < n; i++ {
				blk[i] = byte(off + i)
			}
			if err := nv.WriteAt(p, off, blk[:n]); err != nil {
				runErr = err
				return
			}
		}
		if err := nv.Sync(p); err != nil {
			runErr = err
			return
		}
		start := p.Now()
		chunkSize := m.Prof.ChunkSize
		nChunks := int((prm.NVMBytes + chunkSize - 1) / chunkSize)
		var lastInfo core.CheckpointInfo
		for t := 0; t < prm.Timesteps; t++ {
			// Compute phase: dirty a fraction of the variable's chunks.
			dirty := int(float64(nChunks) * prm.DirtyFraction)
			for k := 0; k < dirty; k++ {
				idx := (t*7 + k*11) % nChunks
				off := int64(idx) * chunkSize
				stamp := []byte{byte(t), byte(k), 0xCC}
				if err := nv.WriteAt(p, off, stamp); err != nil {
					runErr = err
					return
				}
			}
			// Also mutate DRAM state.
			dram[t%len(dram)] = byte(t)

			name := fmt.Sprintf("ckpt.t%d", t)
			stepStart := p.Now()
			chunksBefore := m.Store.Mgr.TotalChunks()
			writesBefore := storeWrites(m)
			if prm.NaiveCopy {
				err = naiveCheckpoint(p, c, m, name, dram, nv)
			} else {
				lastInfo, err = c.Checkpoint(p, name, dram, nv)
			}
			if err != nil {
				runErr = err
				return
			}
			res.Steps = append(res.Steps, CkptStep{
				Step:          t,
				Elapsed:       p.Now().Sub(stepStart),
				SSDWriteBytes: storeWrites(m) - writesBefore,
				NewChunks:     m.Store.Mgr.TotalChunks() - chunksBefore,
			})
			if prm.DrainToPFS {
				wg, derr := m.DrainToPFS(c, name, "scratch/"+name)
				if derr != nil {
					runErr = derr
					return
				}
				if t == prm.Timesteps-1 {
					wg.Wait(p) // only the final drain gates completion
				}
			}
		}
		res.Total = p.Now().Sub(start)

		if prm.Verify && !prm.NaiveCopy {
			// Restart from the last checkpoint and check both DRAM state
			// and the variable.
			got := make([]byte, len(dram))
			if err := c.ReadCheckpointDRAM(p, lastInfo.Name, got); err != nil {
				runErr = err
				return
			}
			for i := range got {
				if got[i] != dram[i] {
					runErr = fmt.Errorf("workloads: restored DRAM byte %d = %d, want %d", i, got[i], dram[i])
					return
				}
			}
			r2, err := c.RestoreRegion(p, lastInfo.Name, lastInfo.Regions[0], "ckpt.var.restored")
			if err != nil {
				runErr = err
				return
			}
			a := make([]byte, prm.NVMBytes)
			b := make([]byte, prm.NVMBytes)
			if err := nv.ReadAt(p, 0, a); err != nil {
				runErr = err
				return
			}
			if err := r2.ReadAt(p, 0, b); err != nil {
				runErr = err
				return
			}
			for i := range a {
				if a[i] != b[i] {
					runErr = fmt.Errorf("workloads: restored variable differs at byte %d", i)
					return
				}
			}
			res.Verified = true
		}
	})
	m.Eng.Run()
	return res, runErr
}

// naiveCheckpoint copies the DRAM state AND the full variable content into
// the checkpoint file — what ssdcheckpoint's chunk linking avoids.
func naiveCheckpoint(p *simtime.Proc, c *core.Client, m *sim.Machine, name string, dram []byte, nv *core.Region) error {
	if err := nv.Sync(p); err != nil {
		return err
	}
	cc := c.ChunkCache()
	total := int64(len(dram)) + nv.Size()
	fi, err := cc.Store().Create(p, name, total)
	if err != nil {
		return err
	}
	cc.MarkFresh(p, fi)
	if err := cc.WriteRange(p, name, 0, dram); err != nil {
		return err
	}
	blk := make([]byte, 64<<10)
	for off := int64(0); off < nv.Size(); off += int64(len(blk)) {
		n := min64(int64(len(blk)), nv.Size()-off)
		if err := nv.ReadAt(p, off, blk[:n]); err != nil {
			return err
		}
		if err := cc.WriteRange(p, name, int64(len(dram))+off, blk[:n]); err != nil {
			return err
		}
	}
	return cc.Flush(p, name)
}

// storeWrites sums bytes written across all benefactors.
func storeWrites(m *sim.Machine) int64 {
	var total int64
	for _, id := range m.Store.Benefactors() {
		total += m.Store.Benefactor(id).Stats().BytesWritten
	}
	return total
}
