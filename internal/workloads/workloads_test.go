package workloads

import (
	"testing"

	"nvmalloc/internal/cluster"
	"nvmalloc/internal/manager"
	"nvmalloc/internal/sim"
	"nvmalloc/internal/simtime"
	"nvmalloc/internal/sysprof"
)

func testMachine(t *testing.T, cfg cluster.Config) *sim.Machine {
	t.Helper()
	m, err := sim.NewMachine(simtime.NewEngine(), sysprof.Bench(), cfg, manager.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func lssd(px, nx, bx int) cluster.Config {
	return cluster.Config{Mode: cluster.LocalSSD, ProcsPerNode: px, ComputeNodes: nx, Benefactors: bx}
}

func rssd(px, nx, bx int) cluster.Config {
	return cluster.Config{Mode: cluster.RemoteSSD, ProcsPerNode: px, ComputeNodes: nx, Benefactors: bx}
}

func dram(px, nx int) cluster.Config {
	return cluster.Config{Mode: cluster.DRAMOnly, ProcsPerNode: px, ComputeNodes: nx}
}

// ---------- STREAM ----------

func TestStreamDRAMVerifies(t *testing.T) {
	m := testMachine(t, dram(8, 1))
	res, err := RunStream(m, StreamParams{
		ArrayBytes: 512 << 10, Threads: 8, Iters: 2, Kernel: TRIAD,
		PlaceA: InDRAM, PlaceB: InDRAM, PlaceC: InDRAM, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("TRIAD result wrong")
	}
	if res.BandwidthMBps < 1000 {
		t.Fatalf("DRAM TRIAD bandwidth %.1f MB/s implausibly low", res.BandwidthMBps)
	}
}

func TestStreamAllKernelsAllPlacements(t *testing.T) {
	for _, k := range []StreamKernel{COPY, SCALE, ADD, TRIAD} {
		for _, pl := range []Placement{InDRAM, OnNVM, OnDirectSSD} {
			m := testMachine(t, lssd(8, 1, 1))
			res, err := RunStream(m, StreamParams{
				ArrayBytes: 256 << 10, Threads: 4, Iters: 2, Kernel: k,
				PlaceA: InDRAM, PlaceB: InDRAM, PlaceC: pl, Verify: true,
			})
			if err != nil {
				t.Fatalf("%v with C on %v: %v", k, pl, err)
			}
			if !res.Verified {
				t.Fatalf("%v with C on %v: wrong result", k, pl)
			}
		}
	}
}

func TestStreamNVMFarSlowerThanDRAM(t *testing.T) {
	run := func(pl Placement) float64 {
		m := testMachine(t, lssd(8, 1, 1))
		res, err := RunStream(m, StreamParams{
			ArrayBytes: 1 << 20, Threads: 8, Iters: 3, Kernel: TRIAD,
			PlaceA: pl, PlaceB: pl, PlaceC: pl,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.BandwidthMBps
	}
	dramBW := run(InDRAM)
	nvmBW := run(OnNVM)
	if dramBW/nvmBW < 10 {
		t.Fatalf("DRAM %.1f vs NVM %.1f MB/s: expected an order-of-magnitude gap (paper: 62x)", dramBW, nvmBW)
	}
}

// ---------- Matrix multiplication ----------

func TestMMVerifiesOnNVMSharedRowMajor(t *testing.T) {
	m := testMachine(t, lssd(2, 2, 2))
	res, err := RunMM(m, MMParams{
		N: 64, PlaceB: OnNVM, SharedB: true, Tile: 16,
		RealCompute: true, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("MM result wrong")
	}
	if res.Total <= 0 {
		t.Fatal("no time elapsed")
	}
	// At this tiny size B fits entirely in the FUSE cache, so no compute-
	// phase SSD reads are expected — but app and FUSE traffic must show.
	if res.AppBytesToB == 0 || res.FuseReadBytes == 0 {
		t.Fatalf("traffic counters empty: %+v", res)
	}
}

func TestMMVerifiesColumnMajorAndIndividual(t *testing.T) {
	for _, prm := range []MMParams{
		{N: 64, PlaceB: OnNVM, SharedB: false, Tile: 16, RealCompute: true, Verify: true},
		{N: 64, PlaceB: OnNVM, SharedB: true, ColumnMajorB: true, Tile: 16, RealCompute: true, Verify: true},
		{N: 64, PlaceB: InDRAM, Tile: 16, RealCompute: true, Verify: true},
	} {
		m := testMachine(t, lssd(2, 2, 2))
		res, err := RunMM(m, prm)
		if err != nil {
			t.Fatalf("%+v: %v", prm, err)
		}
		if !res.Verified {
			t.Fatalf("%+v: wrong result", prm)
		}
	}
}

func TestMMColumnMajorSlowerAndNoisier(t *testing.T) {
	// B must exceed the FUSE cache (1 MiB at bench scale) for the access
	// pattern to matter: N=512 gives a 2 MiB B.
	run := func(col bool) MMResult {
		m := testMachine(t, lssd(2, 2, 2))
		res, err := RunMM(m, MMParams{N: 512, PlaceB: OnNVM, SharedB: true, ColumnMajorB: col, Tile: 64})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	row, col := run(false), run(true)
	if col.Stages.Computing <= row.Stages.Computing {
		t.Fatalf("column-major compute %v should exceed row-major %v", col.Stages.Computing, row.Stages.Computing)
	}
	if col.FuseReadBytes < row.FuseReadBytes {
		t.Fatalf("column-major FUSE traffic %d below row-major %d", col.FuseReadBytes, row.FuseReadBytes)
	}
	// The chunk-level collapse: every kk sweep re-reads the whole file.
	if col.SSDReadBytes <= 2*row.SSDReadBytes {
		t.Fatalf("column-major SSD traffic %d should dwarf row-major %d", col.SSDReadBytes, row.SSDReadBytes)
	}
}

func TestMMDRAMInfeasibleAt8PerNode(t *testing.T) {
	// The Bench profile's node memory cannot hold a private B per rank at
	// 8 ranks/node for a 2GB-class (scaled: 8 MiB) matrix — the paper's
	// DRAM-only limitation.
	m := testMachine(t, dram(8, 16))
	_, err := RunMM(m, MMParams{N: 1024, PlaceB: InDRAM})
	if err == nil {
		t.Fatal("expected out-of-memory infeasibility")
	}
}

func TestMMRemoteBenefactorsWork(t *testing.T) {
	m := testMachine(t, rssd(2, 2, 2))
	res, err := RunMM(m, MMParams{N: 64, PlaceB: OnNVM, SharedB: true, Tile: 16, RealCompute: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("remote MM wrong")
	}
}

// ---------- Sort ----------

func TestSortHybridVerifies(t *testing.T) {
	m := testMachine(t, lssd(2, 2, 2))
	res, err := RunSort(m, SortParams{
		TotalBytes: 1 << 20, DRAMShare: 0.5, Verify: true, Seed: 42,
		ScratchBytes: 32 << 10, BlockBytes: 16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.Passes != 1 {
		t.Fatalf("hybrid sort: verified=%v passes=%d", res.Verified, res.Passes)
	}
}

func TestSortTwoPassVerifies(t *testing.T) {
	m := testMachine(t, dram(2, 2))
	res, err := RunSort(m, SortParams{
		TotalBytes: 1 << 20, DRAMShare: 1, TwoPass: true, Verify: true, Seed: 7,
		ScratchBytes: 32 << 10, BlockBytes: 16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.Passes != 2 {
		t.Fatalf("two-pass sort: verified=%v passes=%d", res.Verified, res.Passes)
	}
	// The staging runs must have moved through the PFS.
	if res.PFSBytes < 3<<20 {
		t.Fatalf("two-pass PFS traffic %d too low for staging", res.PFSBytes)
	}
}

func TestSortAllDRAMSinglePassVerifies(t *testing.T) {
	m := testMachine(t, dram(4, 4))
	res, err := RunSort(m, SortParams{
		TotalBytes: 1 << 20, DRAMShare: 1, Verify: true, Seed: 3,
		ScratchBytes: 32 << 10, BlockBytes: 16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("all-DRAM sort wrong")
	}
}

func TestSortInfeasibleWithoutNVM(t *testing.T) {
	m := testMachine(t, dram(8, 16))
	// 10x the aggregate available DRAM, single pass, all in DRAM.
	_, err := RunSort(m, SortParams{TotalBytes: 10 * 16 * m.Prof.AvailableDRAM(), DRAMShare: 1})
	if err == nil {
		t.Fatal("expected infeasibility")
	}
}

// ---------- Random writes ----------

func TestRandWriteVerifiesAndOptimizationHelps(t *testing.T) {
	run := func(full bool) RandWriteResult {
		prof := sysprof.Bench()
		prof.WriteFullChunks = full
		m, err := sim.NewMachine(simtime.NewEngine(), prof, lssd(1, 1, 1), manager.RoundRobin)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunRandWrite(m, RandWriteParams{
			RegionBytes: 2 << 20, Writes: 2000, WriteSize: 1, Seed: 99, Verify: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			t.Fatal("random writes lost data")
		}
		return res
	}
	opt, noOpt := run(false), run(true)
	if noOpt.SSDWriteBytes < 4*opt.SSDWriteBytes {
		t.Fatalf("without optimization SSD volume %d should dwarf optimized %d (paper: 19.3GB vs 504MB)",
			noOpt.SSDWriteBytes, opt.SSDWriteBytes)
	}
	if opt.FuseWriteBytes == 0 {
		t.Fatal("FUSE write counter empty")
	}
}

// ---------- Checkpointing ----------

func TestCheckpointScenario(t *testing.T) {
	m := testMachine(t, lssd(2, 2, 2))
	res, err := RunCheckpoint(m, CkptParams{
		DRAMBytes: 64 << 10, NVMBytes: 512 << 10, Timesteps: 4,
		DirtyFraction: 0.25, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("checkpoint restore wrong")
	}
	if len(res.Steps) != 4 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	// After the first checkpoint, later ones only pay for dirty chunks +
	// the DRAM dump: far fewer new chunks than the variable holds.
	varChunks := int((512 << 10) / m.Prof.ChunkSize)
	for _, s := range res.Steps[1:] {
		if s.NewChunks >= varChunks {
			t.Fatalf("step %d allocated %d chunks — incremental sharing broken", s.Step, s.NewChunks)
		}
	}
}

func TestCheckpointLinkedBeatsNaive(t *testing.T) {
	run := func(naive bool) CkptResult {
		m := testMachine(t, lssd(2, 2, 2))
		res, err := RunCheckpoint(m, CkptParams{
			DRAMBytes: 32 << 10, NVMBytes: 1 << 20, Timesteps: 3,
			DirtyFraction: 0.1, NaiveCopy: naive,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	linked, naive := run(false), run(true)
	var lb, nb int64
	for i := range linked.Steps {
		lb += linked.Steps[i].SSDWriteBytes
		nb += naive.Steps[i].SSDWriteBytes
	}
	if nb < 2*lb {
		t.Fatalf("naive checkpoint wrote %d, linked %d: linking should save most of the volume", nb, lb)
	}
	if naive.Total < linked.Total {
		t.Fatalf("naive total %v should exceed linked %v", naive.Total, linked.Total)
	}
}

func TestCheckpointWithDrain(t *testing.T) {
	m := testMachine(t, lssd(2, 2, 2))
	res, err := RunCheckpoint(m, CkptParams{
		DRAMBytes: 16 << 10, NVMBytes: 256 << 10, Timesteps: 2,
		DirtyFraction: 0.5, DrainToPFS: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	if !m.PFS.Exists("scratch/ckpt.t1") {
		t.Fatal("checkpoint not drained to PFS")
	}
}
