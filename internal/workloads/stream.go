// Package workloads implements the paper's evaluation applications against
// the NVMalloc library: the STREAM vector kernels (Fig. 2, Table III), MPI
// dense matrix multiplication with loop tiling (Figs. 3–6, Tables IV–V),
// MPI parallel quicksort (Table VI), the random-write synthetic
// (Table VII), and a checkpoint/restart scenario (§IV-B-5). Every workload
// moves real data through the real library and verifies its results; the
// simulated devices and network only decide how long things take.
package workloads

import (
	"fmt"
	"time"

	"nvmalloc/internal/core"
	"nvmalloc/internal/sim"
	"nvmalloc/internal/simtime"
)

// Placement says where one STREAM array lives.
type Placement int

const (
	// InDRAM places the array in node-local DRAM.
	InDRAM Placement = iota
	// OnNVM places the array on the aggregate NVM store via ssdmalloc.
	OnNVM
	// OnDirectSSD places the array on the local SSD accessed through plain
	// page-granular mmap with kernel read-ahead — the "without NVMalloc"
	// baseline of Table III.
	OnDirectSSD
)

func (pl Placement) String() string {
	switch pl {
	case InDRAM:
		return "DRAM"
	case OnNVM:
		return "NVM"
	case OnDirectSSD:
		return "direct-SSD"
	}
	return "?"
}

// StreamKernel selects one of the four STREAM kernels.
type StreamKernel int

// The four STREAM kernels.
const (
	COPY  StreamKernel = iota // C[i] = A[i]
	SCALE                     // B[i] = 3*C[i]
	ADD                       // C[i] = A[i] + B[i]
	TRIAD                     // A[i] = B[i] + 3*C[i]
)

func (k StreamKernel) String() string {
	return [...]string{"COPY", "SCALE", "ADD", "TRIAD"}[k]
}

// bytesPerIter is how many bytes each kernel moves per element per
// iteration (reads + writes), the STREAM bandwidth convention.
func (k StreamKernel) bytesPerIter() int64 {
	switch k {
	case COPY, SCALE:
		return 16
	default:
		return 24
	}
}

// StreamParams configures one STREAM run.
type StreamParams struct {
	ArrayBytes int64 // size of each of A, B, C
	Threads    int   // ranks, all on node 0 (paper: 8)
	Iters      int   // kernel repetitions (paper: 10)
	Kernel     StreamKernel
	// PlaceA/B/C choose each array's home.
	PlaceA, PlaceB, PlaceC Placement
	// BlockElems is the streaming granularity in elements (one LoadVec/
	// StoreVec per block).
	BlockElems int
	// Verify checks the numeric result after the run.
	Verify bool
}

// StreamResult reports one run.
type StreamResult struct {
	Params        StreamParams
	Elapsed       time.Duration
	BandwidthMBps float64
	Verified      bool
}

// placeArray allocates one STREAM array per the placement.
func placeArray(p *simtime.Proc, m *sim.Machine, c *core.Client, name string, pl Placement, size int64) (core.Buffer, error) {
	switch pl {
	case InDRAM:
		return core.NewDRAM(c.Node(), name, size)
	case OnNVM:
		return c.Malloc(p, size, core.WithName(name))
	case OnDirectSSD:
		prof := m.Prof
		return NewDirectSSD(c.Node(), name, size, prof.PageSize, prof.PageCacheSize+prof.FUSECacheSize), nil
	}
	return nil, fmt.Errorf("workloads: unknown placement %d", pl)
}

// RunStream executes one STREAM configuration on machine m and returns the
// measured bandwidth. STREAM is one multi-threaded process on node 0 (the
// paper runs it on a single 8-core node), so the arrays are allocated once
// and all threads share them — and the one address space means one page
// cache. Arrays placed OnNVM resolve to local or remote benefactors
// depending on m's configuration.
func RunStream(m *sim.Machine, prm StreamParams) (StreamResult, error) {
	if prm.BlockElems == 0 {
		prm.BlockElems = 4096
	}
	if prm.Threads == 0 {
		prm.Threads = m.Prof.CoresPerNode
	}
	if prm.Iters == 0 {
		prm.Iters = 10
	}
	elems := prm.ArrayBytes / 8
	var runErr error
	verified := true
	var kernelTime simtime.Duration

	m.Eng.Go("stream", func(p *simtime.Proc) {
		c := m.NewClient(0)
		A, err := placeArray(p, m, c, "stream.A", prm.PlaceA, prm.ArrayBytes)
		if err != nil {
			runErr = err
			return
		}
		B, err := placeArray(p, m, c, "stream.B", prm.PlaceB, prm.ArrayBytes)
		if err != nil {
			runErr = err
			return
		}
		C, err := placeArray(p, m, c, "stream.C", prm.PlaceC, prm.ArrayBytes)
		if err != nil {
			runErr = err
			return
		}
		// Initialization pass (untimed, as in STREAM itself).
		initWG := m.Eng.GoEach("stream-init", prm.Threads, func(tp *simtime.Proc, tid int) {
			if err := streamInit(tp, prm, tid, elems, A, B, C); err != nil && runErr == nil {
				runErr = err
			}
		})
		initWG.Wait(p)
		if runErr != nil {
			return
		}
		start := p.Now()
		wg := m.Eng.GoEach("stream-thread", prm.Threads, func(tp *simtime.Proc, tid int) {
			if err := streamThread(tp, c, prm, tid, elems, A, B, C); err != nil && runErr == nil {
				runErr = err
			}
		})
		wg.Wait(p)
		kernelTime = p.Now().Sub(start)
		if prm.Verify {
			for tid := 0; tid < prm.Threads; tid++ {
				ok, verr := verifyStream(p, prm, tid, elems, A, B, C)
				if verr != nil {
					runErr = verr
					return
				}
				if !ok {
					verified = false
				}
			}
		}
	})
	m.Eng.Run()

	res := StreamResult{Params: prm, Elapsed: kernelTime, Verified: verified && prm.Verify}
	moved := float64(elems) * float64(prm.Kernel.bytesPerIter()) * float64(prm.Iters)
	if res.Elapsed > 0 {
		res.BandwidthMBps = moved / res.Elapsed.Seconds() / 1e6
	}
	return res, runErr
}

// streamInit performs the STREAM first-touch initialization of one
// thread's slice: A=1, B=2, C=0.
func streamInit(p *simtime.Proc, prm StreamParams, tid int, elems int64, A, B, C core.Buffer) error {
	lo := elems * int64(tid) / int64(prm.Threads)
	hi := elems * int64(tid+1) / int64(prm.Threads)
	av, bv, cv := core.Float64s(A), core.Float64s(B), core.Float64s(C)
	block := make([]float64, prm.BlockElems)
	for i := lo; i < hi; i += int64(len(block)) {
		n := min64(int64(len(block)), hi-i)
		blk := block[:n]
		fill(blk, 1)
		if err := av.StoreVec(p, i, blk); err != nil {
			return err
		}
		fill(blk, 2)
		if err := bv.StoreVec(p, i, blk); err != nil {
			return err
		}
		fill(blk, 0)
		if err := cv.StoreVec(p, i, blk); err != nil {
			return err
		}
	}
	return nil
}

// streamThread runs the timed kernel over one thread's slice.
func streamThread(p *simtime.Proc, c *core.Client, prm StreamParams, tid int, elems int64, A, B, C core.Buffer) error {
	lo := elems * int64(tid) / int64(prm.Threads)
	hi := elems * int64(tid+1) / int64(prm.Threads)
	av, bv, cv := core.Float64s(A), core.Float64s(B), core.Float64s(C)

	in1 := make([]float64, prm.BlockElems)
	in2 := make([]float64, prm.BlockElems)
	out := make([]float64, prm.BlockElems)
	node := c.Node()
	for it := 0; it < prm.Iters; it++ {
		for i := lo; i < hi; i += int64(len(out)) {
			n := min64(int64(prm.BlockElems), hi-i)
			switch prm.Kernel {
			case COPY: // C = A
				if err := av.LoadVec(p, i, in1[:n]); err != nil {
					return err
				}
				copy(out[:n], in1[:n])
				if err := cv.StoreVec(p, i, out[:n]); err != nil {
					return err
				}
			case SCALE: // B = 3*C
				if err := cv.LoadVec(p, i, in1[:n]); err != nil {
					return err
				}
				for k := int64(0); k < n; k++ {
					out[k] = 3 * in1[k]
				}
				node.Compute(p, float64(n))
				if err := bv.StoreVec(p, i, out[:n]); err != nil {
					return err
				}
			case ADD: // C = A + B
				if err := av.LoadVec(p, i, in1[:n]); err != nil {
					return err
				}
				if err := bv.LoadVec(p, i, in2[:n]); err != nil {
					return err
				}
				for k := int64(0); k < n; k++ {
					out[k] = in1[k] + in2[k]
				}
				node.Compute(p, float64(n))
				if err := cv.StoreVec(p, i, out[:n]); err != nil {
					return err
				}
			case TRIAD: // A = B + 3*C
				if err := bv.LoadVec(p, i, in1[:n]); err != nil {
					return err
				}
				if err := cv.LoadVec(p, i, in2[:n]); err != nil {
					return err
				}
				for k := int64(0); k < n; k++ {
					out[k] = in1[k] + 3*in2[k]
				}
				node.Compute(p, 2*float64(n))
				if err := av.StoreVec(p, i, out[:n]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// verifyStream checks the thread's slice against the kernel's closed form
// after Iters iterations starting from A=1, B=2, C=0.
func verifyStream(p *simtime.Proc, prm StreamParams, tid int, elems int64, A, B, C core.Buffer) (bool, error) {
	// Fixed points after ≥1 iteration of each kernel from the standard
	// init: COPY ⇒ C=1; SCALE ⇒ B=3*C; ADD ⇒ C=A+B; TRIAD ⇒ A=B+3*C.
	lo := elems * int64(tid) / int64(prm.Threads)
	av, bv, cv := core.Float64s(A), core.Float64s(B), core.Float64s(C)
	a, err := av.Load(p, lo)
	if err != nil {
		return false, err
	}
	b, err := bv.Load(p, lo)
	if err != nil {
		return false, err
	}
	cx, err := cv.Load(p, lo)
	if err != nil {
		return false, err
	}
	switch prm.Kernel {
	case COPY:
		return cx == a, nil
	case SCALE:
		return b == 3*cx, nil
	case ADD:
		return cx == a+b, nil
	case TRIAD:
		return a == b+3*cx, nil
	}
	return false, nil
}

func fill(s []float64, v float64) {
	for i := range s {
		s[i] = v
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
