package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"strconv"
	"time"
)

// DebugServer serves a daemon's observability state over HTTP:
//
//	/metrics      JSON Snapshot of the metrics registry
//	/metrics.prom the same registry in Prometheus text exposition format
//	/healthz      "ok" while no alert rule fires; 503 with a JSON body
//	              naming the firing rules otherwise
//	/vitals       JSON Vitals: windowed rates/percentiles from the
//	              daemon's own time series plus alert state;
//	              ?window=30s tunes the lookback
//	/trace        JSON []Event from the ring; ?trace=ID filters by trace
//	              ID, ?n=N keeps only the newest N events
//	/spans        JSON []Span from the span ring; ?trace=ID filters by
//	              trace ID, ?slow=1 reads the slow-op flight recorder
//	              instead, ?n=N keeps only the newest N spans
//	/debug/pprof  the standard Go profiling endpoints
type DebugServer struct {
	l   net.Listener
	srv *http.Server
}

// ServeDebug starts a debug server for o on addr (e.g. "127.0.0.1:0").
func ServeDebug(addr string, o *Obs) (*DebugServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(o.Reg.Snapshot())
	})
	mux.HandleFunc("/metrics.prom", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		_ = WritePrometheus(w, o.Reg.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		firing := o.FiringAlerts()
		if len(firing) == 0 {
			w.Header().Set("Content-Type", "text/plain")
			fmt.Fprintln(w, "ok")
			return
		}
		id := o.Identity()
		body := healthzBody{Status: "unhealthy", Node: id.Node, Epoch: id.Epoch, Firing: firing}
		if id.NShards > 0 {
			body.Shard = fmt.Sprintf("%d/%d", id.Shard, id.NShards)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	})
	mux.HandleFunc("/vitals", func(w http.ResponseWriter, req *http.Request) {
		window := DefaultVitalsWindow
		if ws := req.URL.Query().Get("window"); ws != "" {
			if d, err := time.ParseDuration(ws); err == nil && d > 0 {
				window = d
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(o.Vitals(window))
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		var events []Event
		if id := q.Get("trace"); id != "" {
			events = o.Ring.ByTrace(id)
		} else {
			events = o.Ring.Events()
		}
		if ns := q.Get("n"); ns != "" {
			if n, err := strconv.Atoi(ns); err == nil && n >= 0 && n < len(events) {
				events = events[len(events)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(events)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		ring := o.Spans
		if q.Get("slow") != "" && q.Get("slow") != "0" {
			ring = o.Slow
		}
		var spans []Span
		if id := q.Get("trace"); id != "" {
			spans = ring.ByTrace(id)
		} else {
			spans = ring.Spans()
		}
		if ns := q.Get("n"); ns != "" {
			if n, err := strconv.Atoi(ns); err == nil && n >= 0 && n < len(spans) {
				spans = spans[len(spans)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(spans)
	})
	mux.HandleFunc("/incidents", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		list := o.Incidents().List()
		if list == nil {
			list = []IncidentMeta{}
		}
		_ = enc.Encode(list)
	})
	mux.HandleFunc("/incidents/capture", func(w http.ResponseWriter, req *http.Request) {
		ir := o.Incidents()
		if ir == nil {
			http.Error(w, "no incident recorder configured (-incident-dir)", http.StatusNotImplemented)
			return
		}
		q := req.URL.Query()
		reason := q.Get("reason")
		if reason == "" {
			reason = "manual"
		}
		force := q.Get("force") != "" && q.Get("force") != "0"
		meta, fresh, err := ir.Capture(reason, force)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(captureResult{Captured: fresh, Incident: meta})
	})
	mux.HandleFunc("/incidents/bundle", func(w http.ResponseWriter, req *http.Request) {
		ir := o.Incidents()
		if ir == nil {
			http.Error(w, "no incident recorder configured (-incident-dir)", http.StatusNotImplemented)
			return
		}
		id := req.URL.Query().Get("id")
		// Buffer the archive so a missing bundle can still 404: bundles are
		// bounded (profiles + JSON rings), not bulk data.
		var buf bytes.Buffer
		if err := ir.WriteTar(&buf, id); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/gzip")
		_, _ = w.Write(buf.Bytes())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ds := &DebugServer{l: l, srv: &http.Server{Handler: mux}}
	go ds.srv.Serve(l)
	return ds, nil
}

// Addr returns the listening address (useful with ":0").
func (ds *DebugServer) Addr() string {
	if ds == nil {
		return ""
	}
	return ds.l.Addr().String()
}

// Close stops the server.
func (ds *DebugServer) Close() error {
	if ds == nil {
		return nil
	}
	return ds.srv.Close()
}

// DefaultVitalsWindow is the /vitals lookback when the scrape names none.
const DefaultVitalsWindow = 30 * time.Second

// healthzBody is the JSON payload of an unhealthy /healthz response. Node,
// Shard ("i/n", present only on sharded daemons) and Epoch name which
// keyspace is degraded, so a 503 from a sharded fleet is actionable on
// its own.
type healthzBody struct {
	Status string  `json:"status"`
	Node   string  `json:"node,omitempty"`
	Shard  string  `json:"shard,omitempty"`
	Epoch  int64   `json:"epoch,omitempty"`
	Firing []Alert `json:"firing"`
}

// scrapeClient bounds debug-endpoint scrapes so a wedged daemon cannot
// hang an nvmctl invocation.
var scrapeClient = &http.Client{Timeout: 5 * time.Second}

// FetchMetrics scrapes one node's /metrics endpoint. addr is a host:port
// debug address (no scheme).
func FetchMetrics(addr string) (Snapshot, error) {
	var s Snapshot
	resp, err := scrapeClient.Get("http://" + addr + "/metrics")
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("obs: %s/metrics: %s", addr, resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&s)
	return s, err
}

// FetchVitals scrapes one node's /vitals endpoint with the given
// lookback window (0 keeps the server default).
func FetchVitals(addr string, window time.Duration) (Vitals, error) {
	var v Vitals
	url := "http://" + addr + "/vitals"
	if window > 0 {
		url += "?window=" + window.String()
	}
	resp, err := scrapeClient.Get(url)
	if err != nil {
		return v, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return v, fmt.Errorf("obs: %s/vitals: %s", addr, resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&v)
	return v, err
}

// FetchHealth probes one node's /healthz: healthy (200) or unhealthy
// (503, firing names the rules). Any other status is an error.
func FetchHealth(addr string) (healthy bool, firing []Alert, err error) {
	resp, err := scrapeClient.Get("http://" + addr + "/healthz")
	if err != nil {
		return false, nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil, nil
	case http.StatusServiceUnavailable:
		var body healthzBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return false, nil, err
		}
		return false, body.Firing, nil
	default:
		return false, nil, fmt.Errorf("obs: %s/healthz: %s", addr, resp.Status)
	}
}

// FetchTrace scrapes one node's /trace endpoint. trace filters by trace ID
// when non-empty; n limits to the newest n events when positive.
func FetchTrace(addr, trace string, n int) ([]Event, error) {
	url := "http://" + addr + "/trace?"
	if trace != "" {
		url += "trace=" + trace + "&"
	}
	if n > 0 {
		url += fmt.Sprintf("n=%d", n)
	}
	resp, err := scrapeClient.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("obs: %s/trace: %s", addr, resp.Status)
	}
	var events []Event
	err = json.NewDecoder(resp.Body).Decode(&events)
	return events, err
}

// FetchSpans scrapes one node's /spans endpoint. trace filters by trace ID
// when non-empty; slow reads the flight recorder instead of the span ring;
// n limits to the newest n spans when positive.
func FetchSpans(addr, trace string, slow bool, n int) ([]Span, error) {
	url := "http://" + addr + "/spans?"
	if trace != "" {
		url += "trace=" + trace + "&"
	}
	if slow {
		url += "slow=1&"
	}
	if n > 0 {
		url += fmt.Sprintf("n=%d", n)
	}
	resp, err := scrapeClient.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("obs: %s/spans: %s", addr, resp.Status)
	}
	var spans []Span
	err = json.NewDecoder(resp.Body).Decode(&spans)
	return spans, err
}

// captureResult is the /incidents/capture response: Captured=false means
// the cooldown handed back an existing bundle instead of writing a new
// one.
type captureResult struct {
	Captured bool         `json:"captured"`
	Incident IncidentMeta `json:"incident"`
}

// FetchIncidents scrapes one node's /incidents list (newest first).
func FetchIncidents(addr string) ([]IncidentMeta, error) {
	resp, err := scrapeClient.Get("http://" + addr + "/incidents")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("obs: %s/incidents: %s", addr, resp.Status)
	}
	var list []IncidentMeta
	err = json.NewDecoder(resp.Body).Decode(&list)
	return list, err
}

// CaptureIncident asks one node to capture a bundle now. captured=false
// with a nil error means the node's cooldown returned an existing bundle
// (force skips the cooldown).
func CaptureIncident(addr, reason string, force bool) (meta IncidentMeta, captured bool, err error) {
	u := "http://" + addr + "/incidents/capture?reason=" + url.QueryEscape(reason)
	if force {
		u += "&force=1"
	}
	resp, err := scrapeClient.Get(u)
	if err != nil {
		return IncidentMeta{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return IncidentMeta{}, false, fmt.Errorf("obs: %s/incidents/capture: %s", addr, resp.Status)
	}
	var res captureResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return IncidentMeta{}, false, err
	}
	return res.Incident, res.Captured, nil
}

// FetchIncidentBundle streams one node's bundle id as tar.gz into w.
// Bundle fetches get a longer deadline than metric scrapes: profiles are
// bigger than gauges.
var bundleClient = &http.Client{Timeout: 60 * time.Second}

func FetchIncidentBundle(addr, id string, w io.Writer) error {
	resp, err := bundleClient.Get("http://" + addr + "/incidents/bundle?id=" + url.QueryEscape(id))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("obs: %s/incidents/bundle?id=%s: %s", addr, id, resp.Status)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}
