package obs

import (
	"sync"
	"time"
)

// Span is one timed node of a hierarchical trace. Spans minted on
// different machines share a Trace and are stitched into one tree by the
// collector (nvmctl trace) via the Parent links that travel the wire
// protocol. Field layout is mirrored by proto.Span so the two convert
// directly; keep them identical.
type Span struct {
	Trace  string `json:"trace"`
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"`
	// Name is "layer.op" (client.put, cache.get_chunk, pool.wait,
	// rpc.get_chunk, manager.create, benefactor.put, ssd.put); the layer
	// prefix drives the collector's per-layer time breakdown.
	Name string `json:"name"`
	Node string `json:"node,omitempty"`
	// Var is the NVM variable (store file) the op is attributed to.
	Var string `json:"var,omitempty"`
	Err string `json:"err,omitempty"`
	// StartNanos is substrate time: wall-clock Unix nanos on the real
	// path, virtual nanos since boot on the simulated path. Timestamps
	// from different nodes are only loosely comparable (clock skew);
	// durations are exact.
	StartNanos int64 `json:"start_nanos"`
	DurNanos   int64 `json:"dur_nanos"`
	Bytes      int64 `json:"bytes,omitempty"`
}

// Root reports whether the span is a trace root (no parent).
func (s Span) Root() bool { return s.Parent == "" }

// End returns the span's end timestamp.
func (s Span) End() int64 { return s.StartNanos + s.DurNanos }

// DefaultRingSpans is the span capacity of rings made by New.
const DefaultRingSpans = 4096

// DefaultSlowSpans is the capacity of the slow-op flight recorder.
const DefaultSlowSpans = 256

// DefaultSlowThreshold is the root-span duration beyond which an op is
// copied to the flight recorder (SetSlowThreshold overrides).
const DefaultSlowThreshold = 50 * time.Millisecond

// SpanRing is a bounded concurrent buffer of completed spans, newest
// overwriting oldest — the span-shaped sibling of Ring.
type SpanRing struct {
	mu   sync.Mutex
	buf  []Span
	next int64
}

// NewSpanRing returns a ring holding the last capacity spans (min 16).
func NewSpanRing(capacity int) *SpanRing {
	if capacity < 16 {
		capacity = 16
	}
	return &SpanRing{buf: make([]Span, 0, capacity)}
}

// Record appends one completed span (no-op on a nil ring).
func (r *SpanRing) Record(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.next%int64(cap(r.buf))] = s
	}
	r.next++
}

// Len returns the number of spans currently retained.
func (r *SpanRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Spans returns the retained spans, oldest first.
func (r *SpanRing) Spans() []Span {
	return r.Filter(func(Span) bool { return true })
}

// ByTrace returns the retained spans of one trace, oldest first.
func (r *SpanRing) ByTrace(trace string) []Span {
	return r.Filter(func(s Span) bool { return s.Trace == trace })
}

// Filter returns retained spans matching keep, oldest first.
func (r *SpanRing) Filter(keep func(Span) bool) []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Span
	start := r.next - int64(len(r.buf))
	if start < 0 {
		start = 0
	}
	for i := start; i < r.next; i++ {
		s := r.buf[i%int64(cap(r.buf))]
		if keep(s) {
			out = append(out, s)
		}
	}
	return out
}

// spanSink is the optional per-Obs hook fired on every locally recorded
// span (the rpc client uses it to export spans to the manager).
type spanSink func(Span)

// ActiveSpan is an in-progress span. A nil *ActiveSpan (from a disabled
// Obs) makes every method a no-op, so hot paths need no branches.
type ActiveSpan struct {
	o *Obs
	s Span
}

// StartSpan begins a span on the wall clock. An empty trace mints a fresh
// root trace (parent is ignored); otherwise the span joins trace under
// parent. Returns nil — a universal no-op — when o is nil or disabled.
func (o *Obs) StartSpan(trace, parent, name string) *ActiveSpan {
	if o == nil || o.Spans == nil {
		return nil
	}
	return o.StartSpanAt(trace, parent, name, time.Now().UnixNano())
}

// StartSpanAt begins a span at an explicit substrate timestamp (virtual
// time on the simulated path, a pre-captured wall instant on the real
// one).
func (o *Obs) StartSpanAt(trace, parent, name string, startNanos int64) *ActiveSpan {
	if o == nil || o.Spans == nil {
		return nil
	}
	if trace == "" {
		trace = NewTraceID()
		parent = ""
	}
	return &ActiveSpan{o: o, s: Span{
		Trace:      trace,
		ID:         NewTraceID(),
		Parent:     parent,
		Name:       name,
		StartNanos: startNanos,
	}}
}

// Trace returns the span's trace ID ("" on a nil span, which servers
// interpret as "untraced request").
func (a *ActiveSpan) Trace() string {
	if a == nil {
		return ""
	}
	return a.s.Trace
}

// ID returns the span's own ID ("" on a nil span).
func (a *ActiveSpan) ID() string {
	if a == nil {
		return ""
	}
	return a.s.ID
}

// SetVar attributes the span to an NVM variable (store file).
func (a *ActiveSpan) SetVar(v string) {
	if a == nil {
		return
	}
	a.s.Var = v
}

// SetErr records the op's failure on the span; nil err is a no-op.
func (a *ActiveSpan) SetErr(err error) {
	if a == nil || err == nil {
		return
	}
	a.s.Err = err.Error()
}

// AddBytes accumulates payload bytes moved by the op.
func (a *ActiveSpan) AddBytes(n int64) {
	if a == nil {
		return
	}
	a.s.Bytes += n
}

// End completes the span on the wall clock and records it.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.EndAt(time.Now().UnixNano())
}

// EndAt completes the span at an explicit substrate timestamp.
func (a *ActiveSpan) EndAt(nowNanos int64) {
	if a == nil {
		return
	}
	a.s.DurNanos = nowNanos - a.s.StartNanos
	if a.s.DurNanos < 0 {
		a.s.DurNanos = 0
	}
	a.o.RecordSpan(a.s)
}

// RecordSpan records one completed span: stamps the local node identity if
// the span has none, appends to the span ring, copies slow roots to the
// flight recorder, and fires the span sink. No-op when o is nil/disabled.
func (o *Obs) RecordSpan(s Span) {
	if o == nil || o.Spans == nil {
		return
	}
	// Stamp before the sink fires, not just inside ingest: an exported span
	// must carry this node's identity, or the ingesting daemon stamps its own.
	if s.Node == "" && o.Reg != nil {
		s.Node = o.Reg.Node()
	}
	o.ingest(s)
	if v := o.sink.Load(); v != nil {
		if fn := v.(spanSink); fn != nil {
			fn(s)
		}
	}
}

// IngestSpan records a span that originated elsewhere (a client's exported
// root arriving at the manager via OpReportSpans). Identical to RecordSpan
// except the sink is NOT fired — ingestion must never re-export.
func (o *Obs) IngestSpan(s Span) {
	if o == nil || o.Spans == nil {
		return
	}
	o.ingest(s)
}

func (o *Obs) ingest(s Span) {
	if s.Node == "" && o.Reg != nil {
		s.Node = o.Reg.Node()
	}
	o.Spans.Record(s)
	if t := o.slowNanos.Load(); t > 0 && s.Root() && s.DurNanos >= t {
		o.Slow.Record(s)
	}
}

// SetSlowThreshold sets the root-span duration beyond which ops are copied
// to the flight recorder; zero or negative disables it.
func (o *Obs) SetSlowThreshold(d time.Duration) {
	if o == nil {
		return
	}
	o.slowNanos.Store(int64(d))
}

// SlowThreshold returns the current flight-recorder threshold.
func (o *Obs) SlowThreshold() time.Duration {
	if o == nil {
		return 0
	}
	return time.Duration(o.slowNanos.Load())
}

// SetSpanSink installs fn to observe every locally recorded span (nil
// uninstalls). Exactly one sink is active at a time; the sink runs on the
// recording goroutine and must not block.
func (o *Obs) SetSpanSink(fn func(Span)) {
	if o == nil {
		return
	}
	o.sink.Store(spanSink(fn))
}
