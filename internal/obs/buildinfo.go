package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Build identity, read once from the binary itself (debug.ReadBuildInfo):
// the VCS revision ("-dirty" when the working tree was modified) and the
// Go toolchain version. Exposed as the nvm_build_info gauge so a scrape
// can correlate a regression with the exact build serving it, and reused
// by nvmbench to stamp result JSON.

var (
	buildOnce sync.Once
	buildRev  string
	buildGo   string
)

func loadBuildInfo() {
	buildOnce.Do(func() {
		buildRev = "unknown"
		buildGo = runtime.Version()
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		var rev string
		dirty := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if dirty {
				rev += "-dirty"
			}
			buildRev = rev
		}
	})
}

// BuildRevision returns the binary's VCS revision (short hash, "-dirty"
// suffix when built from a modified tree) or "unknown" when the binary
// carries no VCS stamp (go test, go run without a repo).
func BuildRevision() string {
	loadBuildInfo()
	return buildRev
}

// buildGoVersion returns the Go toolchain version the binary was built
// with.
func buildGoVersion() string {
	loadBuildInfo()
	return buildGo
}

// setBuildInfoForTest pins the build identity so golden-file tests are
// deterministic across toolchains; restore returns it to the real values.
func setBuildInfoForTest(rev, gover string) (restore func()) {
	loadBuildInfo()
	oldRev, oldGo := buildRev, buildGo
	buildRev, buildGo = rev, gover
	return func() { buildRev, buildGo = oldRev, oldGo }
}
