package obs

import (
	"testing"
	"time"
)

// gaugeSeries builds a series whose newest sample carries the gauge value.
func gaugeSeries(name string, v int64) *Series {
	s := NewSeries(4)
	s.Add(Snapshot{UnixNanos: 1, Gauges: map[string]int64{name: v}})
	s.Add(Snapshot{UnixNanos: 2, Gauges: map[string]int64{name: v}})
	return s
}

func TestRuleSustainedDuration(t *testing.T) {
	rs := NewRuleSet(Rule{
		Name:      "backlog",
		Value:     GaugeValue("g"),
		Op:        Above,
		Threshold: 0,
		For:       10 * time.Second,
	})
	breach := gaugeSeries("g", 5)

	rs.Eval(breach, 1e9)
	if !rs.Healthy() {
		t.Fatal("firing immediately; must stay pending for the sustain window")
	}
	if st := rs.States(); len(st) != 1 || st[0].State != "pending" {
		t.Fatalf("States after first breach = %+v, want one pending", st)
	}

	// Still inside the 10s sustain: pending, not firing.
	rs.Eval(breach, 9e9)
	if len(rs.Firing()) != 0 {
		t.Fatal("fired before the sustain elapsed")
	}

	// 11s after the condition began: firing.
	rs.Eval(breach, 12e9)
	firing := rs.Firing()
	if len(firing) != 1 || firing[0].State != "firing" || firing[0].Rule != "backlog" {
		t.Fatalf("Firing = %+v, want the backlog rule firing", firing)
	}
	if rs.Healthy() {
		t.Fatal("Healthy true while a rule fires")
	}
	if firing[0].SinceUnixNanos != 1e9 {
		t.Fatalf("SinceUnixNanos = %d, want the first breach (1e9)", firing[0].SinceUnixNanos)
	}
}

func TestRuleFlapClearsState(t *testing.T) {
	rs := NewRuleSet(Rule{
		Name:      "backlog",
		Value:     GaugeValue("g"),
		Op:        Above,
		Threshold: 0,
		For:       10 * time.Second,
	})
	breach, clear := gaugeSeries("g", 5), gaugeSeries("g", 0)

	rs.Eval(breach, 1e9)
	rs.Eval(clear, 5e9) // condition stopped holding: full reset
	rs.Eval(breach, 6e9)
	rs.Eval(breach, 12e9) // only 6s since the NEW breach began — not 11s
	if len(rs.Firing()) != 0 {
		t.Fatal("fired across a flap; the sustain clock must restart")
	}
	rs.Eval(breach, 17e9) // 11s since 6e9: fires now
	if len(rs.Firing()) != 1 {
		t.Fatal("did not fire after a full sustain window post-flap")
	}
	// Condition clears: firing state drops immediately.
	rs.Eval(clear, 18e9)
	if len(rs.Firing()) != 0 || !rs.Healthy() {
		t.Fatal("firing state survived the condition clearing")
	}
	if len(rs.States()) != 0 {
		t.Fatal("pending state survived the condition clearing")
	}
}

func TestRuleNoDataNeverTriggers(t *testing.T) {
	rs := NewRuleSet(Rule{
		Name:      "nodata",
		Value:     func(*Series) (float64, bool) { return 99, false },
		Op:        Above,
		Threshold: 0,
	})
	rs.Eval(NewSeries(2), 1e9)
	if len(rs.States()) != 0 {
		t.Fatal("a no-data rule produced an alert")
	}
}

func TestRuleBelowAndZeroFor(t *testing.T) {
	rs := NewRuleSet(Rule{
		Name:      "hit-collapse",
		Value:     GaugeValue("ratio"),
		Op:        Below,
		Threshold: 10,
		// For == 0: fires on the first breach.
	})
	rs.Eval(gaugeSeries("ratio", 3), 1e9)
	if len(rs.Firing()) != 1 {
		t.Fatal("zero-For rule did not fire on first breach")
	}
	rs.Eval(gaugeSeries("ratio", 50), 2e9)
	if len(rs.Firing()) != 0 {
		t.Fatal("Below rule kept firing above threshold")
	}
}

func TestNewRuleSetDropsNilValue(t *testing.T) {
	rs := NewRuleSet(Rule{Name: "novalue"}, Rule{Name: "ok", Value: GaugeValue("g")})
	if len(rs.rules) != 1 || rs.rules[0].Name != "ok" {
		t.Fatalf("rules = %+v, want only the one with a Value", rs.rules)
	}
}

func TestDefaultRulesUnderReplicated(t *testing.T) {
	rules := DefaultRules(RuleDefaults{Sustain: 5 * time.Second})
	rs := NewRuleSet(rules...)

	under := NewSeries(4)
	under.Add(Snapshot{UnixNanos: 1, Gauges: map[string]int64{"manager.under_replicated": 2}})
	under.Add(Snapshot{UnixNanos: 2, Gauges: map[string]int64{"manager.under_replicated": 2}})

	rs.Eval(under, 1e9)
	rs.Eval(under, 7e9)
	firing := rs.Firing()
	if len(firing) != 1 || firing[0].Rule != "under-replicated" {
		t.Fatalf("Firing = %+v, want under-replicated only", firing)
	}
	// A series with no manager metrics at all (a benefactor) stays quiet.
	rs2 := NewRuleSet(DefaultRules(RuleDefaults{})...)
	empty := NewSeries(4)
	empty.Add(Snapshot{UnixNanos: 1})
	empty.Add(Snapshot{UnixNanos: 2})
	rs2.Eval(empty, 1e9)
	if len(rs2.States()) != 0 {
		t.Fatalf("default rules alerted on an empty registry: %+v", rs2.States())
	}
}

func TestDefaultRulesHeartbeatStale(t *testing.T) {
	rs := NewRuleSet(DefaultRules(RuleDefaults{HeartbeatTimeout: time.Second})...)
	stale := NewSeries(4)
	stale.Add(Snapshot{UnixNanos: 1, Gauges: map[string]int64{"manager.max_beat_age_nanos": 3e9}})
	stale.Add(Snapshot{UnixNanos: 2, Gauges: map[string]int64{"manager.max_beat_age_nanos": 3e9}})
	rs.Eval(stale, 1e9)
	// heartbeat-stale has For == 0: one breach fires it.
	firing := rs.Firing()
	if len(firing) != 1 || firing[0].Rule != "heartbeat-stale" {
		t.Fatalf("Firing = %+v, want heartbeat-stale", firing)
	}
}
