package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// promTestSnapshot builds a fully deterministic snapshot exercising every
// exposition branch: counters (with dots and dashes in the name), gauges,
// and a populated histogram.
func promTestSnapshot() Snapshot {
	h := newHistogram()
	h.Observe(2 * time.Microsecond)   // bucket le=4.096e-06
	h.Observe(3 * time.Microsecond)   // same bucket
	h.Observe(500 * time.Microsecond) // bucket le=0.000512
	return Snapshot{
		Node:          "bench-node",
		UnixNanos:     1700000000000000000,
		UptimeSeconds: 12.5,
		Counters: map[string]int64{
			"benefactor.read_bytes":   4096,
			"manager.chunks-repaired": 3,
		},
		Gauges: map[string]int64{
			"manager.under_replicated": 2,
		},
		Histograms: map[string]HistogramSnapshot{
			"rpc.get_chunk.latency": h.Snapshot(),
			"rpc.idle.latency":      {}, // empty histogram still exports
		},
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	defer setBuildInfoForTest("c0ffee123456", "go1.99.0")()
	var b strings.Builder
	if err := WritePrometheus(&b, promTestSnapshot()); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "prom.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from %s (regenerate with -update-golden if intentional)\ngot:\n%s", golden, got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	defer setBuildInfoForTest("c0ffee123456", "go1.99.0")()
	var b strings.Builder
	if err := WritePrometheus(&b, promTestSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		// Uptime is a synthetic gauge.
		"# TYPE nvm_uptime_seconds gauge",
		`nvm_uptime_seconds{node="bench-node"} 12.5`,
		// Build identity rides every exposition as a value-1 info gauge.
		"# TYPE nvm_build_info gauge",
		`nvm_build_info{node="bench-node",revision="c0ffee123456",goversion="go1.99.0"} 1`,
		// Counters: nvm_ prefix, [.-] -> _, _total suffix.
		"# TYPE nvm_benefactor_read_bytes_total counter",
		`nvm_benefactor_read_bytes_total{node="bench-node"} 4096`,
		`nvm_manager_chunks_repaired_total{node="bench-node"} 3`,
		// Gauges keep the bare name.
		"# TYPE nvm_manager_under_replicated gauge",
		`nvm_manager_under_replicated{node="bench-node"} 2`,
		// Histograms: _seconds suffix, cumulative le buckets, +Inf, sum in
		// seconds, count.
		"# TYPE nvm_rpc_get_chunk_latency_seconds histogram",
		`nvm_rpc_get_chunk_latency_seconds_bucket{node="bench-node",le="4e-06"} 2`,
		`nvm_rpc_get_chunk_latency_seconds_bucket{node="bench-node",le="0.000512"} 3`,
		`nvm_rpc_get_chunk_latency_seconds_bucket{node="bench-node",le="+Inf"} 3`,
		`nvm_rpc_get_chunk_latency_seconds_sum{node="bench-node"} 0.000505`,
		`nvm_rpc_get_chunk_latency_seconds_count{node="bench-node"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// le bounds must be cumulative and monotonic.
	if strings.Contains(out, "-1") {
		t.Error("negative value in exposition")
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"manager.under_replicated": "nvm_manager_under_replicated",
		"rpc.get-chunk.latency":    "nvm_rpc_get_chunk_latency",
		"a b":                      "nvm_a_b",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
