package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent hammers one registry from 16 goroutines — handle
// creation, counter/gauge/histogram recording, and snapshots all racing —
// and verifies the totals. Run under -race this is the registry's
// thread-safety proof.
func TestRegistryConcurrent(t *testing.T) {
	const (
		goroutines = 16
		opsEach    = 2000
	)
	r := NewRegistry("test")
	ring := NewRing(256)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				// Half the goroutines re-look the handles up every time so
				// get-or-create races with recording.
				r.Counter("shared.counter").Inc()
				r.Gauge("shared.gauge").Add(1)
				r.Gauge("shared.peak").Max(int64(g*opsEach + i))
				r.Histogram("shared.latency").Observe(time.Duration(i) * time.Microsecond)
				ring.Add("test", "op", "tid", "detail")
				if i%100 == 0 {
					s := r.Snapshot()
					if s.Counters["shared.counter"] < 0 {
						t.Error("negative counter in snapshot")
					}
					ring.Events()
				}
			}
		}(g)
	}
	wg.Wait()

	total := int64(goroutines * opsEach)
	if got := r.Counter("shared.counter").Load(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := r.Gauge("shared.gauge").Load(); got != total {
		t.Errorf("gauge = %d, want %d", got, total)
	}
	wantPeak := int64((goroutines-1)*opsEach + opsEach - 1)
	if got := r.Gauge("shared.peak").Load(); got != wantPeak {
		t.Errorf("peak gauge = %d, want %d", got, wantPeak)
	}
	hs := r.Histogram("shared.latency").Snapshot()
	if hs.Count != total {
		t.Errorf("histogram count = %d, want %d", hs.Count, total)
	}
	if ring.Len() != 256 {
		t.Errorf("ring retained %d events, want capacity 256", ring.Len())
	}
}

// TestHistogramQuantiles checks bucket placement, exact count/sum, and
// that quantile estimates land within the right power-of-two bucket.
func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	// 90 observations at ~100µs, 9 at ~1ms, 1 at ~10ms: p50 and p95 in the
	// 100µs bucket's range, p99 around 1ms.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(1 * time.Millisecond)
	}
	h.Observe(10 * time.Millisecond)

	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	wantSum := int64(90*100_000 + 9*1_000_000 + 10_000_000)
	if s.SumNanos != wantSum {
		t.Fatalf("sum = %d, want %d", s.SumNanos, wantSum)
	}
	// 100µs lands in bucket (64µs, 128µs]; the estimate must stay within
	// that bucket.
	checkRange := func(name string, got time.Duration, lo, hi time.Duration) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s = %v, want within [%v, %v]", name, got, lo, hi)
		}
	}
	checkRange("p50", s.Quantile(0.50), 64*time.Microsecond, 128*time.Microsecond)
	checkRange("p95", s.Quantile(0.95), 512*time.Microsecond, 2*time.Millisecond)
	checkRange("p99", s.Quantile(0.99), 512*time.Microsecond, 2*time.Millisecond)
	checkRange("p100", s.Quantile(1.0), 8192*time.Microsecond, 16384*time.Microsecond)
	if got, want := s.Mean(), time.Duration(wantSum/100); got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram()
	h.Observe(0)                     // below 1µs → bucket 0
	h.Observe(999 * time.Nanosecond) // still bucket 0
	h.Observe(1 * time.Microsecond)  // exactly the first bound → bucket 1
	h.Observe(365 * 24 * time.Hour)  // way past the last bound → overflow
	s := h.Snapshot()
	if s.Counts[0] != 2 {
		t.Errorf("bucket 0 = %d, want 2", s.Counts[0])
	}
	if s.Counts[1] != 1 {
		t.Errorf("bucket 1 = %d, want 1", s.Counts[1])
	}
	if s.Counts[histBuckets-1] != 1 {
		t.Errorf("overflow bucket = %d, want 1", s.Counts[histBuckets-1])
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := newHistogram(), newHistogram()
	for i := 0; i < 50; i++ {
		a.Observe(100 * time.Microsecond)
		b.Observe(10 * time.Millisecond)
	}
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 100 {
		t.Fatalf("merged count = %d, want 100", m.Count)
	}
	// Half the mass at 100µs, half at 10ms: p50 at the boundary region,
	// p95 firmly in the 10ms bucket.
	if q := m.Quantile(0.95); q < 8*time.Millisecond || q > 16*time.Millisecond {
		t.Errorf("merged p95 = %v, want ~10ms", q)
	}
	if m.SumNanos != a.Snapshot().SumNanos+b.Snapshot().SumNanos {
		t.Errorf("merged sum mismatch")
	}
}

func TestRingBoundedAndFiltered(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 40; i++ {
		trace := "even"
		if i%2 == 1 {
			trace = "odd"
		}
		r.Add("c", "k", trace, "")
	}
	ev := r.Events()
	if len(ev) != 16 {
		t.Fatalf("retained %d events, want 16", len(ev))
	}
	if ev[0].Seq != 24 || ev[15].Seq != 39 {
		t.Errorf("retained seqs [%d, %d], want [24, 39]", ev[0].Seq, ev[15].Seq)
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq+1 {
			t.Fatalf("events out of order at %d", i)
		}
	}
	if got := len(r.ByTrace("odd")); got != 8 {
		t.Errorf("ByTrace(odd) = %d events, want 8", got)
	}
}

// TestNilSafety exercises every recording call against nil handles — the
// Disabled() zero-overhead mode must never panic.
func TestNilSafety(t *testing.T) {
	o := Disabled()
	o.Reg.Counter("x").Inc()
	o.Reg.Counter("x").Add(5)
	_ = o.Reg.Counter("x").Load()
	o.Reg.Gauge("y").Set(1)
	o.Reg.Gauge("y").Add(1)
	o.Reg.Gauge("y").Max(9)
	o.Reg.Histogram("z").Observe(time.Second)
	_ = o.Reg.Histogram("z").Snapshot()
	_ = o.Reg.Snapshot()
	o.Ring.Add("c", "k", "", "")
	_ = o.Ring.Events()
	o.Event("c", "k", "", "")
	o.Log.Info("hi", "k", "v")
	var nilObs *Obs
	nilObs.Event("c", "k", "", "")
}

func TestLogger(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelInfo)
	l.Debug("hidden")
	l.Info("visible", "op", "create", "file", "a b", "bytes", 42)
	l.Error("boom", "err", "it broke")
	out := sb.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("debug line leaked below level: %q", out)
	}
	for _, want := range []string{`level=info`, `msg="visible"`, `op=create`, `file="a b"`, `bytes=42`, `level=error`} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines != 2 {
		t.Errorf("got %d lines, want 2:\n%s", lines, out)
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	o := New("unit")
	o.Reg.Counter("test.counter").Add(7)
	o.Reg.Histogram("test.latency").Observe(3 * time.Millisecond)
	o.Ring.Add("unit", "alloc", "tid-1", "file=x")
	o.Ring.Add("unit", "write", "tid-2", "file=y")

	ds, err := ServeDebug("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	snap, err := FetchMetrics(ds.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Node != "unit" {
		t.Errorf("node = %q, want unit", snap.Node)
	}
	if snap.Counters["test.counter"] != 7 {
		t.Errorf("scraped counter = %d, want 7", snap.Counters["test.counter"])
	}
	if h := snap.Histograms["test.latency"]; h.Count != 1 || h.P50Nanos <= 0 {
		t.Errorf("scraped histogram bad: %+v", h)
	}

	all, err := FetchTrace(ds.Addr(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("trace returned %d events, want 2", len(all))
	}
	one, err := FetchTrace(ds.Addr(), "tid-2", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Kind != "write" {
		t.Fatalf("filtered trace = %+v, want the single tid-2 write", one)
	}

	resp, err := scrapeClient.Get("http://" + ds.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}
}

func TestTraceIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace id %q not 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

// Microbenchmarks for the instrumentation primitives: these are the only
// costs the hot data path pays per chunk RPC, and they must stay in the
// nanoseconds so the <5% overhead budget on the TCP benches holds.
func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry("b").Counter("c")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry("b").Histogram("h")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(137 * time.Microsecond)
		}
	})
}

func BenchmarkRingAdd(b *testing.B) {
	r := NewRing(4096)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Add("rpc", "stripe-write", "0123456789abcdef", "b0/c42")
		}
	})
}
