package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// RuleOp is the comparison a Rule applies between its observed value and
// its threshold.
type RuleOp int

const (
	// Above triggers when value > threshold.
	Above RuleOp = iota
	// Below triggers when value < threshold.
	Below
)

// String returns the comparison glyph for export.
func (op RuleOp) String() string {
	if op == Below {
		return "<"
	}
	return ">"
}

// Rule is one declarative health condition evaluated against a Series on
// every monitor sample. A rule whose condition holds continuously for at
// least For fires; any single evaluation where the condition does not
// hold (or has no data) clears both the pending timer and the firing
// state. Firing rules degrade the daemon's /healthz from 200 to 503.
type Rule struct {
	// Name identifies the rule in healthz bodies and nvmctl watch
	// ("under-replicated", "heartbeat-stale", ...).
	Name string
	// Detail is a human explanation of what the condition means and what
	// to do about it.
	Detail string
	// Value extracts the rule's observable from the series. ok=false
	// means "no data" and never triggers (a fresh daemon with an empty
	// series is healthy, not alerting).
	Value func(ts *Series) (val float64, ok bool)
	// Op compares the value against Threshold.
	Op RuleOp
	// Threshold is the boundary the value must cross to trigger.
	Threshold float64
	// For is the sustained duration: how long the condition must hold
	// continuously before the rule fires. Zero fires on the first breach.
	For time.Duration
}

// breached reports whether val crosses the rule's threshold.
func (r Rule) breached(val float64) bool {
	if r.Op == Below {
		return val < r.Threshold
	}
	return val > r.Threshold
}

// Alert is the export form of a rule whose condition currently holds.
// State is "pending" while the condition is younger than the rule's
// sustained duration and "firing" once it exceeds it; only firing alerts
// degrade /healthz.
type Alert struct {
	Rule                 string  `json:"rule"`
	State                string  `json:"state"`
	Detail               string  `json:"detail,omitempty"`
	Value                float64 `json:"value"`
	Op                   string  `json:"op"`
	Threshold            float64 `json:"threshold"`
	SinceUnixNanos       int64   `json:"since_unix_nanos"`
	FiringSinceUnixNanos int64   `json:"firing_since_unix_nanos,omitempty"`
}

// ruleState is one rule's evaluation history.
type ruleState struct {
	condSince   int64 // when the condition started holding; 0 = not holding
	firingSince int64 // when the rule crossed its For duration; 0 = not firing
	lastVal     float64
}

// RuleSet evaluates a fixed set of rules over a series and retains their
// pending/firing state. Eval runs on the monitor goroutine; Firing and
// States are read concurrently by the debug endpoints.
type RuleSet struct {
	mu    sync.Mutex
	rules []Rule
	st    []ruleState

	// onFiring observes every pending→firing transition (incident capture,
	// paging hooks). Called outside the lock, on the Eval caller's
	// goroutine, once per edge.
	onFiring atomic.Value // func(Alert)
}

// SetOnFiring installs a hook invoked once for each rule's pending→firing
// transition, after the evaluation that crossed the edge completes.
func (rs *RuleSet) SetOnFiring(fn func(Alert)) {
	if rs == nil {
		return
	}
	rs.onFiring.Store(fn)
}

// NewRuleSet returns an evaluator over rules. Rules without a Value func
// are dropped (they could never trigger).
func NewRuleSet(rules ...Rule) *RuleSet {
	kept := make([]Rule, 0, len(rules))
	for _, r := range rules {
		if r.Value != nil {
			kept = append(kept, r)
		}
	}
	return &RuleSet{rules: kept, st: make([]ruleState, len(kept))}
}

// Eval evaluates every rule against ts at nowNanos, advancing pending →
// firing transitions and clearing rules whose condition no longer holds.
func (rs *RuleSet) Eval(ts *Series, nowNanos int64) {
	if rs == nil {
		return
	}
	var edges []Alert
	rs.mu.Lock()
	for i, r := range rs.rules {
		st := &rs.st[i]
		val, ok := r.Value(ts)
		if !ok || !r.breached(val) {
			st.condSince, st.firingSince, st.lastVal = 0, 0, val
			continue
		}
		st.lastVal = val
		if st.condSince == 0 {
			st.condSince = nowNanos
		}
		if st.firingSince == 0 && nowNanos-st.condSince >= r.For.Nanoseconds() {
			st.firingSince = nowNanos
			edges = append(edges, Alert{
				Rule:                 r.Name,
				State:                "firing",
				Detail:               r.Detail,
				Value:                val,
				Op:                   r.Op.String(),
				Threshold:            r.Threshold,
				SinceUnixNanos:       st.condSince,
				FiringSinceUnixNanos: st.firingSince,
			})
		}
	}
	rs.mu.Unlock()
	if len(edges) > 0 {
		if v := rs.onFiring.Load(); v != nil {
			if fn := v.(func(Alert)); fn != nil {
				for _, a := range edges {
					fn(a)
				}
			}
		}
	}
}

// States returns every rule whose condition currently holds — pending and
// firing — for display surfaces (nvmctl watch, /vitals).
func (rs *RuleSet) States() []Alert {
	return rs.alerts(false)
}

// Firing returns only the rules past their sustained duration — the set
// that degrades /healthz.
func (rs *RuleSet) Firing() []Alert {
	return rs.alerts(true)
}

func (rs *RuleSet) alerts(firingOnly bool) []Alert {
	if rs == nil {
		return nil
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var out []Alert
	for i, r := range rs.rules {
		st := rs.st[i]
		if st.condSince == 0 || (firingOnly && st.firingSince == 0) {
			continue
		}
		a := Alert{
			Rule:                 r.Name,
			State:                "pending",
			Detail:               r.Detail,
			Value:                st.lastVal,
			Op:                   r.Op.String(),
			Threshold:            r.Threshold,
			SinceUnixNanos:       st.condSince,
			FiringSinceUnixNanos: st.firingSince,
		}
		if st.firingSince != 0 {
			a.State = "firing"
		}
		out = append(out, a)
	}
	return out
}

// Healthy reports whether no rule is firing.
func (rs *RuleSet) Healthy() bool {
	if rs == nil {
		return true
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for _, st := range rs.st {
		if st.firingSince != 0 {
			return false
		}
	}
	return true
}

// GaugeValue observes the named gauge's latest sample.
func GaugeValue(name string) func(*Series) (float64, bool) {
	return func(ts *Series) (float64, bool) {
		v, ok := ts.GaugeLast(name)
		return float64(v), ok
	}
}

// CounterRate observes the named counter's per-second rate over window.
func CounterRate(name string, window time.Duration) func(*Series) (float64, bool) {
	return func(ts *Series) (float64, bool) {
		return ts.Rate(name, window)
	}
}

// MaxQuantileNanos observes the worst windowed q-quantile (nanoseconds)
// across histograms sharing a name prefix.
func MaxQuantileNanos(prefix string, q float64, window time.Duration) func(*Series) (float64, bool) {
	return func(ts *Series) (float64, bool) {
		return ts.MaxQuantileOverWindow(prefix, q, window)
	}
}

// HitRatio observes hits/(hits+misses) over the window, reporting data
// only once at least minEvents lookups landed in it — a cold cache is
// not a collapsed cache.
func HitRatio(hits, misses string, window time.Duration, minEvents int64) func(*Series) (float64, bool) {
	return func(ts *Series) (float64, bool) {
		o, n, ok := ts.Window(window)
		if !ok {
			return 0, false
		}
		h := CounterDelta(o, n, hits)
		m := CounterDelta(o, n, misses)
		if h+m < minEvents {
			return 0, false
		}
		return float64(h) / float64(h+m), true
	}
}

// SLO is the error-budget form of a health condition: "fraction Target of
// events must succeed". It compiles (via Rule) into a multi-window
// burn-rate rule over a good-event counter and a bad-event counter: the
// burn rate over a window is the observed error fraction divided by the
// budget (1−Target), so burn 1 exhausts the budget exactly at the SLO
// period's end, and burn 14 torches ~1.6% of a 30-day budget in an hour —
// page-worthy. Requiring BOTH a fast and a slow window above the
// threshold (the standard SRE multi-window test) makes the rule reset
// quickly once the outage ends while staying deaf to one-sample blips.
type SLO struct {
	// Name and Detail carry through to the generated Rule.
	Name   string
	Detail string
	// Good and Bad are counter names: successes and failures of the
	// guarded operation (e.g. probe.ok / probe.err).
	Good string
	Bad  string
	// Target is the availability objective in (0,1), e.g. 0.999.
	Target float64
	// SlowWindow is the long lookback; FastWindow the short one
	// (default SlowWindow/12, echoing the 1h/5m pairing).
	SlowWindow time.Duration
	FastWindow time.Duration
	// BurnThreshold is the burn rate both windows must exceed
	// (default 14).
	BurnThreshold float64
	// MinEvents is the minimum good+bad events inside the fast window
	// before the rule has data (default 20) — an idle service isn't out
	// of budget.
	MinEvents int64
	// For is the sustained duration before firing (zero fires on the
	// first breached evaluation — the windows already debounce).
	For time.Duration
}

func (s SLO) withDefaults() SLO {
	if s.Target <= 0 || s.Target >= 1 {
		s.Target = 0.999
	}
	if s.SlowWindow <= 0 {
		s.SlowWindow = time.Hour
	}
	if s.FastWindow <= 0 {
		s.FastWindow = s.SlowWindow / 12
	}
	if s.BurnThreshold <= 0 {
		s.BurnThreshold = 14
	}
	if s.MinEvents <= 0 {
		s.MinEvents = 20
	}
	return s
}

// burnOver computes the burn rate over one window: error fraction divided
// by the error budget. ok=false when the window lacks samples or events.
func (s SLO) burnOver(ts *Series, window time.Duration) (float64, bool) {
	o, n, ok := ts.Window(window)
	if !ok {
		return 0, false
	}
	good := CounterDelta(o, n, s.Good)
	bad := CounterDelta(o, n, s.Bad)
	if good+bad < s.MinEvents {
		return 0, false
	}
	frac := float64(bad) / float64(good+bad)
	return frac / (1 - s.Target), true
}

// Rule compiles the SLO into a threshold Rule whose value is
// min(burn(fast), burn(slow)): with Op Above, the rule triggers only when
// BOTH windows burn past the threshold.
func (s SLO) Rule() Rule {
	s = s.withDefaults()
	detail := s.Detail
	if detail == "" {
		detail = fmt.Sprintf("%s SLO %.4g%% burning >%.3gx over %s and %s windows",
			s.Name, s.Target*100, s.BurnThreshold, s.FastWindow, s.SlowWindow)
	}
	return Rule{
		Name:   s.Name,
		Detail: detail,
		Value: func(ts *Series) (float64, bool) {
			fast, ok := s.burnOver(ts, s.FastWindow)
			if !ok {
				return 0, false
			}
			slow, ok := s.burnOver(ts, s.SlowWindow)
			if !ok {
				return 0, false
			}
			if slow < fast {
				return slow, true
			}
			return fast, true
		},
		Op:        Above,
		Threshold: s.BurnThreshold,
		For:       s.For,
	}
}

// RuleDefaults parameterizes DefaultRules.
type RuleDefaults struct {
	// HeartbeatTimeout is the manager's liveness bound; the
	// heartbeat-stale rule fires when the stalest live benefactor exceeds
	// it. Zero gets the manager default (5s).
	HeartbeatTimeout time.Duration
	// Sustain is the default sustained duration for trend rules
	// (under-replication, latency, hit-rate). Zero gets 30s.
	Sustain time.Duration
	// Window is the rate/quantile lookback. Zero gets 30s.
	Window time.Duration
	// P99Budget is the per-op latency budget the p99 rules enforce. Zero
	// gets 250ms.
	P99Budget time.Duration
}

func (d RuleDefaults) withDefaults() RuleDefaults {
	if d.HeartbeatTimeout <= 0 {
		d.HeartbeatTimeout = 5 * time.Second
	}
	if d.Sustain <= 0 {
		d.Sustain = 30 * time.Second
	}
	if d.Window <= 0 {
		d.Window = 30 * time.Second
	}
	if d.P99Budget <= 0 {
		d.P99Budget = 250 * time.Millisecond
	}
	return d
}

// DefaultRules returns the stock health rules. The set is
// role-independent: each rule observes metrics only a manager, a
// benefactor, or a cache-bearing client records, and a rule whose metrics
// a process never touches simply has no data and never triggers, so every
// daemon can install the full set.
func DefaultRules(d RuleDefaults) []Rule {
	d = d.withDefaults()
	return []Rule{
		{
			Name:      "under-replicated",
			Detail:    "chunks below the replica target; run `nvmctl repair`",
			Value:     GaugeValue("manager.under_replicated"),
			Op:        Above,
			Threshold: 0,
			For:       d.Sustain,
		},
		{
			Name:      "heartbeat-stale",
			Detail:    "a live benefactor's heartbeat is older than the death timeout",
			Value:     GaugeValue("manager.max_beat_age_nanos"),
			Op:        Above,
			Threshold: float64(d.HeartbeatTimeout.Nanoseconds()),
		},
		{
			Name:      "manager-op-p99",
			Detail:    "a manager op's windowed p99 latency exceeds the budget",
			Value:     MaxQuantileNanos("manager.op.", 0.99, d.Window),
			Op:        Above,
			Threshold: float64(d.P99Budget.Nanoseconds()),
			For:       d.Sustain,
		},
		{
			Name:      "benefactor-op-p99",
			Detail:    "a benefactor op's windowed p99 latency exceeds the budget",
			Value:     MaxQuantileNanos("benefactor.op.", 0.99, d.Window),
			Op:        Above,
			Threshold: float64(d.P99Budget.Nanoseconds()),
			For:       d.Sustain,
		},
		{
			Name:      "rpc-p99",
			Detail:    "a client rpc's windowed p99 latency exceeds the budget",
			Value:     MaxQuantileNanos("rpc.", 0.99, d.Window),
			Op:        Above,
			Threshold: float64(d.P99Budget.Nanoseconds()),
			For:       d.Sustain,
		},
		{
			Name:      "filecache-hit-collapse",
			Detail:    "file-tier hit rate collapsed under sustained lookups",
			Value:     HitRatio("filecache.hits", "filecache.misses", d.Window, 100),
			Op:        Below,
			Threshold: 0.1,
			For:       d.Sustain,
		},
		{
			Name:      "filecache-commit-errors",
			Detail:    "file-tier snapshot commits are failing (disk full or permissions?)",
			Value:     CounterRate("filecache.commit_errors", d.Window),
			Op:        Above,
			Threshold: 0,
		},
		SLO{
			Name:       "probe-slo-burn",
			Detail:     "canary probes are burning the 99.9% availability budget across both windows",
			Good:       "probe.ok",
			Bad:        "probe.err",
			Target:     0.999,
			SlowWindow: d.Window,
		}.Rule(),
		SLO{
			Name:       "repair-slo-burn",
			Detail:     "re-replication repairs are burning the 99% success budget across both windows",
			Good:       "manager.chunks_repaired",
			Bad:        "manager.repair_failures",
			Target:     0.99,
			SlowWindow: d.Window,
		}.Rule(),
	}
}
