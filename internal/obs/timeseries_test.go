package obs

import (
	"testing"
	"time"
)

// snapAt builds a minimal sample for series math tests.
func snapAt(t int64, counters map[string]int64) Snapshot {
	return Snapshot{Node: "t", UnixNanos: t, Counters: counters}
}

func TestSeriesWraparound(t *testing.T) {
	s := NewSeries(4)
	for i := int64(1); i <= 10; i++ {
		s.Add(snapAt(i, map[string]int64{"c": i * 100}))
	}
	if got := s.Len(); got != 4 {
		t.Fatalf("Len after wrap = %d, want 4", got)
	}
	samples := s.Samples()
	if len(samples) != 4 {
		t.Fatalf("Samples = %d entries, want 4", len(samples))
	}
	// Oldest retained must be sample 7, newest sample 10, in order.
	for i, want := range []int64{7, 8, 9, 10} {
		if samples[i].UnixNanos != want {
			t.Fatalf("samples[%d].UnixNanos = %d, want %d", i, samples[i].UnixNanos, want)
		}
	}
	last, ok := s.Last()
	if !ok || last.UnixNanos != 10 {
		t.Fatalf("Last = %v/%v, want sample 10", last.UnixNanos, ok)
	}
}

func TestSeriesWindowSelection(t *testing.T) {
	s := NewSeries(8)
	// One sample per second at 1e9 nanos apart.
	for i := int64(0); i < 6; i++ {
		s.Add(snapAt(i*1e9, map[string]int64{"c": i * 10}))
	}
	// A 2s window from t=5s must pick t=3s as the base (newest sample at
	// least 2s older), not the oldest retained.
	o, n, ok := s.Window(2 * time.Second)
	if !ok {
		t.Fatal("Window not ok with 6 samples")
	}
	if n.UnixNanos != 5e9 || o.UnixNanos != 3e9 {
		t.Fatalf("Window(2s) = [%d, %d], want [3e9, 5e9]", o.UnixNanos, n.UnixNanos)
	}
	// A window longer than retained history falls back to the oldest.
	o, _, _ = s.Window(time.Hour)
	if o.UnixNanos != 0 {
		t.Fatalf("Window(1h) base = %d, want oldest (0)", o.UnixNanos)
	}
	// Rate over the 2s window: counter moved 50-30=20 over 2s.
	rate, ok := s.Rate("c", 2*time.Second)
	if !ok || rate != 10 {
		t.Fatalf("Rate = %v/%v, want 10/s", rate, ok)
	}
}

func TestSeriesWindowNeedsTwoSamples(t *testing.T) {
	var nilSeries *Series
	if _, _, ok := nilSeries.Window(time.Second); ok {
		t.Fatal("nil series Window ok")
	}
	s := NewSeries(4)
	s.Add(snapAt(1, nil))
	if _, _, ok := s.Window(time.Second); ok {
		t.Fatal("single-sample Window ok")
	}
}

func TestCounterReset(t *testing.T) {
	s := NewSeries(4)
	s.Add(snapAt(1e9, map[string]int64{"c": 1000}))
	// Daemon restarted: the counter starts over and reaches 40.
	s.Add(snapAt(2e9, map[string]int64{"c": 40}))
	d, ok := s.Delta("c", time.Second)
	if !ok || d != 40 {
		t.Fatalf("Delta across reset = %d/%v, want 40 (post-reset value)", d, ok)
	}
	rate, _ := s.Rate("c", time.Second)
	if rate < 0 {
		t.Fatalf("Rate across reset negative: %v", rate)
	}
}

func TestWindowHistogram(t *testing.T) {
	h := newHistogram()
	h.Observe(2 * time.Microsecond)
	h.Observe(2 * time.Microsecond)
	older := Snapshot{UnixNanos: 1e9, Histograms: map[string]HistogramSnapshot{"lat": h.Snapshot()}}
	h.Observe(100 * time.Microsecond)
	h.Observe(100 * time.Microsecond)
	h.Observe(100 * time.Microsecond)
	newer := Snapshot{UnixNanos: 2e9, Histograms: map[string]HistogramSnapshot{"lat": h.Snapshot()}}

	w := WindowHistogram(older, newer, "lat")
	if w.Count != 3 {
		t.Fatalf("windowed Count = %d, want 3 (only the new observations)", w.Count)
	}
	wantSum := int64(3 * 100 * 1000)
	if w.SumNanos != wantSum {
		t.Fatalf("windowed SumNanos = %d, want %d", w.SumNanos, wantSum)
	}
	// The two early 2µs observations must not appear in any bucket.
	var total int64
	for _, c := range w.Counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("windowed bucket total = %d, want 3", total)
	}
	// p50 of the window must be near 100µs, not dragged down to 2µs.
	if w.P50Nanos < 64_000 {
		t.Fatalf("windowed P50 = %dns, want >= 64µs bucket", w.P50Nanos)
	}

	// Reset: the newer snapshot has fewer observations than the older one
	// (restart) — degrade to the newer cumulative, never negative buckets.
	fresh := newHistogram()
	fresh.Observe(time.Microsecond)
	reset := Snapshot{UnixNanos: 3e9, Histograms: map[string]HistogramSnapshot{"lat": fresh.Snapshot()}}
	w = WindowHistogram(newer, reset, "lat")
	if w.Count != 1 {
		t.Fatalf("post-reset windowed Count = %d, want 1 (newest cumulative)", w.Count)
	}
	for i, c := range w.Counts {
		if c < 0 {
			t.Fatalf("bucket %d negative after reset: %d", i, c)
		}
	}
}

func TestMaxQuantileOverWindow(t *testing.T) {
	fast, slow := newHistogram(), newHistogram()
	for i := 0; i < 10; i++ {
		fast.Observe(2 * time.Microsecond)
		slow.Observe(50 * time.Millisecond)
	}
	s := NewSeries(4)
	s.Add(Snapshot{UnixNanos: 1e9, Histograms: map[string]HistogramSnapshot{
		"op.a.latency": {}, "op.b.latency": {},
	}})
	s.Add(Snapshot{UnixNanos: 2e9, Histograms: map[string]HistogramSnapshot{
		"op.a.latency": fast.Snapshot(), "op.b.latency": slow.Snapshot(),
	}})
	v, ok := s.MaxQuantileOverWindow("op.", 0.99, time.Second)
	if !ok {
		t.Fatal("MaxQuantileOverWindow not ok")
	}
	if v < float64(16*time.Millisecond) {
		t.Fatalf("max p99 = %vns, want the slow histogram's (>= 16ms)", v)
	}
	if _, ok := s.MaxQuantileOverWindow("nosuch.", 0.99, time.Second); ok {
		t.Fatal("MaxQuantileOverWindow matched a non-existent prefix")
	}
}
