package obs

import (
	"strings"
	"sync"
	"time"
)

// DefaultSeriesSamples is the sample capacity of series made by
// StartMonitor when MonitorConfig.History is zero. At the default 1s
// sampling cadence it retains five minutes of history.
const DefaultSeriesSamples = 300

// Series is a bounded ring of periodic Registry snapshots — the
// time-series substrate of the continuous-monitoring layer. Samples are
// appended by the monitor goroutine (StartMonitor) and read concurrently
// by the alert-rule evaluator, the /vitals endpoint, and tests; every
// method is safe for concurrent use and nil-safe.
//
// All derived math (rates, deltas, windowed histograms) pairs the newest
// sample with the newest sample at least `window` older, so answers are
// "over the last N seconds" rather than "since boot". Counter resets — a
// daemon restart hands the scraper a smaller value than it saw before —
// are handled by treating the post-reset value as the whole delta: the
// increments lost to the restart are unknowable, and under-counting one
// window beats a huge negative rate.
type Series struct {
	mu   sync.Mutex
	buf  []Snapshot
	next int64 // total samples ever appended
}

// NewSeries returns a series retaining the last capacity samples (min 2;
// capacity <= 0 gets DefaultSeriesSamples).
func NewSeries(capacity int) *Series {
	if capacity <= 0 {
		capacity = DefaultSeriesSamples
	}
	if capacity < 2 {
		capacity = 2
	}
	return &Series{buf: make([]Snapshot, 0, capacity)}
}

// Add appends one sample, overwriting the oldest once full.
func (s *Series) Add(snap Snapshot) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, snap)
	} else {
		s.buf[s.next%int64(cap(s.buf))] = snap
	}
	s.next++
}

// Len returns the number of samples currently retained.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Last returns the newest sample.
func (s *Series) Last() (Snapshot, bool) {
	if s == nil {
		return Snapshot{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) == 0 {
		return Snapshot{}, false
	}
	return s.buf[(s.next-1)%int64(cap(s.buf))], true
}

// Samples returns the retained samples, oldest first.
func (s *Series) Samples() []Snapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Snapshot, 0, len(s.buf))
	start := s.next - int64(len(s.buf))
	for i := start; i < s.next; i++ {
		out = append(out, s.buf[i%int64(cap(s.buf))])
	}
	return out
}

// Window returns the newest sample and the most recent sample at least
// window older than it (falling back to the oldest retained when history
// is shorter than the window). ok is false with fewer than two samples —
// no interval exists to difference over.
func (s *Series) Window(window time.Duration) (oldest, newest Snapshot, ok bool) {
	if s == nil {
		return Snapshot{}, Snapshot{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) < 2 {
		return Snapshot{}, Snapshot{}, false
	}
	start := s.next - int64(len(s.buf))
	newest = s.buf[(s.next-1)%int64(cap(s.buf))]
	cutoff := newest.UnixNanos - window.Nanoseconds()
	oldest = s.buf[start%int64(cap(s.buf))]
	// Walk newest-ward: the last sample at or before the cutoff is the
	// tightest window base; stop before the newest itself.
	for i := start; i < s.next-1; i++ {
		sm := s.buf[i%int64(cap(s.buf))]
		if sm.UnixNanos > cutoff {
			break
		}
		oldest = sm
	}
	return oldest, newest, true
}

// CounterDelta returns how much the named counter grew between two
// samples. A counter that shrank (daemon restart reset it) contributes
// its post-reset value: everything it counted since the restart.
func CounterDelta(oldest, newest Snapshot, name string) int64 {
	nv := newest.Counters[name]
	ov := oldest.Counters[name]
	if nv < ov {
		return nv
	}
	return nv - ov
}

// Rate returns the named counter's per-second rate over the window
// (counter-reset aware). ok is false without two distinct samples.
func (s *Series) Rate(name string, window time.Duration) (perSec float64, ok bool) {
	o, n, ok := s.Window(window)
	if !ok {
		return 0, false
	}
	dt := float64(n.UnixNanos-o.UnixNanos) / 1e9
	if dt <= 0 {
		return 0, false
	}
	return float64(CounterDelta(o, n, name)) / dt, true
}

// Delta returns the named counter's growth over the window
// (counter-reset aware). ok is false without two distinct samples.
func (s *Series) Delta(name string, window time.Duration) (delta int64, ok bool) {
	o, n, ok := s.Window(window)
	if !ok {
		return 0, false
	}
	return CounterDelta(o, n, name), true
}

// GaugeLast returns the named gauge's value in the newest sample.
func (s *Series) GaugeLast(name string) (int64, bool) {
	last, ok := s.Last()
	if !ok {
		return 0, false
	}
	v, present := last.Gauges[name]
	return v, present
}

// WindowHistogram returns the histogram of observations recorded between
// two samples: the bucket-wise difference of the cumulative snapshots,
// with headline quantiles recomputed over just that window. A reset (any
// bucket or the total count went backwards — daemon restart) degrades to
// the newest cumulative snapshot, the same "post-reset data only" rule as
// CounterDelta. The result merges with other nodes' windowed histograms
// via HistogramSnapshot.Merge, which is how nvmctl watch builds cluster
// percentiles over the last N seconds.
func WindowHistogram(oldest, newest Snapshot, name string) HistogramSnapshot {
	hn := newest.Histograms[name]
	ho := oldest.Histograms[name]
	if ho.Count == 0 || len(ho.Counts) != len(hn.Counts) {
		return hn
	}
	if hn.Count < ho.Count {
		return hn
	}
	out := HistogramSnapshot{
		Count:       hn.Count - ho.Count,
		SumNanos:    hn.SumNanos - ho.SumNanos,
		BoundsNanos: hn.BoundsNanos,
		Counts:      make([]int64, len(hn.Counts)),
	}
	for i := range hn.Counts {
		d := hn.Counts[i] - ho.Counts[i]
		if d < 0 {
			return hn
		}
		out.Counts[i] = d
	}
	if out.SumNanos < 0 {
		out.SumNanos = 0
	}
	out.P50Nanos = out.Quantile(0.50).Nanoseconds()
	out.P95Nanos = out.Quantile(0.95).Nanoseconds()
	out.P99Nanos = out.Quantile(0.99).Nanoseconds()
	return out
}

// HistWindow returns the named histogram's windowed snapshot. ok is false
// without two distinct samples.
func (s *Series) HistWindow(name string, window time.Duration) (HistogramSnapshot, bool) {
	o, n, ok := s.Window(window)
	if !ok {
		return HistogramSnapshot{}, false
	}
	return WindowHistogram(o, n, name), true
}

// QuantileOverWindow returns the q-quantile (nanoseconds) of the named
// histogram's observations within the window. ok is false when no
// observation landed in the window.
func (s *Series) QuantileOverWindow(name string, q float64, window time.Duration) (nanos float64, ok bool) {
	h, ok := s.HistWindow(name, window)
	if !ok || h.Count == 0 {
		return 0, false
	}
	return float64(h.Quantile(q).Nanoseconds()), true
}

// MaxQuantileOverWindow returns the largest windowed q-quantile across
// every histogram whose name starts with prefix — "the worst p99 of any
// manager op over the last 30s". ok is false when no matching histogram
// saw an observation in the window.
func (s *Series) MaxQuantileOverWindow(prefix string, q float64, window time.Duration) (nanos float64, ok bool) {
	o, n, wok := s.Window(window)
	if !wok {
		return 0, false
	}
	for name := range n.Histograms {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		h := WindowHistogram(o, n, name)
		if h.Count == 0 {
			continue
		}
		if v := float64(h.Quantile(q).Nanoseconds()); !ok || v > nanos {
			nanos, ok = v, true
		}
	}
	return nanos, ok
}
