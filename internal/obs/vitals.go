package obs

import "time"

// Vitals is one daemon's self-described windowed health view, served at
// /vitals: per-second counter rates and windowed histograms computed from
// the daemon's own time series (so a single scrape yields rates — no
// client-side delta bookkeeping), the latest gauges, and the alert-rule
// state. Windowed histograms merge across daemons with
// HistogramSnapshot.Merge, which is how nvmctl watch renders cluster
// percentiles over the last N seconds.
type Vitals struct {
	Node          string  `json:"node"`
	UnixNanos     int64   `json:"unix_nanos"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// WindowSeconds is the actual span the rates and histograms cover: the
	// requested window clipped to retained history, or the whole uptime
	// when the daemon runs without a monitor (lifetime averages then).
	WindowSeconds float64 `json:"window_seconds"`
	// Samples is the number of time-series samples retained (0 means no
	// monitor — the vitals degrade to lifetime averages).
	Samples int                          `json:"samples"`
	Rates   map[string]float64           `json:"rates"`
	Gauges  map[string]int64             `json:"gauges"`
	Hists   map[string]HistogramSnapshot `json:"hists"`
	// Alerts are the rules whose condition currently holds, pending and
	// firing both. Healthy is false only when at least one is firing.
	Alerts  []Alert `json:"alerts,omitempty"`
	Healthy bool    `json:"healthy"`
}

// Vitals computes the daemon's windowed view. With a running monitor the
// rates/histograms cover the last `window` of the sample series; without
// one they degrade to lifetime averages over a fresh snapshot, so the
// endpoint is useful (if less sharp) on daemons running without sampling.
func (o *Obs) Vitals(window time.Duration) Vitals {
	v := Vitals{Healthy: true}
	if o == nil || o.Reg == nil {
		return v
	}
	if rs := o.rules.Load(); rs != nil {
		v.Alerts = rs.States()
		v.Healthy = rs.Healthy()
	}
	ts := o.ts.Load()
	if older, newest, ok := ts.Window(window); ok {
		v.Node = newest.Node
		v.UnixNanos = newest.UnixNanos
		v.UptimeSeconds = newest.UptimeSeconds
		v.Samples = ts.Len()
		v.WindowSeconds = float64(newest.UnixNanos-older.UnixNanos) / 1e9
		v.Rates = make(map[string]float64, len(newest.Counters))
		if v.WindowSeconds > 0 {
			for name := range newest.Counters {
				v.Rates[name] = float64(CounterDelta(older, newest, name)) / v.WindowSeconds
			}
		}
		v.Gauges = newest.Gauges
		v.Hists = make(map[string]HistogramSnapshot, len(newest.Histograms))
		for name := range newest.Histograms {
			if h := WindowHistogram(older, newest, name); h.Count > 0 {
				v.Hists[name] = h
			}
		}
		return v
	}
	// No series (or a single sample): lifetime averages over a live snapshot.
	snap := o.Reg.Snapshot()
	v.Node = snap.Node
	v.UnixNanos = snap.UnixNanos
	v.UptimeSeconds = snap.UptimeSeconds
	v.Samples = ts.Len()
	v.WindowSeconds = snap.UptimeSeconds
	v.Rates = make(map[string]float64, len(snap.Counters))
	if snap.UptimeSeconds > 0 {
		for name, c := range snap.Counters {
			v.Rates[name] = float64(c) / snap.UptimeSeconds
		}
	}
	v.Gauges = snap.Gauges
	v.Hists = make(map[string]HistogramSnapshot, len(snap.Histograms))
	for name, h := range snap.Histograms {
		if h.Count > 0 {
			v.Hists[name] = h
		}
	}
	return v
}
