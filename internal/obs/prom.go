package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4), stdlib-only. The
// naming scheme is mechanical and stable so dashboards survive refactors:
//
//   - every metric is prefixed "nvm_" and the registry's dotted name has
//     [.-] mapped to "_" ("manager.under_replicated" →
//     "nvm_manager_under_replicated")
//   - counters get the conventional "_total" suffix
//   - latency histograms are exported in base seconds with a "_seconds"
//     suffix ("rpc.get_chunk.latency" →
//     "nvm_rpc_get_chunk_latency_seconds" with _bucket/_sum/_count)
//   - every sample carries the daemon's identity as a node="..." label
//   - process uptime is a synthetic gauge, nvm_uptime_seconds, and the
//     binary's build identity is nvm_build_info (value 1, revision and
//     goversion labels)
//
// Bucket upper bounds are the registry's fixed exponential nanosecond
// bounds converted to seconds, so `le` values are identical across every
// daemon and scrape — a hard requirement for PromQL histogram_quantile
// aggregation across the fleet.

// PromContentType is the Content-Type of the /metrics.prom endpoint.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes s in the Prometheus text exposition format.
// Output is deterministic: metrics sort by name within each kind.
func WritePrometheus(w io.Writer, s Snapshot) error {
	label := fmt.Sprintf("{node=%q}", s.Node)

	if _, err := fmt.Fprintf(w,
		"# HELP nvm_uptime_seconds process uptime\n# TYPE nvm_uptime_seconds gauge\nnvm_uptime_seconds%s %s\n",
		label, formatFloat(s.UptimeSeconds)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"# HELP nvm_build_info build identity of this binary\n# TYPE nvm_build_info gauge\nnvm_build_info{node=%q,revision=%q,goversion=%q} 1\n",
		s.Node, BuildRevision(), buildGoVersion()); err != nil {
		return err
	}

	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# HELP %s counter %s\n# TYPE %s counter\n%s%s %d\n",
			pn, name, pn, pn, label, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s gauge %s\n# TYPE %s gauge\n%s%s %d\n",
			pn, name, pn, pn, label, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		if err := writePromHistogram(w, s.Node, name, s.Histograms[name]); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, node, name string, h HistogramSnapshot) error {
	pn := promName(name) + "_seconds"
	if _, err := fmt.Fprintf(w, "# HELP %s histogram %s\n# TYPE %s histogram\n", pn, name, pn); err != nil {
		return err
	}
	cum := int64(0)
	for i, bound := range h.BoundsNanos {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{node=%q,le=%q} %d\n",
			pn, node, formatFloat(float64(bound)/1e9), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{node=%q,le=\"+Inf\"} %d\n%s_sum%s %s\n%s_count%s %d\n",
		pn, node, h.Count,
		pn, fmt.Sprintf("{node=%q}", node), formatFloat(float64(h.SumNanos)/1e9),
		pn, fmt.Sprintf("{node=%q}", node), h.Count)
	return err
}

// promName converts a registry metric name to a Prometheus-legal one.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 4)
	b.WriteString("nvm_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatFloat renders a float the shortest way that round-trips, the
// conventional exposition formatting ("1e-06", "0.25", "3").
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
