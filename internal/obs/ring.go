package obs

import (
	"sync"
	"time"
)

// Event is one entry of the trace ring: something that happened to a chunk
// or a request (alloc, stripe-write, eviction, writeback, retry, failover,
// repair, ...), tagged with the trace ID of the operation that caused it.
type Event struct {
	Seq       int64  `json:"seq"`
	UnixNanos int64  `json:"unix_nanos"`
	Trace     string `json:"trace,omitempty"`
	Comp      string `json:"comp"`
	Kind      string `json:"kind"`
	Detail    string `json:"detail,omitempty"`
}

// Time returns the event's wall-clock timestamp.
func (e Event) Time() time.Time { return time.Unix(0, e.UnixNanos) }

// Ring is a bounded in-memory event trace: the newest capacity events are
// kept, older ones are overwritten. All methods are safe for concurrent
// use and no-op on a nil receiver.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next int64 // total events ever added; buf[next%cap] is the next slot
}

// NewRing returns a ring keeping the latest capacity events (minimum 16).
func NewRing(capacity int) *Ring {
	if capacity < 16 {
		capacity = 16
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Add appends one event stamped with the current time.
func (r *Ring) Add(comp, kind, trace, detail string) {
	if r == nil {
		return
	}
	now := time.Now().UnixNano()
	r.mu.Lock()
	r.buf[r.next%int64(len(r.buf))] = Event{
		Seq: r.next, UnixNanos: now,
		Trace: trace, Comp: comp, Kind: kind, Detail: detail,
	}
	r.next++
	r.mu.Unlock()
}

// Len returns how many events are currently retained.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < int64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Events returns the retained events oldest-first.
func (r *Ring) Events() []Event {
	return r.Filter(func(Event) bool { return true })
}

// ByTrace returns the retained events carrying the given trace ID,
// oldest-first.
func (r *Ring) ByTrace(trace string) []Event {
	return r.Filter(func(e Event) bool { return e.Trace == trace })
}

// Filter returns the retained events satisfying keep, oldest-first.
func (r *Ring) Filter(keep func(Event) bool) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := int64(len(r.buf))
	start := r.next - n
	if start < 0 {
		start = 0
	}
	out := make([]Event, 0, r.next-start)
	for seq := start; seq < r.next; seq++ {
		e := r.buf[seq%n]
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}
