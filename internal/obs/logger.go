package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities. LevelOff silences the logger entirely —
// the default, so libraries and tests stay quiet unless a daemon opts in.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	LevelOff
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "off"
}

// ParseLevel maps a flag value to a Level ("debug", "info", "warn",
// "error", "off").
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "":
		return LevelOff, nil
	}
	return LevelOff, fmt.Errorf("obs: unknown log level %q", s)
}

// Logger is a leveled structured logger emitting one key=value line per
// event. The sink is pluggable; writes are serialized. All methods no-op
// on a nil receiver or below the current level, so instrumented code logs
// unconditionally and pays one atomic load when the level filters it out.
type Logger struct {
	level atomic.Int32
	mu    sync.Mutex
	w     io.Writer
}

// NewLogger returns a logger writing to w (nil discards) at the given
// level.
func NewLogger(w io.Writer, level Level) *Logger {
	l := &Logger{w: w}
	l.level.Store(int32(level))
	return l
}

// SetLevel adjusts the threshold at runtime.
func (l *Logger) SetLevel(level Level) {
	if l == nil {
		return
	}
	l.level.Store(int32(level))
}

// SetSink replaces the output writer.
func (l *Logger) SetSink(w io.Writer) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.w = w
	l.mu.Unlock()
}

func (l *Logger) log(level Level, msg string, kv []any) {
	if l == nil || level < Level(l.level.Load()) {
		return
	}
	var b strings.Builder
	b.Grow(96)
	b.WriteString("ts=")
	b.WriteString(time.Now().UTC().Format(time.RFC3339Nano))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(strconv.Quote(msg))
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%v", kv[i])
		b.WriteByte('=')
		writeValue(&b, kv[i+1])
	}
	if len(kv)%2 == 1 {
		fmt.Fprintf(&b, " EXTRA=%v", kv[len(kv)-1])
	}
	b.WriteByte('\n')
	l.mu.Lock()
	if l.w != nil {
		io.WriteString(l.w, b.String())
	}
	l.mu.Unlock()
}

// writeValue renders one value, quoting strings that contain spaces so the
// line stays machine-splittable.
func writeValue(b *strings.Builder, v any) {
	switch x := v.(type) {
	case string:
		if strings.ContainsAny(x, " \t\n\"=") {
			b.WriteString(strconv.Quote(x))
		} else {
			b.WriteString(x)
		}
	case error:
		b.WriteString(strconv.Quote(x.Error()))
	default:
		fmt.Fprintf(b, "%v", v)
	}
}

// Debug logs at debug level with alternating key, value pairs.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level with alternating key, value pairs.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level with alternating key, value pairs.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level with alternating key, value pairs.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }
