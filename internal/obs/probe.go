package obs

import (
	"math/rand"
	"sync"
	"time"
)

// Default prober cadence: frequent enough that a 30s SLO window holds a
// meaningful sample count, rare enough to be invisible next to real
// traffic.
const (
	DefaultProbeInterval = 2 * time.Second
	// DefaultProbeJitter is the fraction of the interval each cycle is
	// randomly advanced or delayed by, so a fleet of probers never
	// synchronizes into a thundering herd against the managers.
	DefaultProbeJitter = 0.2
)

// ProbeTarget is one synthetic check the prober runs each cycle: Run
// performs a tiny end-to-end operation (a canary put/get/delete against
// one manager shard, a liveness round-trip to one benefactor) and returns
// nil on success. Name keys the per-target metrics, so it must be stable
// and metric-safe ("shard0", "ben3").
type ProbeTarget struct {
	Name string
	Run  func() error
}

// ProberConfig configures StartProber.
type ProberConfig struct {
	// Interval is the probe cadence (default DefaultProbeInterval).
	Interval time.Duration
	// Jitter is the random fraction of Interval each cycle shifts by
	// (default DefaultProbeJitter; negative disables jitter).
	Jitter float64
	// Targets returns the current probe set; called once per cycle so the
	// set tracks cluster membership (benefactors joining and dying).
	Targets func() []ProbeTarget
}

// Prober runs synthetic canary operations on a jittered interval and
// records their outcomes into an Obs registry:
//
//	probe.ok / probe.err                  aggregate success and failure counters
//	probe.latency                         aggregate round-trip histogram
//	probe.<name>.ok / probe.<name>.err    per-target counters
//	probe.<name>.latency                  per-target histogram
//
// The aggregate counters are what the probe-slo-burn rule consumes; the
// per-target series tell the operator which shard or benefactor is the
// one failing.
type Prober struct {
	cfg  ProberConfig
	o    *Obs
	stop chan struct{}
	wg   sync.WaitGroup

	mu   sync.Mutex
	rng  *rand.Rand
	ok   *Counter
	err  *Counter
	lat  *Histogram
	perT map[string]*probeHandles
}

type probeHandles struct {
	ok  *Counter
	err *Counter
	lat *Histogram
}

// StartProber launches the probe loop on a background goroutine. Returns
// nil (a safe no-op Prober) when o is nil/disabled, cfg.Targets is nil,
// or the interval resolves non-positive.
func StartProber(o *Obs, cfg ProberConfig) *Prober {
	if o == nil || o.Reg == nil || cfg.Targets == nil {
		return nil
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultProbeInterval
	}
	if cfg.Interval < 0 {
		return nil
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = DefaultProbeJitter
	}
	p := &Prober{
		cfg:  cfg,
		o:    o,
		stop: make(chan struct{}),
		rng:  rand.New(rand.NewSource(rand.Int63())),
		ok:   o.Reg.Counter("probe.ok"),
		err:  o.Reg.Counter("probe.err"),
		lat:  o.Reg.Histogram("probe.latency"),
		perT: make(map[string]*probeHandles),
	}
	p.wg.Add(1)
	go p.loop()
	return p
}

func (p *Prober) loop() {
	defer p.wg.Done()
	for {
		t := time.NewTimer(p.nextDelay())
		select {
		case <-p.stop:
			t.Stop()
			return
		case <-t.C:
		}
		p.RunOnce()
	}
}

// nextDelay returns the interval shifted by ±Jitter.
func (p *Prober) nextDelay() time.Duration {
	d := p.cfg.Interval
	if p.cfg.Jitter <= 0 {
		return d
	}
	p.mu.Lock()
	f := 1 + p.cfg.Jitter*(2*p.rng.Float64()-1)
	p.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// RunOnce executes one probe cycle — every target, sequentially —
// recording outcome counters and latencies. Exported so tests (and the
// loop) share one code path. Nil-safe.
func (p *Prober) RunOnce() {
	if p == nil {
		return
	}
	for _, tgt := range p.cfg.Targets() {
		if tgt.Run == nil {
			continue
		}
		h := p.handles(tgt.Name)
		start := time.Now()
		err := tgt.Run()
		el := time.Since(start)
		p.lat.Observe(el)
		h.lat.Observe(el)
		if err != nil {
			p.err.Add(1)
			h.err.Add(1)
			p.o.Log.Warn("probe failed", "target", tgt.Name, "err", err)
			continue
		}
		p.ok.Add(1)
		h.ok.Add(1)
	}
}

// handles returns (creating on first use) the per-target metric handles.
func (p *Prober) handles(name string) *probeHandles {
	p.mu.Lock()
	defer p.mu.Unlock()
	h, ok := p.perT[name]
	if !ok {
		h = &probeHandles{
			ok:  p.o.Reg.Counter("probe." + name + ".ok"),
			err: p.o.Reg.Counter("probe." + name + ".err"),
			lat: p.o.Reg.Histogram("probe." + name + ".latency"),
		}
		p.perT[name] = h
	}
	return h
}

// Stop halts the probe loop and waits for any in-flight cycle to finish.
// Idempotent and nil-safe.
func (p *Prober) Stop() {
	if p == nil {
		return
	}
	p.mu.Lock()
	select {
	case <-p.stop:
		p.mu.Unlock()
		return
	default:
		close(p.stop)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
