package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram buckets are exponential upper bounds in nanoseconds: bucket i
// (i < histBuckets-1) counts observations below 1µs<<i, covering 1µs up to
// ~17.9min; the last bucket is the overflow. Fixed bounds keep Observe
// allocation-free and make snapshots from different nodes mergeable
// bucket-by-bucket (nvmctl top aggregates cluster-wide quantiles that way).
const histBuckets = 32

// histBounds returns the shared upper-bound table (finite bounds only; the
// overflow bucket has no bound).
func histBounds() []int64 {
	b := make([]int64, histBuckets-1)
	for i := range b {
		b[i] = int64(1000) << i
	}
	return b
}

// Histogram is a fixed-bucket latency histogram. Observe is lock-free
// (three atomic adds) and all methods no-op on a nil receiver.
type Histogram struct {
	count, sum atomic.Int64 // sum in nanoseconds
	buckets    [histBuckets]atomic.Int64
}

func newHistogram() *Histogram { return &Histogram{} }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	n := d.Nanoseconds()
	if n < 0 {
		n = 0
	}
	// Bucket index: 0 for < 1µs, else 1+floor(log2(n/1µs)), capped at the
	// overflow bucket.
	idx := bits.Len64(uint64(n / 1000))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	h.count.Add(1)
	h.sum.Add(n)
	h.buckets[idx].Add(1)
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:       h.count.Load(),
		SumNanos:    h.sum.Load(),
		BoundsNanos: histBounds(),
		Counts:      make([]int64, histBuckets),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	s.P50Nanos = s.Quantile(0.50).Nanoseconds()
	s.P95Nanos = s.Quantile(0.95).Nanoseconds()
	s.P99Nanos = s.Quantile(0.99).Nanoseconds()
	return s
}

// HistogramSnapshot is the exported form of a Histogram: bucket counts
// plus precomputed headline quantiles. Snapshots with identical bounds
// (all of this package's) merge by summing counts.
type HistogramSnapshot struct {
	Count       int64   `json:"count"`
	SumNanos    int64   `json:"sum_nanos"`
	BoundsNanos []int64 `json:"bounds_nanos,omitempty"`
	Counts      []int64 `json:"counts,omitempty"`
	P50Nanos    int64   `json:"p50_nanos"`
	P95Nanos    int64   `json:"p95_nanos"`
	P99Nanos    int64   `json:"p99_nanos"`
}

// Mean returns the average observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket where the cumulative count crosses q*Count. The
// estimate is exact to within one bucket's width (a factor of two).
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	target := q * float64(s.Count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < target {
			continue
		}
		lower, upper := int64(0), int64(0)
		if i > 0 && i-1 < len(s.BoundsNanos) {
			lower = s.BoundsNanos[i-1]
		}
		if i < len(s.BoundsNanos) {
			upper = s.BoundsNanos[i]
		} else {
			// Overflow bucket: report its lower bound (the largest finite
			// bound) — quantiles beyond it are off the scale anyway.
			return time.Duration(lower)
		}
		frac := (target - prev) / float64(c)
		return time.Duration(float64(lower) + frac*float64(upper-lower))
	}
	if n := len(s.BoundsNanos); n > 0 {
		return time.Duration(s.BoundsNanos[n-1])
	}
	return 0
}

// Merge returns the bucket-wise sum of two snapshots (cluster-wide
// aggregation). Headline quantiles are recomputed from the merged buckets.
func (s HistogramSnapshot) Merge(other HistogramSnapshot) HistogramSnapshot {
	if s.Count == 0 {
		return other
	}
	if other.Count == 0 {
		return s
	}
	out := HistogramSnapshot{
		Count:       s.Count + other.Count,
		SumNanos:    s.SumNanos + other.SumNanos,
		BoundsNanos: s.BoundsNanos,
		Counts:      make([]int64, len(s.Counts)),
	}
	copy(out.Counts, s.Counts)
	for i := range other.Counts {
		if i < len(out.Counts) {
			out.Counts[i] += other.Counts[i]
		}
	}
	out.P50Nanos = out.Quantile(0.50).Nanoseconds()
	out.P95Nanos = out.Quantile(0.95).Nanoseconds()
	out.P99Nanos = out.Quantile(0.99).Nanoseconds()
	return out
}
