package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing (except for explicit resets)
// int64 metric. All methods are safe for concurrent use and no-ops on a
// nil receiver.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on a nil receiver).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Set overwrites the value. Exists for the ResetStats compatibility shims;
// new code should let counters grow monotonically.
func (c *Counter) Set(n int64) {
	if c == nil {
		return
	}
	c.v.Store(n)
}

// Gauge is an instantaneous int64 metric (queue depth, backlog size,
// heartbeat age). All methods are safe for concurrent use and no-ops on a
// nil receiver.
type Gauge struct{ v atomic.Int64 }

// Set overwrites the gauge.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by delta and returns the new value.
func (g *Gauge) Add(delta int64) int64 {
	if g == nil {
		return 0
	}
	return g.v.Add(delta)
}

// Max raises the gauge to n if n exceeds the current value (high-water
// marks such as peak in-flight requests).
func (g *Gauge) Max(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value (0 on a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a concurrent metrics registry. Handles are created on first
// use and live for the registry's lifetime, so hot paths look them up once
// at construction and then touch only atomics.
type Registry struct {
	node       string
	startNanos atomic.Int64
	clock      atomic.Value // func() int64, wall-clock Unix nanos

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry identified as node in exports.
func NewRegistry(node string) *Registry {
	r := &Registry{
		node:     node,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
	r.startNanos.Store(time.Now().UnixNano())
	return r
}

// SetClock installs the wall-clock source that stamps snapshots
// (Snapshot.UnixNanos) — an Env.NowNanos-compatible func() int64. Tests
// and the simulated substrate inject a deterministic clock through it;
// nil restores time.Now. Uptime is rebased to the new clock so
// UptimeSeconds stays monotonic from the moment of installation.
func (r *Registry) SetClock(now func() int64) {
	if r == nil {
		return
	}
	if now == nil {
		r.clock.Store((func() int64)(nil))
		r.startNanos.Store(time.Now().UnixNano())
		return
	}
	r.clock.Store(now)
	r.startNanos.Store(now())
}

// nowNanos reads the registry's clock (injected or time.Now).
func (r *Registry) nowNanos() int64 {
	if v := r.clock.Load(); v != nil {
		if f := v.(func() int64); f != nil {
			return f()
		}
	}
	return time.Now().UnixNano()
}

// Node returns the registry's export identity.
func (r *Registry) Node() string {
	if r == nil {
		return ""
	}
	return r.node
}

// Counter returns (creating if needed) the counter called name. Returns
// nil — a no-op handle — on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge called name. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the latency histogram called
// name. Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every metric's current value for export. Safe to call
// concurrently with recording; individual metrics are read atomically
// (the snapshot as a whole is not a single atomic cut, which is fine for
// monitoring).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	now := r.nowNanos()
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Node:          r.node,
		UnixNanos:     now,
		UptimeSeconds: float64(now-r.startNanos.Load()) / 1e9,
		Counters:      make(map[string]int64, len(r.counters)),
		Gauges:        make(map[string]int64, len(r.gauges)),
		Histograms:    make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Snapshot is a point-in-time export of a registry, the payload of the
// debug endpoint's /metrics (JSON).
type Snapshot struct {
	Node          string                       `json:"node"`
	UnixNanos     int64                        `json:"unix_nanos"`
	UptimeSeconds float64                      `json:"uptime_seconds"`
	Counters      map[string]int64             `json:"counters"`
	Gauges        map[string]int64             `json:"gauges"`
	Histograms    map[string]HistogramSnapshot `json:"histograms"`
}

// MetricNames returns every metric name in the snapshot, sorted, for
// stable pretty-printing.
func (s Snapshot) MetricNames() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
