package obs

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// IncidentConfig configures the on-disk incident recorder.
type IncidentConfig struct {
	// Dir is where bundles live (one subdirectory per bundle). Required.
	Dir string
	// MaxBundles bounds the on-disk ring: when a fresh capture would
	// exceed it, the oldest bundles are pruned. Default 8.
	MaxBundles int
	// CPUProfile is how long the CPU profile inside each bundle samples
	// for. Default 5s; negative skips the CPU profile entirely.
	CPUProfile time.Duration
	// SeriesTail is how many trailing monitor samples are written into
	// series.json. Default 64.
	SeriesTail int
	// Cooldown suppresses repeat captures: a non-forced capture within
	// Cooldown of the previous one returns the existing bundle instead of
	// writing a new one, so one incident produces one bundle per daemon
	// even when several rules fire across it. Default 10m.
	Cooldown time.Duration
}

func (c IncidentConfig) withDefaults() IncidentConfig {
	if c.MaxBundles <= 0 {
		c.MaxBundles = 8
	}
	if c.CPUProfile == 0 {
		c.CPUProfile = 5 * time.Second
	}
	if c.SeriesTail <= 0 {
		c.SeriesTail = 64
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Minute
	}
	return c
}

// IncidentMeta describes one captured bundle; it is the meta.json inside
// the bundle and the row /incidents lists.
type IncidentMeta struct {
	ID        string   `json:"id"`
	Node      string   `json:"node"`
	Reason    string   `json:"reason"`
	UnixNanos int64    `json:"unix_nanos"`
	Identity  Identity `json:"identity"`
	Firing    []Alert  `json:"firing,omitempty"`
	Files     []string `json:"files"`
}

// IncidentRecorder snapshots bounded diagnostic bundles to disk: a
// goroutine dump, heap and CPU profiles, the span ring and slow-op flight
// recorder, the tail of the monitor time series, the firing-rule state,
// and the daemon's cluster identity — everything a responder needs,
// saved at the moment the alert fired rather than reconstructed later.
type IncidentRecorder struct {
	cfg IncidentConfig
	o   *Obs

	mu        sync.Mutex
	last      IncidentMeta
	lastNanos int64
	inflight  bool
	wg        sync.WaitGroup
}

// cpuProfileMu serializes CPU profiling process-wide: the runtime allows
// only one active CPU profile, and tests run several daemons (hence
// recorders) in one process.
var cpuProfileMu sync.Mutex

// NewIncidentRecorder creates cfg.Dir (if needed) and returns a recorder
// writing into it.
func NewIncidentRecorder(o *Obs, cfg IncidentConfig) (*IncidentRecorder, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("incident: Dir is required")
	}
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("incident: %w", err)
	}
	return &IncidentRecorder{cfg: cfg, o: o}, nil
}

// Dir returns the bundle directory.
func (ir *IncidentRecorder) Dir() string {
	if ir == nil {
		return ""
	}
	return ir.cfg.Dir
}

// TriggerAsync starts a background capture for reason unless one is
// already in flight or the cooldown suppresses it. This is the hook the
// rule evaluator calls on a pending→firing edge: it must return
// immediately (Eval runs on the monitor goroutine) and must not stack
// captures when several rules fire together.
func (ir *IncidentRecorder) TriggerAsync(reason string) {
	if ir == nil {
		return
	}
	ir.mu.Lock()
	if ir.inflight || (ir.lastNanos != 0 && time.Now().UnixNano()-ir.lastNanos < ir.cfg.Cooldown.Nanoseconds()) {
		ir.mu.Unlock()
		return
	}
	ir.inflight = true
	ir.wg.Add(1)
	ir.mu.Unlock()
	go func() {
		defer ir.wg.Done()
		if _, _, err := ir.capture(reason); err != nil && ir.o != nil {
			ir.o.Log.Error("incident capture failed", "reason", reason, "err", err)
		}
	}()
}

// Capture writes a bundle synchronously. Without force, a capture inside
// the cooldown window returns the previous bundle's meta with
// fresh=false instead of writing a new one.
func (ir *IncidentRecorder) Capture(reason string, force bool) (IncidentMeta, bool, error) {
	if ir == nil {
		return IncidentMeta{}, false, fmt.Errorf("incident: no recorder configured")
	}
	ir.mu.Lock()
	for ir.inflight {
		// An async capture is running; wait for it so we can report its
		// bundle instead of racing a second one.
		ir.mu.Unlock()
		ir.wg.Wait()
		ir.mu.Lock()
	}
	if !force && ir.lastNanos != 0 && time.Now().UnixNano()-ir.lastNanos < ir.cfg.Cooldown.Nanoseconds() {
		meta := ir.last
		ir.mu.Unlock()
		return meta, false, nil
	}
	ir.inflight = true
	ir.wg.Add(1)
	ir.mu.Unlock()
	defer ir.wg.Done()
	return ir.capture(reason)
}

// capture does the actual bundle write; callers hold the inflight token.
func (ir *IncidentRecorder) capture(reason string) (IncidentMeta, bool, error) {
	meta, err := ir.writeBundle(reason)
	ir.mu.Lock()
	ir.inflight = false
	if err == nil {
		ir.last = meta
		ir.lastNanos = meta.UnixNanos
	}
	ir.mu.Unlock()
	if err != nil {
		return IncidentMeta{}, false, err
	}
	ir.prune()
	if ir.o != nil {
		ir.o.Log.Info("incident bundle captured", "id", meta.ID, "reason", reason)
		if c := ir.o.Reg.Counter("incident.captured"); c != nil {
			c.Add(1)
		}
	}
	return meta, true, nil
}

// sanitizeNode maps a node name onto the filesystem-safe alphabet bundle
// IDs use.
func sanitizeNode(node string) string {
	if node == "" {
		return "node"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, node)
}

func (ir *IncidentRecorder) writeBundle(reason string) (IncidentMeta, error) {
	now := time.Now()
	id := ir.o.Identity()
	node := id.Node
	if node == "" && ir.o != nil && ir.o.Reg != nil {
		node = ir.o.Reg.Node()
	}
	bundleID := fmt.Sprintf("inc-%s-%s", now.UTC().Format("20060102T150405.000Z0700"), sanitizeNode(node))
	meta := IncidentMeta{
		ID:        bundleID,
		Node:      node,
		Reason:    reason,
		UnixNanos: now.UnixNano(),
		Identity:  id,
		Firing:    ir.o.FiringAlerts(),
	}

	tmp := filepath.Join(ir.cfg.Dir, ".tmp-"+bundleID)
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return IncidentMeta{}, err
	}
	defer os.RemoveAll(tmp) // no-op after the rename succeeds

	write := func(name string, fn func(w io.Writer) error) {
		f, err := os.Create(filepath.Join(tmp, name))
		if err != nil {
			return
		}
		werr := fn(f)
		cerr := f.Close()
		if werr == nil && cerr == nil {
			meta.Files = append(meta.Files, name)
		}
	}

	write("goroutines.txt", func(w io.Writer) error {
		return pprof.Lookup("goroutine").WriteTo(w, 2)
	})
	write("heap.pprof", func(w io.Writer) error {
		return pprof.WriteHeapProfile(w)
	})
	if ir.cfg.CPUProfile > 0 {
		write("cpu.pprof", func(w io.Writer) error {
			cpuProfileMu.Lock()
			defer cpuProfileMu.Unlock()
			if err := pprof.StartCPUProfile(w); err != nil {
				return err
			}
			time.Sleep(ir.cfg.CPUProfile)
			pprof.StopCPUProfile()
			return nil
		})
	}
	writeJSON := func(name string, v any) {
		write(name, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(v)
		})
	}
	if ir.o != nil {
		if ir.o.Spans != nil {
			writeJSON("spans.json", ir.o.Spans.Spans())
		}
		if ir.o.Slow != nil {
			writeJSON("slow.json", ir.o.Slow.Spans())
		}
		if ts := ir.o.TimeSeries(); ts != nil {
			samples := ts.Samples()
			if len(samples) > ir.cfg.SeriesTail {
				samples = samples[len(samples)-ir.cfg.SeriesTail:]
			}
			writeJSON("series.json", samples)
		}
		if rs := ir.o.Rules(); rs != nil {
			writeJSON("alerts.json", rs.States())
		}
		if ir.o.Reg != nil {
			writeJSON("metrics.json", ir.o.Reg.Snapshot())
		}
	}
	// meta.json lists every file in the bundle, itself included, so a
	// responder (or List) sees the complete manifest.
	meta.Files = append(meta.Files, "meta.json")
	if f, err := os.Create(filepath.Join(tmp, "meta.json")); err == nil {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		werr := enc.Encode(&meta)
		if cerr := f.Close(); werr != nil || cerr != nil {
			meta.Files = meta.Files[:len(meta.Files)-1]
		}
	} else {
		meta.Files = meta.Files[:len(meta.Files)-1]
	}

	final := filepath.Join(ir.cfg.Dir, bundleID)
	if err := os.Rename(tmp, final); err != nil {
		return IncidentMeta{}, err
	}
	return meta, nil
}

// prune deletes the oldest bundles past MaxBundles. Bundle IDs embed a
// UTC timestamp, so lexical order is capture order.
func (ir *IncidentRecorder) prune() {
	ids := ir.ids()
	for len(ids) > ir.cfg.MaxBundles {
		os.RemoveAll(filepath.Join(ir.cfg.Dir, ids[0]))
		ids = ids[1:]
	}
}

// ids returns bundle directory names, oldest first.
func (ir *IncidentRecorder) ids() []string {
	ents, err := os.ReadDir(ir.cfg.Dir)
	if err != nil {
		return nil
	}
	var ids []string
	for _, e := range ents {
		if e.IsDir() && strings.HasPrefix(e.Name(), "inc-") {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids
}

// List returns the metas of every bundle on disk, newest first.
func (ir *IncidentRecorder) List() []IncidentMeta {
	if ir == nil {
		return nil
	}
	ids := ir.ids()
	out := make([]IncidentMeta, 0, len(ids))
	for i := len(ids) - 1; i >= 0; i-- {
		b, err := os.ReadFile(filepath.Join(ir.cfg.Dir, ids[i], "meta.json"))
		if err != nil {
			continue
		}
		var m IncidentMeta
		if json.Unmarshal(b, &m) == nil {
			out = append(out, m)
		}
	}
	return out
}

// WriteTar streams bundle id as a gzipped tarball (the /incidents/bundle
// response body and the building block nvmctl bundle merges).
func (ir *IncidentRecorder) WriteTar(w io.Writer, id string) error {
	if ir == nil {
		return fmt.Errorf("incident: no recorder configured")
	}
	// Reject path escapes: IDs are single path elements.
	if id == "" || strings.ContainsAny(id, "/\\") || id == "." || id == ".." {
		return fmt.Errorf("incident: bad bundle id %q", id)
	}
	dir := filepath.Join(ir.cfg.Dir, id)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("incident: %w", err)
	}
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		hdr := &tar.Header{
			Name:    id + "/" + e.Name(),
			Mode:    0o644,
			Size:    info.Size(),
			ModTime: info.ModTime(),
		}
		if err := tw.WriteHeader(hdr); err != nil {
			f.Close()
			return err
		}
		if _, err := io.Copy(tw, f); err != nil {
			f.Close()
			return err
		}
		f.Close()
	}
	if err := tw.Close(); err != nil {
		return err
	}
	return gz.Close()
}

// Wait blocks until any in-flight async capture finishes — daemon
// shutdown and tests call it so bundles are never half-written when the
// process exits.
func (ir *IncidentRecorder) Wait() {
	if ir == nil {
		return
	}
	ir.wg.Wait()
}

// BundlePart is one daemon's tar.gz bundle stream, tagged with the node
// it came from, for MergeBundles.
type BundlePart struct {
	Node string
	R    io.Reader
}

// MergeBundles re-tars every part's entries under a "<node>/" prefix into
// one combined tar.gz archive — the cluster-wide incident view `nvmctl
// bundle` produces.
func MergeBundles(w io.Writer, parts []BundlePart) error {
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	for _, p := range parts {
		pgz, err := gzip.NewReader(p.R)
		if err != nil {
			return fmt.Errorf("merge %s: %w", p.Node, err)
		}
		tr := tar.NewReader(pgz)
		for {
			hdr, err := tr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return fmt.Errorf("merge %s: %w", p.Node, err)
			}
			out := *hdr
			out.Name = sanitizeNode(p.Node) + "/" + hdr.Name
			if err := tw.WriteHeader(&out); err != nil {
				return err
			}
			if _, err := io.Copy(tw, tr); err != nil {
				return err
			}
		}
		pgz.Close()
	}
	if err := tw.Close(); err != nil {
		return err
	}
	return gz.Close()
}
