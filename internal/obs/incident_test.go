package obs

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"io"
	"testing"
	"time"
)

// sloSeries builds a deterministic counter series: each point is
// (unixSeconds, probe.ok total, probe.err total).
func sloSeries(points [][3]int64) *Series {
	s := NewSeries(len(points))
	for _, p := range points {
		s.Add(Snapshot{
			UnixNanos: p[0] * 1e9,
			Counters:  map[string]int64{"probe.ok": p[1], "probe.err": p[2]},
		})
	}
	return s
}

func testSLO() SLO {
	return SLO{
		Name:       "probe-slo-burn",
		Good:       "probe.ok",
		Bad:        "probe.err",
		Target:     0.999,
		FastWindow: 5 * time.Second,
		SlowWindow: 60 * time.Second,
		MinEvents:  10,
	}
}

func TestSLOBurnRateFiresOnBothWindows(t *testing.T) {
	// A fresh outage: the last 5s are 100% errors, and the hour-scale
	// window has absorbed enough of them to burn too. Both windows far
	// exceed burn 14 against a 0.1% budget.
	r := testSLO().Rule()
	ts := sloSeries([][3]int64{
		{0, 0, 0},
		{30, 1000, 0},
		{55, 1000, 0},
		{60, 1000, 100},
	})
	val, ok := r.Value(ts)
	if !ok {
		t.Fatal("SLO rule had no data with full windows")
	}
	// Fast window (55s→60s): 100/100 errors → burn 1000. Slow window
	// (0→60s): 100/1100 → burn ≈ 90.9. The rule reports the minimum.
	if val < 80 || val > 100 {
		t.Fatalf("burn value %.3f, want min(fast,slow) ≈ 90.9", val)
	}
	rs := NewRuleSet(r)
	rs.Eval(ts, 60e9)
	if len(rs.Firing()) != 1 {
		t.Fatalf("SLO rule not firing at burn %.0f: %+v", val, rs.States())
	}
}

func TestSLOBurnRateFastWindowVetoesOldErrors(t *testing.T) {
	// The multi-window test: an old error burst still sits inside the slow
	// window, but the fast window is clean — the outage is over, so the
	// rule must NOT fire (this is what makes burn-rate alerts reset fast).
	r := testSLO().Rule()
	ts := sloSeries([][3]int64{
		{0, 0, 0},
		{5, 100, 50},
		{55, 1000, 50},
		{60, 1100, 50},
	})
	val, ok := r.Value(ts)
	if !ok {
		t.Fatal("SLO rule had no data")
	}
	if val != 0 {
		t.Fatalf("burn value %.3f with a clean fast window, want 0", val)
	}
	rs := NewRuleSet(r)
	rs.Eval(ts, 60e9)
	if len(rs.Firing()) != 0 {
		t.Fatalf("SLO fired on errors outside the fast window: %+v", rs.Firing())
	}
}

func TestSLOBurnRateMinEventsGuard(t *testing.T) {
	// 3 events, all errors, but under MinEvents: an idle service is not
	// out of budget — the rule must report no data, not a 1000x burn.
	r := testSLO().Rule()
	ts := sloSeries([][3]int64{
		{55, 0, 0},
		{60, 0, 3},
	})
	if _, ok := r.Value(ts); ok {
		t.Fatal("SLO rule reported data under the MinEvents floor")
	}
}

func TestSLODefaults(t *testing.T) {
	s := SLO{Name: "x", Good: "g", Bad: "b"}.withDefaults()
	if s.Target != 0.999 || s.SlowWindow != time.Hour || s.FastWindow != 5*time.Minute ||
		s.BurnThreshold != 14 || s.MinEvents != 20 {
		t.Fatalf("defaults = %+v", s)
	}
}

func TestRuleSetFiringEdgeHook(t *testing.T) {
	rs := NewRuleSet(Rule{
		Name:      "backlog",
		Value:     GaugeValue("g"),
		Op:        Above,
		Threshold: 0,
		For:       10 * time.Second,
	})
	var edges []Alert
	rs.SetOnFiring(func(a Alert) { edges = append(edges, a) })
	breach, clear := gaugeSeries("g", 5), gaugeSeries("g", 0)

	rs.Eval(breach, 1e9) // pending
	if len(edges) != 0 {
		t.Fatal("hook ran on a pending rule")
	}
	rs.Eval(breach, 12e9) // pending → firing: exactly one edge
	if len(edges) != 1 || edges[0].Rule != "backlog" || edges[0].State != "firing" {
		t.Fatalf("edges after firing = %+v", edges)
	}
	rs.Eval(breach, 20e9) // still firing: no repeat edge
	if len(edges) != 1 {
		t.Fatalf("hook re-ran while continuously firing: %d calls", len(edges))
	}
	rs.Eval(clear, 21e9)  // reset
	rs.Eval(breach, 22e9) // new pending
	rs.Eval(breach, 33e9) // second distinct edge
	if len(edges) != 2 {
		t.Fatalf("edges after refire = %d, want 2", len(edges))
	}
}

func TestProberRunOnce(t *testing.T) {
	o := New("probe-test")
	boom := false
	p := StartProber(o, ProberConfig{
		// A long interval: the loop stays idle and the test drives RunOnce.
		Interval: time.Hour,
		Targets: func() []ProbeTarget {
			return []ProbeTarget{
				{Name: "shard0", Run: func() error { return nil }},
				{Name: "ben1", Run: func() error {
					if boom {
						return io.ErrUnexpectedEOF
					}
					return nil
				}},
			}
		},
	})
	if p == nil {
		t.Fatal("StartProber returned nil for a valid config")
	}
	defer p.Stop()

	p.RunOnce()
	boom = true
	p.RunOnce()

	snap := o.Reg.Snapshot()
	if got := snap.Counters["probe.ok"]; got != 3 {
		t.Fatalf("probe.ok = %d, want 3", got)
	}
	if got := snap.Counters["probe.err"]; got != 1 {
		t.Fatalf("probe.err = %d, want 1", got)
	}
	if got := snap.Counters["probe.ben1.err"]; got != 1 {
		t.Fatalf("probe.ben1.err = %d, want 1", got)
	}
	if got := snap.Counters["probe.shard0.ok"]; got != 2 {
		t.Fatalf("probe.shard0.ok = %d, want 2", got)
	}
	if h := snap.Histograms["probe.latency"]; h.Count != 4 {
		t.Fatalf("probe.latency count = %d, want 4", h.Count)
	}
	if h := snap.Histograms["probe.ben1.latency"]; h.Count != 2 {
		t.Fatalf("probe.ben1.latency count = %d, want 2", h.Count)
	}
	p.Stop() // idempotent with the deferred Stop
}

func TestProberDisabledAndNilSafe(t *testing.T) {
	if p := StartProber(nil, ProberConfig{Targets: func() []ProbeTarget { return nil }}); p != nil {
		t.Fatal("prober started on a nil Obs")
	}
	if p := StartProber(Disabled(), ProberConfig{Targets: func() []ProbeTarget { return nil }}); p != nil {
		t.Fatal("prober started on a disabled Obs")
	}
	if p := StartProber(New("x"), ProberConfig{Interval: -1, Targets: func() []ProbeTarget { return nil }}); p != nil {
		t.Fatal("prober started with a negative interval")
	}
	var p *Prober
	p.RunOnce() // must not panic
	p.Stop()
}

// quickIncidents returns a config that skips the CPU profile so unit
// tests don't each pay a multi-second profiling sleep.
func quickIncidents(dir string) IncidentConfig {
	return IncidentConfig{Dir: dir, CPUProfile: -1}
}

func TestIncidentCaptureAndCooldown(t *testing.T) {
	o := New("node-a")
	ts := NewSeries(4)
	ts.Add(Snapshot{UnixNanos: 1})
	ts.Add(Snapshot{UnixNanos: 2})
	o.SetTimeSeries(ts)
	ir, err := NewIncidentRecorder(o, quickIncidents(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}

	meta, fresh, err := ir.Capture("drill", false)
	if err != nil || !fresh {
		t.Fatalf("first capture: fresh=%v err=%v", fresh, err)
	}
	if meta.Node != "node-a" || meta.Reason != "drill" {
		t.Fatalf("meta = %+v", meta)
	}
	need := map[string]bool{"goroutines.txt": false, "heap.pprof": false, "series.json": false, "meta.json": false}
	for _, f := range meta.Files {
		if f == "cpu.pprof" {
			t.Fatal("cpu.pprof written with CPUProfile < 0")
		}
		if _, ok := need[f]; ok {
			need[f] = true
		}
	}
	for f, ok := range need {
		if !ok {
			t.Fatalf("bundle missing %s (files %v)", f, meta.Files)
		}
	}

	// Inside the 10m default cooldown: the same bundle comes back.
	again, fresh, err := ir.Capture("drill-2", false)
	if err != nil || fresh || again.ID != meta.ID {
		t.Fatalf("cooldown capture: fresh=%v id=%s err=%v", fresh, again.ID, err)
	}
	if got := ir.List(); len(got) != 1 {
		t.Fatalf("cooldown still wrote a bundle: %d on disk", len(got))
	}
	// force punches through.
	time.Sleep(5 * time.Millisecond) // distinct millisecond → distinct bundle ID
	forced, fresh, err := ir.Capture("forced", true)
	if err != nil || !fresh || forced.ID == meta.ID {
		t.Fatalf("forced capture: fresh=%v id=%s err=%v", fresh, forced.ID, err)
	}
	list := ir.List()
	if len(list) != 2 || list[0].ID != forced.ID {
		t.Fatalf("List = %+v, want newest (forced) first", list)
	}
}

func TestIncidentPruneBoundsRing(t *testing.T) {
	cfg := quickIncidents(t.TempDir())
	cfg.MaxBundles = 2
	ir, err := NewIncidentRecorder(New("node-a"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 4; i++ {
		m, _, err := ir.Capture("fill", true)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, m.ID)
		time.Sleep(5 * time.Millisecond)
	}
	list := ir.List()
	if len(list) != 2 {
		t.Fatalf("%d bundles on disk, want the 2 newest", len(list))
	}
	if list[0].ID != ids[3] || list[1].ID != ids[2] {
		t.Fatalf("kept %s,%s; want %s,%s", list[0].ID, list[1].ID, ids[3], ids[2])
	}
}

func TestIncidentTriggerAsyncDedupes(t *testing.T) {
	ir, err := NewIncidentRecorder(New("node-a"), quickIncidents(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ir.TriggerAsync("rule:backlog")
	}
	ir.Wait()
	list := ir.List()
	if len(list) != 1 {
		t.Fatalf("%d bundles after 5 triggers, want 1 (inflight+cooldown dedupe)", len(list))
	}
	if list[0].Reason != "rule:backlog" {
		t.Fatalf("reason %q", list[0].Reason)
	}
}

func TestObsFiringEdgeTriggersIncident(t *testing.T) {
	o := New("node-a")
	ir, err := NewIncidentRecorder(o, quickIncidents(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	o.SetIncidents(ir)
	var hooked []Alert
	o.SetOnFiring(func(a Alert) { hooked = append(hooked, a) })
	rs := NewRuleSet(Rule{Name: "edge", Value: GaugeValue("g"), Op: Above, Threshold: 0})
	o.SetRules(rs) // wires the Obs firing-edge chain into the set

	rs.Eval(gaugeSeries("g", 7), 1e9) // For 0: first breach fires
	ir.Wait()
	list := ir.List()
	if len(list) != 1 || list[0].Reason != "rule:edge" {
		t.Fatalf("firing edge captured %+v, want one rule:edge bundle", list)
	}
	if len(hooked) != 1 || hooked[0].Rule != "edge" {
		t.Fatalf("user hook saw %+v", hooked)
	}
}

// tarEntries decodes a tar.gz stream into a name → payload-size map.
func tarEntries(t *testing.T, r io.Reader) map[string]int64 {
	t.Helper()
	gz, err := gzip.NewReader(r)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]int64)
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out[hdr.Name] = hdr.Size
	}
}

func TestIncidentWriteTarAndMerge(t *testing.T) {
	var parts []BundlePart
	var ids []string
	for _, node := range []string{"node-a", "node b/evil"} {
		ir, err := NewIncidentRecorder(New(node), quickIncidents(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := ir.Capture("merge-test", true)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ir.WriteTar(&buf, m.ID); err != nil {
			t.Fatal(err)
		}
		ents := tarEntries(t, bytes.NewReader(buf.Bytes()))
		if sz, ok := ents[m.ID+"/meta.json"]; !ok || sz == 0 {
			t.Fatalf("tar of %s lacks meta.json: %v", m.ID, ents)
		}
		// Path-escape attempts must be rejected before touching the disk.
		for _, bad := range []string{"", "..", "a/b", `a\b`} {
			if err := ir.WriteTar(io.Discard, bad); err == nil {
				t.Fatalf("WriteTar accepted id %q", bad)
			}
		}
		if err := ir.WriteTar(io.Discard, "inc-nonexistent"); err == nil {
			t.Fatal("WriteTar succeeded for a missing bundle")
		}
		parts = append(parts, BundlePart{Node: node, R: bytes.NewReader(buf.Bytes())})
		ids = append(ids, m.ID)
	}

	var merged bytes.Buffer
	if err := MergeBundles(&merged, parts); err != nil {
		t.Fatal(err)
	}
	ents := tarEntries(t, &merged)
	// Node names are sanitized into the path prefix ("node b/evil" must
	// not create extra directory levels).
	for i, prefix := range []string{"node-a", "node_b_evil"} {
		want := prefix + "/" + ids[i] + "/meta.json"
		if _, ok := ents[want]; !ok {
			t.Fatalf("merged archive missing %s (have %v)", want, ents)
		}
	}
}
