package obs

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestSpanLifecycle: a root span mints its own trace, a child joins the
// parent's, and End lands both in the span ring with sane timing.
func TestSpanLifecycle(t *testing.T) {
	o := New("n1")
	root := o.StartSpanAt("", "ignored-parent", "client.put", 1000)
	if root.Trace() == "" || root.ID() == "" {
		t.Fatal("root span missing identity")
	}
	child := o.StartSpanAt(root.Trace(), root.ID(), "rpc.put_chunk", 1200)
	child.SetVar("v")
	child.AddBytes(64)
	child.AddBytes(36)
	child.SetErr(errors.New("boom"))
	child.EndAt(1500)
	root.EndAt(2000)

	spans := o.Spans.ByTrace(root.Trace())
	if len(spans) != 2 {
		t.Fatalf("retained %d spans, want 2", len(spans))
	}
	c, r := spans[0], spans[1] // child ended first
	if c.Parent != r.ID || c.Trace != r.Trace {
		t.Fatalf("child not linked to root: %+v vs %+v", c, r)
	}
	if !r.Root() || c.Root() {
		t.Fatal("Root() misreports")
	}
	if c.DurNanos != 300 || r.DurNanos != 1000 {
		t.Fatalf("durations (%d, %d), want (300, 1000)", c.DurNanos, r.DurNanos)
	}
	if c.Bytes != 100 || c.Var != "v" || c.Err != "boom" {
		t.Fatalf("child attrs lost: %+v", c)
	}
	if r.Node != "n1" || c.Node != "n1" {
		t.Fatalf("node not stamped: %+v", c)
	}
	if c.End() != 1500 {
		t.Fatalf("End() = %d, want 1500", c.End())
	}
}

// TestSpanNegativeDurationClamped: a child clock running behind its start
// timestamp (skew, virtual-time replay) must not record a negative duration.
func TestSpanNegativeDurationClamped(t *testing.T) {
	o := New("n")
	sp := o.StartSpanAt("", "", "x", 5000)
	sp.EndAt(4000)
	if d := o.Spans.Spans()[0].DurNanos; d != 0 {
		t.Fatalf("duration = %d, want 0 (clamped)", d)
	}
}

// TestSpanRingOverflow: the ring keeps exactly the newest capacity spans,
// oldest-first, across several wraparounds.
func TestSpanRingOverflow(t *testing.T) {
	r := NewSpanRing(16)
	for i := 0; i < 50; i++ {
		r.Record(Span{ID: fmt.Sprintf("s%d", i), StartNanos: int64(i)})
	}
	got := r.Spans()
	if len(got) != 16 || r.Len() != 16 {
		t.Fatalf("retained %d spans, want 16", len(got))
	}
	for i, sp := range got {
		if want := int64(34 + i); sp.StartNanos != want {
			t.Fatalf("slot %d holds start %d, want %d", i, sp.StartNanos, want)
		}
	}
	// Below-minimum capacities clamp rather than wedge.
	small := NewSpanRing(0)
	for i := 0; i < 20; i++ {
		small.Record(Span{})
	}
	if small.Len() != 16 {
		t.Fatalf("min-capacity ring retained %d, want 16", small.Len())
	}
}

// TestSlowRing: only roots at or over the threshold are copied to the
// flight recorder, and they survive the main ring wrapping.
func TestSlowRing(t *testing.T) {
	o := New("n")
	o.SetSlowThreshold(100 * time.Nanosecond)
	if o.SlowThreshold() != 100*time.Nanosecond {
		t.Fatal("threshold not stored")
	}
	o.RecordSpan(Span{Trace: "a", ID: "1", Name: "client.put", DurNanos: 99})           // fast root
	o.RecordSpan(Span{Trace: "a", ID: "2", Name: "client.put", DurNanos: 150})          // slow root
	o.RecordSpan(Span{Trace: "a", ID: "3", Parent: "2", Name: "rpc.x", DurNanos: 5000}) // slow child: not a root
	if got := o.Slow.Spans(); len(got) != 1 || got[0].ID != "2" {
		t.Fatalf("slow ring = %+v, want just span 2", got)
	}
	// Churn the main ring far past capacity; the slow copy must persist.
	for i := 0; i < DefaultRingSpans+10; i++ {
		o.RecordSpan(Span{Trace: "b", ID: fmt.Sprintf("c%d", i), DurNanos: 1})
	}
	if len(o.Spans.ByTrace("a")) != 0 {
		t.Fatal("main ring should have wrapped past trace a")
	}
	if got := o.Slow.Spans(); len(got) != 1 || got[0].ID != "2" {
		t.Fatalf("slow ring lost its span after churn: %+v", got)
	}
	o.SetSlowThreshold(0)
	o.RecordSpan(Span{Trace: "c", ID: "z", DurNanos: int64(time.Hour)})
	if len(o.Slow.Spans()) != 1 {
		t.Fatal("disabled threshold still recorded a slow span")
	}
}

// TestSpanSink: the sink observes locally recorded spans but never ingested
// ones — that asymmetry is what stops a manager re-exporting spans a client
// just exported to it.
func TestSpanSink(t *testing.T) {
	o := New("n")
	var seen []Span
	o.SetSpanSink(func(s Span) { seen = append(seen, s) })
	o.RecordSpan(Span{Trace: "t", ID: "local"})
	o.IngestSpan(Span{Trace: "t", ID: "remote"})
	if len(seen) != 1 || seen[0].ID != "local" {
		t.Fatalf("sink saw %v, want [local] only", seen)
	}
	if seen[0].Node != "n" {
		t.Fatalf("exported span carries node %q, want the local identity", seen[0].Node)
	}
	if got := o.Spans.ByTrace("t"); len(got) != 2 {
		t.Fatalf("ring retained %d spans, want both", len(got))
	}
	o.SetSpanSink(nil)
	o.RecordSpan(Span{Trace: "t", ID: "after"})
	if len(seen) != 1 {
		t.Fatal("uninstalled sink still fired")
	}
}

// TestSpanNilSafety: disabled observability must make every span operation
// an inert no-op — nil *ActiveSpan methods, recording, thresholds, sinks.
func TestSpanNilSafety(t *testing.T) {
	o := Disabled()
	sp := o.StartSpan("", "", "client.put")
	if sp != nil {
		t.Fatal("disabled Obs minted a span")
	}
	if sp.Trace() != "" || sp.ID() != "" {
		t.Fatal("nil span leaked identity")
	}
	sp.SetVar("v")
	sp.SetErr(errors.New("x"))
	sp.AddBytes(1)
	sp.End()
	sp.EndAt(5)
	o.RecordSpan(Span{ID: "a"})
	o.IngestSpan(Span{ID: "b"})
	o.SetSlowThreshold(time.Second)
	_ = o.SlowThreshold()
	o.SetSpanSink(func(Span) {})

	var nilObs *Obs
	if nilObs.StartSpan("", "", "x") != nil {
		t.Fatal("nil Obs minted a span")
	}
	nilObs.RecordSpan(Span{})
	nilObs.IngestSpan(Span{})
	nilObs.SetSlowThreshold(time.Second)
	_ = nilObs.SlowThreshold()
	nilObs.SetSpanSink(nil)

	var nilRing *SpanRing
	nilRing.Record(Span{})
	if nilRing.Len() != 0 || nilRing.Spans() != nil || nilRing.ByTrace("t") != nil {
		t.Fatal("nil SpanRing not inert")
	}
}

// TestRingOverflowBoundary: the event ring at exactly capacity, capacity+1,
// and far past it — the wrap boundary must never duplicate or drop.
func TestRingOverflowBoundary(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 16; i++ {
		r.Add("c", "k", "", "")
	}
	if ev := r.Events(); len(ev) != 16 || ev[0].Seq != 0 || ev[15].Seq != 15 {
		t.Fatalf("at capacity: %d events, seqs [%d,%d]", len(ev), ev[0].Seq, ev[len(ev)-1].Seq)
	}
	r.Add("c", "k", "", "")
	if ev := r.Events(); len(ev) != 16 || ev[0].Seq != 1 || ev[15].Seq != 16 {
		t.Fatalf("one past capacity: %d events, seqs [%d,%d]", len(ev), ev[0].Seq, ev[len(ev)-1].Seq)
	}
	for i := 0; i < 1000; i++ {
		r.Add("c", "k", "", "")
	}
	ev := r.Events()
	if len(ev) != 16 || ev[15].Seq != 1016 {
		t.Fatalf("after churn: %d events ending at seq %d", len(ev), ev[len(ev)-1].Seq)
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq+1 {
			t.Fatal("gap in retained sequence")
		}
	}
}

// TestHistogramMergeEmpty: merging with an empty snapshot (either side, or
// both) must be the identity, not corrupt quantiles.
func TestHistogramMergeEmpty(t *testing.T) {
	h := newHistogram()
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	var empty HistogramSnapshot
	if m := s.Merge(empty); m.Count != 10 || m.SumNanos != s.SumNanos || m.P95Nanos != s.P95Nanos {
		t.Fatalf("merge with empty changed the snapshot: %+v", m)
	}
	if m := empty.Merge(s); m.Count != 10 || m.P95Nanos != s.P95Nanos {
		t.Fatalf("empty.Merge(s) lost data: %+v", m)
	}
	if m := empty.Merge(HistogramSnapshot{}); m.Count != 0 {
		t.Fatalf("empty-empty merge = %+v", m)
	}
}

// TestHistogramMergeMismatched: a snapshot from a node running a different
// build may carry a different bucket count; merging must stay in bounds and
// keep the receiver's geometry.
func TestHistogramMergeMismatched(t *testing.T) {
	h := newHistogram()
	for i := 0; i < 4; i++ {
		h.Observe(10 * time.Millisecond)
	}
	s := h.Snapshot()
	longer := HistogramSnapshot{
		Count:       3,
		SumNanos:    3 * int64(time.Second),
		BoundsNanos: append(append([]int64(nil), s.BoundsNanos...), int64(time.Hour)),
		Counts:      make([]int64, len(s.Counts)+4),
	}
	longer.Counts[len(longer.Counts)-1] = 3 // mass beyond the receiver's buckets
	m := s.Merge(longer)
	if m.Count != 7 {
		t.Fatalf("merged count = %d, want 7", m.Count)
	}
	if len(m.Counts) != len(s.Counts) || len(m.BoundsNanos) != len(s.BoundsNanos) {
		t.Fatalf("merged geometry changed: %d buckets", len(m.Counts))
	}
	shorter := HistogramSnapshot{
		Count:    2,
		SumNanos: 2 * int64(time.Millisecond),
		Counts:   []int64{2},
	}
	m = s.Merge(shorter)
	if m.Count != 6 || m.Counts[0] != s.Counts[0]+2 {
		t.Fatalf("short merge mis-aggregated: %+v", m)
	}
}
