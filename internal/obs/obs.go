// Package obs is the zero-dependency observability layer of the aggregate
// NVM store: a concurrent metrics registry (counters, gauges, fixed-bucket
// latency histograms with quantile snapshots), a leveled key=value logger,
// and a bounded in-memory event ring that records chunk-lifecycle and
// fault events tagged with a trace ID. The same trace ID travels the wire
// protocol (proto.ManagerReq/ChunkReq), so one allocation or read can be
// followed from a client through the manager to each benefactor.
//
// Everything is nil-safe: a nil *Obs (or any nil handle obtained from one)
// turns every recording call into a no-op, so hot paths can be compiled
// with instrumentation unconditionally and a caller that wants zero
// overhead passes Disabled().
package obs

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Obs bundles one process's (or one component's) observability state: a
// metrics registry, an event trace ring, and a logger. Components receive
// a *Obs at construction and record into it; daemons expose it over the
// debug HTTP endpoint (ServeDebug).
type Obs struct {
	Reg  *Registry
	Ring *Ring
	Log  *Logger
	// Spans is the bounded buffer of completed hierarchical spans, newest
	// overwriting oldest (served at /spans).
	Spans *SpanRing
	// Slow is the flight recorder: root spans slower than the threshold
	// are copied here so stragglers survive span-ring churn.
	Slow *SpanRing

	slowNanos atomic.Int64
	sink      atomic.Value // spanSink

	// Continuous-monitoring state (StartMonitor): the time series of
	// periodic registry samples and the alert-rule evaluator whose firing
	// state degrades /healthz.
	ts      atomic.Pointer[Series]
	rules   atomic.Pointer[RuleSet]
	monMu   sync.Mutex
	monStop chan struct{}
	monWG   sync.WaitGroup

	// identity names this process's place in the cluster (shard i/n,
	// membership epoch) for /healthz bodies and incident bundles; a func so
	// the epoch stays live across membership bumps.
	identity atomic.Value // func() Identity
	// incidents is the optional incident recorder: rule firing edges (and
	// the /incidents/capture endpoint) snapshot diagnostic bundles to disk.
	incidents atomic.Pointer[IncidentRecorder]
	// onFiring is the optional user hook observing pending→firing edges
	// (called after the incident recorder triggers).
	onFiring atomic.Value // func(Alert)
}

// Identity names a daemon's place in the cluster: the node name, its
// metadata shard (Shard of NShards; NShards 0 means the process serves no
// shard) and the membership epoch it is operating under. It rides on
// unhealthy /healthz bodies so a 503 from a sharded fleet names which
// keyspace is degraded, and it stamps incident bundles.
type Identity struct {
	Node    string `json:"node,omitempty"`
	Shard   int    `json:"shard"`
	NShards int    `json:"n_shards,omitempty"`
	Epoch   int64  `json:"epoch,omitempty"`
}

// SetIdentityFunc installs the provider of this process's cluster
// identity. The func is called on every /healthz response and incident
// capture, so a manager can report its current membership epoch rather
// than the one at boot. Nil-safe.
func (o *Obs) SetIdentityFunc(fn func() Identity) {
	if o == nil {
		return
	}
	o.identity.Store(fn)
}

// Identity returns the process's cluster identity. Without an installed
// provider it degrades to the registry's node name.
func (o *Obs) Identity() Identity {
	if o == nil {
		return Identity{}
	}
	if v := o.identity.Load(); v != nil {
		if fn := v.(func() Identity); fn != nil {
			return fn()
		}
	}
	if o.Reg != nil {
		return Identity{Node: o.Reg.Node()}
	}
	return Identity{}
}

// SetIncidents installs (or with nil removes) the incident recorder.
// Once installed, every rule's pending→firing edge triggers an
// asynchronous bundle capture (deduplicated by the recorder's cooldown).
func (o *Obs) SetIncidents(ir *IncidentRecorder) {
	if o == nil {
		return
	}
	o.incidents.Store(ir)
}

// Incidents returns the installed incident recorder (nil without one).
func (o *Obs) Incidents() *IncidentRecorder {
	if o == nil {
		return nil
	}
	return o.incidents.Load()
}

// SetOnFiring installs a hook observing every rule's pending→firing edge
// (after the incident recorder, if any, has been triggered). The hook
// runs on the monitor goroutine and must not block.
func (o *Obs) SetOnFiring(fn func(Alert)) {
	if o == nil {
		return
	}
	o.onFiring.Store(fn)
}

// firingEdge dispatches one pending→firing transition to the incident
// recorder and the user hook. Installed into every RuleSet the Obs runs.
func (o *Obs) firingEdge(a Alert) {
	if ir := o.incidents.Load(); ir != nil {
		ir.TriggerAsync("rule:" + a.Rule)
	}
	if v := o.onFiring.Load(); v != nil {
		if fn := v.(func(Alert)); fn != nil {
			fn(a)
		}
	}
}

// DefaultRingEvents is the event capacity of rings made by New.
const DefaultRingEvents = 4096

// New returns an enabled Obs: a fresh registry named node, a
// DefaultRingEvents-event ring, and a quiet (discarding) logger so library
// users and tests stay silent unless a daemon raises the level.
func New(node string) *Obs {
	o := &Obs{
		Reg:   NewRegistry(node),
		Ring:  NewRing(DefaultRingEvents),
		Log:   NewLogger(nil, LevelOff),
		Spans: NewSpanRing(DefaultRingSpans),
		Slow:  NewSpanRing(DefaultSlowSpans),
	}
	o.slowNanos.Store(int64(DefaultSlowThreshold))
	return o
}

// Disabled returns an Obs whose members are all nil: every handle it hands
// out is nil and every recording call is a no-op. Used to measure (and
// avoid) instrumentation overhead.
func Disabled() *Obs { return &Obs{} }

// Event records one event into the ring (no-op when o or the ring is nil).
func (o *Obs) Event(comp, kind, trace, detail string) {
	if o == nil {
		return
	}
	o.Ring.Add(comp, kind, trace, detail)
}

// EventsEnabled reports whether Event calls actually record anywhere.
// Hot paths check it before building an event's detail string, so a
// disabled Obs costs neither the fmt.Sprintf nor its allocations.
func (o *Obs) EventsEnabled() bool { return o != nil && o.Ring != nil }

// MonitorConfig configures continuous self-monitoring: periodic registry
// sampling into a bounded time series, plus optional alert-rule
// evaluation on the same cadence.
type MonitorConfig struct {
	// SampleInterval is the snapshot cadence. Zero or negative disables
	// the monitor entirely.
	SampleInterval time.Duration
	// History is the number of samples retained (default
	// DefaultSeriesSamples).
	History int
	// Rules, when non-empty, are evaluated after every sample; firing
	// rules degrade /healthz to 503.
	Rules []Rule
}

// StartMonitor begins periodic registry sampling (and rule evaluation)
// on a background goroutine. Sampling is entirely off the hot path: the
// only cost visible to instrumented code is the atomic loads
// Registry.Snapshot always did. No-op on a nil/disabled Obs, a
// non-positive interval, or when a monitor is already running.
func (o *Obs) StartMonitor(cfg MonitorConfig) {
	if o == nil || o.Reg == nil || cfg.SampleInterval <= 0 {
		return
	}
	o.monMu.Lock()
	defer o.monMu.Unlock()
	if o.monStop != nil {
		return
	}
	o.ts.Store(NewSeries(cfg.History))
	if len(cfg.Rules) > 0 {
		rs := NewRuleSet(cfg.Rules...)
		rs.SetOnFiring(o.firingEdge)
		o.rules.Store(rs)
	}
	stop := make(chan struct{})
	o.monStop = stop
	o.monWG.Add(1)
	go func() {
		defer o.monWG.Done()
		t := time.NewTicker(cfg.SampleInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				o.Sample()
			}
		}
	}()
	o.Sample() // an immediate first sample so Window math has a base ASAP
}

// StopMonitor stops the sampling goroutine (idempotent). The series and
// rule state stay readable — a final view of the daemon's last window.
func (o *Obs) StopMonitor() {
	if o == nil {
		return
	}
	o.monMu.Lock()
	stop := o.monStop
	o.monStop = nil
	o.monMu.Unlock()
	if stop != nil {
		close(stop)
		o.monWG.Wait()
	}
}

// Sample takes one registry snapshot into the time series and evaluates
// the alert rules against it. The monitor goroutine calls it on its
// tick; tests call it directly for deterministic sequences.
func (o *Obs) Sample() Snapshot {
	if o == nil || o.Reg == nil {
		return Snapshot{}
	}
	snap := o.Reg.Snapshot()
	ts := o.ts.Load()
	ts.Add(snap)
	o.rules.Load().Eval(ts, snap.UnixNanos)
	return snap
}

// TimeSeries returns the monitor's sample series (nil before
// StartMonitor).
func (o *Obs) TimeSeries() *Series {
	if o == nil {
		return nil
	}
	return o.ts.Load()
}

// SetTimeSeries installs a series without starting the sampling
// goroutine — tests drive Add/Sample themselves.
func (o *Obs) SetTimeSeries(ts *Series) {
	if o == nil {
		return
	}
	o.ts.Store(ts)
}

// Rules returns the monitor's rule evaluator (nil when no rules are
// installed).
func (o *Obs) Rules() *RuleSet {
	if o == nil {
		return nil
	}
	return o.rules.Load()
}

// SetRules installs (or, with nil, removes) the rule evaluator.
func (o *Obs) SetRules(rs *RuleSet) {
	if o == nil {
		return
	}
	if rs == nil {
		o.rules.Store((*RuleSet)(nil))
		return
	}
	rs.SetOnFiring(o.firingEdge)
	o.rules.Store(rs)
}

// FiringAlerts returns the rules currently past their sustained
// duration — the set that makes /healthz report 503. Nil-safe; empty
// without rules.
func (o *Obs) FiringAlerts() []Alert {
	if o == nil {
		return nil
	}
	rs := o.rules.Load()
	if rs == nil {
		return nil
	}
	return rs.Firing()
}

// traceSeq disambiguates trace IDs generated within one process.
var traceSeq atomic.Uint64

// NewTraceID returns a fresh request/trace identifier: 16 hex digits mixing
// process randomness with a process-local sequence number, unique enough to
// follow one operation across the cluster's event rings.
func NewTraceID() string {
	return fmt.Sprintf("%016x", rand.Uint64()^(traceSeq.Add(1)<<48))
}
