// Package obs is the zero-dependency observability layer of the aggregate
// NVM store: a concurrent metrics registry (counters, gauges, fixed-bucket
// latency histograms with quantile snapshots), a leveled key=value logger,
// and a bounded in-memory event ring that records chunk-lifecycle and
// fault events tagged with a trace ID. The same trace ID travels the wire
// protocol (proto.ManagerReq/ChunkReq), so one allocation or read can be
// followed from a client through the manager to each benefactor.
//
// Everything is nil-safe: a nil *Obs (or any nil handle obtained from one)
// turns every recording call into a no-op, so hot paths can be compiled
// with instrumentation unconditionally and a caller that wants zero
// overhead passes Disabled().
package obs

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// Obs bundles one process's (or one component's) observability state: a
// metrics registry, an event trace ring, and a logger. Components receive
// a *Obs at construction and record into it; daemons expose it over the
// debug HTTP endpoint (ServeDebug).
type Obs struct {
	Reg  *Registry
	Ring *Ring
	Log  *Logger
	// Spans is the bounded buffer of completed hierarchical spans, newest
	// overwriting oldest (served at /spans).
	Spans *SpanRing
	// Slow is the flight recorder: root spans slower than the threshold
	// are copied here so stragglers survive span-ring churn.
	Slow *SpanRing

	slowNanos atomic.Int64
	sink      atomic.Value // spanSink
}

// DefaultRingEvents is the event capacity of rings made by New.
const DefaultRingEvents = 4096

// New returns an enabled Obs: a fresh registry named node, a
// DefaultRingEvents-event ring, and a quiet (discarding) logger so library
// users and tests stay silent unless a daemon raises the level.
func New(node string) *Obs {
	o := &Obs{
		Reg:   NewRegistry(node),
		Ring:  NewRing(DefaultRingEvents),
		Log:   NewLogger(nil, LevelOff),
		Spans: NewSpanRing(DefaultRingSpans),
		Slow:  NewSpanRing(DefaultSlowSpans),
	}
	o.slowNanos.Store(int64(DefaultSlowThreshold))
	return o
}

// Disabled returns an Obs whose members are all nil: every handle it hands
// out is nil and every recording call is a no-op. Used to measure (and
// avoid) instrumentation overhead.
func Disabled() *Obs { return &Obs{} }

// Event records one event into the ring (no-op when o or the ring is nil).
func (o *Obs) Event(comp, kind, trace, detail string) {
	if o == nil {
		return
	}
	o.Ring.Add(comp, kind, trace, detail)
}

// EventsEnabled reports whether Event calls actually record anywhere.
// Hot paths check it before building an event's detail string, so a
// disabled Obs costs neither the fmt.Sprintf nor its allocations.
func (o *Obs) EventsEnabled() bool { return o != nil && o.Ring != nil }

// traceSeq disambiguates trace IDs generated within one process.
var traceSeq atomic.Uint64

// NewTraceID returns a fresh request/trace identifier: 16 hex digits mixing
// process randomness with a process-local sequence number, unique enough to
// follow one operation across the cluster's event rings.
func NewTraceID() string {
	return fmt.Sprintf("%016x", rand.Uint64()^(traceSeq.Add(1)<<48))
}
