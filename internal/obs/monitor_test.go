package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestMonitorSampleAndVitals drives the monitor deterministically: an
// injected clock, manual Sample calls, and rule evaluation feeding Vitals.
func TestMonitorSampleAndVitals(t *testing.T) {
	o := New("mon-test")
	now := int64(1e9)
	o.Reg.SetClock(func() int64 { return now })

	o.SetTimeSeries(NewSeries(16))
	o.SetRules(NewRuleSet(Rule{
		Name:      "backlog",
		Value:     GaugeValue("backlog"),
		Op:        Above,
		Threshold: 0,
		For:       2 * time.Second,
	}))

	c := o.Reg.Counter("work.done")
	g := o.Reg.Gauge("backlog")

	o.Sample() // t=1s: empty base sample
	now = 2e9
	c.Add(100)
	g.Set(5)
	o.Sample() // t=2s: condition begins (pending)
	if len(o.FiringAlerts()) != 0 {
		t.Fatal("fired before the sustain window")
	}
	now = 5e9
	c.Add(300)
	o.Sample() // t=5s: 3s since breach >= 2s sustain -> firing
	firing := o.FiringAlerts()
	if len(firing) != 1 || firing[0].Rule != "backlog" {
		t.Fatalf("FiringAlerts = %+v, want backlog firing", firing)
	}

	v := o.Vitals(10 * time.Second)
	if v.Healthy {
		t.Fatal("Vitals healthy while a rule fires")
	}
	if v.Samples != 3 {
		t.Fatalf("Vitals.Samples = %d, want 3", v.Samples)
	}
	// 400 counts over the 4s window.
	if got := v.Rates["work.done"]; got != 100 {
		t.Fatalf("windowed rate = %v, want 100/s", got)
	}
	if v.Gauges["backlog"] != 5 {
		t.Fatalf("Vitals gauge = %d, want 5", v.Gauges["backlog"])
	}
	if len(v.Alerts) != 1 || v.Alerts[0].State != "firing" {
		t.Fatalf("Vitals.Alerts = %+v, want one firing", v.Alerts)
	}
}

// TestVitalsWithoutMonitor degrades to lifetime averages over a fresh
// snapshot when no series exists.
func TestVitalsWithoutMonitor(t *testing.T) {
	o := New("bare")
	now := int64(0)
	o.Reg.SetClock(func() int64 { return now })
	o.Reg.Counter("c").Add(50)
	now = 10e9 // 10s of uptime
	v := o.Vitals(30 * time.Second)
	if !v.Healthy {
		t.Fatal("no rules must mean healthy")
	}
	if v.Samples != 0 {
		t.Fatalf("Samples = %d, want 0 without a monitor", v.Samples)
	}
	if got := v.Rates["c"]; got != 5 {
		t.Fatalf("lifetime rate = %v, want 5/s (50 over 10s)", got)
	}
}

func TestStartStopMonitor(t *testing.T) {
	o := New("loop")
	o.StartMonitor(MonitorConfig{SampleInterval: time.Millisecond, History: 8})
	defer o.StopMonitor()
	deadline := time.Now().Add(2 * time.Second)
	for o.TimeSeries().Len() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("monitor goroutine produced no samples")
		}
		time.Sleep(time.Millisecond)
	}
	o.StopMonitor()
	o.StopMonitor() // idempotent
	// The series stays readable after stop.
	if o.TimeSeries().Len() < 2 {
		t.Fatal("series lost after StopMonitor")
	}
	// Zero interval and nil obs are no-ops.
	o.StartMonitor(MonitorConfig{})
	var nilObs *Obs
	nilObs.StartMonitor(MonitorConfig{SampleInterval: time.Second})
	nilObs.StopMonitor()
}

// TestDebugEndpointsHealthDegradation exercises /metrics.prom, /vitals, and
// the /healthz 200 -> 503 flip over real HTTP.
func TestDebugEndpointsHealthDegradation(t *testing.T) {
	o := New("endpoint-test")
	o.Reg.Counter("work.done").Add(7)
	ds, err := ServeDebug("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	// Prometheus exposition.
	resp, err := http.Get("http://" + ds.Addr() + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, PromContentType)
	}
	if !strings.Contains(string(body), `nvm_work_done_total{node="endpoint-test"} 7`) {
		t.Fatalf("/metrics.prom missing counter:\n%s", body)
	}

	// Healthy /healthz stays the plain-text 200 "ok" contract.
	healthy, firing, err := FetchHealth(ds.Addr())
	if err != nil || !healthy || len(firing) != 0 {
		t.Fatalf("FetchHealth healthy = %v/%v/%v, want true", healthy, firing, err)
	}

	// Install a firing rule: /healthz must flip to 503 naming it.
	o.SetTimeSeries(gaugeSeries("backlog", 9))
	rs := NewRuleSet(Rule{Name: "backlog", Value: GaugeValue("backlog"), Op: Above, Threshold: 0})
	rs.Eval(o.TimeSeries(), 1e9)
	o.SetRules(rs)

	resp, err = http.Get("http://" + ds.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz status = %d, want 503", resp.StatusCode)
	}
	var hb struct {
		Status string  `json:"status"`
		Firing []Alert `json:"firing"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hb.Status != "unhealthy" || len(hb.Firing) != 1 || hb.Firing[0].Rule != "backlog" {
		t.Fatalf("healthz body = %+v, want unhealthy naming backlog", hb)
	}
	healthy, firing, err = FetchHealth(ds.Addr())
	if err != nil || healthy || len(firing) != 1 {
		t.Fatalf("FetchHealth = %v/%v/%v, want unhealthy with one alert", healthy, firing, err)
	}

	// /vitals round-trips through the scrape helper.
	v, err := FetchVitals(ds.Addr(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.Healthy {
		t.Fatal("/vitals healthy while backlog fires")
	}
	if len(v.Alerts) != 1 || v.Alerts[0].Rule != "backlog" {
		t.Fatalf("/vitals alerts = %+v, want the firing backlog rule", v.Alerts)
	}
}
