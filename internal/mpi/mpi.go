// Package mpi provides the message-passing runtime the paper's workloads
// (MPI matrix multiplication and parallel quicksort) are written against:
// ranks placed on cluster nodes per the run configuration, point-to-point
// Send/Recv, and the collectives the kernels use (Barrier, Bcast,
// Scatterv, Gatherv). Inter-node traffic is charged on the simulated
// interconnect; intra-node traffic is charged as memory copies.
package mpi

import (
	"fmt"
	"math"

	"nvmalloc/internal/cluster"
	"nvmalloc/internal/netsim"
	"nvmalloc/internal/simtime"
)

// Comm is a communicator over all ranks of a run configuration.
type Comm struct {
	eng   *simtime.Engine
	net   *netsim.Network
	cfg   cluster.Config
	boxes map[boxKey]*simtime.Chan[[]byte]
	// collSeq gives each rank a running collective-call sequence number;
	// like real MPI, all ranks must invoke collectives in the same order.
	collSeq []int
	bar     *barrier
}

type boxKey struct {
	from, to, tag int
}

// New builds a communicator for cfg over net.
func New(e *simtime.Engine, net *netsim.Network, cfg cluster.Config) *Comm {
	return &Comm{
		eng:     e,
		net:     net,
		cfg:     cfg,
		boxes:   make(map[boxKey]*simtime.Chan[[]byte]),
		collSeq: make([]int, cfg.Ranks()),
		bar:     newBarrier(e, cfg.Ranks()),
	}
}

// Ranks returns the number of ranks.
func (c *Comm) Ranks() int { return c.cfg.Ranks() }

// Config returns the run configuration.
func (c *Comm) Config() cluster.Config { return c.cfg }

func (c *Comm) box(k boxKey) *simtime.Chan[[]byte] {
	b, ok := c.boxes[k]
	if !ok {
		b = simtime.NewChan[[]byte](c.eng, fmt.Sprintf("mpi %d->%d #%d", k.from, k.to, k.tag))
		c.boxes[k] = b
	}
	return b
}

// Send transmits data from rank `from` to rank `to` with the given tag,
// charging the sender the full transport time. The payload is copied.
func (c *Comm) Send(p *simtime.Proc, from, to, tag int, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	c.net.Transfer(p, c.cfg.RankNode(from), c.cfg.RankNode(to), int64(len(data)))
	c.box(boxKey{from, to, tag}).Send(cp)
}

// Recv blocks rank `to` until a message with the tag arrives from `from`.
func (c *Comm) Recv(p *simtime.Proc, from, to, tag int) []byte {
	return c.box(boxKey{from, to, tag}).Recv(p)
}

// barrier is a reusable generation barrier.
type barrier struct {
	eng   *simtime.Engine
	n     int
	count int
	fut   *simtime.Future[struct{}]
}

func newBarrier(e *simtime.Engine, n int) *barrier {
	return &barrier{eng: e, n: n, fut: simtime.NewFuture[struct{}](e, "barrier")}
}

func (b *barrier) wait(p *simtime.Proc) {
	fut := b.fut
	b.count++
	if b.count == b.n {
		b.count = 0
		b.fut = simtime.NewFuture[struct{}](b.eng, "barrier")
		fut.Set(struct{}{})
		return
	}
	fut.Wait(p)
}

// Barrier synchronizes all ranks; each rank is charged a latency
// proportional to the tree depth of a real barrier.
func (c *Comm) Barrier(p *simtime.Proc, rank int) {
	depth := int(math.Ceil(math.Log2(float64(c.Ranks()))))
	if depth < 1 {
		depth = 1
	}
	p.Sleep(simtime.Duration(depth) * 60_000) // ~60us per tree level
	c.bar.wait(p)
}

// Bcast distributes root's data to every rank using a rank-order chain.
// Rank order is node-major, so the payload crosses each node boundary
// exactly once (bandwidth-optimal, like MPI's large-message pipelines),
// intra-node hops are memory copies, and successive Bcast calls — e.g. the
// block-wise matrix broadcast — pipeline down the chain naturally. Every
// rank returns its own copy.
func (c *Comm) Bcast(p *simtime.Proc, rank, root int, data []byte) []byte {
	n := c.Ranks()
	tag := -(1 + c.collSeq[rank])
	c.collSeq[rank]++
	if n == 1 {
		cp := make([]byte, len(data))
		copy(cp, data)
		return cp
	}
	vrank := (rank - root + n) % n
	var buf []byte
	if vrank == 0 {
		buf = make([]byte, len(data))
		copy(buf, data)
	} else {
		prev := (vrank - 1 + root) % n
		buf = c.Recv(p, prev, rank, tag)
	}
	if vrank < n-1 {
		next := (vrank + 1 + root) % n
		c.Send(p, rank, next, tag, buf)
	}
	return buf
}

// Scatterv sends parts[i] to rank i (root keeps its own slice). Only the
// root passes parts; other ranks pass nil and receive their piece.
func (c *Comm) Scatterv(p *simtime.Proc, rank, root int, parts [][]byte) []byte {
	tag := -(1 + c.collSeq[rank])
	c.collSeq[rank]++
	if rank == root {
		for r := 0; r < c.Ranks(); r++ {
			if r == root {
				continue
			}
			c.Send(p, root, r, tag, parts[r])
		}
		cp := make([]byte, len(parts[root]))
		copy(cp, parts[root])
		return cp
	}
	return c.Recv(p, root, rank, tag)
}

// Gatherv collects each rank's part at the root, which receives them in
// rank order. Non-root ranks return nil.
func (c *Comm) Gatherv(p *simtime.Proc, rank, root int, part []byte) [][]byte {
	tag := -(1 + c.collSeq[rank])
	c.collSeq[rank]++
	if rank != root {
		c.Send(p, rank, root, tag, part)
		return nil
	}
	out := make([][]byte, c.Ranks())
	cp := make([]byte, len(part))
	copy(cp, part)
	out[root] = cp
	for r := 0; r < c.Ranks(); r++ {
		if r == root {
			continue
		}
		out[r] = c.Recv(p, r, root, tag)
	}
	return out
}

// RunRanks spawns one proc per rank executing body and returns after all
// ranks finish (the mpirun of the simulation).
func RunRanks(e *simtime.Engine, cfg cluster.Config, body func(p *simtime.Proc, rank int)) {
	wg := e.GoEach("rank", cfg.Ranks(), func(p *simtime.Proc, rank int) {
		body(p, rank)
	})
	e.Go("mpirun", func(p *simtime.Proc) { wg.Wait(p) })
}

// NodeOf returns the cluster node hosting a rank (placement helper for
// workloads).
func NodeOf(cfg cluster.Config, rank int) int { return cfg.RankNode(rank) }
