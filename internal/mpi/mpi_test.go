package mpi

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"nvmalloc/internal/cluster"
	"nvmalloc/internal/netsim"
	"nvmalloc/internal/simtime"
	"nvmalloc/internal/sysprof"
)

func newComm(procsPerNode, nodes int) (*simtime.Engine, *Comm) {
	e := simtime.NewEngine()
	net := netsim.New(e, sysprof.BondedDualGigE, nodes)
	cfg := cluster.Config{Mode: cluster.DRAMOnly, ProcsPerNode: procsPerNode, ComputeNodes: nodes}
	return e, New(e, net, cfg)
}

func TestSendRecv(t *testing.T) {
	e, c := newComm(2, 2)
	var got []byte
	RunRanks(e, c.Config(), func(p *simtime.Proc, rank int) {
		switch rank {
		case 0:
			c.Send(p, 0, 3, 7, []byte("hello"))
		case 3:
			got = c.Recv(p, 0, 3, 7)
		}
	})
	e.Run()
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	e, c := newComm(2, 1)
	data := []byte{1, 2, 3}
	var got []byte
	RunRanks(e, c.Config(), func(p *simtime.Proc, rank int) {
		if rank == 0 {
			c.Send(p, 0, 1, 0, data)
			data[0] = 99 // mutate after send
		} else {
			got = c.Recv(p, 0, 1, 0)
		}
	})
	e.Run()
	if got[0] != 1 {
		t.Fatal("send must copy the payload")
	}
}

func TestBcastAllRootsAllShapes(t *testing.T) {
	for _, shape := range [][2]int{{1, 4}, {2, 3}, {8, 16}} {
		for root := 0; root < shape[0]*shape[1]; root += 5 {
			e, c := newComm(shape[0], shape[1])
			payload := bytes.Repeat([]byte{0xAB}, 1000)
			results := make([][]byte, c.Ranks())
			RunRanks(e, c.Config(), func(p *simtime.Proc, rank int) {
				var in []byte
				if rank == root {
					in = payload
				}
				results[rank] = c.Bcast(p, rank, root, in)
			})
			e.Run()
			for r, got := range results {
				if !bytes.Equal(got, payload) {
					t.Fatalf("shape %v root %d: rank %d got %d bytes", shape, root, r, len(got))
				}
			}
		}
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	e, c := newComm(4, 4)
	n := c.Ranks()
	parts := make([][]byte, n)
	for i := range parts {
		parts[i] = []byte(fmt.Sprintf("part-%02d", i))
	}
	gathered := make([][]byte, 0)
	RunRanks(e, c.Config(), func(p *simtime.Proc, rank int) {
		var mine []byte
		if rank == 0 {
			mine = c.Scatterv(p, rank, 0, parts)
		} else {
			mine = c.Scatterv(p, rank, 0, nil)
		}
		out := c.Gatherv(p, rank, 0, mine)
		if rank == 0 {
			gathered = out
		}
	})
	e.Run()
	if len(gathered) != n {
		t.Fatalf("gathered %d parts", len(gathered))
	}
	for i, g := range gathered {
		if !bytes.Equal(g, parts[i]) {
			t.Fatalf("part %d = %q, want %q", i, g, parts[i])
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	e, c := newComm(4, 2)
	var before, after simtime.Time
	RunRanks(e, c.Config(), func(p *simtime.Proc, rank int) {
		// Rank 0 sleeps long; everyone else hits the barrier early.
		if rank == 0 {
			p.Sleep(1_000_000_000)
			before = p.Now()
		}
		c.Barrier(p, rank)
		if rank == 3 {
			after = p.Now()
		}
	})
	e.Run()
	if after < before {
		t.Fatalf("rank 3 left the barrier at %v before rank 0 arrived at %v", after, before)
	}
}

func TestBarrierReusable(t *testing.T) {
	e, c := newComm(2, 2)
	counts := make([]int, 3)
	RunRanks(e, c.Config(), func(p *simtime.Proc, rank int) {
		for round := 0; round < 3; round++ {
			c.Barrier(p, rank)
			if rank == 0 {
				counts[round]++
			}
		}
	})
	e.Run()
	for i, n := range counts {
		if n != 1 {
			t.Fatalf("round %d count %d", i, n)
		}
	}
}

func TestIntraNodeBcastCheaperThanInterNode(t *testing.T) {
	timeIt := func(procsPerNode, nodes int) simtime.Time {
		e, c := newComm(procsPerNode, nodes)
		data := make([]byte, 4<<20)
		RunRanks(e, c.Config(), func(p *simtime.Proc, rank int) {
			var in []byte
			if rank == 0 {
				in = data
			}
			c.Bcast(p, rank, 0, in)
		})
		e.Run()
		return e.Now()
	}
	intra := timeIt(8, 1) // 8 ranks on one node
	inter := timeIt(1, 8) // 8 ranks on 8 nodes
	if intra >= inter {
		t.Fatalf("intra-node bcast %v should beat inter-node %v", intra, inter)
	}
}

// Property: Bcast delivers identical bytes to all ranks for arbitrary
// payloads and roots.
func TestBcastProperty(t *testing.T) {
	f := func(payload []byte, rootSeed uint8) bool {
		e, c := newComm(3, 3)
		root := int(rootSeed) % c.Ranks()
		ok := true
		RunRanks(e, c.Config(), func(p *simtime.Proc, rank int) {
			var in []byte
			if rank == root {
				in = payload
			}
			out := c.Bcast(p, rank, root, in)
			if !bytes.Equal(out, payload) {
				ok = false
			}
		})
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
