package filecache

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"nvmalloc/internal/obs"
)

// manualConfig returns a deterministic test config: one shard, no
// background flusher (commits only via Commit/Close).
func manualConfig(dir string) Config {
	return Config{Dir: dir, MaxBytes: 1 << 20, Shards: 1, FlushInterval: -1, Obs: obs.New("test")}
}

func chunkPattern(key uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(uint64(i)*2654435761 + key*31 + 7)
	}
	return b
}

func TestCachePutGetCommitReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(manualConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 20; k++ {
		c.Put(k, k%4, chunkPattern(k, 512))
	}
	for k := uint64(1); k <= 20; k++ { // pending (uncommitted) reads
		data, gen, ok := c.Get(k)
		if !ok || gen != k%4 || !bytes.Equal(data, chunkPattern(k, 512)) {
			t.Fatalf("pending Get(%d) = ok=%v gen=%d", k, ok, gen)
		}
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 20; k++ { // committed (mmap-backed) reads
		data, gen, ok := c.Get(k)
		if !ok || gen != k%4 || !bytes.Equal(data, chunkPattern(k, 512)) {
			t.Fatalf("committed Get(%d) = ok=%v gen=%d", k, ok, gen)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(manualConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for k := uint64(1); k <= 20; k++ {
		data, gen, ok := c2.Get(k)
		if !ok || gen != k%4 || !bytes.Equal(data, chunkPattern(k, 512)) {
			t.Fatalf("reopened Get(%d) = ok=%v gen=%d", k, ok, gen)
		}
	}
	if st := c2.Stats(); st.Rebuilds != 0 {
		t.Fatalf("clean reopen counted %d rebuilds", st.Rebuilds)
	}
}

func TestCacheInvalidate(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(manualConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Put(1, 0, chunkPattern(1, 128))
	c.Invalidate(1)
	if _, _, ok := c.Get(1); ok {
		t.Fatal("Get after Invalidate returned an entry")
	}
	// Invalidating a committed entry creates the marker; the following
	// commit scrubs the entry and clears it again.
	c.Put(2, 0, chunkPattern(2, 128))
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	c.Invalidate(2)
	if _, err := os.Stat(filepath.Join(dir, markerName)); err != nil {
		t.Fatalf("marker missing after committed-entry invalidation: %v", err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, markerName)); !os.IsNotExist(err) {
		t.Fatalf("marker still present after commit: %v", err)
	}
}

func TestCacheEvictsOldestWithinCapacity(t *testing.T) {
	dir := t.TempDir()
	cfg := manualConfig(dir)
	cfg.MaxBytes = 4 * 256 // room for 4 entries
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for k := uint64(1); k <= 10; k++ {
		c.Put(k, 0, chunkPattern(k, 256))
	}
	st := c.Stats()
	if st.LiveEntries != 4 || st.Evictions != 6 {
		t.Fatalf("stats = %+v, want 4 live, 6 evictions", st)
	}
	for k := uint64(1); k <= 6; k++ {
		if _, _, ok := c.Get(k); ok {
			t.Fatalf("evicted key %d still served", k)
		}
	}
	for k := uint64(7); k <= 10; k++ {
		if _, _, ok := c.Get(k); !ok {
			t.Fatalf("recent key %d was evicted", k)
		}
	}
}

// TestOpenRebuildsOnAnyCorruptByte is the acceptance check: flipping any
// single byte of a shard file never fails the open — the shard either
// still validates (impossible here: every byte is covered by a CRC or is
// the payload of a live entry) or rebuilds from empty with a counted,
// logged rebuild event; and no corrupted payload is ever served.
func TestOpenRebuildsOnAnyCorruptByte(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(manualConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 3; k++ {
		c.Put(k, 1, chunkPattern(k, 200))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	shardPath := filepath.Join(dir, "shard-000.nvc")
	orig, err := os.ReadFile(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	structured := int(payloadOff(3))

	for pos := 0; pos < len(orig); pos++ {
		mut := append([]byte(nil), orig...)
		mut[pos] ^= 0xff
		if err := os.WriteFile(shardPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		cfg := manualConfig(dir)
		c2, err := Open(cfg)
		if err != nil {
			t.Fatalf("corrupt byte %d: Open failed: %v", pos, err)
		}
		rebuilt := c2.Stats().Rebuilds > 0
		if pos < structured && !rebuilt {
			t.Fatalf("corrupt byte %d in header/index did not rebuild", pos)
		}
		if rebuilt {
			events := cfg.Obs.Ring.Events()
			found := false
			for _, ev := range events {
				if ev.Comp == "filecache" && ev.Kind == "rebuild" {
					found = true
				}
			}
			if !found {
				t.Fatalf("corrupt byte %d: rebuild happened without an obs rebuild event", pos)
			}
		}
		// Payload corruption passes the open (CRCs are lazy) but must be
		// caught at read time: a Get either misses or returns exact bytes.
		for k := uint64(1); k <= 3; k++ {
			if data, _, ok := c2.Get(k); ok && !bytes.Equal(data, chunkPattern(k, 200)) {
				t.Fatalf("corrupt byte %d: Get(%d) served wrong bytes", pos, k)
			}
		}
		if !rebuilt {
			// One of the three payloads was corrupted: it must have been
			// dropped with a corrupt-payload count, not served.
			if st := c2.Stats(); st.CorruptPayloads != 1 {
				t.Fatalf("corrupt byte %d: CorruptPayloads=%d, want 1", pos, st.CorruptPayloads)
			}
		}
		c2.Close()
	}
}

func TestOpenRebuildsOnDirtyMarker(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(manualConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	c.Put(1, 0, chunkPattern(1, 64))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash that lost invalidations: marker present at Open.
	if err := os.WriteFile(filepath.Join(dir, markerName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(manualConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, _, ok := c2.Get(1); ok {
		t.Fatal("entry survived a dirty-marker rebuild")
	}
	if st := c2.Stats(); st.Rebuilds != 1 {
		t.Fatalf("Rebuilds = %d, want 1", st.Rebuilds)
	}
}

// crashChildEnv gates the re-exec child below.
const crashChildEnv = "NVC_CRASH_CHILD_DIR"

// TestCrashChild is not a test: it is the writer process the crash-
// recovery loop SIGKILLs mid-commit. It writes deterministic payloads
// with a fast flusher and periodic invalidations until killed.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv(crashChildEnv)
	if dir == "" {
		t.Skip("crash-child mode only")
	}
	c, err := Open(Config{Dir: dir, MaxBytes: 1 << 20, Shards: 2, FlushInterval: time.Millisecond})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash child open: %v\n", err)
		os.Exit(3)
	}
	fmt.Println("CHILD-RUNNING") // parent waits for this before killing
	// Phase 1 (~10ms): puts interleaved with invalidations, so kills here
	// land with the dirty marker on and the reopen rebuilds. Phase 2: pure
	// puts — the next quiet commit clears the marker, so later kills land
	// on a validating snapshot. The parent's varying kill delay samples
	// both phases across the loop.
	for i := uint64(0); ; i++ {
		k := i % 64
		c.Put(k, 0, chunkPattern(k, 1024))
		if i < 100 && i%17 == 0 {
			c.Invalidate((i / 17) % 64)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestCrashRecoveryLoop kills a committing writer 20 times (4 under
// -short) and asserts every reopen either validates or rebuilds clean:
// Open never errors, and every surviving entry reads back byte-exact.
func TestCrashRecoveryLoop(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	iters := 20
	if testing.Short() {
		iters = 4
	}
	dir := t.TempDir()
	servedTotal := 0
	for i := 0; i < iters; i++ {
		cmd := exec.Command(exe, "-test.run", "^TestCrashChild$", "-test.v")
		cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Wait for the child to be mid-workload, then let it commit a few
		// times (1ms flush interval) and kill it at a varying point.
		readyBuf := make([]byte, 1)
		deadline := time.Now().Add(10 * time.Second)
		var line []byte
		for time.Now().Before(deadline) {
			n, rerr := stdout.Read(readyBuf)
			if n > 0 {
				line = append(line, readyBuf[0])
				if bytes.Contains(line, []byte("CHILD-RUNNING")) {
					break
				}
			}
			if rerr != nil {
				break
			}
		}
		if !bytes.Contains(line, []byte("CHILD-RUNNING")) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("iteration %d: child never reported running (output %q)", i, line)
		}
		time.Sleep(time.Duration(15+(i*13)%90) * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
			t.Fatal(err)
		}
		cmd.Wait()

		c, err := Open(Config{Dir: dir, MaxBytes: 1 << 20, Shards: 2, FlushInterval: -1, Obs: obs.New("crash")})
		if err != nil {
			t.Fatalf("iteration %d: reopen after crash failed: %v", i, err)
		}
		served := 0
		for k := uint64(0); k < 64; k++ {
			data, _, ok := c.Get(k)
			if !ok {
				continue
			}
			served++
			if !bytes.Equal(data, chunkPattern(k, 1024)) {
				t.Fatalf("iteration %d: key %d read back wrong bytes after crash", i, k)
			}
		}
		servedTotal += served
		t.Logf("iteration %d: reopen served %d/64 entries (rebuilds=%d)", i, served, c.Stats().Rebuilds)
		if err := c.Close(); err != nil {
			t.Fatalf("iteration %d: close: %v", i, err)
		}
	}
	// The loop must exercise the validate path, not only rebuilds: at
	// least one kill lands after the child's invalidation phase, when the
	// marker is clear and the snapshot serves.
	if servedTotal == 0 {
		t.Fatal("every crash iteration rebuilt from empty; the validate path was never exercised")
	}
}
