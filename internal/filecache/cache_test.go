package filecache

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"nvmalloc/internal/obs"
)

// manualConfig returns a deterministic test config: one shard, no
// background flusher (commits only via Commit/Close).
func manualConfig(dir string) Config {
	return Config{Dir: dir, MaxBytes: 1 << 20, Shards: 1, FlushInterval: -1, Obs: obs.New("test")}
}

func chunkPattern(key uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(uint64(i)*2654435761 + key*31 + 7)
	}
	return b
}

func TestCachePutGetCommitReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(manualConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 20; k++ {
		c.Put(k, k%4, chunkPattern(k, 512))
	}
	for k := uint64(1); k <= 20; k++ { // pending (uncommitted) reads
		data, gen, ok := c.Get(k)
		if !ok || gen != k%4 || !bytes.Equal(data, chunkPattern(k, 512)) {
			t.Fatalf("pending Get(%d) = ok=%v gen=%d", k, ok, gen)
		}
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 20; k++ { // committed (mmap-backed) reads
		data, gen, ok := c.Get(k)
		if !ok || gen != k%4 || !bytes.Equal(data, chunkPattern(k, 512)) {
			t.Fatalf("committed Get(%d) = ok=%v gen=%d", k, ok, gen)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(manualConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for k := uint64(1); k <= 20; k++ {
		data, gen, ok := c2.Get(k)
		if !ok || gen != k%4 || !bytes.Equal(data, chunkPattern(k, 512)) {
			t.Fatalf("reopened Get(%d) = ok=%v gen=%d", k, ok, gen)
		}
	}
	if st := c2.Stats(); st.Rebuilds != 0 {
		t.Fatalf("clean reopen counted %d rebuilds", st.Rebuilds)
	}
}

func TestCacheInvalidate(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(manualConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Put(1, 0, chunkPattern(1, 128))
	c.Invalidate(1)
	if _, _, ok := c.Get(1); ok {
		t.Fatal("Get after Invalidate returned an entry")
	}
	// Invalidating a committed entry creates the marker; the following
	// commit scrubs the entry and clears it again.
	c.Put(2, 0, chunkPattern(2, 128))
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	c.Invalidate(2)
	if _, err := os.Stat(filepath.Join(dir, markerName)); err != nil {
		t.Fatalf("marker missing after committed-entry invalidation: %v", err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, markerName)); !os.IsNotExist(err) {
		t.Fatalf("marker still present after commit: %v", err)
	}
}

func TestCacheEvictsOldestWithinCapacity(t *testing.T) {
	dir := t.TempDir()
	cfg := manualConfig(dir)
	cfg.MaxBytes = 4 * 256 // room for 4 entries
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for k := uint64(1); k <= 10; k++ {
		c.Put(k, 0, chunkPattern(k, 256))
	}
	st := c.Stats()
	if st.LiveEntries != 4 || st.Evictions != 6 {
		t.Fatalf("stats = %+v, want 4 live, 6 evictions", st)
	}
	for k := uint64(1); k <= 6; k++ {
		if _, _, ok := c.Get(k); ok {
			t.Fatalf("evicted key %d still served", k)
		}
	}
	for k := uint64(7); k <= 10; k++ {
		if _, _, ok := c.Get(k); !ok {
			t.Fatalf("recent key %d was evicted", k)
		}
	}
}

// TestOpenRebuildsOnAnyCorruptByte is the acceptance check: flipping any
// single byte of a shard file never fails the open — the shard either
// still validates (impossible here: every byte is covered by a CRC or is
// the payload of a live entry) or rebuilds from empty with a counted,
// logged rebuild event; and no corrupted payload is ever served.
func TestOpenRebuildsOnAnyCorruptByte(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(manualConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 3; k++ {
		c.Put(k, 1, chunkPattern(k, 200))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	shardPath := filepath.Join(dir, "shard-000.nvc")
	orig, err := os.ReadFile(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	structured := int(payloadOff(3))

	for pos := 0; pos < len(orig); pos++ {
		mut := append([]byte(nil), orig...)
		mut[pos] ^= 0xff
		if err := os.WriteFile(shardPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		cfg := manualConfig(dir)
		c2, err := Open(cfg)
		if err != nil {
			t.Fatalf("corrupt byte %d: Open failed: %v", pos, err)
		}
		rebuilt := c2.Stats().Rebuilds > 0
		if pos < structured && !rebuilt {
			t.Fatalf("corrupt byte %d in header/index did not rebuild", pos)
		}
		if rebuilt {
			events := cfg.Obs.Ring.Events()
			found := false
			for _, ev := range events {
				if ev.Comp == "filecache" && ev.Kind == "rebuild" {
					found = true
				}
			}
			if !found {
				t.Fatalf("corrupt byte %d: rebuild happened without an obs rebuild event", pos)
			}
		}
		// Payload corruption passes the open (CRCs are lazy) but must be
		// caught at read time: a Get either misses or returns exact bytes.
		for k := uint64(1); k <= 3; k++ {
			if data, _, ok := c2.Get(k); ok && !bytes.Equal(data, chunkPattern(k, 200)) {
				t.Fatalf("corrupt byte %d: Get(%d) served wrong bytes", pos, k)
			}
		}
		if !rebuilt {
			// One of the three payloads was corrupted: it must have been
			// dropped with a corrupt-payload count, not served.
			if st := c2.Stats(); st.CorruptPayloads != 1 {
				t.Fatalf("corrupt byte %d: CorruptPayloads=%d, want 1", pos, st.CorruptPayloads)
			}
		}
		c2.Close()
	}
}

func TestOpenRebuildsOnDirtyMarker(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(manualConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	c.Put(1, 0, chunkPattern(1, 64))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash that lost invalidations: marker present at Open.
	if err := os.WriteFile(filepath.Join(dir, markerName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(manualConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, _, ok := c2.Get(1); ok {
		t.Fatal("entry survived a dirty-marker rebuild")
	}
	if st := c2.Stats(); st.Rebuilds != 1 {
		t.Fatalf("Rebuilds = %d, want 1", st.Rebuilds)
	}
}

// TestInvalidateEvictedOnDiskKeySetsMarker pins the marker protocol for a
// key that is gone from memory but still sits in the last committed
// snapshot: the eviction only dropped it from the entry map, so a crash
// after the invalidation would otherwise resurrect the stale on-disk
// copy at the next Open.
func TestInvalidateEvictedOnDiskKeySetsMarker(t *testing.T) {
	dir := t.TempDir()
	cfg := manualConfig(dir)
	cfg.MaxBytes = 4 * 256 // room for 4 entries
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(1, 1, chunkPattern(1, 256))
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	// Push key 1 out of memory without committing: the shard file keeps it.
	for k := uint64(2); k <= 5; k++ {
		c.Put(k, 1, chunkPattern(k, 256))
	}
	if _, _, ok := c.Get(1); ok {
		t.Fatal("key 1 was not evicted")
	}
	c.Invalidate(1)
	if _, err := os.Stat(filepath.Join(dir, markerName)); err != nil {
		t.Fatalf("marker missing after invalidating an evicted on-disk key: %v", err)
	}
	// Crash (abandon without Close): the reopen must rebuild, not serve.
	c2, err := Open(manualConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, _, ok := c2.Get(1); ok {
		t.Fatal("stale on-disk entry served after crash")
	}
	if st := c2.Stats(); st.Rebuilds != 1 {
		t.Fatalf("Rebuilds = %d, want 1", st.Rebuilds)
	}
}

// TestInvalidateReplacedCommittedKeySetsMarker pins the marker protocol
// for a committed key shadowed by a pending Put: the live entry is
// uncommitted, but the prior committed version still sits in the shard
// file, and a crash after the invalidation would resurrect it.
func TestInvalidateReplacedCommittedKeySetsMarker(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(manualConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	c.Put(7, 1, chunkPattern(7, 128))
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	c.Put(7, 2, chunkPattern(77, 128)) // pending replacement
	c.Invalidate(7)
	if _, err := os.Stat(filepath.Join(dir, markerName)); err != nil {
		t.Fatalf("marker missing after invalidating a replaced committed key: %v", err)
	}
	c2, err := Open(manualConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, _, ok := c2.Get(7); ok {
		t.Fatal("stale committed version served after crash")
	}
}

// TestMarkerSurvivesCommitInvalidateRaces hammers Put/Invalidate against
// a concurrent committer, then invalidates every key and simulates a
// crash. A marker-clear racing an invalidation (the clear sampling the
// sequence before the invalidation bumped it, then removing the marker
// the invalidation just created) would leave a committed stale entry
// servable after the reopen.
func TestMarkerSurvivesCommitInvalidateRaces(t *testing.T) {
	dir := t.TempDir()
	cfg := manualConfig(dir)
	cfg.Shards = 2
	cfg.ShardRange = 4
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const nKeys = 32
	stop := make(chan struct{})
	committerDone := make(chan struct{})
	go func() {
		defer close(committerDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = c.Commit()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				k := uint64(rng.Intn(nKeys))
				if rng.Intn(3) == 0 {
					c.Invalidate(k)
				} else {
					c.Put(k, uint64(i), chunkPattern(k, 64+rng.Intn(64)))
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(stop)
	<-committerDone
	// Final sweep: drop everything, then crash before any further commit.
	for k := uint64(0); k < nKeys; k++ {
		c.Invalidate(k)
	}
	c2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for k := uint64(0); k < nKeys; k++ {
		if _, _, ok := c2.Get(k); ok {
			t.Fatalf("invalidated key %d served after crash", k)
		}
	}
}

// TestOpenClampsShardCapacity pins the 4 GiB NVC1 format guard: a config
// whose MaxBytes/Shards quotient exceeds the uint32 offset space must get
// per-shard capacities clamped, not shard files that silently truncate
// offsets at commit time.
func TestOpenClampsShardCapacity(t *testing.T) {
	dir := t.TempDir()
	cfg := manualConfig(dir)
	cfg.MaxBytes = 64 << 30
	cfg.Shards = 8 // 8 GiB per shard uncapped
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i, sh := range c.shd {
		if sh.capacity > maxShardPayload {
			t.Fatalf("shard %d capacity %d exceeds the format-safe payload bound %d", i, sh.capacity, maxShardPayload)
		}
	}
}

// crashChildEnv gates the re-exec child below.
const crashChildEnv = "NVC_CRASH_CHILD_DIR"

// TestCrashChild is not a test: it is the writer process the crash-
// recovery loop SIGKILLs mid-commit. It writes deterministic payloads
// with a fast flusher and periodic invalidations until killed.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv(crashChildEnv)
	if dir == "" {
		t.Skip("crash-child mode only")
	}
	c, err := Open(Config{Dir: dir, MaxBytes: 1 << 20, Shards: 2, FlushInterval: time.Millisecond})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash child open: %v\n", err)
		os.Exit(3)
	}
	fmt.Println("CHILD-RUNNING") // parent waits for this before killing
	// Phase 1 (~10ms): puts interleaved with invalidations, so kills here
	// land with the dirty marker on and the reopen rebuilds. Phase 2: pure
	// puts — the next quiet commit clears the marker, so later kills land
	// on a validating snapshot. The parent's varying kill delay samples
	// both phases across the loop.
	for i := uint64(0); ; i++ {
		k := i % 64
		c.Put(k, 0, chunkPattern(k, 1024))
		if i < 100 && i%17 == 0 {
			c.Invalidate((i / 17) % 64)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestCrashRecoveryLoop kills a committing writer 20 times (4 under
// -short) and asserts every reopen either validates or rebuilds clean:
// Open never errors, and every surviving entry reads back byte-exact.
func TestCrashRecoveryLoop(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	iters := 20
	if testing.Short() {
		iters = 4
	}
	dir := t.TempDir()
	servedTotal := 0
	for i := 0; i < iters; i++ {
		cmd := exec.Command(exe, "-test.run", "^TestCrashChild$", "-test.v")
		cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Wait for the child to be mid-workload, then let it commit a few
		// times (1ms flush interval) and kill it at a varying point.
		readyBuf := make([]byte, 1)
		deadline := time.Now().Add(10 * time.Second)
		var line []byte
		for time.Now().Before(deadline) {
			n, rerr := stdout.Read(readyBuf)
			if n > 0 {
				line = append(line, readyBuf[0])
				if bytes.Contains(line, []byte("CHILD-RUNNING")) {
					break
				}
			}
			if rerr != nil {
				break
			}
		}
		if !bytes.Contains(line, []byte("CHILD-RUNNING")) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("iteration %d: child never reported running (output %q)", i, line)
		}
		time.Sleep(time.Duration(15+(i*13)%90) * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
			t.Fatal(err)
		}
		cmd.Wait()

		c, err := Open(Config{Dir: dir, MaxBytes: 1 << 20, Shards: 2, FlushInterval: -1, Obs: obs.New("crash")})
		if err != nil {
			t.Fatalf("iteration %d: reopen after crash failed: %v", i, err)
		}
		served := 0
		for k := uint64(0); k < 64; k++ {
			data, _, ok := c.Get(k)
			if !ok {
				continue
			}
			served++
			if !bytes.Equal(data, chunkPattern(k, 1024)) {
				t.Fatalf("iteration %d: key %d read back wrong bytes after crash", i, k)
			}
		}
		servedTotal += served
		t.Logf("iteration %d: reopen served %d/64 entries (rebuilds=%d)", i, served, c.Stats().Rebuilds)
		if err := c.Close(); err != nil {
			t.Fatalf("iteration %d: close: %v", i, err)
		}
	}
	// The loop must exercise the validate path, not only rebuilds: at
	// least one kill lands after the child's invalidation phase, when the
	// marker is clear and the snapshot serves.
	if servedTotal == 0 {
		t.Fatal("every crash iteration rebuilt from empty; the validate path was never exercised")
	}
}
