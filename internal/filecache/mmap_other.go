//go:build !unix

package filecache

import "os"

// mapShard on platforms without syscall.Mmap degrades to reading the
// whole shard into a private heap buffer. Semantics are identical (the
// cache only ever reads the view); only the memory residency differs.
func mapShard(f *os.File, size int64) (data []byte, unmap func(), err error) {
	if size == 0 {
		return nil, func() {}, nil
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, nil, err
	}
	return buf, func() {}, nil
}
