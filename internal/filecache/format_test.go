package filecache

import (
	"bytes"
	"testing"
)

func testEntries(n int) []snapshotEntry {
	entries := make([]snapshotEntry, n)
	for i := range entries {
		data := make([]byte, 64+i*17)
		for j := range data {
			data[j] = byte(i*31 + j)
		}
		entries[i] = snapshotEntry{key: uint64(1000 + i), gen: uint64(i % 3), data: data}
	}
	return entries
}

func TestSnapshotRoundTrip(t *testing.T) {
	entries := testEntries(5)
	img := encodeSnapshot(entries, 7)
	h, idx, payload, err := decodeSnapshot(img)
	if err != nil {
		t.Fatalf("decodeSnapshot: %v", err)
	}
	if h.commitSeq != 7 || int(h.count) != len(entries) {
		t.Fatalf("header = %+v, want count=%d commitSeq=7", h, len(entries))
	}
	for i, e := range idx {
		want := entries[i]
		if e.key != want.key || e.gen != want.gen || int(e.length) != len(want.data) {
			t.Fatalf("entry %d = %+v, want key=%d gen=%d len=%d", i, e, want.key, want.gen, len(want.data))
		}
		got := payload[e.off : e.off+e.length]
		if !bytes.Equal(got, want.data) {
			t.Fatalf("entry %d payload differs", i)
		}
		if crc32Of(got) != e.crc {
			t.Fatalf("entry %d CRC mismatch", i)
		}
	}
}

func TestSnapshotEmpty(t *testing.T) {
	img := encodeSnapshot(nil, 1)
	if len(img) != HeaderSize {
		t.Fatalf("empty snapshot is %d bytes, want %d", len(img), HeaderSize)
	}
	h, idx, _, err := decodeSnapshot(img)
	if err != nil {
		t.Fatalf("decodeSnapshot: %v", err)
	}
	if h.count != 0 || len(idx) != 0 {
		t.Fatalf("empty snapshot decoded to %d entries", len(idx))
	}
}

// TestDecodeRejectsEveryHeaderOrIndexCorruption flips every bit of the
// header and index sections in turn: each corrupted image must be
// rejected (CRCs cover both sections completely), and no flip anywhere —
// payload included — may panic the decoder.
func TestDecodeRejectsEveryHeaderOrIndexCorruption(t *testing.T) {
	img := encodeSnapshot(testEntries(4), 3)
	structured := int(payloadOff(4))
	for pos := 0; pos < len(img); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), img...)
			mut[pos] ^= 1 << bit
			_, _, _, err := decodeSnapshot(mut)
			if pos < structured && err == nil {
				t.Fatalf("flip of byte %d bit %d (header/index) was not rejected", pos, bit)
			}
		}
	}
}

func TestDecodeRejectsTruncationAndGrowth(t *testing.T) {
	img := encodeSnapshot(testEntries(3), 1)
	for _, n := range []int{0, 1, HeaderSize - 1, HeaderSize, len(img) - 1} {
		if _, _, _, err := decodeSnapshot(img[:n]); err == nil {
			t.Fatalf("truncation to %d bytes was not rejected", n)
		}
	}
	if _, _, _, err := decodeSnapshot(append(append([]byte(nil), img...), 0)); err == nil {
		t.Fatal("trailing garbage was not rejected")
	}
}

// FuzzDecodeNVC1Index feeds arbitrary and mutated shard images to the
// decoder: it must never panic, and whenever it accepts an image every
// entry must be in-bounds of the returned payload view (the "never serve
// wrong payload" half is the payload CRC, exercised at Get).
func FuzzDecodeNVC1Index(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeSnapshot(nil, 1))
	f.Add(encodeSnapshot(testEntries(1), 1))
	f.Add(encodeSnapshot(testEntries(6), 42))
	long := encodeSnapshot(testEntries(9), 9)
	for pos := 0; pos < len(long); pos += 13 {
		mut := append([]byte(nil), long...)
		mut[pos] ^= 0x40
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, idx, payload, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		if int(h.count) != len(idx) {
			t.Fatalf("count %d != %d entries", h.count, len(idx))
		}
		seen := make(map[uint64]bool, len(idx))
		for i, e := range idx {
			if int64(e.off)+int64(e.length) > int64(len(payload)) {
				t.Fatalf("accepted entry %d overflows payload: off=%d len=%d payload=%d", i, e.off, e.length, len(payload))
			}
			if seen[e.key] {
				t.Fatalf("accepted duplicate key %d", e.key)
			}
			seen[e.key] = true
		}
	})
}

// TestEncodeDecodeManySizes pins the section arithmetic across entry
// counts and payload sizes, including zero-length payloads.
func TestEncodeDecodeManySizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, 64} {
		entries := make([]snapshotEntry, n)
		for i := range entries {
			entries[i] = snapshotEntry{key: uint64(i), gen: 1, data: make([]byte, i%5*11)}
		}
		img := encodeSnapshot(entries, uint64(n))
		if _, idx, _, err := decodeSnapshot(img); err != nil || len(idx) != n {
			t.Fatalf("n=%d: err=%v entries=%d", n, err, len(idx))
		}
	}
}
