package filecache

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"nvmalloc/internal/fusecache"
	"nvmalloc/internal/obs"
	"nvmalloc/internal/proto"
	"nvmalloc/internal/store"
)

// TestCacheModelProperty drives the raw Cache with a random op sequence
// against a model map: whatever the cache serves must be byte-identical
// to the model at the stored generation, and a key the model does not
// hold (invalidated) must never be served. Eviction may lose entries (the
// cache is a subset of the model), never corrupt or resurrect them.
func TestCacheModelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	cfg := Config{Dir: dir, MaxBytes: 64 * 300, Shards: 4, ShardRange: 8, FlushInterval: -1, Obs: obs.New("prop")}
	c, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type mentry struct {
		gen  uint64
		data []byte
	}
	model := make(map[uint64]mentry)
	gens := make(map[uint64]uint64)

	const ops = 4000
	for i := 0; i < ops; i++ {
		key := uint64(rng.Intn(120))
		switch op := rng.Intn(10); {
		case op < 4: // put at a fresh generation
			gens[key]++
			data := chunkPattern(key+gens[key]*1000, 32+rng.Intn(280))
			c.Put(key, gens[key], data)
			model[key] = mentry{gen: gens[key], data: data}
		case op < 8: // get and check against the model
			data, gen, ok := c.Get(key)
			if !ok {
				continue // miss is always legal (eviction, invalidation)
			}
			want, live := model[key]
			if !live {
				t.Fatalf("op %d: invalidated key %d was served", i, key)
			}
			if gen != want.gen {
				t.Fatalf("op %d: key %d served stale generation %d, want %d", i, key, gen, want.gen)
			}
			if !bytes.Equal(data, want.data) {
				t.Fatalf("op %d: key %d served wrong bytes", i, key)
			}
		case op < 9: // invalidate
			c.Invalidate(key)
			delete(model, key)
		default: // commit, occasionally close + reopen (warm restart)
			if err := c.Commit(); err != nil {
				t.Fatalf("op %d: commit: %v", i, err)
			}
			if rng.Intn(4) == 0 {
				if err := c.Close(); err != nil {
					t.Fatalf("op %d: close: %v", i, err)
				}
				if c, err = Open(cfg); err != nil {
					t.Fatalf("op %d: reopen: %v", i, err)
				}
			}
		}
	}
	st := c.Stats()
	if st.Hits == 0 || st.Evictions == 0 || st.Invalidations == 0 || st.Commits == 0 {
		t.Fatalf("property run did not exercise the cache: %+v", st)
	}
	if st.Rebuilds != 0 || st.CorruptPayloads != 0 {
		t.Fatalf("clean property run saw rebuilds/corruption: %+v", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// memClient is a minimal in-memory store.Client for the mixed-tier test:
// a fake wire whose GetChunk/PutChunk/PutPages hit a shared chunk map.
type memClient struct {
	mu        sync.Mutex
	chunkSize int64
	files     map[string]proto.FileInfo
	chunks    map[proto.ChunkID][]byte
	nextID    proto.ChunkID
	wireGets  int
}

func newMemClient(chunkSize int64) *memClient {
	return &memClient{
		chunkSize: chunkSize,
		files:     make(map[string]proto.FileInfo),
		chunks:    make(map[proto.ChunkID][]byte),
		nextID:    1,
	}
}

func (m *memClient) Node() int        { return 0 }
func (m *memClient) ChunkSize() int64 { return m.chunkSize }

func (m *memClient) Create(_ store.Ctx, name string, size int64) (proto.FileInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := int((size + m.chunkSize - 1) / m.chunkSize)
	fi := proto.FileInfo{Name: name, Size: size, Chunks: make([]proto.ChunkRef, n)}
	for i := range fi.Chunks {
		fi.Chunks[i] = proto.ChunkRef{Benefactor: 0, ID: m.nextID}
		m.chunks[m.nextID] = make([]byte, m.chunkSize)
		m.nextID++
	}
	m.files[name] = fi
	return fi, nil
}

func (m *memClient) Lookup(_ store.Ctx, name string) (proto.FileInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fi, ok := m.files[name]
	if !ok {
		return proto.FileInfo{}, proto.ErrNoSuchFile
	}
	return fi, nil
}

func (m *memClient) Delete(_ store.Ctx, name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
	return nil
}

func (m *memClient) Link(store.Ctx, string, []string) (proto.FileInfo, error) {
	return proto.FileInfo{}, fmt.Errorf("memClient: Link unsupported")
}
func (m *memClient) Derive(store.Ctx, string, string, int, int, int64) (proto.FileInfo, error) {
	return proto.FileInfo{}, fmt.Errorf("memClient: Derive unsupported")
}
func (m *memClient) Remap(_ store.Ctx, name string, idx int) ([]proto.ChunkRef, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return []proto.ChunkRef{m.files[name].Chunks[idx]}, nil
}
func (m *memClient) SetTTL(store.Ctx, string, time.Duration) error { return nil }
func (m *memClient) Status(store.Ctx) ([]proto.BenefactorInfo, error) {
	return nil, nil
}

func (m *memClient) GetChunk(_ store.Ctx, refs []proto.ChunkRef) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.chunks[refs[0].ID]
	if !ok {
		return nil, proto.ErrNoSuchChunk
	}
	m.wireGets++
	return append([]byte(nil), d...), nil
}

func (m *memClient) PutChunk(_ store.Ctx, refs []proto.ChunkRef, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.chunks[refs[0].ID] = append([]byte(nil), data...)
	return nil
}

func (m *memClient) PutPages(_ store.Ctx, refs []proto.ChunkRef, pageOffs []int64, pages [][]byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.chunks[refs[0].ID]
	if !ok {
		return proto.ErrNoSuchChunk
	}
	for i, off := range pageOffs {
		copy(d[off:], pages[i])
	}
	return nil
}

// TestMixedTierEvictionReadbackProperty stacks the real RAM chunk cache
// (fusecache) over the file tier over a fake wire, and runs a random
// write/read/flush/restart workload against a model byte image. Every
// read must be byte-identical to the model — across spills, file-tier
// hits, overwrite invalidations, and simulated process restarts — and
// the run must actually exercise the file tier (spills and hits > 0).
func TestMixedTierEvictionReadbackProperty(t *testing.T) {
	const (
		chunkSize = 1024
		pageSize  = 256
		nChunks   = 16
		fileSize  = chunkSize * nChunks
	)
	rng := rand.New(rand.NewSource(42))
	wire := newMemClient(chunkSize)
	dir := t.TempDir()
	o := obs.New("mixed")

	files := []string{"va", "vb"}
	model := make(map[string][]byte)
	for _, f := range files {
		if _, err := wire.Create(nil, f, fileSize); err != nil {
			t.Fatal(err)
		}
		model[f] = make([]byte, fileSize)
	}

	var (
		tier *Tier
		env  *store.GoEnv
		cc   *fusecache.ChunkCache
	)
	openStack := func() {
		var err error
		tier, err = NewTier(wire, Config{Dir: dir, MaxBytes: 1 << 20, FlushInterval: -1, Obs: o})
		if err != nil {
			t.Fatal(err)
		}
		env = store.NewGoEnv()
		cc = fusecache.NewChunkCache(env, tier, fusecache.Config{
			ChunkSize:  chunkSize,
			PageSize:   pageSize,
			CacheBytes: 4 * chunkSize, // tiny: constant eviction/spill churn
			Obs:        o,
		})
	}
	closeStack := func() {
		if err := cc.FlushAll(nil); err != nil {
			t.Fatal(err)
		}
		env.Quiesce()
		if err := tier.Close(); err != nil {
			t.Fatal(err)
		}
	}
	openStack()

	const ops = 3000
	for i := 0; i < ops; i++ {
		f := files[rng.Intn(len(files))]
		off := int64(rng.Intn(fileSize - 1))
		n := 1 + rng.Intn(int(min64(int64(fileSize)-off, 3*chunkSize)))
		switch op := rng.Intn(10); {
		case op < 4: // write random bytes
			data := make([]byte, n)
			rng.Read(data)
			if err := cc.WriteRange(nil, f, off, data); err != nil {
				t.Fatalf("op %d: write: %v", i, err)
			}
			copy(model[f][off:], data)
		case op < 8: // read and verify
			buf := make([]byte, n)
			if err := cc.ReadRange(nil, f, off, buf); err != nil {
				t.Fatalf("op %d: read: %v", i, err)
			}
			if !bytes.Equal(buf, model[f][off:off+int64(n)]) {
				t.Fatalf("op %d: read [%d,+%d) of %s differs from model", i, off, n, f)
			}
		case op < 9: // flush one file
			if err := cc.Flush(nil, f); err != nil {
				t.Fatalf("op %d: flush: %v", i, err)
			}
		default: // simulated restart: flush, close the stack, reopen
			closeStack()
			openStack()
		}
	}
	// Final sweep: every byte of both files must match the model.
	for _, f := range files {
		buf := make([]byte, fileSize)
		if err := cc.ReadRange(nil, f, 0, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, model[f]) {
			t.Fatalf("final read of %s differs from model", f)
		}
	}
	fstats := tier.Stats()
	cstats := cc.Stats()
	closeStack()
	if cstats.Spills == 0 || fstats.Puts == 0 {
		t.Fatalf("workload never spilled: fusecache=%+v filecache=%+v", cstats, fstats)
	}
	if fstats.Hits == 0 {
		t.Fatalf("workload never hit the file tier: %+v", fstats)
	}
	t.Logf("mixed-tier run: spills=%d fileHits=%d fileMisses=%d invalidations=%d wireGets=%d",
		cstats.Spills, fstats.Hits, fstats.Misses, fstats.Invalidations, wire.wireGets)
}

// raceTier builds a tier over a one-chunk file on a fresh memClient.
func raceTier(t *testing.T, dir string) (*Tier, *memClient, []proto.ChunkRef) {
	t.Helper()
	wire := newMemClient(512)
	fi, err := wire.Create(nil, "f", 512)
	if err != nil {
		t.Fatal(err)
	}
	return reopenTier(t, dir, wire), wire, fi.Chunks
}

// reopenTier stacks a fresh tier (empty generation map, as after a
// process restart) over an existing wire and cache directory.
func reopenTier(t *testing.T, dir string, wire *memClient) *Tier {
	t.Helper()
	tier, err := NewTier(wire, Config{Dir: dir, FlushInterval: -1, Obs: obs.New("race")})
	if err != nil {
		t.Fatal(err)
	}
	return tier
}

// TestSpillRacingWriteInvalidated pins the spill/write race with the
// exact interleaving the generation re-check exists for: the spill
// samples the generation, a full PutChunk (bump + invalidate + wire)
// completes, and only then does the spill's Put land — with the
// pre-overwrite payload. The steps mirror SpillChunk's begin/put/end
// structure. The stale entry must be rejected in-process AND be absent
// from the snapshot a restarted tier (which trusts unknown generations)
// would serve from.
func TestSpillRacingWriteInvalidated(t *testing.T) {
	dir := t.TempDir()
	tier, wire, refs := raceTier(t, dir)
	key := uint64(refs[0].ID)
	old, fresh := chunkPattern(1, 512), chunkPattern(2, 512)

	gen := tier.beginSpill(key)
	if err := tier.PutChunk(nil, refs, fresh); err != nil {
		t.Fatal(err)
	}
	tier.fc.Put(key, gen, old)
	if !tier.endSpill(key, gen) {
		t.Fatal("endSpill did not flag the racing write")
	}
	tier.fc.Invalidate(key)

	got, err := tier.GetChunk(nil, refs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatal("stale spilled payload served in-process")
	}
	// Warm restart: fresh tier, empty gens map — unknown generations are
	// trusted, so the stale payload must not have survived into the file.
	if err := tier.fc.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}
	tier2 := reopenTier(t, dir, wire)
	defer tier2.Close()
	got, err = tier2.GetChunk(nil, refs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatal("stale spilled payload served after restart")
	}
}

// TestSpillRacingWriteCommittedSetsMarker extends the race with a commit
// landing between the stale Put and its invalidation (the background
// flusher can do exactly that): the entry reaches the shard file, so the
// invalidation must set the dirty marker, and a crash before the next
// commit must rebuild rather than serve the stale payload.
func TestSpillRacingWriteCommittedSetsMarker(t *testing.T) {
	dir := t.TempDir()
	tier, _, refs := raceTier(t, dir)
	key := uint64(refs[0].ID)
	old, fresh := chunkPattern(1, 512), chunkPattern(2, 512)

	gen := tier.beginSpill(key)
	if err := tier.PutChunk(nil, refs, fresh); err != nil {
		t.Fatal(err)
	}
	tier.fc.Put(key, gen, old)
	if err := tier.fc.Commit(); err != nil { // flusher commits the stale entry
		t.Fatal(err)
	}
	if !tier.endSpill(key, gen) {
		t.Fatal("endSpill did not flag the racing write")
	}
	tier.fc.Invalidate(key)
	if _, err := os.Stat(filepath.Join(dir, markerName)); err != nil {
		t.Fatalf("marker missing after invalidating the committed stale spill: %v", err)
	}
	// Crash (abandon the tier without Close): the reopen must rebuild.
	c2, err := Open(Config{Dir: dir, FlushInterval: -1, Obs: obs.New("race2")})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, _, ok := c2.Get(key); ok {
		t.Fatal("stale spilled payload survived the crash")
	}
	if st := c2.Stats(); st.Rebuilds != 1 {
		t.Fatalf("Rebuilds = %d, want 1", st.Rebuilds)
	}
}

// TestTierGenTrackingBounded pins that gens/spilling shrink back to empty
// once writes and spills quiesce — the map must be bounded by in-flight
// work, not grow with every key ever written through the tier.
func TestTierGenTrackingBounded(t *testing.T) {
	dir := t.TempDir()
	wire := newMemClient(512)
	tier, err := NewTier(wire, Config{Dir: dir, FlushInterval: -1, Obs: obs.New("bound")})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	fi, err := wire.Create(nil, "f", 64*512)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fi.Chunks {
		refs := fi.Chunks[i : i+1]
		data := chunkPattern(uint64(i), 512)
		if err := tier.PutChunk(nil, refs, data); err != nil {
			t.Fatal(err)
		}
		tier.SpillChunk(nil, refs, data)
	}
	tier.mu.Lock()
	nGens, nSpilling := len(tier.gens), len(tier.spilling)
	tier.mu.Unlock()
	if nGens != 0 || nSpilling != 0 {
		t.Fatalf("quiesced tier still tracks %d gens, %d spilling", nGens, nSpilling)
	}
	// The spilled payloads must still serve from the file tier.
	for i := range fi.Chunks {
		got, err := tier.GetChunk(nil, fi.Chunks[i:i+1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, chunkPattern(uint64(i), 512)) {
			t.Fatalf("chunk %d served wrong bytes", i)
		}
	}
	if tier.Stats().Hits == 0 {
		t.Fatal("readbacks never hit the file tier")
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
