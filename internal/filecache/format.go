// Package filecache implements the persistent second-tier chunk cache of
// the client data path: clean chunks evicted from the in-RAM FUSE cache
// spill to node-local "NVC1" shard files, and later misses check those
// files before going back to a benefactor over the wire. The cache makes
// restarts warm and lets the client-side working set exceed RAM, while
// staying a *throwaway* cache — any doubt about a shard's integrity is
// resolved by silently rebuilding it from empty, never by failing an open
// (DESIGN.md §14).
//
// The on-disk format is modeled on the fmcache "FMC1" layout: a fixed
// 64-byte header, a fixed-size per-entry index section so lookups and
// staleness filtering never touch payload bytes, payloads mmap'd for
// reads, and snapshot-rewrite commits (a commit rewrites the whole shard
// to a temp file and renames it into place — no WAL, no in-place update).
// Offsets and lengths are uint32, so a shard file MUST stay under 4 GiB;
// the cache shards by chunk-ID range to keep each file small.
package filecache

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	// Magic opens every NVC1 shard file.
	Magic = "NVC1"
	// FormatVersion is the on-disk revision this implementation reads and
	// writes. Any other version is rebuilt from empty.
	FormatVersion = 1
	// HeaderSize is the fixed shard-header length.
	HeaderSize = 64
	// IndexEntrySize is the fixed length of one index record. Lookups and
	// generation checks read only this section, never payload bytes.
	IndexEntrySize = 32
	// MaxShardBytes bounds one shard file: payload offsets and lengths are
	// uint32, so a conforming file MUST be smaller than 4 GiB.
	MaxShardBytes = int64(1)<<32 - 1
)

// castagnoli is the CRC-32C polynomial used for the header, index, and
// per-entry payload checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crc32Of is the payload checksum: CRC-32C over the exact payload bytes.
func crc32Of(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// header is the decoded 64-byte shard header.
//
//	 0:4   magic "NVC1"
//	 4:8   format version (uint32)
//	 8:12  index entry count (uint32)
//	12:16  payload section length in bytes (uint32)
//	16:24  commit sequence number (uint64)
//	24:28  CRC-32C of the index section (uint32)
//	28:60  reserved, MUST be zero when written
//	60:64  CRC-32C of header bytes [0:60] (uint32)
type header struct {
	count      uint32
	payloadLen uint32
	commitSeq  uint64
	indexCRC   uint32
}

// indexEntry is one decoded 32-byte index record.
//
//	 0:8   chunk key (uint64, the store-wide chunk ID)
//	 8:16  generation (uint64, the spiller's write generation of the key)
//	16:20  payload offset within the payload section (uint32)
//	20:24  payload length (uint32)
//	24:28  CRC-32C of the payload bytes (uint32)
//	28:32  reserved, MUST be zero when written
type indexEntry struct {
	key    uint64
	gen    uint64
	off    uint32
	length uint32
	crc    uint32
}

// indexOff/payloadOff locate the sections: the index starts right after
// the header, the payload right after the index.
func payloadOff(count uint32) int64 {
	return HeaderSize + int64(count)*IndexEntrySize
}

func encodeHeader(dst []byte, h header) {
	_ = dst[:HeaderSize]
	copy(dst[0:4], Magic)
	binary.LittleEndian.PutUint32(dst[4:8], FormatVersion)
	binary.LittleEndian.PutUint32(dst[8:12], h.count)
	binary.LittleEndian.PutUint32(dst[12:16], h.payloadLen)
	binary.LittleEndian.PutUint64(dst[16:24], h.commitSeq)
	binary.LittleEndian.PutUint32(dst[24:28], h.indexCRC)
	for i := 28; i < 60; i++ {
		dst[i] = 0
	}
	binary.LittleEndian.PutUint32(dst[60:64], crc32.Checksum(dst[:60], castagnoli))
}

func encodeIndexEntry(dst []byte, e indexEntry) {
	_ = dst[:IndexEntrySize]
	binary.LittleEndian.PutUint64(dst[0:8], e.key)
	binary.LittleEndian.PutUint64(dst[8:16], e.gen)
	binary.LittleEndian.PutUint32(dst[16:20], e.off)
	binary.LittleEndian.PutUint32(dst[20:24], e.length)
	binary.LittleEndian.PutUint32(dst[24:28], e.crc)
	for i := 28; i < IndexEntrySize; i++ {
		dst[i] = 0
	}
}

func decodeIndexEntry(src []byte) indexEntry {
	return indexEntry{
		key:    binary.LittleEndian.Uint64(src[0:8]),
		gen:    binary.LittleEndian.Uint64(src[8:16]),
		off:    binary.LittleEndian.Uint32(src[16:20]),
		length: binary.LittleEndian.Uint32(src[20:24]),
		crc:    binary.LittleEndian.Uint32(src[24:28]),
	}
}

// decodeSnapshot validates a whole shard image and returns its entries
// and a view of the payload section. Every returned entry is in-bounds
// (off+length within the payload view); payload CRCs are deliberately
// NOT verified here — they are checked lazily at read time so opening a
// large shard stays O(index), not O(payload).
//
// Any structural defect — short file, bad magic or version, header or
// index CRC mismatch, section overflow, out-of-bounds or duplicate
// entries, trailing garbage — returns an error; the caller responds by
// rebuilding the shard from empty (throwaway-cache semantics), never by
// serving doubtful data.
func decodeSnapshot(data []byte) (header, []indexEntry, []byte, error) {
	if len(data) < HeaderSize {
		return header{}, nil, nil, fmt.Errorf("filecache: short shard: %d bytes", len(data))
	}
	if string(data[0:4]) != Magic {
		return header{}, nil, nil, fmt.Errorf("filecache: bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != FormatVersion {
		return header{}, nil, nil, fmt.Errorf("filecache: unsupported format version %d", v)
	}
	if got, want := crc32.Checksum(data[:60], castagnoli), binary.LittleEndian.Uint32(data[60:64]); got != want {
		return header{}, nil, nil, fmt.Errorf("filecache: header CRC mismatch (%08x != %08x)", got, want)
	}
	h := header{
		count:      binary.LittleEndian.Uint32(data[8:12]),
		payloadLen: binary.LittleEndian.Uint32(data[12:16]),
		commitSeq:  binary.LittleEndian.Uint64(data[16:24]),
		indexCRC:   binary.LittleEndian.Uint32(data[24:28]),
	}
	pOff := payloadOff(h.count)
	total := pOff + int64(h.payloadLen)
	if total > MaxShardBytes || int64(len(data)) != total {
		return header{}, nil, nil, fmt.Errorf("filecache: size mismatch: %d bytes, header implies %d", len(data), total)
	}
	index := data[HeaderSize:pOff]
	if got := crc32.Checksum(index, castagnoli); got != h.indexCRC {
		return header{}, nil, nil, fmt.Errorf("filecache: index CRC mismatch (%08x != %08x)", got, h.indexCRC)
	}
	payload := data[pOff:]
	entries := make([]indexEntry, h.count)
	seen := make(map[uint64]struct{}, h.count)
	for i := range entries {
		e := decodeIndexEntry(index[i*IndexEntrySize:])
		if int64(e.off)+int64(e.length) > int64(h.payloadLen) {
			return header{}, nil, nil, fmt.Errorf("filecache: entry %d [%d,+%d) overflows payload (%d bytes)", i, e.off, e.length, h.payloadLen)
		}
		if _, dup := seen[e.key]; dup {
			return header{}, nil, nil, fmt.Errorf("filecache: duplicate key %d", e.key)
		}
		seen[e.key] = struct{}{}
		entries[i] = e
	}
	return h, entries, payload, nil
}

// snapshotEntry is one entry of a snapshot about to be encoded.
type snapshotEntry struct {
	key  uint64
	gen  uint64
	data []byte
}

// encodeSnapshot builds a complete shard image: header, index, payload.
// Entries appear in the given order (the cache writes oldest-first so a
// reopened shard preserves eviction age); the format itself guarantees no
// ordering.
func encodeSnapshot(entries []snapshotEntry, commitSeq uint64) []byte {
	var payloadLen int64
	for _, e := range entries {
		payloadLen += int64(len(e.data))
	}
	count := uint32(len(entries))
	buf := make([]byte, payloadOff(count)+payloadLen)
	off := uint32(0)
	pos := payloadOff(count)
	for i, e := range entries {
		copy(buf[pos:], e.data)
		encodeIndexEntry(buf[HeaderSize+int64(i)*IndexEntrySize:], indexEntry{
			key:    e.key,
			gen:    e.gen,
			off:    off,
			length: uint32(len(e.data)),
			crc:    crc32.Checksum(e.data, castagnoli),
		})
		off += uint32(len(e.data))
		pos += int64(len(e.data))
	}
	encodeHeader(buf, header{
		count:      count,
		payloadLen: uint32(payloadLen),
		commitSeq:  commitSeq,
		indexCRC:   crc32.Checksum(buf[HeaderSize:payloadOff(count)], castagnoli),
	})
	return buf
}
