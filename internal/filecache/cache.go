package filecache

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nvmalloc/internal/obs"
)

// Config parameterizes Open.
type Config struct {
	// Dir is the cache directory; created if missing. One cache instance
	// owns a directory — two live caches over the same directory corrupt
	// each other (they will mutually rebuild; data is never wrong, just
	// gone).
	Dir string
	// MaxBytes caps live payload bytes across all shards (default 1 GiB).
	// Each shard gets an equal slice; oldest entries are evicted first.
	MaxBytes int64
	// Shards is the number of shard files (default 8). Chunk IDs map to
	// shards by contiguous ID range so one allocation burst lands in one
	// file; the per-shard capacity keeps every file well under the 4 GiB
	// format limit.
	Shards int
	// ShardRange is the width of one contiguous chunk-ID bucket (default
	// 1024): shard(key) = (key / ShardRange) mod Shards.
	ShardRange uint64
	// FlushInterval is the background snapshot-commit cadence (default
	// 500ms). Negative disables the flusher: commits happen only via
	// Commit and Close (tests use this for determinism).
	FlushInterval time.Duration
	// Obs receives counters and events; nil-safe.
	Obs *obs.Obs
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits            int64
	Misses          int64
	HitBytes        int64
	Puts            int64
	PutBytes        int64
	Invalidations   int64
	Evictions       int64
	Commits         int64
	CommitErrors    int64
	Rebuilds        int64
	CorruptPayloads int64
	LiveBytes       int64
	LiveEntries     int64
}

// counters are the registry-backed metrics (names under "filecache.").
type counters struct {
	hits, misses, hitBytes        *obs.Counter
	puts, putBytes, invalidations *obs.Counter
	evictions, commits, commitErr *obs.Counter
	rebuilds, corrupt             *obs.Counter
}

func newCounters(o *obs.Obs) counters {
	var r *obs.Registry
	if o != nil {
		r = o.Reg
	}
	return counters{
		hits:          r.Counter("filecache.hits"),
		misses:        r.Counter("filecache.misses"),
		hitBytes:      r.Counter("filecache.hit_bytes"),
		puts:          r.Counter("filecache.puts"),
		putBytes:      r.Counter("filecache.put_bytes"),
		invalidations: r.Counter("filecache.invalidations"),
		evictions:     r.Counter("filecache.evictions"),
		commits:       r.Counter("filecache.commits"),
		commitErr:     r.Counter("filecache.commit_errors"),
		rebuilds:      r.Counter("filecache.rebuilds"),
		corrupt:       r.Counter("filecache.corrupt_payloads"),
	}
}

// markerName flags uncommitted invalidations: it is created (and synced)
// before any invalidation of a key the last committed snapshot may still
// hold, and removed only after a commit that no invalidation raced. If a
// crash loses invalidations, the marker survives it, and the next Open
// rebuilds from empty rather than risk serving stale chunks.
const markerName = "dirty"

// maxShardPayload caps one shard's payload capacity. The NVC1 format's
// uint32 offsets bound a whole file (header + index + payload) to
// MaxShardBytes; capping payload at 3 GiB leaves 1 GiB of index headroom
// (2^25 entries) so no realistic configuration can encode an oversized
// snapshot — without it, MaxBytes/Shards quotients past 4 GiB would
// silently truncate offsets and produce shard images that fail CRC.
// commit() additionally evicts down if a pathological tiny-entry count
// would still push the image past the format limit.
const maxShardPayload = int64(3) << 30

// sentry is one live cache entry. Pending (uncommitted) entries carry
// their payload in data; committed entries point into the shard's mmap.
type sentry struct {
	gen  uint64
	size int
	data []byte // non-nil ⇒ pending, not yet in the shard file
	off  uint32 // committed payload offset (valid when data == nil)
	crc  uint32 // committed payload CRC-32C (valid when data == nil)
	el   *list.Element
}

// shard is one NVC1 file plus its in-memory index. All fields behind mu.
type shard struct {
	c        *Cache
	path     string
	capacity int64

	mu        sync.Mutex
	f         *os.File
	mapped    []byte
	unmap     func()
	payload   []byte // view into mapped
	commitSeq uint64
	entries   map[uint64]*sentry
	age       *list.List // front = newest; values are uint64 keys
	bytes     int64      // payload bytes of live entries
	dirty     bool       // state diverged from the last snapshot
	// onDisk is the key set of the last committed snapshot — exactly what
	// a crash-and-reopen would resurrect. It is what Invalidate consults
	// for the dirty marker: a key can be on disk yet absent from entries
	// (evicted since the commit) or shadowed by a pending Put, and both
	// still need the marker.
	onDisk map[uint64]struct{}
}

// Cache is the sharded NVC1 chunk cache. All methods are safe for
// concurrent use; Get/Put/Invalidate contend only per shard.
type Cache struct {
	cfg Config
	shd []*shard
	s   counters
	o   *obs.Obs

	markerMu sync.Mutex
	markerOn bool
	invalSeq atomic.Uint64

	closed    atomic.Bool
	stopOnce  sync.Once
	stop      chan struct{}
	flusherWG sync.WaitGroup
}

// Open opens (or creates) the cache under cfg.Dir. A directory carrying a
// dirty marker, and any shard file that fails validation, is rebuilt from
// empty — Open never fails on corrupt content, only on environmental
// errors (unusable directory).
func Open(cfg Config) (*Cache, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("filecache: Config.Dir is required")
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 1 << 30
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.ShardRange == 0 {
		cfg.ShardRange = 1024
	}
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = 500 * time.Millisecond
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("filecache: %w", err)
	}
	c := &Cache{
		cfg:  cfg,
		s:    newCounters(cfg.Obs),
		o:    cfg.Obs,
		stop: make(chan struct{}),
	}

	// A surviving dirty marker means invalidations were lost in a crash:
	// any shard content could be stale, so the whole directory is torn
	// down. Stale commit temp files are litter from an interrupted rename.
	names, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("filecache: %w", err)
	}
	dirtyMarker := false
	for _, de := range names {
		if de.Name() == markerName {
			dirtyMarker = true
		}
		if strings.HasSuffix(de.Name(), ".tmp") {
			_ = os.Remove(filepath.Join(cfg.Dir, de.Name()))
		}
	}
	if dirtyMarker {
		for _, de := range names {
			if strings.HasSuffix(de.Name(), ".nvc") {
				_ = os.Remove(filepath.Join(cfg.Dir, de.Name()))
			}
		}
		_ = os.Remove(filepath.Join(cfg.Dir, markerName))
		c.s.rebuilds.Inc()
		c.o.Event("filecache", "rebuild", "", "reason=dirty-marker dir="+cfg.Dir)
	}

	perShard := cfg.MaxBytes / int64(cfg.Shards)
	if perShard < 1 {
		perShard = 1
	}
	if perShard > maxShardPayload {
		perShard = maxShardPayload
	}
	c.shd = make([]*shard, cfg.Shards)
	for i := range c.shd {
		sh := &shard{
			c:        c,
			path:     filepath.Join(cfg.Dir, fmt.Sprintf("shard-%03d.nvc", i)),
			capacity: perShard,
			entries:  make(map[uint64]*sentry),
			age:      list.New(),
			onDisk:   make(map[uint64]struct{}),
		}
		if err := sh.load(); err != nil {
			return nil, err
		}
		c.shd[i] = sh
	}

	if cfg.FlushInterval > 0 {
		c.flusherWG.Add(1)
		go c.flusher(cfg.FlushInterval)
	}
	return c, nil
}

func (c *Cache) shardFor(key uint64) *shard {
	return c.shd[(key/c.cfg.ShardRange)%uint64(len(c.shd))]
}

// load opens the shard's file if present, validating the NVC1 image; any
// defect resets the shard to empty (counted + logged, never an error).
// Environmental failures (permission, I/O) do return errors.
func (sh *shard) load() error {
	f, err := os.Open(sh.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("filecache: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("filecache: %w", err)
	}
	if st.Size() > MaxShardBytes {
		f.Close()
		sh.rebuild(fmt.Errorf("filecache: shard exceeds 4 GiB (%d bytes)", st.Size()))
		return nil
	}
	mapped, unmap, err := mapShard(f, st.Size())
	if err != nil {
		f.Close()
		sh.rebuild(err)
		return nil
	}
	h, idx, payload, err := decodeSnapshot(mapped)
	if err != nil {
		unmap()
		f.Close()
		sh.rebuild(err)
		return nil
	}
	sh.f, sh.mapped, sh.unmap, sh.payload = f, mapped, unmap, payload
	sh.commitSeq = h.commitSeq
	for _, e := range idx {
		se := &sentry{gen: e.gen, size: int(e.length), off: e.off, crc: e.crc}
		se.el = sh.age.PushFront(e.key) // file order is oldest-first
		sh.entries[e.key] = se
		sh.onDisk[e.key] = struct{}{} // trims below leave the file untouched
		sh.bytes += int64(e.length)
	}
	// An oversized snapshot (capacity shrank between runs) trims oldest.
	for sh.bytes > sh.capacity && sh.age.Len() > 1 {
		sh.evictOldest()
	}
	return nil
}

// rebuild drops the shard file and resets in-memory state to empty.
func (sh *shard) rebuild(cause error) {
	if sh.unmap != nil {
		sh.unmap()
	}
	if sh.f != nil {
		sh.f.Close()
	}
	sh.f, sh.mapped, sh.unmap, sh.payload = nil, nil, nil, nil
	sh.entries = make(map[uint64]*sentry)
	sh.onDisk = make(map[uint64]struct{})
	sh.age.Init()
	sh.bytes = 0
	sh.dirty = false
	_ = os.Remove(sh.path)
	sh.c.s.rebuilds.Inc()
	sh.c.o.Event("filecache", "rebuild", "", fmt.Sprintf("shard=%s cause=%v", filepath.Base(sh.path), cause))
}

// Get returns a private copy of the cached payload for key and the
// generation it was stored under. Committed entries are CRC-verified
// against the mmap before being served; a mismatch silently drops the
// entry and reports a miss.
func (c *Cache) Get(key uint64) (data []byte, gen uint64, ok bool) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	se, ok := sh.entries[key]
	if !ok {
		c.s.misses.Inc()
		return nil, 0, false
	}
	buf := make([]byte, se.size)
	if se.data != nil {
		copy(buf, se.data)
	} else {
		view := sh.payload[se.off : int(se.off)+se.size]
		if crc32Of(view) != se.crc {
			sh.dropLocked(key, se)
			sh.dirty = true
			c.s.corrupt.Inc()
			c.s.misses.Inc()
			c.o.Event("filecache", "corrupt-payload", "", fmt.Sprintf("key=%d shard=%s", key, filepath.Base(sh.path)))
			return nil, 0, false
		}
		copy(buf, view)
	}
	sh.age.MoveToFront(se.el)
	c.s.hits.Inc()
	c.s.hitBytes.Add(int64(se.size))
	return buf, se.gen, true
}

// Put stores a private copy of data under key at generation gen,
// replacing any prior entry. Oldest entries are evicted to stay within
// the shard's capacity. Payloads beyond the shard capacity are dropped.
func (c *Cache) Put(key uint64, gen uint64, data []byte) {
	if c.closed.Load() {
		return
	}
	sh := c.shardFor(key)
	if int64(len(data)) > sh.capacity {
		return
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if old, ok := sh.entries[key]; ok {
		sh.bytes -= int64(old.size)
		sh.age.Remove(old.el)
		delete(sh.entries, key)
	}
	se := &sentry{gen: gen, size: len(data), data: append([]byte(nil), data...)}
	se.el = sh.age.PushFront(key)
	sh.entries[key] = se
	sh.bytes += int64(len(data))
	sh.dirty = true
	for sh.bytes > sh.capacity {
		sh.evictOldest()
	}
	c.s.puts.Inc()
	c.s.putBytes.Add(int64(len(data)))
}

// Invalidate removes key. The dirty marker is made durable BEFORE the
// in-memory removal, so a crash that loses the removal (the shard file
// still holds the stale entry) forces a rebuild at the next Open instead
// of a stale read. Callers invalidate before overwriting a chunk on the
// wire, never after.
//
// Whether the marker is needed depends on the last committed snapshot
// (sh.onDisk), not on the in-memory entry: the key may sit in the shard
// file while absent from memory (evicted since the commit) or while the
// live entry is a pending Put that replaced the committed version — in
// both cases a crash resurrects the stale on-disk copy.
//
// The shard lock is held across marker creation and the removal: a
// commit pass can therefore never snapshot the stale entry after the
// invalidation sequence was sampled, which is what lets Commit clear the
// marker safely when no invalidation raced it.
func (c *Cache) Invalidate(key uint64) {
	if c.closed.Load() {
		return
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	se, ok := sh.entries[key]
	_, onDisk := sh.onDisk[key]
	if !ok && !onDisk {
		// Neither in memory nor in the last snapshot: nothing to lose.
		return
	}
	if onDisk {
		c.markDirty()
		// Force the next commit to rewrite the file without the key even
		// when the in-memory state alone would not look dirty.
		sh.dirty = true
	}
	if ok {
		sh.dropLocked(key, se)
		sh.dirty = true
	}
	c.s.invalidations.Inc()
}

func (sh *shard) dropLocked(key uint64, se *sentry) {
	sh.bytes -= int64(se.size)
	sh.age.Remove(se.el)
	delete(sh.entries, key)
}

func (sh *shard) evictOldest() {
	el := sh.age.Back()
	if el == nil {
		return
	}
	key := el.Value.(uint64)
	sh.dropLocked(key, sh.entries[key])
	sh.dirty = true
	sh.c.s.evictions.Inc()
}

// markDirty creates the dirty-marker file (fsynced) if absent and bumps
// the invalidation sequence. Both happen under markerMu so they are
// atomic with respect to Commit's marker clear: a markDirty that
// happens-before the clear is guaranteed to be seen by the clear's
// sequence re-check, and a markDirty after it re-creates the marker.
func (c *Cache) markDirty() {
	c.markerMu.Lock()
	defer c.markerMu.Unlock()
	c.invalSeq.Add(1)
	if c.markerOn {
		return
	}
	f, err := os.OpenFile(filepath.Join(c.cfg.Dir, markerName), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		// Leave markerOn false so the next invalidation retries the
		// creation; crash protection is degraded until one succeeds.
		c.o.Event("filecache", "marker-error", "", err.Error())
		return
	}
	_ = f.Sync()
	f.Close()
	c.markerOn = true
}

// Commit snapshots every dirty shard to disk (temp file + fsync + rename)
// and clears the dirty marker if no invalidation raced the pass (the
// sequence re-check and the removal sit inside markerMu — the same lock
// markDirty bumps the sequence under — so an invalidation can never slip
// between the check and the removal). Returns the first commit error;
// failed shards stay pending in memory and retry on the next pass.
//
// A pass that actually rewrites at least one shard records a
// filecache.commit root span, so snapshot stalls show up in the slow-op
// flight recorder; the flusher's no-op passes record nothing.
func (c *Cache) Commit() error {
	seqBefore := c.invalSeq.Load()
	var first error
	committed := 0
	start := time.Now()
	for _, sh := range c.shd {
		did, err := sh.commit()
		if did {
			committed++
		}
		if err != nil && first == nil {
			first = err
		}
	}
	if first == nil {
		c.markerMu.Lock()
		if c.markerOn && c.invalSeq.Load() == seqBefore {
			_ = os.Remove(filepath.Join(c.cfg.Dir, markerName))
			c.markerOn = false
		}
		c.markerMu.Unlock()
	}
	if committed > 0 || first != nil {
		sp := c.o.StartSpanAt("", "", "filecache.commit", start.UnixNano())
		sp.SetVar(fmt.Sprintf("shards=%d", committed))
		sp.SetErr(first)
		sp.End()
	}
	return first
}

// commit rewrites the shard file from the live entries, reporting whether
// it actually rewrote anything (a clean shard is a no-op). The shard lock
// is held for the duration (snapshot-rewrite is the FMC1 model's
// simplicity trade: no WAL, no partial updates; Get/Put on this shard
// stall during the rewrite).
func (sh *shard) commit() (bool, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.dirty {
		return false, nil
	}
	// The uint32 offsets bound a shard image to MaxShardBytes; Open clamps
	// the payload capacity, so only a pathological tiny-entry count can
	// get here. Evict down rather than encode a truncated image.
	for HeaderSize+int64(len(sh.entries))*IndexEntrySize+sh.bytes > MaxShardBytes && sh.age.Len() > 0 {
		sh.evictOldest()
	}
	entries := make([]snapshotEntry, 0, sh.age.Len())
	for el := sh.age.Back(); el != nil; el = el.Prev() { // oldest first
		key := el.Value.(uint64)
		se := sh.entries[key]
		payload := se.data
		if payload == nil {
			payload = sh.payload[se.off : int(se.off)+se.size]
		}
		entries = append(entries, snapshotEntry{key: key, gen: se.gen, data: payload})
	}
	img := encodeSnapshot(entries, sh.commitSeq+1)

	tmp, err := os.CreateTemp(filepath.Dir(sh.path), filepath.Base(sh.path)+".*.tmp")
	if err != nil {
		return false, sh.commitFailed(err)
	}
	_, werr := tmp.Write(img)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), sh.path)
	}
	if werr != nil {
		_ = os.Remove(tmp.Name())
		return false, sh.commitFailed(werr)
	}

	// Swap the mmap to the new image and flip every entry to committed.
	f, err := os.Open(sh.path)
	if err != nil {
		return false, sh.commitFailed(err)
	}
	mapped, unmap, err := mapShard(f, int64(len(img)))
	if err != nil {
		f.Close()
		return false, sh.commitFailed(err)
	}
	if sh.unmap != nil {
		sh.unmap()
	}
	if sh.f != nil {
		sh.f.Close()
	}
	sh.f, sh.mapped, sh.unmap = f, mapped, unmap
	sh.payload = mapped[payloadOff(uint32(len(entries))):]
	sh.commitSeq++
	sh.onDisk = make(map[uint64]struct{}, len(entries))
	off := uint32(0)
	for _, e := range entries {
		se := sh.entries[e.key]
		se.data = nil
		se.off = off
		se.crc = crc32Of(sh.payload[off : off+uint32(se.size)])
		off += uint32(se.size)
		sh.onDisk[e.key] = struct{}{}
	}
	sh.dirty = false
	sh.c.s.commits.Inc()
	return true, nil
}

func (sh *shard) commitFailed(err error) error {
	sh.c.s.commitErr.Inc()
	sh.c.o.Event("filecache", "commit-error", "", fmt.Sprintf("shard=%s err=%v", filepath.Base(sh.path), err))
	return fmt.Errorf("filecache: commit %s: %w", filepath.Base(sh.path), err)
}

func (c *Cache) flusher(interval time.Duration) {
	defer c.flusherWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			_ = c.Commit()
		}
	}
}

// Close stops the flusher, commits a final snapshot, and unmaps the
// shards. The cache must not be used afterwards (Get misses, Put/
// Invalidate no-op).
func (c *Cache) Close() error {
	var err error
	c.stopOnce.Do(func() {
		close(c.stop)
		c.flusherWG.Wait()
		err = c.Commit()
		c.closed.Store(true)
		for _, sh := range c.shd {
			sh.mu.Lock()
			if sh.unmap != nil {
				sh.unmap()
			}
			if sh.f != nil {
				sh.f.Close()
			}
			sh.f, sh.mapped, sh.unmap, sh.payload = nil, nil, nil, nil
			sh.entries = make(map[uint64]*sentry)
			sh.onDisk = make(map[uint64]struct{})
			sh.age.Init()
			sh.bytes = 0
			sh.mu.Unlock()
		}
	})
	return err
}

// Stats snapshots the counters plus live occupancy.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:            c.s.hits.Load(),
		Misses:          c.s.misses.Load(),
		HitBytes:        c.s.hitBytes.Load(),
		Puts:            c.s.puts.Load(),
		PutBytes:        c.s.putBytes.Load(),
		Invalidations:   c.s.invalidations.Load(),
		Evictions:       c.s.evictions.Load(),
		Commits:         c.s.commits.Load(),
		CommitErrors:    c.s.commitErr.Load(),
		Rebuilds:        c.s.rebuilds.Load(),
		CorruptPayloads: c.s.corrupt.Load(),
	}
	for _, sh := range c.shd {
		sh.mu.Lock()
		st.LiveBytes += sh.bytes
		st.LiveEntries += int64(len(sh.entries))
		sh.mu.Unlock()
	}
	return st
}
