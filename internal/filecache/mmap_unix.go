//go:build unix

package filecache

import (
	"os"
	"syscall"
)

// mapShard maps size bytes of f read-only. The returned view stays valid
// until unmap is called; the cache serves Get copies straight out of it,
// so payload reads never go through the page cache twice.
func mapShard(f *os.File, size int64) (data []byte, unmap func(), err error) {
	if size == 0 {
		return nil, func() {}, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return b, func() { _ = syscall.Munmap(b) }, nil
}
