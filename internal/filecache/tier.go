package filecache

import (
	"sync"
	"time"

	"nvmalloc/internal/obs"
	"nvmalloc/internal/proto"
	"nvmalloc/internal/store"
)

// Tier layers the persistent file cache beneath another store.Client:
// GetChunk serves file-tier hits without touching the wire, writes
// invalidate before delegating, and SpillChunk (the store.ChunkSpiller
// hook the RAM cache above calls on clean evictions) feeds the tier.
//
// Chunk identity is refs[0].ID: the manager never reuses chunk IDs, and
// every replica of a chunk shares the ID, so one key survives failover
// re-ordering of the ref list. Staleness is generation-based and local:
// each write through this tier bumps the key's generation and invalidates
// the cached entry before the wire write, so an entry can only ever be
// re-admitted by a spill of newer data. Entries from a previous process
// run carry generations this process never saw; they are trusted (that is
// the warm restart) because the dirty-marker protocol guarantees a
// generation gap can only exist for chunks whose invalidations all
// reached a snapshot.
type Tier struct {
	inner  store.Client
	lender store.BufferLender // inner's lender view, nil if not private
	fc     *Cache
	o      *obs.Obs

	mu sync.Mutex
	// gens maps chunk key -> local write generation. An entry exists only
	// while it is needed to tell a stale payload from the current one:
	// writes create it (bump + invalidate) and both the write and the
	// spill paths prune it once no spill is in flight for the key, so the
	// map is bounded by in-flight work, not by every key ever written.
	gens map[uint64]uint64
	// spilling counts in-flight SpillChunk calls per key. It is what makes
	// the generation read in beginSpill atomic with the spill's admission:
	// a concurrent writer may not prune gens while a spill is in flight,
	// and the spill re-checks the generation after its Put (endSpill) so a
	// racing write always either drops the spilled entry itself or makes
	// the spill invalidate it.
	spilling map[uint64]int
}

var (
	_ store.Client       = (*Tier)(nil)
	_ store.ChunkSpiller = (*Tier)(nil)
	_ store.BufferLender = (*Tier)(nil)
)

// NewTier opens the file cache under cfg and stacks it beneath inner.
func NewTier(inner store.Client, cfg Config) (*Tier, error) {
	fc, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	t := &Tier{
		inner:    inner,
		fc:       fc,
		o:        cfg.Obs,
		gens:     make(map[uint64]uint64),
		spilling: make(map[uint64]int),
	}
	if bl, ok := inner.(store.BufferLender); ok && bl.PrivateChunks() {
		t.lender = bl
	}
	return t, nil
}

// Close commits and closes the file cache. The inner client is NOT
// closed — the tier does not own it.
func (t *Tier) Close() error { return t.fc.Close() }

// Cache exposes the underlying file cache (stats, manual commits).
func (t *Tier) Cache() *Cache { return t.fc }

// Stats snapshots the file-tier counters.
func (t *Tier) Stats() Stats { return t.fc.Stats() }

func (t *Tier) Node() int        { return t.inner.Node() }
func (t *Tier) ChunkSize() int64 { return t.inner.ChunkSize() }

func (t *Tier) Create(ctx store.Ctx, name string, size int64) (proto.FileInfo, error) {
	return t.inner.Create(ctx, name, size)
}
func (t *Tier) Lookup(ctx store.Ctx, name string) (proto.FileInfo, error) {
	return t.inner.Lookup(ctx, name)
}
func (t *Tier) Delete(ctx store.Ctx, name string) error { return t.inner.Delete(ctx, name) }
func (t *Tier) Link(ctx store.Ctx, dst string, parts []string) (proto.FileInfo, error) {
	return t.inner.Link(ctx, dst, parts)
}
func (t *Tier) Derive(ctx store.Ctx, name, src string, fromChunk, nChunks int, size int64) (proto.FileInfo, error) {
	return t.inner.Derive(ctx, name, src, fromChunk, nChunks, size)
}
func (t *Tier) Remap(ctx store.Ctx, name string, chunkIdx int) ([]proto.ChunkRef, error) {
	// COW remap mints a fresh chunk ID; the old chunk's bytes are still
	// valid under the old key (other files keep referencing it), so no
	// invalidation is needed.
	return t.inner.Remap(ctx, name, chunkIdx)
}
func (t *Tier) SetTTL(ctx store.Ctx, name string, ttl time.Duration) error {
	return t.inner.SetTTL(ctx, name, ttl)
}
func (t *Tier) Status(ctx store.Ctx) ([]proto.BenefactorInfo, error) {
	return t.inner.Status(ctx)
}

// GetChunk serves the chunk from the file tier when a fresh entry exists,
// else falls through to the wire. File-tier buffers are freshly allocated
// at chunk geometry, so the arena above pools them like lender buffers.
//
// On a traced request the whole lookup runs under one filecache.get span
// (parented beneath the RAM tier's span above): a hit records a
// filecache.hit child; a miss re-parents the wire fetch under the get
// span, so the waterfall shows how long the probe plus fallthrough took.
func (t *Tier) GetChunk(ctx store.Ctx, refs []proto.ChunkRef) ([]byte, error) {
	key := uint64(refs[0].ID)
	sc := store.SpanOf(ctx)
	var sp *obs.ActiveSpan
	if sc.Traced() {
		sp = t.o.StartSpan(sc.Trace, sc.Parent, "filecache.get")
		sp.SetVar(sc.Var)
		ctx = store.WithSpan(ctx, store.SpanInfo{Trace: sc.Trace, Parent: sp.ID(), Var: sc.Var})
	}
	if data, gen, ok := t.fc.Get(key); ok && t.genFresh(key, gen) {
		if sp != nil {
			hit := t.o.StartSpan(sp.Trace(), sp.ID(), "filecache.hit")
			hit.SetVar(sc.Var)
			hit.AddBytes(int64(len(data)))
			hit.End()
			sp.AddBytes(int64(len(data)))
			sp.End()
		}
		return data, nil
	}
	data, err := t.inner.GetChunk(ctx, refs)
	if sp != nil {
		sp.AddBytes(int64(len(data)))
		sp.SetErr(err)
		sp.End()
	}
	return data, err
}

// genFresh reports whether a cached generation may be served: unknown
// keys are trusted (pre-restart spills), known keys must match the
// current local write generation exactly.
func (t *Tier) genFresh(key, gen uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	g, known := t.gens[key]
	return !known || g == gen
}

// bumpGen advances the key's local write generation and returns it.
func (t *Tier) bumpGen(key uint64) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gens[key]++
	return t.gens[key]
}

// pruneGen drops the key's generation tracking once no spill is in
// flight: the write that called it already invalidated the cached entry,
// so with no spill that could re-admit an older payload there is nothing
// left for the generation to distinguish, and trust-unknown-keys is
// correct again.
func (t *Tier) pruneGen(key uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spilling[key] == 0 {
		delete(t.gens, key)
	}
}

// beginSpill registers an in-flight spill and snapshots the key's write
// generation, atomically, so a concurrent writer can neither prune the
// generation nor have its bump go unnoticed by endSpill's re-check.
func (t *Tier) beginSpill(key uint64) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spilling[key]++
	return t.gens[key]
}

// endSpill deregisters the spill and reports whether a write raced it
// (the generation moved since beginSpill) — if so the caller must
// invalidate the entry it just admitted, because the payload may predate
// the write. A quiet last spill also prunes the gens entry: the cached
// payload is at the current generation, so the map entry distinguishes
// nothing.
func (t *Tier) endSpill(key, gen uint64) (stale bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	stale = t.gens[key] != gen
	if t.spilling[key]--; t.spilling[key] <= 0 {
		delete(t.spilling, key)
		if !stale {
			delete(t.gens, key)
		}
	}
	return stale
}

// PutChunk invalidates the file-tier entry — durably flagging the
// staleness window via the dirty marker — BEFORE the wire write, so a
// crash between the two can never leave a stale entry servable.
func (t *Tier) PutChunk(ctx store.Ctx, refs []proto.ChunkRef, data []byte) error {
	key := uint64(refs[0].ID)
	t.bumpGen(key)
	t.fc.Invalidate(key)
	err := t.inner.PutChunk(ctx, refs, data)
	t.pruneGen(key)
	return err
}

// PutPages is a partial overwrite; the cached full-chunk payload becomes
// stale the same way.
func (t *Tier) PutPages(ctx store.Ctx, refs []proto.ChunkRef, pageOffs []int64, pages [][]byte) error {
	key := uint64(refs[0].ID)
	t.bumpGen(key)
	t.fc.Invalidate(key)
	err := t.inner.PutPages(ctx, refs, pageOffs, pages)
	t.pruneGen(key)
	return err
}

// SpillChunk (store.ChunkSpiller) admits a clean evicted payload. The
// data is copied synchronously; the caller keeps buffer ownership. A
// write racing the spill is caught by endSpill's generation re-check and
// the admitted entry invalidated — without it the stale payload would be
// rejected in-process (genFresh) but could reach a committed snapshot,
// where a restart, which trusts unknown generations, would serve it.
func (t *Tier) SpillChunk(ctx store.Ctx, refs []proto.ChunkRef, data []byte) {
	key := uint64(refs[0].ID)
	gen := t.beginSpill(key)
	t.fc.Put(key, gen, data)
	if t.endSpill(key, gen) {
		t.fc.Invalidate(key)
	}
	if sc := store.SpanOf(ctx); sc.Traced() {
		sp := t.o.StartSpan(sc.Trace, sc.Parent, "filecache.spill")
		sp.SetVar(sc.Var)
		sp.AddBytes(int64(len(data)))
		sp.End()
	}
}

// PrivateChunks reports whether every GetChunk result is caller-owned.
// File-tier hits always are (fresh allocations); wire misses are only
// when the inner client lends private buffers. The conjunction decides.
func (t *Tier) PrivateChunks() bool { return t.lender != nil }

// ReleaseChunk forwards to the inner lender's pool; file-tier buffers
// have identical chunk geometry, so they pool the same way.
func (t *Tier) ReleaseChunk(buf []byte) {
	if t.lender != nil {
		t.lender.ReleaseChunk(buf)
	}
}
