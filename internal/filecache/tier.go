package filecache

import (
	"sync"
	"time"

	"nvmalloc/internal/obs"
	"nvmalloc/internal/proto"
	"nvmalloc/internal/store"
)

// Tier layers the persistent file cache beneath another store.Client:
// GetChunk serves file-tier hits without touching the wire, writes
// invalidate before delegating, and SpillChunk (the store.ChunkSpiller
// hook the RAM cache above calls on clean evictions) feeds the tier.
//
// Chunk identity is refs[0].ID: the manager never reuses chunk IDs, and
// every replica of a chunk shares the ID, so one key survives failover
// re-ordering of the ref list. Staleness is generation-based and local:
// each write through this tier bumps the key's generation and invalidates
// the cached entry before the wire write, so an entry can only ever be
// re-admitted by a spill of newer data. Entries from a previous process
// run carry generations this process never saw; they are trusted (that is
// the warm restart) because the dirty-marker protocol guarantees a
// generation gap can only exist for chunks whose invalidations all
// reached a snapshot.
type Tier struct {
	inner  store.Client
	lender store.BufferLender // inner's lender view, nil if not private
	fc     *Cache
	o      *obs.Obs

	mu   sync.Mutex
	gens map[uint64]uint64 // chunk key -> local write generation
}

var (
	_ store.Client       = (*Tier)(nil)
	_ store.ChunkSpiller = (*Tier)(nil)
	_ store.BufferLender = (*Tier)(nil)
)

// NewTier opens the file cache under cfg and stacks it beneath inner.
func NewTier(inner store.Client, cfg Config) (*Tier, error) {
	fc, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	t := &Tier{inner: inner, fc: fc, o: cfg.Obs, gens: make(map[uint64]uint64)}
	if bl, ok := inner.(store.BufferLender); ok && bl.PrivateChunks() {
		t.lender = bl
	}
	return t, nil
}

// Close commits and closes the file cache. The inner client is NOT
// closed — the tier does not own it.
func (t *Tier) Close() error { return t.fc.Close() }

// Cache exposes the underlying file cache (stats, manual commits).
func (t *Tier) Cache() *Cache { return t.fc }

// Stats snapshots the file-tier counters.
func (t *Tier) Stats() Stats { return t.fc.Stats() }

func (t *Tier) Node() int        { return t.inner.Node() }
func (t *Tier) ChunkSize() int64 { return t.inner.ChunkSize() }

func (t *Tier) Create(ctx store.Ctx, name string, size int64) (proto.FileInfo, error) {
	return t.inner.Create(ctx, name, size)
}
func (t *Tier) Lookup(ctx store.Ctx, name string) (proto.FileInfo, error) {
	return t.inner.Lookup(ctx, name)
}
func (t *Tier) Delete(ctx store.Ctx, name string) error { return t.inner.Delete(ctx, name) }
func (t *Tier) Link(ctx store.Ctx, dst string, parts []string) (proto.FileInfo, error) {
	return t.inner.Link(ctx, dst, parts)
}
func (t *Tier) Derive(ctx store.Ctx, name, src string, fromChunk, nChunks int, size int64) (proto.FileInfo, error) {
	return t.inner.Derive(ctx, name, src, fromChunk, nChunks, size)
}
func (t *Tier) Remap(ctx store.Ctx, name string, chunkIdx int) ([]proto.ChunkRef, error) {
	// COW remap mints a fresh chunk ID; the old chunk's bytes are still
	// valid under the old key (other files keep referencing it), so no
	// invalidation is needed.
	return t.inner.Remap(ctx, name, chunkIdx)
}
func (t *Tier) SetTTL(ctx store.Ctx, name string, ttl time.Duration) error {
	return t.inner.SetTTL(ctx, name, ttl)
}
func (t *Tier) Status(ctx store.Ctx) ([]proto.BenefactorInfo, error) {
	return t.inner.Status(ctx)
}

// GetChunk serves the chunk from the file tier when a fresh entry exists,
// else falls through to the wire. File-tier buffers are freshly allocated
// at chunk geometry, so the arena above pools them like lender buffers.
func (t *Tier) GetChunk(ctx store.Ctx, refs []proto.ChunkRef) ([]byte, error) {
	key := uint64(refs[0].ID)
	if data, gen, ok := t.fc.Get(key); ok && t.genFresh(key, gen) {
		if sc := store.SpanOf(ctx); sc.Traced() {
			sp := t.o.StartSpan(sc.Trace, sc.Parent, "filecache.hit")
			sp.SetVar(sc.Var)
			sp.AddBytes(int64(len(data)))
			sp.End()
		}
		return data, nil
	}
	return t.inner.GetChunk(ctx, refs)
}

// genFresh reports whether a cached generation may be served: unknown
// keys are trusted (pre-restart spills), known keys must match the
// current local write generation exactly.
func (t *Tier) genFresh(key, gen uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	g, known := t.gens[key]
	return !known || g == gen
}

// bumpGen advances the key's local write generation and returns it.
func (t *Tier) bumpGen(key uint64) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gens[key]++
	return t.gens[key]
}

// PutChunk invalidates the file-tier entry — durably flagging the
// staleness window via the dirty marker — BEFORE the wire write, so a
// crash between the two can never leave a stale entry servable.
func (t *Tier) PutChunk(ctx store.Ctx, refs []proto.ChunkRef, data []byte) error {
	key := uint64(refs[0].ID)
	t.bumpGen(key)
	t.fc.Invalidate(key)
	return t.inner.PutChunk(ctx, refs, data)
}

// PutPages is a partial overwrite; the cached full-chunk payload becomes
// stale the same way.
func (t *Tier) PutPages(ctx store.Ctx, refs []proto.ChunkRef, pageOffs []int64, pages [][]byte) error {
	key := uint64(refs[0].ID)
	t.bumpGen(key)
	t.fc.Invalidate(key)
	return t.inner.PutPages(ctx, refs, pageOffs, pages)
}

// SpillChunk (store.ChunkSpiller) admits a clean evicted payload. The
// data is copied synchronously; the caller keeps buffer ownership.
func (t *Tier) SpillChunk(ctx store.Ctx, refs []proto.ChunkRef, data []byte) {
	key := uint64(refs[0].ID)
	t.mu.Lock()
	gen := t.gens[key]
	t.mu.Unlock()
	t.fc.Put(key, gen, data)
	if sc := store.SpanOf(ctx); sc.Traced() {
		sp := t.o.StartSpan(sc.Trace, sc.Parent, "filecache.spill")
		sp.SetVar(sc.Var)
		sp.AddBytes(int64(len(data)))
		sp.End()
	}
}

// PrivateChunks reports whether every GetChunk result is caller-owned.
// File-tier hits always are (fresh allocations); wire misses are only
// when the inner client lends private buffers. The conjunction decides.
func (t *Tier) PrivateChunks() bool { return t.lender != nil }

// ReleaseChunk forwards to the inner lender's pool; file-tier buffers
// have identical chunk geometry, so they pool the same way.
func (t *Tier) ReleaseChunk(buf []byte) {
	if t.lender != nil {
		t.lender.ReleaseChunk(buf)
	}
}
