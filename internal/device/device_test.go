package device

import (
	"testing"
	"testing/quick"
	"time"

	"nvmalloc/internal/simtime"
	"nvmalloc/internal/sysprof"
)

func TestReadTimeMatchesProfile(t *testing.T) {
	e := simtime.NewEngine()
	d := New(e, "ssd", sysprof.IntelX25E, 1)
	var took simtime.Time
	e.Go("r", func(p *simtime.Proc) {
		d.Read(p, 256*sysprof.KiB)
		took = p.Now()
	})
	e.Run()
	// 75us latency + 256KiB at 250 MB/s ≈ 75us + 1048us.
	want := 75*time.Microsecond + time.Duration(float64(256*sysprof.KiB)/250e6*float64(time.Second))
	if simtime.Time(want) != took {
		t.Fatalf("read took %v, want %v", took, want)
	}
	if s := d.Stats(); s.Reads != 1 || s.BytesRead != 256*sysprof.KiB {
		t.Fatalf("stats %+v", s)
	}
}

func TestWritesSerialize(t *testing.T) {
	e := simtime.NewEngine()
	d := New(e, "ssd", sysprof.IntelX25E, 1)
	for i := 0; i < 4; i++ {
		e.Go("w", func(p *simtime.Proc) { d.Write(p, 1*sysprof.MiB) })
	}
	e.Run()
	mib := float64(sysprof.MiB)
	one := 85*time.Microsecond + time.Duration(mib/170e6*float64(time.Second))
	if e.Now() != simtime.Time(4*one) {
		t.Fatalf("makespan %v, want %v", e.Now(), 4*one)
	}
}

func TestQueueDepthParallelism(t *testing.T) {
	e := simtime.NewEngine()
	d := New(e, "dram", sysprof.DDR3, 4)
	for i := 0; i < 4; i++ {
		e.Go("r", func(p *simtime.Proc) { d.Read(p, 64*sysprof.MiB) })
	}
	e.Run()
	one := 12*time.Nanosecond + time.Duration(float64(64*sysprof.MiB)/12.8e9*float64(time.Second))
	if e.Now() != simtime.Time(one) {
		t.Fatalf("makespan %v, want %v (fully parallel)", e.Now(), one)
	}
}

func TestVecChargesOneLatency(t *testing.T) {
	e := simtime.NewEngine()
	d := New(e, "ssd", sysprof.IntelX25E, 1)
	var vecT, seqT simtime.Duration
	e.Go("vec", func(p *simtime.Proc) {
		start := p.Now()
		d.WriteVec(p, []int64{4096, 4096, 4096, 4096})
		vecT = p.Now().Sub(start)
	})
	e.Run()
	e2 := simtime.NewEngine()
	d2 := New(e2, "ssd", sysprof.IntelX25E, 1)
	e2.Go("seq", func(p *simtime.Proc) {
		start := p.Now()
		for i := 0; i < 4; i++ {
			d2.Write(p, 4096)
		}
		seqT = p.Now().Sub(start)
	})
	e2.Run()
	if vecT >= seqT {
		t.Fatalf("vectored write %v should beat %v (one latency vs four)", vecT, seqT)
	}
	if d.Stats().BytesWritten != d2.Stats().BytesWritten {
		t.Fatal("byte accounting must match")
	}
}

func TestWearFraction(t *testing.T) {
	e := simtime.NewEngine()
	d := New(e, "ssd", sysprof.IntelX25E, 1)
	e.Go("w", func(p *simtime.Proc) { d.Write(p, sysprof.IntelX25E.Capacity()) })
	e.Run()
	// One full-device write = 1/eraseCycles of the budget.
	want := 1.0 / float64(sysprof.IntelX25E.EraseCycles)
	if got := d.WearFraction(); got < want*0.99 || got > want*1.01 {
		t.Fatalf("wear %v, want ~%v", got, want)
	}
	if New(e, "dram", sysprof.DDR3, 1).WearFraction() != 0 {
		t.Fatal("DRAM is not wear-limited")
	}
}

// Property: total device time for k sequential reads equals the sum of the
// per-read service times, and byte counters are exact.
func TestAccountingProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) > 32 {
			sizes = sizes[:32]
		}
		e := simtime.NewEngine()
		d := New(e, "ssd", sysprof.IntelX25E, 1)
		var want time.Duration
		var wantBytes int64
		e.Go("r", func(p *simtime.Proc) {
			for _, s := range sizes {
				n := int64(s)
				d.Read(p, n)
				want += d.readTime(n)
				wantBytes += n
			}
		})
		e.Run()
		return e.Now() == simtime.Time(want) && d.Stats().BytesRead == wantBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
