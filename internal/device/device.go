// Package device models storage and memory devices as FIFO queueing
// servers in virtual time. A Device charges each operation its setup
// latency plus size/bandwidth service time, serializing concurrent
// requests the way a single SATA SSD or DRAM channel would, and keeps the
// read/write/wear statistics the paper's evaluation reports (write volume
// matters: SSD lifetime is a first-class design goal of NVMalloc).
package device

import (
	"fmt"
	"time"

	"nvmalloc/internal/simtime"
	"nvmalloc/internal/sysprof"
)

// Stats aggregates traffic counters for a device.
type Stats struct {
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
}

// Device is a simulated storage/memory device.
type Device struct {
	Prof sysprof.DeviceProfile
	res  *simtime.Resource
	s    Stats
	// queueDepth is the number of concurrent operations the device can
	// service (1 for SATA SSDs and disks; DRAM uses a higher value to model
	// multiple channels).
	queueDepth int
}

// New creates a device backed by profile prof. queueDepth <= 0 defaults
// to 1.
func New(e *simtime.Engine, name string, prof sysprof.DeviceProfile, queueDepth int) *Device {
	if queueDepth <= 0 {
		queueDepth = 1
	}
	return &Device{
		Prof:       prof,
		res:        simtime.NewResource(e, name, queueDepth),
		queueDepth: queueDepth,
	}
}

// readTime returns the service time for an n-byte read.
func (d *Device) readTime(n int64) time.Duration {
	return d.Prof.ReadLatency + time.Duration(float64(n)/d.Prof.ReadBW*float64(time.Second))
}

// writeTime returns the service time for an n-byte write.
func (d *Device) writeTime(n int64) time.Duration {
	return d.Prof.WriteLatency + time.Duration(float64(n)/d.Prof.WriteBW*float64(time.Second))
}

// Read charges p the virtual time of an n-byte read.
func (d *Device) Read(p *simtime.Proc, n int64) {
	if n < 0 {
		panic("device: negative read size")
	}
	d.res.Use(p, d.readTime(n))
	d.s.Reads++
	d.s.BytesRead += n
}

// Write charges p the virtual time of an n-byte write.
func (d *Device) Write(p *simtime.Proc, n int64) {
	if n < 0 {
		panic("device: negative write size")
	}
	d.res.Use(p, d.writeTime(n))
	d.s.Writes++
	d.s.BytesWritten += n
}

// ReadVec charges p one queued operation covering several extents (e.g. the
// dirty pages of one chunk shipped as a single request): one latency, summed
// transfer time.
func (d *Device) ReadVec(p *simtime.Proc, sizes []int64) {
	var total int64
	for _, n := range sizes {
		total += n
	}
	d.res.Use(p, d.readTime(total))
	d.s.Reads++
	d.s.BytesRead += total
}

// WriteVec is the write-side analog of ReadVec.
func (d *Device) WriteVec(p *simtime.Proc, sizes []int64) {
	var total int64
	for _, n := range sizes {
		total += n
	}
	d.res.Use(p, d.writeTime(total))
	d.s.Writes++
	d.s.BytesWritten += total
}

// Stats returns a snapshot of the device's counters.
func (d *Device) Stats() Stats { return d.s }

// ResetStats zeroes the counters (used between experiment phases).
func (d *Device) ResetStats() { d.s = Stats{} }

// BusyTime returns cumulative service time.
func (d *Device) BusyTime() time.Duration { return d.res.BusyTime() }

// Utilization returns the fraction of elapsed virtual time the device was
// busy.
func (d *Device) Utilization() float64 { return d.res.Utilization() }

// WearFraction estimates the fraction of the device's rated erase budget
// consumed so far: writeVolume / (capacity × eraseCycles). Zero for devices
// without a cycle rating.
func (d *Device) WearFraction() float64 {
	if d.Prof.EraseCycles == 0 {
		return 0
	}
	budget := float64(d.Prof.Capacity()) * float64(d.Prof.EraseCycles)
	return float64(d.s.BytesWritten) / budget
}

func (d *Device) String() string {
	return fmt.Sprintf("%s: %d reads (%d B), %d writes (%d B), wear %.2e",
		d.Prof.Name, d.s.Reads, d.s.BytesRead, d.s.Writes, d.s.BytesWritten, d.WearFraction())
}
