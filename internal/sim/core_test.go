package sim

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"nvmalloc/internal/cluster"
	"nvmalloc/internal/core"
	"nvmalloc/internal/manager"
	"nvmalloc/internal/simtime"
	"nvmalloc/internal/sysprof"
)

func newMachine(t *testing.T, cfg cluster.Config) *Machine {
	t.Helper()
	e := simtime.NewEngine()
	m, err := NewMachine(e, sysprof.Bench(), cfg, manager.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func localCfg() cluster.Config {
	return cluster.Config{Mode: cluster.LocalSSD, ProcsPerNode: 8, ComputeNodes: 16, Benefactors: 16}
}

func run(t *testing.T, m *Machine, fn func(p *simtime.Proc)) {
	t.Helper()
	m.Eng.Go("test", fn)
	m.Eng.Run()
}

func TestMallocWriteReadFree(t *testing.T) {
	m := newMachine(t, localCfg())
	c := m.NewClient(0)
	run(t, m, func(p *simtime.Proc) {
		r, err := c.Malloc(p, 3*m.Prof.ChunkSize+100)
		if err != nil {
			t.Error(err)
			return
		}
		v := core.Float64s(r)
		for i := int64(0); i < 32; i++ {
			if err := v.Store(p, i, float64(i)*1.5); err != nil {
				t.Error(err)
				return
			}
		}
		for i := int64(0); i < 32; i++ {
			x, err := v.Load(p, i)
			if err != nil || x != float64(i)*1.5 {
				t.Errorf("elem %d = %v err %v", i, x, err)
				return
			}
		}
		if err := r.Free(p); err != nil {
			t.Error(err)
		}
		if err := r.Free(p); err == nil {
			t.Error("double free not caught")
		}
	})
	if m.Eng.Now() == 0 {
		t.Fatal("NVM accesses must consume virtual time")
	}
}

func TestVectorViews(t *testing.T) {
	m := newMachine(t, localCfg())
	c := m.NewClient(0)
	run(t, m, func(p *simtime.Proc) {
		r, _ := c.Malloc(p, 8*1024)
		v := core.Float64s(r)
		src := make([]float64, 100)
		for i := range src {
			src[i] = float64(i) * 0.25
		}
		if err := v.StoreVec(p, 17, src); err != nil {
			t.Error(err)
			return
		}
		dst := make([]float64, 100)
		if err := v.LoadVec(p, 17, dst); err != nil {
			t.Error(err)
			return
		}
		for i := range src {
			if dst[i] != src[i] {
				t.Errorf("vec elem %d = %v, want %v", i, dst[i], src[i])
				return
			}
		}
		iv := core.Int64s(r)
		if err := iv.StoreVec(p, 500, []int64{-1, 2, -3}); err != nil {
			t.Error(err)
			return
		}
		got := make([]int64, 3)
		iv.LoadVec(p, 500, got)
		if got[0] != -1 || got[2] != -3 {
			t.Errorf("int64 vec = %v", got)
		}
	})
}

func TestSharedMappingOneGlobalFile(t *testing.T) {
	m := newMachine(t, localCfg())
	run(t, m, func(p *simtime.Proc) {
		// Ranks 0 and 1 share node 0; rank 8 is on node 1.
		r0, err := m.NewClient(0).Malloc(p, 4*m.Prof.ChunkSize, core.WithName("B"), core.Shared())
		if err != nil {
			t.Error(err)
			return
		}
		r1, err := m.NewClient(1).Malloc(p, 4*m.Prof.ChunkSize, core.WithName("B"), core.Shared())
		if err != nil {
			t.Error(err)
			return
		}
		r8, err := m.NewClient(8).Malloc(p, 4*m.Prof.ChunkSize, core.WithName("B"), core.Shared())
		if err != nil {
			t.Error(err)
			return
		}
		if r0.Name() != r1.Name() || r0.Name() != r8.Name() {
			t.Errorf("shared mappings differ: %q / %q / %q", r0.Name(), r1.Name(), r8.Name())
		}
		// Writes by rank 0 are visible to a same-node rank immediately
		// (shared node cache)...
		want := []byte("shared-data")
		r0.WriteAt(p, 128, want)
		got := make([]byte, len(want))
		r1.ReadAt(p, 128, got)
		if !bytes.Equal(got, want) {
			t.Error("shared mapping not coherent within a node")
		}
		// ...and to other nodes after a Sync.
		if err := r0.Sync(p); err != nil {
			t.Error(err)
			return
		}
		got8 := make([]byte, len(want))
		r8.ReadAt(p, 128, got8)
		if !bytes.Equal(got8, want) {
			t.Error("shared mapping not visible across nodes after sync")
		}
	})
}

func TestIndividualMappingsBurnMoreStoreSpace(t *testing.T) {
	m := newMachine(t, localCfg())
	run(t, m, func(p *simtime.Proc) {
		size := 4 * m.Prof.ChunkSize
		for rank := 0; rank < 4; rank++ {
			if _, err := m.NewClient(rank).Malloc(p, size); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if got := m.Store.Mgr.TotalChunks(); got != 16 {
		t.Fatalf("individual mappings allocated %d chunks, want 16", got)
	}

	m2 := newMachine(t, localCfg())
	run(t, m2, func(p *simtime.Proc) {
		size := 4 * m2.Prof.ChunkSize
		for rank := 0; rank < 32; rank += 8 { // one rank on each of 4 nodes
			if _, err := m2.NewClient(rank).Malloc(p, size, core.WithName("B"), core.Shared()); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if got := m2.Store.Mgr.TotalChunks(); got != 4 {
		t.Fatalf("global shared mapping allocated %d chunks, want 4", got)
	}
}

func TestDRAMBufferAccountsMemory(t *testing.T) {
	m := newMachine(t, localCfg())
	node := m.Cluster.Nodes[0]
	avail := m.Prof.AvailableDRAM()
	b, err := core.NewDRAM(node, "a", avail-1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewDRAM(node, "b", 2048); err == nil {
		t.Fatal("DRAM overcommit must fail — it is what forces out-of-core")
	}
	run(t, m, func(p *simtime.Proc) {
		b.Free(p)
	})
	if node.DRAMUsed() != 0 {
		t.Fatal("free did not release DRAM")
	}
}

func TestCheckpointLinksWithoutCopy(t *testing.T) {
	m := newMachine(t, localCfg())
	c := m.NewClient(0)
	run(t, m, func(p *simtime.Proc) {
		r, _ := c.Malloc(p, 4*m.Prof.ChunkSize, core.WithName("var"))
		payload := bytes.Repeat([]byte{0xAA}, int(r.Size()))
		r.WriteAt(p, 0, payload)

		chunksBefore := m.Store.Mgr.TotalChunks()
		dram := bytes.Repeat([]byte{0x11}, int(2*m.Prof.ChunkSize))
		info, err := c.Checkpoint(p, "ckpt.t0", dram, r)
		if err != nil {
			t.Error(err)
			return
		}
		// Only the DRAM dump allocated chunks; the variable was linked.
		if got := m.Store.Mgr.TotalChunks() - chunksBefore; got != info.DRAMChunks {
			t.Errorf("checkpoint allocated %d chunks, want %d (DRAM only)", got, info.DRAMChunks)
		}
		if info.LinkedChunks != 4 {
			t.Errorf("linked %d chunks, want 4", info.LinkedChunks)
		}
		// Post-checkpoint writes must not disturb the checkpoint (COW).
		r.WriteAt(p, 0, bytes.Repeat([]byte{0xBB}, 256))
		r.Sync(p)
		got := make([]byte, 256)
		start := int64(info.Regions[0].ChunkStart) * m.Prof.ChunkSize
		c.ChunkCache().Drop(p, "ckpt.t0") // force a store read
		if err := c.ChunkCache().ReadRange(p, "ckpt.t0", start, got); err != nil {
			t.Error(err)
			return
		}
		for _, x := range got {
			if x != 0xAA {
				t.Error("checkpoint content changed by post-checkpoint write")
				return
			}
		}
		// The variable itself sees the new data.
		vg := make([]byte, 256)
		r.ReadAt(p, 0, vg)
		if vg[0] != 0xBB {
			t.Error("variable lost post-checkpoint write")
		}
	})
}

func TestIncrementalCheckpointSharesUnmodifiedChunks(t *testing.T) {
	m := newMachine(t, localCfg())
	c := m.NewClient(0)
	run(t, m, func(p *simtime.Proc) {
		r, _ := c.Malloc(p, 8*m.Prof.ChunkSize, core.WithName("var"))
		r.WriteAt(p, 0, bytes.Repeat([]byte{1}, int(r.Size())))
		if _, err := c.Checkpoint(p, "ck.t0", nil, r); err != nil {
			t.Error(err)
			return
		}
		after0 := m.Store.Mgr.TotalChunks()
		// Modify only chunk 3.
		r.WriteAt(p, 3*m.Prof.ChunkSize+10, []byte{9, 9, 9})
		if _, err := c.Checkpoint(p, "ck.t1", nil, r); err != nil {
			t.Error(err)
			return
		}
		// Exactly one new chunk: the COW copy of chunk 3. Checkpoint t1
		// shares the other 7 with t0 and the live variable.
		if got := m.Store.Mgr.TotalChunks() - after0; got != 1 {
			t.Errorf("incremental checkpoint allocated %d chunks, want 1", got)
		}
	})
}

func TestRestoreRegionFromCheckpoint(t *testing.T) {
	m := newMachine(t, localCfg())
	c := m.NewClient(0)
	run(t, m, func(p *simtime.Proc) {
		r, _ := c.Malloc(p, 2*m.Prof.ChunkSize, core.WithName("var"))
		want := bytes.Repeat([]byte{0x77}, int(r.Size()))
		r.WriteAt(p, 0, want)
		dram := []byte("process state blob")
		info, err := c.Checkpoint(p, "ck", dram, r)
		if err != nil {
			t.Error(err)
			return
		}
		// Simulate failure: the variable is gone.
		r.Free(p)

		// Restart: recover DRAM state and the variable.
		gotDRAM := make([]byte, len(dram))
		if err := c.ReadCheckpointDRAM(p, "ck", gotDRAM); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(gotDRAM, dram) {
			t.Error("DRAM state corrupted")
		}
		chunksBefore := m.Store.Mgr.TotalChunks()
		r2, err := c.RestoreRegion(p, "ck", info.Regions[0], "var.restored")
		if err != nil {
			t.Error(err)
			return
		}
		if m.Store.Mgr.TotalChunks() != chunksBefore {
			t.Error("restore must not copy chunks")
		}
		got := make([]byte, r2.Size())
		r2.ReadAt(p, 0, got)
		if !bytes.Equal(got, want) {
			t.Error("restored region content wrong")
		}
		// Writing the restored region must not corrupt the checkpoint.
		r2.WriteAt(p, 0, []byte{0x01})
		r2.Sync(p)
		ck := make([]byte, 1)
		c.ChunkCache().Drop(p, "ck")
		c.ChunkCache().ReadRange(p, "ck", int64(info.Regions[0].ChunkStart)*m.Prof.ChunkSize, ck)
		if ck[0] != 0x77 {
			t.Error("restored-region write leaked into checkpoint")
		}
	})
}

func TestAttachDetachPersistence(t *testing.T) {
	m := newMachine(t, localCfg())
	run(t, m, func(p *simtime.Proc) {
		producer := m.NewClient(0)
		r, err := producer.Malloc(p, m.Prof.ChunkSize, core.WithName("workflow.stage1"))
		if err != nil {
			t.Error(err)
			return
		}
		r.WriteAt(p, 0, []byte("in-situ analysis input"))
		if err := r.Detach(p); err != nil {
			t.Error(err)
			return
		}
		// A different rank (a later job in the workflow) attaches.
		consumer := m.NewClient(9)
		r2, err := consumer.Attach(p, "workflow.stage1")
		if err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, 22)
		r2.ReadAt(p, 0, got)
		if string(got) != "in-situ analysis input" {
			t.Errorf("attached data = %q", got)
		}
		r2.Free(p)
	})
}

func TestDrainToPFS(t *testing.T) {
	m := newMachine(t, localCfg())
	c := m.NewClient(0)
	run(t, m, func(p *simtime.Proc) {
		r, _ := c.Malloc(p, 2*m.Prof.ChunkSize, core.WithName("var"))
		r.WriteAt(p, 0, bytes.Repeat([]byte{5}, int(r.Size())))
		info, _ := c.Checkpoint(p, "ck", []byte("dram"), r)
		_ = info
		wg, err := m.DrainToPFS(c, "ck", "scratch/ck")
		if err != nil {
			t.Error(err)
			return
		}
		wg.Wait(p)
		size, err := m.PFS.Size("scratch/ck")
		if err != nil || size == 0 {
			t.Errorf("drained file size %d err %v", size, err)
		}
		buf := make([]byte, 4)
		m.PFS.ReadAt(p, "scratch/ck", 0, buf)
		if string(buf) != "dram" {
			t.Errorf("PFS copy corrupt: %q", buf)
		}
	})
}

func TestDRAMOnlyMachineRejectsMalloc(t *testing.T) {
	m := newMachine(t, cluster.Config{Mode: cluster.DRAMOnly, ProcsPerNode: 2, ComputeNodes: 16})
	c := m.NewClient(0)
	run(t, m, func(p *simtime.Proc) {
		if _, err := c.Malloc(p, 1024); err == nil {
			t.Error("Malloc must fail without an NVM store")
		}
	})
}

// Property: a Region and a DRAMBuffer given the same random operation
// sequence end up byte-identical (the Buffer abstraction is placement-
// transparent, the paper's central usability claim).
func TestRegionMatchesDRAMProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := NewMachine(simtime.NewEngine(), sysprof.Bench(), localCfg(), manager.RoundRobin)
		if err != nil {
			return false
		}
		ok := true
		m.Eng.Go("t", func(p *simtime.Proc) {
			c := m.NewClient(0)
			size := 3 * m.Prof.ChunkSize
			r, err := c.Malloc(p, size)
			if err != nil {
				ok = false
				return
			}
			d, err := core.NewDRAM(m.Cluster.Nodes[0], "ref", size)
			if err != nil {
				ok = false
				return
			}
			for op := 0; op < 60; op++ {
				off := rng.Int63n(size - 1)
				n := rng.Int63n(min64(1025, size-off)) + 1
				if rng.Intn(2) == 0 {
					data := make([]byte, n)
					rng.Read(data)
					if r.WriteAt(p, off, data) != nil || d.WriteAt(p, off, data) != nil {
						ok = false
						return
					}
				} else {
					g1 := make([]byte, n)
					g2 := make([]byte, n)
					if r.ReadAt(p, off, g1) != nil || d.ReadAt(p, off, g2) != nil {
						ok = false
						return
					}
					if !bytes.Equal(g1, g2) {
						ok = false
						return
					}
				}
			}
		})
		m.Eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
