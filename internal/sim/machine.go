// Package sim wires the full simulated NVMalloc system for one run
// configuration: the cluster, the aggregate NVM store with benefactors
// placed per the configuration (local or remote to the compute partition),
// the shared PFS, and the per-node FUSE caches. It is the sim-side
// counterpart of the facade's Connect: both hand out core.Clients built on
// the same transport-neutral fusecache, one over simstore, the other over
// the TCP rpc adapter.
package sim

import (
	"fmt"

	"nvmalloc/internal/cluster"
	"nvmalloc/internal/core"
	"nvmalloc/internal/fusecache"
	"nvmalloc/internal/manager"
	"nvmalloc/internal/pfs"
	"nvmalloc/internal/simstore"
	"nvmalloc/internal/simtime"
	"nvmalloc/internal/sysprof"
)

// Machine is the assembled simulated system.
type Machine struct {
	Eng     *simtime.Engine
	Prof    sysprof.Profile
	Cfg     cluster.Config
	Cluster *cluster.Cluster
	Store   *simstore.Store // nil in DRAM-only configurations
	PFS     *pfs.PFS

	ccs map[int]*fusecache.ChunkCache
}

// NewMachine builds a machine for cfg on a cluster described by prof.
func NewMachine(e *simtime.Engine, prof sysprof.Profile, cfg cluster.Config, policy manager.PlacementPolicy) (*Machine, error) {
	if err := cfg.Validate(prof.Nodes); err != nil {
		return nil, err
	}
	// The FUSE chunk cache and the per-process page caches live in the
	// node's system reserve (the paper mlock()s application memory and
	// leaves 1.25 GB "for the system, including the file system
	// cache/buffer").
	sysNeed := prof.FUSECacheSize + int64(cfg.ProcsPerNode)*prof.PageCacheSize
	if cfg.Mode != cluster.DRAMOnly && sysNeed > prof.SystemReserve {
		return nil, fmt.Errorf("core: FUSE cache %d + %d page caches of %d exceed the system reserve %d",
			prof.FUSECacheSize, cfg.ProcsPerNode, prof.PageCacheSize, prof.SystemReserve)
	}
	m := &Machine{
		Eng:     e,
		Prof:    prof,
		Cfg:     cfg,
		Cluster: cluster.New(e, prof),
		PFS:     pfs.New(e, prof.PFSAggregateBW, prof.PFSOpenLatency),
		ccs:     make(map[int]*fusecache.ChunkCache),
	}
	if cfg.Mode != cluster.DRAMOnly {
		benNodes := cfg.BenefactorNodeIDs()
		contribution := m.ssdContribution()
		m.Store = simstore.New(m.Cluster, benNodes[0], benNodes, contribution, policy)
		if prof.Replication > 1 {
			m.Store.Mgr.Replication = prof.Replication
		}
	}
	return m, nil
}

// ssdContribution returns how much SSD space each benefactor contributes:
// the device capacity scaled with the profile, floored at 16 chunks.
func (m *Machine) ssdContribution() int64 {
	c := int64(float64(m.Prof.SSD.Capacity()) * m.Prof.Scale)
	if min := 16 * m.Prof.ChunkSize; c < min {
		c = min
	}
	return c
}

// ChunkCache returns (lazily creating) the FUSE-layer cache of a node.
func (m *Machine) ChunkCache(node int) *fusecache.ChunkCache {
	if m.Store == nil {
		panic("sim: DRAM-only machine has no NVM store")
	}
	cc, ok := m.ccs[node]
	if !ok {
		cc = fusecache.NewChunkCache(simstore.Env(m.Eng), m.Store.Client(node), fusecache.Config{
			ChunkSize:       m.Prof.ChunkSize,
			PageSize:        m.Prof.PageSize,
			CacheBytes:      m.Prof.FUSECacheSize,
			ReadAheadChunks: m.Prof.ReadAheadChunks,
			WriteFullChunks: m.Prof.WriteFullChunks,
			FuseConcurrency: m.Prof.FuseConcurrency,
		})
		m.ccs[node] = cc
	}
	return cc
}

// Node returns the cluster node hosting a rank.
func (m *Machine) Node(rank int) *cluster.Node {
	return m.Cluster.Nodes[m.Cfg.RankNode(rank)]
}

// NewClient creates the NVMalloc client for one application rank.
func (m *Machine) NewClient(rank int) *core.Client {
	node := m.Node(rank)
	var cc *fusecache.ChunkCache
	if m.Store != nil {
		cc = m.ChunkCache(node.ID)
	}
	return core.NewClient(rank, node, cc, m.Prof.PageCacheSize)
}

// CacheStats sums the FUSE-layer counters across all nodes.
func (m *Machine) CacheStats() fusecache.Stats {
	var total fusecache.Stats
	for node := 0; node < m.Prof.Nodes; node++ {
		cc, ok := m.ccs[node]
		if !ok {
			continue
		}
		s := cc.Stats()
		total.FuseReadBytes += s.FuseReadBytes
		total.FuseWriteBytes += s.FuseWriteBytes
		total.SSDReadBytes += s.SSDReadBytes
		total.SSDWriteBytes += s.SSDWriteBytes
		total.PrefetchBytes += s.PrefetchBytes
		total.Hits += s.Hits
		total.Misses += s.Misses
		total.Waits += s.Waits
		total.Evictions += s.Evictions
		total.DirtyEvictions += s.DirtyEvictions
		total.Remaps += s.Remaps
		total.Flushes += s.Flushes
	}
	return total
}

// ResetCacheStats zeroes every node's FUSE-layer counters.
func (m *Machine) ResetCacheStats() {
	for _, cc := range m.ccs {
		cc.ResetStats()
	}
}

// DrainToPFS streams a checkpoint (or any store file) of client c to the
// parallel file system in the background — the paper's staging pattern
// where the fast NVM store absorbs the checkpoint and drains to disk
// asynchronously. The returned WaitGroup completes when the drain
// finishes.
func (m *Machine) DrainToPFS(c *core.Client, name, pfsName string) (*simtime.WaitGroup, error) {
	cc := c.ChunkCache()
	if cc == nil {
		return nil, fmt.Errorf("sim: this configuration has no NVM store (DRAM-only)")
	}
	st := cc.Store()
	wg := &simtime.WaitGroup{}
	wg.Add(1)
	pr := m.Eng.Go("drain "+name, func(p *simtime.Proc) {
		fi, err := st.Lookup(p, name)
		if err != nil {
			return
		}
		m.PFS.Create(p, pfsName)
		buf := make([]byte, m.Prof.ChunkSize)
		for i := range fi.Chunks {
			data, err := st.GetChunk(p, fi.Chunks[i:i+1])
			if err != nil {
				return
			}
			copy(buf, data)
			n := int64(len(buf))
			off := int64(i) * m.Prof.ChunkSize
			if off+n > fi.Size {
				n = fi.Size - off
			}
			if n <= 0 {
				break
			}
			if err := m.PFS.WriteAt(p, pfsName, off, buf[:n]); err != nil {
				return
			}
		}
	})
	pr.OnDone(func() { wg.Done(pr) })
	return wg, nil
}
