package sim

import (
	"errors"
	"testing"
	"time"

	"nvmalloc/internal/core"
	"nvmalloc/internal/proto"
	"nvmalloc/internal/simtime"
)

// TestVariableLifetimeExpiry: a detached persistent variable with a
// lifetime is reclaimed by the expiry sweep; one without persists.
func TestVariableLifetimeExpiry(t *testing.T) {
	m := newMachine(t, localCfg())
	c := m.NewClient(0)
	run(t, m, func(p *simtime.Proc) {
		short, err := c.Malloc(p, m.Prof.ChunkSize, core.WithName("ephemeral"))
		if err != nil {
			t.Error(err)
			return
		}
		short.WriteAt(p, 0, []byte{1})
		if err := short.SetLifetime(p, 10*time.Millisecond); err != nil {
			t.Error(err)
			return
		}
		short.Detach(p)

		forever, _ := c.Malloc(p, m.Prof.ChunkSize, core.WithName("durable"))
		forever.WriteAt(p, 0, []byte{2})
		forever.Detach(p)

		// Before the deadline both exist.
		if expired, _ := m.Store.ExpireSweep(p); len(expired) != 0 {
			t.Errorf("premature expiry: %v", expired)
		}
		p.Sleep(20 * time.Millisecond)
		expired, err := m.Store.ExpireSweep(p)
		if err != nil {
			t.Error(err)
			return
		}
		if len(expired) != 1 || expired[0] != "ephemeral" {
			t.Errorf("expired = %v, want [ephemeral]", expired)
		}
		if _, err := c.Attach(p, "ephemeral"); !errors.Is(err, proto.ErrNoSuchFile) {
			t.Errorf("attach to expired variable: %v", err)
		}
		if _, err := c.Attach(p, "durable"); err != nil {
			t.Errorf("durable variable lost: %v", err)
		}
	})
	// Space from the expired variable is back.
	total := int64(0)
	for _, id := range m.Store.Benefactors() {
		total += m.Store.Benefactor(id).Used()
	}
	if total != m.Prof.ChunkSize {
		t.Fatalf("store holds %d bytes, want exactly the durable variable's chunk", total)
	}
}

// TestLifetimeOnFreedRegionRejected guards the API.
func TestLifetimeOnFreedRegionRejected(t *testing.T) {
	m := newMachine(t, localCfg())
	c := m.NewClient(0)
	run(t, m, func(p *simtime.Proc) {
		r, _ := c.Malloc(p, m.Prof.ChunkSize)
		r.Free(p)
		if err := r.SetLifetime(p, time.Second); err == nil {
			t.Error("lifetime on freed region accepted")
		}
	})
}
