package sim

import (
	"errors"
	"testing"
	"time"

	"nvmalloc/internal/core"
	"nvmalloc/internal/proto"
	"nvmalloc/internal/simtime"
)

// TestBenefactorDeathSurfacesErrors injects a benefactor failure and
// checks that uncached reads fail cleanly with the sentinel error rather
// than hanging or corrupting data.
func TestBenefactorDeathSurfacesErrors(t *testing.T) {
	m := newMachine(t, localCfg())
	c := m.NewClient(0)
	run(t, m, func(p *simtime.Proc) {
		r, err := c.Malloc(p, 8*m.Prof.ChunkSize, core.WithName("v"))
		if err != nil {
			t.Error(err)
			return
		}
		data := make([]byte, r.Size())
		for i := range data {
			data[i] = byte(i)
		}
		r.WriteAt(p, 0, data)
		r.Sync(p)
		c.PageCache().Drop("v")     // drop the page cache...
		c.ChunkCache().Drop(p, "v") // ...and the chunk cache, forcing store reads

		// Kill the benefactor holding chunk 0.
		fi, _ := c.ChunkCache().Store().Lookup(p, "v")
		m.Store.Kill(fi.Chunks[0].Benefactor)

		buf := make([]byte, 16)
		err = r.ReadAt(p, 0, buf)
		if !errors.Is(err, proto.ErrBenefactorDead) {
			t.Errorf("read from dead benefactor: %v, want ErrBenefactorDead", err)
		}

		// Chunks on surviving benefactors remain readable.
		var okChunk int = -1
		for i, ref := range fi.Chunks {
			if ref.Benefactor != fi.Chunks[0].Benefactor {
				okChunk = i
				break
			}
		}
		if okChunk < 0 {
			t.Error("test needs striping across >1 benefactor")
			return
		}
		if err := r.ReadAt(p, int64(okChunk)*m.Prof.ChunkSize, buf); err != nil {
			t.Errorf("surviving chunk unreadable: %v", err)
		}

		// Revival restores access.
		m.Store.Revive(fi.Chunks[0].Benefactor)
		if err := r.ReadAt(p, 0, buf); err != nil {
			t.Errorf("read after revival: %v", err)
		}
		if buf[0] != 0 || buf[1] != 1 {
			t.Error("data corrupted across failure")
		}
	})
}

// TestManagerAvoidsDeadBenefactorForNewAllocations checks that after a
// failure, new variables land only on live benefactors.
func TestManagerAvoidsDeadBenefactorForNewAllocations(t *testing.T) {
	m := newMachine(t, localCfg())
	c := m.NewClient(0)
	run(t, m, func(p *simtime.Proc) {
		m.Store.Kill(3)
		r, err := c.Malloc(p, 32*m.Prof.ChunkSize)
		if err != nil {
			t.Error(err)
			return
		}
		fi, _ := c.ChunkCache().Store().Lookup(p, r.Name())
		for _, ref := range fi.Chunks {
			if ref.Benefactor == 3 {
				t.Error("chunk placed on dead benefactor")
				return
			}
		}
	})
}

// TestHeartbeatTimeoutDetection drives the manager's sweep directly with
// virtual timestamps.
func TestHeartbeatTimeoutDetection(t *testing.T) {
	m := newMachine(t, localCfg())
	mgr := m.Store.Mgr
	mgr.HeartbeatTimeout = 3 * time.Second
	for _, id := range m.Store.Benefactors() {
		mgr.Heartbeat(id, 0, time.Second)
	}
	// Benefactor 7 goes silent.
	for _, id := range m.Store.Benefactors() {
		if id != 7 {
			mgr.Heartbeat(id, 0, 6*time.Second)
		}
	}
	died := mgr.Sweep(7 * time.Second)
	if len(died) != 1 || died[0] != 7 {
		t.Fatalf("sweep found %v, want [7]", died)
	}
	if mgr.Alive(7) {
		t.Fatal("7 should be dead")
	}
}

// TestCheckpointSurvivesVariableLossAfterFailure: the restart story —
// after the variable's node dies, the checkpoint (on surviving
// benefactors) still restores.
func TestCheckpointChunksIndependentOfClientFailure(t *testing.T) {
	m := newMachine(t, localCfg())
	c := m.NewClient(0)
	run(t, m, func(p *simtime.Proc) {
		r, _ := c.Malloc(p, 2*m.Prof.ChunkSize, core.WithName("v"))
		r.WriteAt(p, 0, []byte{42})
		info, err := c.Checkpoint(p, "ck", []byte("s"), r)
		if err != nil {
			t.Error(err)
			return
		}
		// The "client" crashes: drop every cache, attach from another rank
		// on a different node.
		c.ChunkCache().Drop(p, "v")
		c.ChunkCache().Drop(p, "ck")
		other := m.NewClient(9)
		r2, err := other.RestoreRegion(p, "ck", info.Regions[0], "v2")
		if err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, 1)
		r2.ReadAt(p, 0, got)
		if got[0] != 42 {
			t.Error("restore after client failure lost data")
		}
	})
}
