// Package netsim models the cluster interconnect. Each node owns a
// full-duplex NIC (independent send and receive resources); a transfer of n
// bytes from node a to node b charges a's TX side, a one-way message
// latency, and b's RX side. Transfers between two ranks on the same node
// bypass the NIC and are charged at intra-node memory-copy bandwidth.
//
// This store-and-forward model reproduces the effects the paper's
// evaluation depends on: broadcast cost grows when many clients hammer one
// benefactor's link (Fig. 3's R-SSD(8:8:1) case), and remote-SSD STREAM
// falls further behind local-SSD (Fig. 2).
package netsim

import (
	"fmt"
	"time"

	"nvmalloc/internal/simtime"
	"nvmalloc/internal/sysprof"
)

// Stats counts traffic through the network.
type Stats struct {
	Messages int64
	Bytes    int64
	// LocalMessages/LocalBytes are intra-node transfers that bypassed the
	// NIC.
	LocalMessages int64
	LocalBytes    int64
}

// NIC is one node's network interface.
type NIC struct {
	node int
	tx   *simtime.Resource
	rx   *simtime.Resource
}

// Network is the cluster interconnect.
type Network struct {
	eng  *simtime.Engine
	prof sysprof.NetworkProfile
	nics []*NIC
	s    Stats
}

// New builds a network with one NIC per node. Each NIC exposes one
// resource token per bonded lane: concurrent flows share the aggregate
// bandwidth, but a single flow is capped at one lane's worth.
func New(e *simtime.Engine, prof sysprof.NetworkProfile, nodes int) *Network {
	if prof.Lanes < 1 {
		prof.Lanes = 1
	}
	n := &Network{eng: e, prof: prof}
	for i := 0; i < nodes; i++ {
		n.nics = append(n.nics, &NIC{
			node: i,
			tx:   simtime.NewResource(e, fmt.Sprintf("nic%d.tx", i), prof.Lanes),
			rx:   simtime.NewResource(e, fmt.Sprintf("nic%d.rx", i), prof.Lanes),
		})
	}
	return n
}

// Nodes returns the number of NICs.
func (n *Network) Nodes() int { return len(n.nics) }

// xferTime returns the serialization time of one flow (one lane).
func (n *Network) xferTime(size int64) time.Duration {
	return time.Duration(float64(size) / (n.prof.LinkBW / float64(n.prof.Lanes)) * float64(time.Second))
}

// Transfer moves size bytes from node src to node dst, charging p the full
// transport time. Intra-node transfers are charged as memory copies.
func (n *Network) Transfer(p *simtime.Proc, src, dst int, size int64) {
	if size < 0 {
		panic("netsim: negative transfer size")
	}
	if src == dst {
		n.s.LocalMessages++
		n.s.LocalBytes += size
		p.Sleep(time.Duration(float64(size) / n.prof.LocalCopyBW * float64(time.Second)))
		return
	}
	n.s.Messages++
	n.s.Bytes += size
	t := n.xferTime(size)
	// Cut-through: the sender's TX lane and the receiver's RX lane are
	// held simultaneously for the serialization time, so one flow's wall
	// time is latency + size/laneBW while both endpoints stay contended.
	// Acquisition is always tx-then-rx and no flow ever waits on a tx
	// while holding an rx, so the wait graph is acyclic — deadlock-free
	// under arbitrary communication patterns.
	tx, rx := n.nics[src].tx, n.nics[dst].rx
	tx.Acquire(p)
	rx.Acquire(p)
	p.Sleep(n.prof.MsgLatency + t)
	rx.Release(p)
	tx.Release(p)
}

// Request models an RPC round trip: a reqSize-byte request from src to dst,
// server-side work performed by serve (may be nil), and a respSize-byte
// response back. It charges p the complete round trip.
func (n *Network) Request(p *simtime.Proc, src, dst int, reqSize, respSize int64, serve func(*simtime.Proc)) {
	n.Transfer(p, src, dst, reqSize)
	if serve != nil {
		serve(p)
	}
	n.Transfer(p, dst, src, respSize)
}

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats { return n.s }

// ResetStats zeroes the counters.
func (n *Network) ResetStats() { n.s = Stats{} }

// TXBusy returns the cumulative busy time of node i's send side.
func (n *Network) TXBusy(i int) time.Duration { return n.nics[i].tx.BusyTime() }

// RXBusy returns the cumulative busy time of node i's receive side.
func (n *Network) RXBusy(i int) time.Duration { return n.nics[i].rx.BusyTime() }
