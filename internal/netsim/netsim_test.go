package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"nvmalloc/internal/simtime"
	"nvmalloc/internal/sysprof"
)

func net4(e *simtime.Engine) *Network {
	return New(e, sysprof.BondedDualGigE, 4)
}

func TestTransferTime(t *testing.T) {
	e := simtime.NewEngine()
	n := net4(e)
	var took simtime.Time
	e.Go("x", func(p *simtime.Proc) {
		// A single flow rides one of the two bonded lanes: 117 MB/s, so
		// 117 MB takes 1 s end to end (cut-through) plus latency.
		n.Transfer(p, 0, 1, 117_000_000)
		took = p.Now()
	})
	e.Run()
	want := simtime.Time(time.Second + 60*time.Microsecond)
	if took != want {
		t.Fatalf("transfer took %v, want %v", took, want)
	}
}

func TestBondedLanesShareAggregate(t *testing.T) {
	// Two concurrent flows from one sender use both lanes: the makespan
	// matches a single flow's, so the aggregate is 234 MB/s.
	e := simtime.NewEngine()
	n := net4(e)
	wg := e.GoEach("x", 2, func(p *simtime.Proc, i int) {
		n.Transfer(p, 0, i+1, 117_000_000)
	})
	e.Go("join", func(p *simtime.Proc) { wg.Wait(p) })
	e.Run()
	want := simtime.Time(time.Second + 60*time.Microsecond)
	if e.Now() != want {
		t.Fatalf("two-flow makespan %v, want %v", e.Now(), want)
	}
}

func TestLocalTransferBypassesNIC(t *testing.T) {
	e := simtime.NewEngine()
	n := net4(e)
	e.Go("x", func(p *simtime.Proc) { n.Transfer(p, 2, 2, 4_000_000_000) })
	e.Run()
	if e.Now() != simtime.Time(time.Second) {
		t.Fatalf("local copy of 4GB at 4GB/s should take 1s, got %v", e.Now())
	}
	if s := n.Stats(); s.Messages != 0 || s.LocalMessages != 1 {
		t.Fatalf("stats %+v", s)
	}
	if n.TXBusy(2) != 0 {
		t.Fatal("local transfer must not touch the NIC")
	}
}

func TestSenderLinkContention(t *testing.T) {
	// Four transfers from node 0 exceed its two TX lanes and must queue:
	// two waves of ~1s each.
	e := simtime.NewEngine()
	n := net4(e)
	size := int64(117_000_000) // 1s of lane time
	wg := e.GoEach("x", 4, func(p *simtime.Proc, i int) {
		n.Transfer(p, 0, i%3+1, size)
	})
	e.Go("join", func(p *simtime.Proc) { wg.Wait(p) })
	e.Run()
	if e.Now() < simtime.Time(2*time.Second) {
		t.Fatalf("makespan %v, want >= 2s (TX lanes serialized)", e.Now())
	}
}

func TestReceiverLinkContention(t *testing.T) {
	// Incast: four senders to one receiver queue on the RX lanes.
	e := simtime.NewEngine()
	n := net4(e)
	size := int64(117_000_000)
	wg := e.GoEach("x", 4, func(p *simtime.Proc, i int) {
		n.Transfer(p, i%3+1, 0, size)
	})
	e.Go("join", func(p *simtime.Proc) { wg.Wait(p) })
	e.Run()
	if e.Now() < simtime.Time(2*time.Second) {
		t.Fatalf("makespan %v, want >= 2s (RX lanes serialized)", e.Now())
	}
}

func TestRequestRoundTrip(t *testing.T) {
	e := simtime.NewEngine()
	n := net4(e)
	served := false
	e.Go("rpc", func(p *simtime.Proc) {
		n.Request(p, 0, 1, 128, 65536, func(sp *simtime.Proc) {
			served = true
			sp.Sleep(time.Millisecond)
		})
	})
	e.Run()
	if !served {
		t.Fatal("server closure did not run")
	}
	if e.Now() <= simtime.Time(time.Millisecond+2*60*time.Microsecond) {
		t.Fatalf("round trip %v too fast", e.Now())
	}
}

// Property: bytes accounting equals the sum of transfer sizes, and disjoint
// node pairs proceed fully in parallel.
func TestDisjointPairsParallelProperty(t *testing.T) {
	f := func(s uint32) bool {
		size := int64(s%1_000_000) + 1
		e := simtime.NewEngine()
		n := net4(e)
		e.Go("a", func(p *simtime.Proc) { n.Transfer(p, 0, 1, size) })
		e.Go("b", func(p *simtime.Proc) { n.Transfer(p, 2, 3, size) })
		e.Run()
		one := n.xferTime(size) + sysprof.BondedDualGigE.MsgLatency
		return e.Now() == simtime.Time(one) && n.Stats().Bytes == 2*size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
