package benefactor

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"nvmalloc/internal/proto"
)

const cs = 1024 // test chunk size

func newStore() *Store { return New(1, 0, 16*cs, cs, NewMem()) }

func TestPutGetRoundTrip(t *testing.T) {
	st := newStore()
	data := bytes.Repeat([]byte{0xAB}, cs)
	if err := st.PutChunk(7, data); err != nil {
		t.Fatal(err)
	}
	got, err := st.GetChunk(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if st.Used() != cs {
		t.Fatalf("used = %d, want %d", st.Used(), cs)
	}
}

func TestGetUnwrittenChunkIsZeroes(t *testing.T) {
	st := newStore()
	got, err := st.GetChunk(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != cs || !bytes.Equal(got, make([]byte, cs)) {
		t.Fatal("reserved-but-unwritten chunk must read as zeroes")
	}
}

func TestPutWrongSizeRejected(t *testing.T) {
	st := newStore()
	if err := st.PutChunk(1, make([]byte, cs-1)); err == nil {
		t.Fatal("short chunk accepted")
	}
}

func TestCapacityEnforced(t *testing.T) {
	st := newStore()
	data := make([]byte, cs)
	for i := 0; i < 16; i++ {
		if err := st.PutChunk(proto.ChunkID(i), data); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.PutChunk(99, data); err != proto.ErrNoSpace {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	// Overwriting an existing chunk needs no new space.
	if err := st.PutChunk(3, data); err != nil {
		t.Fatalf("overwrite failed: %v", err)
	}
}

func TestPutPagesAppliesDirtyPagesOnly(t *testing.T) {
	st := newStore()
	base := bytes.Repeat([]byte{1}, cs)
	if err := st.PutChunk(5, base); err != nil {
		t.Fatal(err)
	}
	pg := bytes.Repeat([]byte{9}, 64)
	if err := st.PutPages(5, []int64{128, 512}, [][]byte{pg, pg}); err != nil {
		t.Fatal(err)
	}
	got, _ := st.GetChunk(5)
	for i := 0; i < cs; i++ {
		want := byte(1)
		if (i >= 128 && i < 192) || (i >= 512 && i < 576) {
			want = 9
		}
		if got[i] != want {
			t.Fatalf("byte %d = %d, want %d", i, got[i], want)
		}
	}
	if st.Stats().PageBytesWritten != 128 {
		t.Fatalf("page bytes = %d, want 128", st.Stats().PageBytesWritten)
	}
}

func TestPutPagesMaterializesChunk(t *testing.T) {
	st := newStore()
	pg := bytes.Repeat([]byte{7}, 32)
	if err := st.PutPages(11, []int64{0}, [][]byte{pg}); err != nil {
		t.Fatal(err)
	}
	if st.Used() != cs {
		t.Fatalf("used = %d, want %d", st.Used(), cs)
	}
	got, _ := st.GetChunk(11)
	if got[0] != 7 || got[31] != 7 || got[32] != 0 {
		t.Fatal("materialized chunk content wrong")
	}
}

func TestPutPagesBoundsChecked(t *testing.T) {
	st := newStore()
	if err := st.PutPages(1, []int64{cs - 8}, [][]byte{make([]byte, 16)}); err == nil {
		t.Fatal("out-of-bounds page accepted")
	}
}

func TestCopyChunk(t *testing.T) {
	st := newStore()
	data := bytes.Repeat([]byte{0x5C}, cs)
	if err := st.PutChunk(1, data); err != nil {
		t.Fatal(err)
	}
	if err := st.CopyChunk(2, 1); err != nil {
		t.Fatal(err)
	}
	got, _ := st.GetChunk(2)
	if !bytes.Equal(got, data) {
		t.Fatal("copy mismatch")
	}
	// Mutating the copy must not touch the original.
	if err := st.PutPages(2, []int64{0}, [][]byte{{0xFF}}); err != nil {
		t.Fatal(err)
	}
	orig, _ := st.GetChunk(1)
	if orig[0] != 0x5C {
		t.Fatal("copy aliases original")
	}
}

func TestDelete(t *testing.T) {
	st := newStore()
	if err := st.PutChunk(1, make([]byte, cs)); err != nil {
		t.Fatal(err)
	}
	if err := st.DeleteChunk(1); err != nil {
		t.Fatal(err)
	}
	if st.Used() != 0 {
		t.Fatalf("used = %d after delete", st.Used())
	}
	// Deleting a never-materialized chunk is a no-op.
	if err := st.DeleteChunk(77); err != nil {
		t.Fatal(err)
	}
}

// Property: a store behaves like a map of chunk payloads under random
// put / put-pages / delete sequences.
func TestStoreMatchesReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := New(1, 0, 64*cs, cs, NewMem())
		ref := make(map[proto.ChunkID][]byte)
		for op := 0; op < 200; op++ {
			id := proto.ChunkID(rng.Intn(8))
			switch rng.Intn(4) {
			case 0: // full put
				d := make([]byte, cs)
				rng.Read(d)
				if err := st.PutChunk(id, d); err != nil {
					return false
				}
				ref[id] = append([]byte(nil), d...)
			case 1: // page put
				off := int64(rng.Intn(cs-64)) &^ 63
				pg := make([]byte, 64)
				rng.Read(pg)
				if err := st.PutPages(id, []int64{off}, [][]byte{pg}); err != nil {
					return false
				}
				if _, ok := ref[id]; !ok {
					ref[id] = make([]byte, cs)
				}
				copy(ref[id][off:], pg)
			case 2: // delete
				if err := st.DeleteChunk(id); err != nil {
					return false
				}
				delete(ref, id)
			case 3: // get and compare
				got, err := st.GetChunk(id)
				if err != nil {
					return false
				}
				want, ok := ref[id]
				if !ok {
					want = make([]byte, cs)
				}
				if !bytes.Equal(got, want) {
					return false
				}
			}
		}
		return st.Used() == int64(len(ref))*cs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
