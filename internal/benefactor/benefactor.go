// Package benefactor implements the storage side of the aggregate NVM
// store: each benefactor process contributes (a partition of) its
// node-local SSD and serves chunk requests. The Store type is pure,
// transport-agnostic logic; the simulated transport (internal/simstore)
// and the TCP transport (internal/rpc) both wrap it.
//
// Chunks are fixed-size and stored as individual objects ("chunk files" in
// the paper). PutPages applies only the dirty pages of a chunk — the
// paper's write optimization (Table VII) — so a benefactor must support
// sub-chunk updates.
package benefactor

import (
	"fmt"
	"sync"

	"nvmalloc/internal/obs"
	"nvmalloc/internal/proto"
)

// Backend stores chunk payloads. Implementations: Mem (simulation, and a
// RAM-backed real store) and internal/rpc's file backend.
type Backend interface {
	// Put stores data as the payload of chunk id, replacing any prior
	// payload.
	Put(id proto.ChunkID, data []byte) error
	// Get returns the payload of chunk id. The returned slice must not be
	// modified by the caller.
	Get(id proto.ChunkID) ([]byte, error)
	// Delete removes chunk id. Deleting a missing chunk is an error.
	Delete(id proto.ChunkID) error
	// Has reports whether chunk id exists.
	Has(id proto.ChunkID) bool
}

// BufferPolicy is an optional Backend extension declaring payload buffer
// ownership, letting the Store elide its defensive copies (DESIGN.md §13).
// A backend that does not implement it gets the conservative defaults:
// Put retains its argument and Get returns shared storage (both true for
// Mem, which stores and hands out the very slices).
type BufferPolicy interface {
	// RetainsPut reports whether Put keeps a reference to the data slice
	// after returning. When false the Store passes caller buffers to Put
	// without copying.
	RetainsPut() bool
	// PrivateGet reports whether Get returns a buffer owned by the caller —
	// free to mutate and recycle — rather than a view of backend storage.
	PrivateGet() bool
}

// Recycler is an optional Backend extension for backends whose Get leases
// buffers from a pool: a caller that is done with a Get result hands it
// back here instead of leaving it to the garbage collector. Only meaningful
// alongside PrivateGet() == true.
type Recycler interface {
	Recycle(b []byte)
}

// Mem is an in-memory Backend. It is safe for concurrent use: the TCP
// transport serves each connection on its own goroutine.
type Mem struct {
	mu     sync.Mutex
	chunks map[proto.ChunkID][]byte
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem { return &Mem{chunks: make(map[proto.ChunkID][]byte)} }

// Put implements Backend.
func (m *Mem) Put(id proto.ChunkID, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.chunks[id] = data
	return nil
}

// Get implements Backend.
func (m *Mem) Get(id proto.ChunkID) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.chunks[id]
	if !ok {
		return nil, proto.ErrNoSuchChunk
	}
	return d, nil
}

// Delete implements Backend.
func (m *Mem) Delete(id proto.ChunkID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.chunks[id]; !ok {
		return proto.ErrNoSuchChunk
	}
	delete(m.chunks, id)
	return nil
}

// Has implements Backend.
func (m *Mem) Has(id proto.ChunkID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.chunks[id]
	return ok
}

// Len returns the number of stored chunks.
func (m *Mem) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.chunks)
}

// Stats are the benefactor's cumulative traffic counters.
type Stats struct {
	Gets         int64
	Puts         int64
	PagePuts     int64 // PutPages calls
	BytesRead    int64
	BytesWritten int64
	// PageBytesWritten counts only the dirty-page payloads of PutPages;
	// comparing it to whole-chunk writes quantifies the Table VII saving.
	PageBytesWritten int64
}

// Store is one benefactor's chunk store. All methods are safe for
// concurrent use; the TCP transport (internal/rpc) serves many client
// connections against one Store.
type Store struct {
	id        int
	node      int
	chunkSize int64
	backend   Backend

	mu       sync.Mutex
	capacity int64
	used     int64
	s        Stats
	// strict enables tombstoning of deleted chunks: reads and sub-chunk
	// writes of a deleted chunk fail with ErrNoSuchChunk instead of
	// resurrecting it as zeroes. The manager never reuses chunk IDs, so in
	// a deployment a deleted ID can only be referenced by a client holding
	// a stale chunk map — the error lets it re-Lookup and retry. The
	// simulation keeps the lazy zero-fill semantics (strict off).
	strict bool
	tombs  map[proto.ChunkID]struct{}

	// Buffer-ownership policy of the backend (resolved once at New):
	// retainsPut forces the defensive copy before backend.Put; privGet
	// means Get results are caller-owned, so sub-chunk updates may mutate
	// them in place and recycle returns them to the backend's pool.
	retainsPut bool
	privGet    bool
	recycle    func([]byte)

	// Occupancy gauges (SetObs), kept current wherever used changes so a
	// scrape sees the benefactor's fill level without an RPC round trip.
	usedGauge *obs.Gauge
	capGauge  *obs.Gauge
}

// New creates a benefactor store contributing capacity bytes of chunkSize
// chunks from the given cluster node.
func New(id, node int, capacity, chunkSize int64, backend Backend) *Store {
	if capacity < chunkSize {
		panic(fmt.Sprintf("benefactor %d: capacity %d below one chunk", id, capacity))
	}
	st := &Store{
		id: id, node: node, chunkSize: chunkSize, capacity: capacity,
		backend: backend, tombs: make(map[proto.ChunkID]struct{}),
		retainsPut: true,
	}
	if bp, ok := backend.(BufferPolicy); ok {
		st.retainsPut = bp.RetainsPut()
		st.privGet = bp.PrivateGet()
	}
	if rc, ok := backend.(Recycler); ok {
		st.recycle = rc.Recycle
	}
	return st
}

// SetObs registers the store's occupancy gauges (benefactor.used_bytes,
// benefactor.capacity_bytes) in o's registry and keeps them current as
// chunks materialize and die. Nil-safe: a nil o (or nil registry) leaves
// the gauges as no-ops.
func (st *Store) SetObs(o *obs.Obs) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if o == nil {
		return
	}
	st.usedGauge = o.Reg.Gauge("benefactor.used_bytes")
	st.capGauge = o.Reg.Gauge("benefactor.capacity_bytes")
	st.usedGauge.Set(st.used)
	st.capGauge.Set(st.capacity)
}

// PrivateReads reports whether GetChunk results are caller-owned buffers
// (mutable, recyclable) rather than views of backend storage. True only
// when the backend declares PrivateGet — zero-fill reads of unmaterialized
// chunks are always private either way.
func (st *Store) PrivateReads() bool { return st.privGet }

// Recycle returns a caller-owned GetChunk buffer to the backend's pool, if
// it has one. Only valid when PrivateReads is true.
func (st *Store) Recycle(b []byte) {
	if st.recycle != nil {
		st.recycle(b)
	}
}

// SetStrictDelete toggles tombstoning of deleted chunks (see Store.strict).
func (st *Store) SetStrictDelete(on bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.strict = on
}

// ID returns the benefactor's store-wide ID.
func (st *Store) ID() int { return st.id }

// Node returns the cluster node hosting the benefactor.
func (st *Store) Node() int { return st.node }

// Capacity returns the contributed bytes.
func (st *Store) Capacity() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.capacity
}

// Used returns the bytes currently occupied by chunks.
func (st *Store) Used() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.used
}

// Stats returns a snapshot of the counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.s
}

// ChunkSize returns the store's striping unit.
func (st *Store) ChunkSize() int64 { return st.chunkSize }

// PutChunk stores a full chunk payload.
func (st *Store) PutChunk(id proto.ChunkID, data []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.putChunkLocked(id, data)
}

func (st *Store) putChunkLocked(id proto.ChunkID, data []byte) error {
	if int64(len(data)) != st.chunkSize {
		return fmt.Errorf("benefactor %d: chunk %d payload %d bytes, want %d", st.id, id, len(data), st.chunkSize)
	}
	if st.strict {
		if _, dead := st.tombs[id]; dead {
			return proto.ErrNoSuchChunk
		}
	}
	fresh := !st.backend.Has(id)
	if fresh && st.used+st.chunkSize > st.capacity {
		return proto.ErrNoSpace
	}
	// A backend that retains its Put argument (Mem stores the very slice)
	// gets a private copy, because the caller keeps owning data. A
	// non-retaining backend (the file backend) persists the bytes before
	// returning, so the caller's buffer goes straight through.
	if st.retainsPut {
		cp := make([]byte, len(data))
		copy(cp, data)
		data = cp
	}
	if err := st.backend.Put(id, data); err != nil {
		return err
	}
	if fresh {
		st.used += st.chunkSize
		st.usedGauge.Set(st.used)
	}
	st.s.Puts++
	st.s.BytesWritten += int64(len(data))
	return nil
}

// GetChunk returns the payload of chunk id. Reading a chunk that was
// reserved but never written yields zeroes (the manager reserves space at
// create time; data arrives lazily — paper §III-C). In strict-delete mode
// reading a deleted chunk fails with ErrNoSuchChunk.
func (st *Store) GetChunk(id proto.ChunkID) ([]byte, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.getChunkLocked(id)
}

func (st *Store) getChunkLocked(id proto.ChunkID) ([]byte, error) {
	if st.strict {
		if _, dead := st.tombs[id]; dead {
			return nil, proto.ErrNoSuchChunk
		}
	}
	d, err := st.backend.Get(id)
	if err == proto.ErrNoSuchChunk {
		d = make([]byte, st.chunkSize)
	} else if err != nil {
		return nil, err
	}
	st.s.Gets++
	st.s.BytesRead += int64(len(d))
	return d, nil
}

// PutPages applies dirty pages (parallel offset/payload slices, offsets are
// byte offsets within the chunk) to chunk id, materializing the chunk if it
// does not exist yet.
func (st *Store) PutPages(id proto.ChunkID, pageOffs []int64, pages [][]byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(pageOffs) != len(pages) {
		return fmt.Errorf("benefactor %d: %d offsets but %d pages", st.id, len(pageOffs), len(pages))
	}
	if st.strict {
		if _, dead := st.tombs[id]; dead {
			return proto.ErrNoSuchChunk
		}
	}
	prev, err := st.backend.Get(id)
	var cur []byte
	if err == proto.ErrNoSuchChunk {
		if st.used+st.chunkSize > st.capacity {
			return proto.ErrNoSpace
		}
		cur = make([]byte, st.chunkSize)
		st.used += st.chunkSize
		st.usedGauge.Set(st.used)
	} else if err != nil {
		return err
	} else if st.privGet {
		// The backend handed out a private buffer: patch it in place and
		// write it back, no copy.
		cur = prev
	} else {
		// Never mutate the stored payload in place: concurrent readers may
		// still be serializing the slice the backend handed out.
		cur = make([]byte, len(prev))
		copy(cur, prev)
	}
	var vol int64
	for i, off := range pageOffs {
		pg := pages[i]
		if off < 0 || off+int64(len(pg)) > st.chunkSize {
			return fmt.Errorf("benefactor %d: page [%d,%d) outside chunk", st.id, off, off+int64(len(pg)))
		}
		copy(cur[off:], pg)
		vol += int64(len(pg))
	}
	err = st.backend.Put(id, cur)
	if st.privGet && !st.retainsPut && st.recycle != nil {
		// cur is ours (a private Get lease or a fresh zero-fill) and a
		// non-retaining backend has persisted it: hand it back to the pool.
		st.recycle(cur)
	}
	if err != nil {
		return err
	}
	st.s.PagePuts++
	st.s.BytesWritten += vol
	st.s.PageBytesWritten += vol
	return nil
}

// CopyChunk duplicates the payload of src into dst (server-side copy used
// by copy-on-write remapping, so the data never crosses the network).
func (st *Store) CopyChunk(dst, src proto.ChunkID) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	d, err := st.getChunkLocked(src)
	if err != nil {
		return err
	}
	err = st.putChunkLocked(dst, d)
	if st.privGet && !st.retainsPut && st.recycle != nil {
		st.recycle(d)
	}
	return err
}

// DeleteChunk removes a chunk and releases its space. Deleting a chunk that
// was reserved but never materialized is a no-op (the reservation is
// released manager-side). In strict-delete mode the ID is tombstoned so
// stale references fail instead of resurrecting the chunk.
func (st *Store) DeleteChunk(id proto.ChunkID) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.strict {
		st.tombs[id] = struct{}{}
	}
	if !st.backend.Has(id) {
		return nil
	}
	if err := st.backend.Delete(id); err != nil {
		return err
	}
	st.used -= st.chunkSize
	st.usedGauge.Set(st.used)
	return nil
}

// Info returns the benefactor's registration record.
func (st *Store) Info() proto.BenefactorInfo {
	st.mu.Lock()
	defer st.mu.Unlock()
	return proto.BenefactorInfo{
		ID: st.id, Node: st.node, Capacity: st.capacity, Used: st.used,
		Alive: true, WriteVolume: st.s.BytesWritten,
	}
}
