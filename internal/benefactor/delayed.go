package benefactor

import (
	"time"

	"nvmalloc/internal/proto"
)

// Delayed wraps a Backend with a fixed per-access device service time on
// the data ops — the emulated-SSD configuration the benchmarks use when
// the interesting cost is the device, not the wire (cmd/nvmbench's
// warm-restart scenario, the PR 1 serial/parallel rigs). Metadata ops
// (Delete, Has) pass through undelayed.
type Delayed struct {
	Inner   Backend
	Latency time.Duration
}

// Delay wraps inner with the given per-Get/Put service time.
func Delay(inner Backend, latency time.Duration) Delayed {
	return Delayed{Inner: inner, Latency: latency}
}

// Put implements Backend.
func (d Delayed) Put(id proto.ChunkID, data []byte) error {
	time.Sleep(d.Latency)
	return d.Inner.Put(id, data)
}

// Get implements Backend.
func (d Delayed) Get(id proto.ChunkID) ([]byte, error) {
	time.Sleep(d.Latency)
	return d.Inner.Get(id)
}

// Delete implements Backend.
func (d Delayed) Delete(id proto.ChunkID) error { return d.Inner.Delete(id) }

// Has implements Backend.
func (d Delayed) Has(id proto.ChunkID) bool { return d.Inner.Has(id) }

// RetainsPut/PrivateGet forward the inner backend's buffer-ownership
// policy (conservative defaults when the inner backend declares none).
func (d Delayed) RetainsPut() bool {
	if bp, ok := d.Inner.(BufferPolicy); ok {
		return bp.RetainsPut()
	}
	return true
}

// PrivateGet implements BufferPolicy; see RetainsPut.
func (d Delayed) PrivateGet() bool {
	if bp, ok := d.Inner.(BufferPolicy); ok {
		return bp.PrivateGet()
	}
	return false
}
