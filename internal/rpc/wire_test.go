package rpc

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"nvmalloc/internal/benefactor"
	"nvmalloc/internal/manager"
	"nvmalloc/internal/obs"
	"nvmalloc/internal/proto"
)

// legacyGobServer emulates a pre-NVM1 benefactor: a bare gob loop with no
// preamble peek. Its decoder chokes on the 0xB1 handshake byte and closes
// the connection, exactly as an old binary would. Every successful GetChunk
// returns legacyPayload.
var legacyPayload = []byte("served-by-legacy-gob")

func startLegacyGobServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				enc := gob.NewEncoder(conn)
				for {
					var req proto.ChunkReq
					if err := dec.Decode(&req); err != nil {
						return // 0xB1 preamble lands here: decode error, close
					}
					var resp proto.ChunkResp
					if req.Op == proto.OpGetChunk {
						resp.Data = legacyPayload
					}
					if err := enc.Encode(&resp); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return l.Addr().String()
}

// TestLegacyServerFallback covers new client ↔ old server: the NVM1
// handshake dies against a gob-only peer, the client redials in gob mode,
// reports the fallback for per-address caching, and the call still works.
func TestLegacyServerFallback(t *testing.T) {
	addr := startLegacyGobServer(t)
	fell := false
	c, err := dialChunk(addr, nil, time.Second, 500*time.Millisecond, wireConfig{
		arena:      proto.NewArena(testChunk),
		maxPayload: maxPayloadFor(testChunk),
		fellBack:   &fell,
	})
	if err != nil {
		t.Fatalf("dial against legacy server: %v", err)
	}
	defer c.close()
	if !fell {
		t.Error("fallback not reported: client would re-probe this address forever")
	}
	if c.binary {
		t.Fatal("connection claims binary mode against a gob-only server")
	}
	resp, err := c.call(proto.ChunkReq{Op: proto.OpGetChunk, ID: 1})
	if err != nil {
		t.Fatalf("gob call after fallback: %v", err)
	}
	if !bytes.Equal(resp.Data, legacyPayload) {
		t.Fatalf("payload %q, want %q", resp.Data, legacyPayload)
	}
}

// TestBinaryNegotiation covers new client ↔ new server at the connection
// level: the handshake upgrades to NVM1 and semantic errors round-trip
// through the binary error frame.
func TestBinaryNegotiation(t *testing.T) {
	r := newRig(t, 1)
	fell := false
	c, err := dialChunk(r.bens[0].Addr(), nil, time.Second, 500*time.Millisecond, wireConfig{
		arena:      proto.NewArena(testChunk),
		maxPayload: maxPayloadFor(testChunk),
		fellBack:   &fell,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()
	if !c.binary || fell {
		t.Fatalf("binary=%v fellBack=%v, want true/false", c.binary, fell)
	}
	// Round trip data through the binary frames.
	payload := pattern(3, testChunk)
	if _, err := c.call(proto.ChunkReq{Op: proto.OpPutChunk, ID: 7, Data: payload}); err != nil {
		t.Fatalf("binary put: %v", err)
	}
	resp, err := c.call(proto.ChunkReq{Op: proto.OpGetChunk, ID: 7})
	if err != nil {
		t.Fatalf("binary get: %v", err)
	}
	if !bytes.Equal(resp.Data, payload) {
		t.Fatal("binary round trip corrupted payload")
	}
	// A semantic error must arrive as the mapped sentinel, not a transport
	// failure: overfill the 64-chunk benefactor until it reports ErrNoSpace.
	var semErr error
	for id := proto.ChunkID(100); id < 300; id++ {
		if _, semErr = c.call(proto.ChunkReq{Op: proto.OpPutChunk, ID: id, Data: payload}); semErr != nil {
			break
		}
	}
	if !errors.Is(semErr, proto.ErrNoSpace) {
		t.Fatalf("overfill: err = %v, want ErrNoSpace", semErr)
	}
	if c.isBroken() {
		t.Error("semantic error broke the connection")
	}
}

// TestForceGobCompat covers old client ↔ new server: Options.ForceGob pins
// the legacy protocol (no preamble ever sent), and the peeking server serves
// the whole workload over gob.
func TestForceGobCompat(t *testing.T) {
	r := newRig(t, 2)
	opts := fastOpts()
	opts.ForceGob = true
	st, err := OpenWith(r.mgr.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	payload := pattern(9, 3*testChunk+100)
	if err := st.Put("compat", payload); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("compat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("gob-pinned round trip mismatch")
	}
	if err := st.WriteAt("compat", 5000, []byte("PATCH")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if err := st.ReadAt("compat", 5000, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "PATCH" {
		t.Fatalf("patch read %q", buf)
	}
}

// TestMixedProtocolClients runs a binary client and a gob-pinned client
// against the same servers at once: both see each other's writes.
func TestMixedProtocolClients(t *testing.T) {
	r := newRig(t, 2)
	newSt, err := OpenWith(r.mgr.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer newSt.Close()
	opts := fastOpts()
	opts.ForceGob = true
	oldSt, err := OpenWith(r.mgr.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer oldSt.Close()

	wrote := pattern(1, 2*testChunk)
	if err := newSt.Put("from-new", wrote); err != nil {
		t.Fatal(err)
	}
	got, err := oldSt.Get("from-new")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wrote) {
		t.Fatal("gob client read of binary client's write mismatched")
	}

	wrote = pattern(2, 2*testChunk)
	if err := oldSt.Put("from-old", wrote); err != nil {
		t.Fatal(err)
	}
	got, err = newSt.Get("from-old")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wrote) {
		t.Fatal("binary client read of gob client's write mismatched")
	}
}

// TestMalformedFramesDropped sends hostile frames at a benefactor after a
// successful NVM1 handshake: the server must close the connection without
// staging the declared payload, and must stay healthy for other clients.
func TestMalformedFramesDropped(t *testing.T) {
	r := newRig(t, 1)
	addr := r.bens[0].Addr()

	handshake := func(t *testing.T) net.Conn {
		t.Helper()
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Write([]byte{proto.Preamble}); err != nil {
			t.Fatal(err)
		}
		var ack [1]byte
		if _, err := io.ReadFull(conn, ack[:]); err != nil || ack[0] != proto.Preamble {
			t.Fatalf("handshake ack %x err %v", ack, err)
		}
		return conn
	}
	expectClosed := func(t *testing.T, conn net.Conn) {
		t.Helper()
		var b [1]byte
		if _, err := io.ReadFull(conn, b[:]); err == nil {
			t.Fatal("server kept the connection open after a malformed frame")
		}
	}

	t.Run("garbage bytes", func(t *testing.T) {
		conn := handshake(t)
		if _, err := conn.Write(bytes.Repeat([]byte{0xFF}, 64)); err != nil {
			t.Fatal(err)
		}
		expectClosed(t, conn)
	})

	t.Run("oversized declared payload", func(t *testing.T) {
		conn := handshake(t)
		// A well-formed header whose payload claims 16 MiB against a 4 KiB
		// chunk: the server must reject on the declared length alone — the
		// bytes are never sent, so a blocking staged read would hang here.
		f := proto.Frame{Op: proto.FramePut, ID: 1, PayloadLen: 16 << 20}
		if _, err := conn.Write(f.AppendTo(nil)); err != nil {
			t.Fatal(err)
		}
		expectClosed(t, conn)
	})

	t.Run("unsolicited response frame", func(t *testing.T) {
		conn := handshake(t)
		f := proto.Frame{Op: proto.FrameGet, Resp: true, ID: 1}
		if _, err := conn.Write(f.AppendTo(nil)); err != nil {
			t.Fatal(err)
		}
		expectClosed(t, conn)
	})

	// The server must shrug all of that off: a normal client still works.
	st, err := OpenWith(r.mgr.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	payload := pattern(5, testChunk)
	if err := st.Put("after-abuse", payload); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("after-abuse")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip after malformed frames mismatched")
	}
}

// TestHandshakeTransportFaultIsTransient pins the retry semantics the fault
// tests rely on: a connection torn mid-handshake must surface as a dial
// error (so the caller's transient-retry path redials), NOT silently mark
// the address gob-only.
func TestHandshakeTransportFaultIsTransient(t *testing.T) {
	// A listener that accepts and immediately closes: the preamble write may
	// succeed (buffered), but the ack read sees a reset/EOF — which IS the
	// legacy signature, so this dial must fall back, not error.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	fell := false
	c, err := dialChunk(l.Addr().String(), nil, time.Second, 200*time.Millisecond, wireConfig{
		arena:      proto.NewArena(testChunk),
		maxPayload: maxPayloadFor(testChunk),
		fellBack:   &fell,
	})
	if err == nil {
		// The gob redial connected (the listener closes conns, but dial
		// itself succeeds) — acceptable; the point is the classification.
		c.close()
	}
	if !fell {
		t.Error("peer that closed after the preamble was not classified as legacy")
	}

	// A dial function that fails writes outright is a transport fault: no
	// fallback, an error instead.
	fell = false
	failDial := func(string) (net.Conn, error) {
		return &writeFailConn{}, nil
	}
	if _, err := dialChunk("ignored", failDial, time.Second, 200*time.Millisecond, wireConfig{
		arena:      proto.NewArena(testChunk),
		maxPayload: maxPayloadFor(testChunk),
		fellBack:   &fell,
	}); err == nil {
		t.Fatal("dial succeeded through a conn that cannot write")
	}
	if fell {
		t.Error("transport write failure misclassified as a legacy gob server")
	}
}

// writeFailConn is a net.Conn whose writes always fail, emulating a torn
// connection during the handshake.
type writeFailConn struct{ net.TCPConn }

func (c *writeFailConn) Write([]byte) (int, error)        { return 0, errors.New("injected write failure") }
func (c *writeFailConn) Close() error                     { return nil }
func (c *writeFailConn) SetDeadline(time.Time) error      { return nil }
func (c *writeFailConn) SetReadDeadline(time.Time) error  { return nil }
func (c *writeFailConn) SetWriteDeadline(time.Time) error { return nil }

// startStoppableLegacyServer is startLegacyGobServer with an explicit stop
// that also severs accepted connections, emulating a legacy benefactor
// being taken down for an in-place upgrade.
func startStoppableLegacyServer(t *testing.T) (string, func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []net.Conn
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
			go func(conn net.Conn) {
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				enc := gob.NewEncoder(conn)
				for {
					var req proto.ChunkReq
					if err := dec.Decode(&req); err != nil {
						return
					}
					var resp proto.ChunkResp
					if req.Op == proto.OpGetChunk {
						resp.Data = legacyPayload
					}
					if err := enc.Encode(&resp); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			l.Close()
			mu.Lock()
			for _, c := range conns {
				c.Close()
			}
			mu.Unlock()
		})
	}
	t.Cleanup(stop)
	return l.Addr().String(), stop
}

// TestGobVerdictEvictedOnPoolDrain covers the in-place upgrade story: a
// client learns an address is gob-only, the legacy server goes away (the
// pool drains), and an NVM1 server comes back on the same address. The
// drained pool must evict the cached gob verdict so the redial probes
// NVM1 again, instead of pinning the upgraded server to gob forever.
func TestGobVerdictEvictedOnPoolDrain(t *testing.T) {
	addr, stopLegacy := startStoppableLegacyServer(t)

	// A Store wired straight at the legacy address (no manager round trip:
	// the test drives the per-benefactor pool directly). PoolSize 1 so a
	// single broken connection drains the pool.
	o := obs.New("client")
	s := &Store{
		opts:         Options{PoolSize: 1}.withDefaults(),
		benAddrs:     map[int]string{1: addr},
		benAlive:     map[int]bool{},
		suspectUntil: map[int]time.Time{},
		pools:        map[int]*connPool{},
		meta:         map[string]proto.FileInfo{},
		gobAddrs:     map[string]bool{},
		obs:          o,
		chunkSize:    testChunk,
	}
	s.m = newStoreMetrics(o)
	s.arena = proto.NewArena(testChunk)

	ref := proto.ChunkRef{Benefactor: 1, ID: 7}
	p, err := s.pool(ref)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := p.call(proto.ChunkReq{Op: proto.OpGetChunk, ID: 7})
	if err != nil {
		t.Fatalf("call against legacy server: %v", err)
	}
	if !bytes.Equal(resp.Data, legacyPayload) {
		t.Fatalf("payload %q, want legacy payload", resp.Data)
	}
	s.mu.Lock()
	pinned := s.gobAddrs[addr]
	s.mu.Unlock()
	if !pinned {
		t.Fatal("legacy fallback did not cache the gob verdict")
	}

	// Take the legacy server down: the pooled connection breaks on the
	// next call, the pool drains, and the verdict must be evicted.
	stopLegacy()
	for i := 0; i < 3; i++ {
		if _, err := p.call(proto.ChunkReq{Op: proto.OpGetChunk, ID: 7}); err == nil {
			t.Fatal("call succeeded against a stopped server")
		}
		s.mu.Lock()
		pinned = s.gobAddrs[addr]
		s.mu.Unlock()
		if !pinned {
			break
		}
	}
	if pinned {
		t.Fatal("pool drain did not evict the gob verdict")
	}
	found := false
	for _, ev := range o.Ring.Events() {
		if ev.Comp == "rpc" && ev.Kind == "gob-verdict-evict" {
			found = true
		}
	}
	if !found {
		t.Error("no gob-verdict-evict event recorded")
	}

	// The upgraded server comes back on the same address. The next dial
	// must probe NVM1 (not speak gob), so the pooled connection upgrades.
	ms, err := NewManagerServer("127.0.0.1:0", testChunk, manager.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	bs, err := NewBenefactorServer(addr, ms.Addr(), 1, 0, 64*testChunk, testChunk, benefactor.NewMem(), 0)
	if err != nil {
		t.Fatalf("restarting benefactor on %s: %v", addr, err)
	}
	defer bs.Close()

	payload := pattern(9, testChunk)
	if _, err := p.call(proto.ChunkReq{Op: proto.OpPutChunk, ID: 7, Data: payload}); err != nil {
		t.Fatalf("put against upgraded server: %v", err)
	}
	c := <-p.free
	if c == nil {
		t.Fatal("no pooled connection after successful call")
	}
	binary := c.binary
	p.free <- c
	if !binary {
		t.Fatal("upgraded server still spoken to over gob: verdict not re-probed")
	}
	resp, err = p.call(proto.ChunkReq{Op: proto.OpGetChunk, ID: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Data, payload) {
		t.Fatal("read through re-probed binary connection mismatched")
	}
}
