package rpc

import (
	"fmt"
	"testing"
	"time"

	"nvmalloc/internal/benefactor"
	"nvmalloc/internal/manager"
	"nvmalloc/internal/obs"
	"nvmalloc/internal/proto"
)

// Benchmarks for the real TCP data path: serial (the pre-pool behavior,
// one connection and one transfer in flight) vs parallel (pooled
// connections + bounded fan-out) vs cached. The paper's claim (§III-D,
// Tables III–IV) is that aggregate bandwidth scales with contributor
// count — visible here as parallel throughput growing with bens while
// serial stays flat.
//
// Loopback has essentially no latency, so the headline serial-vs-parallel
// benches emulate the SSD's access time in the benefactor backend
// (benchDeviceLatency per chunk op, in the ballpark of a 2012 SLC SSD
// random access). That is the latency striping actually hides in the
// paper's testbed; without it a loopback benchmark measures only gob CPU
// overhead and understates fan-out wildly (especially on small machines).

const (
	benchFileChunks    = 48
	benchDeviceLatency = 150 * time.Microsecond
)

var benchModes = []struct {
	name string
	opts Options
}{
	{"serial", Options{PoolSize: 1, Parallelism: 1}},
	{"parallel", Options{PoolSize: 4, Parallelism: 16}},
}

// slowBackend adds a fixed device service time to every chunk access.
type slowBackend struct {
	benefactor.Backend
	delay time.Duration
}

func (s slowBackend) Put(id proto.ChunkID, data []byte) error {
	time.Sleep(s.delay)
	return s.Backend.Put(id, data)
}

func (s slowBackend) Get(id proto.ChunkID) ([]byte, error) {
	time.Sleep(s.delay)
	return s.Backend.Get(id)
}

// benchStore spins up a manager plus bens benefactors whose backends have
// emulated device latency, and opens a client with the given options.
func benchStore(b *testing.B, bens int, opts Options) *Store {
	b.Helper()
	ms, err := NewManagerServer("127.0.0.1:0", testChunk, manager.RoundRobin)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ms.Close() })
	for i := 0; i < bens; i++ {
		backend := slowBackend{benefactor.NewMem(), benchDeviceLatency}
		bs, err := NewBenefactorServer("127.0.0.1:0", ms.Addr(), i, i, 2*benchFileChunks*testChunk, testChunk, backend, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { bs.Close() })
	}
	st, err := OpenWith(ms.Addr(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	return st
}

func BenchmarkRPCStoreWriteAt(b *testing.B) {
	for _, bens := range []int{1, 4, 8} {
		for _, m := range benchModes {
			b.Run(fmt.Sprintf("bens=%d/%s", bens, m.name), func(b *testing.B) {
				st := benchStore(b, bens, m.opts)
				size := int64(benchFileChunks * testChunk)
				if err := st.Create("bench", size); err != nil {
					b.Fatal(err)
				}
				data := make([]byte, size)
				for i := range data {
					data[i] = byte(i)
				}
				b.SetBytes(size)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := st.WriteAt("bench", 0, data); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkRPCStoreReadAt(b *testing.B) {
	for _, bens := range []int{1, 4, 8} {
		for _, m := range benchModes {
			b.Run(fmt.Sprintf("bens=%d/%s", bens, m.name), func(b *testing.B) {
				st := benchStore(b, bens, m.opts)
				size := int64(benchFileChunks * testChunk)
				if err := st.Put("bench", make([]byte, size)); err != nil {
					b.Fatal(err)
				}
				buf := make([]byte, size)
				b.SetBytes(size)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := st.ReadAt("bench", 0, buf); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkRPCObsOverhead isolates the cost of the observability layer:
// the same striped read/write workload with default instrumentation
// (counters + histograms + ring events) vs obs.Disabled() (every handle
// nil, every call a no-op). The servers run the continuous monitor in both
// modes — periodic snapshots plus rule evaluation off the hot path — so
// the comparison includes sampling, not just inline counters. Run with
// zero emulated device latency on loopback — the worst case for relative
// overhead, since there is no SSD service time to hide behind. The two
// modes should be within noise (<5%); a regression here means someone put
// work on the hot path instead of behind a nil-safe handle.
func BenchmarkRPCObsOverhead(b *testing.B) {
	monitor := obs.MonitorConfig{
		SampleInterval: 100 * time.Millisecond,
		Rules:          obs.DefaultRules(obs.RuleDefaults{}),
	}
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"instrumented", Options{}},
		{"disabled", Options{Obs: obs.Disabled()}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			ms, err := NewManagerServerWith("127.0.0.1:0", testChunk, manager.RoundRobin,
				ManagerConfig{Monitor: monitor})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { ms.Close() })
			for i := 0; i < 4; i++ {
				bs, err := NewBenefactorServerWith("127.0.0.1:0", ms.Addr(), i, i, 2*benchFileChunks*testChunk, testChunk,
					benefactor.NewMem(), 0, BenefactorConfig{Monitor: monitor})
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { bs.Close() })
			}
			st, err := OpenWith(ms.Addr(), mode.opts)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { st.Close() })

			size := int64(benchFileChunks * testChunk)
			if err := st.Put("bench", make([]byte, size)); err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, size)
			b.SetBytes(2 * size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.WriteAt("bench", 0, buf); err != nil {
					b.Fatal(err)
				}
				if err := st.ReadAt("bench", 0, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRPCStoreCachedReadAt measures the cache serving a working set
// that fits: after the first pass everything is resident and reads cost no
// network round trips at all.
func BenchmarkRPCStoreCachedReadAt(b *testing.B) {
	st := benchStore(b, 4, Options{})
	cache, err := NewCachedStore(st, CacheConfig{
		CacheBytes: 2 * benchFileChunks * testChunk,
		PageSize:   256,
	})
	if err != nil {
		b.Fatal(err)
	}
	size := int64(benchFileChunks * testChunk)
	if err := cache.Put("bench", make([]byte, size)); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, size)
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cache.ReadAt("bench", 0, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPCStoreCachedSparseFlush measures the Table VII write
// optimization end-to-end: dirty one page per chunk, flush, compare
// against whole-chunk writeback via the WriteFullChunks baseline.
func BenchmarkRPCStoreCachedSparseFlush(b *testing.B) {
	for _, full := range []bool{false, true} {
		name := "dirty-pages"
		if full {
			name = "whole-chunks"
		}
		b.Run(name, func(b *testing.B) {
			st := benchStore(b, 4, Options{})
			cache, err := NewCachedStore(st, CacheConfig{
				CacheBytes:      2 * benchFileChunks * testChunk,
				PageSize:        256,
				WriteFullChunks: full,
			})
			if err != nil {
				b.Fatal(err)
			}
			size := int64(benchFileChunks * testChunk)
			if err := cache.Put("bench", make([]byte, size)); err != nil {
				b.Fatal(err)
			}
			if err := cache.Flush("bench"); err != nil {
				b.Fatal(err)
			}
			page := make([]byte, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for c := 0; c < benchFileChunks; c++ {
					if err := cache.WriteAt("bench", int64(c)*testChunk, page); err != nil {
						b.Fatal(err)
					}
				}
				if err := cache.Flush("bench"); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(st.Stats().SSDWriteBytes)/float64(b.N), "ssd-B/op")
		})
	}
}
