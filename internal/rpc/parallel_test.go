package rpc

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"nvmalloc/internal/proto"
)

// TestTCPStoreConcurrentMixed hammers one Store from many goroutines doing
// mixed aligned and unaligned ReadAt/WriteAt against several benefactors,
// then verifies byte-exact contents. Each goroutine owns a disjoint
// chunk-aligned region of the shared file, so the expected final image is
// deterministic while the connection pools and fan-out workers are shared
// (and contended) across all goroutines. Run with -race.
func TestTCPStoreConcurrentMixed(t *testing.T) {
	const (
		goroutines      = 8
		chunksPerWorker = 4
		iters           = 15
	)
	r := newRig(t, 3)
	st, err := OpenWith(r.mgr.Addr(), Options{PoolSize: 3, Parallelism: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	region := int64(chunksPerWorker) * testChunk
	total := goroutines * region
	if err := st.Create("shared", total); err != nil {
		t.Fatal(err)
	}

	want := make([]byte, total)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			base := int64(g) * region
			mine := want[base : base+region]
			for it := 0; it < iters; it++ {
				// Aligned whole-region rewrite.
				fill := byte(g<<4 | it&0xF)
				for i := range mine {
					mine[i] = fill
				}
				if err := st.WriteAt("shared", base, mine); err != nil {
					errs <- err
					return
				}
				// A few unaligned sub-writes at odd offsets and lengths.
				for k := 0; k < 4; k++ {
					off := int64(rng.Intn(int(region) - 700))
					n := 1 + rng.Intn(700)
					patch := make([]byte, n)
					rng.Read(patch)
					copy(mine[off:], patch)
					if err := st.WriteAt("shared", base+off, patch); err != nil {
						errs <- err
						return
					}
				}
				// Unaligned read-back of a random slice.
				off := int64(rng.Intn(int(region) - 900))
				n := 1 + rng.Intn(900)
				got := make([]byte, n)
				if err := st.ReadAt("shared", base+off, got); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, mine[off:off+int64(n)]) {
					errs <- fmt.Errorf("goroutine %d iter %d: mid-run read mismatch at %d+%d", g, it, off, n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	got, err := st.Get("shared")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("final contents not byte-exact after concurrent mixed I/O")
	}
	if peak := st.Stats().InFlightPeak; peak < 2 {
		t.Fatalf("in-flight peak %d; fan-out never overlapped transfers", peak)
	}
}

// TestStaleMetaRetry recreates a file behind a client's back: the client's
// cached chunk map points at tombstoned chunks, so the first access fails
// benefactor-side with ErrNoSuchChunk and the client must re-Lookup and
// retry transparently.
func TestStaleMetaRetry(t *testing.T) {
	r := newRig(t, 2)
	a, err := Open(r.mgr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(r.mgr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	v1 := bytes.Repeat([]byte{0x11}, 2*testChunk)
	if err := a.Put("f", v1); err != nil {
		t.Fatal(err)
	}
	// a's meta cache is warm from Put. b deletes and recreates the file;
	// the manager hands out fresh chunk IDs and the old ones are
	// tombstoned on their benefactors.
	v2 := bytes.Repeat([]byte{0x22}, 2*testChunk)
	if err := b.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("f", v2); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, len(v2))
	if err := a.ReadAt("f", 0, buf); err != nil {
		t.Fatalf("stale read not retried: %v", err)
	}
	if !bytes.Equal(buf, v2) {
		t.Fatal("retry read returned stale or mixed data")
	}
	if a.Stats().MetaRetries == 0 {
		t.Fatal("no meta retry recorded; test exercised nothing")
	}

	// Same transparency for writes.
	if err := b.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("f", v1); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteAt("f", 5, []byte("fresh")); err != nil {
		t.Fatalf("stale write not retried: %v", err)
	}
	got, err := b.Get("f")
	if err != nil {
		t.Fatal(err)
	}
	if string(got[5:10]) != "fresh" {
		t.Fatal("retried write lost")
	}
}

// TestCachedStoreDirtyPageWriteback asserts the Table VII effect on the
// real TCP path: sparse writes through the cache ship only dirty pages on
// flush, so far fewer SSD bytes travel than with whole-chunk writeback.
func TestCachedStoreDirtyPageWriteback(t *testing.T) {
	const (
		page      = 256
		nChunks   = 8
		sparsePer = 2 // dirty pages per chunk
	)
	run := func(fullChunks bool) (ssdWrite int64) {
		r := newRig(t, 3)
		st, err := OpenWith(r.mgr.Addr(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		cache, err := NewCachedStore(st, CacheConfig{
			CacheBytes:      nChunks * testChunk,
			PageSize:        page,
			WriteFullChunks: fullChunks,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cache.Close()
		if err := cache.Create("v", nChunks*testChunk); err != nil {
			t.Fatal(err)
		}
		// Sparse workload: a few pages per chunk.
		for c := 0; c < nChunks; c++ {
			for p := 0; p < sparsePer; p++ {
				off := int64(c)*testChunk + int64(p)*7*page
				if err := cache.WriteAt("v", off, bytes.Repeat([]byte{0xEE}, page)); err != nil {
					t.Fatal(err)
				}
			}
		}
		before := st.Stats().SSDWriteBytes
		if before != 0 {
			t.Fatalf("cache leaked %d bytes to SSD before flush", before)
		}
		if err := cache.Flush("v"); err != nil {
			t.Fatal(err)
		}
		return st.Stats().SSDWriteBytes
	}

	sparse := run(false)
	full := run(true)
	wantSparse := int64(nChunks * sparsePer * page)
	if sparse != wantSparse {
		t.Fatalf("dirty-page flush shipped %d bytes, want %d", sparse, wantSparse)
	}
	if full != int64(nChunks*testChunk) {
		t.Fatalf("whole-chunk flush shipped %d bytes, want %d", full, nChunks*testChunk)
	}
	if sparse >= full {
		t.Fatalf("dirty-page writeback (%d B) not cheaper than whole-chunk (%d B)", sparse, full)
	}
}

// TestCachedStoreHitsAndReadAhead checks the cache serves repeated reads
// without SSD traffic and that sequential misses trigger prefetch.
func TestCachedStoreHitsAndReadAhead(t *testing.T) {
	r := newRig(t, 3)
	st, err := Open(r.mgr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewCachedStore(st, CacheConfig{
		CacheBytes:      32 * testChunk,
		PageSize:        256,
		ReadAheadChunks: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()

	payload := bytes.Repeat([]byte{0x3C}, 8*testChunk)
	if err := cache.Put("seq", payload); err != nil {
		t.Fatal(err)
	}
	if err := cache.Flush("seq"); err != nil {
		t.Fatal(err)
	}

	// Sequential chunk-by-chunk read.
	buf := make([]byte, testChunk)
	for c := 0; c < 8; c++ {
		if err := cache.ReadAt("seq", int64(c)*testChunk, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 0x3C {
			t.Fatalf("chunk %d corrupt", c)
		}
	}
	s := cache.Stats()
	if s.Hits == 0 {
		t.Fatalf("no cache hits on re-read of resident chunks: %+v", s)
	}
	// All 8 chunks were written through the cache, so reads should have hit
	// without any SSD read traffic at all.
	if got := st.Stats().SSDReadBytes; got != 0 {
		t.Fatalf("resident reads still pulled %d bytes from SSD", got)
	}

	// Evict everything by filling the cache with another file, then stream
	// again: sequential misses should prefetch.
	if err := cache.Put("filler", make([]byte, 32*testChunk)); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 8; c++ {
		if err := cache.ReadAt("seq", int64(c)*testChunk, buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := cache.Stats().PrefetchBytes; got == 0 {
		t.Fatal("sequential re-read triggered no read-ahead")
	}
}

// TestCachedStoreConcurrent drives one CachedStore from many goroutines
// (disjoint chunk-aligned regions) and checks the final image, exercising
// eviction and flush under concurrency. Run with -race.
func TestCachedStoreConcurrent(t *testing.T) {
	const goroutines = 6
	r := newRig(t, 3)
	st, err := OpenWith(r.mgr.Addr(), Options{PoolSize: 2, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Undersized cache so eviction writebacks happen mid-run.
	cache, err := NewCachedStore(st, CacheConfig{CacheBytes: 4 * testChunk, PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()

	region := int64(3) * testChunk
	total := goroutines * region
	if err := cache.Create("v", total); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, total)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			base := int64(g) * region
			mine := want[base : base+region]
			for it := 0; it < 10; it++ {
				off := int64(rng.Intn(int(region) - 600))
				n := 1 + rng.Intn(600)
				patch := make([]byte, n)
				rng.Read(patch)
				copy(mine[off:], patch)
				if err := cache.WriteAt("v", base+off, patch); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := cache.Flush("v"); err != nil {
		t.Fatal(err)
	}
	// Read back uncached to see exactly what the benefactors hold.
	st2, err := Open(r.mgr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.Get("v")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("flushed contents not byte-exact after concurrent cached writes")
	}
}

// TestFileBackendAtomicPut hammers one chunk file with concurrent whole-
// chunk rewrites while readers check they only ever observe a complete
// payload (all-old or all-new) — the temp-file + rename guarantee.
func TestFileBackendAtomicPut(t *testing.T) {
	fb, err := NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const size = 64 << 10
	mk := func(b byte) []byte { return bytes.Repeat([]byte{b}, size) }
	if err := fb.Put(1, mk(0)); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := fb.Put(1, mk(byte(w*50+i%50))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		d, err := fb.Get(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(d) != size {
			t.Fatalf("torn read: %d bytes", len(d))
		}
		first := d[0]
		for _, c := range d {
			if c != first {
				t.Fatalf("torn read: mixed payload bytes %d and %d", first, c)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestPoolBoundsConnections verifies the pool never dials more than its
// size even under heavy fan-out.
func TestPoolBoundsConnections(t *testing.T) {
	r := newRig(t, 1)
	st, err := OpenWith(r.mgr.Addr(), Options{PoolSize: 2, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Put("f", make([]byte, 16*testChunk)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16*testChunk)
	if err := st.ReadAt("f", 0, buf); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	p := st.pools[0]
	st.mu.Unlock()
	if p == nil {
		t.Fatal("no pool created for benefactor 0")
	}
	if n := len(p.free); n != cap(p.free) || cap(p.free) != 2 {
		t.Fatalf("pool slots %d/%d, want 2/2 idle", n, cap(p.free))
	}
	live := 0
	for i := 0; i < cap(p.free); i++ {
		c := <-p.free
		if c != nil {
			live++
			c.close()
		}
		p.free <- nil
	}
	if live == 0 || live > 2 {
		t.Fatalf("%d live connections, want 1..2", live)
	}
	// Proto sanity: the fan-out math never exceeded the per-call bound.
	if peak := st.Stats().InFlightPeak; peak > 8 {
		t.Fatalf("in-flight peak %d exceeds parallelism 8", peak)
	}
}

func TestWireErrChunkSentinel(t *testing.T) {
	if wireErr(proto.ErrNoSuchChunk.Error()) != proto.ErrNoSuchChunk {
		t.Fatal("ErrNoSuchChunk not restored across the wire")
	}
}
