package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"nvmalloc/internal/benefactor"
	"nvmalloc/internal/manager"
	"nvmalloc/internal/proto"
	"nvmalloc/internal/shardmap"
)

// shardRig spins up an N-shard metadata plane and a set of benefactors
// registered with every shard.
type shardRig struct {
	mgrs  []*ManagerServer
	bens  []*BenefactorServer
	addrs []string
}

func (r *shardRig) allAddrs() string { return strings.Join(r.addrs, ",") }

func newShardRig(t testing.TB, shards, bens int, cfg ManagerConfig) *shardRig {
	t.Helper()
	r := &shardRig{}
	for i := 0; i < shards; i++ {
		c := cfg
		c.ShardIndex, c.ShardCount = i, shards
		ms, err := NewManagerServerWith("127.0.0.1:0", testChunk, manager.RoundRobin, c)
		if err != nil {
			t.Fatal(err)
		}
		r.mgrs = append(r.mgrs, ms)
		r.addrs = append(r.addrs, ms.Addr())
		t.Cleanup(func() { ms.Close() })
	}
	for _, ms := range r.mgrs {
		if err := ms.SetPeers(r.addrs); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < bens; i++ {
		bs, err := NewBenefactorServer("127.0.0.1:0", r.allAddrs(), i, i,
			int64(shards)*64*testChunk, testChunk, benefactor.NewMem(), 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		r.bens = append(r.bens, bs)
		t.Cleanup(func() { bs.Close() })
	}
	return r
}

// nameOn returns a file name the n-shard map routes to the given shard.
func nameOn(t testing.TB, prefix string, shard, n int) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		if shardmap.ShardFor(name, n) == shard {
			return name
		}
	}
	t.Fatalf("no %q-prefixed name routes to shard %d/%d", prefix, shard, n)
	return ""
}

// checkShardInvariants asserts every shard's refcount bookkeeping holds.
func checkShardInvariants(t *testing.T, r *shardRig) {
	t.Helper()
	for i, ms := range r.mgrs {
		ms.mu.Lock()
		err := ms.mgr.CheckInvariants()
		ms.mu.Unlock()
		if err != nil {
			t.Fatalf("shard %d invariants: %v", i, err)
		}
	}
}

func TestShardedPutGetBothShards(t *testing.T) {
	r := newShardRig(t, 2, 3, ManagerConfig{})
	st, err := OpenWith(r.allAddrs(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.nShards(); got != 2 {
		t.Fatalf("client knows %d shards, want 2", got)
	}
	// One variable per shard; both must round-trip, and each shard's file
	// table must hold exactly its own.
	names := []string{nameOn(t, "a", 0, 2), nameOn(t, "b", 1, 2)}
	payloads := make(map[string][]byte)
	for i, name := range names {
		data := bytes.Repeat([]byte{byte('A' + i)}, 2*testChunk+777)
		payloads[name] = data
		if err := st.Put(name, data); err != nil {
			t.Fatalf("put %q: %v", name, err)
		}
	}
	for _, name := range names {
		got, err := st.Get(name)
		if err != nil {
			t.Fatalf("get %q: %v", name, err)
		}
		if !bytes.Equal(got, payloads[name]) {
			t.Fatalf("round trip mismatch for %q", name)
		}
	}
	for i, ms := range r.mgrs {
		ms.mu.Lock()
		files := ms.mgr.Files()
		ms.mu.Unlock()
		if len(files) != 1 || files[0] != names[i] {
			t.Fatalf("shard %d file table %v, want [%s]", i, files, names[i])
		}
	}
	// Chunk IDs are minted striped: every chunk of shard i's file must be
	// owned by shard i.
	for i, name := range names {
		fi, err := st.Stat(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range fi.Chunks {
			if owner := int((uint64(c.ID) - 1) % 2); owner != i {
				t.Fatalf("chunk %v of %q owned by shard %d, want %d", c, name, owner, i)
			}
		}
	}
	// Merged status sums the per-shard capacity splits back to the device
	// totals.
	bens, err := st.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(bens) != 3 {
		t.Fatalf("merged status has %d benefactors, want 3", len(bens))
	}
	for _, b := range bens {
		if b.Capacity != 2*64*testChunk {
			t.Fatalf("merged capacity %d for benefactor %d, want %d", b.Capacity, b.ID, 2*64*testChunk)
		}
		if !b.Alive {
			t.Fatalf("benefactor %d dead in merged status", b.ID)
		}
	}
	for _, name := range names {
		if err := st.Delete(name); err != nil {
			t.Fatal(err)
		}
	}
	checkShardInvariants(t, r)
}

func TestShardMapDiscoveryFromOneAddress(t *testing.T) {
	r := newShardRig(t, 2, 3, ManagerConfig{})
	// Connect with ONLY shard 0's address: the first response piggybacks
	// the peer roster and the client dials shard 1 on demand.
	st, err := OpenWith(r.addrs[0], fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.nShards(); got != 2 {
		t.Fatalf("client discovered %d shards, want 2", got)
	}
	name := nameOn(t, "remote", 1, 2)
	data := bytes.Repeat([]byte("x"), testChunk+13)
	if err := st.Put(name, data); err != nil {
		t.Fatalf("put to undialed shard: %v", err)
	}
	got, err := st.Get(name)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get from discovered shard: err=%v match=%v", err, bytes.Equal(got, data))
	}
	r.mgrs[1].mu.Lock()
	files := r.mgrs[1].mgr.Files()
	r.mgrs[1].mu.Unlock()
	if len(files) != 1 || files[0] != name {
		t.Fatalf("shard 1 file table %v, want [%s]", files, name)
	}
}

func TestStaleEpochRetriesOnce(t *testing.T) {
	r := newShardRig(t, 2, 2, ManagerConfig{})
	st, err := OpenWith(r.allAddrs(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	name := nameOn(t, "v", 0, 2)
	if err := st.Create(name, testChunk); err != nil {
		t.Fatal(err)
	}
	// Bump shard 0's epoch behind the client's back: a raw legacy-style
	// registration (MapEpoch 0 is never fenced) of a fresh benefactor.
	mc, err := DialManager(r.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	if err := mc.Register(99, 9, "127.0.0.1:1", 64*testChunk); err != nil {
		t.Fatal(err)
	}
	before := st.Stats().MapRetries
	// The client's next op on shard 0 carries the stale epoch, gets fenced,
	// installs the piggybacked map, and succeeds on the single retry.
	if _, err := st.Stat(name); err != nil {
		t.Fatalf("stat after epoch bump: %v", err)
	}
	if after := st.Stats().MapRetries; after <= before {
		t.Fatalf("map retries %d -> %d, want an ErrStaleShardMap retry", before, after)
	}
}

// TestCrossShardLinkDeriveRemapDelete walks the client-orchestrated
// cross-shard refcount protocol end to end over TCP: a checkpoint on one
// shard links variables from both shards, a restore derives back across
// shards, a copy-on-write remap localizes a foreign chunk, and the final
// deletes drain every chunk on every shard.
func TestCrossShardLinkDeriveRemapDelete(t *testing.T) {
	r := newShardRig(t, 2, 3, ManagerConfig{})
	st, err := OpenWith(r.allAddrs(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	v0 := nameOn(t, "var-a", 0, 2) // variable on shard 0
	v1 := nameOn(t, "var-b", 1, 2) // variable on shard 1
	ck := nameOn(t, "ckpt", 1, 2)  // checkpoint on shard 1
	// Link concatenates chunk lists, so parts must be chunk-aligned.
	d0 := bytes.Repeat([]byte{0xA0}, 3*testChunk)
	d1 := bytes.Repeat([]byte{0xB1}, 2*testChunk)
	if err := st.Put(v0, d0); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(v1, d1); err != nil {
		t.Fatal(err)
	}
	if err := st.Create(ck, 0); err != nil {
		t.Fatal(err)
	}
	// Cross-shard zero-copy merge: ck (shard 1) links v0 (shard 0) and v1
	// (shard 1) without moving a byte.
	ckInfo, err := st.Link(ck, []string{v0, v1})
	if err != nil {
		t.Fatalf("cross-shard link: %v", err)
	}
	want := append(append([]byte(nil), d0...), d1...)
	if ckInfo.Size != int64(len(d0))+int64(len(d1)) {
		t.Fatalf("checkpoint size %d, want %d", ckInfo.Size, len(d0)+len(d1))
	}
	got, err := st.Get(ck)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("checkpoint read mismatch after cross-shard link")
	}
	checkShardInvariants(t, r)

	// The variables die; the checkpoint's holds keep the chunks alive.
	if err := st.Delete(v0); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(v1); err != nil {
		t.Fatal(err)
	}
	got, err = st.Get(ck)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("checkpoint lost data after variable deletes: err=%v", err)
	}
	checkShardInvariants(t, r)

	// Cross-shard restore: a fresh variable on shard 0 derives the whole
	// checkpoint (src shard 1), sharing chunks owned by both shards.
	restored := nameOn(t, "restored", 0, 2)
	nChunks := len(ckInfo.Chunks)
	if _, err := st.Derive(restored, ck, 0, nChunks, ckInfo.Size); err != nil {
		t.Fatalf("cross-shard derive: %v", err)
	}
	got, err = st.Get(restored)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("restored read mismatch: err=%v", err)
	}
	checkShardInvariants(t, r)

	// Copy-on-write on a chunk the restored file borrows from shard 1: the
	// remap copies onto a shard-0-owned chunk and releases the hold.
	ri, err := st.Stat(restored)
	if err != nil {
		t.Fatal(err)
	}
	foreignIdx := -1
	for i, c := range ri.Chunks {
		if int((uint64(c.ID)-1)%2) == 1 {
			foreignIdx = i
			break
		}
	}
	if foreignIdx < 0 {
		t.Fatal("restored file borrowed no shard-1 chunk")
	}
	fresh, err := st.Remap(restored, foreignIdx)
	if err != nil {
		t.Fatalf("cross-shard remap: %v", err)
	}
	if owner := int((uint64(fresh[0].ID) - 1) % 2); owner != 0 {
		t.Fatalf("remapped chunk %v owned by shard %d, want 0 (localized)", fresh[0], owner)
	}
	// The server-side copy preserved the payload, and the checkpoint still
	// reads its own (unmodified) chunk.
	got, err = st.Get(restored)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("restored read after remap: err=%v", err)
	}
	patch := []byte("PATCHED")
	off := int64(foreignIdx) * testChunk
	if err := st.WriteAt(restored, off, patch); err != nil {
		t.Fatal(err)
	}
	got, err = st.Get(ck)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("checkpoint changed under a remapped write: err=%v", err)
	}
	checkShardInvariants(t, r)

	// Teardown drains both shards completely.
	if err := st.Delete(restored); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(ck); err != nil {
		t.Fatal(err)
	}
	for i, ms := range r.mgrs {
		ms.mu.Lock()
		n := ms.mgr.TotalChunks()
		ms.mu.Unlock()
		if n != 0 {
			t.Fatalf("shard %d leaked %d chunks", i, n)
		}
	}
	checkShardInvariants(t, r)
}

// TestShardKillOneSurvivorServes kills one manager shard and proves the
// other shard's keyspace stays fully readable and writable while the dead
// shard's names fail fast.
func TestShardKillOneSurvivorServes(t *testing.T) {
	r := newShardRig(t, 2, 3, ManagerConfig{})
	st, err := OpenWith(r.allAddrs(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	alive := nameOn(t, "alive", 0, 2)
	doomed := nameOn(t, "doomed", 1, 2)
	dataA := bytes.Repeat([]byte("A"), testChunk+9)
	dataD := bytes.Repeat([]byte("D"), testChunk+9)
	if err := st.Put(alive, dataA); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(doomed, dataD); err != nil {
		t.Fatal(err)
	}

	r.mgrs[1].Close() // shard 1 dies

	// The surviving shard's keyspace is fully live: reads, in-place
	// writes, fresh creates, deletes.
	got, err := st.Get(alive)
	if err != nil || !bytes.Equal(got, dataA) {
		t.Fatalf("read on surviving shard: err=%v", err)
	}
	if err := st.WriteAt(alive, 3, []byte("patch")); err != nil {
		t.Fatalf("write on surviving shard: %v", err)
	}
	alive2 := nameOn(t, "alive-two", 0, 2)
	if err := st.Put(alive2, dataA); err != nil {
		t.Fatalf("create on surviving shard: %v", err)
	}
	if err := st.Delete(alive2); err != nil {
		t.Fatalf("delete on surviving shard: %v", err)
	}
	// The dead shard's names fail with a transport error, not a hang and
	// not silent data loss. (Cached chunk maps still serve reads — only
	// metadata ops need the shard.)
	if _, err := st.Stat(doomed); err == nil {
		t.Fatal("stat of dead shard's name should fail")
	}
	// Refresh tolerates the dead shard (merged view from survivors).
	if err := st.Refresh(); err != nil {
		t.Fatalf("refresh with one shard down: %v", err)
	}
}

// TestShardRejoinFenceBlocksStaleReads is the §9-closure regression over
// TCP: a benefactor partitioned away (marked dead) misses a write; on
// rejoin the manager fences its pre-partition replica claims and the
// benefactor tombstones them BEFORE serving, so no client — even one with
// a stale cached chunk map — can ever read the written-around payload.
func TestShardRejoinFenceBlocksStaleReads(t *testing.T) {
	// Replication 2 over 3 benefactors on a single shard (epoch fencing
	// guards unsharded deployments too). A long heartbeat keeps the rejoin
	// out of the partition window.
	ms, err := NewManagerServerWith("127.0.0.1:0", testChunk, manager.RoundRobin,
		ManagerConfig{Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	var bens []*BenefactorServer
	for i := 0; i < 3; i++ {
		bs, err := NewBenefactorServer("127.0.0.1:0", ms.Addr(), i, i, 64*testChunk, testChunk,
			benefactor.NewMem(), 250*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		bens = append(bens, bs)
		defer bs.Close()
	}
	st, err := OpenWith(ms.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	old := bytes.Repeat([]byte("STALE"), testChunk/5)
	fresh := bytes.Repeat([]byte("FRESH"), testChunk/5)
	if err := st.Put("v", old); err != nil {
		t.Fatal(err)
	}
	// Partition benefactor 0 (operator fence) and write around it.
	if err := st.Manager().MarkDead(0); err != nil {
		t.Fatal(err)
	}
	if err := st.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteAt("v", 0, fresh); err != nil {
		t.Fatal(err)
	}
	if st.Stats().DegradedWrites == 0 {
		// Benefactor 0 held no copy of chunk 0; place the write window on a
		// chunk it does replicate. (RoundRobin over 3 bens with R=2: chunk 0
		// lands on bens 0+1, so this should not happen — fail loudly.)
		t.Fatal("write was not degraded; partition window missed benefactor 0")
	}
	// Let the benefactor's next heartbeat discover the death and rejoin:
	// Register fences its claims, the fence-list is tombstoned locally.
	deadline := time.Now().Add(5 * time.Second)
	for {
		bensNow, err := st.Manager().Status()
		if err != nil {
			t.Fatal(err)
		}
		if bensNow[0].Alive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("benefactor 0 never rejoined")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := st.Refresh(); err != nil {
		t.Fatal(err)
	}
	// The client still holds the pre-partition chunk map whose primary may
	// be benefactor 0. The read must fail over / re-lookup to the fresh
	// payload — never return the stale bytes benefactor 0 held.
	buf := make([]byte, len(fresh))
	if err := st.ReadAt("v", 0, buf); err != nil {
		t.Fatalf("read after rejoin: %v", err)
	}
	if bytes.Equal(buf, old) {
		t.Fatal("read returned the written-around (stale) payload: fence failed")
	}
	if !bytes.Equal(buf, fresh) {
		t.Fatalf("read returned neither payload: %q", buf[:16])
	}
	// A cold client (no cache at all) agrees.
	st2, err := OpenWith(ms.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.Get("v")
	if err != nil || !bytes.Equal(got, fresh) {
		t.Fatalf("cold client read: err=%v stale=%v", err, bytes.Equal(got, old))
	}
	// The fenced benefactor's claims are gone from the fresh map.
	fi, err := st2.Stat("v")
	if err != nil {
		t.Fatal(err)
	}
	for i, reps := range fi.Replicas {
		for _, c := range reps {
			if c.Benefactor == 0 {
				t.Fatalf("chunk %d still lists fenced benefactor 0: %v", i, reps)
			}
		}
	}
}

// TestReleaseRefsReplayTolerated pins the lenient release semantics the
// client's best-effort cleanup depends on: releasing refs that were never
// held (or replaying a release) must not error or corrupt accounting.
func TestReleaseRefsReplayTolerated(t *testing.T) {
	r := newShardRig(t, 2, 2, ManagerConfig{})
	st, err := OpenWith(r.allAddrs(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	name := nameOn(t, "f", 0, 2)
	if err := st.Put(name, bytes.Repeat([]byte("x"), testChunk)); err != nil {
		t.Fatal(err)
	}
	fi, err := st.Stat(name)
	if err != nil {
		t.Fatal(err)
	}
	ids := []proto.ChunkID{fi.Chunks[0].ID, 424242}
	if _, err := st.callShard(0, proto.ManagerReq{Op: proto.OpReleaseRefs, IDs: ids}); err != nil {
		t.Fatalf("blind release errored: %v", err)
	}
	got, err := st.Get(name)
	if err != nil || len(got) != testChunk {
		t.Fatalf("file damaged by blind release: err=%v", err)
	}
	checkShardInvariants(t, r)
	// Retain against the wrong shard must fail whole (no partial bumps).
	wrongOwner := []proto.ChunkID{fi.Chunks[0].ID}
	if _, err := st.callShard(1, proto.ManagerReq{Op: proto.OpRetainRefs, IDs: wrongOwner}); !errors.Is(err, proto.ErrNoSuchChunk) {
		t.Fatalf("retain at non-owner: %v, want ErrNoSuchChunk", err)
	}
	checkShardInvariants(t, r)
}
