package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"nvmalloc/internal/benefactor"
	"nvmalloc/internal/manager"
	"nvmalloc/internal/proto"
)

// faultRig is a replicated manager plus n benefactors whose backends are
// individually addressable for fault injection.
type faultRig struct {
	mgr      *ManagerServer
	bens     []*BenefactorServer
	backends []*FlakyBackend
}

func newFaultRig(t testing.TB, n int, cfg ManagerConfig) *faultRig {
	t.Helper()
	ms, err := NewManagerServerWith("127.0.0.1:0", testChunk, manager.RoundRobin, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := &faultRig{mgr: ms}
	t.Cleanup(func() { ms.Close() })
	for i := 0; i < n; i++ {
		fb := NewFlakyBackend(benefactor.NewMem())
		bs, err := NewBenefactorServer("127.0.0.1:0", ms.Addr(), i, i, 256*testChunk, testChunk, fb, 25*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		r.bens = append(r.bens, bs)
		r.backends = append(r.backends, fb)
		t.Cleanup(func() { bs.Close() })
	}
	return r
}

// fastOpts keeps retry bursts and deadlines short enough for tests.
func fastOpts() Options {
	return Options{
		CallTimeout:   500 * time.Millisecond,
		DialTimeout:   time.Second,
		Retry:         RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		SuspectWindow: time.Second,
	}
}

// pattern builds a deterministic payload distinguishable per file.
func pattern(seed byte, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = seed ^ byte(i%251)
	}
	return b
}

// TestReplicaFailoverMidWorkload is the headline fault drill: one of three
// benefactors dies while readers hammer replicated files. Every read must
// keep returning correct bytes (served by the surviving replica), the
// failovers must show up in Stats, and a repair pass must restore full
// replica count.
func TestReplicaFailoverMidWorkload(t *testing.T) {
	r := newFaultRig(t, 3, ManagerConfig{
		Replication:      2,
		HeartbeatTimeout: 500 * time.Millisecond,
		SweepInterval:    50 * time.Millisecond,
	})
	st, err := OpenWith(r.mgr.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const nFiles, fileSize = 6, 4 * testChunk
	for i := 0; i < nFiles; i++ {
		if err := st.Put(fmt.Sprintf("f%d", i), pattern(byte(i+1), fileSize)); err != nil {
			t.Fatal(err)
		}
	}

	var (
		wg       sync.WaitGroup
		errsMu   sync.Mutex
		workErrs []error
	)
	stopReaders := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, testChunk)
			for i := 0; ; i++ {
				select {
				case <-stopReaders:
					return
				default:
				}
				fi := (w + i) % nFiles
				off := int64(i%4) * testChunk
				if err := st.ReadAt(fmt.Sprintf("f%d", fi), off, buf); err != nil {
					errsMu.Lock()
					workErrs = append(workErrs, fmt.Errorf("read f%d@%d: %w", fi, off, err))
					errsMu.Unlock()
					return
				}
				want := pattern(byte(fi+1), fileSize)[off : off+testChunk]
				if !bytes.Equal(buf, want) {
					errsMu.Lock()
					workErrs = append(workErrs, fmt.Errorf("CORRUPTION f%d@%d", fi, off))
					errsMu.Unlock()
					return
				}
			}
		}(w)
	}

	// Let the workload warm up, then kill benefactor 0 mid-flight.
	time.Sleep(100 * time.Millisecond)
	r.bens[0].Close()
	if err := st.Manager().MarkDead(0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	close(stopReaders)
	wg.Wait()
	for _, e := range workErrs {
		t.Error(e)
	}
	if t.Failed() {
		t.FailNow()
	}
	if fo := st.Stats().Failovers; fo == 0 {
		t.Fatal("no failovers recorded despite a dead benefactor")
	}

	// Repair restores full replica count onto the survivors.
	res, err := st.Manager().Repair()
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || len(res.Lost) != 0 {
		t.Fatalf("repair: %+v", res)
	}
	if res.UnderReplicated != 0 {
		t.Fatalf("still %d under-replicated chunks after repair", res.UnderReplicated)
	}
	if res.Repaired == 0 {
		t.Fatal("repair restored nothing; expected re-replication of benefactor 0's chunks")
	}
	for i := 0; i < nFiles; i++ {
		got, err := st.Get(fmt.Sprintf("f%d", i))
		if err != nil {
			t.Fatalf("post-repair read f%d: %v", i, err)
		}
		if !bytes.Equal(got, pattern(byte(i+1), fileSize)) {
			t.Fatalf("post-repair corruption in f%d", i)
		}
	}
}

// TestRepairRestoresReplicaCount proves repaired copies are real payloads: a
// second benefactor death after repair must not lose any byte.
func TestRepairRestoresReplicaCount(t *testing.T) {
	r := newFaultRig(t, 3, ManagerConfig{Replication: 2, SweepInterval: -1})
	st, err := OpenWith(r.mgr.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	payload := pattern(9, 8*testChunk)
	if err := st.Put("data", payload); err != nil {
		t.Fatal(err)
	}

	r.bens[0].Close()
	if err := st.Manager().MarkDead(0); err != nil {
		t.Fatal(err)
	}
	res, err := st.Manager().Repair()
	if err != nil {
		t.Fatal(err)
	}
	if res.UnderReplicated != 0 || res.Failed != 0 || len(res.Lost) != 0 {
		t.Fatalf("repair: %+v", res)
	}

	// After repair every chunk lives on benefactors 1 and 2; losing 1 as
	// well must leave a full copy on 2.
	r.bens[1].Close()
	if err := st.Manager().MarkDead(1); err != nil {
		t.Fatal(err)
	}
	if err := st.Refresh(); err != nil {
		t.Fatal(err)
	}
	st.invalidateMeta("data") // pick up the repaired replica table
	got, err := st.Get("data")
	if err != nil {
		t.Fatalf("read after second death: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data corrupted after second benefactor death")
	}
}

// TestHeartbeatExpiryExcludesBenefactor exercises the server's own clock
// tick: a benefactor that stops heartbeating (its listener stays up — a
// partitioned node, not a crashed one) is swept dead without any client
// polling, new allocations avoid it, and its chunks report under-replicated.
func TestHeartbeatExpiryExcludesBenefactor(t *testing.T) {
	r := newFaultRig(t, 3, ManagerConfig{
		Replication:      2,
		HeartbeatTimeout: 150 * time.Millisecond,
		SweepInterval:    25 * time.Millisecond,
	})
	st, err := OpenWith(r.mgr.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Put("pre", pattern(3, 6*testChunk)); err != nil {
		t.Fatal(err)
	}

	r.bens[0].StopHeartbeat() // silent, but still serving
	deadline := time.Now().Add(3 * time.Second)
	for {
		bens, err := st.Manager().Status()
		if err != nil {
			t.Fatal(err)
		}
		dead := false
		for _, b := range bens {
			if b.ID == 0 && !b.Alive {
				dead = true
			}
		}
		if dead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("benefactor 0 never swept dead after heartbeats stopped")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The dead benefactor's chunks are now under-replicated.
	resp, err := st.Manager().call(proto.ManagerReq{Op: proto.OpStatus})
	if err != nil {
		t.Fatal(err)
	}
	if resp.UnderReplicated == 0 {
		t.Fatal("no under-replication reported after a replica holder died")
	}

	// New allocations steer clear of the dead benefactor.
	if err := st.Put("post", pattern(4, 6*testChunk)); err != nil {
		t.Fatal(err)
	}
	fi, err := st.Stat("post")
	if err != nil {
		t.Fatal(err)
	}
	for i, ref := range fi.Chunks {
		if ref.Benefactor == 0 {
			t.Fatalf("chunk %d placed on dead benefactor 0", i)
		}
		for _, rep := range replicaRefs(fi, i) {
			if rep.Benefactor == 0 {
				t.Fatalf("replica of chunk %d placed on dead benefactor 0", i)
			}
		}
	}
}

// TestRetryRecoversFromReset injects a one-shot connection reset and a torn
// write: each costs one retry, not a failed read.
func TestRetryRecoversFromReset(t *testing.T) {
	r := newFaultRig(t, 1, ManagerConfig{SweepInterval: -1})
	var ctl FaultController
	opts := fastOpts()
	opts.Dial = ctl.Dial
	st, err := OpenWith(r.mgr.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	payload := pattern(7, 2*testChunk)
	if err := st.Put("x", payload); err != nil {
		t.Fatal(err)
	}

	for _, mode := range []FaultMode{FaultReset, FaultPartialWrite} {
		before := st.Stats().Retries
		ctl.Set(mode, 0, 1)
		got, err := st.Get("x")
		ctl.Clear()
		if err != nil {
			t.Fatalf("mode %d: read failed despite retry budget: %v", mode, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("mode %d: corrupted read", mode)
		}
		if st.Stats().Retries <= before {
			t.Fatalf("mode %d: no retry recorded", mode)
		}
	}
}

// TestDeadlineBoundsBlackhole wedges the link: requests vanish, and the
// per-call deadline must convert the hang into a bounded transient error.
func TestDeadlineBoundsBlackhole(t *testing.T) {
	r := newFaultRig(t, 1, ManagerConfig{SweepInterval: -1})
	var ctl FaultController
	opts := fastOpts()
	opts.CallTimeout = 300 * time.Millisecond
	opts.Dial = ctl.Dial
	st, err := OpenWith(r.mgr.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	payload := pattern(5, testChunk)
	if err := st.Put("x", payload); err != nil {
		t.Fatal(err)
	}

	ctl.Set(FaultBlackhole, 0, -1)
	start := time.Now()
	_, err = st.Get("x")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("read succeeded through a black hole")
	}
	if !IsTransient(err) {
		t.Fatalf("blackhole error not transient: %v", err)
	}
	// Two attempts x 300ms deadline plus slack: the hang is bounded.
	if elapsed > 3*time.Second {
		t.Fatalf("blackholed read took %v; deadline not enforced", elapsed)
	}

	// The link heals; the next read redials and succeeds.
	ctl.Clear()
	got, err := st.Get("x")
	if err != nil {
		t.Fatalf("read after fault cleared: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("corrupted read after fault cleared")
	}
}

// TestFlakyBackendFailover fails the storage, not the network: a dying SSD
// behind a healthy NIC returns errors, and reads fail over to the replica.
func TestFlakyBackendFailover(t *testing.T) {
	r := newFaultRig(t, 2, ManagerConfig{Replication: 2, SweepInterval: -1})
	st, err := OpenWith(r.mgr.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	payload := pattern(6, 4*testChunk)
	if err := st.Put("x", payload); err != nil {
		t.Fatal(err)
	}

	r.backends[0].FailGets(-1)
	defer r.backends[0].FailGets(0)
	got, err := st.Get("x")
	if err != nil {
		t.Fatalf("read with flaky backend: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("corrupted read with flaky backend")
	}
	if st.Stats().Failovers == 0 {
		t.Fatal("no failover recorded; primary replicas on benefactor 0 should have failed")
	}
}

// TestDegradedWriteReported writes with one replica holder down: the write
// lands on the survivor, is reported degraded, and reads back intact.
func TestDegradedWriteReported(t *testing.T) {
	r := newFaultRig(t, 2, ManagerConfig{Replication: 2, SweepInterval: -1})
	st, err := OpenWith(r.mgr.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	payload := pattern(8, 2*testChunk)
	if err := st.Put("x", payload); err != nil {
		t.Fatal(err)
	}

	r.bens[1].Close()
	if err := st.Manager().MarkDead(1); err != nil {
		t.Fatal(err)
	}
	if err := st.Refresh(); err != nil {
		t.Fatal(err)
	}
	update := pattern(11, testChunk)
	if err := st.WriteAt("x", 0, update); err != nil {
		t.Fatalf("degraded write failed outright: %v", err)
	}
	if st.Stats().DegradedWrites == 0 {
		t.Fatal("write reached fewer than all replicas but was not counted degraded")
	}
	buf := make([]byte, testChunk)
	if err := st.ReadAt("x", 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, update) {
		t.Fatal("degraded write lost")
	}
}

// TestServerCloseSeversConnections: pooled client connections to a closed
// benefactor must die with it, or tests (and operators) see a zombie.
func TestServerCloseSeversConnections(t *testing.T) {
	r := newFaultRig(t, 1, ManagerConfig{SweepInterval: -1})
	st, err := OpenWith(r.mgr.Addr(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Put("x", pattern(2, testChunk)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("x"); err != nil { // warm the pool
		t.Fatal(err)
	}
	r.bens[0].Close()
	if _, err := st.Get("x"); err == nil {
		t.Fatal("read succeeded against a closed benefactor")
	}
}

func TestBackoffBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}.withDefaults()
	for n := 1; n < 20; n++ {
		d := p.backoff(n)
		if d <= 0 {
			t.Fatalf("backoff(%d) = %v, want > 0", n, d)
		}
		if d > p.MaxDelay {
			t.Fatalf("backoff(%d) = %v exceeds cap %v", n, d, p.MaxDelay)
		}
	}
}

func TestReadOrderPrefersHealthyReplicas(t *testing.T) {
	s := &Store{
		opts:         Options{}.withDefaults(),
		benAlive:     map[int]bool{0: false, 1: true, 2: true},
		suspectUntil: map[int]time.Time{2: time.Now().Add(time.Minute)},
	}
	refs := []proto.ChunkRef{
		{ID: 1, Benefactor: 0}, // manager-dead: last
		{ID: 1, Benefactor: 2}, // suspect: middle
		{ID: 1, Benefactor: 1}, // healthy: first
	}
	got := s.readOrder(refs)
	want := []int{1, 2, 0}
	for i, ref := range got {
		if ref.Benefactor != want[i] {
			t.Fatalf("readOrder = %v, want benefactors %v", got, want)
		}
	}
	// Input order is preserved within a rank (primary first).
	same := []proto.ChunkRef{{ID: 1, Benefactor: 4}, {ID: 1, Benefactor: 5}}
	got = s.readOrder(same)
	if got[0].Benefactor != 4 || got[1].Benefactor != 5 {
		t.Fatalf("equal-rank order not stable: %v", got)
	}
}

func TestReplicaRefsFallsBackToPrimary(t *testing.T) {
	fi := proto.FileInfo{
		Chunks:   []proto.ChunkRef{{ID: 10, Benefactor: 0}, {ID: 11, Benefactor: 1}},
		Replicas: [][]proto.ChunkRef{{{ID: 10, Benefactor: 0}, {ID: 10, Benefactor: 2}}},
	}
	if refs := replicaRefs(fi, 0); len(refs) != 2 {
		t.Fatalf("replicated chunk returned %d refs", len(refs))
	}
	refs := replicaRefs(fi, 1)
	if len(refs) != 1 || refs[0].ID != 11 {
		t.Fatalf("unreplicated chunk fallback = %v", refs)
	}
}

func TestRetryableOpWhitelist(t *testing.T) {
	for _, op := range []proto.Op{proto.OpLookup, proto.OpStatus, proto.OpRepair, proto.OpBeat} {
		if !retryableOp(op) {
			t.Fatalf("%s should be retryable (idempotent)", op)
		}
	}
	for _, op := range []proto.Op{proto.OpCreate, proto.OpDelete, proto.OpLink, proto.OpRemap, proto.OpDerive} {
		if retryableOp(op) {
			t.Fatalf("%s must not be retried: at-least-once would break its semantics", op)
		}
	}
}

func TestTransientClassification(t *testing.T) {
	if IsTransient(proto.ErrNoSuchChunk) {
		t.Fatal("sentinel errors are terminal, not transient")
	}
	err := transient(errors.New("connection reset"))
	if !IsTransient(err) {
		t.Fatal("wrapped transport error not recognized")
	}
	if !IsTransient(fmt.Errorf("call failed: %w", err)) {
		t.Fatal("transience lost through wrapping")
	}
}
