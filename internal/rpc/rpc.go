// Package rpc runs the aggregate NVM store over real TCP: the same
// manager and benefactor logic the simulation uses (internal/manager,
// internal/benefactor) served with gob-encoded request/response envelopes
// (internal/proto). cmd/nvmstore wraps the servers as daemons and
// cmd/nvmctl is a client; examples/realstore drives the whole stack
// in-process.
//
// Chunks live as individual files under the benefactor's directory — the
// "chunks as individual files" layout of paper §III-D — standing in for
// the node-local SSD.
package rpc

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"nvmalloc/internal/benefactor"
	"nvmalloc/internal/manager"
	"nvmalloc/internal/obs"
	"nvmalloc/internal/proto"
	"nvmalloc/internal/shardmap"
)

// FileBackend stores chunk payloads as files in a directory.
type FileBackend struct {
	dir string
	// arena, when set (SetArena), pools the per-chunk read buffer: Get
	// leases from it instead of allocating per call, and leases come back
	// via Recycle once the server has written the response. Nil falls back
	// to plain allocation.
	arena *proto.Arena
	// Device-level metrics (nil until SetObs): actual bytes moved to and
	// from the backing files, and the time each transfer took. These sit a
	// layer below the benefactor's RPC counters — the gap between them is
	// read-modify-write amplification.
	readBytes, writeBytes *obs.Counter
	readLat, writeLat     *obs.Histogram
}

// NewFileBackend creates (if needed) and uses dir for chunk files.
func NewFileBackend(dir string) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FileBackend{dir: dir}, nil
}

// SetObs attaches device-level metrics (ssd.read_bytes, ssd.write_bytes,
// ssd.read.latency, ssd.write.latency) to the backend. Call before serving.
func (f *FileBackend) SetObs(o *obs.Obs) {
	f.readBytes = o.Reg.Counter("ssd.read_bytes")
	f.writeBytes = o.Reg.Counter("ssd.write_bytes")
	f.readLat = o.Reg.Histogram("ssd.read.latency")
	f.writeLat = o.Reg.Histogram("ssd.write.latency")
}

// SetArena attaches a chunk-geometry buffer arena; Get then leases its
// result buffers from it instead of allocating. Call before serving.
func (f *FileBackend) SetArena(a *proto.Arena) { f.arena = a }

// RetainsPut implements benefactor.BufferPolicy: Put persists the bytes
// before returning and keeps no reference, so callers' buffers go straight
// through without a defensive copy.
func (f *FileBackend) RetainsPut() bool { return false }

// PrivateGet implements benefactor.BufferPolicy: Get returns a fresh (or
// arena-leased) buffer the caller owns outright.
func (f *FileBackend) PrivateGet() bool { return true }

// Recycle implements benefactor.Recycler: a finished Get buffer returns to
// the arena (no-op without one).
func (f *FileBackend) Recycle(b []byte) { f.arena.Put(b) }

func (f *FileBackend) path(id proto.ChunkID) string {
	return filepath.Join(f.dir, fmt.Sprintf("chunk-%016x", uint64(id)))
}

// Put implements benefactor.Backend. The payload lands in a temp file in
// the same directory and is renamed into place, so a benefactor that
// crashes mid-write never leaves a torn chunk behind: readers observe
// either the whole old payload or the whole new one.
func (f *FileBackend) Put(id proto.ChunkID, data []byte) error {
	start := time.Now()
	defer func() {
		f.writeLat.Observe(time.Since(start))
		f.writeBytes.Add(int64(len(data)))
	}()
	tmp, err := os.CreateTemp(f.dir, fmt.Sprintf("chunk-%016x.tmp-*", uint64(id)))
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), f.path(id)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Get implements benefactor.Backend. With an arena attached the result is
// a pooled lease (returned later via Recycle); without one it is a plain
// per-call allocation.
func (f *FileBackend) Get(id proto.ChunkID) ([]byte, error) {
	start := time.Now()
	d, err := f.readChunk(id)
	f.readLat.Observe(time.Since(start))
	if os.IsNotExist(err) {
		return nil, proto.ErrNoSuchChunk
	}
	f.readBytes.Add(int64(len(d)))
	return d, err
}

func (f *FileBackend) readChunk(id proto.ChunkID) ([]byte, error) {
	if f.arena == nil {
		return os.ReadFile(f.path(id))
	}
	fh, err := os.Open(f.path(id))
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	st, err := fh.Stat()
	if err != nil {
		return nil, err
	}
	buf := f.arena.Get(int(st.Size()))
	if _, err := io.ReadFull(fh, buf); err != nil {
		f.arena.Put(buf)
		return nil, err
	}
	return buf, nil
}

// Delete implements benefactor.Backend.
func (f *FileBackend) Delete(id proto.ChunkID) error {
	err := os.Remove(f.path(id))
	if os.IsNotExist(err) {
		return proto.ErrNoSuchChunk
	}
	return err
}

// Has implements benefactor.Backend.
func (f *FileBackend) Has(id proto.ChunkID) bool {
	_, err := os.Stat(f.path(id))
	return err == nil
}

// connSet tracks a server's accepted connections so Close can sever them.
// Killing a server must kill its in-flight conversations too — otherwise
// clients already pooled onto it would never observe the death.
type connSet struct {
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

func newConnSet() *connSet { return &connSet{conns: make(map[net.Conn]struct{})} }

func (cs *connSet) add(c net.Conn) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.closed {
		return false
	}
	cs.conns[c] = struct{}{}
	return true
}

func (cs *connSet) remove(c net.Conn) {
	cs.mu.Lock()
	delete(cs.conns, c)
	cs.mu.Unlock()
}

func (cs *connSet) closeAll() {
	cs.mu.Lock()
	cs.closed = true
	for c := range cs.conns {
		c.Close()
	}
	cs.conns = nil
	cs.mu.Unlock()
}

// serve accepts connections and runs each on its own goroutine.
func serve(l net.Listener, cs *connSet, handleConn func(conn net.Conn)) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		if !cs.add(conn) {
			conn.Close()
			return
		}
		go func() {
			defer cs.remove(conn)
			defer conn.Close()
			handleConn(conn)
		}()
	}
}

// serveGob runs one connection's request loop over the legacy gob
// envelopes until the peer disconnects or the stream breaks.
func serveGob(conn net.Conn, br *bufio.Reader, handle func(dec *gob.Decoder, enc *gob.Encoder) error) {
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(conn)
	for {
		if err := handle(dec, enc); err != nil {
			return
		}
	}
}

func errStr(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// wireErr maps a response error string back to a sentinel where possible.
func wireErr(s string) error {
	if s == "" {
		return nil
	}
	for _, sentinel := range []error{
		proto.ErrNoSuchFile, proto.ErrFileExists, proto.ErrNoSpace,
		proto.ErrNoSuchChunk, proto.ErrBenefactorDead, proto.ErrNoBenefactors,
		proto.ErrChunkOutOfRange, proto.ErrStaleShardMap,
	} {
		if s == sentinel.Error() {
			return sentinel
		}
		// Servers wrap sentinels with context ("%w: detail"); keep the
		// detail but restore the sentinel for errors.Is across the wire.
		if rest, ok := strings.CutPrefix(s, sentinel.Error()+":"); ok {
			return fmt.Errorf("%w:%s", sentinel, rest)
		}
	}
	return fmt.Errorf("%s", s)
}

// ManagerConfig tunes a ManagerServer beyond the chunk geometry.
type ManagerConfig struct {
	// Replication is the number of copies kept of each chunk (1 = the
	// paper's unreplicated baseline). Copies land on distinct benefactors.
	Replication int
	// HeartbeatTimeout is how stale a benefactor's heartbeat may be before
	// the sweep declares it dead. 0 keeps the manager default (5s).
	HeartbeatTimeout time.Duration
	// SweepInterval is the server's clock tick for the death sweep; every
	// tick marks benefactors with expired heartbeats dead, so failover and
	// placement react even when no client polls Status. 0 derives half the
	// heartbeat timeout; negative disables the tick.
	SweepInterval time.Duration
	// DebugAddr, when non-empty, serves the manager's observability state
	// over HTTP (/metrics, /healthz, /trace, /debug/pprof) on that address.
	DebugAddr string
	// Obs receives the manager's metrics and events. Nil gets a fresh
	// obs.New("manager"); obs.Disabled() silences instrumentation.
	Obs *obs.Obs
	// Monitor configures continuous self-monitoring on the server's Obs:
	// periodic registry sampling into a bounded time series, and alert
	// rules whose firing state degrades /healthz from 200 to 503. The
	// zero value disables it.
	Monitor obs.MonitorConfig
	// ShardIndex/ShardCount place this manager in an N-shard metadata
	// plane (§16): it owns the variable names shardmap.ShardFor routes to
	// ShardIndex and mints chunk IDs congruent to ShardIndex+1 mod
	// ShardCount. ShardCount <= 1 is the unsharded default.
	ShardIndex int
	ShardCount int
	// Peers lists every shard's manager address, indexed by shard, so
	// clients learn the whole plane from any one shard's responses. May be
	// empty (clients then dial only the addresses they were given).
	Peers []string
	// Incidents configures the on-disk incident recorder: when Dir is
	// non-empty, every alert rule's pending→firing edge (and the
	// /incidents/capture debug endpoint) snapshots a diagnostic bundle
	// there. The zero value disables it.
	Incidents obs.IncidentConfig
}

// managerMetrics holds the manager server's registry handles, looked up
// once at startup.
type managerMetrics struct {
	opLat      map[proto.Op]*obs.Histogram
	underRepl  *obs.Gauge // chunks short of the replica target (refreshed per sweep/Status)
	maxBeatAge *obs.Gauge // stalest live heartbeat in nanos (refreshed per sweep/Status)
	liveBens   *obs.Gauge
	usedBytes  *obs.Gauge // live benefactors' occupancy (refreshed per sweep)
	capBytes   *obs.Gauge
	deaths     *obs.Counter
	repaired   *obs.Counter
	repairFail *obs.Counter
}

var managerOps = []proto.Op{
	proto.OpRegister, proto.OpBeat, proto.OpCreate, proto.OpLookup,
	proto.OpDelete, proto.OpLink, proto.OpDerive, proto.OpSetTTL,
	proto.OpExpire, proto.OpRemap, proto.OpStatus, proto.OpMarkDead,
	proto.OpRepair, proto.OpReportSpans,
	proto.OpExportRange, proto.OpRetainRefs, proto.OpLinkRefs, proto.OpReleaseRefs,
}

func newManagerMetrics(o *obs.Obs) managerMetrics {
	m := managerMetrics{
		opLat:      make(map[proto.Op]*obs.Histogram, len(managerOps)),
		underRepl:  o.Reg.Gauge("manager.under_replicated"),
		maxBeatAge: o.Reg.Gauge("manager.max_beat_age_nanos"),
		liveBens:   o.Reg.Gauge("manager.live_benefactors"),
		usedBytes:  o.Reg.Gauge("manager.used_bytes"),
		capBytes:   o.Reg.Gauge("manager.capacity_bytes"),
		deaths:     o.Reg.Counter("manager.benefactor_deaths"),
		repaired:   o.Reg.Counter("manager.chunks_repaired"),
		repairFail: o.Reg.Counter("manager.repair_failures"),
	}
	for _, op := range managerOps {
		m.opLat[op] = o.Reg.Histogram(fmt.Sprintf("manager.op.%s.latency", op))
	}
	return m
}

// ManagerServer serves the metadata service over TCP.
type ManagerServer struct {
	mu  sync.Mutex
	mgr *manager.Manager
	l   net.Listener
	// benConns caches client connections to benefactors for server-driven
	// operations (chunk deletion, COW copies, repair).
	benConns  map[int]*chunkConn
	start     time.Time
	stop      chan struct{}
	conns     *connSet
	closeOnce sync.Once
	// arena leases payload buffers for server-driven chunk moves (COW
	// copies, repair) over binary-framed benefactor connections.
	arena *proto.Arena
	// peers is the shard address list stamped on every response so clients
	// discover the whole metadata plane from any one shard.
	peers []string

	obs *obs.Obs
	mm  managerMetrics
	dbg *obs.DebugServer
}

// NewManagerServer starts an unreplicated manager on addr (e.g.
// "127.0.0.1:0") with default fault-handling config.
func NewManagerServer(addr string, chunkSize int64, policy manager.PlacementPolicy) (*ManagerServer, error) {
	return NewManagerServerWith(addr, chunkSize, policy, ManagerConfig{})
}

// NewManagerServerWith starts a manager on addr with explicit replication
// and failure-detection settings.
func NewManagerServerWith(addr string, chunkSize int64, policy manager.PlacementPolicy, cfg ManagerConfig) (*ManagerServer, error) {
	if cfg.ShardCount > 1 {
		if cfg.ShardIndex < 0 || cfg.ShardIndex >= cfg.ShardCount {
			return nil, fmt.Errorf("rpc: shard %d/%d out of range", cfg.ShardIndex, cfg.ShardCount)
		}
		if len(cfg.Peers) != 0 && len(cfg.Peers) != cfg.ShardCount {
			return nil, fmt.Errorf("rpc: %d peer addresses for %d shards", len(cfg.Peers), cfg.ShardCount)
		}
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New("manager")
	}
	s := &ManagerServer{
		mgr:      manager.New(chunkSize, policy),
		l:        l,
		benConns: make(map[int]*chunkConn),
		start:    time.Now(),
		stop:     make(chan struct{}),
		conns:    newConnSet(),
		arena:    proto.NewArena(chunkSize),
		peers:    append([]string(nil), cfg.Peers...),
		obs:      cfg.Obs,
		mm:       newManagerMetrics(cfg.Obs),
	}
	if cfg.ShardCount > 1 {
		s.mgr.SetShard(cfg.ShardIndex, cfg.ShardCount)
	}
	if cfg.Replication > 1 {
		s.mgr.Replication = cfg.Replication
	}
	if cfg.HeartbeatTimeout > 0 {
		s.mgr.HeartbeatTimeout = cfg.HeartbeatTimeout
	}
	// Identity rides 503 healthz bodies and incident bundles: which
	// keyspace is degraded, under which membership epoch. Shard placement
	// is fixed at startup, but the epoch is live manager state, so the
	// provider takes the server lock.
	node := s.obs.Identity().Node
	idx, n := s.mgr.Shard()
	if n <= 1 {
		idx, n = 0, 1
	}
	s.obs.SetIdentityFunc(func() obs.Identity {
		s.mu.Lock()
		epoch := s.mgr.Epoch()
		s.mu.Unlock()
		return obs.Identity{Node: node, Shard: idx, NShards: n, Epoch: epoch}
	})
	if cfg.Incidents.Dir != "" {
		ir, err := obs.NewIncidentRecorder(s.obs, cfg.Incidents)
		if err != nil {
			l.Close()
			return nil, err
		}
		s.obs.SetIncidents(ir)
	}
	if cfg.DebugAddr != "" {
		dbg, err := obs.ServeDebug(cfg.DebugAddr, s.obs)
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("rpc: manager debug server: %w", err)
		}
		s.dbg = dbg
	}
	sweep := cfg.SweepInterval
	if sweep == 0 {
		sweep = s.mgr.HeartbeatTimeout / 2
	}
	if sweep > 0 {
		go s.sweepLoop(sweep)
	}
	s.obs.StartMonitor(cfg.Monitor)
	go serve(l, s.conns, s.serveConn)
	return s, nil
}

// serveConn runs one manager connection. Manager traffic is low-rate
// metadata, so it stays on gob envelopes; only the benefactor data path
// speaks NVM1 binary frames.
func (s *ManagerServer) serveConn(conn net.Conn) {
	serveGob(conn, bufio.NewReader(conn), s.handle)
}

// sweepLoop expires stale heartbeats on a clock tick, so benefactor death
// takes effect on the real path without waiting for a Status poll.
func (s *ManagerServer) sweepLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			s.sweepLocked()
			s.mu.Unlock()
		}
	}
}

// sweepLocked expires stale heartbeats and refreshes the liveness gauges
// (live benefactor count, stalest heartbeat age, under-replication
// backlog). Called with s.mu held.
func (s *ManagerServer) sweepLocked() {
	now := s.now()
	for _, id := range s.mgr.Sweep(now) {
		s.mm.deaths.Inc()
		s.obs.Event("manager", "death", "", fmt.Sprintf("benefactor %d heartbeat expired", id))
	}
	live, maxAge := 0, time.Duration(0)
	for _, b := range s.mgr.Status() {
		if !b.Alive {
			continue
		}
		live++
		if age, ok := s.mgr.BeatAge(b.ID, now); ok && age > maxAge {
			maxAge = age
		}
	}
	s.mm.liveBens.Set(int64(live))
	s.mm.maxBeatAge.Set(int64(maxAge))
	s.mm.underRepl.Set(int64(s.mgr.UnderReplicatedCount()))
	used, capacity := s.mgr.CapacitySummary()
	s.mm.usedBytes.Set(used)
	s.mm.capBytes.Set(capacity)
}

// Addr returns the listening address.
func (s *ManagerServer) Addr() string { return s.l.Addr().String() }

// SetPeers installs the shard address roster stamped on every response
// (one address per shard, indexed by shard). Deployments that bind
// ephemeral ports — test rigs in particular — call it once every shard's
// listener is up, before clients connect.
func (s *ManagerServer) SetPeers(peers []string) error {
	_, n := s.mgr.Shard()
	if len(peers) != 0 && n > 1 && len(peers) != n {
		return fmt.Errorf("rpc: %d peer addresses for %d shards", len(peers), n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peers = append([]string(nil), peers...)
	return nil
}

// DebugAddr returns the observability endpoint's address ("" when the
// server runs without one).
func (s *ManagerServer) DebugAddr() string { return s.dbg.Addr() }

// Obs exposes the server's observability state (tests and embedders).
func (s *ManagerServer) Obs() *obs.Obs { return s.obs }

// Close stops the server, its sweep loop, and its benefactor connections.
// Close is idempotent.
func (s *ManagerServer) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.stop)
		s.obs.StopMonitor()
		s.obs.Incidents().Wait() // finish any in-flight bundle capture
		err = s.l.Close()
		s.dbg.Close()
		s.conns.closeAll()
		s.mu.Lock()
		for id, c := range s.benConns {
			c.close()
			delete(s.benConns, id)
		}
		s.mu.Unlock()
	})
	return err
}

func (s *ManagerServer) now() time.Duration { return time.Since(s.start) }

// benConn returns (dialing if needed) a connection to a benefactor.
// Callers hold s.mu.
func (s *ManagerServer) benConn(id int) (*chunkConn, error) {
	if c, ok := s.benConns[id]; ok {
		return c, nil
	}
	addr, ok := s.mgr.Addr(id)
	if !ok || addr == "" {
		return nil, proto.ErrBenefactorDead
	}
	c, err := dialChunk(addr, nil, serverDialTimeout, serverCallTimeout, wireConfig{
		arena: s.arena, maxPayload: maxPayloadFor(s.mgr.ChunkSize()),
	})
	if err != nil {
		return nil, err
	}
	s.benConns[id] = c
	return c, nil
}

// routedByName reports whether an op's Name field is routed by
// shardmap.ShardFor — i.e. landing on the wrong shard means the client's
// shard map is stale (or it mis-hashed), and the request must be fenced
// rather than answered with a misleading ErrNoSuchFile.
func routedByName(op proto.Op) bool {
	switch op {
	case proto.OpCreate, proto.OpLookup, proto.OpDelete, proto.OpLink,
		proto.OpDerive, proto.OpSetTTL, proto.OpRemap,
		proto.OpExportRange, proto.OpLinkRefs:
		return true
	}
	return false
}

// fenceLocked rejects a request whose view of this shard is stale: a
// mismatched membership epoch (MapEpoch 0 — legacy clients — is never
// fenced), or a name-routed op whose name this shard does not own. The
// fresh map rides back on the response either way, so the client installs
// it and retries once without an extra round trip.
func (s *ManagerServer) fenceLocked(req *proto.ManagerReq, resp *proto.ManagerResp) bool {
	if req.MapEpoch != 0 && req.MapEpoch != s.mgr.Epoch() {
		resp.Err = errStr(proto.ErrStaleShardMap)
		return true
	}
	if _, n := s.mgr.Shard(); n > 1 && routedByName(req.Op) {
		if idx, _ := s.mgr.Shard(); shardmap.ShardFor(req.Name, n) != idx {
			resp.Err = errStr(proto.ErrStaleShardMap)
			return true
		}
	}
	return false
}

// stampShardLocked piggybacks the shard map on every response (§16):
// membership epoch, this shard's index, the shard count, and the peer
// address list. Pre-shard clients ignore the fields (gob drops unknowns).
func (s *ManagerServer) stampShardLocked(resp *proto.ManagerResp) {
	resp.ShardEpoch = s.mgr.Epoch()
	resp.ShardIndex, resp.ShardCount = s.mgr.Shard()
	resp.ShardPeers = s.peers
}

func (s *ManagerServer) handle(dec *gob.Decoder, enc *gob.Encoder) error {
	var req proto.ManagerReq
	if err := dec.Decode(&req); err != nil {
		return err
	}
	opStart := time.Now()
	s.mu.Lock()
	var resp proto.ManagerResp
	if s.fenceLocked(&req, &resp) {
		s.stampShardLocked(&resp)
		s.mu.Unlock()
		s.mm.opLat[req.Op].Observe(time.Since(opStart))
		return enc.Encode(&resp)
	}
	switch req.Op {
	case proto.OpRegister:
		wasDead := s.mgr.Register(proto.BenefactorInfo{
			ID: req.BenID, Node: req.BenNode, Capacity: req.Capacity,
			DebugAddr: req.BenDebugAddr,
		}, req.BenAddr, s.now())
		delete(s.benConns, req.BenID) // re-registration may change the address
		if wasDead {
			// A rejoin after a declared death: drop every replica claim
			// that has a live survivor (the survivors may have taken
			// writes the rejoiner missed) and ship the dropped refs back —
			// the benefactor deletes those payloads before serving reads.
			resp.FenceChunks = s.mgr.FenceRejoin(req.BenID)
			if len(resp.FenceChunks) > 0 {
				s.obs.Event("manager", "fence-rejoin", req.TraceID,
					fmt.Sprintf("benefactor %d: %d stale copies fenced", req.BenID, len(resp.FenceChunks)))
			}
		}
		s.obs.Event("manager", "register", req.TraceID,
			fmt.Sprintf("benefactor %d node=%d addr=%s capacity=%d", req.BenID, req.BenNode, req.BenAddr, req.Capacity))
	case proto.OpBeat:
		resp.Err = errStr(s.mgr.Heartbeat(req.BenID, req.WriteVolume, s.now()))
	case proto.OpCreate:
		fi, err := s.mgr.Create(req.Name, req.Size)
		resp.File, resp.Err = fi, errStr(err)
		if err == nil {
			s.obs.Event("manager", "alloc", req.TraceID,
				fmt.Sprintf("file=%q size=%d chunks=%d", req.Name, req.Size, len(fi.Chunks)))
		}
	case proto.OpLookup:
		fi, err := s.mgr.Lookup(req.Name)
		resp.File, resp.Err = fi, errStr(err)
	case proto.OpDelete:
		freed, foreignFreed, err := s.mgr.DeleteFull(req.Name)
		if err == nil {
			err = s.deleteChunks(freed)
		}
		resp.ForeignFreed, resp.Err = foreignFreed, errStr(err)
	case proto.OpLink:
		fi, held, err := s.mgr.LinkFull(req.Name, req.Parts)
		resp.File, resp.ForeignHeld, resp.Err = fi, held, errStr(err)
	case proto.OpDerive:
		fi, held, err := s.mgr.DeriveFull(req.Name, req.Src, req.FromChunk, req.NChunks, req.Size)
		resp.File, resp.ForeignHeld, resp.Err = fi, held, errStr(err)
	case proto.OpSetTTL:
		deadline := time.Duration(req.ExpiresAtNanos)
		if req.TTLNanos > 0 {
			deadline = s.now() + time.Duration(req.TTLNanos)
		}
		resp.Err = errStr(s.mgr.SetTTL(req.Name, deadline))
	case proto.OpExpire:
		expired, freed, foreignFreed := s.mgr.ExpireSweepFull(s.now())
		resp.Expired, resp.ForeignFreed = expired, foreignFreed
		resp.Err = errStr(s.deleteChunks(freed))
	case proto.OpRemap:
		old, fresh, shared, foreignFreed, err := s.mgr.RemapFull(req.Name, req.ChunkIdx)
		resp.ForeignFreed = foreignFreed
		var freshRefs []proto.ChunkRef
		if err == nil {
			freshRefs = s.mgr.Replicas(fresh.ID)
			if len(freshRefs) == 0 {
				freshRefs = []proto.ChunkRef{fresh}
			}
			if shared {
				// The old payload must land on EVERY copy of the fresh
				// chunk, or a read that fails over to a replica would see
				// garbage. A failed primary copy fails the remap; a failed
				// replica copy is rolled back in the metadata (repair will
				// restore redundancy later).
				kept := freshRefs[:0]
				for i, dst := range freshRefs {
					if cerr := s.copyChunk(old, dst); cerr != nil {
						if i == 0 {
							err = cerr
							break
						}
						s.mgr.DropReplica(dst.ID, dst)
						delete(s.benConns, dst.Benefactor)
						s.obs.Event("manager", "remap-replica-failed", req.TraceID,
							fmt.Sprintf("copy %v -> %v: %v", old, dst, cerr))
						continue
					}
					kept = append(kept, dst)
				}
				if err == nil {
					freshRefs = kept
				}
			}
		}
		resp.OldRef, resp.NewRef, resp.NewRefs, resp.Err = old, fresh, freshRefs, errStr(err)
	case proto.OpStatus:
		s.sweepLocked()
		resp.Bens = s.mgr.Status()
		now := s.now()
		for i := range resp.Bens {
			if age, ok := s.mgr.BeatAge(resp.Bens[i].ID, now); ok {
				resp.Bens[i].BeatAgeNanos = int64(age)
			}
		}
		resp.ChunkSize = s.mgr.ChunkSize()
		resp.UnderReplicated = s.mgr.UnderReplicatedCount()
		resp.DebugAddr = s.dbg.Addr()
	case proto.OpMarkDead:
		s.mgr.MarkDead(req.BenID)
		s.mm.deaths.Inc()
		s.obs.Event("manager", "markdead", req.TraceID, fmt.Sprintf("benefactor %d declared dead", req.BenID))
	case proto.OpRepair:
		resp.Repaired, resp.RepairFailed, resp.Lost = s.repair(req.TraceID)
	case proto.OpReportSpans:
		// Client-exported spans are ingested (never re-exported — the
		// sink must not fire, or an in-process client sharing this Obs
		// would loop) so traces rooted in short-lived clients survive
		// here for the collector. The manager's own slow threshold
		// re-applies, feeding its flight recorder.
		for _, ps := range req.Spans {
			s.obs.IngestSpan(obs.Span(ps))
		}
	case proto.OpExportRange:
		fi, err := s.mgr.ExportRange(req.Name, req.FromChunk, req.NChunks)
		resp.File, resp.Err = fi, errStr(err)
	case proto.OpRetainRefs:
		resp.Err = errStr(s.mgr.RetainRefs(req.IDs))
	case proto.OpLinkRefs:
		fi, err := s.mgr.LinkRefs(req.Name, req.Refs, req.RefReplicas, req.Size, req.CreateDst)
		resp.File, resp.Err = fi, errStr(err)
	case proto.OpReleaseRefs:
		freed := s.mgr.ReleaseRefs(req.IDs)
		resp.Err = errStr(s.deleteChunks(freed))
	default:
		resp.Err = fmt.Sprintf("manager: unknown op %q", req.Op)
	}
	s.stampShardLocked(&resp)
	s.mu.Unlock()
	s.mm.opLat[req.Op].Observe(time.Since(opStart))
	// A span-traced request (it names a parent span) gets a manager-side
	// child span under the client's parent; event-only and untraced ones
	// (heartbeats, status polls, convenience ops, older clients) record
	// nothing.
	if req.ParentSpanID != "" && req.Op != proto.OpReportSpans {
		sp := s.obs.StartSpanAt(req.TraceID, req.ParentSpanID, "manager."+string(req.Op), opStart.UnixNano())
		sp.SetVar(req.Name)
		sp.SetErr(wireErr(resp.Err))
		sp.End()
	}
	return enc.Encode(&resp)
}

// deleteChunks physically removes freed chunks on their benefactors.
func (s *ManagerServer) deleteChunks(freed []proto.ChunkRef) error {
	for _, ref := range freed {
		c, err := s.benConn(ref.Benefactor)
		if err != nil {
			continue // dead benefactor: nothing to clean
		}
		if _, err := c.call(proto.ChunkReq{Op: proto.OpDeleteChunk, ID: ref.ID}); err != nil {
			delete(s.benConns, ref.Benefactor)
		}
	}
	return nil
}

// repair re-replicates under-replicated chunks onto live benefactors.
// Called with s.mu held. The manager picks destinations and the server
// moves the payloads; a copy that fails is rolled back in the metadata so
// readers never fail over onto a promised-but-empty replica.
func (s *ManagerServer) repair(tid string) (done, failed int, lost []proto.ChunkID) {
	s.sweepLocked()
	ops, lost := s.mgr.Repair()
	for _, op := range ops {
		if err := s.copyChunk(op.Src, op.Dst); err != nil {
			s.mgr.DropReplica(op.Dst.ID, op.Dst)
			delete(s.benConns, op.Dst.Benefactor)
			s.mm.repairFail.Inc()
			s.obs.Event("manager", "repair-failed", tid,
				fmt.Sprintf("copy %v -> %v: %v", op.Src, op.Dst, err))
			failed++
			continue
		}
		s.mm.repaired.Inc()
		s.obs.Event("manager", "repair", tid, fmt.Sprintf("copied %v -> %v", op.Src, op.Dst))
		done++
	}
	if len(lost) > 0 {
		s.obs.Event("manager", "data-loss", tid, fmt.Sprintf("%d chunks with no live copy", len(lost)))
	}
	s.mm.underRepl.Set(int64(s.mgr.UnderReplicatedCount()))
	return done, failed, lost
}

// copyChunk performs the server-side COW copy.
func (s *ManagerServer) copyChunk(old, fresh proto.ChunkRef) error {
	if old.Benefactor == fresh.Benefactor {
		c, err := s.benConn(fresh.Benefactor)
		if err != nil {
			return err
		}
		_, err = c.call(proto.ChunkReq{Op: proto.OpCopyChunk, ID: fresh.ID, SrcID: old.ID})
		return err
	}
	src, err := s.benConn(old.Benefactor)
	if err != nil {
		return err
	}
	data, err := src.call(proto.ChunkReq{Op: proto.OpGetChunk, ID: old.ID})
	if err != nil {
		return err
	}
	dst, err := s.benConn(fresh.Benefactor)
	if err != nil {
		return err
	}
	_, err = dst.call(proto.ChunkReq{Op: proto.OpPutChunk, ID: fresh.ID, Data: data.Data})
	s.arena.Put(data.Data)
	return err
}

// BenefactorConfig tunes a BenefactorServer's observability.
type BenefactorConfig struct {
	// DebugAddr, when non-empty, serves the benefactor's observability
	// state over HTTP (/metrics, /healthz, /trace, /debug/pprof) on that
	// address. The address is announced to the manager at registration so
	// cluster tools (nvmctl top/trace) can discover it.
	DebugAddr string
	// Obs receives the benefactor's metrics and events. Nil gets a fresh
	// obs.New("benefactor-<id>"); obs.Disabled() silences instrumentation.
	Obs *obs.Obs
	// Monitor configures continuous self-monitoring on the server's Obs
	// (periodic sampling + alert rules). The zero value disables it.
	Monitor obs.MonitorConfig
	// Incidents configures the on-disk incident recorder (see
	// ManagerConfig.Incidents). The zero value disables it.
	Incidents obs.IncidentConfig
}

// benMetrics holds the benefactor server's registry handles.
type benMetrics struct {
	opLat                 map[proto.Op]*obs.Histogram
	readBytes, writeBytes *obs.Counter
}

var benefactorOps = []proto.Op{
	proto.OpGetChunk, proto.OpPutChunk, proto.OpPutPages,
	proto.OpDeleteChunk, proto.OpCopyChunk,
}

func newBenMetrics(o *obs.Obs) benMetrics {
	m := benMetrics{
		opLat:      make(map[proto.Op]*obs.Histogram, len(benefactorOps)),
		readBytes:  o.Reg.Counter("benefactor.read_bytes"),
		writeBytes: o.Reg.Counter("benefactor.write_bytes"),
	}
	for _, op := range benefactorOps {
		m.opLat[op] = o.Reg.Histogram(fmt.Sprintf("benefactor.op.%s.latency", op))
	}
	return m
}

// BenefactorServer serves one benefactor's chunks over TCP. Each accepted
// connection is handled on its own goroutine and benefactor.Store is
// internally synchronized, so requests arriving on a client's pooled
// connections pipeline instead of serializing behind one server lock.
type BenefactorServer struct {
	st *benefactor.Store
	l  net.Listener
	// stop terminates the heartbeat loop.
	stop              chan struct{}
	conns             *connSet
	hbOnce, closeOnce sync.Once
	// mcs are the manager-shard connections (one in the unsharded plane);
	// regCap is the per-shard capacity announced at registration (the
	// device's contribution divided across the shards, so their combined
	// reservations never exceed it). regNode carries the node ID for
	// re-registration after a fenced rejoin.
	mcs     []*ManagerClient
	regCap  int64
	regNode int

	// arena leases request payload buffers for the binary-framed loop (and
	// backs a FileBackend's pooled reads). privReads records whether the
	// store's GetChunk results are caller-owned, i.e. recyclable into the
	// arena once the response frame is on the wire.
	arena     *proto.Arena
	privReads bool

	obs *obs.Obs
	bm  benMetrics
	dbg *obs.DebugServer
}

// NewBenefactorServer starts a benefactor on addr, registers it with the
// manager, and begins heartbeating, with default observability (private
// registry, no debug endpoint).
func NewBenefactorServer(addr, managerAddr string, id, node int, capacity, chunkSize int64, backend benefactor.Backend, beat time.Duration) (*BenefactorServer, error) {
	return NewBenefactorServerWith(addr, managerAddr, id, node, capacity, chunkSize, backend, beat, BenefactorConfig{})
}

// NewBenefactorServerWith starts a benefactor with explicit observability
// settings. A *FileBackend backend is wired into the same registry
// (device-level ssd.* metrics) automatically.
func NewBenefactorServerWith(addr, managerAddr string, id, node int, capacity, chunkSize int64, backend benefactor.Backend, beat time.Duration, cfg BenefactorConfig) (*BenefactorServer, error) {
	if cfg.Obs == nil {
		cfg.Obs = obs.New(fmt.Sprintf("benefactor-%d", id))
	}
	arena := proto.NewArena(chunkSize)
	if fb, ok := backend.(*FileBackend); ok {
		fb.SetObs(cfg.Obs)
		fb.SetArena(arena)
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &BenefactorServer{
		st:    benefactor.New(id, node, capacity, chunkSize, backend),
		l:     l,
		stop:  make(chan struct{}),
		conns: newConnSet(),
		arena: arena,
		obs:   cfg.Obs,
		bm:    newBenMetrics(cfg.Obs),
	}
	s.privReads = s.st.PrivateReads()
	s.st.SetObs(cfg.Obs)
	if cfg.Incidents.Dir != "" {
		ir, err := obs.NewIncidentRecorder(s.obs, cfg.Incidents)
		if err != nil {
			l.Close()
			return nil, err
		}
		s.obs.SetIncidents(ir)
	}
	if cfg.DebugAddr != "" {
		dbg, err := obs.ServeDebug(cfg.DebugAddr, s.obs)
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("rpc: benefactor debug server: %w", err)
		}
		s.dbg = dbg
	}
	// The manager never reuses chunk IDs, so a deleted chunk referenced
	// again can only be a stale client map: fail it so the client retries
	// with fresh metadata.
	s.st.SetStrictDelete(true)

	// managerAddr may name every shard of the metadata plane
	// ("host:port,host:port,..."). The benefactor registers with all of
	// them: each shard places chunks independently, so the contributed
	// capacity is divided evenly — handing every shard the full device
	// would overcommit it N times.
	addrs := shardmap.SplitAddrs(managerAddr)
	if len(addrs) == 0 {
		s.dbg.Close()
		l.Close()
		return nil, fmt.Errorf("rpc: benefactor %d has no manager address", id)
	}
	s.regCap = capacity / int64(len(addrs))
	s.regNode = node
	fail := func(err error) (*BenefactorServer, error) {
		for _, mc := range s.mcs {
			mc.Close()
		}
		s.dbg.Close()
		l.Close()
		return nil, err
	}
	for _, a := range addrs {
		mc, err := DialManager(a)
		if err != nil {
			return fail(err)
		}
		s.mcs = append(s.mcs, mc)
	}
	// Register with every shard BEFORE accepting connections: a rejoining
	// benefactor may be told to fence stale pre-partition copies
	// (FenceChunks), and those payloads must be gone before any client
	// with a stale chunk map can read them (§16).
	for _, mc := range s.mcs {
		if err := s.registerWith(mc); err != nil {
			return fail(err)
		}
	}
	go serve(l, s.conns, s.serveConn)

	if beat > 0 {
		for _, mc := range s.mcs {
			go s.heartbeatLoop(mc, beat)
		}
	}
	s.obs.StartMonitor(cfg.Monitor)
	return s, nil
}

// registerWith announces the benefactor to one manager shard and deletes
// any chunk copies the shard fenced (stale pre-partition claims written
// around during the benefactor's absence). DeleteChunk tombstones the IDs,
// so even a racing stale read cannot resurrect the old payload.
func (s *BenefactorServer) registerWith(mc *ManagerClient) error {
	resp, err := mc.call(proto.ManagerReq{
		Op: proto.OpRegister, BenID: s.st.ID(), BenNode: s.regNode,
		BenAddr: s.l.Addr().String(), BenDebugAddr: s.dbg.Addr(),
		Capacity: s.regCap,
	})
	if err != nil {
		return err
	}
	for _, ref := range resp.FenceChunks {
		if derr := s.st.DeleteChunk(ref.ID); derr != nil {
			return fmt.Errorf("rpc: benefactor %d fencing chunk %d: %w", s.st.ID(), ref.ID, derr)
		}
	}
	if len(resp.FenceChunks) > 0 {
		s.obs.Event("benefactor", "fenced", "",
			fmt.Sprintf("deleted %d stale copies on rejoin", len(resp.FenceChunks)))
	}
	return nil
}

// heartbeatLoop beats one manager shard. A beat rejected with
// ErrBenefactorDead means the shard declared this benefactor dead while it
// was partitioned; heartbeats cannot revive it (§16), so the loop
// re-registers — which fences whatever stale copies the shard wrote
// around — and resumes beating.
func (s *BenefactorServer) heartbeatLoop(mc *ManagerClient, beat time.Duration) {
	t := time.NewTicker(beat)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			err := mc.Heartbeat(s.st.ID(), s.st.Stats().BytesWritten)
			if errors.Is(err, proto.ErrBenefactorDead) {
				if rerr := s.registerWith(mc); rerr != nil {
					s.obs.Event("benefactor", "rejoin-failed", "", rerr.Error())
				}
			}
		}
	}
}

// Addr returns the listening address.
func (s *BenefactorServer) Addr() string { return s.l.Addr().String() }

// DebugAddr returns the observability endpoint's address ("" when the
// server runs without one).
func (s *BenefactorServer) DebugAddr() string { return s.dbg.Addr() }

// Obs exposes the server's observability state (tests and embedders).
func (s *BenefactorServer) Obs() *obs.Obs { return s.obs }

// Close stops the server and its heartbeats. Close is idempotent (fault
// tests kill benefactors mid-test and rig cleanup closes again).
func (s *BenefactorServer) Close() error {
	s.StopHeartbeat()
	var err error
	s.closeOnce.Do(func() {
		s.obs.StopMonitor()
		s.obs.Incidents().Wait() // finish any in-flight bundle capture
		err = s.l.Close()
		s.dbg.Close()
		s.conns.closeAll()
		for _, mc := range s.mcs {
			mc.Close()
		}
	})
	return err
}

// StopHeartbeat silences the benefactor's heartbeats while it keeps
// serving chunks — to the manager this looks like a failed node, which is
// exactly what heartbeat-expiry tests need to stage.
func (s *BenefactorServer) StopHeartbeat() {
	s.hbOnce.Do(func() { close(s.stop) })
}

// Store exposes the underlying chunk store (for stats).
func (s *BenefactorServer) Store() *benefactor.Store { return s.st }

// spanUnder begins a child span of parent; a nil parent (untraced request
// or disabled obs) yields a nil no-op span.
func (s *BenefactorServer) spanUnder(parent *obs.ActiveSpan, name string) *obs.ActiveSpan {
	if parent == nil {
		return nil
	}
	return s.obs.StartSpan(parent.Trace(), parent.ID(), name)
}

// maxPayloadFor is the frame payload bound for one chunk geometry: a frame
// declaring more than 2× the chunk size is malformed and dropped without
// reading (the largest legitimate payload is exactly one chunk).
func maxPayloadFor(chunkSize int64) int { return int(2 * chunkSize) }

// serveConn runs one benefactor connection, sniffing the first byte to
// pick the wire protocol: a proto.Preamble byte announces an NVM1 binary
// client (the preamble is consumed, echoed back as the accept, and the
// binary frame loop runs); anything else is the start of a legacy gob
// stream, served unchanged so old clients keep working.
func (s *BenefactorServer) serveConn(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 64<<10)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == proto.Preamble {
		if _, err := br.Discard(1); err != nil {
			return
		}
		if _, err := conn.Write([]byte{proto.Preamble}); err != nil {
			return
		}
		s.serveBinary(conn, br)
		return
	}
	serveGob(conn, br, s.handle)
}

// badFrame logs a malformed frame and tells the caller to drop the
// connection: once framing is untrustworthy nothing after it can be
// parsed safely.
func (s *BenefactorServer) badFrame(conn net.Conn, err error) {
	s.obs.Log.Warn("dropping connection on malformed frame",
		"peer", conn.RemoteAddr().String(), "err", err.Error())
	s.obs.Event("benefactor", "bad-frame", "", fmt.Sprintf("peer=%s err=%v", conn.RemoteAddr(), err))
}

// serveBinary runs one connection's NVM1 frame loop. Request payloads are
// leased from the server arena and returned right after dispatch; response
// payloads stream from the store's buffer via scatter-gather and, when the
// store hands out private buffers (FileBackend), recycle into the arena
// once written.
func (s *BenefactorServer) serveBinary(conn net.Conn, br *bufio.Reader) {
	var (
		freq, fresp proto.Frame
		scratch     []byte
		wbufs       = make(net.Buffers, 0, 2)
		pageData    [][]byte
		maxPayload  = maxPayloadFor(s.st.ChunkSize())
	)
	for {
		payload, err := proto.ReadFrame(br, &freq, s.arena, maxPayload)
		if err != nil {
			if errors.Is(err, proto.ErrBadFrame) {
				s.badFrame(conn, err)
			}
			return
		}
		if freq.Resp {
			s.arena.Put(payload)
			s.badFrame(conn, fmt.Errorf("%w: response frame where request expected", proto.ErrBadFrame))
			return
		}
		req := proto.ChunkReq{
			Op: freq.Op.Op(), TraceID: freq.Trace, ParentSpanID: freq.Parent,
			VarName: freq.Var, ID: freq.ID,
		}
		switch freq.Op {
		case proto.FramePut:
			req.Data = payload
		case proto.FrameCopy:
			req.SrcID = proto.ChunkID(freq.Aux)
		case proto.FramePutPages:
			req.PageOffs = freq.PageOffs
			pageData = pageData[:0]
			rest := payload
			for _, ln := range freq.PageLens {
				pageData = append(pageData, rest[:ln:ln])
				rest = rest[ln:]
			}
			req.PageData = pageData
		}
		resp := s.dispatch(&req)
		// The store has consumed (persisted or copied) the request payload.
		s.arena.Put(payload)

		fresp.Op, fresp.Resp = freq.Op, true
		fresp.ID, fresp.Aux = freq.ID, 0
		fresp.Trace, fresp.Parent, fresp.Var = "", "", ""
		fresp.Err = resp.Err
		fresp.PageOffs, fresp.PageLens = fresp.PageOffs[:0], fresp.PageLens[:0]
		fresp.PayloadLen = len(resp.Data)
		scratch = fresp.AppendTo(scratch[:0])
		wbufs = wbufs[:0]
		wbufs = append(wbufs, scratch)
		if len(resp.Data) > 0 {
			wbufs = append(wbufs, resp.Data)
		}
		wb := wbufs // WriteTo consumes its receiver; keep wbufs reusable
		_, werr := wb.WriteTo(conn)
		if s.privReads && resp.Data != nil {
			s.arena.Put(resp.Data)
		}
		if werr != nil {
			return
		}
	}
}

func (s *BenefactorServer) handle(dec *gob.Decoder, enc *gob.Encoder) error {
	var req proto.ChunkReq
	if err := dec.Decode(&req); err != nil {
		return err
	}
	resp := s.dispatch(&req)
	err := enc.Encode(&resp)
	if s.privReads && resp.Data != nil {
		// The encoder copied the payload onto the wire; a private (pooled)
		// read buffer can go back to the arena.
		s.arena.Put(resp.Data)
	}
	return err
}

// dispatch executes one chunk data op against the store, shared by the gob
// and binary serve loops. Ownership: req.Data and req.PageData are only
// read during the call; resp.Data (get responses) follows the store's
// PrivateReads policy — the serve loops recycle it after writing when it
// is private.
func (s *BenefactorServer) dispatch(req *proto.ChunkReq) proto.ChunkResp {
	opStart := time.Now()
	// A span-traced request (it names a parent span) gets a benefactor-side
	// child span (and a nested ssd.* span around the backend call);
	// event-only and untraced ones record nothing.
	var sp *obs.ActiveSpan
	if req.ParentSpanID != "" {
		sp = s.obs.StartSpanAt(req.TraceID, req.ParentSpanID, "benefactor."+string(req.Op), opStart.UnixNano())
		sp.SetVar(req.VarName)
	}
	var resp proto.ChunkResp
	switch req.Op {
	case proto.OpGetChunk:
		ssd := s.spanUnder(sp, "ssd.read")
		d, err := s.st.GetChunk(req.ID)
		ssd.SetErr(err)
		ssd.AddBytes(int64(len(d)))
		ssd.End()
		resp.Data, resp.Err = d, errStr(err)
		sp.AddBytes(int64(len(d)))
		s.bm.readBytes.Add(int64(len(d)))
		if s.obs.EventsEnabled() {
			s.obs.Event("benefactor", "read", req.TraceID, fmt.Sprintf("chunk=%d bytes=%d", req.ID, len(d)))
		}
	case proto.OpPutChunk:
		ssd := s.spanUnder(sp, "ssd.write")
		err := s.st.PutChunk(req.ID, req.Data)
		ssd.SetErr(err)
		ssd.AddBytes(int64(len(req.Data)))
		ssd.End()
		resp.Err = errStr(err)
		sp.AddBytes(int64(len(req.Data)))
		s.bm.writeBytes.Add(int64(len(req.Data)))
		if s.obs.EventsEnabled() {
			s.obs.Event("benefactor", "write", req.TraceID, fmt.Sprintf("chunk=%d bytes=%d", req.ID, len(req.Data)))
		}
	case proto.OpPutPages:
		var n int64
		for _, pg := range req.PageData {
			n += int64(len(pg))
		}
		ssd := s.spanUnder(sp, "ssd.write")
		err := s.st.PutPages(req.ID, req.PageOffs, req.PageData)
		ssd.SetErr(err)
		ssd.AddBytes(n)
		ssd.End()
		resp.Err = errStr(err)
		sp.AddBytes(n)
		s.bm.writeBytes.Add(n)
		if s.obs.EventsEnabled() {
			s.obs.Event("benefactor", "write-pages", req.TraceID,
				fmt.Sprintf("chunk=%d pages=%d bytes=%d", req.ID, len(req.PageOffs), n))
		}
	case proto.OpDeleteChunk:
		resp.Err = errStr(s.st.DeleteChunk(req.ID))
		s.obs.Event("benefactor", "delete", req.TraceID, fmt.Sprintf("chunk=%d", req.ID))
	case proto.OpCopyChunk:
		ssd := s.spanUnder(sp, "ssd.copy")
		err := s.st.CopyChunk(req.ID, req.SrcID)
		ssd.SetErr(err)
		ssd.End()
		resp.Err = errStr(err)
		s.obs.Event("benefactor", "copy", req.TraceID, fmt.Sprintf("chunk=%d src=%d", req.ID, req.SrcID))
	default:
		resp.Err = fmt.Sprintf("benefactor: unknown op %q", req.Op)
	}
	s.bm.opLat[req.Op].Observe(time.Since(opStart))
	sp.SetErr(wireErr(resp.Err))
	sp.End()
	return resp
}

// Timeouts for server-initiated benefactor calls (chunk deletion, COW
// copies, repair). Client-side timeouts come from Options.
const (
	serverDialTimeout = 5 * time.Second
	serverCallTimeout = 30 * time.Second
)

// chunkConn is a client connection to one benefactor, speaking either NVM1
// binary frames (negotiated at dial) or the legacy gob envelopes.
type chunkConn struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	// gob mode (binary == false).
	dec *gob.Decoder
	enc *gob.Encoder
	// binary mode: the wire arena leases response payloads, scratch holds
	// the encoded request header+meta, and wbufs scatter-gathers header and
	// caller payload onto the socket without a staging copy.
	binary     bool
	arena      *proto.Arena
	maxPayload int
	freq       proto.Frame
	fresp      proto.Frame
	scratch    []byte
	wbufs      net.Buffers
	// timeout bounds one request/response round trip (a deadline on the
	// socket, so a wedged or black-holed benefactor cannot hang the caller
	// forever). 0 means no deadline.
	timeout time.Duration
	// broken is set when the stream failed mid-call; the connection cannot
	// be reused (request/response framing is lost).
	broken bool
}

// wireConfig selects the benefactor wire protocol for dialed connections.
type wireConfig struct {
	// arena supplies response payload leases in binary mode; nil disables
	// the binary handshake entirely (gob only).
	arena *proto.Arena
	// maxPayload bounds a response frame's declared payload (2× chunk).
	maxPayload int
	// gobOnly skips the NVM1 handshake: either the peer is already known to
	// be a legacy server, or Options.ForceGob pinned the legacy protocol.
	gobOnly bool
	// fellBack is set on the result when the handshake was attempted and
	// the peer turned out to be gob-only, so callers can cache the verdict
	// per address instead of re-probing on every dial.
	fellBack *bool
}

// dialChunk connects to a benefactor. dial overrides the transport (fault
// injection); when nil a plain TCP dial with dialTimeout is used.
// callTimeout becomes the per-RPC deadline of the resulting connection.
//
// With wc.arena set (and not wc.gobOnly) the NVM1 preamble handshake runs
// first: the preamble byte is sent and the server must echo it. A legacy
// gob server instead chokes on the preamble and closes (its gob decoder
// rejects 0xB1 as a message length), so a handshake failure redials the
// address in gob mode — old servers keep working behind new clients.
func dialChunk(addr string, dial func(string) (net.Conn, error), dialTimeout, callTimeout time.Duration, wc wireConfig) (*chunkConn, error) {
	connect := func() (net.Conn, error) {
		if dial != nil {
			return dial(addr)
		}
		return net.DialTimeout("tcp", addr, dialTimeout)
	}
	conn, err := connect()
	if err != nil {
		return nil, err
	}
	binary := false
	if wc.arena != nil && !wc.gobOnly {
		hsTimeout := dialTimeout
		if callTimeout > 0 && (hsTimeout <= 0 || callTimeout < hsTimeout) {
			hsTimeout = callTimeout
		}
		switch legacy, err := negotiateBinary(conn, hsTimeout); {
		case err == nil:
			binary = true
		case legacy:
			// The peer took the preamble and hung up — the signature of a
			// legacy gob server whose decoder rejected 0xB1. Redial and
			// speak gob to it.
			conn.Close()
			if conn, err = connect(); err != nil {
				return nil, err
			}
			if wc.fellBack != nil {
				*wc.fellBack = true
			}
		default:
			// A transport fault (write failure, timeout), not a protocol
			// verdict: fail the dial so the caller's transient-retry path
			// redials and probes again, instead of misfiling the address
			// as gob-only forever.
			conn.Close()
			return nil, err
		}
	}
	c := &chunkConn{
		conn: conn, br: bufio.NewReaderSize(conn, 64<<10),
		binary: binary, arena: wc.arena, maxPayload: wc.maxPayload,
		timeout: callTimeout,
	}
	if !binary {
		c.dec = gob.NewDecoder(c.br)
		c.enc = gob.NewEncoder(conn)
	}
	return c, nil
}

// negotiateBinary performs the client half of the NVM1 handshake: send the
// preamble, require the echo. legacy reports the verdict on failure: true
// means the peer accepted our preamble byte and then closed the connection
// — exactly what a legacy gob server does when its decoder hits 0xB1 — so
// the caller should redial and speak gob. false means the transport itself
// failed (write error, timeout) and no protocol conclusion can be drawn.
func negotiateBinary(conn net.Conn, timeout time.Duration) (legacy bool, err error) {
	if timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(timeout))
	}
	if _, err := conn.Write([]byte{proto.Preamble}); err != nil {
		return false, err
	}
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return false, err
		}
		// EOF / connection reset after a delivered preamble: the legacy
		// signature. A crashed modern server looks the same, but then the
		// gob redial fails too, so misclassifying is harmless.
		return true, err
	}
	if ack[0] != proto.Preamble {
		return true, fmt.Errorf("rpc: unexpected NVM1 handshake ack 0x%02x", ack[0])
	}
	if timeout > 0 {
		_ = conn.SetDeadline(time.Time{})
	}
	return false, nil
}

func (c *chunkConn) call(req proto.ChunkReq) (proto.ChunkResp, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var resp proto.ChunkResp
	if c.timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	// Encode/decode failures are transport-level: the round trip did not
	// complete, so they are wrapped as transient (retryable) errors.
	var err error
	if c.binary {
		resp, err = c.roundTripBinary(&req)
	} else {
		resp, err = c.roundTripGob(&req)
	}
	if err != nil {
		c.broken = true
		return resp, transient(err)
	}
	if c.timeout > 0 {
		_ = c.conn.SetDeadline(time.Time{})
	}
	return resp, wireErr(resp.Err)
}

func (c *chunkConn) roundTripGob(req *proto.ChunkReq) (proto.ChunkResp, error) {
	var resp proto.ChunkResp
	if err := c.enc.Encode(req); err != nil {
		return resp, err
	}
	if err := c.dec.Decode(&resp); err != nil {
		return resp, err
	}
	return resp, nil
}

// roundTripBinary ships one chunk op as an NVM1 frame. The payload goes out
// straight from the caller's buffer (net.Buffers scatter-gather — no
// staging copy) and the response payload comes back as an arena lease the
// caller owns (Store.readAt and the chunk cache release it when done).
func (c *chunkConn) roundTripBinary(req *proto.ChunkReq) (proto.ChunkResp, error) {
	var resp proto.ChunkResp
	fop, ok := proto.FrameOpOf(req.Op)
	if !ok {
		return resp, fmt.Errorf("rpc: op %q has no binary frame", req.Op)
	}
	f := &c.freq
	f.Op, f.Resp = fop, false
	f.ID, f.Aux = req.ID, 0
	f.Trace, f.Parent, f.Var, f.Err = req.TraceID, req.ParentSpanID, req.VarName, ""
	f.PageOffs, f.PageLens = f.PageOffs[:0], f.PageLens[:0]
	c.wbufs = c.wbufs[:0]
	c.wbufs = append(c.wbufs, nil) // header+meta placeholder
	payloadLen := 0
	switch req.Op {
	case proto.OpPutChunk:
		payloadLen = len(req.Data)
		if payloadLen > 0 {
			c.wbufs = append(c.wbufs, req.Data)
		}
	case proto.OpPutPages:
		if len(req.PageOffs) != len(req.PageData) {
			return resp, fmt.Errorf("rpc: %d page offsets but %d pages", len(req.PageOffs), len(req.PageData))
		}
		for i, pg := range req.PageData {
			f.PageOffs = append(f.PageOffs, req.PageOffs[i])
			f.PageLens = append(f.PageLens, len(pg))
			payloadLen += len(pg)
			if len(pg) > 0 {
				c.wbufs = append(c.wbufs, pg)
			}
		}
		f.Aux = uint64(len(req.PageData))
	case proto.OpCopyChunk:
		f.Aux = uint64(req.SrcID)
	}
	f.PayloadLen = payloadLen
	c.scratch = f.AppendTo(c.scratch[:0])
	c.wbufs[0] = c.scratch
	wb := c.wbufs // WriteTo consumes its receiver; keep c.wbufs reusable
	if _, err := wb.WriteTo(c.conn); err != nil {
		return resp, err
	}
	payload, err := proto.ReadFrame(c.br, &c.fresp, c.arena, c.maxPayload)
	if err != nil {
		return resp, err
	}
	if !c.fresp.Resp {
		c.arena.Put(payload)
		return resp, fmt.Errorf("rpc: request frame where response expected")
	}
	resp.Err = c.fresp.Err
	resp.Data = payload
	return resp, nil
}

func (c *chunkConn) isBroken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

func (c *chunkConn) close() { c.conn.Close() }

// ManagerClient is a client connection to the manager. A broken connection
// is redialed transparently, and idempotent metadata RPCs are retried with
// backoff, so a manager restart or a transient network fault does not kill
// long-running clients (benefactor heartbeat loops in particular).
type ManagerClient struct {
	mu      sync.Mutex
	addr    string
	timeout time.Duration // per-RPC deadline; 0 = none
	retry   RetryPolicy
	conn    net.Conn
	dec     *gob.Decoder
	enc     *gob.Encoder
	closed  bool
}

// DialManager connects to a manager server with no per-RPC deadline.
func DialManager(addr string) (*ManagerClient, error) { return DialManagerTimeout(addr, 0) }

// DialManagerTimeout connects to a manager server; timeout bounds each
// metadata RPC round trip (0 disables the deadline).
func DialManagerTimeout(addr string, timeout time.Duration) (*ManagerClient, error) {
	c := &ManagerClient{addr: addr, timeout: timeout, retry: RetryPolicy{}.withDefaults()}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.redialLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// Close closes the connection.
func (c *ManagerClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

func (c *ManagerClient) redialLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, serverDialTimeout)
	if err != nil {
		return err
	}
	c.conn, c.dec, c.enc = conn, gob.NewDecoder(conn), gob.NewEncoder(conn)
	return nil
}

func (c *ManagerClient) dropLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// retryableOp reports whether a manager RPC may be reissued after a
// transport failure. Ops with create-once semantics (Create, Link, Derive,
// Remap, Delete) are excluded: the lost response may have committed, and a
// blind retry would turn that success into a spurious error.
func retryableOp(op proto.Op) bool {
	switch op {
	case proto.OpRegister, proto.OpBeat, proto.OpLookup, proto.OpStatus,
		proto.OpSetTTL, proto.OpExpire, proto.OpRepair, proto.OpMarkDead,
		proto.OpExportRange:
		// ExportRange is read-only. RetainRefs/LinkRefs/ReleaseRefs are
		// NOT retryable: a lost response may have committed the refcount
		// change, and a blind replay would double-count a hold.
		return true
	}
	return false
}

func (c *ManagerClient) call(req proto.ManagerReq) (proto.ManagerResp, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var resp proto.ManagerResp
	attempts := c.retry.MaxAttempts
	if !retryableOp(req.Op) {
		attempts = 1
	}
	var last error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			time.Sleep(c.retry.backoff(attempt - 1))
		}
		if c.closed {
			return resp, net.ErrClosed
		}
		if c.conn == nil {
			if err := c.redialLocked(); err != nil {
				last = transient(err)
				continue
			}
		}
		if c.timeout > 0 {
			_ = c.conn.SetDeadline(time.Now().Add(c.timeout))
		}
		if err := c.enc.Encode(&req); err != nil {
			c.dropLocked()
			last = transient(err)
			continue
		}
		if err := c.dec.Decode(&resp); err != nil {
			c.dropLocked()
			last = transient(err)
			continue
		}
		if c.timeout > 0 {
			_ = c.conn.SetDeadline(time.Time{})
		}
		return resp, wireErr(resp.Err)
	}
	return resp, last
}

// Register announces a benefactor to the manager.
func (c *ManagerClient) Register(id, node int, addr string, capacity int64) error {
	_, err := c.call(proto.ManagerReq{Op: proto.OpRegister, BenID: id, BenNode: node, BenAddr: addr, Capacity: capacity})
	return err
}

// Heartbeat refreshes a benefactor's liveness.
func (c *ManagerClient) Heartbeat(id int, writeVolume int64) error {
	_, err := c.call(proto.ManagerReq{Op: proto.OpBeat, BenID: id, WriteVolume: writeVolume})
	return err
}

// Create reserves a striped file.
func (c *ManagerClient) Create(name string, size int64) (proto.FileInfo, error) {
	resp, err := c.call(proto.ManagerReq{Op: proto.OpCreate, Name: name, Size: size})
	return resp.File, err
}

// Lookup fetches a file's chunk map.
func (c *ManagerClient) Lookup(name string) (proto.FileInfo, error) {
	resp, err := c.call(proto.ManagerReq{Op: proto.OpLookup, Name: name})
	return resp.File, err
}

// Delete removes a file (and its unshared chunks, benefactor-side).
func (c *ManagerClient) Delete(name string) error {
	_, err := c.call(proto.ManagerReq{Op: proto.OpDelete, Name: name})
	return err
}

// Link appends part files' chunks to dst (zero-copy checkpoint merge).
func (c *ManagerClient) Link(dst string, parts []string) (proto.FileInfo, error) {
	resp, err := c.call(proto.ManagerReq{Op: proto.OpLink, Name: dst, Parts: parts})
	return resp.File, err
}

// Remap performs the copy-on-write remap of one chunk.
func (c *ManagerClient) Remap(name string, chunkIdx int) (proto.ChunkRef, error) {
	resp, err := c.call(proto.ManagerReq{Op: proto.OpRemap, Name: name, ChunkIdx: chunkIdx})
	return resp.NewRef, err
}

// RemapRefs performs the copy-on-write remap of one chunk and returns the
// fresh chunk's full replica set, primary first. An older manager sends no
// replica table; the primary ref alone is the degenerate set.
func (c *ManagerClient) RemapRefs(name string, chunkIdx int) ([]proto.ChunkRef, error) {
	resp, err := c.call(proto.ManagerReq{Op: proto.OpRemap, Name: name, ChunkIdx: chunkIdx})
	if err != nil {
		return nil, err
	}
	if len(resp.NewRefs) > 0 {
		return resp.NewRefs, nil
	}
	return []proto.ChunkRef{resp.NewRef}, nil
}

// Derive creates a file sharing a chunk sub-range of src (checkpoint
// restore without data movement).
func (c *ManagerClient) Derive(name, src string, fromChunk, nChunks int, size int64) (proto.FileInfo, error) {
	resp, err := c.call(proto.ManagerReq{
		Op: proto.OpDerive, Name: name, Src: src,
		FromChunk: fromChunk, NChunks: nChunks, Size: size,
	})
	return resp.File, err
}

// SetTTL assigns a lifetime deadline to a file, measured from the
// manager's start.
func (c *ManagerClient) SetTTL(name string, expiresAt time.Duration) error {
	_, err := c.call(proto.ManagerReq{Op: proto.OpSetTTL, Name: name, ExpiresAtNanos: int64(expiresAt)})
	return err
}

// SetTTLIn assigns a lifetime of ttl from now, measured on the manager's
// clock — remote clients do not know the manager's epoch.
func (c *ManagerClient) SetTTLIn(name string, ttl time.Duration) error {
	_, err := c.call(proto.ManagerReq{Op: proto.OpSetTTL, Name: name, TTLNanos: int64(ttl)})
	return err
}

// Expire reclaims every file whose lifetime has passed and returns their
// names.
func (c *ManagerClient) Expire() ([]string, error) {
	resp, err := c.call(proto.ManagerReq{Op: proto.OpExpire})
	return resp.Expired, err
}

// Status returns the benefactor table.
func (c *ManagerClient) Status() ([]proto.BenefactorInfo, error) {
	resp, err := c.call(proto.ManagerReq{Op: proto.OpStatus})
	return resp.Bens, err
}

// StatusDetail returns the full status envelope: benefactor table (with
// heartbeat ages and debug endpoints), chunk geometry, under-replication
// backlog, and the manager's own debug endpoint.
func (c *ManagerClient) StatusDetail() (proto.ManagerResp, error) {
	return c.call(proto.ManagerReq{Op: proto.OpStatus})
}

// RepairResult summarizes one repair pass.
type RepairResult struct {
	Repaired int // replica copies restored
	Failed   int // copy operations that failed
	Lost     []proto.ChunkID
	// UnderReplicated is the backlog remaining after the pass.
	UnderReplicated int
}

// Repair re-replicates under-replicated chunks onto live benefactors and
// reports chunks with no surviving copy.
func (c *ManagerClient) Repair() (RepairResult, error) {
	resp, err := c.call(proto.ManagerReq{Op: proto.OpRepair})
	if err != nil {
		return RepairResult{}, err
	}
	r := RepairResult{Repaired: resp.Repaired, Failed: resp.RepairFailed, Lost: resp.Lost}
	if sr, serr := c.call(proto.ManagerReq{Op: proto.OpStatus}); serr == nil {
		r.UnderReplicated = sr.UnderReplicated
	}
	return r, nil
}

// MarkDead forcibly declares a benefactor dead ahead of heartbeat expiry
// (fault injection and operator intervention).
func (c *ManagerClient) MarkDead(benID int) error {
	_, err := c.call(proto.ManagerReq{Op: proto.OpMarkDead, BenID: benID})
	return err
}

// UnderReplicated returns the number of chunks currently holding fewer live
// copies than the store's replication factor.
func (c *ManagerClient) UnderReplicated() (int, error) {
	resp, err := c.call(proto.ManagerReq{Op: proto.OpStatus})
	return resp.UnderReplicated, err
}
