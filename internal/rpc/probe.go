package rpc

// The client-side canary prober: tiny synthetic operations that measure,
// from outside the serving path, what a user would experience — per
// manager shard (a full put/get/delete of a throwaway variable pinned to
// that shard's keyspace) and per benefactor (one chunk round trip whose
// expected answer is "no such chunk"). Outcomes land in the client Obs as
// probe.* counters and histograms; the probe-slo-burn rule turns them
// into a paging signal. Enabled by Options.ProbeInterval.

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"nvmalloc/internal/obs"
	"nvmalloc/internal/proto"
	"nvmalloc/internal/shardmap"
)

// DefaultProbeBens is how many benefactors each probe cycle samples
// (round-robin across the live set) when Options.ProbeBens is zero.
const DefaultProbeBens = 2

// startProber launches the canary prober when the options enable it.
func (s *Store) startProber() {
	if s.opts.ProbeInterval <= 0 {
		return
	}
	s.prober = obs.StartProber(s.obs, obs.ProberConfig{
		Interval: s.opts.ProbeInterval,
		Targets:  s.probeTargets,
	})
}

// probeTargets assembles the current cycle's probe set: every manager
// shard, plus the next ProbeBens benefactors in round-robin order. Called
// once per cycle, so the set tracks shard-map growth and benefactor
// churn.
func (s *Store) probeTargets() []obs.ProbeTarget {
	n := s.nShards()
	k := s.opts.ProbeBens
	if k <= 0 {
		k = DefaultProbeBens
	}
	targets := make([]obs.ProbeTarget, 0, n+k)
	for i := 0; i < n; i++ {
		i := i
		targets = append(targets, obs.ProbeTarget{
			Name: fmt.Sprintf("shard%d", i),
			Run:  func() error { return s.probeShard(i) },
		})
	}

	s.mu.Lock()
	ids := make([]int, 0, len(s.benAddrs))
	for id := range s.benAddrs {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Ints(ids)
	if len(ids) == 0 {
		return targets
	}
	if k > len(ids) {
		k = len(ids)
	}
	start := int(s.probeRR.Add(int64(k))-int64(k)) % len(ids)
	if start < 0 {
		start += len(ids)
	}
	for j := 0; j < k; j++ {
		id := ids[(start+j)%len(ids)]
		targets = append(targets, obs.ProbeTarget{
			Name: fmt.Sprintf("ben%d", id),
			Run:  func() error { return s.probeBen(id) },
		})
	}
	return targets
}

// probeName returns a canary variable name owned by shard i: names are
// placed by rendezvous hashing, so the prober appends a nonce until the
// hash lands on the target shard (a handful of tries in expectation).
// The per-store token keeps concurrent probers from colliding on the
// same canary variables.
func (s *Store) probeName(shard, n int) string {
	for k := 0; ; k++ {
		name := fmt.Sprintf("__probe/%s/%d-%d", s.probeToken, shard, k)
		if n <= 1 || shardmap.ShardFor(name, n) == shard {
			return name
		}
	}
}

// probePayload is the canary variable body: small enough to be free,
// big enough to exercise a real chunk write and readback.
func (s *Store) probePayload(shard int) []byte {
	return []byte(fmt.Sprintf("nvm-probe %s shard=%d padpadpadpadpadpadpadpadpadpadpad", s.probeToken, shard))
}

// probeShard runs one canary round trip through shard i's full serving
// path: metadata create on the shard, a chunk write to a benefactor, a
// readback with verification, and a delete. Any step failing fails the
// probe; cleanup is best-effort (a leaked canary is overwritten by the
// next cycle's create of the same name).
func (s *Store) probeShard(i int) error {
	name := s.probeName(i, s.nShards())
	want := s.probePayload(i)
	if err := s.Put(name, want); err != nil {
		_ = s.Delete(name)
		return fmt.Errorf("probe put: %w", err)
	}
	got, err := s.Get(name)
	if err != nil {
		_ = s.Delete(name)
		return fmt.Errorf("probe get: %w", err)
	}
	if !bytes.Equal(got, want) {
		_ = s.Delete(name)
		return fmt.Errorf("probe readback mismatch: got %d bytes, want %d", len(got), len(want))
	}
	if err := s.Delete(name); err != nil {
		return fmt.Errorf("probe delete: %w", err)
	}
	return nil
}

// probeBen runs one liveness round trip against benefactor id: a
// GetChunk for chunk ID 0, which is never minted (IDs start at 1), so a
// wire-delivered ErrNoSuchChunk proves the benefactor's full request
// loop — accept, decode, dispatch, encode — works. A single attempt, no
// retries: the prober measures, the data path's own retry policy heals.
func (s *Store) probeBen(id int) error {
	p, err := s.pool(proto.ChunkRef{Benefactor: id})
	if err != nil {
		return fmt.Errorf("probe ben%d: %w", id, err)
	}
	_, err = p.call(proto.ChunkReq{Op: proto.OpGetChunk, ID: 0, TraceID: obs.NewTraceID()})
	if err == nil || errors.Is(err, proto.ErrNoSuchChunk) {
		return nil
	}
	return fmt.Errorf("probe ben%d: %w", id, err)
}
