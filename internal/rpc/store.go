package rpc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nvmalloc/internal/obs"
	"nvmalloc/internal/proto"
	"nvmalloc/internal/store"
)

// Options tunes the client data path.
type Options struct {
	// PoolSize is the number of connections kept per benefactor. One gob
	// stream serializes its calls, so this is the per-SSD pipelining depth.
	// 0 means DefaultPoolSize.
	PoolSize int
	// Parallelism bounds how many chunk transfers a single
	// ReadAt/WriteAt/Get/Put keeps in flight. 0 means DefaultParallelism;
	// 1 reproduces the old strictly serial path.
	Parallelism int
	// CallTimeout bounds one chunk RPC round trip (socket deadline), so a
	// wedged benefactor costs a timeout instead of hanging the client.
	// 0 means DefaultCallTimeout; negative disables deadlines.
	CallTimeout time.Duration
	// DialTimeout bounds connection establishment to a benefactor.
	// 0 means DefaultDialTimeout.
	DialTimeout time.Duration
	// Retry governs transient-failure retries against one replica.
	Retry RetryPolicy
	// SuspectWindow is how long a benefactor that exhausted a retry budget
	// is deprioritized when ordering replica reads. 0 means
	// DefaultSuspectWindow; negative disables suspicion.
	SuspectWindow time.Duration
	// Dial overrides the benefactor transport dialer (fault injection in
	// tests). When nil, plain TCP with DialTimeout is used.
	Dial func(addr string) (net.Conn, error)
	// ForceGob pins benefactor connections to the legacy gob envelopes,
	// skipping the NVM1 binary-framing handshake. A compatibility escape
	// hatch — and the baseline side of the framing benchmarks.
	ForceGob bool
	// Obs receives the client's metrics (per-op latency histograms, pool
	// wait time, data-path counters) and chunk-lifecycle events. Nil gets
	// a fresh private obs.New instance; obs.Disabled() turns every
	// recording call into a no-op (and zeroes Stats).
	Obs *obs.Obs
}

// Defaults for Options fields left zero.
const (
	DefaultPoolSize      = 4
	DefaultParallelism   = 8
	DefaultCallTimeout   = 10 * time.Second
	DefaultDialTimeout   = 5 * time.Second
	DefaultSuspectWindow = 2 * time.Second
)

func (o Options) withDefaults() Options {
	if o.PoolSize <= 0 {
		o.PoolSize = DefaultPoolSize
	}
	if o.Parallelism <= 0 {
		o.Parallelism = DefaultParallelism
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = DefaultCallTimeout
	}
	if o.CallTimeout < 0 {
		o.CallTimeout = 0
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.SuspectWindow == 0 {
		o.SuspectWindow = DefaultSuspectWindow
	}
	if o.Obs == nil {
		o.Obs = obs.New("client")
	}
	o.Retry = o.Retry.withDefaults()
	return o
}

// Stats are a Store's cumulative data-path counters.
type Stats struct {
	ChunkGets      int64 // OpGetChunk calls issued
	ChunkPuts      int64 // OpPutChunk calls issued
	PagePuts       int64 // OpPutPages calls issued
	SSDReadBytes   int64 // chunk payload bytes fetched from benefactors
	SSDWriteBytes  int64 // payload bytes shipped to benefactors
	MetaRetries    int64 // ops retried after a stale chunk map
	InFlightPeak   int64 // max simultaneous chunk RPCs observed
	Retries        int64 // chunk RPC attempts beyond the first (transient failures)
	Failovers      int64 // chunk reads served by a non-primary replica
	DegradedWrites int64 // chunk writes that reached fewer than all replicas
}

// storeMetrics holds the client data path's registry handles, looked up
// once at Open so the hot path touches only atomics. Stats() is a
// compatibility shim over the same counters.
type storeMetrics struct {
	chunkGets, chunkPuts, pagePuts     *obs.Counter
	ssdReadBytes, ssdWriteBytes        *obs.Counter
	metaRetries                        *obs.Counter
	retries, failovers, degradedWrites *obs.Counter
	inFlight, inFlightPeak             *obs.Gauge
	getLat, putLat, pagePutLat         *obs.Histogram
	poolWait                           *obs.Histogram
}

func newStoreMetrics(o *obs.Obs) storeMetrics {
	r := o.Reg
	return storeMetrics{
		chunkGets:      r.Counter("rpc.chunk_gets"),
		chunkPuts:      r.Counter("rpc.chunk_puts"),
		pagePuts:       r.Counter("rpc.page_puts"),
		ssdReadBytes:   r.Counter("rpc.ssd_read_bytes"),
		ssdWriteBytes:  r.Counter("rpc.ssd_write_bytes"),
		metaRetries:    r.Counter("rpc.meta_retries"),
		retries:        r.Counter("rpc.retries"),
		failovers:      r.Counter("rpc.failovers"),
		degradedWrites: r.Counter("rpc.degraded_writes"),
		inFlight:       r.Gauge("rpc.inflight"),
		inFlightPeak:   r.Gauge("rpc.inflight_peak"),
		getLat:         r.Histogram("rpc.get_chunk.latency"),
		putLat:         r.Histogram("rpc.put_chunk.latency"),
		pagePutLat:     r.Histogram("rpc.put_pages.latency"),
		poolWait:       r.Histogram("rpc.pool_wait.latency"),
	}
}

func (m *storeMetrics) enter() { m.inFlightPeak.Max(m.inFlight.Add(1)) }
func (m *storeMetrics) exit()  { m.inFlight.Add(-1) }

// opLatency returns the latency histogram for one chunk op (nil for ops
// the client data path never times).
func (m *storeMetrics) opLatency(op proto.Op) *obs.Histogram {
	switch op {
	case proto.OpGetChunk:
		return m.getLat
	case proto.OpPutChunk:
		return m.putLat
	case proto.OpPutPages:
		return m.pagePutLat
	}
	return nil
}

// Store is a data-path client for the TCP aggregate store: it resolves
// files through the manager and moves chunk payloads directly between the
// application and the benefactors, with read-modify-write at chunk
// granularity for unaligned writes.
//
// Chunk transfers within one call fan out across a bounded worker group
// and across a small connection pool per benefactor, so a striped file's
// bandwidth aggregates over its contributors (paper §III-D) instead of
// serializing on a single socket. All methods are safe for concurrent use.
type Store struct {
	mgr       *ManagerClient
	opts      Options
	mu        sync.Mutex
	chunkSize int64
	benAddrs  map[int]string
	// benAlive mirrors the manager's view of benefactor liveness (refreshed
	// by Refresh); writes skip manager-dead replicas instead of burning a
	// retry budget against them.
	benAlive map[int]bool
	// suspectUntil deprioritizes benefactors that just exhausted a retry
	// budget when ordering replica reads, so a dying node costs one timeout
	// burst, not one per chunk.
	suspectUntil map[int]time.Time
	pools        map[int]*connPool
	meta         map[string]proto.FileInfo
	// arena pools chunk payload buffers for the binary data path: response
	// payloads are leased from it by the wire layer and returned through
	// ReleaseChunk (directly by readAt/writeAt, via store.BufferLender by
	// the chunk cache). Sized to the store's chunk geometry at Open.
	arena *proto.Arena
	// gobAddrs caches benefactor addresses that failed the NVM1 handshake
	// (legacy servers), so redials skip the probe.
	gobAddrs map[string]bool

	obs *obs.Obs
	m   storeMetrics

	// pending batches locally completed spans for export to the manager
	// (OpReportSpans), so traces rooted in this client survive the client
	// process's exit and remain scrapeable by nvmctl.
	pendingMu sync.Mutex
	pending   []proto.Span
	exports   sync.WaitGroup
}

// Open connects to the manager at addr with default Options.
func Open(addr string) (*Store, error) { return OpenWith(addr, Options{}) }

// OpenWith connects to the manager at addr and discovers the store's
// geometry and benefactors.
func OpenWith(addr string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	mc, err := DialManagerTimeout(addr, opts.CallTimeout)
	if err != nil {
		return nil, err
	}
	s := &Store{
		mgr:          mc,
		opts:         opts,
		benAddrs:     make(map[int]string),
		benAlive:     make(map[int]bool),
		suspectUntil: make(map[int]time.Time),
		pools:        make(map[int]*connPool),
		meta:         make(map[string]proto.FileInfo),
		gobAddrs:     make(map[string]bool),
		obs:          opts.Obs,
		m:            newStoreMetrics(opts.Obs),
	}
	if err := s.Refresh(); err != nil {
		mc.Close()
		return nil, err
	}
	s.arena = proto.NewArena(s.chunkSize)
	s.obs.SetSpanSink(s.exportSpan)
	return s, nil
}

// spanBatch is how many completed spans accumulate before a batch ships to
// the manager.
const spanBatch = 64

// exportSpan is the client Obs's span sink: completed spans are batched and
// shipped to the manager's span ring (best effort), where the nvmctl
// collector finds them after this client exits. A full batch is sent on its
// own goroutine so recording never blocks on a manager round trip.
func (s *Store) exportSpan(sp obs.Span) {
	s.pendingMu.Lock()
	s.pending = append(s.pending, proto.Span(sp))
	var batch []proto.Span
	if len(s.pending) >= spanBatch {
		batch = s.pending
		s.pending = nil
	}
	s.pendingMu.Unlock()
	if batch == nil {
		return
	}
	s.exports.Add(1)
	go func() {
		defer s.exports.Done()
		_, _ = s.mgr.call(proto.ManagerReq{Op: proto.OpReportSpans, Spans: batch})
	}()
}

// flushSpans synchronously ships any batched spans (best effort).
func (s *Store) flushSpans() {
	s.pendingMu.Lock()
	batch := s.pending
	s.pending = nil
	s.pendingMu.Unlock()
	if len(batch) == 0 {
		return
	}
	_, _ = s.mgr.call(proto.ManagerReq{Op: proto.OpReportSpans, Spans: batch})
}

// eventScope mints the correlation context of one public convenience op: a
// fresh trace ID that stamps ring events on every machine the op touches,
// but no spans. Span trees begin only at the library roots (core.Client's
// malloc/free/checkpoint/restore) or at a caller-provided span context (the
// *Ctx variants), so the untraced hot path pays for an ID and its events —
// the pre-span cost — never for span minting or export.
func eventScope(varName string) store.SpanInfo {
	return store.SpanInfo{Trace: obs.NewTraceID(), Var: varName}
}

// startChild begins a span joined to sc, or nothing when sc carries no
// parent span (an event-only convenience op).
func (s *Store) startChild(sc store.SpanInfo, name string) *obs.ActiveSpan {
	if !sc.Traced() {
		return nil
	}
	sp := s.obs.StartSpan(sc.Trace, sc.Parent, name)
	sp.SetVar(sc.Var)
	return sp
}

// Refresh re-fetches the benefactor table (picking up new registrations).
func (s *Store) Refresh() error {
	resp, err := s.mgr.call(proto.ManagerReq{Op: proto.OpStatus})
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chunkSize = resp.ChunkSize
	for _, b := range resp.Bens {
		if prev, ok := s.benAddrs[b.ID]; ok && prev != b.Addr {
			if p, ok := s.pools[b.ID]; ok {
				p.close()
				delete(s.pools, b.ID)
			}
		}
		s.benAddrs[b.ID] = b.Addr
		s.benAlive[b.ID] = b.Alive
	}
	// Fresh liveness from the manager supersedes local suspicion.
	s.suspectUntil = make(map[int]time.Time)
	return nil
}

// Close ships any unexported spans and drops every connection.
func (s *Store) Close() error {
	s.obs.SetSpanSink(nil)
	s.exports.Wait()
	s.flushSpans()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.pools {
		p.close()
	}
	return s.mgr.Close()
}

// ChunkSize returns the striping unit.
func (s *Store) ChunkSize() int64 { return s.chunkSize }

// ReleaseChunk returns a chunk payload obtained from GetChunk (or the
// chunk-granular read path) to the store's buffer arena. The buffer must
// not be used afterwards. Buffers of foreign geometry — including payloads
// decoded from legacy gob connections before the arena existed, which are
// private anyway — are accepted or ignored safely, so callers can release
// unconditionally.
func (s *Store) ReleaseChunk(buf []byte) { s.arena.Put(buf) }

// Manager exposes the metadata client.
func (s *Store) Manager() *ManagerClient { return s.mgr }

// Stats returns a snapshot of the data-path counters. It is a
// compatibility shim over the Obs metrics registry (all zeros when the
// store was opened with obs.Disabled()).
func (s *Store) Stats() Stats {
	return Stats{
		ChunkGets:      s.m.chunkGets.Load(),
		ChunkPuts:      s.m.chunkPuts.Load(),
		PagePuts:       s.m.pagePuts.Load(),
		SSDReadBytes:   s.m.ssdReadBytes.Load(),
		SSDWriteBytes:  s.m.ssdWriteBytes.Load(),
		MetaRetries:    s.m.metaRetries.Load(),
		InFlightPeak:   s.m.inFlightPeak.Load(),
		Retries:        s.m.retries.Load(),
		Failovers:      s.m.failovers.Load(),
		DegradedWrites: s.m.degradedWrites.Load(),
	}
}

// Obs exposes the client's observability state (metrics registry and
// event ring) so applications can export or inspect it.
func (s *Store) Obs() *obs.Obs { return s.obs }

// pool returns the connection pool for the benefactor holding ref.
func (s *Store) pool(ref proto.ChunkRef) (*connPool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.pools[ref.Benefactor]; ok {
		return p, nil
	}
	addr, ok := s.benAddrs[ref.Benefactor]
	if !ok || addr == "" {
		return nil, fmt.Errorf("%w: benefactor %d has no address", proto.ErrBenefactorDead, ref.Benefactor)
	}
	dial := func(a string) (*chunkConn, error) {
		s.mu.Lock()
		gobOnly := s.opts.ForceGob || s.gobAddrs[a]
		s.mu.Unlock()
		var fellBack bool
		c, err := dialChunk(a, s.opts.Dial, s.opts.DialTimeout, s.opts.CallTimeout, wireConfig{
			arena: s.arena, maxPayload: maxPayloadFor(s.chunkSize),
			gobOnly: gobOnly, fellBack: &fellBack,
		})
		if fellBack {
			// The peer is a legacy gob server: remember, so later dials to
			// this address skip the handshake probe.
			s.mu.Lock()
			s.gobAddrs[a] = true
			s.mu.Unlock()
		}
		return c, err
	}
	// When the pool's last live connection breaks, forget the address's
	// gob verdict: the server may have been upgraded in place, and the
	// next dial should probe NVM1 again instead of speaking gob forever.
	onDrain := func() {
		s.mu.Lock()
		evicted := s.gobAddrs[addr]
		delete(s.gobAddrs, addr)
		s.mu.Unlock()
		if evicted {
			s.obs.Event("rpc", "gob-verdict-evict", "", "addr="+addr)
		}
	}
	p := newConnPool(addr, s.opts.PoolSize, dial, s.obs, s.m.poolWait, onDrain)
	s.pools[ref.Benefactor] = p
	return p, nil
}

// benLive reports the manager's last-known liveness of a benefactor
// (unknown means alive — optimism costs at most a retry budget).
func (s *Store) benLive(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	alive, ok := s.benAlive[id]
	return !ok || alive
}

// markSuspect deprioritizes a benefactor for reads after a retry budget was
// exhausted against it.
func (s *Store) markSuspect(id int) {
	if s.opts.SuspectWindow <= 0 {
		return
	}
	s.mu.Lock()
	s.suspectUntil[id] = time.Now().Add(s.opts.SuspectWindow)
	s.mu.Unlock()
}

// readOrder sorts a chunk's replicas for a read attempt: benefactors the
// manager reports alive and that are not locally suspect first, then
// suspects, then dead ones (last-resort — the manager's view may be stale).
func (s *Store) readOrder(refs []proto.ChunkRef) []proto.ChunkRef {
	if len(refs) <= 1 {
		return refs
	}
	s.mu.Lock()
	now := time.Now()
	rank := func(ref proto.ChunkRef) int {
		if alive, ok := s.benAlive[ref.Benefactor]; ok && !alive {
			return 2
		}
		if until, ok := s.suspectUntil[ref.Benefactor]; ok && now.Before(until) {
			return 1
		}
		return 0
	}
	out := make([]proto.ChunkRef, len(refs))
	copy(out, refs)
	ranks := make([]int, len(out))
	for i, ref := range out {
		ranks[i] = rank(ref)
	}
	s.mu.Unlock()
	// Stable insertion sort: replica lists are tiny and primary-first order
	// must survive within a rank.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && ranks[j] < ranks[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
			ranks[j], ranks[j-1] = ranks[j-1], ranks[j]
		}
	}
	return out
}

// callChunk performs one chunk RPC against one replica, retrying transient
// transport failures with backoff up to the policy's attempt budget. Each
// attempt's round trip is timed into the op's latency histogram.
func (s *Store) callChunk(ref proto.ChunkRef, req proto.ChunkReq) (proto.ChunkResp, error) {
	lat := s.m.opLatency(req.Op)
	var last error
	for attempt := 1; attempt <= s.opts.Retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			s.m.retries.Add(1)
			s.obs.Event("rpc", "retry", req.TraceID,
				fmt.Sprintf("%s %v attempt=%d err=%v", req.Op, ref, attempt, last))
			time.Sleep(s.opts.Retry.backoff(attempt - 1))
		}
		p, err := s.pool(ref)
		if err != nil {
			return proto.ChunkResp{}, err // no address: only failover can help
		}
		s.m.enter()
		start := time.Now()
		resp, err := p.call(req)
		if lat != nil {
			lat.Observe(time.Since(start))
		}
		s.m.exit()
		if err == nil || !IsTransient(err) {
			return resp, err
		}
		last = err
	}
	s.markSuspect(ref.Benefactor)
	return proto.ChunkResp{}, last
}

// replicaRefs returns every copy of chunk idx of a file, primary first.
// Metadata from an unreplicated manager carries no replica table; the
// primary ref alone is the degenerate copy set.
func replicaRefs(fi proto.FileInfo, idx int) []proto.ChunkRef {
	if idx < len(fi.Replicas) && len(fi.Replicas[idx]) > 0 {
		return fi.Replicas[idx]
	}
	return fi.Chunks[idx : idx+1]
}

// fileInfo returns (caching) a file's chunk map.
func (s *Store) fileInfo(sc store.SpanInfo, name string) (proto.FileInfo, error) {
	s.mu.Lock()
	fi, ok := s.meta[name]
	s.mu.Unlock()
	if ok {
		return fi, nil
	}
	resp, err := s.mgr.call(proto.ManagerReq{
		Op: proto.OpLookup, TraceID: sc.Trace, ParentSpanID: sc.Parent, Name: name,
	})
	if err != nil {
		return resp.File, err
	}
	s.mu.Lock()
	s.meta[name] = resp.File
	s.mu.Unlock()
	return resp.File, nil
}

// invalidateMeta drops the cached chunk map of a file.
func (s *Store) invalidateMeta(name string) {
	s.mu.Lock()
	delete(s.meta, name)
	s.mu.Unlock()
}

// Create reserves a file of the given size.
func (s *Store) Create(name string, size int64) error {
	_, err := s.create(eventScope(name), name, size)
	return err
}

// CreateInfo reserves a file and returns its chunk map.
func (s *Store) CreateInfo(name string, size int64) (proto.FileInfo, error) {
	return s.create(eventScope(name), name, size)
}

// create allocates the file under an existing span context. The trace and
// parent span ride the manager RPC, so the manager records its allocation
// span (and events) under the client's.
func (s *Store) create(sc store.SpanInfo, name string, size int64) (proto.FileInfo, error) {
	resp, err := s.mgr.call(proto.ManagerReq{
		Op: proto.OpCreate, TraceID: sc.Trace, ParentSpanID: sc.Parent, Name: name, Size: size,
	})
	if err != nil {
		return proto.FileInfo{}, err
	}
	s.obs.Event("rpc", "alloc", sc.Trace, fmt.Sprintf("file=%q size=%d chunks=%d", name, size, len(resp.File.Chunks)))
	s.mu.Lock()
	s.meta[name] = resp.File
	s.mu.Unlock()
	return resp.File, nil
}

// Link appends the part files' chunks to dst (the zero-copy checkpoint
// merge of §III-E). The cached chunk map of dst is replaced with the
// manager's post-link view; the parts' maps are untouched (linking does
// not move their chunks).
func (s *Store) Link(dst string, parts []string) (proto.FileInfo, error) {
	return s.link(eventScope(dst), dst, parts)
}

func (s *Store) link(sc store.SpanInfo, dst string, parts []string) (proto.FileInfo, error) {
	resp, err := s.mgr.call(proto.ManagerReq{
		Op: proto.OpLink, TraceID: sc.Trace, ParentSpanID: sc.Parent, Name: dst, Parts: parts,
	})
	if err != nil {
		s.invalidateMeta(dst)
		return proto.FileInfo{}, err
	}
	s.obs.Event("rpc", "link", sc.Trace, fmt.Sprintf("dst=%q parts=%d chunks=%d", dst, len(parts), len(resp.File.Chunks)))
	s.mu.Lock()
	s.meta[dst] = resp.File
	s.mu.Unlock()
	return resp.File, nil
}

// Derive creates name sharing a chunk sub-range of src (checkpoint restore
// without data movement) and caches the new file's chunk map.
func (s *Store) Derive(name, src string, fromChunk, nChunks int, size int64) (proto.FileInfo, error) {
	return s.derive(eventScope(name), name, src, fromChunk, nChunks, size)
}

func (s *Store) derive(sc store.SpanInfo, name, src string, fromChunk, nChunks int, size int64) (proto.FileInfo, error) {
	resp, err := s.mgr.call(proto.ManagerReq{
		Op: proto.OpDerive, TraceID: sc.Trace, ParentSpanID: sc.Parent, Name: name, Src: src,
		FromChunk: fromChunk, NChunks: nChunks, Size: size,
	})
	if err != nil {
		s.invalidateMeta(name)
		return proto.FileInfo{}, err
	}
	s.obs.Event("rpc", "derive", sc.Trace, fmt.Sprintf("file=%q src=%q chunks=%d", name, src, nChunks))
	s.mu.Lock()
	s.meta[name] = resp.File
	s.mu.Unlock()
	return resp.File, nil
}

// Remap allocates a fresh chunk for chunk idx of a file (server-side COW
// copy when the chunk is shared) and returns the fresh replica set,
// primary first. The cached chunk map is patched in place so subsequent
// reads and writes through this Store target the fresh chunk instead of
// failing on the stale one.
func (s *Store) Remap(name string, chunkIdx int) ([]proto.ChunkRef, error) {
	return s.remap(eventScope(name), name, chunkIdx)
}

func (s *Store) remap(sc store.SpanInfo, name string, chunkIdx int) ([]proto.ChunkRef, error) {
	resp, err := s.mgr.call(proto.ManagerReq{
		Op: proto.OpRemap, TraceID: sc.Trace, ParentSpanID: sc.Parent, Name: name, ChunkIdx: chunkIdx,
	})
	if err != nil {
		s.invalidateMeta(name)
		return nil, err
	}
	fresh := resp.NewRefs
	if len(fresh) == 0 {
		fresh = []proto.ChunkRef{resp.NewRef}
	}
	s.obs.Event("rpc", "remap", sc.Trace, fmt.Sprintf("file=%q chunk=%d %v -> %v", name, chunkIdx, resp.OldRef, fresh[0]))
	s.mu.Lock()
	if fi, ok := s.meta[name]; ok && chunkIdx < len(fi.Chunks) {
		fi.Chunks = append([]proto.ChunkRef(nil), fi.Chunks...)
		fi.Chunks[chunkIdx] = fresh[0]
		if chunkIdx < len(fi.Replicas) {
			fi.Replicas = append([][]proto.ChunkRef(nil), fi.Replicas...)
			fi.Replicas[chunkIdx] = fresh
		}
		s.meta[name] = fi
	} else {
		delete(s.meta, name)
	}
	s.mu.Unlock()
	return fresh, nil
}

// SetTTL assigns a relative lifetime to a file on the manager's clock.
func (s *Store) SetTTL(name string, ttl time.Duration) error {
	return s.mgr.SetTTLIn(name, ttl)
}

// Delete removes a file.
func (s *Store) Delete(name string) error {
	return s.deleteFile(eventScope(name), name)
}

func (s *Store) deleteFile(sc store.SpanInfo, name string) error {
	s.invalidateMeta(name)
	_, err := s.mgr.call(proto.ManagerReq{
		Op: proto.OpDelete, TraceID: sc.Trace, ParentSpanID: sc.Parent, Name: name,
	})
	if err == nil {
		s.obs.Event("rpc", "delete", sc.Trace, fmt.Sprintf("file=%q", name))
	}
	return err
}

// Stat returns a file's metadata.
func (s *Store) Stat(name string) (proto.FileInfo, error) {
	return s.stat(store.SpanInfo{}, name)
}

func (s *Store) stat(sc store.SpanInfo, name string) (proto.FileInfo, error) {
	// Always consult the manager: another client may have remapped
	// chunks.
	s.invalidateMeta(name)
	return s.fileInfo(sc, name)
}

// getChunk fetches one chunk payload, failing over across its replicas: a
// replica whose benefactor is dead, wedged, or resetting connections costs
// a bounded retry burst, then the next copy serves the read. ErrNoSuchChunk
// is terminal — the chunk map is stale and only a re-lookup can help.
func (s *Store) getChunk(sc store.SpanInfo, refs []proto.ChunkRef) ([]byte, error) {
	sp := s.startChild(sc, "rpc.get_chunk")
	data, err := s.getChunkSpanned(sp, sc, refs)
	sp.AddBytes(int64(len(data)))
	sp.SetErr(err)
	sp.End()
	return data, err
}

func (s *Store) getChunkSpanned(sp *obs.ActiveSpan, sc store.SpanInfo, refs []proto.ChunkRef) ([]byte, error) {
	tid := sc.Trace
	var firstErr error
	for i, ref := range s.readOrder(refs) {
		resp, err := s.callChunk(ref, proto.ChunkReq{
			Op: proto.OpGetChunk, TraceID: tid, ParentSpanID: sp.ID(), VarName: sc.Var, ID: ref.ID,
		})
		if err == nil {
			if i > 0 {
				s.m.failovers.Add(1)
				s.obs.Event("rpc", "failover", tid,
					fmt.Sprintf("read %v served by replica %d (primary %v failed: %v)", ref, i, refs[0], firstErr))
			}
			s.m.chunkGets.Add(1)
			s.m.ssdReadBytes.Add(int64(len(resp.Data)))
			return resp.Data, nil
		}
		if errors.Is(err, proto.ErrNoSuchChunk) {
			return nil, err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, firstErr
}

// putRefs ships one chunk RPC to every replica of a chunk: manager-dead
// benefactors are skipped (unless every copy is thought dead — then the
// liveness table itself may be stale and each is attempted), live ones that
// still fail degrade the write. The write succeeds if at least one copy
// lands; reaching fewer than all replicas bumps DegradedWrites and repair
// restores the missing copies later.
func (s *Store) putRefs(sp *obs.ActiveSpan, sc store.SpanInfo, refs []proto.ChunkRef, mkReq func(proto.ChunkRef) proto.ChunkReq) error {
	tid := sc.Trace
	liveThought := 0
	for _, ref := range refs {
		if s.benLive(ref.Benefactor) {
			liveThought++
		}
	}
	wrote := 0
	var firstErr error
	for _, ref := range refs {
		if liveThought > 0 && !s.benLive(ref.Benefactor) {
			continue
		}
		req := mkReq(ref)
		req.TraceID = tid
		req.ParentSpanID = sp.ID()
		req.VarName = sc.Var
		_, err := s.callChunk(ref, req)
		if err != nil {
			if errors.Is(err, proto.ErrNoSuchChunk) {
				return err // stale chunk map: re-lookup, not degradation
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		wrote++
	}
	if wrote == 0 {
		if firstErr != nil {
			return firstErr
		}
		return fmt.Errorf("%w: no live replica of chunk %v", proto.ErrBenefactorDead, refs[0])
	}
	if wrote < len(refs) {
		s.m.degradedWrites.Add(1)
		s.obs.Event("rpc", "degraded-write", tid,
			fmt.Sprintf("chunk %v reached %d/%d replicas (first error: %v)", refs[0], wrote, len(refs), firstErr))
	}
	return nil
}

// putChunk stores one full chunk payload on all (live) replicas.
func (s *Store) putChunk(sc store.SpanInfo, refs []proto.ChunkRef, data []byte) error {
	sp := s.startChild(sc, "rpc.put_chunk")
	sp.AddBytes(int64(len(data)))
	err := s.putRefs(sp, sc, refs, func(ref proto.ChunkRef) proto.ChunkReq {
		return proto.ChunkReq{Op: proto.OpPutChunk, ID: ref.ID, Data: data}
	})
	sp.SetErr(err)
	sp.End()
	if err != nil {
		return err
	}
	s.m.chunkPuts.Add(1)
	s.m.ssdWriteBytes.Add(int64(len(data)))
	if s.obs.EventsEnabled() {
		s.obs.Event("rpc", "stripe-write", sc.Trace, fmt.Sprintf("%v %d bytes", refs[0], len(data)))
	}
	return nil
}

// putPages ships only the dirty pages of a chunk (paper Table VII) to all
// (live) replicas: the benefactor applies them server-side, so a sparsely
// dirtied chunk costs its dirty bytes, not a whole-chunk transfer.
func (s *Store) putPages(sc store.SpanInfo, refs []proto.ChunkRef, offs []int64, pages [][]byte) error {
	sp := s.startChild(sc, "rpc.put_pages")
	for _, pg := range pages {
		sp.AddBytes(int64(len(pg)))
	}
	err := s.putRefs(sp, sc, refs, func(ref proto.ChunkRef) proto.ChunkReq {
		return proto.ChunkReq{Op: proto.OpPutPages, ID: ref.ID, PageOffs: offs, PageData: pages}
	})
	sp.SetErr(err)
	sp.End()
	if err != nil {
		return err
	}
	s.m.pagePuts.Add(1)
	for _, pg := range pages {
		s.m.ssdWriteBytes.Add(int64(len(pg)))
	}
	return nil
}

// span is one chunk-aligned slice of a ReadAt/WriteAt buffer.
type span struct {
	idx  int   // chunk index within the file
	coff int64 // offset within the chunk
	buf  []byte
}

// chunkSpans splits buf (addressing file bytes starting at off) into
// per-chunk spans.
func chunkSpans(chunkSize, off int64, buf []byte) []span {
	var out []span
	for len(buf) > 0 {
		idx := int(off / chunkSize)
		coff := off % chunkSize
		n := chunkSize - coff
		if int64(len(buf)) < n {
			n = int64(len(buf))
		}
		out = append(out, span{idx: idx, coff: coff, buf: buf[:n]})
		buf = buf[n:]
		off += n
	}
	return out
}

// forEach runs do(0..n-1) with at most s.opts.Parallelism calls in flight,
// returning the first error. After an error no new work starts; transfers
// already in flight finish (gob calls are not interruptible mid-message).
func (s *Store) forEach(n int, do func(int) error) error {
	par := s.opts.Parallelism
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			if err := do(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := do(i); err != nil {
					errOnce.Do(func() { firstErr = err })
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// withMetaRetry runs fn against the file's (possibly cached) chunk map. If
// fn fails with ErrNoSuchChunk the map was stale — a chunk was remapped or
// the file recreated by another client — so the map is re-fetched from the
// manager and fn retried once.
func (s *Store) withMetaRetry(sc store.SpanInfo, name string, fn func(proto.FileInfo) error) error {
	fi, err := s.fileInfo(sc, name)
	if err != nil {
		return err
	}
	if err = fn(fi); !errors.Is(err, proto.ErrNoSuchChunk) {
		return err
	}
	s.m.metaRetries.Add(1)
	s.obs.Event("rpc", "meta-retry", sc.Trace, fmt.Sprintf("stale chunk map for %q, re-fetching", name))
	s.invalidateMeta(name)
	if fi, err = s.fileInfo(sc, name); err != nil {
		return err
	}
	return fn(fi)
}

// ReadAt fills buf from the file at off. Chunk fetches fan out across the
// connection pools, bounded by Options.Parallelism.
func (s *Store) ReadAt(name string, off int64, buf []byte) error {
	sc := eventScope(name)
	s.obs.Event("rpc", "read", sc.Trace, fmt.Sprintf("file=%q off=%d len=%d", name, off, len(buf)))
	return s.readAt(sc, name, off, buf)
}

func (s *Store) readAt(sc store.SpanInfo, name string, off int64, buf []byte) error {
	return s.withMetaRetry(sc, name, func(fi proto.FileInfo) error {
		if off < 0 || off+int64(len(buf)) > fi.Size {
			return fmt.Errorf("%w: read [%d,%d) of %q (%d bytes)", proto.ErrChunkOutOfRange, off, off+int64(len(buf)), name, fi.Size)
		}
		spans := chunkSpans(s.chunkSize, off, buf)
		return s.forEach(len(spans), func(i int) error {
			sp := spans[i]
			data, err := s.getChunk(sc, replicaRefs(fi, sp.idx))
			if err != nil {
				return err
			}
			if int64(len(data)) < sp.coff+int64(len(sp.buf)) {
				s.arena.Put(data)
				return fmt.Errorf("chunk %v: short payload %d bytes", fi.Chunks[sp.idx], len(data))
			}
			copy(sp.buf, data[sp.coff:])
			s.arena.Put(data)
			return nil
		})
	})
}

// WriteAt stores data into the file at off (read-modify-write for partial
// chunks). Chunk transfers fan out like ReadAt's.
func (s *Store) WriteAt(name string, off int64, data []byte) error {
	sc := eventScope(name)
	s.obs.Event("rpc", "write", sc.Trace, fmt.Sprintf("file=%q off=%d len=%d", name, off, len(data)))
	return s.writeAt(sc, name, off, data)
}

func (s *Store) writeAt(sc store.SpanInfo, name string, off int64, data []byte) error {
	return s.withMetaRetry(sc, name, func(fi proto.FileInfo) error {
		if off < 0 || off+int64(len(data)) > fi.Size {
			return fmt.Errorf("%w: write [%d,%d) of %q (%d bytes)", proto.ErrChunkOutOfRange, off, off+int64(len(data)), name, fi.Size)
		}
		spans := chunkSpans(s.chunkSize, off, data)
		return s.forEach(len(spans), func(i int) error {
			sp := spans[i]
			refs := replicaRefs(fi, sp.idx)
			if sp.coff == 0 && int64(len(sp.buf)) == s.chunkSize {
				return s.putChunk(sc, refs, sp.buf)
			}
			cur, err := s.getChunk(sc, refs)
			if err != nil {
				return err
			}
			copy(cur[sp.coff:], sp.buf)
			err = s.putChunk(sc, refs, cur)
			s.arena.Put(cur) // the put has left the wire; the RMW staging buffer returns
			return err
		})
	})
}

// Put uploads a whole payload as a (new) file. The allocation and every
// stripe write share one event trace ID.
func (s *Store) Put(name string, data []byte) error {
	sc := eventScope(name)
	s.obs.Event("rpc", "put", sc.Trace, fmt.Sprintf("file=%q len=%d", name, len(data)))
	return s.put(sc, name, data)
}

// PutCtx is Put under a caller-provided span context (store.WithSpan): the
// upload joins the caller's trace instead of rooting its own.
func (s *Store) PutCtx(ctx store.Ctx, name string, data []byte) error {
	sc := store.SpanOf(ctx)
	if !sc.Traced() {
		return s.Put(name, data)
	}
	s.obs.Event("rpc", "put", sc.Trace, fmt.Sprintf("file=%q len=%d", name, len(data)))
	return s.put(sc, name, data)
}

func (s *Store) put(sc store.SpanInfo, name string, data []byte) error {
	if _, err := s.create(sc, name, int64(len(data))); err != nil {
		return err
	}
	return s.writeAt(sc, name, 0, data)
}

// Get downloads a whole file.
func (s *Store) Get(name string) ([]byte, error) {
	sc := eventScope(name)
	s.obs.Event("rpc", "get", sc.Trace, fmt.Sprintf("file=%q", name))
	return s.get(sc, name)
}

// GetCtx is Get under a caller-provided span context.
func (s *Store) GetCtx(ctx store.Ctx, name string) ([]byte, error) {
	sc := store.SpanOf(ctx)
	if !sc.Traced() {
		return s.Get(name)
	}
	s.obs.Event("rpc", "get", sc.Trace, fmt.Sprintf("file=%q", name))
	return s.get(sc, name)
}

func (s *Store) get(sc store.SpanInfo, name string) ([]byte, error) {
	fi, err := s.stat(sc, name)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, fi.Size)
	if err := s.readAt(sc, name, 0, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
