package rpc

import (
	"fmt"
	"sync"

	"nvmalloc/internal/proto"
)

// Store is a data-path client for the TCP aggregate store: it resolves
// files through the manager and moves chunk payloads directly between the
// application and the benefactors, with read-modify-write at chunk
// granularity for unaligned writes.
type Store struct {
	mgr       *ManagerClient
	mu        sync.Mutex
	chunkSize int64
	benAddrs  map[int]string
	conns     map[int]*chunkConn
	meta      map[string]proto.FileInfo
}

// Open connects to the manager at addr and discovers the store's
// geometry and benefactors.
func Open(addr string) (*Store, error) {
	mc, err := DialManager(addr)
	if err != nil {
		return nil, err
	}
	s := &Store{
		mgr:      mc,
		benAddrs: make(map[int]string),
		conns:    make(map[int]*chunkConn),
		meta:     make(map[string]proto.FileInfo),
	}
	if err := s.Refresh(); err != nil {
		mc.Close()
		return nil, err
	}
	return s, nil
}

// Refresh re-fetches the benefactor table (picking up new registrations).
func (s *Store) Refresh() error {
	resp, err := s.mgr.call(proto.ManagerReq{Op: proto.OpStatus})
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chunkSize = resp.ChunkSize
	for _, b := range resp.Bens {
		if prev, ok := s.benAddrs[b.ID]; ok && prev != b.Addr {
			delete(s.conns, b.ID)
		}
		s.benAddrs[b.ID] = b.Addr
	}
	return nil
}

// Close drops every connection.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.conns {
		c.conn.Close()
	}
	return s.mgr.Close()
}

// ChunkSize returns the striping unit.
func (s *Store) ChunkSize() int64 { return s.chunkSize }

// Manager exposes the metadata client.
func (s *Store) Manager() *ManagerClient { return s.mgr }

// ben returns a connection to the benefactor holding ref.
func (s *Store) ben(ref proto.ChunkRef) (*chunkConn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.conns[ref.Benefactor]; ok {
		return c, nil
	}
	addr, ok := s.benAddrs[ref.Benefactor]
	if !ok || addr == "" {
		return nil, fmt.Errorf("%w: benefactor %d has no address", proto.ErrBenefactorDead, ref.Benefactor)
	}
	c, err := dialChunk(addr)
	if err != nil {
		return nil, err
	}
	s.conns[ref.Benefactor] = c
	return c, nil
}

// fileInfo returns (caching) a file's chunk map.
func (s *Store) fileInfo(name string) (proto.FileInfo, error) {
	s.mu.Lock()
	fi, ok := s.meta[name]
	s.mu.Unlock()
	if ok {
		return fi, nil
	}
	fi, err := s.mgr.Lookup(name)
	if err != nil {
		return fi, err
	}
	s.mu.Lock()
	s.meta[name] = fi
	s.mu.Unlock()
	return fi, nil
}

// Create reserves a file of the given size.
func (s *Store) Create(name string, size int64) error {
	fi, err := s.mgr.Create(name, size)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.meta[name] = fi
	s.mu.Unlock()
	return nil
}

// Delete removes a file.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	delete(s.meta, name)
	s.mu.Unlock()
	return s.mgr.Delete(name)
}

// Stat returns a file's metadata.
func (s *Store) Stat(name string) (proto.FileInfo, error) {
	// Always consult the manager: another client may have remapped
	// chunks.
	s.mu.Lock()
	delete(s.meta, name)
	s.mu.Unlock()
	return s.fileInfo(name)
}

// getChunk fetches one chunk payload.
func (s *Store) getChunk(ref proto.ChunkRef) ([]byte, error) {
	c, err := s.ben(ref)
	if err != nil {
		return nil, err
	}
	resp, err := c.call(proto.ChunkReq{Op: proto.OpGetChunk, ID: ref.ID})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// putChunk stores one full chunk payload.
func (s *Store) putChunk(ref proto.ChunkRef, data []byte) error {
	c, err := s.ben(ref)
	if err != nil {
		return err
	}
	_, err = c.call(proto.ChunkReq{Op: proto.OpPutChunk, ID: ref.ID, Data: data})
	return err
}

// ReadAt fills buf from the file at off.
func (s *Store) ReadAt(name string, off int64, buf []byte) error {
	fi, err := s.fileInfo(name)
	if err != nil {
		return err
	}
	if off < 0 || off+int64(len(buf)) > fi.Size {
		return fmt.Errorf("%w: read [%d,%d) of %q (%d bytes)", proto.ErrChunkOutOfRange, off, off+int64(len(buf)), name, fi.Size)
	}
	for len(buf) > 0 {
		idx := int(off / s.chunkSize)
		coff := off % s.chunkSize
		data, err := s.getChunk(fi.Chunks[idx])
		if err != nil {
			return err
		}
		n := copy(buf, data[coff:])
		buf = buf[n:]
		off += int64(n)
	}
	return nil
}

// WriteAt stores data into the file at off (read-modify-write for
// partial chunks).
func (s *Store) WriteAt(name string, off int64, data []byte) error {
	fi, err := s.fileInfo(name)
	if err != nil {
		return err
	}
	if off < 0 || off+int64(len(data)) > fi.Size {
		return fmt.Errorf("%w: write [%d,%d) of %q (%d bytes)", proto.ErrChunkOutOfRange, off, off+int64(len(data)), name, fi.Size)
	}
	for len(data) > 0 {
		idx := int(off / s.chunkSize)
		coff := off % s.chunkSize
		n := s.chunkSize - coff
		if int64(len(data)) < n {
			n = int64(len(data))
		}
		ref := fi.Chunks[idx]
		if coff == 0 && n == s.chunkSize {
			if err := s.putChunk(ref, data[:n]); err != nil {
				return err
			}
		} else {
			cur, err := s.getChunk(ref)
			if err != nil {
				return err
			}
			copy(cur[coff:], data[:n])
			if err := s.putChunk(ref, cur); err != nil {
				return err
			}
		}
		data = data[n:]
		off += n
	}
	return nil
}

// Put uploads a whole payload as a (new) file.
func (s *Store) Put(name string, data []byte) error {
	if err := s.Create(name, int64(len(data))); err != nil {
		return err
	}
	return s.WriteAt(name, 0, data)
}

// Get downloads a whole file.
func (s *Store) Get(name string) ([]byte, error) {
	fi, err := s.Stat(name)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, fi.Size)
	if err := s.ReadAt(name, 0, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
