package rpc

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nvmalloc/internal/obs"
	"nvmalloc/internal/proto"
	"nvmalloc/internal/shardmap"
	"nvmalloc/internal/store"
)

// Options tunes the client data path.
type Options struct {
	// PoolSize is the number of connections kept per benefactor. One gob
	// stream serializes its calls, so this is the per-SSD pipelining depth.
	// 0 means DefaultPoolSize.
	PoolSize int
	// Parallelism bounds how many chunk transfers a single
	// ReadAt/WriteAt/Get/Put keeps in flight. 0 means DefaultParallelism;
	// 1 reproduces the old strictly serial path.
	Parallelism int
	// CallTimeout bounds one chunk RPC round trip (socket deadline), so a
	// wedged benefactor costs a timeout instead of hanging the client.
	// 0 means DefaultCallTimeout; negative disables deadlines.
	CallTimeout time.Duration
	// DialTimeout bounds connection establishment to a benefactor.
	// 0 means DefaultDialTimeout.
	DialTimeout time.Duration
	// Retry governs transient-failure retries against one replica.
	Retry RetryPolicy
	// SuspectWindow is how long a benefactor that exhausted a retry budget
	// is deprioritized when ordering replica reads. 0 means
	// DefaultSuspectWindow; negative disables suspicion.
	SuspectWindow time.Duration
	// Dial overrides the benefactor transport dialer (fault injection in
	// tests). When nil, plain TCP with DialTimeout is used.
	Dial func(addr string) (net.Conn, error)
	// ForceGob pins benefactor connections to the legacy gob envelopes,
	// skipping the NVM1 binary-framing handshake. A compatibility escape
	// hatch — and the baseline side of the framing benchmarks.
	ForceGob bool
	// Obs receives the client's metrics (per-op latency histograms, pool
	// wait time, data-path counters) and chunk-lifecycle events. Nil gets
	// a fresh private obs.New instance; obs.Disabled() turns every
	// recording call into a no-op (and zeroes Stats).
	Obs *obs.Obs
	// ProbeInterval enables the canary prober: every interval (jittered)
	// the client runs a tiny synthetic put/get/delete against each manager
	// shard and a liveness round trip against a sampled benefactor set,
	// recording probe.* metrics into Obs. Zero disables probing (the
	// default — probes are an opt-in background load).
	ProbeInterval time.Duration
	// ProbeBens is how many benefactors each probe cycle samples,
	// round-robin over the known set. 0 means DefaultProbeBens.
	ProbeBens int
}

// Defaults for Options fields left zero.
const (
	DefaultPoolSize      = 4
	DefaultParallelism   = 8
	DefaultCallTimeout   = 10 * time.Second
	DefaultDialTimeout   = 5 * time.Second
	DefaultSuspectWindow = 2 * time.Second
)

func (o Options) withDefaults() Options {
	if o.PoolSize <= 0 {
		o.PoolSize = DefaultPoolSize
	}
	if o.Parallelism <= 0 {
		o.Parallelism = DefaultParallelism
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = DefaultCallTimeout
	}
	if o.CallTimeout < 0 {
		o.CallTimeout = 0
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.SuspectWindow == 0 {
		o.SuspectWindow = DefaultSuspectWindow
	}
	if o.Obs == nil {
		o.Obs = obs.New("client")
	}
	o.Retry = o.Retry.withDefaults()
	return o
}

// Stats are a Store's cumulative data-path counters.
type Stats struct {
	ChunkGets      int64 // OpGetChunk calls issued
	ChunkPuts      int64 // OpPutChunk calls issued
	PagePuts       int64 // OpPutPages calls issued
	SSDReadBytes   int64 // chunk payload bytes fetched from benefactors
	SSDWriteBytes  int64 // payload bytes shipped to benefactors
	MetaRetries    int64 // ops retried after a stale chunk map
	MapRetries     int64 // ops retried after a stale shard map (epoch fence)
	InFlightPeak   int64 // max simultaneous chunk RPCs observed
	Retries        int64 // chunk RPC attempts beyond the first (transient failures)
	Failovers      int64 // chunk reads served by a non-primary replica
	DegradedWrites int64 // chunk writes that reached fewer than all replicas
}

// storeMetrics holds the client data path's registry handles, looked up
// once at Open so the hot path touches only atomics. Stats() is a
// compatibility shim over the same counters.
type storeMetrics struct {
	chunkGets, chunkPuts, pagePuts     *obs.Counter
	ssdReadBytes, ssdWriteBytes        *obs.Counter
	metaRetries, mapRetries            *obs.Counter
	retries, failovers, degradedWrites *obs.Counter
	inFlight, inFlightPeak             *obs.Gauge
	getLat, putLat, pagePutLat         *obs.Histogram
	poolWait                           *obs.Histogram
}

func newStoreMetrics(o *obs.Obs) storeMetrics {
	r := o.Reg
	return storeMetrics{
		chunkGets:      r.Counter("rpc.chunk_gets"),
		chunkPuts:      r.Counter("rpc.chunk_puts"),
		pagePuts:       r.Counter("rpc.page_puts"),
		ssdReadBytes:   r.Counter("rpc.ssd_read_bytes"),
		ssdWriteBytes:  r.Counter("rpc.ssd_write_bytes"),
		metaRetries:    r.Counter("rpc.meta_retries"),
		mapRetries:     r.Counter("rpc.map_retries"),
		retries:        r.Counter("rpc.retries"),
		failovers:      r.Counter("rpc.failovers"),
		degradedWrites: r.Counter("rpc.degraded_writes"),
		inFlight:       r.Gauge("rpc.inflight"),
		inFlightPeak:   r.Gauge("rpc.inflight_peak"),
		getLat:         r.Histogram("rpc.get_chunk.latency"),
		putLat:         r.Histogram("rpc.put_chunk.latency"),
		pagePutLat:     r.Histogram("rpc.put_pages.latency"),
		poolWait:       r.Histogram("rpc.pool_wait.latency"),
	}
}

func (m *storeMetrics) enter() { m.inFlightPeak.Max(m.inFlight.Add(1)) }
func (m *storeMetrics) exit()  { m.inFlight.Add(-1) }

// opLatency returns the latency histogram for one chunk op (nil for ops
// the client data path never times).
func (m *storeMetrics) opLatency(op proto.Op) *obs.Histogram {
	switch op {
	case proto.OpGetChunk:
		return m.getLat
	case proto.OpPutChunk:
		return m.putLat
	case proto.OpPutPages:
		return m.pagePutLat
	}
	return nil
}

// Store is a data-path client for the TCP aggregate store: it resolves
// files through the manager and moves chunk payloads directly between the
// application and the benefactors, with read-modify-write at chunk
// granularity for unaligned writes.
//
// Chunk transfers within one call fan out across a bounded worker group
// and across a small connection pool per benefactor, so a striped file's
// bandwidth aggregates over its contributors (paper §III-D) instead of
// serializing on a single socket. All methods are safe for concurrent use.
type Store struct {
	// shards holds one metadata client per manager shard, indexed by shard
	// (file names route by shardmap.ShardFor over len(shards); chunk IDs by
	// their mint stride). Unsharded deployments have exactly one entry. The
	// roster is rebuilt in place when a piggybacked shard map reveals more
	// shards than the client was configured with; entries learned that way
	// dial lazily on first use. Guarded by mu.
	shards    []*shardState
	opts      Options
	mu        sync.Mutex
	chunkSize int64
	benAddrs  map[int]string
	// benAlive mirrors the manager's view of benefactor liveness (refreshed
	// by Refresh); writes skip manager-dead replicas instead of burning a
	// retry budget against them.
	benAlive map[int]bool
	// suspectUntil deprioritizes benefactors that just exhausted a retry
	// budget when ordering replica reads, so a dying node costs one timeout
	// burst, not one per chunk.
	suspectUntil map[int]time.Time
	pools        map[int]*connPool
	meta         map[string]proto.FileInfo
	// arena pools chunk payload buffers for the binary data path: response
	// payloads are leased from it by the wire layer and returned through
	// ReleaseChunk (directly by readAt/writeAt, via store.BufferLender by
	// the chunk cache). Sized to the store's chunk geometry at Open.
	arena *proto.Arena
	// gobAddrs caches benefactor addresses that failed the NVM1 handshake
	// (legacy servers), so redials skip the probe.
	gobAddrs map[string]bool

	obs *obs.Obs
	m   storeMetrics

	// pending batches locally completed spans for export to the manager
	// (OpReportSpans), so traces rooted in this client survive the client
	// process's exit and remain scrapeable by nvmctl.
	pendingMu sync.Mutex
	pending   []proto.Span
	exports   sync.WaitGroup

	// Canary-prober state (Options.ProbeInterval): the background prober,
	// a per-store token keeping canary names collision-free across
	// clients, and the round-robin cursor over benefactor targets.
	prober     *obs.Prober
	probeToken string
	probeRR    atomic.Int64
}

// shardState is the client's cached view of one manager shard: its
// metadata connection (dialed lazily for shards learned from a piggybacked
// peer list) and the last membership epoch observed from it. Requests
// stamp the cached epoch; a fence (ErrStaleShardMap) or any stamped
// response refreshes it.
type shardState struct {
	addr  string
	mc    *ManagerClient
	epoch int64
}

// Open connects to the manager (or comma-separated manager shards) at addr
// with default Options.
func Open(addr string) (*Store, error) { return OpenWith(addr, Options{}) }

// OpenWith connects to the manager at addr — "host:port[,host:port...]",
// one address per shard, in shard order — and discovers the store's
// geometry and benefactors. Connecting to a subset of a sharded cluster
// works too: the first response piggybacks the full shard roster and the
// client dials the missing peers on demand.
func OpenWith(addr string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	addrs := shardmap.SplitAddrs(addr)
	if len(addrs) == 0 {
		return nil, fmt.Errorf("nvm store: no manager address")
	}
	s := &Store{
		opts:         opts,
		benAddrs:     make(map[int]string),
		benAlive:     make(map[int]bool),
		suspectUntil: make(map[int]time.Time),
		pools:        make(map[int]*connPool),
		meta:         make(map[string]proto.FileInfo),
		gobAddrs:     make(map[string]bool),
		obs:          opts.Obs,
		m:            newStoreMetrics(opts.Obs),
	}
	// Dial every listed shard, but tolerate unreachable ones as long as at
	// least one answers — the surviving shards' keyspaces must stay
	// reachable with a shard down. A nil client is redialed on demand.
	var firstErr error
	dialed := 0
	for i, a := range addrs {
		mc, err := DialManagerTimeout(a, opts.CallTimeout)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("manager shard %d (%s): %w", i, a, err)
			}
			s.shards = append(s.shards, &shardState{addr: a})
			continue
		}
		dialed++
		s.shards = append(s.shards, &shardState{addr: a, mc: mc})
	}
	if dialed == 0 {
		s.closeShards()
		return nil, firstErr
	}
	if err := s.Refresh(); err != nil {
		s.closeShards()
		return nil, err
	}
	s.arena = proto.NewArena(s.chunkSize)
	s.obs.SetSpanSink(s.exportSpan)
	s.probeToken = obs.NewTraceID()
	s.startProber()
	return s, nil
}

// closeShards drops every manager connection.
func (s *Store) closeShards() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.shards {
		if st.mc != nil {
			st.mc.Close()
		}
	}
}

// spanBatch is how many completed spans accumulate before a batch ships to
// the manager.
const spanBatch = 64

// exportSpan is the client Obs's span sink: completed spans are batched and
// shipped to the manager's span ring (best effort), where the nvmctl
// collector finds them after this client exits. A full batch is sent on its
// own goroutine so recording never blocks on a manager round trip.
func (s *Store) exportSpan(sp obs.Span) {
	s.pendingMu.Lock()
	s.pending = append(s.pending, proto.Span(sp))
	var batch []proto.Span
	if len(s.pending) >= spanBatch {
		batch = s.pending
		s.pending = nil
	}
	s.pendingMu.Unlock()
	if batch == nil {
		return
	}
	s.exports.Add(1)
	go func() {
		defer s.exports.Done()
		_, _ = s.callShard(0, proto.ManagerReq{Op: proto.OpReportSpans, Spans: batch})
	}()
}

// flushSpans synchronously ships any batched spans (best effort).
func (s *Store) flushSpans() {
	s.pendingMu.Lock()
	batch := s.pending
	s.pending = nil
	s.pendingMu.Unlock()
	if len(batch) == 0 {
		return
	}
	_, _ = s.callShard(0, proto.ManagerReq{Op: proto.OpReportSpans, Spans: batch})
}

// eventScope mints the correlation context of one public convenience op: a
// fresh trace ID that stamps ring events on every machine the op touches,
// but no spans. Span trees begin only at the library roots (core.Client's
// malloc/free/checkpoint/restore) or at a caller-provided span context (the
// *Ctx variants), so the untraced hot path pays for an ID and its events —
// the pre-span cost — never for span minting or export.
func eventScope(varName string) store.SpanInfo {
	return store.SpanInfo{Trace: obs.NewTraceID(), Var: varName}
}

// startChild begins a span joined to sc, or nothing when sc carries no
// parent span (an event-only convenience op).
func (s *Store) startChild(sc store.SpanInfo, name string) *obs.ActiveSpan {
	if !sc.Traced() {
		return nil
	}
	sp := s.obs.StartSpan(sc.Trace, sc.Parent, name)
	sp.SetVar(sc.Var)
	return sp
}

// nShards returns the number of manager shards the client currently knows.
func (s *Store) nShards() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shards)
}

// shardFor returns the shard owning a file name under the cached map.
func (s *Store) shardFor(name string) int {
	return shardmap.ShardFor(name, s.nShards())
}

// ownerOf returns the shard that minted (and owns) a chunk: shard i mints
// IDs congruent to i+1 modulo the shard count.
func (s *Store) ownerOf(id proto.ChunkID) int {
	n := s.nShards()
	if n <= 1 {
		return 0
	}
	return int((uint64(id) - 1) % uint64(n))
}

// shardClient returns the metadata client and cached epoch for shard i,
// dialing the shard on first use (shards learned from a piggybacked peer
// list start undialed).
func (s *Store) shardClient(i int) (*ManagerClient, int64, error) {
	s.mu.Lock()
	if i < 0 || i >= len(s.shards) {
		s.mu.Unlock()
		return nil, 0, fmt.Errorf("nvm store: no shard %d (shard map has %d)", i, len(s.shards))
	}
	st := s.shards[i]
	if st.mc != nil {
		mc, ep := st.mc, st.epoch
		s.mu.Unlock()
		return mc, ep, nil
	}
	addr := st.addr
	s.mu.Unlock()
	mc, err := DialManagerTimeout(addr, s.opts.CallTimeout)
	if err != nil {
		return nil, 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Another caller may have raced the dial, or the roster may have been
	// rebuilt underneath us; an installed client wins.
	if i < len(s.shards) && s.shards[i].addr == addr {
		if s.shards[i].mc == nil {
			s.shards[i].mc = mc
		} else {
			mc.Close()
		}
		return s.shards[i].mc, s.shards[i].epoch, nil
	}
	mc.Close()
	return nil, 0, fmt.Errorf("nvm store: shard map changed while dialing shard %d", i)
}

// absorbShardStamp installs the shard-map piggyback of a manager response:
// the responding shard's membership epoch and — when the response carries a
// peer list that differs from the client's roster — the full shard roster
// (new shards dial lazily on first use). force installs the epoch even
// backwards: a fence proved the cached epoch wrong in an unknown direction
// (a restarted shard's epoch is LOWER than the cache). Pre-shard managers
// stamp nothing (all zero) and are ignored.
func (s *Store) absorbShardStamp(resp proto.ManagerResp, force bool) {
	if resp.ShardEpoch == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if resp.ShardCount > 1 && len(resp.ShardPeers) == resp.ShardCount {
		stale := len(s.shards) != resp.ShardCount
		if !stale {
			for i, st := range s.shards {
				if st.addr != resp.ShardPeers[i] {
					stale = true
					break
				}
			}
		}
		if stale {
			byAddr := make(map[string]*shardState, len(s.shards))
			for _, st := range s.shards {
				byAddr[st.addr] = st
			}
			next := make([]*shardState, resp.ShardCount)
			for i, addr := range resp.ShardPeers {
				if st, ok := byAddr[addr]; ok {
					delete(byAddr, addr)
					next[i] = st
				} else {
					next[i] = &shardState{addr: addr}
				}
			}
			for _, st := range byAddr {
				if st.mc != nil {
					st.mc.Close()
				}
			}
			s.shards = next
			s.obs.Event("rpc", "shard-map", "",
				fmt.Sprintf("installed %d-shard roster %v", resp.ShardCount, resp.ShardPeers))
		}
	}
	if resp.ShardIndex >= 0 && resp.ShardIndex < len(s.shards) {
		if st := s.shards[resp.ShardIndex]; force || resp.ShardEpoch > st.epoch {
			st.epoch = resp.ShardEpoch
		}
	}
}

// callShardOnce issues one metadata RPC to shard i, stamping the client's
// cached membership epoch and absorbing the epoch (and any shard roster)
// the response piggybacks.
func (s *Store) callShardOnce(i int, req proto.ManagerReq) (proto.ManagerResp, error) {
	mc, epoch, err := s.shardClient(i)
	if err != nil {
		return proto.ManagerResp{}, err
	}
	req.MapEpoch = epoch
	resp, err := mc.call(req)
	if err == nil || errors.Is(err, proto.ErrStaleShardMap) {
		s.absorbShardStamp(resp, errors.Is(err, proto.ErrStaleShardMap))
	}
	return resp, err
}

// callShard is callShardOnce plus the stale-map protocol: a fence
// (ErrStaleShardMap) means the shard rejected the request BEFORE touching
// any state and piggybacked its fresh map, so one retry under the
// installed map is safe for every op — including the create-once ones the
// transport layer must never blindly replay.
func (s *Store) callShard(i int, req proto.ManagerReq) (proto.ManagerResp, error) {
	resp, err := s.callShardOnce(i, req)
	if !errors.Is(err, proto.ErrStaleShardMap) {
		return resp, err
	}
	s.m.mapRetries.Add(1)
	s.obs.Event("rpc", "map-retry", req.TraceID,
		fmt.Sprintf("%s shard=%d: stale shard map, retrying under fresh epoch", req.Op, i))
	return s.callShardOnce(i, req)
}

// callRouted routes a name-addressed metadata RPC to the shard owning
// req.Name, re-routing once when a fence reveals a fresh shard map — the
// name may hash to a different shard under the installed roster.
func (s *Store) callRouted(req proto.ManagerReq) (proto.ManagerResp, error) {
	resp, err := s.callShardOnce(s.shardFor(req.Name), req)
	if !errors.Is(err, proto.ErrStaleShardMap) {
		return resp, err
	}
	s.m.mapRetries.Add(1)
	s.obs.Event("rpc", "map-retry", req.TraceID,
		fmt.Sprintf("%s %q: stale shard map, re-routing", req.Op, req.Name))
	return s.callShardOnce(s.shardFor(req.Name), req)
}

// statusAll fans OpStatus out to every shard and returns the responses of
// the reachable ones. A shard that cannot be reached is skipped — a killed
// shard must not take the survivors' keyspaces down with it — but at least
// one shard must answer.
func (s *Store) statusAll() ([]proto.ManagerResp, error) {
	n := s.nShards()
	resps := make([]proto.ManagerResp, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = s.callShard(i, proto.ManagerReq{Op: proto.OpStatus})
		}(i)
	}
	wg.Wait()
	var ok []proto.ManagerResp
	var firstErr error
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		ok = append(ok, resps[i])
	}
	if len(ok) == 0 {
		return nil, firstErr
	}
	return ok, nil
}

// mergeBens merges per-shard benefactor tables into one cluster view:
// every shard sees the same benefactors (they register everywhere), but a
// benefactor splits its capacity across the shards (capacity/N announced
// to each) so no shard can overcommit the device — Capacity and Used
// therefore SUM across shards back to the device totals. Liveness and
// addressing come from the shard that heard the benefactor most recently;
// WriteVolume is the largest reported value (each shard tracks the same
// device counter).
func mergeBens(resps []proto.ManagerResp) []proto.BenefactorInfo {
	merged := make(map[int]proto.BenefactorInfo)
	used := make(map[int]int64)
	capacity := make(map[int]int64)
	for _, r := range resps {
		for _, b := range r.Bens {
			used[b.ID] += b.Used
			capacity[b.ID] += b.Capacity
			prev, seen := merged[b.ID]
			if !seen {
				merged[b.ID] = b
				continue
			}
			if b.WriteVolume > prev.WriteVolume {
				prev.WriteVolume = b.WriteVolume
			}
			if b.BeatAgeNanos < prev.BeatAgeNanos {
				prev.Alive, prev.Addr, prev.DebugAddr = b.Alive, b.Addr, b.DebugAddr
				prev.BeatAgeNanos = b.BeatAgeNanos
			}
			merged[b.ID] = prev
		}
	}
	out := make([]proto.BenefactorInfo, 0, len(merged))
	for id, b := range merged {
		b.Used = used[id]
		b.Capacity = capacity[id]
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Status returns the merged benefactor table across every reachable
// manager shard (see mergeBens for the merge rules).
func (s *Store) Status() ([]proto.BenefactorInfo, error) {
	resps, err := s.statusAll()
	if err != nil {
		return nil, err
	}
	return mergeBens(resps), nil
}

// Refresh re-fetches the benefactor table (picking up new registrations),
// fanning out to every manager shard and merging their views.
func (s *Store) Refresh() error {
	resps, err := s.statusAll()
	if err != nil {
		return err
	}
	bens := mergeBens(resps)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range resps {
		if r.ChunkSize > 0 {
			s.chunkSize = r.ChunkSize
		}
	}
	for _, b := range bens {
		if prev, ok := s.benAddrs[b.ID]; ok && prev != b.Addr {
			if p, ok := s.pools[b.ID]; ok {
				p.close()
				delete(s.pools, b.ID)
			}
		}
		s.benAddrs[b.ID] = b.Addr
		s.benAlive[b.ID] = b.Alive
	}
	// Fresh liveness from the manager supersedes local suspicion.
	s.suspectUntil = make(map[int]time.Time)
	return nil
}

// Close stops the prober, ships any unexported spans, and drops every
// connection.
func (s *Store) Close() error {
	s.prober.Stop()
	s.obs.SetSpanSink(nil)
	s.exports.Wait()
	s.flushSpans()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.pools {
		p.close()
	}
	var err error
	for _, st := range s.shards {
		if st.mc != nil {
			if cerr := st.mc.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}

// ChunkSize returns the striping unit.
func (s *Store) ChunkSize() int64 { return s.chunkSize }

// ReleaseChunk returns a chunk payload obtained from GetChunk (or the
// chunk-granular read path) to the store's buffer arena. The buffer must
// not be used afterwards. Buffers of foreign geometry — including payloads
// decoded from legacy gob connections before the arena existed, which are
// private anyway — are accepted or ignored safely, so callers can release
// unconditionally.
func (s *Store) ReleaseChunk(buf []byte) { s.arena.Put(buf) }

// Manager exposes the shard-0 metadata client — the whole cluster on an
// unsharded deployment. Name-routed metadata on a sharded cluster should go
// through the Store's own methods, which route by the cached shard map.
func (s *Store) Manager() *ManagerClient {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shards[0].mc
}

// ShardAddrs returns the manager address of every shard in the client's
// current map, in shard order.
func (s *Store) ShardAddrs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.shards))
	for i, st := range s.shards {
		out[i] = st.addr
	}
	return out
}

// ShardEpochs returns the client's cached membership epoch per shard (0
// for a shard no response has stamped yet).
func (s *Store) ShardEpochs() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, len(s.shards))
	for i, st := range s.shards {
		out[i] = st.epoch
	}
	return out
}

// ShardManager returns the metadata client for one shard, dialing it on
// demand — unlike Manager it reaches past shard 0. Calls made through it
// carry no map epoch, so they are never fenced (admin traffic).
func (s *Store) ShardManager(i int) (*ManagerClient, error) {
	mc, _, err := s.shardClient(i)
	return mc, err
}

// Stats returns a snapshot of the data-path counters. It is a
// compatibility shim over the Obs metrics registry (all zeros when the
// store was opened with obs.Disabled()).
func (s *Store) Stats() Stats {
	return Stats{
		ChunkGets:      s.m.chunkGets.Load(),
		ChunkPuts:      s.m.chunkPuts.Load(),
		PagePuts:       s.m.pagePuts.Load(),
		SSDReadBytes:   s.m.ssdReadBytes.Load(),
		SSDWriteBytes:  s.m.ssdWriteBytes.Load(),
		MetaRetries:    s.m.metaRetries.Load(),
		MapRetries:     s.m.mapRetries.Load(),
		InFlightPeak:   s.m.inFlightPeak.Load(),
		Retries:        s.m.retries.Load(),
		Failovers:      s.m.failovers.Load(),
		DegradedWrites: s.m.degradedWrites.Load(),
	}
}

// Obs exposes the client's observability state (metrics registry and
// event ring) so applications can export or inspect it.
func (s *Store) Obs() *obs.Obs { return s.obs }

// pool returns the connection pool for the benefactor holding ref.
func (s *Store) pool(ref proto.ChunkRef) (*connPool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.pools[ref.Benefactor]; ok {
		return p, nil
	}
	addr, ok := s.benAddrs[ref.Benefactor]
	if !ok || addr == "" {
		return nil, fmt.Errorf("%w: benefactor %d has no address", proto.ErrBenefactorDead, ref.Benefactor)
	}
	dial := func(a string) (*chunkConn, error) {
		s.mu.Lock()
		gobOnly := s.opts.ForceGob || s.gobAddrs[a]
		s.mu.Unlock()
		var fellBack bool
		c, err := dialChunk(a, s.opts.Dial, s.opts.DialTimeout, s.opts.CallTimeout, wireConfig{
			arena: s.arena, maxPayload: maxPayloadFor(s.chunkSize),
			gobOnly: gobOnly, fellBack: &fellBack,
		})
		if fellBack {
			// The peer is a legacy gob server: remember, so later dials to
			// this address skip the handshake probe.
			s.mu.Lock()
			s.gobAddrs[a] = true
			s.mu.Unlock()
		}
		return c, err
	}
	// When the pool's last live connection breaks, forget the address's
	// gob verdict: the server may have been upgraded in place, and the
	// next dial should probe NVM1 again instead of speaking gob forever.
	onDrain := func() {
		s.mu.Lock()
		evicted := s.gobAddrs[addr]
		delete(s.gobAddrs, addr)
		s.mu.Unlock()
		if evicted {
			s.obs.Event("rpc", "gob-verdict-evict", "", "addr="+addr)
		}
	}
	p := newConnPool(addr, s.opts.PoolSize, dial, s.obs, s.m.poolWait, onDrain)
	s.pools[ref.Benefactor] = p
	return p, nil
}

// benLive reports the manager's last-known liveness of a benefactor
// (unknown means alive — optimism costs at most a retry budget).
func (s *Store) benLive(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	alive, ok := s.benAlive[id]
	return !ok || alive
}

// markSuspect deprioritizes a benefactor for reads after a retry budget was
// exhausted against it.
func (s *Store) markSuspect(id int) {
	if s.opts.SuspectWindow <= 0 {
		return
	}
	s.mu.Lock()
	s.suspectUntil[id] = time.Now().Add(s.opts.SuspectWindow)
	s.mu.Unlock()
}

// readOrder sorts a chunk's replicas for a read attempt: benefactors the
// manager reports alive and that are not locally suspect first, then
// suspects, then dead ones (last-resort — the manager's view may be stale).
func (s *Store) readOrder(refs []proto.ChunkRef) []proto.ChunkRef {
	if len(refs) <= 1 {
		return refs
	}
	s.mu.Lock()
	now := time.Now()
	rank := func(ref proto.ChunkRef) int {
		if alive, ok := s.benAlive[ref.Benefactor]; ok && !alive {
			return 2
		}
		if until, ok := s.suspectUntil[ref.Benefactor]; ok && now.Before(until) {
			return 1
		}
		return 0
	}
	out := make([]proto.ChunkRef, len(refs))
	copy(out, refs)
	ranks := make([]int, len(out))
	for i, ref := range out {
		ranks[i] = rank(ref)
	}
	s.mu.Unlock()
	// Stable insertion sort: replica lists are tiny and primary-first order
	// must survive within a rank.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && ranks[j] < ranks[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
			ranks[j], ranks[j-1] = ranks[j-1], ranks[j]
		}
	}
	return out
}

// callChunk performs one chunk RPC against one replica, retrying transient
// transport failures with backoff up to the policy's attempt budget. Each
// attempt's round trip is timed into the op's latency histogram.
func (s *Store) callChunk(ref proto.ChunkRef, req proto.ChunkReq) (proto.ChunkResp, error) {
	lat := s.m.opLatency(req.Op)
	var last error
	for attempt := 1; attempt <= s.opts.Retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			s.m.retries.Add(1)
			s.obs.Event("rpc", "retry", req.TraceID,
				fmt.Sprintf("%s %v attempt=%d err=%v", req.Op, ref, attempt, last))
			time.Sleep(s.opts.Retry.backoff(attempt - 1))
		}
		p, err := s.pool(ref)
		if err != nil {
			return proto.ChunkResp{}, err // no address: only failover can help
		}
		s.m.enter()
		start := time.Now()
		resp, err := p.call(req)
		if lat != nil {
			lat.Observe(time.Since(start))
		}
		s.m.exit()
		if err == nil || !IsTransient(err) {
			return resp, err
		}
		last = err
	}
	s.markSuspect(ref.Benefactor)
	return proto.ChunkResp{}, last
}

// replicaRefs returns every copy of chunk idx of a file, primary first.
// Metadata from an unreplicated manager carries no replica table; the
// primary ref alone is the degenerate copy set.
func replicaRefs(fi proto.FileInfo, idx int) []proto.ChunkRef {
	if idx < len(fi.Replicas) && len(fi.Replicas[idx]) > 0 {
		return fi.Replicas[idx]
	}
	return fi.Chunks[idx : idx+1]
}

// fileInfo returns (caching) a file's chunk map.
func (s *Store) fileInfo(sc store.SpanInfo, name string) (proto.FileInfo, error) {
	s.mu.Lock()
	fi, ok := s.meta[name]
	s.mu.Unlock()
	if ok {
		return fi, nil
	}
	resp, err := s.callRouted(proto.ManagerReq{
		Op: proto.OpLookup, TraceID: sc.Trace, ParentSpanID: sc.Parent, Name: name,
	})
	if err != nil {
		return resp.File, err
	}
	s.mu.Lock()
	s.meta[name] = resp.File
	s.mu.Unlock()
	return resp.File, nil
}

// invalidateMeta drops the cached chunk map of a file.
func (s *Store) invalidateMeta(name string) {
	s.mu.Lock()
	delete(s.meta, name)
	s.mu.Unlock()
}

// Create reserves a file of the given size.
func (s *Store) Create(name string, size int64) error {
	_, err := s.create(eventScope(name), name, size)
	return err
}

// CreateInfo reserves a file and returns its chunk map.
func (s *Store) CreateInfo(name string, size int64) (proto.FileInfo, error) {
	return s.create(eventScope(name), name, size)
}

// create allocates the file under an existing span context. The trace and
// parent span ride the manager RPC, so the manager records its allocation
// span (and events) under the client's.
func (s *Store) create(sc store.SpanInfo, name string, size int64) (proto.FileInfo, error) {
	resp, err := s.callRouted(proto.ManagerReq{
		Op: proto.OpCreate, TraceID: sc.Trace, ParentSpanID: sc.Parent, Name: name, Size: size,
	})
	if err != nil {
		return proto.FileInfo{}, err
	}
	s.obs.Event("rpc", "alloc", sc.Trace, fmt.Sprintf("file=%q size=%d chunks=%d", name, size, len(resp.File.Chunks)))
	s.mu.Lock()
	s.meta[name] = resp.File
	s.mu.Unlock()
	return resp.File, nil
}

// Link appends the part files' chunks to dst (the zero-copy checkpoint
// merge of §III-E). The cached chunk map of dst is replaced with the
// manager's post-link view; the parts' maps are untouched (linking does
// not move their chunks).
func (s *Store) Link(dst string, parts []string) (proto.FileInfo, error) {
	return s.link(eventScope(dst), dst, parts)
}

func (s *Store) link(sc store.SpanInfo, dst string, parts []string) (proto.FileInfo, error) {
	if s.nShards() > 1 {
		return s.linkSharded(sc, dst, parts)
	}
	resp, err := s.callRouted(proto.ManagerReq{
		Op: proto.OpLink, TraceID: sc.Trace, ParentSpanID: sc.Parent, Name: dst, Parts: parts,
	})
	if err != nil {
		s.invalidateMeta(dst)
		return proto.FileInfo{}, err
	}
	s.obs.Event("rpc", "link", sc.Trace, fmt.Sprintf("dst=%q parts=%d chunks=%d", dst, len(parts), len(resp.File.Chunks)))
	s.mu.Lock()
	s.meta[dst] = resp.File
	s.mu.Unlock()
	return resp.File, nil
}

// linkSharded is the cross-shard link: the destination and the parts may
// live on different manager shards, and the parts' chunks on yet others.
// The client orchestrates — shards never talk to each other (§16):
//
//  1. look each part up at its owning shard (fresh refs, replica sets,
//     sizes);
//  2. take one remote hold per chunk not owned by the destination shard at
//     the chunk's owner (OpRetainRefs — all-or-nothing per owner, rolled
//     back on failure, so an abort leaves no stray holds);
//  3. append the explicit ref list to dst at its shard (OpLinkRefs); on
//     failure the holds from step 2 are released.
//
// Holds are taken BEFORE the destination commits, so a crash mid-protocol
// strands at worst surplus holds (leaked space, reclaimed by releasing),
// never a file referencing chunks its owners feel free to delete.
func (s *Store) linkSharded(sc store.SpanInfo, dst string, parts []string) (proto.FileInfo, error) {
	dstShard := s.shardFor(dst)
	var refs []proto.ChunkRef
	var reps [][]proto.ChunkRef
	var size int64
	for _, p := range parts {
		look, err := s.callRouted(proto.ManagerReq{
			Op: proto.OpLookup, TraceID: sc.Trace, ParentSpanID: sc.Parent, Name: p,
		})
		if err != nil {
			return proto.FileInfo{}, fmt.Errorf("link part %q: %w", p, err)
		}
		for i := range look.File.Chunks {
			refs = append(refs, look.File.Chunks[i])
			reps = append(reps, replicaRefs(look.File, i))
		}
		size += look.File.Size
	}
	held, err := s.retainRemote(sc, dstShard, refs)
	if err != nil {
		return proto.FileInfo{}, err
	}
	resp, err := s.callRouted(proto.ManagerReq{
		Op: proto.OpLinkRefs, TraceID: sc.Trace, ParentSpanID: sc.Parent,
		Name: dst, Refs: refs, RefReplicas: reps, Size: size,
	})
	if err != nil {
		s.releaseRemote(sc, held)
		s.invalidateMeta(dst)
		return proto.FileInfo{}, err
	}
	s.obs.Event("rpc", "link", sc.Trace,
		fmt.Sprintf("dst=%q parts=%d chunks=%d held=%d (cross-shard)", dst, len(parts), len(resp.File.Chunks), len(held)))
	s.mu.Lock()
	s.meta[dst] = resp.File
	s.mu.Unlock()
	return resp.File, nil
}

// retainRemote groups refs by owning shard and takes one remote hold per
// ref at each owner, skipping refs dstShard owns (the destination bumps
// those locally as part of OpLinkRefs). On failure every hold already
// taken is rolled back. Returns the refs actually held, for a later
// releaseRemote by the caller's abort path.
func (s *Store) retainRemote(sc store.SpanInfo, dstShard int, refs []proto.ChunkRef) ([]proto.ChunkRef, error) {
	var held []proto.ChunkRef
	byOwner := make(map[int][]proto.ChunkID)
	var order []int // deterministic call order
	for _, r := range refs {
		o := s.ownerOf(r.ID)
		if o == dstShard {
			continue
		}
		if _, ok := byOwner[o]; !ok {
			order = append(order, o)
		}
		byOwner[o] = append(byOwner[o], r.ID)
		held = append(held, r)
	}
	for idx, o := range order {
		if _, err := s.callShard(o, proto.ManagerReq{
			Op: proto.OpRetainRefs, TraceID: sc.Trace, ParentSpanID: sc.Parent, IDs: byOwner[o],
		}); err != nil {
			for _, prev := range order[:idx] {
				s.releaseAt(sc, prev, byOwner[prev])
			}
			return nil, fmt.Errorf("retain refs at shard %d: %w", o, err)
		}
	}
	return held, nil
}

// releaseRemote drops remote holds at their owning shards. Best effort:
// the op that shed them has already committed, so an unreachable owner
// costs leaked holds (logged; space, never correctness).
func (s *Store) releaseRemote(sc store.SpanInfo, refs []proto.ChunkRef) {
	if len(refs) == 0 {
		return
	}
	byOwner := make(map[int][]proto.ChunkID)
	var order []int
	for _, r := range refs {
		o := s.ownerOf(r.ID)
		if _, ok := byOwner[o]; !ok {
			order = append(order, o)
		}
		byOwner[o] = append(byOwner[o], r.ID)
	}
	for _, o := range order {
		s.releaseAt(sc, o, byOwner[o])
	}
}

// releaseAt drops remote holds at one owning shard (best effort).
func (s *Store) releaseAt(sc store.SpanInfo, owner int, ids []proto.ChunkID) {
	if _, err := s.callShard(owner, proto.ManagerReq{
		Op: proto.OpReleaseRefs, TraceID: sc.Trace, ParentSpanID: sc.Parent, IDs: ids,
	}); err != nil {
		s.obs.Event("rpc", "release-failed", sc.Trace,
			fmt.Sprintf("shard=%d chunks=%d err=%v (holds leak until re-released)", owner, len(ids), err))
	}
}

// Derive creates name sharing a chunk sub-range of src (checkpoint restore
// without data movement) and caches the new file's chunk map.
func (s *Store) Derive(name, src string, fromChunk, nChunks int, size int64) (proto.FileInfo, error) {
	return s.derive(eventScope(name), name, src, fromChunk, nChunks, size)
}

func (s *Store) derive(sc store.SpanInfo, name, src string, fromChunk, nChunks int, size int64) (proto.FileInfo, error) {
	if s.nShards() > 1 {
		return s.deriveSharded(sc, name, src, fromChunk, nChunks, size)
	}
	resp, err := s.callRouted(proto.ManagerReq{
		Op: proto.OpDerive, TraceID: sc.Trace, ParentSpanID: sc.Parent, Name: name, Src: src,
		FromChunk: fromChunk, NChunks: nChunks, Size: size,
	})
	if err != nil {
		s.invalidateMeta(name)
		return proto.FileInfo{}, err
	}
	s.obs.Event("rpc", "derive", sc.Trace, fmt.Sprintf("file=%q src=%q chunks=%d", name, src, nChunks))
	s.mu.Lock()
	s.meta[name] = resp.File
	s.mu.Unlock()
	return resp.File, nil
}

// deriveSharded is the cross-shard derive (checkpoint restore): the new
// file and its source may hash to different shards. Like linkSharded, the
// client exports the chunk sub-range from the source's shard
// (OpExportRange — read-only, holds nothing), retains the refs at their
// owners, then creates the new file from the explicit ref list at its own
// shard (OpLinkRefs with CreateDst). A racing delete between export and
// retain fails the retain with ErrNoSuchChunk and the derive aborts
// cleanly.
func (s *Store) deriveSharded(sc store.SpanInfo, name, src string, fromChunk, nChunks int, size int64) (proto.FileInfo, error) {
	dstShard := s.shardFor(name)
	ex, err := s.callRouted(proto.ManagerReq{
		Op: proto.OpExportRange, TraceID: sc.Trace, ParentSpanID: sc.Parent, Name: src,
		FromChunk: fromChunk, NChunks: nChunks,
	})
	if err != nil {
		return proto.FileInfo{}, err
	}
	refs := ex.File.Chunks
	reps := make([][]proto.ChunkRef, len(refs))
	for i := range refs {
		reps[i] = replicaRefs(ex.File, i)
	}
	held, err := s.retainRemote(sc, dstShard, refs)
	if err != nil {
		return proto.FileInfo{}, err
	}
	resp, err := s.callRouted(proto.ManagerReq{
		Op: proto.OpLinkRefs, TraceID: sc.Trace, ParentSpanID: sc.Parent,
		Name: name, Refs: refs, RefReplicas: reps, Size: size, CreateDst: true,
	})
	if err != nil {
		s.releaseRemote(sc, held)
		s.invalidateMeta(name)
		return proto.FileInfo{}, err
	}
	s.obs.Event("rpc", "derive", sc.Trace,
		fmt.Sprintf("file=%q src=%q chunks=%d held=%d (cross-shard)", name, src, nChunks, len(held)))
	s.mu.Lock()
	s.meta[name] = resp.File
	s.mu.Unlock()
	return resp.File, nil
}

// Remap allocates a fresh chunk for chunk idx of a file (server-side COW
// copy when the chunk is shared) and returns the fresh replica set,
// primary first. The cached chunk map is patched in place so subsequent
// reads and writes through this Store target the fresh chunk instead of
// failing on the stale one.
func (s *Store) Remap(name string, chunkIdx int) ([]proto.ChunkRef, error) {
	return s.remap(eventScope(name), name, chunkIdx)
}

func (s *Store) remap(sc store.SpanInfo, name string, chunkIdx int) ([]proto.ChunkRef, error) {
	resp, err := s.callRouted(proto.ManagerReq{
		Op: proto.OpRemap, TraceID: sc.Trace, ParentSpanID: sc.Parent, Name: name, ChunkIdx: chunkIdx,
	})
	if err != nil {
		s.invalidateMeta(name)
		return nil, err
	}
	// A remap of a foreign-owned chunk copied onto a locally-owned one and
	// shed the foreign reference; drop the matching hold at the owner.
	s.releaseRemote(sc, resp.ForeignFreed)
	fresh := resp.NewRefs
	if len(fresh) == 0 {
		fresh = []proto.ChunkRef{resp.NewRef}
	}
	s.obs.Event("rpc", "remap", sc.Trace, fmt.Sprintf("file=%q chunk=%d %v -> %v", name, chunkIdx, resp.OldRef, fresh[0]))
	s.mu.Lock()
	if fi, ok := s.meta[name]; ok && chunkIdx < len(fi.Chunks) {
		fi.Chunks = append([]proto.ChunkRef(nil), fi.Chunks...)
		fi.Chunks[chunkIdx] = fresh[0]
		if chunkIdx < len(fi.Replicas) {
			fi.Replicas = append([][]proto.ChunkRef(nil), fi.Replicas...)
			fi.Replicas[chunkIdx] = fresh
		}
		s.meta[name] = fi
	} else {
		delete(s.meta, name)
	}
	s.mu.Unlock()
	return fresh, nil
}

// SetTTL assigns a relative lifetime to a file on its manager shard's
// clock.
func (s *Store) SetTTL(name string, ttl time.Duration) error {
	_, err := s.callRouted(proto.ManagerReq{Op: proto.OpSetTTL, Name: name, TTLNanos: int64(ttl)})
	return err
}

// Delete removes a file.
func (s *Store) Delete(name string) error {
	return s.deleteFile(eventScope(name), name)
}

func (s *Store) deleteFile(sc store.SpanInfo, name string) error {
	s.invalidateMeta(name)
	resp, err := s.callRouted(proto.ManagerReq{
		Op: proto.OpDelete, TraceID: sc.Trace, ParentSpanID: sc.Parent, Name: name,
	})
	if err == nil {
		// The file may have referenced chunks owned by other shards (from a
		// cross-shard link or derive); drop the matching holds at the owners.
		s.releaseRemote(sc, resp.ForeignFreed)
		s.obs.Event("rpc", "delete", sc.Trace, fmt.Sprintf("file=%q", name))
	}
	return err
}

// Stat returns a file's metadata.
func (s *Store) Stat(name string) (proto.FileInfo, error) {
	return s.stat(store.SpanInfo{}, name)
}

func (s *Store) stat(sc store.SpanInfo, name string) (proto.FileInfo, error) {
	// Always consult the manager: another client may have remapped
	// chunks.
	s.invalidateMeta(name)
	return s.fileInfo(sc, name)
}

// getChunk fetches one chunk payload, failing over across its replicas: a
// replica whose benefactor is dead, wedged, or resetting connections costs
// a bounded retry burst, then the next copy serves the read. ErrNoSuchChunk
// is terminal — the chunk map is stale and only a re-lookup can help.
func (s *Store) getChunk(sc store.SpanInfo, refs []proto.ChunkRef) ([]byte, error) {
	sp := s.startChild(sc, "rpc.get_chunk")
	data, err := s.getChunkSpanned(sp, sc, refs)
	sp.AddBytes(int64(len(data)))
	sp.SetErr(err)
	sp.End()
	return data, err
}

func (s *Store) getChunkSpanned(sp *obs.ActiveSpan, sc store.SpanInfo, refs []proto.ChunkRef) ([]byte, error) {
	tid := sc.Trace
	var firstErr error
	for i, ref := range s.readOrder(refs) {
		resp, err := s.callChunk(ref, proto.ChunkReq{
			Op: proto.OpGetChunk, TraceID: tid, ParentSpanID: sp.ID(), VarName: sc.Var, ID: ref.ID,
		})
		if err == nil {
			if i > 0 {
				s.m.failovers.Add(1)
				s.obs.Event("rpc", "failover", tid,
					fmt.Sprintf("read %v served by replica %d (primary %v failed: %v)", ref, i, refs[0], firstErr))
			}
			s.m.chunkGets.Add(1)
			s.m.ssdReadBytes.Add(int64(len(resp.Data)))
			return resp.Data, nil
		}
		if errors.Is(err, proto.ErrNoSuchChunk) {
			return nil, err
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, firstErr
}

// putRefs ships one chunk RPC to every replica of a chunk: manager-dead
// benefactors are skipped (unless every copy is thought dead — then the
// liveness table itself may be stale and each is attempted), live ones that
// still fail degrade the write. The write succeeds if at least one copy
// lands; reaching fewer than all replicas bumps DegradedWrites and repair
// restores the missing copies later.
func (s *Store) putRefs(sp *obs.ActiveSpan, sc store.SpanInfo, refs []proto.ChunkRef, mkReq func(proto.ChunkRef) proto.ChunkReq) error {
	tid := sc.Trace
	liveThought := 0
	for _, ref := range refs {
		if s.benLive(ref.Benefactor) {
			liveThought++
		}
	}
	wrote := 0
	var firstErr error
	for _, ref := range refs {
		if liveThought > 0 && !s.benLive(ref.Benefactor) {
			continue
		}
		req := mkReq(ref)
		req.TraceID = tid
		req.ParentSpanID = sp.ID()
		req.VarName = sc.Var
		_, err := s.callChunk(ref, req)
		if err != nil {
			if errors.Is(err, proto.ErrNoSuchChunk) {
				return err // stale chunk map: re-lookup, not degradation
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		wrote++
	}
	if wrote == 0 {
		if firstErr != nil {
			return firstErr
		}
		return fmt.Errorf("%w: no live replica of chunk %v", proto.ErrBenefactorDead, refs[0])
	}
	if wrote < len(refs) {
		s.m.degradedWrites.Add(1)
		s.obs.Event("rpc", "degraded-write", tid,
			fmt.Sprintf("chunk %v reached %d/%d replicas (first error: %v)", refs[0], wrote, len(refs), firstErr))
	}
	return nil
}

// putChunk stores one full chunk payload on all (live) replicas.
func (s *Store) putChunk(sc store.SpanInfo, refs []proto.ChunkRef, data []byte) error {
	sp := s.startChild(sc, "rpc.put_chunk")
	sp.AddBytes(int64(len(data)))
	err := s.putRefs(sp, sc, refs, func(ref proto.ChunkRef) proto.ChunkReq {
		return proto.ChunkReq{Op: proto.OpPutChunk, ID: ref.ID, Data: data}
	})
	sp.SetErr(err)
	sp.End()
	if err != nil {
		return err
	}
	s.m.chunkPuts.Add(1)
	s.m.ssdWriteBytes.Add(int64(len(data)))
	if s.obs.EventsEnabled() {
		s.obs.Event("rpc", "stripe-write", sc.Trace, fmt.Sprintf("%v %d bytes", refs[0], len(data)))
	}
	return nil
}

// putPages ships only the dirty pages of a chunk (paper Table VII) to all
// (live) replicas: the benefactor applies them server-side, so a sparsely
// dirtied chunk costs its dirty bytes, not a whole-chunk transfer.
func (s *Store) putPages(sc store.SpanInfo, refs []proto.ChunkRef, offs []int64, pages [][]byte) error {
	sp := s.startChild(sc, "rpc.put_pages")
	for _, pg := range pages {
		sp.AddBytes(int64(len(pg)))
	}
	err := s.putRefs(sp, sc, refs, func(ref proto.ChunkRef) proto.ChunkReq {
		return proto.ChunkReq{Op: proto.OpPutPages, ID: ref.ID, PageOffs: offs, PageData: pages}
	})
	sp.SetErr(err)
	sp.End()
	if err != nil {
		return err
	}
	s.m.pagePuts.Add(1)
	for _, pg := range pages {
		s.m.ssdWriteBytes.Add(int64(len(pg)))
	}
	return nil
}

// span is one chunk-aligned slice of a ReadAt/WriteAt buffer.
type span struct {
	idx  int   // chunk index within the file
	coff int64 // offset within the chunk
	buf  []byte
}

// chunkSpans splits buf (addressing file bytes starting at off) into
// per-chunk spans.
func chunkSpans(chunkSize, off int64, buf []byte) []span {
	var out []span
	for len(buf) > 0 {
		idx := int(off / chunkSize)
		coff := off % chunkSize
		n := chunkSize - coff
		if int64(len(buf)) < n {
			n = int64(len(buf))
		}
		out = append(out, span{idx: idx, coff: coff, buf: buf[:n]})
		buf = buf[n:]
		off += n
	}
	return out
}

// forEach runs do(0..n-1) with at most s.opts.Parallelism calls in flight,
// returning the first error. After an error no new work starts; transfers
// already in flight finish (gob calls are not interruptible mid-message).
func (s *Store) forEach(n int, do func(int) error) error {
	par := s.opts.Parallelism
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			if err := do(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := do(i); err != nil {
					errOnce.Do(func() { firstErr = err })
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// withMetaRetry runs fn against the file's (possibly cached) chunk map. If
// fn fails with ErrNoSuchChunk the map was stale — a chunk was remapped or
// the file recreated by another client — so the map is re-fetched from the
// manager and fn retried once.
func (s *Store) withMetaRetry(sc store.SpanInfo, name string, fn func(proto.FileInfo) error) error {
	fi, err := s.fileInfo(sc, name)
	if err != nil {
		return err
	}
	if err = fn(fi); !errors.Is(err, proto.ErrNoSuchChunk) {
		return err
	}
	s.m.metaRetries.Add(1)
	s.obs.Event("rpc", "meta-retry", sc.Trace, fmt.Sprintf("stale chunk map for %q, re-fetching", name))
	s.invalidateMeta(name)
	if fi, err = s.fileInfo(sc, name); err != nil {
		return err
	}
	return fn(fi)
}

// ReadAt fills buf from the file at off. Chunk fetches fan out across the
// connection pools, bounded by Options.Parallelism.
func (s *Store) ReadAt(name string, off int64, buf []byte) error {
	sc := eventScope(name)
	s.obs.Event("rpc", "read", sc.Trace, fmt.Sprintf("file=%q off=%d len=%d", name, off, len(buf)))
	return s.readAt(sc, name, off, buf)
}

func (s *Store) readAt(sc store.SpanInfo, name string, off int64, buf []byte) error {
	return s.withMetaRetry(sc, name, func(fi proto.FileInfo) error {
		if off < 0 || off+int64(len(buf)) > fi.Size {
			return fmt.Errorf("%w: read [%d,%d) of %q (%d bytes)", proto.ErrChunkOutOfRange, off, off+int64(len(buf)), name, fi.Size)
		}
		spans := chunkSpans(s.chunkSize, off, buf)
		return s.forEach(len(spans), func(i int) error {
			sp := spans[i]
			data, err := s.getChunk(sc, replicaRefs(fi, sp.idx))
			if err != nil {
				return err
			}
			if int64(len(data)) < sp.coff+int64(len(sp.buf)) {
				s.arena.Put(data)
				return fmt.Errorf("chunk %v: short payload %d bytes", fi.Chunks[sp.idx], len(data))
			}
			copy(sp.buf, data[sp.coff:])
			s.arena.Put(data)
			return nil
		})
	})
}

// WriteAt stores data into the file at off (read-modify-write for partial
// chunks). Chunk transfers fan out like ReadAt's.
func (s *Store) WriteAt(name string, off int64, data []byte) error {
	sc := eventScope(name)
	s.obs.Event("rpc", "write", sc.Trace, fmt.Sprintf("file=%q off=%d len=%d", name, off, len(data)))
	return s.writeAt(sc, name, off, data)
}

func (s *Store) writeAt(sc store.SpanInfo, name string, off int64, data []byte) error {
	return s.withMetaRetry(sc, name, func(fi proto.FileInfo) error {
		if off < 0 || off+int64(len(data)) > fi.Size {
			return fmt.Errorf("%w: write [%d,%d) of %q (%d bytes)", proto.ErrChunkOutOfRange, off, off+int64(len(data)), name, fi.Size)
		}
		spans := chunkSpans(s.chunkSize, off, data)
		return s.forEach(len(spans), func(i int) error {
			sp := spans[i]
			refs := replicaRefs(fi, sp.idx)
			if sp.coff == 0 && int64(len(sp.buf)) == s.chunkSize {
				return s.putChunk(sc, refs, sp.buf)
			}
			cur, err := s.getChunk(sc, refs)
			if err != nil {
				return err
			}
			copy(cur[sp.coff:], sp.buf)
			err = s.putChunk(sc, refs, cur)
			s.arena.Put(cur) // the put has left the wire; the RMW staging buffer returns
			return err
		})
	})
}

// Put uploads a whole payload as a (new) file. The allocation and every
// stripe write share one event trace ID.
func (s *Store) Put(name string, data []byte) error {
	sc := eventScope(name)
	s.obs.Event("rpc", "put", sc.Trace, fmt.Sprintf("file=%q len=%d", name, len(data)))
	return s.put(sc, name, data)
}

// PutCtx is Put under a caller-provided span context (store.WithSpan): the
// upload joins the caller's trace instead of rooting its own.
func (s *Store) PutCtx(ctx store.Ctx, name string, data []byte) error {
	sc := store.SpanOf(ctx)
	if !sc.Traced() {
		return s.Put(name, data)
	}
	s.obs.Event("rpc", "put", sc.Trace, fmt.Sprintf("file=%q len=%d", name, len(data)))
	return s.put(sc, name, data)
}

func (s *Store) put(sc store.SpanInfo, name string, data []byte) error {
	if _, err := s.create(sc, name, int64(len(data))); err != nil {
		return err
	}
	return s.writeAt(sc, name, 0, data)
}

// Get downloads a whole file.
func (s *Store) Get(name string) ([]byte, error) {
	sc := eventScope(name)
	s.obs.Event("rpc", "get", sc.Trace, fmt.Sprintf("file=%q", name))
	return s.get(sc, name)
}

// GetCtx is Get under a caller-provided span context.
func (s *Store) GetCtx(ctx store.Ctx, name string) ([]byte, error) {
	sc := store.SpanOf(ctx)
	if !sc.Traced() {
		return s.Get(name)
	}
	s.obs.Event("rpc", "get", sc.Trace, fmt.Sprintf("file=%q", name))
	return s.get(sc, name)
}

func (s *Store) get(sc store.SpanInfo, name string) ([]byte, error) {
	fi, err := s.stat(sc, name)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, fi.Size)
	if err := s.readAt(sc, name, 0, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
