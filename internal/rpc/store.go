package rpc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"nvmalloc/internal/proto"
)

// Options tunes the client data path.
type Options struct {
	// PoolSize is the number of connections kept per benefactor. One gob
	// stream serializes its calls, so this is the per-SSD pipelining depth.
	// 0 means DefaultPoolSize.
	PoolSize int
	// Parallelism bounds how many chunk transfers a single
	// ReadAt/WriteAt/Get/Put keeps in flight. 0 means DefaultParallelism;
	// 1 reproduces the old strictly serial path.
	Parallelism int
}

// Defaults for Options fields left zero.
const (
	DefaultPoolSize    = 4
	DefaultParallelism = 8
)

func (o Options) withDefaults() Options {
	if o.PoolSize <= 0 {
		o.PoolSize = DefaultPoolSize
	}
	if o.Parallelism <= 0 {
		o.Parallelism = DefaultParallelism
	}
	return o
}

// Stats are a Store's cumulative data-path counters.
type Stats struct {
	ChunkGets     int64 // OpGetChunk calls issued
	ChunkPuts     int64 // OpPutChunk calls issued
	PagePuts      int64 // OpPutPages calls issued
	SSDReadBytes  int64 // chunk payload bytes fetched from benefactors
	SSDWriteBytes int64 // payload bytes shipped to benefactors
	MetaRetries   int64 // ops retried after a stale chunk map
	InFlightPeak  int64 // max simultaneous chunk RPCs observed
}

// storeCounters is the atomic backing for Stats.
type storeCounters struct {
	chunkGets, chunkPuts, pagePuts atomic.Int64
	ssdReadBytes, ssdWriteBytes    atomic.Int64
	metaRetries                    atomic.Int64
	inFlightCur, inFlightPeak      atomic.Int64
}

func (c *storeCounters) enter() {
	cur := c.inFlightCur.Add(1)
	for {
		peak := c.inFlightPeak.Load()
		if cur <= peak || c.inFlightPeak.CompareAndSwap(peak, cur) {
			return
		}
	}
}

func (c *storeCounters) exit() { c.inFlightCur.Add(-1) }

// Store is a data-path client for the TCP aggregate store: it resolves
// files through the manager and moves chunk payloads directly between the
// application and the benefactors, with read-modify-write at chunk
// granularity for unaligned writes.
//
// Chunk transfers within one call fan out across a bounded worker group
// and across a small connection pool per benefactor, so a striped file's
// bandwidth aggregates over its contributors (paper §III-D) instead of
// serializing on a single socket. All methods are safe for concurrent use.
type Store struct {
	mgr       *ManagerClient
	opts      Options
	mu        sync.Mutex
	chunkSize int64
	benAddrs  map[int]string
	pools     map[int]*connPool
	meta      map[string]proto.FileInfo

	c storeCounters
}

// Open connects to the manager at addr with default Options.
func Open(addr string) (*Store, error) { return OpenWith(addr, Options{}) }

// OpenWith connects to the manager at addr and discovers the store's
// geometry and benefactors.
func OpenWith(addr string, opts Options) (*Store, error) {
	mc, err := DialManager(addr)
	if err != nil {
		return nil, err
	}
	s := &Store{
		mgr:      mc,
		opts:     opts.withDefaults(),
		benAddrs: make(map[int]string),
		pools:    make(map[int]*connPool),
		meta:     make(map[string]proto.FileInfo),
	}
	if err := s.Refresh(); err != nil {
		mc.Close()
		return nil, err
	}
	return s, nil
}

// Refresh re-fetches the benefactor table (picking up new registrations).
func (s *Store) Refresh() error {
	resp, err := s.mgr.call(proto.ManagerReq{Op: proto.OpStatus})
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chunkSize = resp.ChunkSize
	for _, b := range resp.Bens {
		if prev, ok := s.benAddrs[b.ID]; ok && prev != b.Addr {
			if p, ok := s.pools[b.ID]; ok {
				p.close()
				delete(s.pools, b.ID)
			}
		}
		s.benAddrs[b.ID] = b.Addr
	}
	return nil
}

// Close drops every connection.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.pools {
		p.close()
	}
	return s.mgr.Close()
}

// ChunkSize returns the striping unit.
func (s *Store) ChunkSize() int64 { return s.chunkSize }

// Manager exposes the metadata client.
func (s *Store) Manager() *ManagerClient { return s.mgr }

// Stats returns a snapshot of the data-path counters.
func (s *Store) Stats() Stats {
	return Stats{
		ChunkGets:     s.c.chunkGets.Load(),
		ChunkPuts:     s.c.chunkPuts.Load(),
		PagePuts:      s.c.pagePuts.Load(),
		SSDReadBytes:  s.c.ssdReadBytes.Load(),
		SSDWriteBytes: s.c.ssdWriteBytes.Load(),
		MetaRetries:   s.c.metaRetries.Load(),
		InFlightPeak:  s.c.inFlightPeak.Load(),
	}
}

// pool returns the connection pool for the benefactor holding ref.
func (s *Store) pool(ref proto.ChunkRef) (*connPool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.pools[ref.Benefactor]; ok {
		return p, nil
	}
	addr, ok := s.benAddrs[ref.Benefactor]
	if !ok || addr == "" {
		return nil, fmt.Errorf("%w: benefactor %d has no address", proto.ErrBenefactorDead, ref.Benefactor)
	}
	p := newConnPool(addr, s.opts.PoolSize)
	s.pools[ref.Benefactor] = p
	return p, nil
}

// fileInfo returns (caching) a file's chunk map.
func (s *Store) fileInfo(name string) (proto.FileInfo, error) {
	s.mu.Lock()
	fi, ok := s.meta[name]
	s.mu.Unlock()
	if ok {
		return fi, nil
	}
	fi, err := s.mgr.Lookup(name)
	if err != nil {
		return fi, err
	}
	s.mu.Lock()
	s.meta[name] = fi
	s.mu.Unlock()
	return fi, nil
}

// invalidateMeta drops the cached chunk map of a file.
func (s *Store) invalidateMeta(name string) {
	s.mu.Lock()
	delete(s.meta, name)
	s.mu.Unlock()
}

// Create reserves a file of the given size.
func (s *Store) Create(name string, size int64) error {
	fi, err := s.mgr.Create(name, size)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.meta[name] = fi
	s.mu.Unlock()
	return nil
}

// Delete removes a file.
func (s *Store) Delete(name string) error {
	s.invalidateMeta(name)
	return s.mgr.Delete(name)
}

// Stat returns a file's metadata.
func (s *Store) Stat(name string) (proto.FileInfo, error) {
	// Always consult the manager: another client may have remapped
	// chunks.
	s.invalidateMeta(name)
	return s.fileInfo(name)
}

// getChunk fetches one chunk payload.
func (s *Store) getChunk(ref proto.ChunkRef) ([]byte, error) {
	p, err := s.pool(ref)
	if err != nil {
		return nil, err
	}
	s.c.enter()
	resp, err := p.call(proto.ChunkReq{Op: proto.OpGetChunk, ID: ref.ID})
	s.c.exit()
	if err != nil {
		return nil, err
	}
	s.c.chunkGets.Add(1)
	s.c.ssdReadBytes.Add(int64(len(resp.Data)))
	return resp.Data, nil
}

// putChunk stores one full chunk payload.
func (s *Store) putChunk(ref proto.ChunkRef, data []byte) error {
	p, err := s.pool(ref)
	if err != nil {
		return err
	}
	s.c.enter()
	_, err = p.call(proto.ChunkReq{Op: proto.OpPutChunk, ID: ref.ID, Data: data})
	s.c.exit()
	if err != nil {
		return err
	}
	s.c.chunkPuts.Add(1)
	s.c.ssdWriteBytes.Add(int64(len(data)))
	return nil
}

// putPages ships only the dirty pages of a chunk (paper Table VII): the
// benefactor applies them server-side, so a sparsely dirtied chunk costs
// its dirty bytes, not a whole-chunk transfer.
func (s *Store) putPages(ref proto.ChunkRef, offs []int64, pages [][]byte) error {
	p, err := s.pool(ref)
	if err != nil {
		return err
	}
	s.c.enter()
	_, err = p.call(proto.ChunkReq{Op: proto.OpPutPages, ID: ref.ID, PageOffs: offs, PageData: pages})
	s.c.exit()
	if err != nil {
		return err
	}
	s.c.pagePuts.Add(1)
	for _, pg := range pages {
		s.c.ssdWriteBytes.Add(int64(len(pg)))
	}
	return nil
}

// span is one chunk-aligned slice of a ReadAt/WriteAt buffer.
type span struct {
	idx  int   // chunk index within the file
	coff int64 // offset within the chunk
	buf  []byte
}

// chunkSpans splits buf (addressing file bytes starting at off) into
// per-chunk spans.
func chunkSpans(chunkSize, off int64, buf []byte) []span {
	var out []span
	for len(buf) > 0 {
		idx := int(off / chunkSize)
		coff := off % chunkSize
		n := chunkSize - coff
		if int64(len(buf)) < n {
			n = int64(len(buf))
		}
		out = append(out, span{idx: idx, coff: coff, buf: buf[:n]})
		buf = buf[n:]
		off += n
	}
	return out
}

// forEach runs do(0..n-1) with at most s.opts.Parallelism calls in flight,
// returning the first error. After an error no new work starts; transfers
// already in flight finish (gob calls are not interruptible mid-message).
func (s *Store) forEach(n int, do func(int) error) error {
	par := s.opts.Parallelism
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			if err := do(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := do(i); err != nil {
					errOnce.Do(func() { firstErr = err })
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// withMetaRetry runs fn against the file's (possibly cached) chunk map. If
// fn fails with ErrNoSuchChunk the map was stale — a chunk was remapped or
// the file recreated by another client — so the map is re-fetched from the
// manager and fn retried once.
func (s *Store) withMetaRetry(name string, fn func(proto.FileInfo) error) error {
	fi, err := s.fileInfo(name)
	if err != nil {
		return err
	}
	if err = fn(fi); !errors.Is(err, proto.ErrNoSuchChunk) {
		return err
	}
	s.c.metaRetries.Add(1)
	s.invalidateMeta(name)
	if fi, err = s.fileInfo(name); err != nil {
		return err
	}
	return fn(fi)
}

// ReadAt fills buf from the file at off. Chunk fetches fan out across the
// connection pools, bounded by Options.Parallelism.
func (s *Store) ReadAt(name string, off int64, buf []byte) error {
	return s.withMetaRetry(name, func(fi proto.FileInfo) error {
		if off < 0 || off+int64(len(buf)) > fi.Size {
			return fmt.Errorf("%w: read [%d,%d) of %q (%d bytes)", proto.ErrChunkOutOfRange, off, off+int64(len(buf)), name, fi.Size)
		}
		spans := chunkSpans(s.chunkSize, off, buf)
		return s.forEach(len(spans), func(i int) error {
			sp := spans[i]
			data, err := s.getChunk(fi.Chunks[sp.idx])
			if err != nil {
				return err
			}
			if int64(len(data)) < sp.coff+int64(len(sp.buf)) {
				return fmt.Errorf("chunk %v: short payload %d bytes", fi.Chunks[sp.idx], len(data))
			}
			copy(sp.buf, data[sp.coff:])
			return nil
		})
	})
}

// WriteAt stores data into the file at off (read-modify-write for partial
// chunks). Chunk transfers fan out like ReadAt's.
func (s *Store) WriteAt(name string, off int64, data []byte) error {
	return s.withMetaRetry(name, func(fi proto.FileInfo) error {
		if off < 0 || off+int64(len(data)) > fi.Size {
			return fmt.Errorf("%w: write [%d,%d) of %q (%d bytes)", proto.ErrChunkOutOfRange, off, off+int64(len(data)), name, fi.Size)
		}
		spans := chunkSpans(s.chunkSize, off, data)
		return s.forEach(len(spans), func(i int) error {
			sp := spans[i]
			ref := fi.Chunks[sp.idx]
			if sp.coff == 0 && int64(len(sp.buf)) == s.chunkSize {
				return s.putChunk(ref, sp.buf)
			}
			cur, err := s.getChunk(ref)
			if err != nil {
				return err
			}
			copy(cur[sp.coff:], sp.buf)
			return s.putChunk(ref, cur)
		})
	})
}

// Put uploads a whole payload as a (new) file.
func (s *Store) Put(name string, data []byte) error {
	if err := s.Create(name, int64(len(data))); err != nil {
		return err
	}
	return s.WriteAt(name, 0, data)
}

// Get downloads a whole file.
func (s *Store) Get(name string) ([]byte, error) {
	fi, err := s.Stat(name)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, fi.Size)
	if err := s.ReadAt(name, 0, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
