package rpc

import (
	"time"

	"nvmalloc/internal/proto"
	"nvmalloc/internal/store"
)

// StoreClient adapts a *Store to the transport-neutral store.Client
// interface, so the shared FUSE-layer chunk cache (internal/fusecache) and
// the core library (internal/core) run unchanged over live TCP daemons.
// It is the real-path twin of simstore.Client.
//
// The execution context carries no simulated time on this path, but it may
// carry tracing span info (store.WithSpan): every call extracts it and
// threads it down, so server-side spans nest under the caller's. All
// methods are safe for concurrent use (the underlying Store is).
type StoreClient struct {
	st   *Store
	node int
}

var (
	_ store.Client       = (*StoreClient)(nil)
	_ store.BufferLender = (*StoreClient)(nil)
)

// NewStoreClient wraps st as a store.Client. node is the logical cluster
// node the client claims to run on (informational; pass 0 for a
// single-host deployment).
func NewStoreClient(st *Store, node int) *StoreClient {
	return &StoreClient{st: st, node: node}
}

// Store exposes the underlying TCP data-path client.
func (c *StoreClient) Store() *Store { return c.st }

// Node implements store.Client.
func (c *StoreClient) Node() int { return c.node }

// ChunkSize implements store.Client.
func (c *StoreClient) ChunkSize() int64 { return c.st.ChunkSize() }

// Create implements store.Client.
func (c *StoreClient) Create(ctx store.Ctx, name string, size int64) (proto.FileInfo, error) {
	return c.st.create(store.SpanOf(ctx), name, size)
}

// Lookup implements store.Client. It always consults the manager — another
// client may have remapped chunks since the last view.
func (c *StoreClient) Lookup(ctx store.Ctx, name string) (proto.FileInfo, error) {
	return c.st.stat(store.SpanOf(ctx), name)
}

// Delete implements store.Client.
func (c *StoreClient) Delete(ctx store.Ctx, name string) error {
	return c.st.deleteFile(store.SpanOf(ctx), name)
}

// Link implements store.Client.
func (c *StoreClient) Link(ctx store.Ctx, dst string, parts []string) (proto.FileInfo, error) {
	return c.st.link(store.SpanOf(ctx), dst, parts)
}

// Derive implements store.Client.
func (c *StoreClient) Derive(ctx store.Ctx, name, src string, fromChunk, nChunks int, size int64) (proto.FileInfo, error) {
	return c.st.derive(store.SpanOf(ctx), name, src, fromChunk, nChunks, size)
}

// Remap implements store.Client.
func (c *StoreClient) Remap(ctx store.Ctx, name string, chunkIdx int) ([]proto.ChunkRef, error) {
	return c.st.remap(store.SpanOf(ctx), name, chunkIdx)
}

// SetTTL implements store.Client.
func (c *StoreClient) SetTTL(_ store.Ctx, name string, ttl time.Duration) error {
	return c.st.SetTTL(name, ttl)
}

// GetChunk implements store.Client: it fetches one chunk payload, failing
// over across the given replicas. The result is a private buffer the
// caller owns (see PrivateChunks) — hand it back via ReleaseChunk when
// done to keep the data path allocation-free.
func (c *StoreClient) GetChunk(ctx store.Ctx, refs []proto.ChunkRef) ([]byte, error) {
	return c.st.getChunk(store.SpanOf(ctx), refs)
}

// PrivateChunks implements store.BufferLender: the TCP data path's GetChunk
// results are arena leases (or gob-decoded private buffers), owned by the
// caller — unlike simstore, whose results alias simulated device memory.
func (c *StoreClient) PrivateChunks() bool { return true }

// ReleaseChunk implements store.BufferLender: a finished GetChunk buffer
// returns to the store's arena.
func (c *StoreClient) ReleaseChunk(buf []byte) { c.st.ReleaseChunk(buf) }

// PutChunk implements store.Client: it ships one whole chunk payload to
// every live replica.
func (c *StoreClient) PutChunk(ctx store.Ctx, refs []proto.ChunkRef, data []byte) error {
	return c.st.putChunk(store.SpanOf(ctx), refs, data)
}

// PutPages implements store.Client: it ships only the dirty pages of a
// chunk (paper Table VII).
func (c *StoreClient) PutPages(ctx store.Ctx, refs []proto.ChunkRef, pageOffs []int64, pages [][]byte) error {
	return c.st.putPages(store.SpanOf(ctx), refs, pageOffs, pages)
}

// Status implements store.Client: the benefactor table merged across every
// reachable manager shard.
func (c *StoreClient) Status(_ store.Ctx) ([]proto.BenefactorInfo, error) {
	return c.st.Status()
}
