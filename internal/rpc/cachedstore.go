package rpc

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"time"

	"nvmalloc/internal/obs"
	"nvmalloc/internal/proto"
)

// CacheConfig is the geometry of a CachedStore. It mirrors
// fusecache.Config — the simulation's per-node cache — transplanted to
// wall-clock time for the real TCP deployment.
type CacheConfig struct {
	// CacheBytes is the cache capacity (paper: 64 MB). Rounded down to
	// whole chunks, minimum one chunk.
	CacheBytes int64
	// PageSize is the dirty-tracking granularity (paper: 4 KB pages).
	// 0 defaults to 4096. Must divide the store's chunk size.
	PageSize int64
	// ReadAheadChunks is how many chunks to prefetch asynchronously after
	// a sequential miss (0 disables read-ahead).
	ReadAheadChunks int
	// WriteFullChunks disables the dirty-page write optimization: whole
	// chunks travel on every writeback however few pages are dirty — the
	// "without optimization" baseline of Table VII.
	WriteFullChunks bool
}

// CacheStats are a CachedStore's cumulative counters.
type CacheStats struct {
	Hits           int64
	Misses         int64
	Waits          int64 // accesses that waited on an in-flight fetch or flush
	Evictions      int64
	DirtyEvictions int64
	Flushes        int64
	ReadBytes      int64 // bytes served to the application
	WriteBytes     int64 // bytes accepted from the application
	PrefetchBytes  int64 // chunk bytes fetched by read-ahead
}

// cacheMetrics holds the cache's registry handles (on the underlying
// Store's registry), looked up once at construction. CacheStats is a
// compatibility shim over the same counters.
type cacheMetrics struct {
	hits, misses, waits       *obs.Counter
	evictions, dirtyEvictions *obs.Counter
	flushes                   *obs.Counter
	readBytes, writeBytes     *obs.Counter
	prefetchBytes             *obs.Counter
	writebackLat              *obs.Histogram
}

func newCacheMetrics(o *obs.Obs) cacheMetrics {
	r := o.Reg
	return cacheMetrics{
		hits:           r.Counter("cache.hits"),
		misses:         r.Counter("cache.misses"),
		waits:          r.Counter("cache.waits"),
		evictions:      r.Counter("cache.evictions"),
		dirtyEvictions: r.Counter("cache.dirty_evictions"),
		flushes:        r.Counter("cache.flushes"),
		readBytes:      r.Counter("cache.read_bytes"),
		writeBytes:     r.Counter("cache.write_bytes"),
		prefetchBytes:  r.Counter("cache.prefetch_bytes"),
		writebackLat:   r.Histogram("cache.writeback.latency"),
	}
}

type cacheKey struct {
	file string
	idx  int
}

// centry is one cached chunk.
type centry struct {
	key    cacheKey
	data   []byte
	dirty  []bool // per page
	nDirty int
	lru    *list.Element
	// busy is non-nil while the entry is being fetched or flushed; waiters
	// block on it and re-examine the cache afterwards.
	busy chan struct{}
	// err is the fetch error, valid once busy is closed and the entry was
	// removed from the map.
	err      error
	prefetch bool
}

// CachedStore puts a client-side chunk cache in front of a Store: an LRU
// of whole chunks with per-page dirty bitmaps. Reads hit the cache; writes
// dirty pages in place; on eviction or Flush only the dirty pages travel
// to the benefactor via OpPutPages (the paper's Table VII write
// optimization), and sequential read misses trigger asynchronous
// read-ahead (why NVMalloc beats direct SSD access on STREAM, Table III).
//
// This is the wall-clock counterpart of the simulation's
// fusecache.ChunkCache. All methods are safe for concurrent use.
type CachedStore struct {
	st  *Store
	cfg CacheConfig

	mu       sync.Mutex
	entries  map[cacheKey]*centry
	lru      *list.List // front = most recent
	lastMiss map[string]int
	// virgin marks chunks of files this client just created: they are
	// known-zero (the manager reserves space; data arrives lazily), so a
	// miss materializes without a fetch — no read-modify-write traffic for
	// initial population.
	virgin map[cacheKey]bool
	m      cacheMetrics

	prefetchers sync.WaitGroup
}

// NewCachedStore wraps an open Store. Closing the CachedStore flushes the
// cache and closes the underlying Store.
func NewCachedStore(st *Store, cfg CacheConfig) (*CachedStore, error) {
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	if st.ChunkSize()%cfg.PageSize != 0 {
		return nil, fmt.Errorf("rpc: page size %d does not divide chunk size %d", cfg.PageSize, st.ChunkSize())
	}
	if cfg.CacheBytes < st.ChunkSize() {
		cfg.CacheBytes = st.ChunkSize()
	}
	return &CachedStore{
		st:       st,
		cfg:      cfg,
		entries:  make(map[cacheKey]*centry),
		lru:      list.New(),
		lastMiss: make(map[string]int),
		virgin:   make(map[cacheKey]bool),
		m:        newCacheMetrics(st.obs),
	}, nil
}

// Store returns the underlying uncached client (for Manager access and
// data-path stats).
func (cs *CachedStore) Store() *Store { return cs.st }

// ChunkSize returns the striping unit.
func (cs *CachedStore) ChunkSize() int64 { return cs.st.ChunkSize() }

// Stats returns a snapshot of the cache counters. It is a compatibility
// shim over the underlying Store's metrics registry.
func (cs *CachedStore) Stats() CacheStats {
	return CacheStats{
		Hits:           cs.m.hits.Load(),
		Misses:         cs.m.misses.Load(),
		Waits:          cs.m.waits.Load(),
		Evictions:      cs.m.evictions.Load(),
		DirtyEvictions: cs.m.dirtyEvictions.Load(),
		Flushes:        cs.m.flushes.Load(),
		ReadBytes:      cs.m.readBytes.Load(),
		WriteBytes:     cs.m.writeBytes.Load(),
		PrefetchBytes:  cs.m.prefetchBytes.Load(),
	}
}

// capacityChunks returns the cache capacity in chunks (at least 1).
func (cs *CachedStore) capacityChunks() int {
	n := int(cs.cfg.CacheBytes / cs.st.ChunkSize())
	if n < 1 {
		n = 1
	}
	return n
}

func (cs *CachedStore) pagesPerChunk() int { return int(cs.st.ChunkSize() / cs.cfg.PageSize) }

// acquire returns the resident entry for (file, idx) with cs.mu held,
// fetching on a miss. ref resolution happens through the underlying
// store's metadata cache (with its stale-map retry).
func (cs *CachedStore) acquire(fi proto.FileInfo, idx int, prefetch bool) (*centry, error) {
	key := cacheKey{fi.Name, idx}
	for {
		if e, ok := cs.entries[key]; ok {
			if e.busy != nil {
				cs.m.waits.Inc()
				busy := e.busy
				cs.mu.Unlock()
				<-busy
				cs.mu.Lock()
				continue // state changed; re-examine
			}
			if !prefetch {
				cs.m.hits.Inc()
			}
			cs.lru.MoveToFront(e.lru)
			return e, nil
		}
		if err := cs.ensureRoom(); err != nil {
			return nil, err
		}
		if _, ok := cs.entries[key]; ok {
			continue // eviction released the lock; re-examine
		}
		if cs.virgin[key] {
			// Known-zero chunk of a file this client created: materialize
			// it without store traffic.
			delete(cs.virgin, key)
			e := &centry{
				key:   key,
				data:  make([]byte, cs.st.ChunkSize()),
				dirty: make([]bool, cs.pagesPerChunk()),
			}
			cs.entries[key] = e
			e.lru = cs.lru.PushFront(e)
			return e, nil
		}
		e := &centry{
			key:      key,
			dirty:    make([]bool, cs.pagesPerChunk()),
			busy:     make(chan struct{}),
			prefetch: prefetch,
		}
		cs.entries[key] = e
		e.lru = cs.lru.PushFront(e)
		kind := "miss"
		if prefetch {
			kind = "prefetch"
		} else {
			cs.m.misses.Inc()
		}
		tid := obs.NewTraceID()
		cs.st.obs.Event("cache", kind, tid, fmt.Sprintf("file=%q chunk=%d", key.file, key.idx))
		cs.mu.Unlock()
		data, err := cs.st.getChunk(tid, replicaRefs(fi, idx))
		cs.mu.Lock()
		if err != nil {
			delete(cs.entries, key)
			cs.lru.Remove(e.lru)
			e.err = err
			close(e.busy)
			return nil, err
		}
		// Own a private copy sized to a full chunk.
		e.data = make([]byte, cs.st.ChunkSize())
		copy(e.data, data)
		if prefetch {
			cs.m.prefetchBytes.Add(int64(len(data)))
		}
		close(e.busy)
		e.busy = nil
		return e, nil
	}
}

// ensureRoom evicts LRU entries until a new chunk fits. Called and returns
// with cs.mu held; may release it while writing back a dirty victim.
func (cs *CachedStore) ensureRoom() error {
	for len(cs.entries) >= cs.capacityChunks() {
		var victim *centry
		for el := cs.lru.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*centry); e.busy == nil {
				victim = e
				break
			}
		}
		if victim == nil {
			// Everything resident is in flight; wait for one transition.
			el := cs.lru.Back()
			if el == nil {
				return fmt.Errorf("rpc: cache wedged with %d entries", len(cs.entries))
			}
			busy := el.Value.(*centry).busy
			cs.m.waits.Inc()
			cs.mu.Unlock()
			<-busy
			cs.mu.Lock()
			continue
		}
		if err := cs.evict(victim); err != nil {
			return err
		}
	}
	return nil
}

// evict writes back a victim's dirty pages and drops it. Called with cs.mu
// held; releases it during the writeback.
func (cs *CachedStore) evict(e *centry) error {
	cs.m.evictions.Inc()
	tid := obs.NewTraceID()
	cs.st.obs.Event("cache", "eviction", tid,
		fmt.Sprintf("file=%q chunk=%d dirty_pages=%d", e.key.file, e.key.idx, e.nDirty))
	if e.nDirty > 0 {
		cs.m.dirtyEvictions.Inc()
		if err := cs.writeback(tid, e); err != nil {
			return err
		}
	}
	delete(cs.entries, e.key)
	cs.lru.Remove(e.lru)
	return nil
}

// writeback ships an entry's dirty pages to its benefactor. Called with
// cs.mu held and e resident; marks e busy, releases the lock for the
// transfer, and returns with the lock held and e clean.
func (cs *CachedStore) writeback(tid string, e *centry) error {
	refs, err := cs.chunkRefs(e.key)
	if err != nil {
		return err
	}
	e.busy = make(chan struct{})
	allDirty := e.nDirty == len(e.dirty) || cs.cfg.WriteFullChunks
	cs.st.obs.Event("cache", "writeback", tid,
		fmt.Sprintf("file=%q chunk=%d dirty_pages=%d/%d full_chunk=%v", e.key.file, e.key.idx, e.nDirty, len(e.dirty), allDirty))
	var werr error
	cs.mu.Unlock()
	start := time.Now()
	werr = cs.ship(tid, refs, e, allDirty)
	if errors.Is(werr, proto.ErrNoSuchChunk) {
		// Stale chunk map: the chunk was remapped (or the file deleted) by
		// another client. Re-resolve and retry once; a vanished file means
		// the dirty data has nowhere to go and is discarded.
		cs.st.invalidateMeta(e.key.file)
		fi, lerr := cs.st.fileInfo(e.key.file)
		switch {
		case errors.Is(lerr, proto.ErrNoSuchFile):
			werr = nil
		case lerr != nil:
			werr = lerr
		case e.key.idx >= len(fi.Chunks):
			werr = nil // file shrank; the chunk is gone
		default:
			werr = cs.ship(tid, replicaRefs(fi, e.key.idx), e, allDirty)
		}
	}
	cs.m.writebackLat.Observe(time.Since(start))
	cs.mu.Lock()
	close(e.busy)
	e.busy = nil
	if werr != nil {
		return werr
	}
	for i := range e.dirty {
		e.dirty[i] = false
	}
	e.nDirty = 0
	return nil
}

// ship transfers an entry's payload (whole chunk or dirty pages only) to
// every replica of the chunk. Called without cs.mu; e.busy guards the
// entry. Replica failover and degraded-write accounting come from the
// underlying Store.
func (cs *CachedStore) ship(tid string, refs []proto.ChunkRef, e *centry, allDirty bool) error {
	if allDirty {
		return cs.st.putChunk(tid, refs, e.data)
	}
	var offs []int64
	var pages [][]byte
	ps := cs.cfg.PageSize
	for i, d := range e.dirty {
		if !d {
			continue
		}
		off := int64(i) * ps
		offs = append(offs, off)
		pages = append(pages, e.data[off:off+ps])
	}
	return cs.st.putPages(tid, refs, offs, pages)
}

// chunkRefs resolves a cached chunk's current copy set (primary first).
// Called with cs.mu held; releases it for the (possibly remote) lookup.
func (cs *CachedStore) chunkRefs(key cacheKey) ([]proto.ChunkRef, error) {
	cs.mu.Unlock()
	defer cs.mu.Lock()
	fi, err := cs.st.fileInfo(key.file)
	if err != nil {
		return nil, err
	}
	if key.idx >= len(fi.Chunks) {
		return nil, fmt.Errorf("%w: writeback of %q chunk %d", proto.ErrChunkOutOfRange, key.file, key.idx)
	}
	return replicaRefs(fi, key.idx), nil
}

// readAhead asynchronously warms the chunks after idx on a sequential miss.
func (cs *CachedStore) readAhead(fi proto.FileInfo, idx int) {
	for ahead := 1; ahead <= cs.cfg.ReadAheadChunks; ahead++ {
		na := idx + ahead
		if na >= len(fi.Chunks) {
			break
		}
		if _, ok := cs.entries[cacheKey{fi.Name, na}]; ok {
			continue
		}
		cs.prefetchers.Add(1)
		go func(na int) {
			defer cs.prefetchers.Done()
			cs.mu.Lock()
			// Best effort: the demand path will retry and report errors.
			_, _ = cs.acquire(fi, na, true)
			cs.mu.Unlock()
		}(na)
	}
}

// locate splits a byte offset into (chunk index, offset within chunk).
func (cs *CachedStore) locate(off int64) (int, int64) {
	c := cs.st.ChunkSize()
	return int(off / c), off % c
}

// Create reserves a file of the given size and marks its chunks known-zero
// so first writes skip the read-modify-write fetch.
func (cs *CachedStore) Create(name string, size int64) error {
	if err := cs.st.Create(name, size); err != nil {
		return err
	}
	fi, err := cs.st.fileInfo(name)
	if err != nil {
		return err
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for i := range fi.Chunks {
		cs.virgin[cacheKey{name, i}] = true
	}
	return nil
}

// Stat returns a file's metadata (consulting the manager).
func (cs *CachedStore) Stat(name string) (proto.FileInfo, error) { return cs.st.Stat(name) }

// Delete flushes nothing — the file is going away — and drops its cached
// chunks before removing it from the store.
func (cs *CachedStore) Delete(name string) error {
	cs.Drop(name)
	return cs.st.Delete(name)
}

// Drop discards every cached chunk of file, dirty pages included.
func (cs *CachedStore) Drop(name string) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for k, e := range cs.entries {
		if k.file == name && e.busy == nil {
			delete(cs.entries, k)
			cs.lru.Remove(e.lru)
		}
	}
	for k := range cs.virgin {
		if k.file == name {
			delete(cs.virgin, k)
		}
	}
	delete(cs.lastMiss, name)
}

// ReadAt fills buf from the file at off through the cache.
func (cs *CachedStore) ReadAt(name string, off int64, buf []byte) error {
	fi, err := cs.st.fileInfo(name)
	if err != nil {
		return err
	}
	if off < 0 || off+int64(len(buf)) > fi.Size {
		return fmt.Errorf("%w: read [%d,%d) of %q (%d bytes)", proto.ErrChunkOutOfRange, off, off+int64(len(buf)), name, fi.Size)
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.m.readBytes.Add(int64(len(buf)))
	for len(buf) > 0 {
		idx, coff := cs.locate(off)
		sequential := cs.lastMiss[name] == idx-1
		wasMiss := cs.entries[cacheKey{name, idx}] == nil
		e, err := cs.acquire(fi, idx, false)
		if err != nil {
			return err
		}
		if wasMiss {
			cs.lastMiss[name] = idx
			if sequential && cs.cfg.ReadAheadChunks > 0 {
				cs.readAhead(fi, idx)
			}
		}
		n := copy(buf, e.data[coff:])
		buf = buf[n:]
		off += int64(n)
	}
	return nil
}

// WriteAt writes data into the file at off through the cache, marking the
// touched pages dirty. No bytes reach a benefactor until eviction or
// Flush, and then only dirty pages travel (unless WriteFullChunks).
func (cs *CachedStore) WriteAt(name string, off int64, data []byte) error {
	fi, err := cs.st.fileInfo(name)
	if err != nil {
		return err
	}
	if off < 0 || off+int64(len(data)) > fi.Size {
		return fmt.Errorf("%w: write [%d,%d) of %q (%d bytes)", proto.ErrChunkOutOfRange, off, off+int64(len(data)), name, fi.Size)
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.m.writeBytes.Add(int64(len(data)))
	ps := cs.cfg.PageSize
	for len(data) > 0 {
		idx, coff := cs.locate(off)
		e, err := cs.acquire(fi, idx, false)
		if err != nil {
			return err
		}
		n := copy(e.data[coff:], data)
		firstPage := int(coff / ps)
		lastPage := int((coff + int64(n) - 1) / ps)
		for pg := firstPage; pg <= lastPage; pg++ {
			if !e.dirty[pg] {
				e.dirty[pg] = true
				e.nDirty++
			}
		}
		data = data[n:]
		off += int64(n)
	}
	return nil
}

// Flush writes back every dirty cached chunk of file, leaving the data
// resident and clean.
func (cs *CachedStore) Flush(name string) error {
	tid := obs.NewTraceID()
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.m.flushes.Inc()
	cs.st.obs.Event("cache", "flush", tid, fmt.Sprintf("file=%q", name))
	for {
		var victim *centry
		for _, e := range cs.entries {
			if e.key.file != name {
				continue
			}
			if e.busy != nil {
				cs.m.waits.Inc()
				busy := e.busy
				cs.mu.Unlock()
				<-busy
				cs.mu.Lock()
				victim = nil
				break // state changed; rescan
			}
			if e.nDirty > 0 {
				victim = e
				break
			}
		}
		if victim == nil {
			// Either nothing left dirty, or we waited and must rescan.
			clean := true
			for _, e := range cs.entries {
				if e.key.file == name && (e.busy != nil || e.nDirty > 0) {
					clean = false
					break
				}
			}
			if clean {
				return nil
			}
			continue
		}
		if err := cs.writeback(tid, victim); err != nil {
			return err
		}
	}
}

// FlushAll writes back every dirty chunk in the cache.
func (cs *CachedStore) FlushAll() error {
	cs.mu.Lock()
	files := make(map[string]bool)
	for k := range cs.entries {
		files[k.file] = true
	}
	cs.mu.Unlock()
	for f := range files {
		if err := cs.Flush(f); err != nil {
			return err
		}
	}
	return nil
}

// Put uploads a whole payload as a (new) file through the cache.
func (cs *CachedStore) Put(name string, data []byte) error {
	if err := cs.Create(name, int64(len(data))); err != nil {
		return err
	}
	return cs.WriteAt(name, 0, data)
}

// Get downloads a whole file through the cache.
func (cs *CachedStore) Get(name string) ([]byte, error) {
	fi, err := cs.st.fileInfo(name)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, fi.Size)
	if err := cs.ReadAt(name, 0, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Resident returns how many chunks of file are currently cached.
func (cs *CachedStore) Resident(name string) int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	n := 0
	for k := range cs.entries {
		if k.file == name {
			n++
		}
	}
	return n
}

// Close flushes all dirty pages, waits for read-ahead to settle, and
// closes the underlying store.
func (cs *CachedStore) Close() error {
	ferr := cs.FlushAll()
	cs.prefetchers.Wait()
	cerr := cs.st.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}
